"""Tests for skew-aware expert placement, prediction, and pricing.

The load-bearing guarantee: uniform placement with replication 1 and
prefetch disabled prices bit-for-bit like the pre-skew ``MoEStepCost``,
all the way through the serving simulator and a one-replica fleet.
"""

import numpy as np
import pytest

from repro.engine.costs import BatchState, MoEStepCost, PromptShape
from repro.engine.moe import MoELatencyModel
from repro.engine.serving_sim import simulate_serving, synthesize_trace
from repro.engine.tuner import tune_serving_deployment
from repro.fleet.sim import simulate_fleet
from repro.hardware.topology import dgx_a100_cluster
from repro.model.config import MOE_PARALLELISM, MOE_ZOO
from repro.model.gating import topk_gating
from repro.moe_placement import (
    ExpertPlacement,
    GateHistoryPredictor,
    SkewedDispatchSpec,
    calibrated_dispatch,
    gating_counts,
    plan_placement,
    simulate_expert_stream,
    synthesize_gate_stream,
    uniform_placement,
    zipf_expert_probs,
    zipf_gate_logits,
)

RNG = np.random.default_rng(11)


def small_moe_model():
    cfg = MOE_ZOO["1.3b-moe-128"]
    par = MOE_PARALLELISM["1.3b-moe-128"]
    cluster = dgx_a100_cluster(max(1, par.num_gpus // 8))
    return cfg, par, MoELatencyModel(cfg, cluster, par)


# -- skew synthesis ----------------------------------------------------------


class TestZipfSkew:
    def test_probs_normalized_and_reproducible(self):
        a = zipf_expert_probs(64, 1.2, seed=3)
        b = zipf_expert_probs(64, 1.2, seed=3)
        np.testing.assert_array_equal(a, b)
        assert a.shape == (64,)
        np.testing.assert_allclose(a.sum(), 1.0, atol=1e-12)

    def test_zero_skew_is_uniform(self):
        p = zipf_expert_probs(128, 0.0, seed=0)
        np.testing.assert_array_equal(p, np.full(128, 1.0 / 128))

    def test_higher_skew_concentrates_mass(self):
        flat = np.sort(zipf_expert_probs(64, 0.5, seed=0))[::-1]
        sharp = np.sort(zipf_expert_probs(64, 1.5, seed=0))[::-1]
        assert sharp[:4].sum() > flat[:4].sum()

    def test_seed_permutes_which_experts_are_hot(self):
        a = zipf_expert_probs(64, 1.2, seed=1)
        b = zipf_expert_probs(64, 1.2, seed=2)
        assert np.argmax(a) != np.argmax(b) or not np.allclose(a, b)
        np.testing.assert_allclose(np.sort(a), np.sort(b), atol=1e-15)

    def test_gate_stream_shape_and_conservation(self):
        probs = zipf_expert_probs(16, 1.1, seed=0)
        stream = synthesize_gate_stream(20, 64, probs, seed=5)
        assert stream.shape == (20, 16)
        np.testing.assert_array_equal(stream.sum(axis=1), 64)

    def test_gate_logits_follow_the_skew(self):
        logits = zipf_gate_logits(4096, 16, 1.5, seed=9)
        winners = np.bincount(logits.argmax(axis=1), minlength=16)
        probs = zipf_expert_probs(16, 1.5, seed=9)
        # The most popular expert by construction wins the most argmaxes.
        assert winners[np.argmax(probs)] == winners.max()

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_expert_probs(0, 1.0)
        with pytest.raises(ValueError):
            zipf_expert_probs(8, -0.5)
        with pytest.raises(ValueError):
            synthesize_gate_stream(0, 8, np.full(4, 0.25))


# -- predictor ---------------------------------------------------------------


class TestGateHistoryPredictor:
    def test_first_update_seeds_ema(self):
        pred = GateHistoryPredictor(4)
        pred.update(np.array([4.0, 0.0, 1.0, 3.0]))
        np.testing.assert_array_equal(pred.predicted_loads(),
                                      [4.0, 0.0, 1.0, 3.0])

    def test_ema_tracks_shift(self):
        pred = GateHistoryPredictor(2, alpha=0.5)
        for _ in range(10):
            pred.update(np.array([10.0, 0.0]))
        for _ in range(10):
            pred.update(np.array([0.0, 10.0]))
        loads = pred.predicted_loads()
        assert loads[1] > loads[0]

    def test_hot_cold_ordering(self):
        pred = GateHistoryPredictor(4)
        pred.update(np.array([1.0, 9.0, 3.0, 3.0]))
        np.testing.assert_array_equal(pred.hot_experts(), [1, 2, 3, 0])
        np.testing.assert_array_equal(pred.hot_experts(2), [1, 2])
        np.testing.assert_array_equal(pred.cold_experts(1), [0])

    def test_consumes_gating_results(self):
        logits = zipf_gate_logits(256, 8, 1.5, seed=4)
        g = topk_gating(logits, 2, capacity_factor=2.0)
        counts = gating_counts(g)
        assert counts.sum() == g.kept_pairs().sum()
        pred = GateHistoryPredictor(8)
        pred.update(g)
        np.testing.assert_array_equal(pred.predicted_loads(), counts)

    def test_uniform_probs_before_any_update(self):
        pred = GateHistoryPredictor(5)
        np.testing.assert_allclose(pred.predicted_probs(), 0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            GateHistoryPredictor(0)
        with pytest.raises(ValueError):
            GateHistoryPredictor(4, alpha=0.0)
        pred = GateHistoryPredictor(4)
        with pytest.raises(ValueError):
            pred.update(np.zeros(3))
        with pytest.raises(ValueError):
            pred.update(np.array([1.0, -1.0, 0.0, 0.0]))


# -- placement ---------------------------------------------------------------


class TestExpertPlacement:
    def test_uniform_matches_partition(self):
        p = uniform_placement(8, 4)
        assert p.ranks == ((0, 1), (2, 3), (4, 5), (6, 7))
        np.testing.assert_array_equal(p.replicas, 1)

    def test_uniform_uneven(self):
        p = uniform_placement(7, 3)
        assert p.ranks == ((0, 1, 2), (3, 4), (5, 6))

    def test_rank_loads_split_replicas(self):
        p = ExpertPlacement(ranks=((0, 1), (0, 2)), num_experts=3)
        loads = p.rank_loads(np.array([8.0, 2.0, 4.0]))
        np.testing.assert_array_equal(loads, [6.0, 8.0])
        assert p.replication_of(0) == 2

    def test_load_imbalance_uniform_is_exactly_one(self):
        for experts, ep in [(128, 128), (128, 64), (16, 4)]:
            p = uniform_placement(experts, ep)
            loads = np.full(experts, 100.0 / experts)
            assert p.load_imbalance(loads) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):  # expert 1 unassigned
            ExpertPlacement(ranks=((0,), (2,)), num_experts=3)
        with pytest.raises(ValueError):  # duplicate within rank
            ExpertPlacement(ranks=((0, 0), (1,)), num_experts=2)
        with pytest.raises(ValueError):  # out of range
            ExpertPlacement(ranks=((0, 5),), num_experts=2)


class TestPlanPlacement:
    def test_replication_reduces_imbalance(self):
        probs = zipf_expert_probs(64, 1.3, seed=2)
        uni = uniform_placement(64, 64)
        plan = plan_placement(probs, 64, replication=4, num_hot=4)
        assert (plan.placement.load_imbalance(probs)
                < uni.load_imbalance(probs))

    def test_memory_neutral_by_default(self):
        probs = zipf_expert_probs(32, 1.2, seed=1)
        plan = plan_placement(probs, 8, replication=2, num_hot=4)
        # 4 extra copies, no spare slots -> 4 demotions, slots respected.
        assert len(plan.streamed) == 4
        slots = plan.slots_per_rank
        resident = [sum(1 for e in hosted if e not in plan.streamed)
                    for hosted in plan.placement.ranks]
        assert max(resident) <= slots

    def test_hot_experts_replicated_on_distinct_ranks(self):
        probs = zipf_expert_probs(16, 1.5, seed=3)
        plan = plan_placement(probs, 8, replication=3, num_hot=2)
        hottest = int(np.argmax(probs))
        assert plan.placement.replication_of(hottest) == 3
        hosts = [r for r, hosted in enumerate(plan.placement.ranks)
                 if hottest in hosted]
        assert len(hosts) == 3

    def test_every_expert_stays_reachable(self):
        probs = zipf_expert_probs(24, 1.4, seed=5)
        plan = plan_placement(probs, 6, replication=2, num_hot=3)
        assert (plan.placement.replicas >= 1).all()

    def test_replication_one_streams_nothing(self):
        probs = zipf_expert_probs(16, 1.2, seed=0)
        plan = plan_placement(probs, 4)
        assert plan.streamed == ()
        assert plan.num_hot == 0

    def test_validation(self):
        probs = np.full(8, 0.125)
        with pytest.raises(ValueError):
            plan_placement(probs, 0)
        with pytest.raises(ValueError):
            plan_placement(probs, 16)  # more ranks than experts
        with pytest.raises(ValueError):
            plan_placement(probs, 4, replication=8)  # r > ep
        with pytest.raises(ValueError):  # demotion demand impossible
            plan_placement(probs, 8, replication=8, num_hot=8)


# -- prefetch ----------------------------------------------------------------


class TestPrefetch:
    def test_stationary_stream_high_hit_rate(self):
        probs = zipf_expert_probs(32, 1.5, seed=7)
        stream = synthesize_gate_stream(64, 128, probs, seed=8)
        # Stream the 8 coldest experts; prefetch covers all 8 slots.
        cold = np.argsort(probs)[:8]
        report = simulate_expert_stream(stream, tuple(int(e) for e in cold),
                                        prefetch_slots=8)
        assert report.hit_rate == 1.0  # slots cover the whole streamed set
        assert report.prefetch_misses == 0

    def test_fewer_slots_mean_misses(self):
        probs = zipf_expert_probs(32, 0.3, seed=7)  # near-uniform: hard
        stream = synthesize_gate_stream(64, 256, probs, seed=9)
        streamed = tuple(range(16))
        full = simulate_expert_stream(stream, streamed, prefetch_slots=16)
        tight = simulate_expert_stream(stream, streamed, prefetch_slots=2)
        assert tight.hit_rate < full.hit_rate
        assert tight.prefetch_misses > 0

    def test_miss_stall_and_overlap_priced(self):
        probs = zipf_expert_probs(16, 1.0, seed=2)
        stream = synthesize_gate_stream(16, 64, probs, seed=3)
        report = simulate_expert_stream(
            stream, tuple(range(8)), prefetch_slots=4,
            fetch_time_per_expert=1e-3, compute_time_per_step=4e-3)
        assert report.stall_s == pytest.approx(
            report.prefetch_misses * 1e-3)
        assert report.overlap_residue_s >= 0.0

    def test_empty_streamed_set_never_stalls(self):
        probs = zipf_expert_probs(8, 1.2, seed=0)
        stream = synthesize_gate_stream(8, 32, probs, seed=1)
        report = simulate_expert_stream(stream, ())
        assert report.prefetch_hits == 0
        assert report.prefetch_misses == 0
        assert report.hit_rate == 1.0

    def test_calibrated_dispatch_measures_hit_rate(self):
        probs = zipf_expert_probs(32, 1.4, seed=4)
        stream = synthesize_gate_stream(48, 128, probs, seed=5)
        plan = plan_placement(probs, 16, replication=2, num_hot=2)
        spec = calibrated_dispatch(probs, plan, stream,
                                   expert_fetch_time=1e-3)
        report = simulate_expert_stream(stream, plan.streamed)
        assert spec.prefetch_hit_rate == report.hit_rate
        assert spec.streamed == plan.streamed


class TestSkewedDispatchSpec:
    def test_uniform_ratio_is_exactly_one(self):
        for experts, ep in [(128, 128), (128, 32), (96, 12)]:
            spec = SkewedDispatchSpec(
                probs=np.full(experts, 1.0 / experts),
                placement=uniform_placement(experts, ep))
            for tokens in (1, 3, 7, 64, 333, 4096):
                assert spec.load_ratio(tokens) == 1.0
                assert spec.stall_time(tokens) == 0.0

    def test_skew_raises_ratio_replication_lowers_it(self):
        probs = zipf_expert_probs(64, 1.3, seed=6)
        uni = SkewedDispatchSpec(probs=probs,
                                 placement=uniform_placement(64, 64))
        plan = plan_placement(probs, 64, replication=4, num_hot=4)
        rep = SkewedDispatchSpec(probs=probs, placement=plan.placement,
                                 streamed=plan.streamed)
        assert uni.load_ratio(256) > 1.0
        assert rep.load_ratio(256) < uni.load_ratio(256)

    def test_stall_scales_with_miss_probability(self):
        probs = zipf_expert_probs(32, 1.2, seed=1)
        plan = plan_placement(probs, 8, replication=2, num_hot=4)
        assert plan.streamed  # demotions happened
        none_hit = SkewedDispatchSpec(
            probs=probs, placement=plan.placement, streamed=plan.streamed,
            prefetch_hit_rate=0.0, expert_fetch_time=1e-3)
        all_hit = SkewedDispatchSpec(
            probs=probs, placement=plan.placement, streamed=plan.streamed,
            prefetch_hit_rate=1.0, expert_fetch_time=1e-3)
        assert none_hit.stall_time(128) > 0.0
        assert all_hit.stall_time(128) == 0.0

    def test_validation(self):
        placement = uniform_placement(4, 2)
        with pytest.raises(ValueError):
            SkewedDispatchSpec(probs=np.full(3, 1 / 3), placement=placement)
        with pytest.raises(ValueError):
            SkewedDispatchSpec(probs=np.full(4, 0.25), placement=placement,
                               prefetch_hit_rate=1.5)
        with pytest.raises(ValueError):
            SkewedDispatchSpec(probs=np.full(4, 0.25), placement=placement,
                               streamed=(9,))


# -- pricing compat oracle ---------------------------------------------------


class TestSkewPricingCompat:
    """Replication 1 + uniform gates + no prefetch == the old numbers."""

    def test_token_step_identity(self):
        _, _, model = small_moe_model()
        for batch in (1, 2, 16, 128):
            assert (model.skewed_token_step(batch).total
                    == model.token_step(batch).total)
            plain = model.token_step(batch)
            skewed = model.skewed_token_step(batch)
            assert plain.expert_time == skewed.expert_time
            assert plain.alltoall_time == skewed.alltoall_time
            assert skewed.stall_time == 0.0

    def test_step_cost_identity(self):
        cfg, par, model = small_moe_model()
        uni = SkewedDispatchSpec(
            probs=np.full(cfg.moe.num_experts,
                          1.0 / cfg.moe.num_experts),
            placement=uniform_placement(cfg.moe.num_experts, par.ep_degree))
        plain = MoEStepCost(model)
        skewed = MoEStepCost(model, skew=uni)
        state = BatchState.uniform(5, 77)
        assert plain.decode_cost(state) == skewed.decode_cost(state)
        assert (plain.prompt_cost(state, PromptShape(64))
                == skewed.prompt_cost(state, PromptShape(64)))
        np.testing.assert_array_equal(plain.decode_run_cost(state, 40),
                                      skewed.decode_run_cost(state, 40))

    def test_serving_identity(self):
        cfg, par, model = small_moe_model()
        trace = synthesize_trace(num_requests=60, arrival_rate=20.0,
                                 mean_prompt=32, mean_gen=16, seed=13)
        uni = SkewedDispatchSpec(
            probs=np.full(cfg.moe.num_experts,
                          1.0 / cfg.moe.num_experts),
            placement=uniform_placement(cfg.moe.num_experts, par.ep_degree))
        a = simulate_serving(trace, costs=MoEStepCost(model), max_batch=8)
        b = simulate_serving(trace, costs=MoEStepCost(model, skew=uni),
                             max_batch=8)
        assert a.makespan == b.makespan
        assert a.finish_times == b.finish_times

    def test_one_replica_fleet_identity(self):
        cfg, par, model = small_moe_model()
        trace = synthesize_trace(num_requests=40, arrival_rate=15.0,
                                 mean_prompt=24, mean_gen=12, seed=17)
        uni = SkewedDispatchSpec(
            probs=np.full(cfg.moe.num_experts,
                          1.0 / cfg.moe.num_experts),
            placement=uniform_placement(cfg.moe.num_experts, par.ep_degree))
        a = simulate_fleet(trace, num_replicas=1,
                           costs=MoEStepCost(model), max_batch=8)
        b = simulate_fleet(trace, num_replicas=1,
                           costs=MoEStepCost(model, skew=uni), max_batch=8)
        assert a.makespan == b.makespan
        assert a.tokens_per_second == b.tokens_per_second

    def test_vectorized_run_equals_scalar_loop_under_skew(self):
        cfg, par, model = small_moe_model()
        probs = zipf_expert_probs(cfg.moe.num_experts, 1.2, seed=3)
        plan = plan_placement(probs, par.ep_degree, replication=2,
                              num_hot=4)
        spec = SkewedDispatchSpec(
            probs=probs, placement=plan.placement, streamed=plan.streamed,
            prefetch_hit_rate=0.9,
            expert_fetch_time=model.expert_fetch_time())
        costs = MoEStepCost(model, skew=spec)
        state = BatchState.uniform(6, 50)
        run = costs.decode_run_cost(state, 30)
        ref = MoEStepCost(model, skew=spec)  # fresh memo: scalar path
        expect = [ref.decode_cost(state.advanced(i)) for i in range(30)]
        np.testing.assert_array_equal(run, expect)


class TestSkewPricingEffect:
    def test_skew_strictly_slower_than_uniform(self):
        cfg, par, model = small_moe_model()
        probs = zipf_expert_probs(cfg.moe.num_experts, 1.3, seed=0)
        skew = SkewedDispatchSpec(
            probs=probs,
            placement=uniform_placement(cfg.moe.num_experts, par.ep_degree))
        state = BatchState.uniform(16, 64)
        assert (MoEStepCost(model, skew=skew).decode_cost(state)
                > MoEStepCost(model).decode_cost(state))

    def test_replication_beats_uniform_placement(self):
        cfg, par, model = small_moe_model()
        probs = zipf_expert_probs(cfg.moe.num_experts, 1.3, seed=0)
        uni = SkewedDispatchSpec(
            probs=probs,
            placement=uniform_placement(cfg.moe.num_experts, par.ep_degree))
        plan = plan_placement(probs, par.ep_degree, replication=4,
                              num_hot=8)
        rep = SkewedDispatchSpec(
            probs=probs, placement=plan.placement, streamed=plan.streamed,
            prefetch_hit_rate=0.9,
            expert_fetch_time=model.expert_fetch_time())
        state = BatchState.uniform(16, 64)
        assert (MoEStepCost(model, skew=rep).decode_cost(state)
                < MoEStepCost(model, skew=uni).decode_cost(state))

    def test_skew_guard_rejects_bad_spec(self):
        _, _, model = small_moe_model()
        with pytest.raises(TypeError):
            MoEStepCost(model, skew=object())


class TestTunerReplicationSweep:
    def test_skewed_trace_tunes_replication(self):
        cfg = MOE_ZOO["1.3b-moe-128"]
        cluster = dgx_a100_cluster(16)
        trace = synthesize_trace(num_requests=40, arrival_rate=30.0,
                                 mean_prompt=32, mean_gen=16,
                                 expert_skew=1.3, seed=23)
        assert trace.expert_skew == 1.3
        result = tune_serving_deployment(cfg, cluster, trace)
        assert result.replication in (1, 2, 4)

    def test_unskewed_trace_keeps_replication_one(self):
        cfg = MOE_ZOO["1.3b-moe-128"]
        cluster = dgx_a100_cluster(16)
        trace = synthesize_trace(num_requests=40, arrival_rate=30.0,
                                 mean_prompt=32, mean_gen=16, seed=23)
        result = tune_serving_deployment(cfg, cluster, trace)
        assert result.replication == 1
