"""Tests for collective cost models (alpha-beta, hierarchical, PCC)."""

import pytest
from hypothesis import given, strategies as st

from repro.comm import (
    CommGroup,
    allgather_time,
    allreduce_time,
    alltoall_time,
    baseline_alltoall,
    broadcast_time,
    group_allreduce_time,
    hierarchical_allreduce_time,
    naive_alltoall_time,
    p2p_time,
    pcc_alltoall,
    reduce_scatter_time,
)
from repro.hardware import INFINIBAND_HDR, LinkSpec, NVLINK3, dgx_a100_cluster

LINK = LinkSpec(name="test", bandwidth=100.0, latency=0.01)


class TestAlphaBeta:
    def test_p2p(self):
        assert p2p_time(LINK, 200.0) == pytest.approx(0.01 + 2.0)

    def test_single_rank_collectives_are_free(self):
        for fn in (allreduce_time, allgather_time, alltoall_time, broadcast_time):
            assert fn(LINK, 1e6, 1).total == 0.0

    def test_allreduce_moves_2p_minus_1_over_p(self):
        c = allreduce_time(LINK, 100.0, 4)
        assert c.bandwidth_term == pytest.approx(2 * 3 / 4 * 100.0 / 100.0)
        assert c.latency_term == pytest.approx(6 * 0.01)

    def test_allgather_is_half_an_allreduce(self):
        ar = allreduce_time(LINK, 100.0, 8)
        ag = allgather_time(LINK, 100.0, 8)
        assert ag.bandwidth_term == pytest.approx(ar.bandwidth_term / 2)

    def test_reduce_scatter_matches_allgather(self):
        assert reduce_scatter_time(LINK, 64.0, 4).total == pytest.approx(
            allgather_time(LINK, 64.0, 4).total
        )

    def test_broadcast_log_steps(self):
        c = broadcast_time(LINK, 100.0, 8)
        assert c.latency_term == pytest.approx(3 * 0.01)

    def test_alltoall_latency_linear_in_p(self):
        c16 = alltoall_time(LINK, 100.0, 16)
        c64 = alltoall_time(LINK, 100.0, 64)
        assert c64.latency_term == pytest.approx(c16.latency_term * 63 / 15)

    def test_naive_alltoall_adds_per_peer_overhead(self):
        fast = alltoall_time(LINK, 100.0, 8)
        slow = naive_alltoall_time(LINK, 100.0, 8, overhead_per_peer=0.05)
        assert slow.total == pytest.approx(fast.total + 7 * 0.05)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            allreduce_time(LINK, -1.0, 2)
        with pytest.raises(ValueError):
            allreduce_time(LINK, 1.0, 0)


@given(
    nbytes=st.floats(min_value=1.0, max_value=1e9),
    p=st.integers(min_value=2, max_value=512),
)
def test_allreduce_cost_monotone_in_ranks(nbytes, p):
    """Bandwidth term grows toward 2*nbytes/bw; latency grows linearly."""
    a = allreduce_time(LINK, nbytes, p)
    b = allreduce_time(LINK, nbytes, p + 1)
    assert b.latency_term > a.latency_term
    assert b.bandwidth_term >= a.bandwidth_term
    assert a.bandwidth_term <= 2 * nbytes / LINK.bandwidth + 1e-12


class TestHierarchical:
    def setup_method(self):
        self.cluster = dgx_a100_cluster(4)  # 32 GPUs

    def test_group_structure(self):
        g = CommGroup(self.cluster, list(range(16)))
        assert g.size == 16
        assert g.num_nodes == 2
        assert g.is_balanced
        assert g.ranks_per_node == 8

    def test_single_node_group_uses_nvlink(self):
        g = CommGroup(self.cluster, list(range(8)))
        t = hierarchical_allreduce_time(g, 1e6).total
        expected = allreduce_time(NVLINK3, 1e6, 8).total
        assert t == pytest.approx(expected)

    def test_cross_node_slower_than_intra_node(self):
        intra = group_allreduce_time(self.cluster, 1e8, list(range(8)))
        inter = group_allreduce_time(self.cluster, 1e8, list(range(16)))
        assert inter > intra

    def test_hierarchical_beats_flat_ib_ring(self):
        # The point of the 2-level algorithm: only a 1/g shard crosses IB.
        g = CommGroup(self.cluster, list(range(32)))
        hier = hierarchical_allreduce_time(g, 1e8).total
        flat = allreduce_time(INFINIBAND_HDR, 1e8, 32).total
        assert hier < flat

    def test_unbalanced_group_rejected(self):
        g = CommGroup(self.cluster, list(range(8)) + [8])
        with pytest.raises(ValueError):
            hierarchical_allreduce_time(g, 1e6)

    def test_duplicate_ranks_rejected(self):
        with pytest.raises(ValueError):
            CommGroup(self.cluster, [0, 0, 1])

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            CommGroup(self.cluster, [])

    def test_size_one_group_free(self):
        g = CommGroup(self.cluster, [3])
        assert hierarchical_allreduce_time(g, 1e9).total == 0.0


class TestPCC:
    def setup_method(self):
        self.cluster = dgx_a100_cluster(16)  # 128 GPUs

    def test_pcc_shrinks_latency_by_tp_degree(self):
        """The paper's 128-GPU / 8-way slicing example: 128*C1 -> 16*C1."""
        base = baseline_alltoall(self.cluster, 1e6, 128)
        opt = pcc_alltoall(self.cluster, 1e6, 128, tp_degree=8)
        # latency steps: 127 vs 15
        assert base.alltoall.latency_term == pytest.approx(
            127 * self.cluster.inter_link.latency
        )
        assert opt.alltoall.latency_term == pytest.approx(
            15 * self.cluster.inter_link.latency
        )
        assert opt.total < base.total

    def test_ep_to_tp_adds_allgather(self):
        fwd = pcc_alltoall(self.cluster, 1e6, 128, tp_degree=8, direction="tp_to_ep")
        back = pcc_alltoall(self.cluster, 1e6, 128, tp_degree=8, direction="ep_to_tp")
        assert back.allgather.total > 0.0
        assert fwd.allgather.total == 0.0
        assert back.total > fwd.total

    def test_tp_degree_one_matches_baseline_alltoall(self):
        base = baseline_alltoall(self.cluster, 1e6, 64)
        opt = pcc_alltoall(self.cluster, 1e6, 64, tp_degree=1, transform_time=0.0)
        assert opt.alltoall.total == pytest.approx(base.alltoall.total)

    def test_small_subgroup_falls_back_to_nvlink(self):
        # p/L <= 8 keeps the all-to-all inside one node.
        opt = pcc_alltoall(self.cluster, 1e6, 64, tp_degree=8)
        assert opt.alltoall.latency_term == pytest.approx(
            7 * self.cluster.node.intra_link.latency
        )

    def test_indivisible_tp_degree_rejected(self):
        with pytest.raises(ValueError):
            pcc_alltoall(self.cluster, 1e6, 100, tp_degree=8)

    def test_unknown_direction_rejected(self):
        with pytest.raises(ValueError):
            pcc_alltoall(self.cluster, 1e6, 64, tp_degree=8, direction="sideways")

    @given(tp=st.sampled_from([1, 2, 4, 8]))
    def test_pcc_never_slower_than_baseline_at_scale(self, tp):
        base = baseline_alltoall(self.cluster, 4e6, 128).total
        opt = pcc_alltoall(self.cluster, 4e6, 128, tp_degree=tp).total
        assert opt <= base * 1.05  # allow transform epsilon at tp=1
