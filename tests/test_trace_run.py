"""Tests for deployment execution traces + engine-level properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import DenseLatencyModel, Workload
from repro.engine.trace_run import trace_generation
from repro.hardware import dgx_a100_cluster
from repro.model import DENSE_ZOO, scaled_config

CLUSTER = dgx_a100_cluster(4)


class TestDeploymentTrace:
    def setup_method(self):
        self.model = DenseLatencyModel(DENSE_ZOO["lm-175b"], CLUSTER,
                                       tp=8, pp=2)
        self.w = Workload(batch=16, prompt_len=128, gen_tokens=6)
        self.trace = trace_generation(self.model, self.w)

    def test_one_lane_per_gpu(self):
        gpu_lanes = [l for l in self.trace.timeline.lanes()
                     if l.startswith("stage")]
        assert len(gpu_lanes) == 16  # tp8 x pp2

    def test_no_lane_overlaps(self):
        for lane in self.trace.timeline.lanes():
            assert not self.trace.timeline.has_overlap(lane), lane

    def test_kernel_and_allreduce_spans_present(self):
        labels = {s.label for s in
                  self.trace.timeline.spans(self.trace.gpu_lane(0, 0))}
        assert any(l.endswith(":kernels") for l in labels)
        assert any(l.endswith(":allreduce") for l in labels)

    def test_tp_ranks_mirror_each_other(self):
        a = self.trace.timeline.spans(self.trace.gpu_lane(0, 0))
        b = self.trace.timeline.spans(self.trace.gpu_lane(0, 7))
        assert [(s.start, s.end) for s in a] == [(s.start, s.end) for s in b]

    def test_makespan_matches_estimate(self):
        report = self.model.estimate(self.w)
        assert self.trace.makespan == pytest.approx(report.total_latency)

    def test_utilization_in_range(self):
        u = self.trace.mean_gpu_utilization()
        assert 0.3 < u <= 1.0

    def test_chrome_export_loads(self):
        import json

        events = self.trace.to_chrome_trace()
        assert events
        parsed = json.loads(json.dumps(events))
        assert all(e["ph"] == "X" for e in parsed)

    def test_single_gpu_trace(self):
        model = DenseLatencyModel(DENSE_ZOO["gpt-13b"], CLUSTER, tp=1, pp=1)
        tr = trace_generation(model, Workload(batch=1, prompt_len=16,
                                              gen_tokens=2))
        assert tr.timeline.lanes() == ["stage0/tp0"]
        # No all-reduce spans on a single GPU.
        labels = {s.label for s in tr.timeline.spans("stage0/tp0")}
        assert not any(l.endswith(":allreduce") for l in labels)


class TestEngineProperties:
    @given(
        layers=st.integers(min_value=2, max_value=24),
        hidden_mult=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=20, deadline=None)
    def test_latency_monotone_in_model_size(self, layers, hidden_mult):
        """More layers or wider hidden never decreases token latency."""
        from repro.model import ModelConfig

        base = ModelConfig(name="p", hidden=1024 * hidden_mult, layers=layers,
                           heads=8)
        bigger = ModelConfig(name="q", hidden=1024 * hidden_mult,
                             layers=layers + 2, heads=8)
        w = Workload(batch=1, prompt_len=16, gen_tokens=1)
        t_a = DenseLatencyModel(base, CLUSTER).estimate(w).token_latency
        t_b = DenseLatencyModel(bigger, CLUSTER).estimate(w).token_latency
        assert t_b > t_a

    @given(target=st.sampled_from([5e9, 20e9, 60e9, 150e9]))
    @settings(max_examples=8, deadline=None)
    def test_planner_plans_fit(self, target):
        """Whatever the planner chooses actually fits the memory budget."""
        from repro.parallel import plan_dense

        cfg = scaled_config(target)
        plan = plan_dense(cfg, CLUSTER, batch=1, seq_len=256)
        assert plan.memory_per_gpu <= CLUSTER.gpu.memory_bytes * 0.95
        assert plan.gpus <= CLUSTER.num_gpus
        assert cfg.heads % plan.tp == 0
