"""Tests for repro.autoscale: signals, policy, verifier, closed loop.

Unit tests drive the detect/propose/verify stages with hand-built
snapshots; integration tests run the full loop inside
``simulate_fleet`` and check the acceptance properties — the loop
grows under sustained overload, replaces dead and throttled replicas,
respects the GPU budget, and (crucially) a *disabled or inert*
autoscaler leaves the simulator's output bit-for-bit untouched.
"""

import math

import pytest

from repro.autoscale import (
    AutoscaleConfig,
    Autoscaler,
    ReplicaSnapshot,
    ScaleAction,
    ScalePolicy,
    SignalCollector,
    resolve_autoscaler,
    tune_autoscaler,
)
from repro.engine import synthesize_trace
from repro.engine.costs import resolve_step_costs
from repro.fleet import FaultPlan, ReplicaFault, simulate_fleet

COSTS = dict(prompt_time=lambda b, p: 0.02 + 0.001 * p,
             step_time=lambda b: 0.01 + 0.001 * b)


def _snap(index, *, alive=True, draining=False, retired=False, queue=0,
          active=0, outstanding=0, done=0):
    return ReplicaSnapshot(
        index=index, alive=alive, draining=draining, retired=retired,
        queue_depth=queue, active_depth=active,
        outstanding_tokens=outstanding, done_tokens=done)


def _cfg(**kw):
    kw.setdefault("min_replicas", 1)
    kw.setdefault("max_replicas", 4)
    kw.setdefault("ttft_slo_s", 0.5)
    kw.setdefault("epoch_s", 1.0)
    kw.setdefault("cold_start_s", 0.5)
    return AutoscaleConfig(**kw)


class TestSignalCollector:
    def test_rolling_window_prunes_old_samples(self):
        col = SignalCollector(window_s=2.0)
        col.observe(1.0, [_snap(0)], max_batch=4,
                    ttft_samples=[(0.5, 0.1), (0.9, 0.2)])
        sig = col.observe(4.0, [_snap(0)], max_batch=4,
                          ttft_samples=[(3.5, 0.3)])
        assert sig.window_samples == 1  # the t<2.0 samples fell out
        assert sig.ttft_p99_s == pytest.approx(0.3)

    def test_p99_none_until_first_sample(self):
        col = SignalCollector(window_s=5.0)
        sig = col.observe(1.0, [_snap(0)], max_batch=4)
        assert sig.ttft_p99_s is None

    def test_service_rate_is_done_token_delta(self):
        col = SignalCollector(window_s=5.0)
        col.observe(1.0, [_snap(0, done=10)], max_batch=4)
        sig = col.observe(3.0, [_snap(0, done=50)], max_batch=4)
        assert sig.service_rate[0] == pytest.approx(20.0)  # 40 tok / 2 s

    def test_ema_smooths_outstanding(self):
        col = SignalCollector(window_s=5.0, ema_alpha=0.5)
        col.observe(1.0, [_snap(0, outstanding=100)], max_batch=4)
        sig = col.observe(2.0, [_snap(0, outstanding=0)], max_batch=4)
        assert sig.outstanding_ema[0] == pytest.approx(50.0)

    def test_fleet_aggregates_exclude_dead_and_draining(self):
        col = SignalCollector(window_s=5.0)
        sig = col.observe(1.0, [
            _snap(0, queue=4, active=2),
            _snap(1, draining=True, queue=2, active=1),
            _snap(2, alive=False, queue=9),
        ], max_batch=4)
        assert sig.live_replicas == 2        # dead excluded
        assert sig.routable_replicas == 1    # draining excluded too
        assert sig.queue_depth == 6          # live queues only
        assert sig.mean_queue_depth == pytest.approx(6.0)  # per routable
        assert sig.slot_util == pytest.approx(3 / 8)

    def test_validation(self):
        with pytest.raises(ValueError, match="window_s"):
            SignalCollector(window_s=0.0)
        with pytest.raises(ValueError, match="ema_alpha"):
            SignalCollector(window_s=1.0, ema_alpha=0.0)


class TestScalePolicy:
    def _signals(self, col, now, snaps, samples=()):
        return col.observe(now, snaps, max_batch=4, ttft_samples=samples)

    def test_scale_out_needs_sustained_overload(self):
        cfg = _cfg(sustain_epochs=2, queue_high_depth=2.0)
        pol = ScalePolicy(cfg)
        col = SignalCollector(window_s=8.0)
        snaps = [_snap(0, queue=10, active=4)]
        sig = self._signals(col, 1.0, snaps)
        first = pol.propose(sig, snaps, capacity_replicas=1,
                            dead_unreplaced=[], cold_start_s=0.5)
        assert all(a.kind != "scale_out" for a in first)  # 1 epoch: hold
        sig = self._signals(col, 2.0, snaps)
        second = pol.propose(sig, snaps, capacity_replicas=1,
                             dead_unreplaced=[], cold_start_s=0.5)
        assert any(a.kind == "scale_out" for a in second)

    def test_calm_fleet_proposes_nothing(self):
        cfg = _cfg(sustain_epochs=1, queue_low_depth=0.5)
        pol = ScalePolicy(cfg)
        col = SignalCollector(window_s=8.0)
        # Mid-band: queue above the low watermark, under the high one.
        snaps = [_snap(0, queue=1, active=2, done=50),
                 _snap(1, queue=1, active=2, done=50)]
        for now in (1.0, 2.0, 3.0):
            sig = self._signals(col, now, snaps,
                                samples=[(now - 0.1, 0.3)])  # p99 in-band
            acts = pol.propose(sig, snaps, capacity_replicas=2,
                               dead_unreplaced=[], cold_start_s=0.5)
            assert acts == []

    def test_dead_replica_replacement_bypasses_sustain(self):
        pol = ScalePolicy(_cfg(sustain_epochs=3))
        col = SignalCollector(window_s=8.0)
        snaps = [_snap(0, alive=False), _snap(1, queue=1)]
        sig = self._signals(col, 1.0, snaps)
        acts = pol.propose(sig, snaps, capacity_replicas=1,
                           dead_unreplaced=[0], cold_start_s=0.5)
        assert acts[0].kind == "replace" and acts[0].replica == 0

    def test_replace_outranks_scale_out(self):
        pol = ScalePolicy(_cfg(sustain_epochs=1, queue_high_depth=1.0))
        col = SignalCollector(window_s=8.0)
        snaps = [_snap(0, alive=False), _snap(1, queue=20, active=4)]
        sig = self._signals(col, 1.0, snaps)
        acts = pol.propose(sig, snaps, capacity_replicas=1,
                           dead_unreplaced=[0], cold_start_s=0.5)
        kinds = [a.kind for a in acts]
        assert kinds.index("replace") < kinds.index("scale_out")

    def test_slow_replica_reweighted_then_replaced(self):
        # window_s=1.0 keeps the up-since grace period shorter than the
        # test's epoch spacing, so both replicas are rate-eligible.
        cfg = _cfg(sustain_epochs=2, slow_replica_ratio=0.4, window_s=1.0)
        pol = ScalePolicy(cfg)
        col = SignalCollector(window_s=8.0)

        def snaps_at(epoch):
            # Replica 1 produces tokens at 1/5th the peer rate.
            return [_snap(0, active=2, queue=1, done=500 * epoch),
                    _snap(1, active=2, queue=1, done=100 * epoch)]

        self._signals(col, 0.0, snaps_at(0))  # baseline for rate deltas
        sig = self._signals(col, 1.0, snaps_at(1))
        acts = pol.propose(sig, snaps_at(1), capacity_replicas=2,
                           dead_unreplaced=[], cold_start_s=0.5)
        assert acts == []  # one slow epoch is noise
        sig = self._signals(col, 2.0, snaps_at(2))
        acts = pol.propose(sig, snaps_at(2), capacity_replicas=2,
                           dead_unreplaced=[], cold_start_s=0.5)
        kinds = {a.kind for a in acts}
        assert "reweight" in kinds and "replace" in kinds
        rw = next(a for a in acts if a.kind == "reweight")
        assert rw.replica == 1 and rw.weight < 1.0

    def test_scale_in_targets_least_loaded(self):
        cfg = _cfg(sustain_epochs=1, queue_low_depth=1.0)
        pol = ScalePolicy(cfg)
        col = SignalCollector(window_s=8.0)
        snaps = [_snap(0, outstanding=500), _snap(1, outstanding=10)]
        sig = self._signals(col, 1.0, snaps, samples=[(0.9, 0.01)])
        acts = pol.propose(sig, snaps, capacity_replicas=2,
                           dead_unreplaced=[], cold_start_s=0.5)
        ins = [a for a in acts if a.kind == "scale_in"]
        assert len(ins) == 1 and ins[0].replica == 1


class TestAutoscalerVerifier:
    def _overloaded_epoch(self, scaler, now, n=1):
        snaps = [_snap(i, queue=10, active=4) for i in range(n)]
        return scaler.epoch(now, snaps, pending_joins=0, max_batch=4)

    def _bind(self, scaler):
        scaler.bind(costs=resolve_step_costs(None, **COSTS),
                    initial_replicas=scaler.config.min_replicas)
        return scaler

    def test_budget_cap_blocks_scale_out(self):
        scaler = self._bind(Autoscaler(_cfg(
            min_replicas=1, max_replicas=1, sustain_epochs=1)))
        for now in (1.0, 2.0, 3.0):
            _, acts = self._overloaded_epoch(scaler, now)
            assert all(a.kind != "scale_out" for a in acts)

    def test_cooldown_then_aging_admits_again(self):
        scaler = self._bind(Autoscaler(_cfg(
            max_replicas=8, sustain_epochs=1, scale_out_cooldown_s=2.5)))
        admitted = []
        for now in (1.0, 2.0, 3.0, 4.0, 5.0):
            _, acts = self._overloaded_epoch(scaler, now)
            admitted += [(now, a.kind) for a in acts if a.kind == "scale_out"]
        # t=1 admits; t=2,3 are inside the 2.5 s cooldown; t=4 clears it.
        assert admitted == [(1.0, "scale_out"), (4.0, "scale_out")]

    def test_blocked_scale_out_accrues_aging(self):
        scaler = self._bind(Autoscaler(_cfg(
            max_replicas=8, sustain_epochs=1, scale_out_cooldown_s=100.0)))
        self._overloaded_epoch(scaler, 1.0)   # admitted, arms cooldown
        self._overloaded_epoch(scaler, 2.0)   # blocked
        self._overloaded_epoch(scaler, 3.0)   # blocked again
        assert scaler._aging.get("scale_out:None", 0) >= 2

    def test_replace_is_once_per_replica(self):
        scaler = self._bind(Autoscaler(_cfg(min_replicas=1, max_replicas=2)))
        snaps = [_snap(0, alive=False), _snap(1, queue=1)]
        _, first = scaler.epoch(1.0, snaps, pending_joins=0, max_batch=4)
        assert [a.kind for a in first] == ["replace"]
        _, second = scaler.epoch(2.0, snaps, pending_joins=1, max_batch=4)
        assert all(a.kind != "replace" for a in second)

    def test_scale_in_blocked_at_min(self):
        scaler = self._bind(Autoscaler(_cfg(
            min_replicas=2, max_replicas=4, sustain_epochs=1,
            queue_low_depth=5.0, queue_high_depth=50.0)))
        snaps = [_snap(0), _snap(1)]
        for now in (1.0, 2.0, 3.0):
            _, acts = scaler.epoch(now, snaps, pending_joins=0, max_batch=4)
            assert all(a.kind != "scale_in" for a in acts)

    def test_bind_rejects_reuse_and_out_of_budget_start(self):
        scaler = self._bind(Autoscaler(_cfg()))
        with pytest.raises(RuntimeError, match="may not be reused"):
            self._bind(scaler)
        fresh = Autoscaler(_cfg(min_replicas=2, max_replicas=4))
        with pytest.raises(ValueError, match="outside the autoscale budget"):
            fresh.bind(costs=resolve_step_costs(None, **COSTS),
                       initial_replicas=1)

    def test_epoch_before_bind_raises(self):
        with pytest.raises(RuntimeError, match="bind"):
            Autoscaler(_cfg()).epoch(1.0, [], pending_joins=0, max_batch=4)

    def test_cold_start_derived_from_cost_model(self):
        cfg = _cfg(cold_start_s=None, warmup_prompts=4, mean_prompt=100)
        scaler = Autoscaler(cfg)
        scaler.bind(costs=resolve_step_costs(None, **COSTS),
                    initial_replicas=1)
        assert scaler.cold_start_s == pytest.approx(4 * (0.02 + 0.001 * 100))

    def test_resolve_autoscaler(self):
        assert resolve_autoscaler(None) is None
        scaler = Autoscaler(_cfg())
        assert resolve_autoscaler(scaler) is scaler
        assert isinstance(resolve_autoscaler(_cfg()), Autoscaler)
        with pytest.raises(TypeError, match="autoscaler"):
            resolve_autoscaler("yes please")


class TestConfigValidation:
    @pytest.mark.parametrize("kw,match", [
        (dict(min_replicas=0), "min_replicas"),
        (dict(min_replicas=3, max_replicas=2), "max_replicas"),
        (dict(ttft_slo_s=0.0), "ttft_slo_s"),
        (dict(epoch_s=0.0), "epoch_s"),
        (dict(window_s=0.0), "window_s"),
        (dict(queue_low_depth=9.0, queue_high_depth=4.0), "hysteresis"),
        (dict(sustain_epochs=0), "sustain_epochs"),
        (dict(cold_start_s=-1.0), "cold_start_s"),
        (dict(slow_replica_ratio=1.0), "slow_replica_ratio"),
    ])
    def test_rejects(self, kw, match):
        with pytest.raises(ValueError, match=match):
            _cfg(**kw)

    def test_action_validation(self):
        with pytest.raises(ValueError, match="kind"):
            ScaleAction(kind="explode")
        with pytest.raises(ValueError, match="replica"):
            ScaleAction(kind="scale_in")
        with pytest.raises(ValueError, match="weight"):
            ScaleAction(kind="reweight", replica=0, weight=0.0)

    def test_resolved_defaults_scale_with_epoch(self):
        cfg = _cfg(epoch_s=0.5)
        assert cfg.resolved_window_s == pytest.approx(4.0)
        assert cfg.resolved_out_cooldown_s == pytest.approx(2.0)
        assert cfg.resolved_in_cooldown_s == pytest.approx(6.0)


def _diurnal_trace(n=600, rate=60.0, seed=7):
    return synthesize_trace(num_requests=n, arrival_rate=rate,
                            mean_prompt=32, mean_gen=16,
                            arrival_shape="diurnal", seed=seed)


def _max_concurrent(lifetimes):
    """Peak number of simultaneously-up replicas from lifetime segments."""
    events = []
    for segments in lifetimes.values():
        for start, end in segments:
            events.append((start, 1))
            events.append((end, -1))
    peak = depth = 0
    for _, delta in sorted(events):
        depth += delta
        peak = max(peak, depth)
    return peak


class TestClosedLoop:
    def test_diurnal_overload_scales_out_and_completes(self):
        trace = _diurnal_trace()
        rep = simulate_fleet(
            trace, num_replicas=1, max_batch=4, **COSTS,
            routing="least_outstanding",
            autoscaler=AutoscaleConfig(min_replicas=1, max_replicas=4,
                                       ttft_slo_s=0.5, epoch_s=0.5))
        assert rep.num_completed == len(trace.requests)
        kinds = [e.kind for e in rep.autoscale_log]
        assert "scale_out" in kinds and "join" in kinds
        assert rep.num_replicas > 1          # the pool actually grew
        assert 1.0 < rep.avg_replicas <= 4.0
        assert len(rep.telemetry) > 0        # epoch signals recorded

    def test_budget_never_exceeded(self):
        trace = _diurnal_trace(n=800, rate=90.0)
        cfg = AutoscaleConfig(min_replicas=1, max_replicas=3,
                              ttft_slo_s=0.2, epoch_s=0.5, sustain_epochs=1)
        rep = simulate_fleet(trace, num_replicas=1, max_batch=4, **COSTS,
                             routing="least_outstanding", autoscaler=cfg)
        # max_replicas + 1 is legal only transiently during a
        # drain-and-replace overlap; plain growth must stay at max.
        assert _max_concurrent(rep.replica_lifetimes) <= 4
        joins = sum(1 for e in rep.autoscale_log if e.kind == "join")
        replaces = sum(1 for e in rep.autoscale_log if e.kind == "replace")
        assert joins <= 2 + replaces  # 1 -> 3 plus one join per replace

    def test_crash_triggers_drain_and_replace(self):
        trace = _diurnal_trace(n=400, rate=50.0)
        plan = FaultPlan((ReplicaFault(1, 1.0),))
        rep = simulate_fleet(
            trace, num_replicas=2, max_batch=4, **COSTS,
            routing="least_outstanding", fault_plan=plan,
            autoscaler=AutoscaleConfig(min_replicas=2, max_replicas=3,
                                       ttft_slo_s=0.5, epoch_s=0.5))
        assert rep.num_completed == len(trace.requests)
        events = {e.kind for e in rep.autoscale_log}
        assert "replace" in events and "join" in events
        # The replacement is a genuinely new replica in the pool.
        assert rep.num_replicas >= 3
        joined = [s for s in rep.replica_stats if s.join_time > 0.0]
        assert joined and all(s.num_requests >= 0 for s in joined)

    def test_slowdown_triggers_reweight(self):
        trace = synthesize_trace(num_requests=500, arrival_rate=60.0,
                                 mean_prompt=32, mean_gen=16, seed=5)
        plan = FaultPlan((
            ReplicaFault(1, 0.5, kind="slowdown", factor=8.0),))
        rep = simulate_fleet(
            trace, num_replicas=2, max_batch=4, **COSTS,
            routing="least_outstanding", fault_plan=plan,
            autoscaler=AutoscaleConfig(min_replicas=2, max_replicas=3,
                                       ttft_slo_s=0.5, epoch_s=0.5,
                                       window_s=2.0))
        assert rep.num_completed == len(trace.requests)
        events = {e.kind for e in rep.autoscale_log}
        assert "reweight" in events
        assert "replace" in events  # sustained throttle earns a fresh boot

    def test_scale_in_during_lull(self):
        # Full-amplitude diurnal: the trough between the two peaks has
        # near-zero arrivals, so the loop must shed the replicas it grew
        # for the first peak. The short TTFT window lets the peak's tail
        # samples age out quickly once the lull starts.
        trace = synthesize_trace(
            num_requests=800, arrival_rate=40.0, mean_prompt=16, mean_gen=8,
            arrival_shape="diurnal", diurnal_amplitude=1.0, seed=9)
        rep = simulate_fleet(
            trace, num_replicas=2, max_batch=4, **COSTS,
            routing="least_outstanding",
            autoscaler=AutoscaleConfig(
                min_replicas=1, max_replicas=4, ttft_slo_s=0.3, epoch_s=0.5,
                sustain_epochs=1, window_s=1.0, scale_in_cooldown_s=1.0))
        assert rep.num_completed == len(trace.requests)
        kinds = [e.kind for e in rep.autoscale_log]
        assert "scale_in" in kinds
        retired = [s for s in rep.replica_stats if s.retire_time is not None]
        assert retired  # a drained replica actually left the pool


class TestInertAutoscalerExactness:
    """Acceptance (d): an inert autoscaler must not move a single bit."""

    FIELDS = ("makespan", "finish_times", "first_token_times",
              "queue_delays", "replica_of", "retried", "total_tokens",
              "tokens_discarded")

    def _assert_identical(self, a, b):
        for name in self.FIELDS:
            assert getattr(a, name) == getattr(b, name), name
        assert a.routing == b.routing

    def test_pinned_budget_matches_autoscaler_off(self):
        trace = _diurnal_trace(n=300, rate=40.0)
        base = simulate_fleet(trace, num_replicas=3, max_batch=4, **COSTS,
                              routing="least_outstanding")
        pinned = simulate_fleet(
            trace, num_replicas=3, max_batch=4, **COSTS,
            routing="least_outstanding",
            autoscaler=AutoscaleConfig(min_replicas=3, max_replicas=3,
                                       ttft_slo_s=1e9, epoch_s=0.5))
        self._assert_identical(base, pinned)
        assert pinned.autoscale_log == ()
        assert len(pinned.telemetry) > 0  # it watched, it just never acted

    def test_pinned_budget_still_replaces_dead_replicas(self):
        # Criterion (d) pins the output only for "min==max and no
        # faults": a crash is remediation, not growth, so even a pinned
        # budget must boot a replacement (the drain/boot overlap rides
        # the max+1 allowance) and restore the pool to full strength.
        trace = _diurnal_trace(n=300, rate=40.0)
        plan = FaultPlan((ReplicaFault(0, 1.0),))
        pinned = simulate_fleet(
            trace, num_replicas=3, max_batch=4, **COSTS,
            routing="least_outstanding", fault_plan=plan,
            autoscaler=AutoscaleConfig(min_replicas=3, max_replicas=3,
                                       ttft_slo_s=1e9, epoch_s=0.5))
        assert pinned.num_completed == len(trace.requests)
        kinds = [e.kind for e in pinned.autoscale_log]
        assert "replace" in kinds and "join" in kinds
        assert all(k not in ("scale_out", "scale_in") for k in kinds)
        assert pinned.num_replicas == 4  # original pool + the replacement

    @pytest.mark.parametrize("seed", [3, 11])
    def test_event_compression_exact_across_scale_events(self, seed):
        """The compressed fast path must match the per-step oracle even
        when epochs, joins and drains split decode stretches."""
        trace = _diurnal_trace(n=350, rate=55.0, seed=seed)

        def run(**kw):
            return simulate_fleet(
                trace, num_replicas=1, max_batch=4, **COSTS,
                routing="least_outstanding",
                autoscaler=AutoscaleConfig(
                    min_replicas=1, max_replicas=4, ttft_slo_s=0.4,
                    epoch_s=0.5), **kw)

        fast, oracle = run(), run(_max_run_steps=1)
        for name in self.FIELDS:
            assert getattr(fast, name) == getattr(oracle, name), name
        assert fast.autoscale_log == oracle.autoscale_log
        assert fast.replica_lifetimes == oracle.replica_lifetimes


class TestTuneAutoscaler:
    def _base(self):
        return AutoscaleConfig(min_replicas=1, max_replicas=3,
                               ttft_slo_s=0.6, epoch_s=0.5)

    def test_sweep_is_exhaustive_and_ranked(self):
        trace = _diurnal_trace(n=250, rate=45.0)
        result = tune_autoscaler(
            trace, self._base(),
            costs=resolve_step_costs(None, **COSTS), max_batch=4,
            epoch_grid=(0.5, 1.0), queue_high_grid=(2.0, 4.0),
            sustain_grid=(1, 2))
        assert len(result.candidates) == 2 * 2 * 2
        assert result.best in result.candidates
        if any(c.meets_slo for c in result.candidates):
            assert result.best.meets_slo
            floor = min(c.avg_replicas for c in result.candidates
                        if c.meets_slo)
            assert result.best.avg_replicas == pytest.approx(floor)
        rows = result.table
        assert len(rows) == len(result.candidates)
        assert {"epoch_s", "ttft_p99_s", "avg_replicas"} <= rows[0].keys()

    def test_deterministic(self):
        trace = _diurnal_trace(n=150, rate=40.0)
        kw = dict(costs=resolve_step_costs(None, **COSTS), max_batch=4,
                  epoch_grid=(0.5,), queue_high_grid=(4.0,),
                  sustain_grid=(1,))
        a = tune_autoscaler(trace, self._base(), **kw)
        b = tune_autoscaler(trace, self._base(), **kw)
        assert a.best.ttft_p99_s == b.best.ttft_p99_s
        assert a.table == b.table


def test_autoscaled_beats_fixed_fleet_of_equal_cost():
    """The headline property (acceptance (c), miniature edition): on a
    bursty diurnal trace the closed loop beats every fixed fleet of no
    greater average GPU cost on P99 TTFT. The committed benchmark runs
    the 100k-request version of this with the same structure."""
    trace = synthesize_trace(
        num_requests=2000, arrival_rate=30.0, mean_prompt=32, mean_gen=16,
        arrival_shape="diurnal", diurnal_amplitude=1.0, seed=13)
    auto = simulate_fleet(
        trace, num_replicas=1, max_batch=4, **COSTS,
        routing="least_outstanding",
        autoscaler=AutoscaleConfig(min_replicas=1, max_replicas=6,
                                   ttft_slo_s=0.3, epoch_s=0.5,
                                   sustain_epochs=1,
                                   scale_out_cooldown_s=1.0, mean_prompt=32))
    budget = math.floor(auto.avg_replicas)  # k=ceil would cost MORE GPU
    p99_auto = auto.ttft_percentile(trace, 99)
    assert budget >= 2  # the loop actually grew; the bar is not trivial
    for k in range(1, budget + 1):
        fixed = simulate_fleet(trace, num_replicas=k, max_batch=4, **COSTS,
                               routing="least_outstanding")
        assert p99_auto < fixed.ttft_percentile(trace, 99), (
            f"fixed fleet of {k} (cost <= {auto.avg_replicas:.2f}) "
            f"beat the autoscaler")
