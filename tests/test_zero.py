"""Tests for ZeRO-Inference: tiers, streaming pipeline, engine (Sec. VI)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware import dgx2_v100, lambda_a6000_workstation
from repro.model import get_model
from repro.zero import (
    Tier,
    TieredWeightStore,
    ZeroInferenceEngine,
    placement_for,
    simulate_layer_stream,
)

WS = lambda_a6000_workstation(1)


class TestPlacement:
    def test_small_model_rests_in_dram(self):
        assert placement_for(100e9, WS) is Tier.DRAM

    def test_huge_model_goes_to_nvme(self):
        assert placement_for(1.06e12, WS) is Tier.NVME

    def test_beyond_nvme_rejected(self):
        with pytest.raises(ValueError, match="neither"):
            placement_for(3e12, WS)


class TestTieredStore:
    def test_put_fetch_roundtrip(self):
        store = TieredWeightStore(WS)
        blob = np.arange(16, dtype=np.float32)
        store.put(0, blob, Tier.DRAM)
        got = store.fetch(0)
        np.testing.assert_array_equal(got, blob)
        assert store.tier_of(0) is Tier.DRAM
        assert len(store.fetch_log) == 1
        assert store.fetch_log[0].time > 0

    def test_gpu_resident_fetch_is_free(self):
        store = TieredWeightStore(WS)
        store.put(0, np.zeros(4), Tier.GPU)
        assert store.fetch_time(0) == 0.0

    def test_duplicate_layer_rejected(self):
        store = TieredWeightStore(WS)
        store.put(0, np.zeros(4), Tier.DRAM)
        with pytest.raises(KeyError):
            store.put(0, np.zeros(4), Tier.DRAM)

    def test_capacity_enforced(self):
        store = TieredWeightStore(WS)
        # A broadcast view reports huge nbytes without allocating.
        too_big = np.broadcast_to(
            np.float64(0.0), (int(WS.gpu.memory_bytes / 8) + 10,)
        )
        with pytest.raises(ValueError, match="capacity"):
            store.put(0, too_big, Tier.GPU)

    def test_multi_gpu_fetch_faster(self):
        big = dgx2_v100(4)
        store = TieredWeightStore(big)
        store.put(0, np.zeros(10_000_000), Tier.DRAM)
        t1 = store.fetch_time(0, num_gpus=1)
        t4 = store.fetch_time(0, num_gpus=4)
        assert t4 < t1

    def test_nvme_slower_than_dram(self):
        store = TieredWeightStore(WS)
        store.put(0, np.zeros(10_000_000), Tier.DRAM)
        store.put(1, np.zeros(10_000_000), Tier.NVME)
        assert store.fetch_time(1) > store.fetch_time(0)

    def test_total_fetch_time_accumulates(self):
        store = TieredWeightStore(WS)
        store.put(0, np.zeros(1000), Tier.DRAM)
        store.fetch(0)
        store.fetch(0)
        assert store.total_fetch_time == pytest.approx(2 * store.fetch_time(0))


class TestStreamingPipeline:
    def test_prefetch_overlaps(self):
        sync = simulate_layer_stream(num_layers=20, fetch_time_per_layer=1.0,
                                     compute_time_per_layer=1.0,
                                     prefetch_depth=0)
        pre = simulate_layer_stream(num_layers=20, fetch_time_per_layer=1.0,
                                    compute_time_per_layer=1.0,
                                    prefetch_depth=1)
        assert sync.makespan == pytest.approx(40.0)
        assert pre.makespan == pytest.approx(21.0)

    def test_bounded_by_dominant_resource(self):
        r = simulate_layer_stream(num_layers=50, fetch_time_per_layer=2.0,
                                  compute_time_per_layer=0.5, prefetch_depth=2)
        assert r.makespan >= r.fetch_time
        assert r.makespan <= r.fetch_time + r.compute_time
        assert 0 < r.overlap_efficiency <= 1.0

    def test_diminishing_returns_of_depth(self):
        """Fig. 10c's saturation: beyond depth 1 the gain vanishes when one
        side dominates."""
        d1 = simulate_layer_stream(num_layers=30, fetch_time_per_layer=1.0,
                                   compute_time_per_layer=2.0, prefetch_depth=1)
        d4 = simulate_layer_stream(num_layers=30, fetch_time_per_layer=1.0,
                                   compute_time_per_layer=2.0, prefetch_depth=4)
        assert d4.makespan == pytest.approx(d1.makespan, rel=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_layer_stream(num_layers=0, fetch_time_per_layer=1,
                                  compute_time_per_layer=1)
        with pytest.raises(ValueError):
            simulate_layer_stream(num_layers=1, fetch_time_per_layer=1,
                                  compute_time_per_layer=0)
        with pytest.raises(ValueError):
            simulate_layer_stream(num_layers=1, fetch_time_per_layer=1,
                                  compute_time_per_layer=1, prefetch_depth=-1)


@given(
    layers=st.integers(min_value=1, max_value=40),
    fetch=st.floats(min_value=0.01, max_value=5.0),
    compute=st.floats(min_value=0.01, max_value=5.0),
    depth=st.integers(min_value=0, max_value=4),
)
@settings(max_examples=40, deadline=None)
def test_stream_bounds_property(layers, fetch, compute, depth):
    """Properties: makespan within [max(F, C), F + C]; more prefetch never
    hurts."""
    r = simulate_layer_stream(num_layers=layers, fetch_time_per_layer=fetch,
                              compute_time_per_layer=compute,
                              prefetch_depth=depth)
    total_f, total_c = layers * fetch, layers * compute
    assert r.makespan >= max(total_f, total_c) - 1e-9
    assert r.makespan <= total_f + total_c + 1e-9
    if depth:
        shallower = simulate_layer_stream(
            num_layers=layers, fetch_time_per_layer=fetch,
            compute_time_per_layer=compute, prefetch_depth=depth - 1)
        assert r.makespan <= shallower.makespan + 1e-9


class TestZeroEngine:
    def test_530b_runs_on_one_a6000(self):
        """The headline 25x claim: 530B on a single 48 GB GPU."""
        eng = ZeroInferenceEngine(get_model("lm-530b"), WS)
        assert eng.placement is Tier.NVME
        rep = eng.forward_pass(batch=1, tokens_per_seq=512)
        assert rep.time > 0
        assert rep.tflops_per_gpu > 0

    def test_dram_models_hit_half_of_peak(self):
        """Fig. 9b: ~84 TFLOPS (~54% of A6000 peak) for streamed models."""
        for name in ("gpt-neox-20b", "gpt-50b", "gpt-87b"):
            eng = ZeroInferenceEngine(get_model(name), WS)
            rep = eng.max_batch_pass(seq_len=2048)
            frac = rep.tflops_per_gpu * 1e12 / WS.gpu.fp16_flops
            assert 0.45 < frac < 0.60, name

    def test_near_linear_multi_gpu_scaling(self):
        """Fig. 9c: GPT-50B on 1..16 V100s scales nearly perfectly."""
        cluster = dgx2_v100(16)
        cfg = get_model("gpt-50b")
        t1 = ZeroInferenceEngine(cfg, cluster, num_gpus=1).max_batch_pass()
        t16 = ZeroInferenceEngine(cfg, cluster, num_gpus=16).max_batch_pass()
        total1 = t1.tflops_per_gpu * 1
        total16 = t16.tflops_per_gpu * 16
        assert total16 > 14 * total1  # >87% scaling efficiency

    def test_v100_efficiency_matches_paper(self):
        """Fig. 9c quotes 67 TFLOPS (53% of V100 peak) per GPU."""
        eng = ZeroInferenceEngine(get_model("gpt-50b"), dgx2_v100(16), num_gpus=1)
        rep = eng.max_batch_pass()
        assert rep.tflops_per_gpu == pytest.approx(67, rel=0.12)

    def test_streaming_beats_pinning_weights_via_batch(self):
        """Sec. VI-A: the streamed design sustains much larger batches than
        the weights-resident alternative on the same GPU."""
        from repro.baselines import GPUOnlyBaseline

        cfg = get_model("gpt-neox-20b")
        zero = ZeroInferenceEngine(cfg, WS)
        pinned = GPUOnlyBaseline(cfg, WS)
        assert zero.max_batch(2048) > 5 * max(1, pinned.max_batch(2048))

    def test_prefetch_helps_most_near_the_crossover(self):
        """Fig. 10c: prefetch saves min(fetch, compute) per layer, so the
        gain peaks where the two are comparable and shrinks toward either
        extreme."""
        cfg = get_model("gpt-neox-20b")
        eng0 = ZeroInferenceEngine(cfg, WS, prefetch_depth=0)
        eng1 = ZeroInferenceEngine(cfg, WS, prefetch_depth=1)
        # Pick a batch whose compute/layer is near the fetch/layer time.
        fetch = eng0.fetch_time_per_layer()
        batch = 1
        while (eng0.compute_time_per_layer(batch, 1, 128) < fetch
               and batch < 4096):
            batch *= 2
        r0 = eng0.forward_pass(batch=batch, tokens_per_seq=1, kv_len=128)
        r1 = eng1.forward_pass(batch=batch, tokens_per_seq=1, kv_len=128)
        assert r1.time < r0.time * 0.75
        # Tiny batch: fetch dominates, prefetch gain is marginal but real.
        s0 = eng0.forward_pass(batch=1, tokens_per_seq=1, kv_len=128)
        s1 = eng1.forward_pass(batch=1, tokens_per_seq=1, kv_len=128)
        assert s1.time < s0.time
        assert s1.time > s0.time * 0.85

    def test_generation_throughput_positive(self):
        eng = ZeroInferenceEngine(get_model("gpt-neox-20b"), WS)
        t = eng.generation_throughput(prompt_len=512, gen_tokens=50)
        assert t > 0

    def test_validation(self):
        cfg = get_model("gpt-neox-20b")
        with pytest.raises(ValueError):
            ZeroInferenceEngine(cfg, WS, num_gpus=0)
        with pytest.raises(ValueError):
            ZeroInferenceEngine(cfg, WS, prefetch_depth=-1)
        eng = ZeroInferenceEngine(cfg, WS)
        with pytest.raises(ValueError):
            eng.max_batch(0)
        with pytest.raises(ValueError):
            eng.forward_pass(batch=0, tokens_per_seq=1)
