"""Tests: INT8 tensor-parallel linear layers (DeepSpeed-INT8 + Megatron
sharding composed)."""

import numpy as np
import pytest

from repro.comm import spmd
from repro.kernels import dequantize, int8_linear, quantize_symmetric
from repro.parallel.quantized import (
    shard_quantize_column,
    shard_quantize_row,
)

RNG = np.random.default_rng(41)


class TestColumnParallel:
    def test_bit_identical_to_full_quantization(self):
        """Per-output-column scales are shard-local, so shard-then-quantize
        equals quantize-then-shard exactly."""
        w = RNG.normal(size=(16, 8))
        full = quantize_symmetric(w)
        for tp in (2, 4):
            for rank in range(tp):
                shard = shard_quantize_column(w, None, rank, tp)
                cols = 8 // tp
                np.testing.assert_array_equal(
                    shard.qweight.data, full.data[:, rank * cols:(rank + 1) * cols]
                )
                np.testing.assert_array_equal(
                    shard.qweight.scale, full.scale[rank * cols:(rank + 1) * cols]
                )

    def test_forward_matches_single_device_int8(self):
        w = RNG.normal(size=(12, 8))
        b = RNG.normal(size=8)
        x = RNG.normal(size=(3, 12))
        want = int8_linear(x, quantize_symmetric(w), b)

        def prog(comm):
            layer = shard_quantize_column(w, b, comm.rank, comm.size)
            return layer.forward(comm, x)

        for got in spmd(4, prog):
            np.testing.assert_allclose(got, want, atol=1e-12)

    def test_local_output_slice(self):
        w = RNG.normal(size=(6, 4))
        layer = shard_quantize_column(w, None, 1, 2)
        x = RNG.normal(size=(2, 6))
        full = int8_linear(x, quantize_symmetric(w))
        np.testing.assert_allclose(layer.forward_local(x), full[:, 2:], atol=1e-12)


class TestRowParallel:
    def test_forward_within_quantization_error_of_fp(self):
        w = RNG.normal(size=(16, 6))
        b = RNG.normal(size=6)
        x = RNG.normal(size=(4, 16))
        want_fp = x @ w + b

        def prog(comm):
            rows = 16 // comm.size
            x_local = x[:, comm.rank * rows:(comm.rank + 1) * rows]
            layer = shard_quantize_row(w, b, comm.rank, comm.size)
            return layer.forward(comm, x_local)

        got = spmd(2, prog)[0]
        rel = np.abs(got - want_fp).max() / np.abs(want_fp).max()
        assert rel < 0.03

    def test_shard_scales_tighter_than_full(self):
        """Each row shard's per-column absmax <= the full matrix's, so
        per-shard quantization is at least as precise."""
        w = RNG.normal(size=(32, 5))
        full = quantize_symmetric(w)
        for rank in range(4):
            shard = shard_quantize_row(w, None, rank, 4)
            assert (shard.qweight.scale <= full.scale + 1e-15).all()

    def test_shard_dequantizes_to_its_rows(self):
        w = RNG.normal(size=(8, 4))
        shard = shard_quantize_row(w, None, 1, 2)
        approx = dequantize(shard.qweight)
        np.testing.assert_allclose(approx, w[4:], atol=np.abs(w).max() / 127)

    def test_bias_added_once(self):
        w = np.zeros((8, 3))
        b = np.array([1.0, 2.0, 3.0])
        x = RNG.normal(size=(2, 8))

        def prog(comm):
            rows = 8 // comm.size
            layer = shard_quantize_row(w, b, comm.rank, comm.size)
            return layer.forward(comm, x[:, comm.rank * rows:(comm.rank + 1) * rows])

        got = spmd(4, prog)[0]
        np.testing.assert_allclose(got, np.tile(b, (2, 1)), atol=1e-12)


class TestValidation:
    def test_bad_shapes(self):
        with pytest.raises(ValueError):
            shard_quantize_column(RNG.normal(size=(4, 6)), None, 0, 4)
        with pytest.raises(ValueError):
            shard_quantize_row(RNG.normal(size=(6, 4)), None, 0, 4)
        with pytest.raises(ValueError):
            shard_quantize_column(RNG.normal(size=(4,)), None, 0, 1)
        with pytest.raises(ValueError):
            shard_quantize_column(RNG.normal(size=(4, 4)), None, 2, 2)
