"""Tests for Deep-Fusion region partitioning (Sec. III-B/D)."""

import pytest
from hypothesis import given, strategies as st

from repro.kernels import (
    FusedRegion,
    FusionStrategy,
    LayerShape,
    Op,
    OpKind,
    TOKEN,
    partition,
    transformer_layer_ops,
)


def ops_for(tp=1, tokens=1):
    return transformer_layer_ops(
        LayerShape(hidden=2048, heads=16, batch=tokens, tokens_per_seq=1,
                   kv_len=128, tp_degree=tp)
    )


class TestStrategies:
    def test_none_keeps_every_op_separate(self):
        ops = ops_for()
        regions = partition(ops, FusionStrategy.NONE)
        assert len(regions) == len(ops)

    def test_elementwise_fuses_epilogues_only(self):
        regions = partition(ops_for(), FusionStrategy.ELEMENTWISE)
        # 15 ops, 4 elementwise epilogues (qkv_bias, attn_bias_residual,
        # gelu_bias, mlp_bias_residual) ride on their producers.
        assert len(regions) == 11
        assert all(
            sum(op.kind is not OpKind.ELEMENTWISE for op in r.ops) <= 1
            for r in regions
        )

    def test_attention_strategy_fuses_attention_block(self):
        regions = partition(ops_for(), FusionStrategy.ATTENTION)
        names = [r.name for r in regions]
        block = next(r for r in regions if "attention_scores" in r.name or
                     any(o.name == "attention_scores" for o in r.ops))
        members = {o.name for o in block.ops}
        assert {"head_transpose", "attention_scores", "softmax",
                "attention_context", "context_transpose"} <= members
        assert len(regions) == 7
        assert names  # regions have readable labels

    def test_deep_small_batch_matches_paper_regions(self):
        """Fig. 1c: LN+QKV, transpose+attention, (proj), LN+MLP1, (mlp2)."""
        regions = partition(ops_for(), FusionStrategy.DEEP, small_batch=True)
        grouped = [{o.name for o in r.ops} for r in regions]
        assert grouped[0] == {"input_layernorm", "qkv_gemm", "qkv_bias"}
        assert grouped[1] == {
            "head_transpose", "attention_scores", "softmax",
            "attention_context", "context_transpose",
        }
        assert grouped[2] == {"attn_output_gemm", "attn_bias_residual"}
        assert grouped[3] == {"post_attn_layernorm", "mlp_h_to_4h_gemm", "gelu_bias"}
        assert grouped[4] == {"mlp_4h_to_h_gemm", "mlp_bias_residual"}
        assert len(regions) == 5

    def test_deep_large_batch_leaves_gemms_unfused(self):
        regions = partition(ops_for(), FusionStrategy.DEEP, small_batch=False)
        gemm_regions = [r for r in regions if any(o.kind is OpKind.GEMM for o in r.ops)]
        # Each weight GeMM stands alone (with only elementwise epilogues).
        for r in gemm_regions:
            assert sum(o.kind is OpKind.GEMM for o in r.ops) == 1
            assert r.ops[0].kind is OpKind.GEMM
        assert len(regions) == 7

    def test_deep_respects_tensor_parallel_allreduce_boundary(self):
        """Under TP, row-parallel GeMM outputs need an all-reduce before the
        bias+residual, so region 4 of the paper stays separate."""
        regions = partition(ops_for(tp=4), FusionStrategy.DEEP, small_batch=True)
        grouped = [{o.name for o in r.ops} for r in regions]
        assert {"attn_output_gemm"} in grouped
        assert {"attn_bias_residual"} in grouped
        assert {"mlp_bias_residual"} in grouped
        assert len(regions) == 7

    def test_fewer_kernels_with_more_fusion(self):
        ops = ops_for()
        counts = {
            s: len(partition(ops, s))
            for s in (FusionStrategy.NONE, FusionStrategy.ELEMENTWISE,
                      FusionStrategy.ATTENTION, FusionStrategy.DEEP)
        }
        assert (counts[FusionStrategy.DEEP] < counts[FusionStrategy.ATTENTION]
                < counts[FusionStrategy.ELEMENTWISE] < counts[FusionStrategy.NONE])


class TestFusedRegionAccounting:
    def test_empty_region_rejected(self):
        with pytest.raises(ValueError):
            FusedRegion(())

    def test_boundary_bytes_only(self):
        a = Op("a", OpKind.REDUCTION, 10, 0, 100, 50, frozenset({TOKEN}))
        b = Op("b", OpKind.ELEMENTWISE, 10, 0, 50, 20, frozenset({TOKEN}))
        r = FusedRegion((a, b))
        assert r.act_bytes == 120  # 100 in + 20 out; the 50+50 interior is free
        assert r.saved_bytes() == pytest.approx((100 + 50 + 50 + 20) - 120 - 0)

    def test_weights_always_counted(self):
        a = Op("ln", OpKind.REDUCTION, 10, 8, 100, 100, frozenset({TOKEN}))
        g = Op("gemm", OpKind.GEMM, 10, 1000, 100, 10, frozenset({TOKEN}))
        r = FusedRegion((a, g))
        assert r.weight_bytes == 1008
        assert r.hbm_bytes == 1008 + 100 + 10

    def test_flops_additive(self):
        ops = ops_for()
        regions = partition(ops, FusionStrategy.DEEP)
        assert sum(r.flops for r in regions) == pytest.approx(
            sum(o.flops for o in ops)
        )

    def test_single_op_region_name(self):
        ops = ops_for()
        regions = partition(ops, FusionStrategy.NONE)
        assert regions[0].name == "input_layernorm"


@given(small=st.booleans(), tp=st.sampled_from([1, 2, 4]),
       strategy=st.sampled_from(list(FusionStrategy)))
def test_partition_invariants(small, tp, strategy):
    """Properties: partition covers all ops exactly once, in order, and
    never loses flops/weight bytes."""
    ops = ops_for(tp=tp)
    regions = partition(ops, strategy, small_batch=small)
    flat = [o for r in regions for o in r.ops]
    assert flat == ops  # order-preserving exact cover
    assert sum(r.weight_bytes for r in regions) == pytest.approx(
        sum(o.weight_bytes for o in ops)
    )
    # Fusion can only reduce HBM traffic, never increase it.
    assert sum(r.hbm_bytes for r in regions) <= sum(o.total_bytes for o in ops) + 1e-9
    # Legality: adjacent fused ops always share a tile dimension.
    for r in regions:
        for a, b in zip(r.ops, r.ops[1:]):
            assert a.can_fuse_with(b)


def test_partition_empty_chain():
    assert partition([], FusionStrategy.DEEP) == []
