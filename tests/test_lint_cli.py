"""CLI, baseline, and suppression tests for repro.lint.

The CLI contract: exit 0 on a clean (or fully baselined/suppressed)
tree, 1 on new findings, 2 on usage/parse errors; ``--format json``
emits a machine-readable report (the CI artifact); baselines round-trip
through ``--write-baseline``.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    Baseline,
    LintError,
    all_checkers,
    iter_python_files,
    load_source,
    run_lint,
)
from repro.lint.__main__ import main

REPO_ROOT = Path(__file__).resolve().parent.parent

DIRTY = textwrap.dedent("""
    import numpy as np

    def jitter(n):
        return np.random.rand(n)
""")

CLEAN = textwrap.dedent("""
    import numpy as np

    def jitter(n, seed):
        rng = np.random.default_rng(seed)
        return rng.random(n)
""")


@pytest.fixture
def dirty_tree(tmp_path):
    # A path containing a "repro/engine" segment so package-scoped
    # checkers apply, mirroring the real layout.
    pkg = tmp_path / "repro" / "engine"
    pkg.mkdir(parents=True)
    (pkg / "fixture.py").write_text(DIRTY)
    return tmp_path


def run_cli(args, capsys):
    code = main([str(a) for a in args])
    out = capsys.readouterr()
    return code, out.out, out.err


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        pkg = tmp_path / "repro" / "engine"
        pkg.mkdir(parents=True)
        (pkg / "fixture.py").write_text(CLEAN)
        code, out, _ = run_cli([tmp_path, "--no-baseline"], capsys)
        assert code == 0
        assert "0 finding(s)" in out

    def test_findings_exit_one(self, dirty_tree, capsys):
        code, out, _ = run_cli([dirty_tree, "--no-baseline"], capsys)
        assert code == 1
        assert "RP003" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        code, _, err = run_cli([tmp_path / "nope.py"], capsys)
        assert code == 2
        assert "error" in err

    def test_syntax_error_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        code, _, err = run_cli([bad], capsys)
        assert code == 2
        assert "syntax error" in err

    def test_unknown_select_exits_two(self, dirty_tree, capsys):
        code, _, err = run_cli([dirty_tree, "--select", "RP999"], capsys)
        assert code == 2

    def test_select_can_mask_the_finding(self, dirty_tree, capsys):
        code, _, _ = run_cli(
            [dirty_tree, "--no-baseline", "--select", "RP001"], capsys)
        assert code == 0

    def test_list_checkers(self, capsys):
        code, out, _ = run_cli(["--list-checkers"], capsys)
        assert code == 0
        for c in all_checkers():
            assert c.code in out


class TestJsonOutput:
    def test_json_report_shape(self, dirty_tree, capsys):
        code, out, _ = run_cli(
            [dirty_tree, "--no-baseline", "--format", "json"], capsys)
        assert code == 1
        payload = json.loads(out[: out.rindex("}") + 1])
        assert payload["version"] == 1
        assert payload["counts"]["findings"] == 1
        (finding,) = payload["findings"]
        assert finding["code"] == "RP003"
        assert finding["path"].endswith("fixture.py")
        assert finding["line"] > 0

    def test_output_file_holds_report(self, dirty_tree, tmp_path, capsys):
        report = tmp_path / "report.json"
        code, out, _ = run_cli(
            [dirty_tree, "--no-baseline", "--format", "json",
             "--output", report], capsys)
        assert code == 1
        payload = json.loads(report.read_text())
        assert payload["counts"]["findings"] == 1
        assert "report.json" in out  # summary still printed


class TestBaseline:
    def test_write_then_pass_round_trip(self, dirty_tree, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        code, out, _ = run_cli(
            [dirty_tree, "--baseline", baseline, "--write-baseline"], capsys)
        assert code == 0
        assert "wrote 1 finding(s)" in out

        data = json.loads(baseline.read_text())
        assert data["version"] == 1
        (entry,) = data["entries"]
        assert entry["code"] == "RP003"
        assert "justification" in entry

        # Same tree + the baseline just written -> clean run.
        code, out, _ = run_cli([dirty_tree, "--baseline", baseline], capsys)
        assert code == 0
        assert "1 baselined" in out

    def test_baseline_does_not_hide_new_findings(self, dirty_tree, tmp_path,
                                                 capsys):
        baseline = tmp_path / "baseline.json"
        run_cli([dirty_tree, "--baseline", baseline, "--write-baseline"],
                capsys)
        extra = dirty_tree / "repro" / "engine" / "fresh.py"
        extra.write_text("import time\n\ndef stamp():\n    return time.time()\n")
        code, out, _ = run_cli([dirty_tree, "--baseline", baseline], capsys)
        assert code == 1
        assert "fresh.py" in out

    def test_malformed_baseline_rejected(self, dirty_tree, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text('{"entries": [{"code": "RP003"}]}')
        code, _, err = run_cli([dirty_tree, "--baseline", baseline], capsys)
        assert code == 2
        assert "justification" in err

    def test_baseline_api_round_trip(self, tmp_path):
        entries = [{"code": "RP002", "path": "x.py",
                    "message": "m", "justification": "because"}]
        Baseline(entries=entries).save(tmp_path / "b.json")
        loaded = Baseline.load(tmp_path / "b.json")
        assert loaded.entries == entries
        assert loaded.fingerprints() == {"RP002|x.py|m"}


class TestSuppression:
    def test_inline_disable_silences_one_code(self, tmp_path):
        pkg = tmp_path / "repro" / "engine"
        pkg.mkdir(parents=True)
        (pkg / "fixture.py").write_text(textwrap.dedent("""
            import numpy as np

            def jitter(n):
                return np.random.rand(n)  # repro-lint: disable=RP003
        """))
        result = run_lint([tmp_path], all_checkers())
        assert result.ok
        assert len(result.suppressed) == 1

    def test_disable_wrong_code_does_not_silence(self, tmp_path):
        pkg = tmp_path / "repro" / "engine"
        pkg.mkdir(parents=True)
        (pkg / "fixture.py").write_text(textwrap.dedent("""
            import numpy as np

            def jitter(n):
                return np.random.rand(n)  # repro-lint: disable=RP001
        """))
        result = run_lint([tmp_path], all_checkers())
        assert not result.ok

    def test_bare_disable_silences_everything(self):
        mod = load_source(
            "import numpy as np\n"
            "x = np.random.rand(3)  # repro-lint: disable\n",
            module="repro.engine.fixture")
        checker = all_checkers()[2]
        finding = next(iter(checker.check(mod)))
        assert mod.suppressed(finding)


class TestWalkerAndTree:
    def test_walker_finds_nested_files_sorted(self, tmp_path):
        (tmp_path / "b").mkdir()
        (tmp_path / "b" / "m.py").write_text("x = 1\n")
        (tmp_path / "a.py").write_text("y = 2\n")
        (tmp_path / ".hidden").mkdir()
        (tmp_path / ".hidden" / "skip.py").write_text("z = 3\n")
        files = iter_python_files([tmp_path])
        names = [f.name for f in files]
        assert names == ["a.py", "m.py"]

    def test_walker_rejects_non_python(self, tmp_path):
        (tmp_path / "data.txt").write_text("hi")
        with pytest.raises(LintError):
            iter_python_files([tmp_path / "data.txt"])

    def test_merged_tree_is_clean(self):
        """Acceptance criterion: the shipped tree lints clean with the
        shipped (empty-or-justified) baseline."""
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        result = run_lint([REPO_ROOT / "src" / "repro"], all_checkers(),
                          baseline=baseline, root=REPO_ROOT)
        assert result.ok, "\n".join(f.format() for f in result.findings)
        assert result.files_checked > 90


class TestOccurrenceFingerprints:
    """Two identical findings in one file must not collapse to a single
    baseline fingerprint (the pre-occurrence-index collision)."""

    TWIN = textwrap.dedent("""
        import numpy as np

        def jitter_a(n):
            return np.random.rand(n)

        def jitter_b(n):
            return np.random.rand(n)
    """)

    @pytest.fixture
    def twin_tree(self, tmp_path):
        pkg = tmp_path / "repro" / "engine"
        pkg.mkdir(parents=True)
        (pkg / "fixture.py").write_text(self.TWIN)
        return tmp_path

    def test_identical_findings_get_distinct_fingerprints(self, twin_tree):
        result = run_lint([twin_tree], all_checkers())
        same = [f for f in result.findings if f.code == "RP003"]
        assert len(same) == 2
        assert same[0].message == same[1].message
        fps = {f.fingerprint() for f in same}
        assert len(fps) == 2
        assert any(fp.endswith("|#2") for fp in fps)

    def test_baseline_round_trip_covers_both_twins(self, twin_tree, tmp_path,
                                                   capsys):
        baseline = tmp_path / "baseline.json"
        code, out, _ = run_cli(
            [twin_tree, "--baseline", baseline, "--write-baseline"], capsys)
        assert code == 0 and "wrote 2 finding(s)" in out
        code, out, _ = run_cli([twin_tree, "--baseline", baseline], capsys)
        assert code == 0
        assert "2 baselined" in out

    def test_third_twin_is_still_new(self, twin_tree, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        run_cli([twin_tree, "--baseline", baseline, "--write-baseline"],
                capsys)
        fixture = twin_tree / "repro" / "engine" / "fixture.py"
        fixture.write_text(self.TWIN + textwrap.dedent("""
            def jitter_c(n):
                return np.random.rand(n)
        """))
        code, out, _ = run_cli([twin_tree, "--baseline", baseline], capsys)
        assert code == 1  # the two old twins stay baselined, #3 is new

    def test_legacy_baseline_without_occurrence_still_matches(self):
        entries = [
            {"code": "RP003", "path": "x.py", "message": "m",
             "justification": "first"},
            {"code": "RP003", "path": "x.py", "message": "m",
             "justification": "second"},
        ]
        fps = Baseline(entries=entries).fingerprints()
        assert fps == {"RP003|x.py|m", "RP003|x.py|m|#2"}


class TestMultilineSuppression:
    """A disable comment on the first *or* last physical line of a
    multi-line statement silences findings anywhere inside it."""

    def _tree(self, tmp_path, body):
        pkg = tmp_path / "repro" / "engine"
        pkg.mkdir(parents=True)
        (pkg / "fixture.py").write_text(textwrap.dedent(body))
        return tmp_path

    def test_disable_on_closing_line_suppresses(self, tmp_path):
        tree = self._tree(tmp_path, """
            import numpy as np

            def jitter(n):
                return np.concatenate([
                    np.random.rand(n),
                    np.zeros(n),
                ])  # repro-lint: disable=RP003
        """)
        result = run_lint([tree], all_checkers())
        assert result.ok
        assert len(result.suppressed) == 1

    def test_disable_on_first_line_suppresses(self, tmp_path):
        tree = self._tree(tmp_path, """
            import numpy as np

            def jitter(n):
                return np.concatenate([  # repro-lint: disable=RP003
                    np.random.rand(n),
                    np.zeros(n),
                ])
        """)
        result = run_lint([tree], all_checkers())
        assert result.ok
        assert len(result.suppressed) == 1

    def test_compound_statement_trailer_does_not_swallow_body(self, tmp_path):
        # A disable on a function's *last* body line must not silence
        # unrelated findings earlier in the function.
        tree = self._tree(tmp_path, """
            import numpy as np

            def jitter(n):
                bad = np.random.rand(n)
                return bad  # repro-lint: disable=RP003
        """)
        result = run_lint([tree], all_checkers())
        assert not result.ok

    def test_wrong_code_on_multiline_statement_does_not_silence(self, tmp_path):
        tree = self._tree(tmp_path, """
            import numpy as np

            def jitter(n):
                return np.concatenate([
                    np.random.rand(n),
                ])  # repro-lint: disable=RP001
        """)
        result = run_lint([tree], all_checkers())
        assert not result.ok


class TestProjectPass:
    """run_lint's whole-program pass: cross-module findings appear, and
    --no-project switches them off."""

    CALLEE = textwrap.dedent("""
        def step_time_s(compute_s, comm_s=0.0):
            return compute_s + comm_s
    """)
    CALLER = textwrap.dedent("""
        from repro.hardware.latency import step_time_s

        def drive(weight_bytes):
            return step_time_s(weight_bytes)
    """)

    @pytest.fixture
    def cross_tree(self, tmp_path):
        hw = tmp_path / "repro" / "hardware"
        en = tmp_path / "repro" / "engine"
        hw.mkdir(parents=True)
        en.mkdir(parents=True)
        (hw / "latency.py").write_text(self.CALLEE)
        (en / "run.py").write_text(self.CALLER)
        return tmp_path

    def test_interprocedural_finding_emerges_from_two_files(self, cross_tree):
        result = run_lint([cross_tree], all_checkers())
        codes = [f.code for f in result.findings]
        assert "RP007" in codes
        (f,) = [f for f in result.findings if f.code == "RP007"]
        assert f.path.endswith("run.py")

    def test_no_project_flag_skips_the_pass(self, cross_tree, capsys):
        code, out, _ = run_cli(
            [cross_tree, "--no-baseline", "--no-project"], capsys)
        assert code == 0
        code, out, _ = run_cli([cross_tree, "--no-baseline"], capsys)
        assert code == 1
        assert "RP007" in out

    def test_project_kwarg_off_in_api(self, cross_tree):
        result = run_lint([cross_tree], all_checkers(), project=False)
        assert result.ok


class TestSarifOutput:
    def test_sarif_log_shape(self, dirty_tree, tmp_path, capsys):
        report = tmp_path / "lint.sarif"
        code, out, _ = run_cli(
            [dirty_tree, "--no-baseline", "--format", "sarif",
             "--output", report], capsys)
        assert code == 1
        log = json.loads(report.read_text())
        assert log["version"] == "2.1.0"
        (run,) = log["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        rule_ids = [r["id"] for r in driver["rules"]]
        assert rule_ids == [c.code for c in all_checkers()]
        (res,) = run["results"]
        assert res["ruleId"] == "RP003"
        assert res["baselineState"] == "new"
        loc = res["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"].endswith("fixture.py")
        assert loc["region"]["startLine"] > 0
        assert res["partialFingerprints"]["reproLint/v1"]

    def test_baselined_findings_marked_unchanged(self, dirty_tree, tmp_path,
                                                 capsys):
        baseline = tmp_path / "baseline.json"
        run_cli([dirty_tree, "--baseline", baseline, "--write-baseline"],
                capsys)
        report = tmp_path / "lint.sarif"
        code, _, _ = run_cli(
            [dirty_tree, "--baseline", baseline, "--format", "sarif",
             "--output", report], capsys)
        assert code == 0
        (run,) = json.loads(report.read_text())["runs"]
        states = [r["baselineState"] for r in run["results"]]
        assert states == ["unchanged"]


class TestWallClock:
    def test_full_tree_lint_fits_the_ci_budget(self):
        """The whole-program pass must not turn the lint gate into the
        slow job: full tree, all eight rules, well under CI patience."""
        import time
        t0 = time.monotonic()
        result = run_lint([REPO_ROOT / "src" / "repro"], all_checkers(),
                          root=REPO_ROOT)
        elapsed = time.monotonic() - t0
        assert result.files_checked > 90
        assert elapsed < 30.0, f"full-tree lint took {elapsed:.1f}s"
