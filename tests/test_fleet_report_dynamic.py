"""FleetReport over dynamically-sized replica sets.

The report layer predates the autoscaler and assumed a fixed pool; these
tests pin its behavior once replicas join mid-trace, retire early, crash
and recover (lifetime gaps), or exist without completing anything —
percentiles, GPU-cost accounting (``replica_seconds``/``avg_replicas``)
and the merged timeline must all stay coherent.
"""

import pytest

from repro.autoscale import AutoscaleConfig
from repro.engine import synthesize_trace
from repro.fleet import FaultPlan, ReplicaFault, simulate_fleet

COSTS = dict(prompt_time=lambda b, p: 0.02 + 0.001 * p,
             step_time=lambda b: 0.01 + 0.001 * b)


def _scaled_report(seed=7, n=400, rate=50.0):
    """A run whose pool provably grows and shrinks mid-trace."""
    trace = synthesize_trace(num_requests=n, arrival_rate=rate,
                             mean_prompt=16, mean_gen=8,
                             arrival_shape="diurnal", diurnal_amplitude=1.0,
                             seed=seed)
    rep = simulate_fleet(
        trace, num_replicas=1, max_batch=4, **COSTS,
        routing="least_outstanding",
        autoscaler=AutoscaleConfig(min_replicas=1, max_replicas=4,
                                   ttft_slo_s=0.3, epoch_s=0.5,
                                   sustain_epochs=1, window_s=1.0,
                                   scale_in_cooldown_s=1.0, mean_prompt=16))
    assert rep.num_replicas > 1, "fixture must actually scale out"
    return trace, rep


class TestDynamicPool:
    def test_join_and_retire_times_bound_each_replica(self):
        trace, rep = _scaled_report()
        stats = {s.replica: s for s in rep.replica_stats}
        assert stats[0].join_time == 0.0
        late = [s for s in rep.replica_stats if s.join_time > 0.0]
        assert late, "autoscaled joins must surface in replica_stats"
        for s in rep.replica_stats:
            if s.retire_time is not None:
                assert s.draining
                assert s.retire_time >= s.join_time
                assert s.retire_time <= rep.makespan

    def test_percentiles_cover_requests_served_by_late_joiners(self):
        trace, rep = _scaled_report()
        assert rep.num_completed == len(trace.requests)
        served_by_late = [r for r in trace.requests
                          if rep.replica_of[r.request_id] != 0]
        assert served_by_late, "late joiners must have taken real load"
        # Fleet-wide percentiles must fold those requests in without
        # blowing up, and per-replica percentiles work for any replica
        # that completed at least one request.
        assert rep.ttft_percentile(trace, 99) > 0.0
        assert rep.latency_percentile(trace, 99) > 0.0
        for s in rep.replica_stats:
            if s.num_requests > 0:
                val = rep.per_replica_ttft_percentile(
                    trace, 50, s.replica)
                assert val >= 0.0

    def test_replica_seconds_sum_lifetime_segments(self):
        trace, rep = _scaled_report()
        assert set(rep.replica_lifetimes) == {
            s.replica for s in rep.replica_stats}
        total = 0.0
        for index, segments in rep.replica_lifetimes.items():
            assert segments, f"replica {index} has no lifetime"
            for start, end in segments:
                assert 0.0 <= start <= end
                total += end - start
        assert rep.replica_seconds == pytest.approx(total)
        assert 1.0 < rep.avg_replicas <= 4.0
        assert rep.avg_replicas == pytest.approx(
            rep.replica_seconds / rep.makespan)

    def test_merged_timeline_has_lanes_for_partial_run_replicas(self):
        _, rep = _scaled_report()
        lanes = rep.timeline.lanes()
        for s in rep.replica_stats:
            if s.num_requests > 0:
                assert any(lane.startswith(f"replica{s.replica}/")
                           for lane in lanes), s.replica
        # The autoscale lane narrates the scaling story.
        instants = rep.timeline.instants("autoscale")
        assert len(instants) == len(rep.autoscale_log)


class TestStaticPoolUnchanged:
    def test_fixed_pool_has_trivial_lifetimes(self):
        trace = synthesize_trace(num_requests=60, arrival_rate=30.0,
                                 mean_prompt=8, mean_gen=6, seed=1)
        rep = simulate_fleet(trace, num_replicas=3, max_batch=4, **COSTS)
        assert rep.avg_replicas == pytest.approx(3.0)
        assert rep.replica_seconds == pytest.approx(3 * rep.makespan)
        for segments in rep.replica_lifetimes.values():
            assert segments == ((0.0, rep.makespan),)
        assert all(s.join_time == 0.0 and s.retire_time is None
                   and not s.draining for s in rep.replica_stats)

    def test_crash_and_recover_split_lifetime(self):
        trace = synthesize_trace(num_requests=120, arrival_rate=40.0,
                                 mean_prompt=8, mean_gen=6, seed=2)
        plan = FaultPlan((ReplicaFault(0, 0.5),
                          ReplicaFault(0, 1.5, kind="recover")))
        rep = simulate_fleet(trace, num_replicas=2, max_batch=4, **COSTS,
                             routing="least_outstanding", fault_plan=plan)
        segments = rep.replica_lifetimes[0]
        assert len(segments) == 2
        (a0, a1), (b0, b1) = segments
        assert a0 == 0.0 and a1 <= 1.5 <= b0 < b1
        # The downtime gap is real GPU savings, not rounding.
        assert rep.replica_seconds < 2 * rep.makespan - 0.5

    def test_empty_replica_is_reported_not_crashed_on(self):
        # One request, two replicas: replica 1 never completes anything.
        trace = synthesize_trace(num_requests=1, arrival_rate=5.0,
                                 mean_prompt=8, mean_gen=4, seed=3)
        rep = simulate_fleet(trace, num_replicas=2, max_batch=2, **COSTS,
                             routing="round_robin")
        idle = {s.replica: s for s in rep.replica_stats}[1]
        assert idle.num_requests == 0 and idle.tokens == 0
        assert rep.request_counts == (1, 0)
        with pytest.raises(ValueError, match="completed no requests"):
            rep.per_replica_ttft_percentile(trace, 99, 1)
