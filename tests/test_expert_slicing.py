"""Tests: expert-slicing — one expert's FFN tensor-sliced across ranks."""

import numpy as np
import pytest

from repro.comm import spmd
from repro.model import MoELayer
from repro.parallel import expert_sliced_ffn

RNG = np.random.default_rng(47)


class TestExpertSlicing:
    @pytest.mark.parametrize("slicing", [1, 2, 4])
    def test_matches_unsliced_expert(self, slicing):
        layer = MoELayer(hidden=16, num_experts=4, seed=3)
        tokens = RNG.normal(size=(5, 16))
        want = layer.expert_ffn(2, tokens)

        results = spmd(
            slicing, lambda comm: expert_sliced_ffn(comm, layer, 2, tokens)
        )
        for got in results:
            np.testing.assert_allclose(got, want, atol=1e-10)

    def test_all_experts_sliceable(self):
        layer = MoELayer(hidden=8, num_experts=3, seed=5)
        tokens = RNG.normal(size=(2, 8))
        for e in range(3):
            want = layer.expert_ffn(e, tokens)
            got = spmd(2, lambda comm, e=e: expert_sliced_ffn(comm, layer, e, tokens))
            np.testing.assert_allclose(got[0], want, atol=1e-10)

    def test_invalid_expert(self):
        layer = MoELayer(hidden=8, num_experts=2, seed=1)

        def prog(comm):
            return expert_sliced_ffn(comm, layer, 5, np.zeros((1, 8)))

        with pytest.raises(RuntimeError):
            spmd(2, prog)

    def test_indivisible_width(self):
        layer = MoELayer(hidden=8, num_experts=2, ffn_mult=3, seed=1)

        def prog(comm):
            return expert_sliced_ffn(comm, layer, 0, np.zeros((1, 8)))

        # ffn width 24 not divisible by 5 ranks (prime-ish check): use 5
        with pytest.raises(RuntimeError):
            spmd(5, prog)
