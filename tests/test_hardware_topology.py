"""Unit tests for cluster topologies."""

import pytest

from repro.hardware import (
    DeviceId,
    dgx2_v100,
    dgx_a100_cluster,
    lambda_a6000_workstation,
)


class TestDGXA100Cluster:
    def test_full_cluster_has_256_gpus(self):
        c = dgx_a100_cluster(32)
        assert c.num_gpus == 256

    def test_aggregate_memory(self):
        c = dgx_a100_cluster(2)
        assert c.aggregate_gpu_memory == pytest.approx(16 * 40e9)

    def test_aggregate_bandwidth_at_256_gpus(self):
        # Paper: 1T MoE served using "aggregate GPU memory bandwidth of
        # 128 TB/sec" at 33% utilization => peak approx 398 TB/s on 256 GPUs.
        c = dgx_a100_cluster(32)
        assert c.aggregate_mem_bw == pytest.approx(256 * 1555e9)

    def test_device_mapping_node_major(self):
        c = dgx_a100_cluster(2)
        assert c.device(0) == DeviceId(0, 0)
        assert c.device(7) == DeviceId(0, 7)
        assert c.device(8) == DeviceId(1, 0)
        assert c.device(15) == DeviceId(1, 7)

    def test_device_out_of_range(self):
        c = dgx_a100_cluster(1)
        with pytest.raises(IndexError):
            c.device(8)

    def test_devices_enumeration(self):
        c = dgx_a100_cluster(2)
        devs = c.devices()
        assert len(devs) == 16
        assert devs == sorted(devs)

    def test_link_selection_intra_vs_inter(self):
        c = dgx_a100_cluster(2)
        a, b = DeviceId(0, 0), DeviceId(0, 5)
        x = DeviceId(1, 0)
        assert c.link_between(a, b).name == "NVLink3"
        assert c.link_between(a, x).name == "IB-HDR"

    def test_self_link_rejected(self):
        c = dgx_a100_cluster(1)
        d = DeviceId(0, 0)
        with pytest.raises(ValueError):
            c.link_between(d, d)

    def test_pcie_sharing_groups(self):
        # DGX boxes share one PCIe link per GPU pair (Sec. IV-C3).
        node = dgx_a100_cluster(1).node
        assert node.pcie_group(0) == node.pcie_group(1)
        assert node.pcie_group(2) != node.pcie_group(1)


class TestWorkstation:
    def test_single_and_dual_gpu(self):
        assert lambda_a6000_workstation(1).num_gpus == 1
        assert lambda_a6000_workstation(2).num_gpus == 2

    def test_too_many_gpus_rejected(self):
        with pytest.raises(ValueError):
            lambda_a6000_workstation(3)

    def test_has_nvme(self):
        c = lambda_a6000_workstation()
        assert c.node.nvme is not None
        assert c.node.nvme.capacity_bytes == pytest.approx(2e12)

    def test_dram_capacity_256gb(self):
        assert lambda_a6000_workstation().node.host.dram_bytes == pytest.approx(256e9)


class TestDGX2:
    def test_sixteen_v100s(self):
        c = dgx2_v100()
        assert c.num_gpus == 16
        assert c.gpu.name == "V100-32GB-SXM"

    def test_partial_allocation(self):
        assert dgx2_v100(4).num_gpus == 4

    def test_bounds(self):
        with pytest.raises(ValueError):
            dgx2_v100(17)
        with pytest.raises(ValueError):
            dgx2_v100(0)

    def test_nvswitch_all_gpus_one_node(self):
        c = dgx2_v100()
        assert c.same_node(DeviceId(0, 0), DeviceId(0, 15))
