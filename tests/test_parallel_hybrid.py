"""Tests: combined tensor + expert parallel MoE blocks (Fig. 4) match the
single-process reference for every MP x EP factorization."""

import numpy as np
import pytest

from repro.comm import spmd
from repro.kernels.functional import layer_norm
from repro.model import DenseTransformer, KVCache, MoELayer, ModelConfig
from repro.parallel import make_hybrid_groups, hybrid_moe_block

CFG = ModelConfig(name="hybrid-test", hidden=32, layers=2, heads=4, vocab=41,
                  max_seq=24)


def reference_block(model, moe, layer_idx, x, cache=None):
    """Single-process MoE transformer block: attention + expert FFN."""
    lw = model.layers[layer_idx]
    x = model.attention_block(x, lw, layer_idx, cache)
    normed = layer_norm(x, lw.ln2_g, lw.ln2_b)
    return x + moe.forward_dense_table(normed)


@pytest.fixture(scope="module")
def setup():
    model = DenseTransformer(CFG, seed=17)
    moe = MoELayer(hidden=CFG.hidden, num_experts=8, capacity_factor=2.0,
                   seed=23)
    rng = np.random.default_rng(5)
    x = rng.normal(size=(2, 3, CFG.hidden))
    return model, moe, x


class TestHybridOrchestration:
    @pytest.mark.parametrize("world,mp", [(2, 1), (2, 2), (4, 2), (4, 4), (8, 2)])
    def test_matches_reference(self, setup, world, mp):
        model, moe, x = setup
        want = reference_block(model, moe, 0, x)

        def prog(comm):
            groups = make_hybrid_groups(comm, mp)
            assert groups.ep == world // mp
            return hybrid_moe_block(groups, model, moe, 0, x)

        results = spmd(world, prog)
        for got in results:
            np.testing.assert_allclose(got, want, atol=1e-10)

    def test_two_layers_stacked(self, setup):
        model, moe, x = setup
        want = x
        for i in range(2):
            want = reference_block(model, moe, i, want)

        def prog(comm):
            groups = make_hybrid_groups(comm, 2)
            h = x
            for i in range(2):
                h = hybrid_moe_block(groups, model, moe, i, h)
            return h

        results = spmd(4, prog)
        np.testing.assert_allclose(results[0], want, atol=1e-10)

    def test_with_kv_cache_decoding(self, setup):
        model, moe, x = setup
        # Reference: two sequential single-token steps through the block.
        ref_cache = KVCache(CFG.layers)
        step1 = reference_block(model, moe, 0, x[:, :1], ref_cache)
        step2 = reference_block(model, moe, 0, x[:, 1:2], ref_cache)

        def prog(comm):
            groups = make_hybrid_groups(comm, 2)
            cache = KVCache(CFG.layers)
            s1 = hybrid_moe_block(groups, model, moe, 0, x[:, :1], cache)
            s2 = hybrid_moe_block(groups, model, moe, 0, x[:, 1:2], cache)
            return s1, s2

        results = spmd(4, prog)
        got1, got2 = results[0]
        np.testing.assert_allclose(got1, step1, atol=1e-10)
        np.testing.assert_allclose(got2, step2, atol=1e-10)

    def test_invalid_mp_rejected(self, setup):
        model, moe, x = setup

        def prog(comm):
            return make_hybrid_groups(comm, 3)

        with pytest.raises(RuntimeError, match="divide"):
            spmd(4, prog)

    def test_group_structure(self):
        def prog(comm):
            g = make_hybrid_groups(comm, 2)
            return (g.tp_rank, g.ep_rank)

        results = spmd(4, prog)
        # world ranks 0..3; tp groups {0,1},{2,3}; ep groups {0,2},{1,3}
        assert results == [(0, 0), (1, 0), (0, 1), (1, 1)]
