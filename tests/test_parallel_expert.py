"""Tests: expert-parallel MoE equals the single-process MoE layer."""

import numpy as np
import pytest

from repro.comm import spmd
from repro.model import MoELayer
from repro.parallel import ep_moe_forward, expert_partition

RNG = np.random.default_rng(21)


class TestExpertPartition:
    def test_contiguous_cover(self):
        parts = expert_partition(8, 4)
        assert [list(p) for p in parts] == [[0, 1], [2, 3], [4, 5], [6, 7]]

    def test_single_rank(self):
        assert list(expert_partition(4, 1)[0]) == [0, 1, 2, 3]

    def test_uneven_remainder_distribution(self):
        # First E % ep ranks get one extra expert; sizes differ by <= 1.
        parts = expert_partition(10, 4)
        assert [list(p) for p in parts] == [
            [0, 1, 2], [3, 4, 5], [6, 7], [8, 9]]

    @pytest.mark.parametrize("num_experts,ep", [(6, 4), (7, 3), (5, 5), (9, 2)])
    def test_uneven_covers_all_experts(self, num_experts, ep):
        parts = expert_partition(num_experts, ep)
        assert len(parts) == ep
        covered = [e for p in parts for e in p]
        assert covered == list(range(num_experts))
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1
        assert sorted(sizes, reverse=True) == sizes  # extras lead

    def test_validation(self):
        with pytest.raises(ValueError):
            expert_partition(4, 0)
        with pytest.raises(ValueError):
            expert_partition(3, 4)  # more ranks than experts


class TestEPEquivalence:
    @pytest.mark.parametrize("ep", [1, 2, 4])
    def test_matches_local_layer(self, ep):
        layer = MoELayer(hidden=16, num_experts=8, capacity_factor=2.0, seed=5)
        per_rank_tokens = 12
        xs = [RNG.normal(size=(per_rank_tokens, 16)) for _ in range(ep)]
        ref = [layer.forward_dense_table(x) for x in xs]

        def prog(comm):
            return ep_moe_forward(comm, layer, xs[comm.rank])

        results = spmd(ep, prog)
        for got, want in zip(results, ref):
            np.testing.assert_allclose(got, want, atol=1e-12)

    def test_3d_activation_shape(self):
        layer = MoELayer(hidden=8, num_experts=4, seed=1)
        x = RNG.normal(size=(2, 3, 8))

        def prog(comm):
            return ep_moe_forward(comm, layer, x)

        results = spmd(2, prog)
        assert results[0].shape == (2, 3, 8)
        np.testing.assert_allclose(
            results[0], layer.forward_dense_table(x), atol=1e-12
        )

    def test_skewed_routing_all_to_one_rank(self):
        """All tokens favor experts on rank 1: rank 0 receives nothing."""
        layer = MoELayer(hidden=8, num_experts=4, capacity_factor=4.0, seed=2)
        # Force gate toward expert 3 by biasing the gate weight.
        layer.w_gate[:, :] = 0.0
        layer.w_gate[:, 3] = 1.0
        x = np.abs(RNG.normal(size=(6, 8)))  # positive => positive logits

        def prog(comm):
            return ep_moe_forward(comm, layer, x)

        results = spmd(2, prog)
        np.testing.assert_allclose(
            results[0], layer.forward_dense_table(x), atol=1e-12
        )

    def test_capacity_drops_preserved(self):
        layer = MoELayer(hidden=8, num_experts=4, capacity_factor=0.25, seed=7)
        x = RNG.normal(size=(16, 8))
        g = layer.route(x)
        assert g.dropped.any()

        def prog(comm):
            return ep_moe_forward(comm, layer, x)

        results = spmd(2, prog)
        np.testing.assert_allclose(
            results[0], layer.forward_dense_table(x), atol=1e-12
        )
        np.testing.assert_array_equal(results[0][g.dropped], 0.0)

    @pytest.mark.parametrize("ep", [2, 3, 4])
    def test_uneven_expert_counts(self, ep):
        """num_experts % ep != 0 dispatches correctly to uneven owners."""
        layer = MoELayer(hidden=8, num_experts=7, capacity_factor=4.0, seed=3)
        xs = [RNG.normal(size=(5, 8)) for _ in range(ep)]
        ref = [layer.forward_dense_table(x) for x in xs]

        def prog(comm):
            return ep_moe_forward(comm, layer, xs[comm.rank])

        results = spmd(ep, prog)
        for got, want in zip(results, ref):
            np.testing.assert_allclose(got, want, atol=1e-12)

    def test_more_ranks_than_experts_rejected(self):
        layer = MoELayer(hidden=8, num_experts=3, seed=1)

        def prog(comm):
            return ep_moe_forward(comm, layer, RNG.normal(size=(4, 8)))

        with pytest.raises(RuntimeError):
            spmd(4, prog)
