"""Tests for rotary position embeddings (GPT-J/NeoX-style, Table I)."""

import numpy as np
import pytest

from repro.kernels.functional import apply_rotary
from repro.model import DenseTransformer, KVCache, ModelConfig
from repro.parallel import tp_spmd_forward

ROT_CFG = ModelConfig(name="rot-test", hidden=32, layers=3, heads=4, vocab=61,
                      max_seq=48, pos_encoding="rotary")

RNG = np.random.default_rng(53)


class TestApplyRotary:
    def test_norm_preserved(self):
        """Rotations are orthogonal: vector norms are invariant."""
        x = RNG.normal(size=(2, 3, 5, 8))
        y = apply_rotary(x, position_offset=7)
        np.testing.assert_allclose(
            np.linalg.norm(y, axis=-1), np.linalg.norm(x, axis=-1), atol=1e-12
        )

    def test_position_zero_is_identity(self):
        x = RNG.normal(size=(1, 1, 1, 8))
        np.testing.assert_allclose(apply_rotary(x, position_offset=0), x,
                                   atol=1e-12)

    def test_relative_position_property(self):
        """Q.K after rotation depends only on the position *difference*:
        shifting both positions by the same offset leaves scores equal."""
        q = RNG.normal(size=(1, 2, 4, 8))
        k = RNG.normal(size=(1, 2, 4, 8))

        def scores(offset):
            qr = apply_rotary(q, position_offset=offset)
            kr = apply_rotary(k, position_offset=offset)
            return qr @ kr.transpose(0, 1, 3, 2)

        np.testing.assert_allclose(scores(0), scores(11), atol=1e-10)

    def test_distinct_positions_change_scores(self):
        q = RNG.normal(size=(1, 1, 1, 8))
        k = RNG.normal(size=(1, 1, 1, 8))
        s_same = apply_rotary(q) @ apply_rotary(k).transpose(0, 1, 3, 2)
        s_far = apply_rotary(q) @ apply_rotary(
            k, position_offset=9
        ).transpose(0, 1, 3, 2)
        assert not np.allclose(s_same, s_far)

    def test_validation(self):
        with pytest.raises(ValueError):
            apply_rotary(RNG.normal(size=(2, 3, 4)))  # wrong rank
        with pytest.raises(ValueError):
            apply_rotary(RNG.normal(size=(1, 1, 1, 7)))  # odd head_dim


class TestRotaryModel:
    @pytest.fixture(scope="class")
    def model(self):
        return DenseTransformer(ROT_CFG, seed=3)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="pos_encoding"):
            ModelConfig(name="b", hidden=8, layers=1, heads=2, vocab=9,
                        pos_encoding="alibi")
        with pytest.raises(ValueError, match="even head_dim"):
            ModelConfig(name="b", hidden=9, layers=1, heads=3, vocab=9,
                        pos_encoding="rotary")

    def test_rotary_differs_from_learned(self, model):
        learned = DenseTransformer(
            ModelConfig(name="l", hidden=32, layers=3, heads=4, vocab=61,
                        max_seq=48), seed=3)
        ids = np.array([[1, 2, 3]])
        assert not np.allclose(model.forward(ids), learned.forward(ids))

    def test_order_sensitivity(self, model):
        """Position information flows through RoPE, not the embeddings:
        the same final token with the same preceding *multiset* but a
        different *order* yields different logits."""
        a = model.forward(np.array([[9, 5, 9]]))
        b = model.forward(np.array([[5, 9, 9]]))
        assert not np.allclose(a[0, 2], b[0, 2])

    def test_uniform_tokens_give_uniform_outputs(self, model):
        """A subtle RoPE property: with identical tokens everywhere, every
        value vector is identical (values are not rotated), so attention
        returns the same vector at every position — unlike learned
        embeddings, RoPE adds no absolute-position signal to the values."""
        a = model.forward(np.array([[5, 5, 5]]))
        np.testing.assert_allclose(a[0, 0], a[0, 2], atol=1e-10)

    def test_kv_cache_exact_with_rotary(self, model):
        """The RoPE/KV-cache interplay (rotate once at absolute positions)
        must keep incremental decoding exact."""
        ids = np.array([[3, 1, 4, 1, 5, 9]])
        full = model.forward(ids)
        cache = KVCache(ROT_CFG.layers)
        model.forward(ids[:, :3], cache)
        l4 = model.forward(ids[:, 3:4], cache)
        l5 = model.forward(ids[:, 4:5], cache)
        np.testing.assert_allclose(l4[:, 0], full[:, 3], atol=1e-10)
        np.testing.assert_allclose(l5[:, 0], full[:, 4], atol=1e-10)

    def test_generation_cache_matches_nocache(self, model):
        prompt = np.array([[2, 7, 1]])
        np.testing.assert_array_equal(
            model.generate(prompt, 5, use_cache=True),
            model.generate(prompt, 5, use_cache=False),
        )

    def test_tensor_parallel_exact_with_rotary(self, model):
        """Head sharding commutes with RoPE (rotation is head-local)."""
        ids = np.array([[5, 9, 2, 7]])
        ref = model.forward(ids)
        for tp in (2, 4):
            np.testing.assert_allclose(
                tp_spmd_forward(tp, model, ids), ref, atol=1e-10
            )

    def test_checkpoint_roundtrip_preserves_encoding(self, model, tmp_path):
        from repro.model import load_checkpoint, save_checkpoint

        save_checkpoint(model, tmp_path / "c")
        loaded = load_checkpoint(tmp_path / "c")
        # NOTE: pos_encoding must survive the manifest.
        assert loaded.config.pos_encoding == "rotary"
        ids = np.array([[1, 2]])
        np.testing.assert_array_equal(loaded.forward(ids), model.forward(ids))
