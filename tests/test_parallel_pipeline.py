"""Tests: pipeline partitioning, staged execution, and schedule policies."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware import DType
from repro.model import DenseTransformer, KVCache, ModelConfig
from repro.parallel import (
    ScheduleKind,
    dynamic_queue_span,
    fill_drain_span,
    partition_layers,
    simulate_pipeline,
    staged_forward,
)

CFG = ModelConfig(name="pp-test", hidden=32, layers=5, heads=4, vocab=53, max_seq=32)


class TestPartition:
    def test_balanced_split(self):
        plans = partition_layers(8, 4)
        assert [p.num_layers for p in plans] == [2, 2, 2, 2]
        assert plans[0].start == 0 and plans[-1].end == 8

    def test_remainder_goes_to_early_stages(self):
        plans = partition_layers(10, 4)
        assert [p.num_layers for p in plans] == [3, 3, 2, 2]

    def test_contiguous_cover(self):
        plans = partition_layers(7, 3)
        for a, b in zip(plans, plans[1:]):
            assert a.end == b.start

    def test_validation(self):
        with pytest.raises(ValueError):
            partition_layers(2, 3)
        with pytest.raises(ValueError):
            partition_layers(4, 0)

    def test_first_stage_weight_includes_embeddings(self):
        plans = partition_layers(CFG.layers, 2)
        w0 = plans[0].weight_bytes(CFG, DType.FP16)
        w1 = plans[1].weight_bytes(CFG, DType.FP16)
        # stage 0 has 3 layers + embeddings, stage 1 has 2 layers
        per_layer = CFG.params_per_dense_layer * 2
        assert w0 == pytest.approx(3 * per_layer + CFG.embedding_params * 2)
        assert w1 == pytest.approx(2 * per_layer)


class TestStagedForward:
    @pytest.fixture(scope="class")
    def model(self):
        return DenseTransformer(CFG, seed=9)

    @pytest.mark.parametrize("stages", [1, 2, 5])
    def test_matches_reference(self, model, stages):
        ids = np.array([[4, 8, 15, 16]])
        ref = model.forward(ids)
        got = staged_forward(model, partition_layers(CFG.layers, stages), ids)
        np.testing.assert_allclose(got, ref, atol=1e-12)

    def test_with_per_stage_kv_caches(self, model):
        ids = np.array([[4, 8, 15, 16, 23]])
        ref = model.forward(ids)
        plans = partition_layers(CFG.layers, 2)
        caches = [KVCache(CFG.layers) for _ in plans]
        outs = []
        for t in range(ids.shape[1]):
            outs.append(staged_forward(model, plans, ids[:, t : t + 1], caches))
        np.testing.assert_allclose(np.concatenate(outs, axis=1), ref, atol=1e-12)

    def test_incomplete_cover_rejected(self, model):
        plans = partition_layers(CFG.layers, 2)[:1]
        with pytest.raises(ValueError):
            staged_forward(model, plans, np.array([[1]]))

    def test_cache_count_mismatch(self, model):
        plans = partition_layers(CFG.layers, 2)
        with pytest.raises(ValueError):
            staged_forward(model, plans, np.array([[1]]), caches=[KVCache(5)])


class TestSchedules:
    def test_dynamic_queue_matches_closed_form(self):
        """With M == P and no prompt skew, DES equals the analytic span."""
        res = simulate_pipeline(
            num_stages=4, prompt_microbatches=4, gen_microbatches=4,
            gen_tokens=5, prompt_stage_time=1.0, gen_stage_time=1.0,
        )
        prompt = fill_drain_span(4, 4, 1.0)
        gen = dynamic_queue_span(4, 4, 5, 1.0)
        # Generation overlaps the prompt drain, so makespan is less than
        # the sequential sum but at least each phase alone.
        assert res.makespan <= prompt + gen
        assert res.makespan >= gen
        assert res.kind == ScheduleKind.DYNAMIC

    def test_lockstep_pays_bubble_per_token(self):
        """Fig. 2a vs 2b: the baseline re-fills the pipe for every token."""
        kw = dict(num_stages=4, prompt_microbatches=4, gen_microbatches=4,
                  gen_tokens=8, prompt_stage_time=1.0, gen_stage_time=1.0)
        base = simulate_pipeline(**kw, lockstep_generation=True)
        ds = simulate_pipeline(**kw)
        assert base.kind == ScheduleKind.LOCKSTEP
        # Lockstep: each token costs (P + M - 1); dynamic: M per token.
        assert base.makespan > ds.makespan
        gen_base = base.makespan - base.prompt_done
        gen_ds = ds.makespan - ds.prompt_done
        assert gen_base / gen_ds > 1.5

    def test_hybrid_improves_prompt_phase(self):
        """Fig. 3: more prompt micro-batches shrink the prompt bubble when
        prompt compute saturates the GPU (time scales with micro-batch
        size), without increasing generation passes."""
        P, B = 4, 8
        # prompt stage time proportional to tokens per micro-batch
        res_few = simulate_pipeline(
            num_stages=P, prompt_microbatches=4, gen_microbatches=4,
            gen_tokens=4, prompt_stage_time=B / 4.0, gen_stage_time=0.2,
        )
        res_many = simulate_pipeline(
            num_stages=P, prompt_microbatches=8, gen_microbatches=4,
            gen_tokens=4, prompt_stage_time=B / 8.0, gen_stage_time=0.2,
        )
        assert res_many.prompt_done < res_few.prompt_done
        assert res_many.kind == ScheduleKind.HYBRID

    def test_fewer_gen_microbatches_speed_generation(self):
        """Generation time is proportional to micro-batch count (each pass
        re-reads all weights, Sec. IV-C1)."""
        res8 = simulate_pipeline(
            num_stages=4, prompt_microbatches=8, gen_microbatches=8,
            gen_tokens=10, prompt_stage_time=0.5, gen_stage_time=1.0,
        )
        res4 = simulate_pipeline(
            num_stages=4, prompt_microbatches=8, gen_microbatches=4,
            gen_tokens=10, prompt_stage_time=0.5, gen_stage_time=1.0,
        )
        assert res4.generation_time < res8.generation_time

    def test_no_stage_overlap_and_high_utilization(self):
        res = simulate_pipeline(
            num_stages=4, prompt_microbatches=4, gen_microbatches=4,
            gen_tokens=20, prompt_stage_time=1.0, gen_stage_time=1.0,
        )
        for s in range(4):
            assert not res.timeline.has_overlap(f"stage{s}")
        assert res.mean_utilization > 0.85  # long run amortizes the bubble

    def test_p2p_time_extends_makespan(self):
        kw = dict(num_stages=4, prompt_microbatches=4, gen_microbatches=4,
                  gen_tokens=3, prompt_stage_time=1.0, gen_stage_time=1.0)
        fast = simulate_pipeline(**kw)
        slow = simulate_pipeline(**kw, p2p_time=0.3)
        assert slow.makespan > fast.makespan

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_pipeline(num_stages=0, prompt_microbatches=1,
                              gen_microbatches=1, gen_tokens=1,
                              prompt_stage_time=1, gen_stage_time=1)
        with pytest.raises(ValueError):
            simulate_pipeline(num_stages=2, prompt_microbatches=3,
                              gen_microbatches=2, gen_tokens=1,
                              prompt_stage_time=1, gen_stage_time=1)
        with pytest.raises(ValueError):
            simulate_pipeline(num_stages=2, prompt_microbatches=2,
                              gen_microbatches=2, gen_tokens=-1,
                              prompt_stage_time=1, gen_stage_time=1)
        with pytest.raises(ValueError):
            simulate_pipeline(num_stages=2, prompt_microbatches=2,
                              gen_microbatches=2, gen_tokens=1,
                              prompt_stage_time=0, gen_stage_time=1)


@given(
    stages=st.integers(min_value=1, max_value=5),
    mb=st.integers(min_value=1, max_value=6),
    tokens=st.integers(min_value=0, max_value=6),
)
@settings(max_examples=30, deadline=None)
def test_schedule_conservation_property(stages, mb, tokens):
    """Property: total busy time per stage equals work issued to it, and
    the makespan is bounded below by any single stage's busy time."""
    res = simulate_pipeline(
        num_stages=stages, prompt_microbatches=mb, gen_microbatches=mb,
        gen_tokens=tokens, prompt_stage_time=0.7, gen_stage_time=0.3,
    )
    for s in range(stages):
        busy = res.timeline.busy_time(f"stage{s}")
        expected = mb * 0.7 + mb * tokens * 0.3
        assert busy == pytest.approx(expected)
        assert res.makespan >= busy - 1e-9
