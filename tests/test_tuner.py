"""Tests for the deployment auto-tuner (throughput under latency SLA)."""

import pytest

from repro.engine import DenseLatencyModel, Workload, tune_dense_deployment
from repro.hardware import dgx_a100_cluster
from repro.model import DENSE_ZOO


CLUSTER = dgx_a100_cluster(2)


class TestTuner:
    def test_result_is_feasible_and_consistent(self):
        r = tune_dense_deployment(DENSE_ZOO["gpt-13b"], CLUSTER,
                                  prompt_len=128, gen_tokens=8, max_gpus=8,
                                  hybrid_factors=(1, 2))
        assert r.num_gpus == r.tp * r.pp <= CLUSTER.num_gpus
        # Re-evaluate the chosen point and confirm the numbers match.
        model = DenseLatencyModel(DENSE_ZOO["gpt-13b"], CLUSTER, tp=r.tp,
                                  pp=r.pp, hybrid_prompt_factor=r.hybrid_prompt_factor)
        rep = model.estimate(Workload(batch=r.batch, prompt_len=128,
                                      gen_tokens=8))
        assert rep.tokens_per_second == pytest.approx(r.tokens_per_second)
        assert rep.token_latency == pytest.approx(r.token_latency)

    def test_sla_is_respected(self):
        sla = 0.02
        r = tune_dense_deployment(DENSE_ZOO["gpt-13b"], CLUSTER,
                                  prompt_len=128, gen_tokens=8,
                                  latency_sla=sla, max_gpus=8,
                                  hybrid_factors=(1, 2))
        assert r.token_latency <= sla

    def test_tighter_sla_costs_throughput(self):
        loose = tune_dense_deployment(DENSE_ZOO["gpt-13b"], CLUSTER,
                                      prompt_len=128, gen_tokens=8,
                                      max_gpus=8, hybrid_factors=(1,))
        tight = tune_dense_deployment(DENSE_ZOO["gpt-13b"], CLUSTER,
                                      prompt_len=128, gen_tokens=8,
                                      latency_sla=0.015, max_gpus=8,
                                      hybrid_factors=(1,))
        assert tight.tokens_per_second <= loose.tokens_per_second
        assert tight.token_latency <= 0.015

    def test_impossible_sla_raises(self):
        with pytest.raises(ValueError, match="no feasible"):
            tune_dense_deployment(DENSE_ZOO["lm-175b"], CLUSTER,
                                  prompt_len=128, gen_tokens=8,
                                  latency_sla=1e-6, hybrid_factors=(1,))

    def test_max_gpus_cap(self):
        r = tune_dense_deployment(DENSE_ZOO["gpt-13b"], CLUSTER,
                                  prompt_len=128, gen_tokens=8, max_gpus=4)
        assert r.num_gpus <= 4

    def test_big_model_forces_multi_gpu(self):
        r = tune_dense_deployment(DENSE_ZOO["lm-175b"], CLUSTER,
                                  prompt_len=128, gen_tokens=8,
                                  hybrid_factors=(1,))
        assert r.num_gpus >= 16  # 350 GB of weights need at least 10 GPUs

    def test_validation(self):
        with pytest.raises(ValueError):
            tune_dense_deployment(DENSE_ZOO["gpt-13b"], CLUSTER,
                                  prompt_len=0, gen_tokens=8)
        with pytest.raises(ValueError):
            tune_dense_deployment(DENSE_ZOO["gpt-13b"], CLUSTER,
                                  prompt_len=1, gen_tokens=1, max_gpus=0)

    def test_per_gpu_metric(self):
        r = tune_dense_deployment(DENSE_ZOO["gpt-13b"], CLUSTER,
                                  prompt_len=128, gen_tokens=8, max_gpus=4,
                                  hybrid_factors=(1,))
        assert r.tokens_per_second_per_gpu == pytest.approx(
            r.tokens_per_second / r.num_gpus
        )
