"""Tests for the deployment auto-tuner (throughput under latency SLA)."""

import pytest

from repro.engine import (
    DenseLatencyModel,
    Workload,
    synthesize_trace,
    tune_dense_deployment,
    tune_serving_deployment,
)
from repro.hardware import dgx_a100_cluster
from repro.model import DENSE_ZOO


CLUSTER = dgx_a100_cluster(2)


class TestTuner:
    def test_result_is_feasible_and_consistent(self):
        r = tune_dense_deployment(DENSE_ZOO["gpt-13b"], CLUSTER,
                                  prompt_len=128, gen_tokens=8, max_gpus=8,
                                  hybrid_factors=(1, 2))
        assert r.num_gpus == r.tp * r.pp <= CLUSTER.num_gpus
        # Re-evaluate the chosen point and confirm the numbers match.
        model = DenseLatencyModel(DENSE_ZOO["gpt-13b"], CLUSTER, tp=r.tp,
                                  pp=r.pp, hybrid_prompt_factor=r.hybrid_prompt_factor)
        rep = model.estimate(Workload(batch=r.batch, prompt_len=128,
                                      gen_tokens=8))
        assert rep.tokens_per_second == pytest.approx(r.tokens_per_second)
        assert rep.token_latency == pytest.approx(r.token_latency)

    def test_sla_is_respected(self):
        sla = 0.02
        r = tune_dense_deployment(DENSE_ZOO["gpt-13b"], CLUSTER,
                                  prompt_len=128, gen_tokens=8,
                                  latency_sla=sla, max_gpus=8,
                                  hybrid_factors=(1, 2))
        assert r.token_latency <= sla

    def test_tighter_sla_costs_throughput(self):
        loose = tune_dense_deployment(DENSE_ZOO["gpt-13b"], CLUSTER,
                                      prompt_len=128, gen_tokens=8,
                                      max_gpus=8, hybrid_factors=(1,))
        tight = tune_dense_deployment(DENSE_ZOO["gpt-13b"], CLUSTER,
                                      prompt_len=128, gen_tokens=8,
                                      latency_sla=0.015, max_gpus=8,
                                      hybrid_factors=(1,))
        assert tight.tokens_per_second <= loose.tokens_per_second
        assert tight.token_latency <= 0.015

    def test_impossible_sla_raises(self):
        with pytest.raises(ValueError, match="no feasible"):
            tune_dense_deployment(DENSE_ZOO["lm-175b"], CLUSTER,
                                  prompt_len=128, gen_tokens=8,
                                  latency_sla=1e-6, hybrid_factors=(1,))

    def test_max_gpus_cap(self):
        r = tune_dense_deployment(DENSE_ZOO["gpt-13b"], CLUSTER,
                                  prompt_len=128, gen_tokens=8, max_gpus=4)
        assert r.num_gpus <= 4

    def test_big_model_forces_multi_gpu(self):
        r = tune_dense_deployment(DENSE_ZOO["lm-175b"], CLUSTER,
                                  prompt_len=128, gen_tokens=8,
                                  hybrid_factors=(1,))
        assert r.num_gpus >= 16  # 350 GB of weights need at least 10 GPUs

    def test_validation(self):
        with pytest.raises(ValueError):
            tune_dense_deployment(DENSE_ZOO["gpt-13b"], CLUSTER,
                                  prompt_len=0, gen_tokens=8)
        with pytest.raises(ValueError):
            tune_dense_deployment(DENSE_ZOO["gpt-13b"], CLUSTER,
                                  prompt_len=1, gen_tokens=1, max_gpus=0)

    def test_per_gpu_metric(self):
        r = tune_dense_deployment(DENSE_ZOO["gpt-13b"], CLUSTER,
                                  prompt_len=128, gen_tokens=8, max_gpus=4,
                                  hybrid_factors=(1,))
        assert r.tokens_per_second_per_gpu == pytest.approx(
            r.tokens_per_second / r.num_gpus
        )


class TestServingTuner:
    """Trace-level tuning: throughput under a P99 TTFT SLA."""

    TRACE = synthesize_trace(num_requests=25, arrival_rate=10.0,
                             mean_prompt=64, mean_gen=8, seed=9)

    def test_winner_reproduces_its_numbers(self):
        r = tune_serving_deployment(DENSE_ZOO["gpt-13b"], CLUSTER,
                                    self.TRACE, max_gpus=8)
        assert r.num_gpus == r.tp <= 8
        from repro.engine import serving_step_times, simulate_serving

        model = DenseLatencyModel(DENSE_ZOO["gpt-13b"], CLUSTER, tp=r.tp)
        prompt_t, step_t = serving_step_times(model, mean_prompt=64,
                                              mean_gen=8)
        rep = simulate_serving(self.TRACE, prompt_time=prompt_t,
                               step_time=step_t, max_batch=r.max_batch)
        assert rep.tokens_per_second == pytest.approx(r.tokens_per_second)
        assert rep.ttft_percentile(self.TRACE, 99) == pytest.approx(r.ttft_p99)

    def test_sla_respected_and_costs_throughput(self):
        loose = tune_serving_deployment(DENSE_ZOO["gpt-13b"], CLUSTER,
                                        self.TRACE, max_gpus=8)
        tight = tune_serving_deployment(DENSE_ZOO["gpt-13b"], CLUSTER,
                                        self.TRACE, max_gpus=8,
                                        ttft_sla=loose.ttft_p99 * 0.5)
        assert tight.ttft_p99 <= loose.ttft_p99 * 0.5
        assert tight.tokens_per_second <= loose.tokens_per_second

    def test_impossible_sla_raises(self):
        with pytest.raises(ValueError, match="no serving deployment"):
            tune_serving_deployment(DENSE_ZOO["gpt-13b"], CLUSTER,
                                    self.TRACE, ttft_sla=1e-9)

    def test_policy_threads_through(self):
        r = tune_serving_deployment(DENSE_ZOO["gpt-13b"], CLUSTER,
                                    self.TRACE, max_gpus=4,
                                    policy="shortest_prompt")
        assert r.policy == "shortest_prompt"

    def test_validation(self):
        with pytest.raises(ValueError):
            tune_serving_deployment(DENSE_ZOO["gpt-13b"], CLUSTER,
                                    self.TRACE, max_gpus=0)
