"""Tests for the device-memory reservation ledger."""

import pytest
from hypothesis import given, strategies as st

from repro.hardware import MemoryPool, OutOfDeviceMemory


class TestMemoryPool:
    def test_usable_leaves_headroom(self):
        pool = MemoryPool(capacity=100.0, reserve_fraction=0.1)
        assert pool.usable == pytest.approx(90.0)

    def test_reserve_and_release_roundtrip(self):
        pool = MemoryPool(capacity=100.0, reserve_fraction=0.0)
        r = pool.reserve("weights", 60.0)
        assert pool.used == pytest.approx(60.0)
        pool.release(r)
        assert pool.used == 0.0

    def test_over_reservation_raises(self):
        pool = MemoryPool(capacity=10.0, reserve_fraction=0.0)
        pool.reserve("a", 6.0)
        with pytest.raises(OutOfDeviceMemory):
            pool.reserve("b", 5.0)

    def test_error_message_names_tag(self):
        pool = MemoryPool(capacity=1.0, reserve_fraction=0.0)
        with pytest.raises(OutOfDeviceMemory, match="kv-cache"):
            pool.reserve("kv-cache", 2.0)

    def test_double_release_raises(self):
        pool = MemoryPool(capacity=10.0)
        r = pool.reserve("x", 1.0)
        pool.release(r)
        with pytest.raises(KeyError):
            pool.release(r)

    def test_negative_reservation_rejected(self):
        pool = MemoryPool(capacity=10.0)
        with pytest.raises(ValueError):
            pool.reserve("x", -1.0)

    def test_would_fit(self):
        pool = MemoryPool(capacity=10.0, reserve_fraction=0.0)
        assert pool.would_fit(10.0)
        assert not pool.would_fit(10.1)
        assert not pool.would_fit(-1.0)

    def test_breakdown_aggregates_by_tag(self):
        pool = MemoryPool(capacity=10.0, reserve_fraction=0.0)
        pool.reserve("kv", 1.0)
        pool.reserve("kv", 2.0)
        pool.reserve("weights", 3.0)
        assert pool.breakdown() == {"kv": 3.0, "weights": 3.0}

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            MemoryPool(capacity=0.0)
        with pytest.raises(ValueError):
            MemoryPool(capacity=1.0, reserve_fraction=1.0)


@given(
    sizes=st.lists(st.floats(min_value=0, max_value=1e9, allow_nan=False), max_size=30)
)
def test_ledger_invariant_used_plus_free_is_usable(sizes):
    """Property: at every step, used + free == usable and used >= 0."""
    pool = MemoryPool(capacity=1e10, reserve_fraction=0.05)
    live = []
    for i, s in enumerate(sizes):
        if pool.would_fit(s):
            live.append(pool.reserve(f"t{i}", s))
        elif live and i % 2:
            pool.release(live.pop())
        assert pool.used + pool.free == pytest.approx(pool.usable)
        assert pool.used >= 0
