"""Tests for functional NumPy kernels and fused-region equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.kernels import (
    dequantize,
    int8_linear,
    quantization_error_bound,
    quantize_symmetric,
)
from repro.kernels.functional import (
    bias_residual,
    fused_bias_gelu,
    fused_layernorm_mlp,
    fused_layernorm_qkv,
    gelu,
    layer_norm,
    linear,
    merge_heads,
    scaled_dot_product_attention,
    softmax,
    split_heads,
)

RNG = np.random.default_rng(7)


class TestBasicKernels:
    def test_layer_norm_zero_mean_unit_var(self):
        x = RNG.normal(size=(4, 64)) * 3 + 5
        y = layer_norm(x, np.ones(64), np.zeros(64))
        np.testing.assert_allclose(y.mean(-1), 0, atol=1e-10)
        np.testing.assert_allclose(y.var(-1), 1, atol=1e-4)

    def test_layer_norm_affine(self):
        x = RNG.normal(size=(2, 8))
        g, b = RNG.normal(size=8), RNG.normal(size=8)
        y = layer_norm(x, g, b)
        base = layer_norm(x, np.ones(8), np.zeros(8))
        np.testing.assert_allclose(y, base * g + b)

    def test_softmax_rows_sum_to_one(self):
        x = RNG.normal(size=(3, 5, 7)) * 10
        s = softmax(x)
        np.testing.assert_allclose(s.sum(-1), 1.0)
        assert (s >= 0).all()

    def test_softmax_stability_large_logits(self):
        x = np.array([[1e4, 1e4 + 1.0]])
        s = softmax(x)
        assert np.isfinite(s).all()
        assert s[0, 1] > s[0, 0]

    def test_gelu_properties(self):
        assert gelu(np.array([0.0]))[0] == 0.0
        x = np.linspace(-5, 5, 101)
        y = gelu(x)
        np.testing.assert_allclose(y[x > 3], x[x > 3], rtol=1e-3)
        assert (np.abs(y[x < -3]) < 1e-2).all()

    def test_linear_matches_manual(self):
        x = RNG.normal(size=(3, 4))
        w = RNG.normal(size=(4, 5))
        b = RNG.normal(size=5)
        np.testing.assert_allclose(linear(x, w, b), x @ w + b)
        np.testing.assert_allclose(linear(x, w), x @ w)

    def test_bias_residual(self):
        x, b, r = RNG.normal(size=(2, 4)), RNG.normal(size=4), RNG.normal(size=(2, 4))
        np.testing.assert_allclose(bias_residual(x, b, r), x + b + r)
        np.testing.assert_allclose(bias_residual(x, None, r), x + r)

    def test_split_merge_heads_roundtrip(self):
        x = RNG.normal(size=(2, 6, 32))
        np.testing.assert_array_equal(merge_heads(split_heads(x, 4)), x)

    def test_split_heads_bad_hidden(self):
        with pytest.raises(ValueError):
            split_heads(RNG.normal(size=(1, 2, 10)), 4)


class TestAttention:
    def test_causal_masking(self):
        # Query at position 0 must ignore keys at positions > 0.
        q = RNG.normal(size=(1, 1, 3, 8))
        k = RNG.normal(size=(1, 1, 3, 8))
        v = RNG.normal(size=(1, 1, 3, 8))
        out = scaled_dot_product_attention(q, k, v, causal=True)
        # first query can only see first key/value
        np.testing.assert_allclose(out[0, 0, 0], v[0, 0, 0])

    def test_query_offset_matches_full_causal(self):
        """KV-cached decoding: processing the last token with offset equals
        the last row of full causal attention."""
        b, n, s, d = 2, 4, 6, 8
        q = RNG.normal(size=(b, n, s, d))
        k = RNG.normal(size=(b, n, s, d))
        v = RNG.normal(size=(b, n, s, d))
        full = scaled_dot_product_attention(q, k, v, causal=True)
        last = scaled_dot_product_attention(
            q[:, :, -1:, :], k, v, causal=True, query_offset=s - 1
        )
        np.testing.assert_allclose(last[:, :, 0], full[:, :, -1], atol=1e-12)

    def test_uniform_attention_when_noncausal_identical_keys(self):
        q = RNG.normal(size=(1, 1, 2, 4))
        k = np.zeros((1, 1, 5, 4))
        v = RNG.normal(size=(1, 1, 5, 4))
        out = scaled_dot_product_attention(q, k, v, causal=False)
        np.testing.assert_allclose(out[0, 0, 0], v[0, 0].mean(0))


class TestFusedEquivalence:
    """Deep-Fusion changes data movement, not semantics: fused-region
    kernels must be bit-comparable with their op-by-op composition."""

    def test_region1_layernorm_qkv(self):
        h = 32
        x = RNG.normal(size=(5, h))
        g, b = RNG.normal(size=h), RNG.normal(size=h)
        w = RNG.normal(size=(h, 3 * h))
        bias = RNG.normal(size=3 * h)
        fused = fused_layernorm_qkv(x, g, b, w, bias)
        unfused = linear(layer_norm(x, g, b), w, bias)
        np.testing.assert_array_equal(fused, unfused)

    def test_region3_layernorm_mlp(self):
        h = 16
        x = RNG.normal(size=(3, h))
        g, b = RNG.normal(size=h), RNG.normal(size=h)
        w = RNG.normal(size=(h, 4 * h))
        bias = RNG.normal(size=4 * h)
        fused = fused_layernorm_mlp(x, g, b, w, bias)
        unfused = gelu(linear(layer_norm(x, g, b), w, bias))
        np.testing.assert_array_equal(fused, unfused)

    def test_bias_gelu_epilogue(self):
        x = RNG.normal(size=(4, 8))
        b = RNG.normal(size=8)
        np.testing.assert_array_equal(fused_bias_gelu(x, b), gelu(x + b))


class TestQuantization:
    def test_roundtrip_error_bounded(self):
        w = RNG.normal(size=(64, 128))
        qt = quantize_symmetric(w)
        err = np.abs(dequantize(qt) - w).max()
        # Half-LSB bound per channel.
        assert err <= quantization_error_bound(w) + 1e-12

    def test_zero_exactly_representable(self):
        w = RNG.normal(size=(8, 8))
        w[:, 3] = 0.0
        qt = quantize_symmetric(w)
        np.testing.assert_array_equal(dequantize(qt)[:, 3], 0.0)

    def test_storage_is_quarter_of_fp32(self):
        w = RNG.normal(size=(256, 256)).astype(np.float32)
        qt = quantize_symmetric(w)
        assert qt.nbytes < w.nbytes / 3.9 + qt.scale.nbytes + 1

    def test_int8_linear_close_to_fp(self):
        x = RNG.normal(size=(4, 64))
        w = RNG.normal(size=(64, 32))
        y_fp = x @ w
        y_q = int8_linear(x, quantize_symmetric(w))
        rel = np.abs(y_q - y_fp).max() / np.abs(y_fp).max()
        assert rel < 0.02  # per-channel int8 is accurate to ~1%

    def test_int8_linear_bias(self):
        x = RNG.normal(size=(2, 8))
        w = RNG.normal(size=(8, 4))
        b = RNG.normal(size=4)
        qt = quantize_symmetric(w)
        np.testing.assert_allclose(
            int8_linear(x, qt, b), int8_linear(x, qt) + b
        )

    def test_bad_inputs(self):
        from repro.kernels import QuantizedTensor

        with pytest.raises(TypeError):
            QuantizedTensor(np.zeros((2, 2), dtype=np.float32), np.ones(2))
        with pytest.raises(ValueError):
            QuantizedTensor(np.zeros((2, 2), dtype=np.int8), np.zeros(2))
        with pytest.raises(ValueError):
            int8_linear(np.ones((2, 2)),
                        quantize_symmetric(RNG.normal(size=(2, 2, 2))))


@given(
    w=arrays(np.float64, (16, 8),
             elements=st.floats(-100, 100, allow_nan=False)),
)
@settings(max_examples=50)
def test_quantization_error_property(w):
    """Property: per-element error never exceeds half the channel scale."""
    qt = quantize_symmetric(w)
    err = np.abs(dequantize(qt) - w)
    bound = np.where(np.abs(w).max(axis=0) > 0,
                     np.abs(w).max(axis=0) / 127 / 2, 0.0)
    assert (err <= bound[None, :] + 1e-9).all()


@given(
    x=arrays(np.float64, (3, 12), elements=st.floats(-50, 50, allow_nan=False))
)
@settings(max_examples=50)
def test_softmax_invariance_property(x):
    """Softmax is shift-invariant along the reduced axis."""
    np.testing.assert_allclose(softmax(x), softmax(x + 123.0), atol=1e-10)
