"""Tests for the workload scenario zoo and prefix sharing end to end:
generator invariants, the synthesize_trace compat pin, prefix-aware
pricing, and analytical-vs-functional equivalence on chat workloads."""

import dataclasses

import numpy as np
import pytest

from repro.engine import (
    Request,
    WorkloadTrace,
    simulate_serving,
    simulate_serving_reference,
    synthesize_trace,
)
from repro.engine import DenseLatencyModel, DenseStepCost
from repro.engine.costs import BatchState, PromptShape
from repro.engine.scheduler import TenantFairShare
from repro.hardware import dgx_a100_cluster
from repro.fleet.sim import run_fleet_functional, simulate_fleet
from repro.model import DenseTransformer, ModelConfig
from repro.scenarios import (
    SCENARIOS,
    TenantSpec,
    agentic_scenario,
    chat_scenario,
    heavy_tailed_scenario,
    make_scenario,
    multi_tenant_scenario,
    strip_prefix_sharing,
    tenant_policy,
    tenant_slo_summary,
)
from repro.scenarios.arrivals import draw_arrivals
from repro.scenarios.generators import _SESSION_STRIDE

COSTS = dict(prompt_time=lambda p, kv: 0.002 * p, step_time=lambda kv: 0.001)


def _dense_costs():
    from repro.model import DENSE_ZOO
    return DenseStepCost(DenseLatencyModel(
        DENSE_ZOO["gpt-13b"], dgx_a100_cluster(1), tp=4))


def _by_session(trace):
    out = {}
    for r in trace.requests:
        out.setdefault(r.session, []).append(r)
    for turns in out.values():
        turns.sort(key=lambda r: r.turn_index)
    return out


class TestChatScenario:
    def test_sessions_are_causal_and_prefix_chained(self):
        trace = chat_scenario(num_sessions=6, session_rate=3.0,
                              mean_prompt=30, mean_gen=8, seed=4)
        assert [r.request_id for r in trace.requests] == list(
            range(len(trace.requests)))
        arrivals = [r.arrival for r in trace.requests]
        assert arrivals == sorted(arrivals)
        for turns in _by_session(trace).values():
            assert [r.turn_index for r in turns] == list(range(len(turns)))
            assert turns[0].shared_prefix_len == 0
            for prev, cur in zip(turns, turns[1:]):
                # The follow-up shares the full previous context and
                # extends it by at least one utterance token.
                assert cur.shared_prefix_len == prev.prompt_len + prev.gen_tokens
                assert cur.prompt_len > cur.shared_prefix_len
                assert cur.arrival > prev.arrival
                # Generations floored at 2: no intra-round retirements.
                assert cur.gen_tokens >= 2

    def test_num_requests_is_a_hard_target(self):
        trace = chat_scenario(num_sessions=2, session_rate=1.0,
                              mean_turns=2.0, num_requests=25, seed=0)
        assert len(trace.requests) == 25

    def test_deterministic_in_seed(self):
        a = chat_scenario(num_sessions=3, session_rate=2.0, seed=9)
        b = chat_scenario(num_sessions=3, session_rate=2.0, seed=9)
        assert a == b

    def test_tenant_tagging(self):
        trace = chat_scenario(num_sessions=2, session_rate=1.0,
                              tenant="acme", seed=1)
        assert all(r.tenant == "acme" for r in trace.requests)

    def test_validation(self):
        with pytest.raises(ValueError):
            chat_scenario(num_sessions=0, session_rate=1.0)
        with pytest.raises(ValueError):
            chat_scenario(num_sessions=1, session_rate=0.0)
        with pytest.raises(ValueError):
            chat_scenario(num_sessions=1, session_rate=1.0, num_requests=0)


class TestAgenticScenario:
    def test_iterations_share_whole_transcript(self):
        trace = agentic_scenario(num_agents=3, agent_rate=2.0,
                                 context_len=60, mean_iterations=5.0, seed=2)
        deep = [s for s in _by_session(trace).values() if len(s) > 1]
        assert deep  # at least one multi-iteration agent
        for turns in deep:
            for prev, cur in zip(turns, turns[1:]):
                assert cur.shared_prefix_len == prev.prompt_len + prev.gen_tokens

    def test_context_dominates_prompts(self):
        trace = agentic_scenario(num_agents=2, agent_rate=1.0,
                                 context_len=200, seed=0)
        assert min(r.prompt_len for r in trace.requests) >= 100


class TestHeavyTailedScenario:
    def test_lengths_are_heavy_tailed_but_bounded(self):
        trace = heavy_tailed_scenario(num_requests=400, arrival_rate=50.0,
                                      median_prompt=64, max_gen=256, seed=3)
        prompts = np.array([r.prompt_len for r in trace.requests])
        gens = np.array([r.gen_tokens for r in trace.requests])
        assert prompts.min() >= 1 and gens.min() >= 1
        assert gens.max() <= 256
        # Lognormal spread: the tail dwarfs the median.
        assert np.percentile(prompts, 99) > 3 * np.median(prompts)
        assert all(r.shared_prefix_len == 0 for r in trace.requests)

    def test_validation(self):
        with pytest.raises(ValueError):
            heavy_tailed_scenario(num_requests=1, arrival_rate=1.0,
                                  gen_zipf_a=1.0)


class TestMultiTenant:
    SPECS = (
        TenantSpec(name="batch", arrival_rate=20.0, num_requests=30,
                   mean_prompt=40, mean_gen=10, weight=1.0),
        TenantSpec(name="chatty", arrival_rate=4.0, num_requests=20,
                   workload="chat", mean_prompt=20, mean_gen=6,
                   weight=2.0, slot_cap=3, p99_ttft_slo_s=5.0),
    )

    def test_mix_merges_tags_and_namespaces_sessions(self):
        trace = multi_tenant_scenario(self.SPECS, seed=1)
        assert len(trace.requests) == 50
        arrivals = [r.arrival for r in trace.requests]
        assert arrivals == sorted(arrivals)
        counts = {}
        for r in trace.requests:
            counts[r.tenant] = counts.get(r.tenant, 0) + 1
        assert counts == {"batch": 30, "chatty": 20}
        chat_sessions = {r.session for r in trace.requests
                         if r.tenant == "chatty"}
        assert all(s >= _SESSION_STRIDE for s in chat_sessions)
        assert all(r.session is None for r in trace.requests
                   if r.tenant == "batch")

    def test_duplicate_names_rejected(self):
        spec = TenantSpec(name="a", arrival_rate=1.0, num_requests=2)
        with pytest.raises(ValueError, match="unique"):
            multi_tenant_scenario([spec, spec])

    def test_tenant_policy_lifts_weights_and_caps(self):
        pick = tenant_policy(self.SPECS)
        assert isinstance(pick, TenantFairShare)
        assert pick.weights == {"batch": 1.0, "chatty": 2.0}
        assert pick.slot_caps == {"chatty": 3}

    def test_slo_summary_and_tenant_percentiles(self):
        trace = multi_tenant_scenario(self.SPECS, seed=1)
        rep = simulate_serving(trace, max_batch=4,
                               policy=tenant_policy(self.SPECS), **COSTS)
        assert rep.tenants(trace) == ["batch", "chatty"]
        for name in ("batch", "chatty"):
            assert rep.tenant_ttft_percentile(trace, name, 99) > 0
            assert rep.tenant_latency_percentile(trace, name, 50) > 0
        card = tenant_slo_summary(rep, trace, self.SPECS)
        assert card["batch"]["slo_s"] is None and card["batch"]["met"] is None
        assert card["chatty"]["met"] == (
            card["chatty"]["p99_ttft_s"] <= 5.0)
        with pytest.raises(ValueError, match="no requests"):
            rep.tenant_ttft_percentile(trace, "ghost", 99)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            TenantSpec(name="", arrival_rate=1.0, num_requests=1)
        with pytest.raises(ValueError):
            TenantSpec(name="a", arrival_rate=1.0, num_requests=1,
                       workload="bogus")
        with pytest.raises(ValueError):
            TenantSpec(name="a", arrival_rate=1.0, num_requests=1,
                       slot_cap=0)


class TestRegistryAndAblation:
    def test_make_scenario_dispatches(self):
        assert set(SCENARIOS) == {"chat", "agentic", "heavy_tailed",
                                  "multi_tenant"}
        trace = make_scenario("chat", num_sessions=2, session_rate=1.0,
                              seed=0)
        assert trace == chat_scenario(num_sessions=2, session_rate=1.0,
                                      seed=0)
        with pytest.raises(ValueError, match="unknown scenario"):
            make_scenario("nope")

    def test_strip_prefix_sharing_zeroes_only_the_prefix(self):
        trace = chat_scenario(num_sessions=3, session_rate=2.0, seed=5)
        bare = strip_prefix_sharing(trace)
        assert any(r.shared_prefix_len for r in trace.requests)
        assert all(r.shared_prefix_len == 0 for r in bare.requests)
        for a, b in zip(trace.requests, bare.requests):
            assert dataclasses.replace(a, shared_prefix_len=0) == b


class TestSynthesizeTraceCompat:
    """The wrapper must keep historical arguments bit-for-bit."""

    @pytest.mark.parametrize("shape,extra", [
        ("poisson", {}),
        ("diurnal", {"diurnal_amplitude": 0.5}),
        ("flash_crowd", {"burst_factor": 4.0, "num_bursts": 3}),
    ])
    def test_bit_for_bit_against_inlined_legacy_draw(self, shape, extra):
        """Replicate the pre-refactor draw order inline; the wrapper must
        reproduce it exactly (same rng stream, same construction)."""
        kw = dict(num_requests=40, arrival_rate=12.0, mean_prompt=20,
                  mean_gen=5, num_sessions=4, seed=17,
                  arrival_shape=shape, **extra)
        got = synthesize_trace(**kw)
        rng = np.random.default_rng(17)
        arrivals = draw_arrivals(rng, 40, 12.0, arrival_shape=shape, **extra)
        prompts = np.maximum(1, rng.poisson(20, size=40))
        gens = np.maximum(1, rng.poisson(5, size=40))
        sessions = rng.integers(0, 4, size=40)
        want = WorkloadTrace(tuple(
            Request(i, float(arrivals[i]), int(prompts[i]), int(gens[i]),
                    session=int(sessions[i]))
            for i in range(40)
        ))
        assert got == want
        assert all(r.shared_prefix_len == 0 and r.turn_index == 0
                   for r in got.requests)

    def test_chat_mode_routes_through_session_machinery(self):
        got = synthesize_trace(num_requests=12, arrival_rate=2.0,
                               mean_prompt=16, mean_gen=4, num_sessions=3,
                               session_mode="chat", seed=8)
        want = chat_scenario(num_sessions=3, session_rate=2.0,
                             mean_prompt=16, mean_gen=4, num_requests=12,
                             seed=8)
        assert got == want
        assert any(r.shared_prefix_len for r in got.requests)

    def test_chat_mode_validation(self):
        with pytest.raises(ValueError, match="requires num_sessions"):
            synthesize_trace(num_requests=4, arrival_rate=1.0,
                             session_mode="chat")
        with pytest.raises(ValueError, match="poisson"):
            synthesize_trace(num_requests=4, arrival_rate=1.0,
                             num_sessions=2, session_mode="chat",
                             arrival_shape="diurnal")
        with pytest.raises(ValueError, match="session_mode"):
            synthesize_trace(num_requests=4, arrival_rate=1.0,
                             session_mode="bursty")


class TestPrefixAwarePricing:
    def test_prompt_shape_validates(self):
        PromptShape(10, shared_prefix_len=9)
        with pytest.raises(ValueError):
            PromptShape(10, shared_prefix_len=10)
        with pytest.raises(ValueError):
            PromptShape(10, shared_prefix_len=-1)

    def test_dense_prompt_cost_discounts_cached_prefix(self):
        cost = _dense_costs()
        state = BatchState(())
        full = cost.prompt_cost(state, PromptShape(512))
        hit = cost.prompt_cost(state, PromptShape(512, shared_prefix_len=384))
        assert hit < full
        # The discount equals pricing only the suffix, attending over the
        # full context (the cached prefix is KV, not new tokens).
        assert hit == pytest.approx(
            sum(cost.latency_model.step_time(1, 128, 512)))


# -- analytical vs functional equivalence on chat workloads ----------------

EQ_CFG = ModelConfig(name="scen-eq", hidden=32, layers=2, heads=4, vocab=53,
                     max_seq=96)


@pytest.fixture(scope="module")
def eq_model():
    return DenseTransformer(EQ_CFG, seed=7)


def _chat_trace():
    return chat_scenario(num_sessions=4, session_rate=2.0, mean_prompt=10,
                         mean_gen=4, num_requests=14, seed=3)


class TestServingEquivalence:
    def test_compressed_equals_reference_including_kv_counters(self):
        trace = _chat_trace()
        rep = simulate_serving(trace, max_batch=3, kv_block_size=4, **COSTS)
        ref = simulate_serving_reference(trace, max_batch=3, kv_block_size=4,
                                         **COSTS)
        assert rep == ref
        assert rep.prefix_hits == ref.prefix_hits
        assert rep.peak_kv_blocks == ref.peak_kv_blocks

    def test_one_replica_fleet_prices_chat_identically(self):
        trace = _chat_trace()
        rep = simulate_serving(trace, max_batch=3, kv_block_size=4, **COSTS)
        fleet = simulate_fleet(trace, num_replicas=1, max_batch=3,
                               kv_block_size=4, **COSTS)
        for f in ("makespan", "finish_times", "first_token_times",
                  "queue_delays", "total_tokens", "prefix_hits",
                  "prefix_hit_tokens", "kv_blocks_allocated",
                  "kv_blocks_saved", "peak_kv_blocks"):
            assert getattr(rep, f) == getattr(fleet, f), f

    def test_sharing_beats_no_sharing_on_chat(self):
        # The ablation leg strips the declared prefixes but keeps the
        # session-cache parking policy, isolating the *reuse*: same
        # trace, same hardware, every prompt pays full prefill and fresh
        # blocks. A real step-cost model is needed for the latency side —
        # the closure pair is prefix-blind.
        trace = chat_scenario(num_sessions=8, session_rate=4.0,
                              mean_prompt=128, mean_gen=32,
                              num_requests=32, seed=5)
        costs = _dense_costs()
        on = simulate_serving(trace, costs=costs, max_batch=4)
        off = simulate_serving(strip_prefix_sharing(trace), costs=costs,
                               max_batch=4)
        assert on.prefix_hits > 0 and off.prefix_hits == 0
        assert on.ttft_percentile(trace, 99) < off.ttft_percentile(trace, 99)
        assert on.makespan < off.makespan  # prefill discount
        assert on.peak_kv_blocks < off.peak_kv_blocks  # block dedup
        assert on.kv_blocks_allocated < off.kv_blocks_allocated
        assert on.kv_dedup_ratio > 0 == off.kv_dedup_ratio

    def test_sharing_flag_is_noop_without_prefixes(self):
        """A no-prefix scenario prices bit-for-bit identically whatever
        the flag — the acceptance pin for legacy traces."""
        trace = strip_prefix_sharing(_chat_trace())
        on = simulate_serving(trace, max_batch=3, **COSTS)
        off = simulate_serving(trace, max_batch=3, prefix_sharing=False,
                               **COSTS)
        assert on.makespan == off.makespan
        assert on.finish_times == off.finish_times
        assert on.first_token_times == off.first_token_times


class TestFunctionalEquivalence:
    def test_chat_through_both_backends(self, eq_model):
        """Per-decision scheduler equivalence plus exact agreement of the
        analytical block ledger with the functional allocator."""
        trace = _chat_trace()
        res = run_fleet_functional(
            eq_model, trace, num_replicas=1, max_batch=3,
            kv_block_size=4, kv_pool_blocks=8192, prefix_sharing=True,
            **COSTS)
        rep = res.report
        sess = res.sessions[0]
        assert rep.prefix_hits > 0
        assert rep.prefix_hits == sess.prefix_hits
        assert rep.prefix_hit_tokens == sess.prefix_hit_tokens
        assert rep.kv_blocks_saved == sess.kv_blocks_saved
        assert rep.peak_kv_blocks == sess.peak_kv_blocks
        ev_a = [(e.step, e.kind, e.request_id)
                for e in rep.schedulers[0].events]
        ev_f = [(e.step, e.kind, e.request_id)
                for e in sess.scheduler.events]
        assert ev_a == ev_f
        # Exact-output contract on the *adopted* prompts: a prefix-hit
        # request's leading tokens were inherited from its parent turn.
        reused = 0
        for rid, out in res.outputs.items():
            r = sess.result(rid)
            gen = len(out) - len(r.prompt)
            solo = eq_model.generate(r.prompt[None, :], gen)[0]
            np.testing.assert_array_equal(out, solo)
            reused += r.prefix_reused > 0
        assert reused == rep.prefix_hits

    def test_tenant_policy_shared_across_backends(self, eq_model):
        """A tenant-aware policy instance drives identical decisions in
        the priced and functional backends."""
        specs = (
            TenantSpec(name="a", arrival_rate=6.0, num_requests=8,
                       mean_prompt=6, mean_gen=3),
            TenantSpec(name="b", arrival_rate=6.0, num_requests=8,
                       mean_prompt=6, mean_gen=3, weight=2.0),
        )
        trace = multi_tenant_scenario(specs, seed=2)
        pick = tenant_policy(specs)
        res = run_fleet_functional(eq_model, trace, num_replicas=1,
                                   max_batch=3, policy=pick, **COSTS)

        # Within a step the analytical loop interleaves enqueues between
        # admissions while the replay submits them up front, so compare
        # per-kind streams (the fleet equivalence tests' convention).
        def streams(sched):
            return {
                "enqueue": [e.request_id for e in sched.events
                            if e.kind == "enqueue"],
                "admit": [(e.step, e.request_id) for e in sched.events
                          if e.kind == "admit"],
                "retire": [(e.step, e.request_id, e.reason)
                           for e in sched.events if e.kind == "retire"],
            }

        assert streams(res.report.schedulers[0]) == streams(
            res.sessions[0].scheduler)
        assert set(res.outputs) == set(res.report.finish_times)
