"""Tests for the discrete-event simulation core."""

import pytest
from hypothesis import given, strategies as st

from repro.simcore import (
    Acquire,
    BandwidthLink,
    Event,
    Release,
    SimulationError,
    Simulator,
    SlotResource,
    Timeline,
    Timeout,
    Wait,
    transfer,
)


class TestSimulatorBasics:
    def test_single_timeout(self):
        sim = Simulator()
        seen = []

        def p():
            yield Timeout(2.5)
            seen.append(sim.now)

        sim.spawn(p())
        end = sim.run()
        assert seen == [2.5]
        assert end == pytest.approx(2.5)

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            Timeout(-1.0)

    def test_two_processes_interleave(self):
        sim = Simulator()
        order = []

        def p(name, d):
            yield Timeout(d)
            order.append(name)

        sim.spawn(p("slow", 3.0))
        sim.spawn(p("fast", 1.0))
        sim.run()
        assert order == ["fast", "slow"]

    def test_tie_break_is_fifo_deterministic(self):
        sim = Simulator()
        order = []

        def p(name):
            yield Timeout(1.0)
            order.append(name)

        for n in "abc":
            sim.spawn(p(n))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_event_wait_and_trigger(self):
        sim = Simulator()
        ev = Event("go")
        got = []

        def waiter():
            v = yield Wait(ev)
            got.append((sim.now, v))

        def setter():
            yield Timeout(4.0)
            sim.trigger(ev, "payload")

        sim.spawn(waiter())
        sim.spawn(setter())
        sim.run()
        assert got == [(4.0, "payload")]

    def test_wait_on_already_triggered_event(self):
        sim = Simulator()
        ev = Event()
        got = []

        def setter():
            yield Timeout(1.0)
            sim.trigger(ev, 42)

        def late_waiter():
            yield Timeout(2.0)
            v = yield Wait(ev)
            got.append(v)

        sim.spawn(setter())
        sim.spawn(late_waiter())
        sim.run()
        assert got == [42]

    def test_double_trigger_raises(self):
        sim = Simulator()
        ev = Event()

        def p():
            yield Timeout(0.0)
            sim.trigger(ev)
            sim.trigger(ev)

        sim.spawn(p())
        with pytest.raises(SimulationError):
            sim.run()

    def test_join_process_result(self):
        sim = Simulator()
        results = []

        def child():
            yield Timeout(1.0)
            return "done"

        def parent():
            proc = sim.spawn(child())
            v = yield proc
            results.append((sim.now, v))

        sim.spawn(parent())
        sim.run()
        assert results == [(1.0, "done")]

    def test_deadlock_detected(self):
        sim = Simulator()
        ev = Event()

        def p():
            yield Wait(ev)

        sim.spawn(p())
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run()

    def test_run_until_caps_time(self):
        sim = Simulator()

        def p():
            yield Timeout(100.0)

        sim.spawn(p())
        end = sim.run(until=10.0)
        assert end == pytest.approx(10.0)

    def test_invalid_yield_raises(self):
        sim = Simulator()

        def p():
            yield "nonsense"

        sim.spawn(p())
        with pytest.raises(SimulationError):
            sim.run()


class TestResources:
    def test_capacity_one_serializes(self):
        sim = Simulator()
        res = SlotResource(1)
        times = []

        def p():
            yield Acquire(res)
            yield Timeout(1.0)
            times.append(sim.now)
            yield Release(res)

        for _ in range(3):
            sim.spawn(p())
        sim.run()
        assert times == [1.0, 2.0, 3.0]

    def test_capacity_two_pairs(self):
        sim = Simulator()
        res = SlotResource(2)
        times = []

        def p():
            yield Acquire(res)
            yield Timeout(1.0)
            times.append(sim.now)
            yield Release(res)

        for _ in range(4):
            sim.spawn(p())
        sim.run()
        assert times == [1.0, 1.0, 2.0, 2.0]

    def test_release_idle_raises(self):
        sim = Simulator()
        res = SlotResource(1)

        def p():
            yield Release(res)

        sim.spawn(p())
        with pytest.raises(SimulationError):
            sim.run()

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            SlotResource(0)

    def test_link_occupancy(self):
        link = BandwidthLink(bandwidth=10.0, latency=0.5)
        assert link.occupancy(20.0) == pytest.approx(2.5)
        with pytest.raises(ValueError):
            link.occupancy(-1.0)

    def test_transfers_queue_fifo(self):
        sim = Simulator()
        link = BandwidthLink(bandwidth=1.0, latency=0.0)
        done = []

        def p(n):
            yield from transfer(link, 2.0)
            done.append((n, sim.now))

        sim.spawn(p("a"))
        sim.spawn(p("b"))
        sim.run()
        assert done == [("a", 2.0), ("b", 4.0)]
        assert link.busy_time == pytest.approx(4.0)


class TestTimeline:
    def test_record_and_makespan(self):
        tl = Timeline()
        tl.record("gpu0", 0.0, 2.0, "fwd")
        tl.record("gpu1", 1.0, 5.0, "fwd")
        assert tl.makespan() == pytest.approx(5.0)
        assert tl.lanes() == ["gpu0", "gpu1"]

    def test_busy_time_merges_overlaps(self):
        tl = Timeline()
        tl.record("l", 0.0, 2.0)
        tl.record("l", 1.0, 3.0)
        tl.record("l", 5.0, 6.0)
        assert tl.busy_time("l") == pytest.approx(4.0)

    def test_utilization_and_bubble(self):
        tl = Timeline()
        tl.record("s0", 0.0, 2.0)
        tl.record("s1", 2.0, 4.0)
        assert tl.utilization("s0") == pytest.approx(0.5)
        assert tl.bubble_time("s1") == pytest.approx(2.0)

    def test_overlap_detection(self):
        tl = Timeline()
        tl.record("x", 0.0, 2.0)
        tl.record("x", 3.0, 4.0)
        assert not tl.has_overlap("x")
        tl.record("x", 3.5, 5.0)
        assert tl.has_overlap("x")

    def test_invalid_span(self):
        with pytest.raises(ValueError):
            Timeline().record("x", 2.0, 1.0)

    def test_empty_timeline(self):
        tl = Timeline()
        assert tl.makespan() == 0.0
        assert tl.utilization("missing") == 0.0
        assert tl.spans("missing") == []

    def test_to_rows(self):
        tl = Timeline()
        tl.record("b", 0.0, 1.0, "x")
        tl.record("a", 0.0, 1.0, "y")
        rows = tl.to_rows()
        assert rows[0][0] == "a" and rows[1][0] == "b"

    def test_merge_with_prefix(self):
        a = Timeline()
        a.record("server", 0.0, 1.0, "own")
        b = Timeline()
        b.record("server", 2.0, 3.0, "other")
        b.record_instant("server", 2.5, "tick")
        assert a.merge(b, prefix="replica1/") is a
        assert a.lanes() == ["replica1/server", "server"]
        assert [s.label for s in a.spans("replica1/server")] == ["other"]
        assert a.instants("replica1/server") == [(2.5, "tick")]
        assert a.makespan() == pytest.approx(3.0)
        # Source timeline is untouched.
        assert b.lanes() == ["server"]

    def test_merge_without_prefix_interleaves(self):
        a = Timeline()
        a.record("l", 0.0, 1.0)
        b = Timeline()
        b.record("l", 0.5, 2.0)
        a.merge(b)
        assert a.busy_time("l") == pytest.approx(2.0)
        assert a.has_overlap("l")


@given(
    durations=st.lists(
        st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
        min_size=1,
        max_size=20,
    ),
    capacity=st.integers(min_value=1, max_value=4),
)
def test_slot_resource_conservation(durations, capacity):
    """Property: makespan of k-parallel jobs is bounded by the list-scheduling
    bounds sum/k <= makespan <= sum (and >= max duration)."""
    sim = Simulator()
    res = SlotResource(capacity)

    def p(d):
        yield Acquire(res)
        yield Timeout(d)
        yield Release(res)

    for d in durations:
        sim.spawn(p(d))
    end = sim.run()
    total = sum(durations)
    assert end <= total + 1e-9
    assert end >= max(durations) - 1e-9
    assert end >= total / capacity - 1e-9
