"""Tests for sampling strategies, Bruck all-to-all, and roofline analysis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.comm import alltoall_time, bruck_alltoall_time
from repro.hardware import A100_40GB, LinkSpec
from repro.kernels import (
    LayerShape,
    analyze_layer,
    crossover_batch,
    machine_balance,
)
from repro.model import SamplingConfig, sample_next_token

RNG = np.random.default_rng(61)


class TestSampling:
    def test_greedy_is_argmax(self):
        logits = RNG.normal(size=(4, 10))
        for cfg in (SamplingConfig(greedy=True), SamplingConfig(temperature=0)):
            np.testing.assert_array_equal(
                sample_next_token(logits, cfg), logits.argmax(-1)
            )

    def test_deterministic_given_seed(self):
        logits = RNG.normal(size=(3, 20))
        cfg = SamplingConfig(temperature=0.8, top_k=5)
        a = sample_next_token(logits, cfg, np.random.default_rng(9))
        b = sample_next_token(logits, cfg, np.random.default_rng(9))
        np.testing.assert_array_equal(a, b)

    def test_top_k_restricts_support(self):
        logits = RNG.normal(size=(1, 50))
        cfg = SamplingConfig(temperature=1.0, top_k=3)
        top3 = set(np.argsort(-logits[0])[:3])
        rng = np.random.default_rng(0)
        draws = {int(sample_next_token(logits, cfg, rng)[0]) for _ in range(200)}
        assert draws <= top3

    def test_top_p_keeps_at_least_one(self):
        logits = np.zeros((1, 4))
        logits[0, 2] = 20.0  # one token holds almost all mass
        cfg = SamplingConfig(top_p=0.5)
        rng = np.random.default_rng(1)
        for _ in range(20):
            assert sample_next_token(logits, cfg, rng)[0] == 2

    def test_low_temperature_concentrates(self):
        logits = RNG.normal(size=(1, 30))
        logits[0, 11] = logits.max() + 0.5  # clear winner
        rng = np.random.default_rng(2)
        cold = [int(sample_next_token(logits, SamplingConfig(temperature=0.02),
                                      rng)[0]) for _ in range(50)]
        assert all(t == 11 for t in cold)

    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingConfig(temperature=-1)
        with pytest.raises(ValueError):
            SamplingConfig(top_k=0)
        with pytest.raises(ValueError):
            SamplingConfig(top_p=0.0)
        with pytest.raises(ValueError):
            sample_next_token(np.zeros((1, 4)), SamplingConfig())  # no rng

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_samples_always_in_vocab(self, seed):
        logits = np.random.default_rng(seed).normal(size=(5, 13))
        cfg = SamplingConfig(temperature=1.3, top_p=0.9)
        toks = sample_next_token(logits, cfg, np.random.default_rng(seed))
        assert ((toks >= 0) & (toks < 13)).all()


class TestBruck:
    LINK = LinkSpec(name="t", bandwidth=1e9, latency=5e-6)

    def test_log_latency_steps(self):
        c = bruck_alltoall_time(self.LINK, 1e3, 64)
        assert c.latency_term == pytest.approx(6 * 5e-6)

    def test_small_message_crossover(self):
        """Bruck wins for tiny payloads at scale; pairwise wins for big."""
        small = 1e3
        big = 1e9
        assert (bruck_alltoall_time(self.LINK, small, 256).total
                < alltoall_time(self.LINK, small, 256).total)
        assert (bruck_alltoall_time(self.LINK, big, 256).total
                > alltoall_time(self.LINK, big, 256).total)

    def test_single_rank_free(self):
        assert bruck_alltoall_time(self.LINK, 1e6, 1).total == 0.0


class TestRooflineAnalysis:
    def test_machine_balance_a100(self):
        # 312 TFLOPS / 1555 GB/s ~ 200 flops/byte.
        assert machine_balance(A100_40GB) == pytest.approx(200.6, rel=0.01)

    def test_decode_regions_memory_bound(self):
        shape = LayerShape(hidden=4096, heads=32, batch=1, tokens_per_seq=1,
                           kv_len=128)
        regions = analyze_layer(A100_40GB, shape)
        gemm_regions = [r for r in regions if "gemm" in r.name]
        assert all(r.bound == "memory" for r in gemm_regions)
        # Batch-1 decode arithmetic intensity sits far below balance.
        assert all(r.arithmetic_intensity < machine_balance(A100_40GB)
                   for r in gemm_regions)

    def test_prompt_regions_compute_bound(self):
        shape = LayerShape(hidden=4096, heads=32, batch=8, tokens_per_seq=512,
                           kv_len=512)
        regions = analyze_layer(A100_40GB, shape)
        gemm_regions = [r for r in regions if "gemm" in r.name]
        assert any(r.bound == "compute" for r in gemm_regions)

    def test_crossover_batch_properties(self):
        b = crossover_batch(A100_40GB, 4096, 32)
        shape_below = LayerShape(hidden=4096, heads=32, batch=max(1, b // 2),
                                 tokens_per_seq=1, kv_len=128)
        regions = analyze_layer(A100_40GB, shape_below)
        gemms = [r for r in regions if "gemm" in r.name]
        assert any(r.bound == "memory" for r in gemms)
        assert 8 <= b <= 4096  # sits in a sane band for fp16 on A100

    def test_crossover_monotone_in_intensity(self):
        """Arithmetic intensity grows with batch, so the crossover exists
        and is unique — both hidden sizes land in similar flop/byte bands."""
        small = crossover_batch(A100_40GB, 1600, 25)
        big = crossover_batch(A100_40GB, 12288, 96)
        assert small > 1 and big > 1
