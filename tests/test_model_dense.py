"""Tests for the functional dense GPT model and KV cache."""

import numpy as np
import pytest

from repro.model import DenseTransformer, KVCache, ModelConfig

TINY = ModelConfig(name="tiny", hidden=32, layers=3, heads=4, vocab=97, max_seq=64)


@pytest.fixture(scope="module")
def model():
    return DenseTransformer(TINY, seed=1)


class TestForward:
    def test_logit_shape(self, model):
        ids = np.array([[1, 2, 3, 4]])
        assert model.forward(ids).shape == (1, 4, TINY.vocab)

    def test_batched(self, model):
        ids = np.array([[1, 2], [3, 4], [5, 6]])
        assert model.forward(ids).shape == (3, 2, TINY.vocab)

    def test_batch_independence(self, model):
        a = model.forward(np.array([[1, 2, 3]]))
        both = model.forward(np.array([[1, 2, 3], [9, 8, 7]]))
        np.testing.assert_allclose(both[0], a[0], atol=1e-12)

    def test_causality(self, model):
        """Changing a later token must not affect earlier logits."""
        x = np.array([[5, 6, 7, 8]])
        y = np.array([[5, 6, 7, 42]])
        lx, ly = model.forward(x), model.forward(y)
        np.testing.assert_allclose(lx[0, :3], ly[0, :3], atol=1e-12)
        assert not np.allclose(lx[0, 3], ly[0, 3])

    def test_out_of_vocab_rejected(self, model):
        with pytest.raises(ValueError):
            model.forward(np.array([[TINY.vocab]]))
        with pytest.raises(ValueError):
            model.forward(np.array([[-1]]))

    def test_too_long_rejected(self, model):
        with pytest.raises(ValueError):
            model.forward(np.zeros((1, TINY.max_seq + 1), dtype=int))

    def test_deterministic_given_seed(self):
        a = DenseTransformer(TINY, seed=5).forward(np.array([[1, 2]]))
        b = DenseTransformer(TINY, seed=5).forward(np.array([[1, 2]]))
        np.testing.assert_array_equal(a, b)


class TestKVCachedDecoding:
    """KV caching is exact: incremental forward == full recomputation."""

    def test_incremental_matches_full(self, model):
        ids = np.array([[3, 1, 4, 1, 5, 9]])
        full = model.forward(ids)
        cache = KVCache(TINY.layers)
        step_logits = []
        for t in range(ids.shape[1]):
            step_logits.append(model.forward(ids[:, t : t + 1], cache))
        inc = np.concatenate(step_logits, axis=1)
        np.testing.assert_allclose(inc, full, atol=1e-10)

    def test_prompt_then_steps(self, model):
        ids = np.array([[3, 1, 4, 1, 5, 9]])
        full = model.forward(ids)
        cache = KVCache(TINY.layers)
        model.forward(ids[:, :4], cache)  # prompt phase
        l5 = model.forward(ids[:, 4:5], cache)
        l6 = model.forward(ids[:, 5:6], cache)
        np.testing.assert_allclose(l5[:, 0], full[:, 4], atol=1e-10)
        np.testing.assert_allclose(l6[:, 0], full[:, 5], atol=1e-10)

    def test_generate_cache_matches_nocache(self, model):
        prompt = np.array([[2, 7, 1, 8]])
        with_cache = model.generate(prompt, 5, use_cache=True)
        without = model.generate(prompt, 5, use_cache=False)
        np.testing.assert_array_equal(with_cache, without)

    def test_generate_shape_and_prefix(self, model):
        prompt = np.array([[2, 7, 1], [6, 6, 6]])
        out = model.generate(prompt, 4)
        assert out.shape == (2, 7)
        np.testing.assert_array_equal(out[:, :3], prompt)

    def test_generate_validates(self, model):
        with pytest.raises(ValueError):
            model.generate(np.array([[1]]), 0)


class TestKVCache:
    def test_append_and_grow(self):
        c = KVCache(2)
        k = np.ones((1, 2, 3, 4))
        v = np.zeros((1, 2, 3, 4))
        fk, fv = c.append(0, k, v)
        assert fk.shape == (1, 2, 3, 4)
        fk, fv = c.append(0, k, v)
        assert fk.shape == (1, 2, 6, 4)
        assert c.seq_len(0) == 6 and c.seq_len(1) == 0

    def test_nbytes_counts_both_tensors(self):
        c = KVCache(1)
        k = np.ones((1, 1, 2, 2))
        c.append(0, k, k)
        assert c.nbytes == 2 * k.nbytes

    def test_shape_validation(self):
        c = KVCache(1)
        with pytest.raises(ValueError):
            c.append(0, np.ones((1, 2, 3, 4)), np.ones((1, 2, 3, 5)))
        with pytest.raises(ValueError):
            c.append(0, np.ones((2, 3, 4)), np.ones((2, 3, 4)))
        c.append(0, np.ones((1, 2, 3, 4)), np.ones((1, 2, 3, 4)))
        with pytest.raises(ValueError):
            c.append(0, np.ones((2, 2, 1, 4)), np.ones((2, 2, 1, 4)))

    def test_layer_bounds(self):
        c = KVCache(2)
        with pytest.raises(IndexError):
            c.get(2)
        with pytest.raises(IndexError):
            c.seq_len(-1)

    def test_trim(self):
        c = KVCache(1)
        k = np.arange(8.0).reshape(1, 1, 8, 1)
        c.append(0, k, k)
        c.trim(5)
        assert c.seq_len(0) == 5
        np.testing.assert_array_equal(c.get(0)[0][0, 0, :, 0], np.arange(5.0))
        with pytest.raises(ValueError):
            c.trim(-1)

    def test_empty_construction(self):
        with pytest.raises(ValueError):
            KVCache(0)
