"""Calibration tests: pin the paper's headline factors end to end.

These tests are the contract between the cost model's calibration
constants (see repro/kernels/gemm.py and repro/kernels/profiles.py) and
the paper's reported results. Each asserts a *shape* — who wins and by
roughly what factor — with a tolerance band around the published number,
so a change that silently de-calibrates the model fails loudly here.
"""

import pytest

from repro.baselines import et_comparison
from repro.engine import (
    DenseLatencyModel,
    MoEInferenceEngine,
    Workload,
)
from repro.hardware import dgx2_v100, dgx_a100_cluster, lambda_a6000_workstation
from repro.kernels import (
    DEEPSPEED_FP16,
    DEEPSPEED_INT8,
    FASTER_TRANSFORMER_FP16,
)
from repro.model import DENSE_ZOO, MOE_ZOO, get_model
from repro.zero import Tier, ZeroInferenceEngine

CLUSTER = dgx_a100_cluster(4)
WORKLOAD = Workload(batch=1, prompt_len=128, gen_tokens=8)

FIG6_CONFIGS = [("gpt2-1.5b", 1), ("gpt-13b", 1), ("gpt-neox-20b", 2),
                ("gpt-87b", 8)]


def _latency(name, tp, profile):
    model = DenseLatencyModel(DENSE_ZOO[name], CLUSTER, tp=tp, profile=profile)
    return model.estimate(WORKLOAD).token_latency


class TestDenseHeadlines:
    """Sec. VII-B1: up to 1.55x FP16 and 1.95x INT8 over FT-FP16."""

    @pytest.mark.parametrize("name,tp", FIG6_CONFIGS)
    def test_fp16_speedup_band(self, name, tp):
        s = _latency(name, tp, FASTER_TRANSFORMER_FP16) / _latency(
            name, tp, DEEPSPEED_FP16)
        assert 1.15 < s < 1.85, f"{name}: {s:.2f}"

    @pytest.mark.parametrize("name,tp", FIG6_CONFIGS)
    def test_int8_speedup_band(self, name, tp):
        s = _latency(name, tp, FASTER_TRANSFORMER_FP16) / _latency(
            name, tp, DEEPSPEED_INT8)
        assert 1.5 < s < 2.45, f"{name}: {s:.2f}"

    def test_largest_gain_on_smallest_model(self):
        gains = {
            name: _latency(name, tp, FASTER_TRANSFORMER_FP16)
            / _latency(name, tp, DEEPSPEED_FP16)
            for name, tp in FIG6_CONFIGS
        }
        assert gains["gpt2-1.5b"] == max(gains.values())


class TestSparseHeadlines:
    """Sec. VII-B2: up to 7.3x over PyTorch-MoE; 1T under 25 ms/token."""

    def test_trillion_model_under_25ms(self):
        eng = MoEInferenceEngine("24b-moe-128")
        assert MOE_ZOO["24b-moe-128"].listed_params > 1e12
        assert eng.token_latency() < 25e-3

    def test_peak_moe_speedup_band(self):
        speedups = []
        for name in MOE_ZOO:
            ds = MoEInferenceEngine(name, optimized=True).token_latency()
            base = MoEInferenceEngine(name, optimized=False).token_latency()
            speedups.append(base / ds)
        assert 5.0 < max(speedups) < 7.5
        assert min(speedups) > 2.0

    def test_aggregate_bandwidth_fraction_at_scale(self):
        """The 1T model is served at a meaningful fraction of the 256-GPU
        aggregate bandwidth (paper: 33% of peak; we accept 20-60%)."""
        eng = MoEInferenceEngine("24b-moe-128")
        agg = eng.model.aggregate_bandwidth(batch=8)
        peak = dgx_a100_cluster(32).aggregate_mem_bw
        assert 0.20 < agg / peak < 0.60


class TestThroughputHeadlines:
    """Sec. VII-C: ~1.5x over FT for 175B and 530B generation."""

    def test_175b_band(self):
        from repro.bench.figures import fig8_throughput

        rows = {r["model"]: r for r in fig8_throughput().rows}
        assert 1.2 < rows["lm-175b"]["speedup"] < 2.2
        assert 1.2 < rows["lm-530b"]["speedup"] < 2.2


class TestZeroInferenceHeadlines:
    """Sec. VII-D: 25x model scale, ~54% of peak, linear multi-GPU."""

    def test_25x_model_scale(self):
        ws = lambda_a6000_workstation(1)
        # GPU-only ceiling ~20B; ZeRO-Inference runs 530B.
        from repro.baselines import GPUOnlyBaseline

        assert GPUOnlyBaseline(get_model("gpt-neox-20b"), ws).fits()
        assert not GPUOnlyBaseline(get_model("gpt-50b"), ws).fits()
        eng = ZeroInferenceEngine(get_model("lm-530b"), ws)
        assert eng.placement is Tier.NVME
        assert eng.max_batch_pass(seq_len=512).time > 0
        ratio = get_model("lm-530b").total_params / get_model(
            "gpt-neox-20b").total_params
        assert ratio > 25

    def test_half_peak_tflops_on_a6000(self):
        ws = lambda_a6000_workstation(1)
        eng = ZeroInferenceEngine(get_model("gpt-87b"), ws)
        rep = eng.max_batch_pass(seq_len=2048)
        assert rep.tflops_per_gpu == pytest.approx(84, rel=0.12)

    def test_cpu_only_gap_exceeds_25x(self):
        from repro.baselines import CPUOnlyBaseline

        ws = lambda_a6000_workstation(1)
        cfg = get_model("gpt-neox-20b")
        cpu = CPUOnlyBaseline(cfg, ws).tflops(batch=8, seq_len=2048)
        zero = ZeroInferenceEngine(cfg, ws).max_batch_pass(
            seq_len=2048).tflops_per_gpu
        assert zero / cpu > 25

    def test_v100_scaling(self):
        cfg = get_model("gpt-50b")
        cluster = dgx2_v100(16)
        per_gpu = [
            ZeroInferenceEngine(cfg, cluster, num_gpus=n).max_batch_pass()
            .tflops_per_gpu
            for n in (1, 16)
        ]
        # Per-GPU efficiency holds steady from 1 to 16 GPUs.
        assert per_gpu[1] == pytest.approx(per_gpu[0], rel=0.10)


class TestKernelHeadlines:
    """Sec. VII-E: kernel ablations and the E.T. comparison."""

    def test_et_bands(self):
        rows = et_comparison()
        assert 1.5 < rows["distilbert"]["speedup"] < 2.3  # paper 1.7x
        assert 1.2 < rows["bert-large"]["speedup"] < 1.8  # paper 1.4x

    def test_moe_kernel_6x(self):
        """Sec. V-C: ~6x reduction in MoE kernel-related latency."""
        ds = MoEInferenceEngine("8b-moe-128", optimized=True)
        base = MoEInferenceEngine("8b-moe-128", optimized=False)
        factor = (base.step_breakdown().moe_kernel_time
                  / ds.step_breakdown().moe_kernel_time)
        # Paper: "over 6x"; eager-dispatch pile-up makes it much larger at
        # tiny decode batches.
        assert factor > 6.0

    def test_hybrid_schedule_bands(self):
        from repro.bench.figures import fig13_hybrid_prompt

        rows = {r["config"]: r for r in fig13_hybrid_prompt().rows}
        assert 1.05 < rows["PP+MP (tp8 x pp2)"]["speedup"] < 1.6  # paper 1.18
        assert 2.2 < rows["MP-only (tp16)"]["speedup"] < 3.8  # paper 3.06
