"""Tests for the functional bidirectional encoder."""

import numpy as np
import pytest

from repro.model import EncoderTransformer, ModelConfig

CFG = ModelConfig(name="enc-test", hidden=32, layers=3, heads=4, vocab=59,
                  max_seq=32, decoder=False)


@pytest.fixture(scope="module")
def model():
    return EncoderTransformer(CFG, seed=5)


class TestEncoder:
    def test_shapes(self, model):
        ids = np.array([[1, 2, 3, 4, 5]])
        out = model.encode(ids)
        assert out.shape == (1, 5, CFG.hidden)
        assert model.pooled(ids).shape == (1, CFG.hidden)

    def test_bidirectional_context(self, model):
        """Unlike a decoder, changing a LATER token changes EARLIER
        outputs — attention is bidirectional."""
        a = model.encode(np.array([[5, 6, 7, 8]]))
        b = model.encode(np.array([[5, 6, 7, 42]]))
        assert not np.allclose(a[0, 0], b[0, 0])

    def test_batch_independence(self, model):
        one = model.encode(np.array([[9, 8, 7]]))
        two = model.encode(np.array([[9, 8, 7], [1, 2, 3]]))
        np.testing.assert_allclose(two[0], one[0], atol=1e-12)

    def test_permutation_covariance_of_values(self, model):
        """With no position embeddings the encoder would be permutation-
        equivariant; with them, permuting inputs changes outputs."""
        a = model.encode(np.array([[3, 4, 5]]))
        b = model.encode(np.array([[5, 4, 3]]))
        assert not np.allclose(a, b)

    def test_decoder_config_rejected(self):
        bad = ModelConfig(name="d", hidden=16, layers=1, heads=2, vocab=10,
                          max_seq=8, decoder=True)
        with pytest.raises(ValueError, match="decoder"):
            EncoderTransformer(bad)

    def test_validation(self, model):
        with pytest.raises(ValueError):
            model.encode(np.array([[CFG.vocab]]))
        with pytest.raises(ValueError):
            model.encode(np.zeros((1, CFG.max_seq + 1), dtype=int))

    def test_padding_mask_isolates_padded_tokens(self, model):
        """A padded batch must produce the same embeddings for the real
        tokens as the unpadded sequence alone."""
        short = np.array([[9, 8, 7]])
        padded = np.array([[9, 8, 7, 0, 0]])
        mask = np.array([[True, True, True, False, False]])
        alone = model.encode(short)
        masked = model.encode(padded, attention_mask=mask)
        np.testing.assert_allclose(masked[0, :3], alone[0], atol=1e-10)

    def test_pooled_ignores_padding(self, model):
        short = np.array([[9, 8, 7]])
        padded = np.array([[9, 8, 7, 0]])
        mask = np.array([[True, True, True, False]])
        np.testing.assert_allclose(
            model.pooled(padded, mask), model.pooled(short), atol=1e-10
        )

    def test_mask_shape_validated(self, model):
        with pytest.raises(ValueError, match="attention_mask"):
            model.encode(np.array([[1, 2]]), attention_mask=np.ones((1, 3), bool))

    def test_matches_bert_zoo_config(self):
        from repro.model import BERT_ZOO

        tiny_distil = ModelConfig(
            name="mini-distil", hidden=24, layers=BERT_ZOO["distilbert"].layers,
            heads=4, vocab=31, max_seq=16, decoder=False,
        )
        model = EncoderTransformer(tiny_distil, seed=1)
        assert model.encode(np.array([[1, 2]])).shape == (1, 2, 24)
