"""Tests for the in-process SPMD communicator (numpy MPI semantics)."""

import numpy as np
import pytest

from repro.comm import spmd


class TestCollectives:
    def test_allreduce_sum(self):
        def prog(comm):
            return comm.allreduce(np.full(4, float(comm.rank + 1)))

        for out in spmd(4, prog):
            np.testing.assert_allclose(out, np.full(4, 10.0))

    def test_allreduce_max_min(self):
        def prog(comm):
            x = np.array([float(comm.rank)])
            return comm.allreduce(x, op="max"), comm.allreduce(x, op="min")

        for mx, mn in spmd(3, prog):
            assert mx[0] == 2.0 and mn[0] == 0.0

    def test_allreduce_bad_op(self):
        def prog(comm):
            return comm.allreduce(np.zeros(1), op="prod")

        with pytest.raises(RuntimeError, match="rank"):
            spmd(2, prog)

    def test_allgather_axis(self):
        def prog(comm):
            return comm.allgather(np.full((1, 2), comm.rank), axis=0)

        for out in spmd(3, prog):
            np.testing.assert_array_equal(out[:, 0], [0, 1, 2])
            assert out.shape == (3, 2)

    def test_allgather_axis1_column_parallel(self):
        # The pattern used to reassemble column-parallel linear outputs.
        def prog(comm):
            return comm.allgather(np.full((2, 3), comm.rank), axis=1)

        for out in spmd(2, prog):
            assert out.shape == (2, 6)
            np.testing.assert_array_equal(out[0], [0, 0, 0, 1, 1, 1])

    def test_broadcast(self):
        def prog(comm):
            data = np.arange(5.0) if comm.rank == 1 else None
            return comm.broadcast(data, root=1)

        for out in spmd(3, prog):
            np.testing.assert_array_equal(out, np.arange(5.0))

    def test_alltoall_exchanges_blocks(self):
        def prog(comm):
            blocks = [np.array([comm.rank * 10 + j]) for j in range(comm.size)]
            return comm.alltoall(blocks)

        outs = spmd(4, prog)
        for rank, received in enumerate(outs):
            # Rank r receives block [src*10 + r] from each source.
            np.testing.assert_array_equal(
                np.concatenate(received), [s * 10 + rank for s in range(4)]
            )

    def test_alltoall_wrong_block_count(self):
        def prog(comm):
            return comm.alltoall([np.zeros(1)])

        with pytest.raises(RuntimeError):
            spmd(3, prog)

    def test_reduce_scatter(self):
        def prog(comm):
            return comm.reduce_scatter(np.ones(8), axis=0)

        outs = spmd(4, prog)
        for out in outs:
            np.testing.assert_array_equal(out, [4.0, 4.0])

    def test_result_isolation(self):
        # Results must be private copies, not views of shared buffers.
        def prog(comm):
            out = comm.allreduce(np.ones(3))
            out += comm.rank  # must not corrupt peers
            return out

        outs = spmd(3, prog)
        np.testing.assert_array_equal(outs[0], [3, 3, 3])
        np.testing.assert_array_equal(outs[2], [5, 5, 5])

    def test_gather_objects(self):
        def prog(comm):
            return comm.gather_objects(f"r{comm.rank}", root=0)

        outs = spmd(3, prog)
        assert outs[0] == ["r0", "r1", "r2"]
        assert outs[1] is None and outs[2] is None


class TestPointToPoint:
    def test_ring_send_recv(self):
        def prog(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            comm.send(np.array([comm.rank]), dest=right)
            return comm.recv(source=left)[0]

        outs = spmd(4, prog)
        assert outs == [3, 0, 1, 2]

    def test_tags_disambiguate(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.array([1.0]), dest=1, tag=7)
                comm.send(np.array([2.0]), dest=1, tag=9)
                return None
            b = comm.recv(source=0, tag=9)
            a = comm.recv(source=0, tag=7)
            return (a[0], b[0])

        outs = spmd(2, prog)
        assert outs[1] == (1.0, 2.0)

    def test_send_copies_payload(self):
        def prog(comm):
            if comm.rank == 0:
                buf = np.ones(2)
                comm.send(buf, dest=1)
                buf[:] = 99.0
                comm.barrier()
                return None
            comm.barrier()
            return comm.recv(source=0)

        outs = spmd(2, prog)
        np.testing.assert_array_equal(outs[1], [1.0, 1.0])

    def test_recv_timeout(self):
        def prog(comm):
            if comm.rank == 1:
                return comm.recv(source=0, timeout=0.05)
            return None

        with pytest.raises(RuntimeError, match="Timeout|timed out"):
            spmd(2, prog)

    def test_invalid_peer(self):
        def prog(comm):
            comm.send(np.zeros(1), dest=5)

        with pytest.raises(RuntimeError):
            spmd(2, prog)


class TestSplit:
    def test_split_into_tp_groups(self):
        # 4 ranks -> two TP groups of 2, like TP=2 x DP=2.
        def prog(comm):
            sub = comm.split(color=comm.rank // 2)
            return sub.allreduce(np.array([float(comm.rank)]))[0]

        outs = spmd(4, prog)
        assert outs == [1.0, 1.0, 5.0, 5.0]

    def test_split_preserves_key_order(self):
        def prog(comm):
            # Reverse ordering inside the subgroup via key.
            sub = comm.split(color=0, key=-comm.rank)
            return sub.rank

        outs = spmd(3, prog)
        assert outs == [2, 1, 0]

    def test_nested_collectives_after_split(self):
        def prog(comm):
            sub = comm.split(color=comm.rank % 2)
            a = sub.allgather(np.array([comm.rank]))
            b = comm.allreduce(np.array([1.0]))
            return a.tolist(), b[0]

        outs = spmd(4, prog)
        assert outs[0][0] == [0, 2] and outs[1][0] == [1, 3]
        assert all(o[1] == 4.0 for o in outs)


class TestErrors:
    def test_rank_exception_propagates(self):
        def prog(comm):
            if comm.rank == 1:
                raise ValueError("boom")
            comm.barrier()

        with pytest.raises(RuntimeError, match="rank 1"):
            spmd(3, prog)

    def test_world_size_validation(self):
        with pytest.raises(ValueError):
            spmd(0, lambda comm: None)

    def test_single_rank_world(self):
        def prog(comm):
            return comm.allreduce(np.array([7.0]))[0]

        assert spmd(1, prog) == [7.0]


class TestStress:
    def test_randomized_collective_sequences_complete(self):
        """Stress: a seeded random program of mixed collectives completes
        deadlock-free on every world size, and all ranks agree on every
        reduction result."""
        import numpy as np

        def prog(comm, seed):
            rng = np.random.default_rng(seed)  # same stream on all ranks
            acc = float(comm.rank)
            checks = []
            for _ in range(25):
                op = rng.integers(0, 4)
                size = int(rng.integers(1, 16))
                x = np.full(size, acc + 1.0)
                if op == 0:
                    acc = float(comm.allreduce(x)[0])
                elif op == 1:
                    acc = float(comm.allgather(x).sum())
                elif op == 2:
                    acc = float(comm.broadcast(x if comm.rank == 0 else None,
                                               root=0)[0])
                else:
                    blocks = [x[:1] for _ in range(comm.size)]
                    acc = float(np.concatenate(comm.alltoall(blocks)).sum())
                checks.append(acc)
            return checks

        for world in (2, 3, 4):
            for seed in (0, 1, 2):
                results = spmd(world, prog, seed)
                # Rank-dependent initial values converge after the first
                # allreduce/allgather; all ranks must agree from the first
                # collective that mixes them.
                for step in range(25):
                    vals = {round(r[step], 9) for r in results}
                    assert len(vals) <= world
                # The final value must be identical across ranks (every
                # collective in the mix is symmetric).
                assert len({round(r[-1], 9) for r in results}) == 1
