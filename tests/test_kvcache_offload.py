"""Tests for the host-offloadable KV cache (Sec. IV-C2, functionally)."""

import numpy as np
import pytest

from repro.model import DenseTransformer, HostOffloadKVCache, KVCache, ModelConfig

CFG = ModelConfig(name="kvoff-test", hidden=32, layers=4, heads=4, vocab=41,
                  max_seq=32)


def fill(cache, layer, seq=3):
    k = np.random.default_rng(layer).normal(size=(1, 2, seq, 4))
    cache.append(layer, k, k + 1)
    return k


class TestHostOffload:
    def test_offload_moves_bytes_off_device(self):
        c = HostOffloadKVCache(2)
        k = fill(c, 0)
        before = c.device_nbytes
        c.offload(0)
        assert c.is_offloaded(0)
        assert c.device_nbytes == 0
        assert c.nbytes == before  # total footprint unchanged
        assert c.bytes_offloaded == before

    def test_access_pages_back_transparently(self):
        c = HostOffloadKVCache(1)
        k = fill(c, 0)
        c.offload(0)
        got_k, got_v = c.get(0)
        np.testing.assert_array_equal(got_k, k)
        assert not c.is_offloaded(0)
        assert c.bytes_fetched == c.bytes_offloaded

    def test_append_after_offload(self):
        c = HostOffloadKVCache(1)
        fill(c, 0, seq=2)
        c.offload(0)
        extra = np.ones((1, 2, 1, 4))
        full_k, _ = c.append(0, extra, extra)
        assert full_k.shape[2] == 3
        assert not c.is_offloaded(0)

    def test_seq_len_answerable_while_offloaded(self):
        c = HostOffloadKVCache(1)
        fill(c, 0, seq=5)
        c.offload(0)
        assert c.seq_len(0) == 5
        assert c.is_offloaded(0)  # the query did not page in

    def test_offload_empty_layer_is_noop(self):
        c = HostOffloadKVCache(2)
        c.offload(1)
        assert not c.is_offloaded(1)
        assert c.bytes_offloaded == 0

    def test_double_offload_idempotent(self):
        c = HostOffloadKVCache(1)
        fill(c, 0)
        c.offload(0)
        first = c.bytes_offloaded
        c.offload(0)
        assert c.bytes_offloaded == first

    def test_layer_bounds(self):
        c = HostOffloadKVCache(1)
        with pytest.raises(IndexError):
            c.offload(1)


class TestDecodingWithOffload:
    def test_generation_exact_under_aggressive_offloading(self):
        """Offloading every layer after every step must not change logits —
        the correctness contract behind Sec. IV-C2."""
        model = DenseTransformer(CFG, seed=21)
        ids = np.array([[3, 1, 4, 1, 5]])
        want = model.forward(ids)

        cache = HostOffloadKVCache(CFG.layers)
        outs = []
        for t in range(ids.shape[1]):
            outs.append(model.forward(ids[:, t : t + 1], cache))
            for layer in range(CFG.layers):
                cache.offload(layer)
        got = np.concatenate(outs, axis=1)
        np.testing.assert_allclose(got, want, atol=1e-10)
        # Every step after the first paged every layer back in.
        assert cache.bytes_fetched > 0

    def test_traffic_accounting_matches_round_trips(self):
        model = DenseTransformer(CFG, seed=22)
        cache = HostOffloadKVCache(CFG.layers)
        model.forward(np.array([[1, 2]]), cache)
        step_bytes = cache.device_nbytes
        for layer in range(CFG.layers):
            cache.offload(layer)
        model.forward(np.array([[3]]), cache)
        # Everything offloaded came back exactly once.
        assert cache.bytes_fetched == step_bytes
        assert cache.bytes_offloaded == step_bytes

    def test_plain_cache_has_no_offload_api(self):
        assert not hasattr(KVCache(1), "offload")
