"""Functional fleet runs: real sessions, exact-output guarantees.

The fleet-level extension of PR 1's decision-equivalence tests: the
analytical run is the control plane, and each replica's real
:class:`GenerationSession` re-makes every admission/retirement decision,
which must coincide with the analytical scheduler's — then every
completed output must equal solo ``model.generate``.
"""

import numpy as np
import pytest

from repro.engine import Request, WorkloadTrace, synthesize_trace
from repro.fleet import (
    FaultPlan,
    ReplicaFault,
    run_fleet_functional,
    synthesize_prompts,
)
from repro.model import DenseTransformer, ModelConfig

CFG = ModelConfig(name="fleet-eq", hidden=32, layers=2, heads=4, vocab=53,
                  max_seq=64)
COSTS = dict(prompt_time=lambda b, p: 0.02 + 0.001 * p,
             step_time=lambda b: 0.01 + 0.001 * b)


@pytest.fixture(scope="module")
def model():
    return DenseTransformer(CFG, seed=7)


def _trace(n=16, rate=200.0, seed=0):
    return synthesize_trace(num_requests=n, arrival_rate=rate,
                            mean_prompt=5, mean_gen=4, seed=seed)


def _streams(sched, crash_step=None):
    """Per-kind event streams (enqueue order; admit/retire with steps and
    reasons). Within a step the analytical loop enqueues arrivals between
    admit actions while the functional session submits them all up front,
    so the *interleaving* differs by construction — the per-kind streams
    must not."""
    events = [e for e in sched.events
              if crash_step is None or e.step < crash_step]
    return {
        "enqueue": [e.request_id for e in events if e.kind == "enqueue"],
        "admit": [(e.step, e.request_id) for e in events
                  if e.kind == "admit"],
        "retire": [(e.step, e.request_id, e.reason) for e in events
                   if e.kind == "retire"],
    }


def _check_equivalence(result, model, trace, prompts):
    """Decision equivalence plus exact-output equality for one run."""
    report = result.report
    for i, analytical in enumerate(report.schedulers):
        functional = result.sessions[i].scheduler
        crash = report.crash_steps.get(i)
        assert _streams(functional, crash) == _streams(analytical, crash), (
            f"replica {i} decision streams diverge")
    assert set(result.outputs) == set(report.finish_times)
    for r in trace.requests:
        expected = model.generate(prompts[r.request_id][None, :],
                                  r.gen_tokens)[0]
        np.testing.assert_array_equal(result.outputs[r.request_id], expected)


@pytest.mark.parametrize("routing", ["round_robin", "least_outstanding"])
def test_healthy_fleet_matches_solo_generate(model, routing):
    trace = _trace()
    prompts = synthesize_prompts(trace, vocab=CFG.vocab, seed=1)
    result = run_fleet_functional(
        model, trace, num_replicas=3, max_batch=3, routing=routing,
        prompts=prompts, **COSTS)
    assert result.report.num_completed == len(trace.requests)
    _check_equivalence(result, model, trace, prompts)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_crash_retries_match_solo_generate(model, seed):
    """The acceptance test: kill a replica mid-trace; every request —
    including the requeued victims — completes with output exactly equal
    to solo ``model.generate``, and the dead replica contributes no
    token (victims restart from scratch on a survivor)."""
    trace = _trace(n=20, rate=400.0, seed=seed)
    t_crash = trace.requests[-1].arrival + 0.05
    plan = FaultPlan((ReplicaFault(seed % 3, t_crash),))
    prompts = synthesize_prompts(trace, vocab=CFG.vocab, seed=seed)
    result = run_fleet_functional(
        model, trace, num_replicas=3, max_batch=3,
        routing="least_outstanding", fault_plan=plan, prompts=prompts,
        **COSTS)
    report = result.report
    assert report.num_completed == len(trace.requests)
    assert report.retried, "the crash must have produced victims"
    # Victims were re-served by a survivor, never the dead replica.
    dead = seed % 3
    assert all(report.replica_of[rid] != dead for rid in report.retried)
    _check_equivalence(result, model, trace, prompts)


def test_one_replica_functional_run(model):
    trace = _trace(n=8)
    prompts = synthesize_prompts(trace, vocab=CFG.vocab)
    result = run_fleet_functional(model, trace, num_replicas=1, max_batch=2,
                                  prompts=prompts, **COSTS)
    _check_equivalence(result, model, trace, prompts)


def test_prompt_length_mismatch_rejected(model):
    trace = WorkloadTrace((Request(0, 0.0, 4, 2),))
    with pytest.raises(ValueError, match="trace says 4"):
        run_fleet_functional(model, trace, num_replicas=1, max_batch=1,
                             prompts={0: np.array([1, 2])}, **COSTS)


def test_synthesize_prompts_deterministic():
    trace = _trace(n=6)
    a = synthesize_prompts(trace, vocab=31, seed=4)
    b = synthesize_prompts(trace, vocab=31, seed=4)
    for rid in a:
        np.testing.assert_array_equal(a[rid], b[rid])
        assert a[rid].size == trace.requests[rid].prompt_len
        assert a[rid].max() < 31
