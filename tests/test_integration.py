"""Cross-subsystem integration tests: the paths a real user composes."""

import numpy as np
import pytest

from repro.engine import GenerationSession
from repro.hardware import lambda_a6000_workstation
from repro.model import (
    DenseTransformer,
    ModelConfig,
    load_checkpoint,
    save_checkpoint,
)
from repro.parallel import simulate_pipeline
from repro.zero import StreamedTransformer

CFG = ModelConfig(name="integ-test", hidden=32, layers=4, heads=4, vocab=67,
                  max_seq=40)


class TestCheckpointToStreaming:
    """Save to disk -> load -> serve layer-streamed: the full ZeRO path."""

    def test_disk_roundtrip_then_streamed_serving(self, tmp_path):
        model = DenseTransformer(CFG, seed=33)
        save_checkpoint(model, tmp_path / "ckpt")
        loaded = load_checkpoint(tmp_path / "ckpt")
        streamed = StreamedTransformer(loaded, lambda_a6000_workstation(1),
                                       window=2)
        prompt = np.array([[7, 8, 9]])
        np.testing.assert_array_equal(
            streamed.generate(prompt, 4), model.generate(prompt, 4)
        )
        assert streamed.fetches > 0


class TestSessionOverStreamedModel:
    """Continuous batching on top of a layer-streamed model."""

    def test_session_serves_from_streamed_weights(self):
        model = DenseTransformer(CFG, seed=34)
        streamed = StreamedTransformer(model, lambda_a6000_workstation(1),
                                       window=2)
        # The batched serving runtime drives the streamed executor
        # directly: every layer touch goes through the residency window.
        session = GenerationSession(streamed, max_concurrency=2)
        rids = [session.submit(np.array([2, 3]), max_new_tokens=3),
                session.submit(np.array([5]), max_new_tokens=4)]
        done = session.run()
        assert streamed.fetches > 0
        np.testing.assert_array_equal(
            done[rids[0]].output_ids,
            model.generate(np.array([[2, 3]]), 3)[0],
        )
        np.testing.assert_array_equal(
            done[rids[1]].output_ids,
            model.generate(np.array([[5]]), 4)[0],
        )


class TestHeterogeneousStageTimes:
    """Uneven layer splits give per-stage times; the slowest paces the pipe."""

    def test_slow_stage_paces_throughput(self):
        uniform = simulate_pipeline(
            num_stages=3, prompt_microbatches=3, gen_microbatches=3,
            gen_tokens=10, prompt_stage_time=1.0, gen_stage_time=1.0,
        )
        skewed = simulate_pipeline(
            num_stages=3, prompt_microbatches=3, gen_microbatches=3,
            gen_tokens=10, prompt_stage_time=[1.0, 1.0, 1.0],
            gen_stage_time=[0.5, 2.0, 0.5],  # same total work per pass
        )
        assert skewed.makespan > uniform.makespan
        # Busy-time conservation per stage.
        assert skewed.timeline.busy_time("stage1") == pytest.approx(
            3 * 1.0 + 3 * 10 * 2.0
        )

    def test_scalar_and_list_forms_agree(self):
        a = simulate_pipeline(
            num_stages=2, prompt_microbatches=2, gen_microbatches=2,
            gen_tokens=4, prompt_stage_time=0.7, gen_stage_time=0.3,
        )
        b = simulate_pipeline(
            num_stages=2, prompt_microbatches=2, gen_microbatches=2,
            gen_tokens=4, prompt_stage_time=[0.7, 0.7],
            gen_stage_time=[0.3, 0.3],
        )
        assert a.makespan == pytest.approx(b.makespan)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError, match="one entry per stage"):
            simulate_pipeline(
                num_stages=3, prompt_microbatches=3, gen_microbatches=3,
                gen_tokens=1, prompt_stage_time=[1.0, 1.0],
                gen_stage_time=1.0,
            )

    def test_nonpositive_entry_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            simulate_pipeline(
                num_stages=2, prompt_microbatches=2, gen_microbatches=2,
                gen_tokens=1, prompt_stage_time=[1.0, 0.0],
                gen_stage_time=1.0,
            )
