"""Smoke/integration tests for the bench harness itself."""

import pytest

from repro.bench import ALL_ABLATIONS, ALL_EXPERIMENTS, ExperimentResult, run
from repro.bench.runner import REGISTRY
from repro.bench.tables import format_table


class TestRegistry:
    def test_every_paper_artifact_has_a_driver(self):
        assert set(ALL_EXPERIMENTS) == {
            "table1", "table2", "fig6", "fig7", "fig8", "fig9",
            "fig10a", "fig10b", "fig10c", "fig11", "fig12", "fig13",
        }

    def test_ablation_registry(self):
        assert set(ALL_ABLATIONS) == {
            "abl-cudagraph", "abl-fusion", "abl-pcc", "abl-expert-slicing",
            "abl-hybrid", "abl-prefetch", "abl-sla", "abl-pinned",
            "abl-serving",
        }
        assert not set(ALL_ABLATIONS) & set(ALL_EXPERIMENTS)

    def test_run_selected(self):
        results = run(["table1", "fig12"])
        assert [r.exp_id for r in results] == ["table1", "fig12"]

    def test_run_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown"):
            run(["fig99"])

    @pytest.mark.parametrize("exp_id", sorted(REGISTRY))
    def test_driver_contract(self, exp_id):
        """Every driver returns well-formed rows whose keys are columns."""
        if exp_id in ("fig8", "fig10b"):
            pytest.skip("slow drivers covered by benchmarks/")
        res = REGISTRY[exp_id]()
        assert isinstance(res, ExperimentResult)
        assert res.exp_id == exp_id
        assert res.rows, exp_id
        for row in res.rows:
            assert set(row) <= set(res.columns), (exp_id, row)
        # render() must not crash and must include the title.
        assert res.title in res.render()


class TestExport:
    def test_json_dict_roundtrips(self):
        import json

        res = run(["table2"])[0]
        blob = json.dumps(res.to_json_dict())
        back = json.loads(blob)
        assert back["exp_id"] == "table2"
        assert len(back["rows"]) == len(res.rows)

    def test_csv_has_header_and_rows(self):
        res = run(["table1"])[0]
        lines = res.to_csv().strip().splitlines()
        assert lines[0].split(",")[0] == "model"
        assert len(lines) == 1 + len(res.rows)

    def test_cli_writes_artifacts(self, tmp_path, capsys):
        from repro.bench.runner import main

        json_file = tmp_path / "out.json"
        csv_dir = tmp_path / "csv"
        rc = main(["--json", str(json_file), "--csv", str(csv_dir), "table1"])
        assert rc == 0
        assert json_file.exists()
        assert (csv_dir / "table1.csv").exists()
        assert "table1" in capsys.readouterr().out

    def test_cli_bad_flag_usage(self, capsys):
        from repro.bench.runner import main

        assert main(["--json"]) == 2
        assert main(["fig99"]) == 2


class TestTables:
    def test_format_basic(self):
        out = format_table(["a", "b"], [{"a": 1, "b": 2.5}, {"a": 30}])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "2.5" in out
        assert len(lines) == 4

    def test_empty_rows(self):
        out = format_table(["x"], [])
        assert "x" in out

    def test_column_accessor(self):
        res = ExperimentResult("t", "T", ["a"], [{"a": 1}, {"a": 2}])
        assert res.column("a") == [1, 2]
        with pytest.raises(KeyError):
            res.column("zzz")
