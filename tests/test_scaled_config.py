"""Tests for the synthetic model-architecture builder."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.model import scaled_config


class TestScaledConfig:
    @pytest.mark.parametrize("target", [1.5e9, 13e9, 175e9, 530e9])
    def test_hits_budget_within_20pct(self, target):
        cfg = scaled_config(target)
        assert cfg.total_params == pytest.approx(target, rel=0.20)

    def test_matches_table1_shape_at_175b(self):
        # The interpolation recovers GPT-3's published architecture.
        cfg = scaled_config(175e9)
        assert cfg.hidden == 12288
        assert cfg.layers == 96
        assert cfg.heads == 96

    def test_head_dim_respected(self):
        cfg = scaled_config(30e9, head_dim=64)
        assert cfg.hidden % 64 == 0
        assert cfg.head_dim == 64

    def test_name_and_listed(self):
        cfg = scaled_config(7e9, name="my-7b")
        assert cfg.name == "my-7b"
        assert cfg.listed_params == 7e9
        auto = scaled_config(7e9)
        assert "7" in auto.name

    def test_moe_passthrough(self):
        from repro.model import MoESpec

        cfg = scaled_config(2e9, moe=MoESpec(16))
        assert cfg.moe.num_experts == 16
        assert cfg.expert_params > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            scaled_config(0)
        with pytest.raises(ValueError):
            scaled_config(1e9, aspect=0)

    def test_usable_by_engines(self):
        from repro.engine import InferenceEngine
        from repro.hardware import dgx_a100_cluster

        cfg = scaled_config(30e9)
        eng = InferenceEngine(cfg, dgx_a100_cluster(2))
        assert eng.estimate(batch=1, prompt_len=64, gen_tokens=2).total_latency > 0


@given(target=st.floats(min_value=1e8, max_value=2e12))
@settings(max_examples=40, deadline=None)
def test_scaled_config_monotone_property(target):
    """Properties: valid architecture, budget within 2x, monotone size."""
    cfg = scaled_config(target)
    assert cfg.hidden % cfg.heads == 0
    assert 0.5 < cfg.total_params / target < 2.0
    bigger = scaled_config(target * 4)
    assert bigger.total_params > cfg.total_params
