"""Tests for the transformer-layer op graph (shapes, flops, byte accounting)."""

import pytest

from repro.hardware import DType
from repro.kernels import LayerShape, OpKind, moe_expert_ffn_ops, transformer_layer_ops


def shape(**kw):
    base = dict(hidden=1024, heads=16, batch=2, tokens_per_seq=1, kv_len=128)
    base.update(kw)
    return LayerShape(**base)


class TestLayerShape:
    def test_tokens(self):
        s = shape(batch=4, tokens_per_seq=128, kv_len=128)
        assert s.tokens == 512

    def test_head_dim(self):
        assert shape().head_dim == 64

    def test_act_bytes(self):
        s = shape(batch=1, tokens_per_seq=1)
        assert s.act_bytes == 1024 * 2  # fp16

    def test_validation(self):
        with pytest.raises(ValueError):
            shape(hidden=1000, heads=16)  # not divisible
        with pytest.raises(ValueError):
            shape(kv_len=0)  # kv shorter than processed tokens
        with pytest.raises(ValueError):
            shape(tp_degree=3)  # heads not divisible by tp
        with pytest.raises(ValueError):
            shape(batch=0)


class TestLayerOps:
    def test_op_chain_structure(self):
        ops = transformer_layer_ops(shape())
        names = [o.name for o in ops]
        assert names[0] == "input_layernorm"
        assert names[-1] == "mlp_bias_residual"
        assert "qkv_gemm" in names and "attention_scores" in names
        assert len(ops) == 15

    def test_weight_bytes_sum_matches_12h2(self):
        # Dense layer parameters: qkv 3h^2 + proj h^2 + mlp 8h^2 = 12h^2
        # (plus biases/ln, which are O(h)).
        s = shape()
        ops = transformer_layer_ops(s)
        w = sum(o.weight_bytes for o in ops if o.kind is OpKind.GEMM)
        assert w == pytest.approx(12 * s.hidden**2 * 2)

    def test_gemm_flops(self):
        s = shape(batch=1, tokens_per_seq=1)
        ops = {o.name: o for o in transformer_layer_ops(s)}
        assert ops["qkv_gemm"].flops == pytest.approx(2 * 1 * s.hidden * 3 * s.hidden)
        assert ops["mlp_h_to_4h_gemm"].flops == pytest.approx(8 * s.hidden**2)

    def test_attention_flops_scale_with_kv_len(self):
        a = transformer_layer_ops(shape(kv_len=128))
        b = transformer_layer_ops(shape(kv_len=256))
        fa = sum(o.flops for o in a if o.kind is OpKind.ATTENTION)
        fb = sum(o.flops for o in b if o.kind is OpKind.ATTENTION)
        assert fb == pytest.approx(2 * fa)

    def test_tensor_parallel_divides_weights_and_flops(self):
        s1, s4 = shape(tp_degree=1), shape(tp_degree=4)
        w1 = sum(o.weight_bytes for o in transformer_layer_ops(s1))
        w4 = sum(o.weight_bytes for o in transformer_layer_ops(s4))
        # GeMM weights divide by 4; ln/bias params mostly do not.
        assert w4 < w1 / 3.5
        f1 = sum(o.flops for o in transformer_layer_ops(s1) if o.is_gemm)
        f4 = sum(o.flops for o in transformer_layer_ops(s4) if o.is_gemm)
        assert f4 == pytest.approx(f1 / 4)

    def test_row_parallel_gemm_blocks_downstream_fusion_under_tp(self):
        ops = {o.name: o for o in transformer_layer_ops(shape(tp_degree=4))}
        assert not ops["attn_output_gemm"].tile_local_dep
        assert not ops["mlp_4h_to_h_gemm"].tile_local_dep
        ops1 = {o.name: o for o in transformer_layer_ops(shape(tp_degree=1))}
        assert ops1["attn_output_gemm"].tile_local_dep

    def test_kv_cache_read_traffic(self):
        # attention reads the whole cached K and V each step.
        s = shape(batch=1, tokens_per_seq=1, kv_len=512)
        ops = {o.name: o for o in transformer_layer_ops(s)}
        kv_half = s.kv_len * s.hidden * 2  # one of K or V in fp16
        assert ops["attention_scores"].act_in_bytes >= kv_half

    def test_int8_not_applied_in_graph(self):
        # Weight dtype scaling is the cost model's job; the graph reports
        # fp16 bytes for the configured dtype.
        s = shape(dtype=DType.FP16)
        ops = transformer_layer_ops(s)
        assert all(o.weight_bytes >= 0 for o in ops)

    def test_negative_footprint_rejected(self):
        from repro.kernels import Op

        with pytest.raises(ValueError):
            Op("bad", OpKind.ELEMENTWISE, flops=-1, weight_bytes=0,
               act_in_bytes=0, act_out_bytes=0)


class TestMoEExpertOps:
    def test_expert_ffn_weights(self):
        s = shape()
        ops = moe_expert_ffn_ops(s)
        w = sum(o.weight_bytes for o in ops if o.kind is OpKind.GEMM)
        assert w == pytest.approx(8 * s.hidden**2 * 2)

    def test_expert_slicing_divides_weights(self):
        s = shape()
        w1 = sum(o.weight_bytes for o in moe_expert_ffn_ops(s, expert_slicing=1)
                 if o.kind is OpKind.GEMM)
        w2 = sum(o.weight_bytes for o in moe_expert_ffn_ops(s, expert_slicing=2)
                 if o.kind is OpKind.GEMM)
        assert w2 == pytest.approx(w1 / 2)

    def test_invalid_slicing(self):
        with pytest.raises(ValueError):
            moe_expert_ffn_ops(shape(), expert_slicing=0)
