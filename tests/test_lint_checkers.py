"""Per-checker fixture tests for repro.lint.

Each checker gets at least one seeded violation it must flag and the
corrected version of the same snippet it must stay silent on — the
acceptance contract of the lint subsystem.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.lint import all_checkers, load_source
from repro.lint.checkers import (
    ApiHygieneChecker,
    CollectiveSymmetryChecker,
    SimDeterminismChecker,
    UnitConsistencyChecker,
    select_checkers,
)


def lint_snippet(checker, source, *, module, path="fixture.py"):
    mod = load_source(textwrap.dedent(source), module=module, path=path)
    if not checker.applies_to(mod):
        return []
    return list(checker.check(mod))


# -- RP001 collective-symmetry ----------------------------------------------


class TestCollectiveSymmetry:
    CH = CollectiveSymmetryChecker

    def test_fires_on_rank_conditional_collective(self):
        findings = lint_snippet(self.CH(), """
            def f(comm, x):
                if comm.rank == 0:
                    return comm.allreduce(x)
                return x
            """, module="repro.parallel.fixture")
        assert len(findings) == 1
        assert findings[0].code == "RP001"
        assert "allreduce" in findings[0].message
        assert "deadlock" in findings[0].message

    def test_silent_on_unconditional_collective(self):
        findings = lint_snippet(self.CH(), """
            def f(comm, x):
                y = comm.allreduce(x)
                if comm.rank == 0:
                    print(y.sum())
                return y
            """, module="repro.parallel.fixture")
        assert findings == []

    def test_fires_on_rank_bound_loop(self):
        findings = lint_snippet(self.CH(), """
            def f(comm):
                for _ in range(comm.rank):
                    comm.barrier()
            """, module="repro.parallel.fixture")
        assert len(findings) == 1
        assert "trip count" in findings[0].message

    def test_fires_on_rank_dependent_while(self):
        findings = lint_snippet(self.CH(), """
            def f(comm, x):
                step = 0
                while step < comm.rank:
                    x = comm.allgather(x)
                    step += 1
                return x
            """, module="repro.parallel.fixture")
        assert len(findings) == 1

    def test_silent_on_symmetric_branch(self):
        # The broadcast-root idiom: both sides issue the same collective.
        findings = lint_snippet(self.CH(), """
            def f(comm, x, root):
                if comm.rank == root:
                    out = comm.broadcast(x)
                else:
                    out = comm.broadcast(None)
                return out
            """, module="repro.parallel.fixture")
        assert findings == []

    def test_fires_on_asymmetric_else(self):
        findings = lint_snippet(self.CH(), """
            def f(comm, x):
                if comm.rank == 0:
                    out = comm.broadcast(x)
                else:
                    out = comm.broadcast(None)
                    comm.barrier()
                return out
            """, module="repro.parallel.fixture")
        assert [f.message for f in findings if "barrier" in f.message]

    def test_silent_on_point_to_point(self):
        # Rank-conditional send/recv is how pipeline stages talk.
        findings = lint_snippet(self.CH(), """
            def f(comm, x):
                if comm.rank == 0:
                    comm.send(x, dest=1)
                else:
                    x = comm.recv(source=0)
                return x
            """, module="repro.parallel.fixture")
        assert findings == []

    def test_silent_on_numpy_broadcast(self):
        findings = lint_snippet(self.CH(), """
            import numpy as np
            def f(comm, a, b):
                if comm.rank == 0:
                    return np.broadcast(a, b)
            """, module="repro.parallel.fixture")
        assert findings == []

    def test_scoped_to_spmd_packages(self):
        # The same violation outside repro.parallel / repro.model is not
        # this checker's business.
        findings = lint_snippet(self.CH(), """
            def f(comm, x):
                if comm.rank == 0:
                    return comm.allreduce(x)
            """, module="repro.bench.fixture")
        assert findings == []


# -- RP002 unit-consistency -------------------------------------------------


class TestUnitConsistency:
    CH = UnitConsistencyChecker

    def test_fires_on_bytes_plus_seconds(self):
        findings = lint_snippet(self.CH(), """
            def f(act_bytes, compute_time):
                return act_bytes + compute_time
            """, module="repro.kernels.fixture")
        assert len(findings) == 1
        assert findings[0].code == "RP002"
        assert "seconds" in findings[0].message
        assert "bytes" in findings[0].message

    def test_silent_on_converted_sum(self):
        # Division is how conversions are written: bytes / rate = time.
        findings = lint_snippet(self.CH(), """
            def f(act_bytes, hbm_bytes_per_s, compute_time):
                return act_bytes / hbm_bytes_per_s + compute_time
            """, module="repro.kernels.fixture")
        assert findings == []

    def test_fires_on_gb_vs_bytes_comparison(self):
        findings = lint_snippet(self.CH(), """
            def fits(weight_bytes, hbm_gb):
                return weight_bytes <= hbm_gb
            """, module="repro.hardware.fixture")
        assert len(findings) == 1
        assert "conversion is missing" in findings[0].message

    def test_fires_on_augmented_accumulation(self):
        findings = lint_snippet(self.CH(), """
            def f(total_time, layer_flops):
                total_time += layer_flops
                return total_time
            """, module="repro.engine.fixture")
        assert len(findings) == 1
        assert "accumulates" in findings[0].message

    def test_fires_on_misnamed_return(self):
        findings = lint_snippet(self.CH(), """
            def region_bytes(compute_time):
                return compute_time
            """, module="repro.kernels.fixture")
        assert len(findings) == 1
        assert "returns" in findings[0].message

    def test_silent_on_same_unit_arithmetic(self):
        findings = lint_snippet(self.CH(), """
            def f(p_time, gen_time, w_bytes, act_bytes, gen_tokens):
                total_time = p_time + gen_time
                total_bytes = w_bytes + act_bytes
                ok = total_time > p_time and gen_tokens > 1
                return total_time, total_bytes, ok
            """, module="repro.engine.fixture")
        assert findings == []

    def test_inline_annotation_binds_unit(self):
        findings = lint_snippet(self.CH(), """
            # repro-lint: unit(budget)=seconds
            def f(budget, act_bytes):
                return budget + act_bytes
            """, module="repro.engine.fixture")
        assert len(findings) == 1

    def test_registry_name_has_unit(self):
        # "makespan" is in DEFAULT_UNIT_REGISTRY as seconds.
        findings = lint_snippet(self.CH(), """
            def f(makespan, total_tokens):
                return makespan - total_tokens
            """, module="repro.engine.fixture")
        assert len(findings) == 1

    def test_rate_units_distinguish_numerators(self):
        findings = lint_snippet(self.CH(), """
            def f(tokens_per_s, hbm_bytes_per_s):
                return tokens_per_s + hbm_bytes_per_s
            """, module="repro.engine.fixture")
        assert len(findings) == 1

    def test_prefetch_accounting_suffixes_are_counts(self):
        # `_misses` must not fall through to the `_ms` / `_s` time
        # suffixes; hits and misses add cleanly, and mixing either with
        # seconds fires.
        clean = lint_snippet(self.CH(), """
            def f(prefetch_hits, prefetch_misses):
                return prefetch_hits + prefetch_misses
            """, module="repro.moe_placement.fixture")
        assert clean == []
        findings = lint_snippet(self.CH(), """
            def f(prefetch_misses, stall_s):
                return prefetch_misses + stall_s
            """, module="repro.moe_placement.fixture")
        assert len(findings) == 1
        assert "count" in findings[0].message
        assert "seconds" in findings[0].message

    def test_hit_rate_is_a_ratio(self):
        clean = lint_snippet(self.CH(), """
            def f(cache_hit_rate, hit_rate):
                return cache_hit_rate + hit_rate
            """, module="repro.moe_placement.fixture")
        assert clean == []
        findings = lint_snippet(self.CH(), """
            def f(cache_hit_rate, fetch_time):
                return cache_hit_rate + fetch_time
            """, module="repro.moe_placement.fixture")
        assert len(findings) == 1
        assert "ratio" in findings[0].message

    def test_covers_moe_placement_package(self):
        findings = lint_snippet(self.CH(), """
            def f(act_bytes, stall_s):
                return act_bytes + stall_s
            """, module="repro.moe_placement.fixture")
        assert len(findings) == 1

    def test_no_duplicate_findings_for_nested_expression(self):
        findings = lint_snippet(self.CH(), """
            def f(a_bytes, b_time, c_bytes):
                return a_bytes + b_time + c_bytes
            """, module="repro.engine.fixture")
        # One conflict per mismatched addition, not one per AST revisit.
        assert len(findings) == len({(f.line, f.col, f.message) for f in findings})


# -- RP003 sim-determinism --------------------------------------------------


class TestSimDeterminism:
    CH = SimDeterminismChecker

    def test_fires_on_global_numpy_rng(self):
        findings = lint_snippet(self.CH(), """
            import numpy as np
            def jitter(n):
                return np.random.rand(n)
            """, module="repro.engine.fixture")
        assert len(findings) == 1
        assert "process-global" in findings[0].message

    def test_fires_on_np_random_seed(self):
        findings = lint_snippet(self.CH(), """
            import numpy as np
            def setup():
                np.random.seed(0)
            """, module="repro.simcore.fixture")
        assert len(findings) == 1

    def test_silent_on_seeded_generator(self):
        findings = lint_snippet(self.CH(), """
            import numpy as np
            def jitter(n, seed):
                rng = np.random.default_rng(seed)
                return rng.random(n)
            """, module="repro.engine.fixture")
        assert findings == []

    def test_fires_on_stdlib_random(self):
        findings = lint_snippet(self.CH(), """
            import random
            def pick(items):
                return random.choice(items)
            """, module="repro.fleet.fixture")
        assert len(findings) == 1

    def test_fires_on_wall_clock(self):
        findings = lint_snippet(self.CH(), """
            import time
            def stamp(event):
                event.t = time.time()
            """, module="repro.simcore.fixture")
        assert len(findings) == 1
        assert "wall clock" in findings[0].message

    def test_fires_on_datetime_now(self):
        findings = lint_snippet(self.CH(), """
            from datetime import datetime
            def stamp():
                return datetime.now()
            """, module="repro.engine.fixture")
        assert len(findings) == 1

    def test_fires_on_set_iteration(self):
        findings = lint_snippet(self.CH(), """
            def drain(queue, a, b):
                for rid in set(a) | set(b):
                    queue.push(rid)
            """, module="repro.fleet.fixture")
        assert len(findings) == 1
        assert "sorted" in findings[0].message

    def test_fires_on_tracked_set_variable(self):
        findings = lint_snippet(self.CH(), """
            def drain(queue, items):
                pending = set(items)
                for rid in pending:
                    queue.push(rid)
            """, module="repro.engine.fixture")
        assert len(findings) == 1

    def test_silent_on_sorted_set(self):
        findings = lint_snippet(self.CH(), """
            def drain(queue, a, b):
                for rid in sorted(set(a) | set(b)):
                    queue.push(rid)
            """, module="repro.fleet.fixture")
        assert findings == []

    def test_scoped_to_simulation_packages(self):
        findings = lint_snippet(self.CH(), """
            import numpy as np
            def f():
                return np.random.rand()
            """, module="repro.kernels.fixture")
        assert findings == []


# -- RP004 api-hygiene ------------------------------------------------------


class TestApiHygiene:
    CH = ApiHygieneChecker

    def test_fires_on_mutable_default(self):
        findings = lint_snippet(self.CH(), """
            def record(x, acc=[]):
                acc.append(x)
                return acc
            """, module="repro.model.fixture")
        assert len(findings) == 1
        assert "mutable default" in findings[0].message

    def test_fires_on_kwonly_dict_default(self):
        findings = lint_snippet(self.CH(), """
            def record(x, *, table={}):
                table[x] = True
            """, module="repro.model.fixture")
        assert len(findings) == 1

    def test_silent_on_none_default(self):
        findings = lint_snippet(self.CH(), """
            def record(x, acc=None):
                acc = [] if acc is None else acc
                acc.append(x)
                return acc
            """, module="repro.model.fixture")
        assert findings == []

    def test_fires_on_phantom_all_export(self):
        findings = lint_snippet(self.CH(), """
            from .dense import DenseTransformer
            __all__ = ["DenseTransformer", "Ghost"]
            """, module="repro.model", path="__init__.py")
        assert len(findings) == 1
        assert "Ghost" in findings[0].message

    def test_fires_on_unlisted_public_reexport(self):
        findings = lint_snippet(self.CH(), """
            from .dense import DenseTransformer, LayerWeights
            __all__ = ["DenseTransformer"]
            """, module="repro.model", path="__init__.py")
        assert len(findings) == 1
        assert "LayerWeights" in findings[0].message

    def test_fires_on_duplicate_all_entry(self):
        findings = lint_snippet(self.CH(), """
            from .dense import DenseTransformer
            __all__ = ["DenseTransformer", "DenseTransformer"]
            """, module="repro.model", path="__init__.py")
        assert any("more than once" in f.message for f in findings)

    def test_silent_on_consistent_init(self):
        findings = lint_snippet(self.CH(), """
            from __future__ import annotations
            from .dense import DenseTransformer as _DT
            from .moe import MoELayer
            __all__ = ["MoELayer"]
            """, module="repro.model", path="__init__.py")
        assert findings == []

    def test_all_drift_skipped_outside_init(self):
        findings = lint_snippet(self.CH(), """
            __all__ = ["ghost"]
            """, module="repro.model.helpers", path="helpers.py")
        assert findings == []

    def test_all_drift_skipped_when_dynamic(self):
        findings = lint_snippet(self.CH(), """
            from .dense import DenseTransformer
            __all__ = ["DenseTransformer"]
            __all__ += ["whatever_the_plugin_adds"]
            """, module="repro.model", path="__init__.py")
        assert findings == []


# -- registry ---------------------------------------------------------------


class TestRegistry:
    def test_all_checkers_covers_rp001_to_rp004(self):
        codes = [c.code for c in all_checkers()]
        assert codes == ["RP001", "RP002", "RP003", "RP004"]

    def test_select_subsets_and_validates(self):
        assert [c.code for c in select_checkers("RP003,RP001")] == ["RP001", "RP003"]
        assert len(select_checkers(None)) == 4
        with pytest.raises(ValueError, match="RP999"):
            select_checkers("RP999")


# -- autoscale coverage (RP002 + RP003) -------------------------------------


class TestAutoscaleLintCoverage:
    """The control-loop vocabulary: `_depth`/`_replicas` are counts,
    `_util` is a ratio, and repro.autoscale sits inside both the unit
    and the determinism nets."""

    def test_depth_and_replicas_are_counts(self):
        clean = lint_snippet(UnitConsistencyChecker(), """
            def f(queue_depth, max_replicas):
                return queue_depth + max_replicas
            """, module="repro.autoscale.fixture")
        assert clean == []
        findings = lint_snippet(UnitConsistencyChecker(), """
            def f(queue_depth, epoch_s):
                return queue_depth + epoch_s
            """, module="repro.autoscale.fixture")
        assert len(findings) == 1
        assert "count" in findings[0].message
        assert "seconds" in findings[0].message

    def test_replicas_suffix_beats_the_s_suffix(self):
        # `min_replicas` must match `_replicas` (count), not `_s`
        # (seconds): comparing it against a count stays silent.
        findings = lint_snippet(UnitConsistencyChecker(), """
            def f(min_replicas, prefetch_hits):
                return min_replicas < prefetch_hits
            """, module="repro.autoscale.fixture")
        assert findings == []

    def test_util_is_a_ratio(self):
        clean = lint_snippet(UnitConsistencyChecker(), """
            def f(slot_util, hit_rate):
                return slot_util + hit_rate
            """, module="repro.autoscale.fixture")
        assert clean == []
        findings = lint_snippet(UnitConsistencyChecker(), """
            def f(slot_util, cold_start_s):
                return slot_util - cold_start_s
            """, module="repro.autoscale.fixture")
        assert len(findings) == 1
        assert "ratio" in findings[0].message

    def test_rp002_covers_autoscale_package(self):
        findings = lint_snippet(UnitConsistencyChecker(), """
            def f(ttft_p99_s, queue_depth):
                return ttft_p99_s + queue_depth
            """, module="repro.autoscale.fixture")
        assert len(findings) == 1
        assert findings[0].code == "RP002"

    def test_rp003_covers_autoscale_package(self):
        findings = lint_snippet(SimDeterminismChecker(), """
            import numpy as np
            def f():
                return np.random.rand()
            """, module="repro.autoscale.fixture")
        assert len(findings) == 1
        assert findings[0].code == "RP003"
