"""Per-checker fixture tests for repro.lint.

Each checker gets at least one seeded violation it must flag and the
corrected version of the same snippet it must stay silent on — the
acceptance contract of the lint subsystem.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.lint import all_checkers, load_source
from repro.lint.checkers import (
    ApiHygieneChecker,
    CollectiveSymmetryChecker,
    MemoKeyChecker,
    PairDriftChecker,
    ResourcePairChecker,
    SimDeterminismChecker,
    UnitConsistencyChecker,
    UnitFlowChecker,
    select_checkers,
)
from repro.lint.checkers.pair_drift import SeamPair
from repro.lint.project import ProjectInfo


def lint_snippet(checker, source, *, module, path="fixture.py"):
    mod = load_source(textwrap.dedent(source), module=module, path=path)
    if not checker.applies_to(mod):
        return []
    return list(checker.check(mod))


def lint_project(checker, sources):
    """Run a ProjectChecker over {module_name: source} fixtures.

    Returns ``(new, suppressed)`` findings, classified exactly the way
    ``run_lint`` classifies them — so suppression-comment behavior is
    part of what these fixtures exercise.
    """
    mods = [
        load_source(textwrap.dedent(src), module=name,
                    path=name.replace(".", "/") + ".py")
        for name, src in sources.items()
    ]
    info = ProjectInfo.build(mods)
    by_path = {m.display_path: m for m in mods}
    new, suppressed = [], []
    for f in checker.check_project(info):
        (suppressed if by_path[f.path].suppressed(f) else new).append(f)
    return new, suppressed


# -- RP001 collective-symmetry ----------------------------------------------


class TestCollectiveSymmetry:
    CH = CollectiveSymmetryChecker

    def test_fires_on_rank_conditional_collective(self):
        findings = lint_snippet(self.CH(), """
            def f(comm, x):
                if comm.rank == 0:
                    return comm.allreduce(x)
                return x
            """, module="repro.parallel.fixture")
        assert len(findings) == 1
        assert findings[0].code == "RP001"
        assert "allreduce" in findings[0].message
        assert "deadlock" in findings[0].message

    def test_silent_on_unconditional_collective(self):
        findings = lint_snippet(self.CH(), """
            def f(comm, x):
                y = comm.allreduce(x)
                if comm.rank == 0:
                    print(y.sum())
                return y
            """, module="repro.parallel.fixture")
        assert findings == []

    def test_fires_on_rank_bound_loop(self):
        findings = lint_snippet(self.CH(), """
            def f(comm):
                for _ in range(comm.rank):
                    comm.barrier()
            """, module="repro.parallel.fixture")
        assert len(findings) == 1
        assert "trip count" in findings[0].message

    def test_fires_on_rank_dependent_while(self):
        findings = lint_snippet(self.CH(), """
            def f(comm, x):
                step = 0
                while step < comm.rank:
                    x = comm.allgather(x)
                    step += 1
                return x
            """, module="repro.parallel.fixture")
        assert len(findings) == 1

    def test_silent_on_symmetric_branch(self):
        # The broadcast-root idiom: both sides issue the same collective.
        findings = lint_snippet(self.CH(), """
            def f(comm, x, root):
                if comm.rank == root:
                    out = comm.broadcast(x)
                else:
                    out = comm.broadcast(None)
                return out
            """, module="repro.parallel.fixture")
        assert findings == []

    def test_fires_on_asymmetric_else(self):
        findings = lint_snippet(self.CH(), """
            def f(comm, x):
                if comm.rank == 0:
                    out = comm.broadcast(x)
                else:
                    out = comm.broadcast(None)
                    comm.barrier()
                return out
            """, module="repro.parallel.fixture")
        assert [f.message for f in findings if "barrier" in f.message]

    def test_silent_on_point_to_point(self):
        # Rank-conditional send/recv is how pipeline stages talk.
        findings = lint_snippet(self.CH(), """
            def f(comm, x):
                if comm.rank == 0:
                    comm.send(x, dest=1)
                else:
                    x = comm.recv(source=0)
                return x
            """, module="repro.parallel.fixture")
        assert findings == []

    def test_silent_on_numpy_broadcast(self):
        findings = lint_snippet(self.CH(), """
            import numpy as np
            def f(comm, a, b):
                if comm.rank == 0:
                    return np.broadcast(a, b)
            """, module="repro.parallel.fixture")
        assert findings == []

    def test_scoped_to_spmd_packages(self):
        # The same violation outside repro.parallel / repro.model is not
        # this checker's business.
        findings = lint_snippet(self.CH(), """
            def f(comm, x):
                if comm.rank == 0:
                    return comm.allreduce(x)
            """, module="repro.bench.fixture")
        assert findings == []


# -- RP002 unit-consistency -------------------------------------------------


class TestUnitConsistency:
    CH = UnitConsistencyChecker

    def test_fires_on_bytes_plus_seconds(self):
        findings = lint_snippet(self.CH(), """
            def f(act_bytes, compute_time):
                return act_bytes + compute_time
            """, module="repro.kernels.fixture")
        assert len(findings) == 1
        assert findings[0].code == "RP002"
        assert "seconds" in findings[0].message
        assert "bytes" in findings[0].message

    def test_silent_on_converted_sum(self):
        # Division is how conversions are written: bytes / rate = time.
        findings = lint_snippet(self.CH(), """
            def f(act_bytes, hbm_bytes_per_s, compute_time):
                return act_bytes / hbm_bytes_per_s + compute_time
            """, module="repro.kernels.fixture")
        assert findings == []

    def test_fires_on_gb_vs_bytes_comparison(self):
        findings = lint_snippet(self.CH(), """
            def fits(weight_bytes, hbm_gb):
                return weight_bytes <= hbm_gb
            """, module="repro.hardware.fixture")
        assert len(findings) == 1
        assert "conversion is missing" in findings[0].message

    def test_fires_on_augmented_accumulation(self):
        findings = lint_snippet(self.CH(), """
            def f(total_time, layer_flops):
                total_time += layer_flops
                return total_time
            """, module="repro.engine.fixture")
        assert len(findings) == 1
        assert "accumulates" in findings[0].message

    def test_fires_on_misnamed_return(self):
        findings = lint_snippet(self.CH(), """
            def region_bytes(compute_time):
                return compute_time
            """, module="repro.kernels.fixture")
        assert len(findings) == 1
        assert "returns" in findings[0].message

    def test_silent_on_same_unit_arithmetic(self):
        findings = lint_snippet(self.CH(), """
            def f(p_time, gen_time, w_bytes, act_bytes, gen_tokens):
                total_time = p_time + gen_time
                total_bytes = w_bytes + act_bytes
                ok = total_time > p_time and gen_tokens > 1
                return total_time, total_bytes, ok
            """, module="repro.engine.fixture")
        assert findings == []

    def test_inline_annotation_binds_unit(self):
        findings = lint_snippet(self.CH(), """
            # repro-lint: unit(budget)=seconds
            def f(budget, act_bytes):
                return budget + act_bytes
            """, module="repro.engine.fixture")
        assert len(findings) == 1

    def test_registry_name_has_unit(self):
        # "makespan" is in DEFAULT_UNIT_REGISTRY as seconds.
        findings = lint_snippet(self.CH(), """
            def f(makespan, total_tokens):
                return makespan - total_tokens
            """, module="repro.engine.fixture")
        assert len(findings) == 1

    def test_rate_units_distinguish_numerators(self):
        findings = lint_snippet(self.CH(), """
            def f(tokens_per_s, hbm_bytes_per_s):
                return tokens_per_s + hbm_bytes_per_s
            """, module="repro.engine.fixture")
        assert len(findings) == 1

    def test_prefetch_accounting_suffixes_are_counts(self):
        # `_misses` must not fall through to the `_ms` / `_s` time
        # suffixes; hits and misses add cleanly, and mixing either with
        # seconds fires.
        clean = lint_snippet(self.CH(), """
            def f(prefetch_hits, prefetch_misses):
                return prefetch_hits + prefetch_misses
            """, module="repro.moe_placement.fixture")
        assert clean == []
        findings = lint_snippet(self.CH(), """
            def f(prefetch_misses, stall_s):
                return prefetch_misses + stall_s
            """, module="repro.moe_placement.fixture")
        assert len(findings) == 1
        assert "count" in findings[0].message
        assert "seconds" in findings[0].message

    def test_hit_rate_is_a_ratio(self):
        clean = lint_snippet(self.CH(), """
            def f(cache_hit_rate, hit_rate):
                return cache_hit_rate + hit_rate
            """, module="repro.moe_placement.fixture")
        assert clean == []
        findings = lint_snippet(self.CH(), """
            def f(cache_hit_rate, fetch_time):
                return cache_hit_rate + fetch_time
            """, module="repro.moe_placement.fixture")
        assert len(findings) == 1
        assert "ratio" in findings[0].message

    def test_covers_moe_placement_package(self):
        findings = lint_snippet(self.CH(), """
            def f(act_bytes, stall_s):
                return act_bytes + stall_s
            """, module="repro.moe_placement.fixture")
        assert len(findings) == 1

    def test_no_duplicate_findings_for_nested_expression(self):
        findings = lint_snippet(self.CH(), """
            def f(a_bytes, b_time, c_bytes):
                return a_bytes + b_time + c_bytes
            """, module="repro.engine.fixture")
        # One conflict per mismatched addition, not one per AST revisit.
        assert len(findings) == len({(f.line, f.col, f.message) for f in findings})


# -- RP003 sim-determinism --------------------------------------------------


class TestSimDeterminism:
    CH = SimDeterminismChecker

    def test_fires_on_global_numpy_rng(self):
        findings = lint_snippet(self.CH(), """
            import numpy as np
            def jitter(n):
                return np.random.rand(n)
            """, module="repro.engine.fixture")
        assert len(findings) == 1
        assert "process-global" in findings[0].message

    def test_fires_on_np_random_seed(self):
        findings = lint_snippet(self.CH(), """
            import numpy as np
            def setup():
                np.random.seed(0)
            """, module="repro.simcore.fixture")
        assert len(findings) == 1

    def test_silent_on_seeded_generator(self):
        findings = lint_snippet(self.CH(), """
            import numpy as np
            def jitter(n, seed):
                rng = np.random.default_rng(seed)
                return rng.random(n)
            """, module="repro.engine.fixture")
        assert findings == []

    def test_fires_on_stdlib_random(self):
        findings = lint_snippet(self.CH(), """
            import random
            def pick(items):
                return random.choice(items)
            """, module="repro.fleet.fixture")
        assert len(findings) == 1

    def test_fires_on_wall_clock(self):
        findings = lint_snippet(self.CH(), """
            import time
            def stamp(event):
                event.t = time.time()
            """, module="repro.simcore.fixture")
        assert len(findings) == 1
        assert "wall clock" in findings[0].message

    def test_fires_on_datetime_now(self):
        findings = lint_snippet(self.CH(), """
            from datetime import datetime
            def stamp():
                return datetime.now()
            """, module="repro.engine.fixture")
        assert len(findings) == 1

    def test_fires_on_set_iteration(self):
        findings = lint_snippet(self.CH(), """
            def drain(queue, a, b):
                for rid in set(a) | set(b):
                    queue.push(rid)
            """, module="repro.fleet.fixture")
        assert len(findings) == 1
        assert "sorted" in findings[0].message

    def test_fires_on_tracked_set_variable(self):
        findings = lint_snippet(self.CH(), """
            def drain(queue, items):
                pending = set(items)
                for rid in pending:
                    queue.push(rid)
            """, module="repro.engine.fixture")
        assert len(findings) == 1

    def test_silent_on_sorted_set(self):
        findings = lint_snippet(self.CH(), """
            def drain(queue, a, b):
                for rid in sorted(set(a) | set(b)):
                    queue.push(rid)
            """, module="repro.fleet.fixture")
        assert findings == []

    def test_scoped_to_simulation_packages(self):
        findings = lint_snippet(self.CH(), """
            import numpy as np
            def f():
                return np.random.rand()
            """, module="repro.kernels.fixture")
        assert findings == []


# -- RP004 api-hygiene ------------------------------------------------------


class TestApiHygiene:
    CH = ApiHygieneChecker

    def test_fires_on_mutable_default(self):
        findings = lint_snippet(self.CH(), """
            def record(x, acc=[]):
                acc.append(x)
                return acc
            """, module="repro.model.fixture")
        assert len(findings) == 1
        assert "mutable default" in findings[0].message

    def test_fires_on_kwonly_dict_default(self):
        findings = lint_snippet(self.CH(), """
            def record(x, *, table={}):
                table[x] = True
            """, module="repro.model.fixture")
        assert len(findings) == 1

    def test_silent_on_none_default(self):
        findings = lint_snippet(self.CH(), """
            def record(x, acc=None):
                acc = [] if acc is None else acc
                acc.append(x)
                return acc
            """, module="repro.model.fixture")
        assert findings == []

    def test_fires_on_phantom_all_export(self):
        findings = lint_snippet(self.CH(), """
            from .dense import DenseTransformer
            __all__ = ["DenseTransformer", "Ghost"]
            """, module="repro.model", path="__init__.py")
        assert len(findings) == 1
        assert "Ghost" in findings[0].message

    def test_fires_on_unlisted_public_reexport(self):
        findings = lint_snippet(self.CH(), """
            from .dense import DenseTransformer, LayerWeights
            __all__ = ["DenseTransformer"]
            """, module="repro.model", path="__init__.py")
        assert len(findings) == 1
        assert "LayerWeights" in findings[0].message

    def test_fires_on_duplicate_all_entry(self):
        findings = lint_snippet(self.CH(), """
            from .dense import DenseTransformer
            __all__ = ["DenseTransformer", "DenseTransformer"]
            """, module="repro.model", path="__init__.py")
        assert any("more than once" in f.message for f in findings)

    def test_silent_on_consistent_init(self):
        findings = lint_snippet(self.CH(), """
            from __future__ import annotations
            from .dense import DenseTransformer as _DT
            from .moe import MoELayer
            __all__ = ["MoELayer"]
            """, module="repro.model", path="__init__.py")
        assert findings == []

    def test_all_drift_skipped_outside_init(self):
        findings = lint_snippet(self.CH(), """
            __all__ = ["ghost"]
            """, module="repro.model.helpers", path="helpers.py")
        assert findings == []

    def test_all_drift_skipped_when_dynamic(self):
        findings = lint_snippet(self.CH(), """
            from .dense import DenseTransformer
            __all__ = ["DenseTransformer"]
            __all__ += ["whatever_the_plugin_adds"]
            """, module="repro.model", path="__init__.py")
        assert findings == []


# -- registry ---------------------------------------------------------------


class TestRegistry:
    def test_all_checkers_covers_rp001_to_rp008(self):
        codes = [c.code for c in all_checkers()]
        assert codes == ["RP001", "RP002", "RP003", "RP004",
                         "RP005", "RP006", "RP007", "RP008"]

    def test_select_subsets_and_validates(self):
        assert [c.code for c in select_checkers("RP003,RP001")] == ["RP001", "RP003"]
        assert len(select_checkers(None)) == 8
        with pytest.raises(ValueError, match="RP999"):
            select_checkers("RP999")


# -- autoscale coverage (RP002 + RP003) -------------------------------------


class TestAutoscaleLintCoverage:
    """The control-loop vocabulary: `_depth`/`_replicas` are counts,
    `_util` is a ratio, and repro.autoscale sits inside both the unit
    and the determinism nets."""

    def test_depth_and_replicas_are_counts(self):
        clean = lint_snippet(UnitConsistencyChecker(), """
            def f(queue_depth, max_replicas):
                return queue_depth + max_replicas
            """, module="repro.autoscale.fixture")
        assert clean == []
        findings = lint_snippet(UnitConsistencyChecker(), """
            def f(queue_depth, epoch_s):
                return queue_depth + epoch_s
            """, module="repro.autoscale.fixture")
        assert len(findings) == 1
        assert "count" in findings[0].message
        assert "seconds" in findings[0].message

    def test_replicas_suffix_beats_the_s_suffix(self):
        # `min_replicas` must match `_replicas` (count), not `_s`
        # (seconds): comparing it against a count stays silent.
        findings = lint_snippet(UnitConsistencyChecker(), """
            def f(min_replicas, prefetch_hits):
                return min_replicas < prefetch_hits
            """, module="repro.autoscale.fixture")
        assert findings == []

    def test_util_is_a_ratio(self):
        clean = lint_snippet(UnitConsistencyChecker(), """
            def f(slot_util, hit_rate):
                return slot_util + hit_rate
            """, module="repro.autoscale.fixture")
        assert clean == []
        findings = lint_snippet(UnitConsistencyChecker(), """
            def f(slot_util, cold_start_s):
                return slot_util - cold_start_s
            """, module="repro.autoscale.fixture")
        assert len(findings) == 1
        assert "ratio" in findings[0].message

    def test_rp002_covers_autoscale_package(self):
        findings = lint_snippet(UnitConsistencyChecker(), """
            def f(ttft_p99_s, queue_depth):
                return ttft_p99_s + queue_depth
            """, module="repro.autoscale.fixture")
        assert len(findings) == 1
        assert findings[0].code == "RP002"

    def test_rp003_covers_autoscale_package(self):
        findings = lint_snippet(SimDeterminismChecker(), """
            import numpy as np
            def f():
                return np.random.rand()
            """, module="repro.autoscale.fixture")
        assert len(findings) == 1
        assert findings[0].code == "RP003"


# -- RP005 memo-key-completeness --------------------------------------------


class TestMemoKeyCompleteness:
    """The `spl` bug class: a per-instance memo keyed on a subset of
    what the cached computation actually reads."""

    BUGGY = """
        class DenseStepCost:
            def __init__(self, model):
                self.model = model
                self._memo = {}

            def prompt_cost(self, request, kv_len):
                spl = getattr(request, "shared_prefix_len", 0)
                key = ("prompt", request.prompt_len, kv_len)
                got = self._memo.get(key)
                if got is None:
                    got = self._memo[key] = (
                        self.model.flops * request.prompt_len - spl)
                return got
        """

    def test_fires_when_key_omits_a_read_input(self):
        new, _ = lint_project(MemoKeyChecker(),
                              {"repro.engine.fixture": self.BUGGY})
        assert len(new) == 1
        f = new[0]
        assert f.code == "RP005"
        assert "request.shared_prefix_len" in f.message
        assert "self._memo" in f.message

    def test_silent_when_key_covers_every_input(self):
        new, _ = lint_project(MemoKeyChecker(), {"repro.engine.fixture": """
            class DenseStepCost:
                def __init__(self, model):
                    self.model = model
                    self._memo = {}

                def prompt_cost(self, request, kv_len):
                    spl = getattr(request, "shared_prefix_len", 0)
                    key = ("prompt", request.prompt_len, spl, kv_len)
                    got = self._memo.get(key)
                    if got is None:
                        got = self._memo[key] = (
                            self.model.flops * request.prompt_len - spl)
                    return got
            """})
        assert new == []

    def test_whole_param_in_key_covers_its_attributes(self):
        new, _ = lint_project(MemoKeyChecker(), {"repro.engine.fixture": """
            class Cost:
                def __init__(self):
                    self._memo = {}

                def price(self, request):
                    got = self._memo.get(request)
                    if got is None:
                        got = self._memo[request] = (
                            request.prompt_len + request.shared_prefix_len)
                    return got
            """})
        assert new == []

    def test_init_only_self_attr_is_exempt_but_mutated_is_not(self):
        src = """
            class Cost:
                def __init__(self, model):
                    self.model = model
                    self.scale = 1.0
                    self._memo = {}

                def recalibrate(self, scale):
                    self.scale = scale

                def price(self, tokens):
                    got = self._memo.get(tokens)
                    if got is None:
                        got = self._memo[tokens] = (
                            self.model.flops * tokens * self.scale)
                    return got
            """
        new, _ = lint_project(MemoKeyChecker(), {"repro.engine.fixture": src})
        assert len(new) == 1
        assert "self.scale" in new[0].message
        assert "self.model" not in new[0].message  # init-only constant

    def test_sibling_method_reads_count_one_level_deep(self):
        new, _ = lint_project(MemoKeyChecker(), {"repro.engine.fixture": """
            class Cost:
                def __init__(self, model):
                    self.model = model
                    self.batch_bias = 0.0
                    self._memo = {}

                def rebias(self, b):
                    self.batch_bias = b

                def _raw(self, tokens):
                    return self.model.flops * tokens + self.batch_bias

                def price(self, tokens):
                    got = self._memo.get(tokens)
                    if got is None:
                        got = self._memo[tokens] = self._raw(tokens)
                    return got
            """})
        assert len(new) == 1
        assert "self.batch_bias" in new[0].message

    def test_suppression_comment_silences_the_store(self):
        src = self.BUGGY.replace(
            "got = self._memo[key] = (",
            "got = self._memo[key] = (  # repro-lint: disable=RP005")
        new, suppressed = lint_project(MemoKeyChecker(),
                                       {"repro.engine.fixture": src})
        assert new == []
        assert len(suppressed) == 1


# -- RP006 resource-pair-discipline -----------------------------------------


class TestResourcePairDiscipline:
    def test_fires_on_branch_that_drops_the_block(self):
        new, _ = lint_project(ResourcePairChecker(), {"repro.model.fixture": """
            class Cache:
                def grow(self, want):
                    blk = self.allocator.alloc()
                    if want > 0:
                        self.blocks.append(blk)
                    return want
            """})
        assert len(new) == 1
        f = new[0]
        assert f.code == "RP006"
        assert "`blk`" in f.message and "leak" in f.message
        assert f.line == 4  # reported at the acquire site

    def test_fires_on_double_release(self):
        new, _ = lint_project(ResourcePairChecker(), {"repro.model.fixture": """
            class Cache:
                def retire(self, keep):
                    blk = self.allocator.alloc()
                    if not keep:
                        blk.free()
                    blk.free()
            """})
        assert len(new) == 1
        assert "already be released" in new[0].message

    def test_fires_on_discarded_alloc_result(self):
        new, _ = lint_project(ResourcePairChecker(), {"repro.model.fixture": """
            class Cache:
                def touch(self):
                    self.allocator.alloc()
            """})
        assert len(new) == 1
        assert "discarded" in new[0].message

    def test_silent_when_every_path_frees_or_escapes(self):
        new, _ = lint_project(ResourcePairChecker(), {"repro.model.fixture": """
            class Cache:
                def grow(self, want):
                    blk = self.allocator.alloc()
                    if want > 0:
                        self.blocks.append(blk)
                    else:
                        self.allocator.free(blk)
                    return want

                def fork(self, n):
                    child = self.cache.fork(n)
                    return child
            """})
        assert new == []

    def test_bare_share_statement_is_the_legal_fork_idiom(self):
        new, _ = lint_project(ResourcePairChecker(), {"repro.model.fixture": """
            class Cache:
                def fork_refs(self):
                    for blk in self.blocks:
                        self.allocator.share(blk)
            """})
        assert new == []

    def test_helper_release_followed_one_call_deep(self):
        buggy = """
            def _drop(alloc, blk):
                alloc.free(blk)

            class Cache:
                def retire(self, really):
                    blk = self.allocator.alloc()
                    if really:
                        _drop(self.allocator, blk)
            """
        new, _ = lint_project(ResourcePairChecker(),
                              {"repro.model.fixture": buggy})
        assert len(new) == 1  # the else path still leaks...
        # ...but an unconditional helper release is recognized as clean
        new, _ = lint_project(ResourcePairChecker(), {"repro.model.fixture": """
            def _drop(alloc, blk):
                alloc.free(blk)

            class Cache:
                def retire(self):
                    blk = self.allocator.alloc()
                    _drop(self.allocator, blk)
            """})
        assert new == []

    def test_suppression_comment_on_acquire_site(self):
        new, suppressed = lint_project(ResourcePairChecker(),
                                       {"repro.model.fixture": """
            class Cache:
                def grow(self, want):
                    blk = self.allocator.alloc()  # repro-lint: disable=RP006
                    if want > 0:
                        self.blocks.append(blk)
                    return want
            """})
        assert new == []
        assert len(suppressed) == 1


# -- RP007 unit-flow ---------------------------------------------------------


class TestUnitFlow:
    CALLEE = """
        def step_time_s(compute_s, comm_s=0.0):
            return compute_s + comm_s
        """

    def test_fires_on_bytes_argument_into_seconds_parameter(self):
        new, _ = lint_project(UnitFlowChecker(), {
            "repro.hardware.fixture": self.CALLEE,
            "repro.engine.fixture": """
                from repro.hardware.fixture import step_time_s

                def drive(weight_bytes):
                    return step_time_s(weight_bytes)
                """,
        })
        assert len(new) == 1
        f = new[0]
        assert f.code == "RP007"
        assert "compute_s" in f.message and "bytes" in f.message
        assert f.path == "repro/engine/fixture.py"

    def test_fires_on_keyword_argument_too(self):
        new, _ = lint_project(UnitFlowChecker(), {
            "repro.hardware.fixture": self.CALLEE,
            "repro.engine.fixture": """
                from repro.hardware.fixture import step_time_s

                def drive(xfer_bytes):
                    return step_time_s(0.0, comm_s=xfer_bytes)
                """,
        })
        assert len(new) == 1
        assert "comm_s" in new[0].message

    def test_fires_on_return_unit_into_mismatched_target(self):
        new, _ = lint_project(UnitFlowChecker(), {
            "repro.hardware.fixture": self.CALLEE,
            "repro.engine.fixture": """
                from repro.hardware.fixture import step_time_s

                def drive(c):
                    total_bytes = step_time_s(c)
                    return total_bytes
                """,
        })
        assert len(new) == 1
        assert "returns" in new[0].message

    def test_silent_on_compatible_flow(self):
        new, _ = lint_project(UnitFlowChecker(), {
            "repro.hardware.fixture": self.CALLEE,
            "repro.engine.fixture": """
                from repro.hardware.fixture import step_time_s

                def drive(compute_s, xfer_s):
                    total_s = step_time_s(compute_s, comm_s=xfer_s)
                    return total_s
                """,
        })
        assert new == []

    def test_unit_note_rebinds_a_name_on_the_caller_side(self):
        new, _ = lint_project(UnitFlowChecker(), {
            "repro.hardware.fixture": self.CALLEE,
            "repro.engine.fixture": """
                # repro-lint: unit(elapsed)=seconds

                from repro.hardware.fixture import step_time_s

                def drive(elapsed):
                    return step_time_s(elapsed)
                """,
        })
        assert new == []

    def test_suppression_comment_at_the_call_site(self):
        new, suppressed = lint_project(UnitFlowChecker(), {
            "repro.hardware.fixture": self.CALLEE,
            "repro.engine.fixture": """
                from repro.hardware.fixture import step_time_s

                def drive(weight_bytes):
                    return step_time_s(weight_bytes)  # repro-lint: disable=RP007
                """,
        })
        assert new == []
        assert len(suppressed) == 1


# -- RP008 backend-pair-drift ------------------------------------------------


class TestPairDrift:
    PAIR = SeamPair(
        left="repro.engine.fast_fixture:simulate",
        right="repro.engine.slow_fixture:simulate_reference",
        allow_extra=frozenset({"detail"}),
    )

    def _run(self, left_src, right_src, pair=None):
        return lint_project(
            PairDriftChecker(pairs=(pair or self.PAIR,)),
            {"repro.engine.fast_fixture": left_src,
             "repro.engine.slow_fixture": right_src})

    def test_fires_on_drifted_default(self):
        new, _ = self._run(
            "def simulate(trace, max_batch=8):\n    return trace\n",
            "def simulate_reference(trace, max_batch=16):\n    return trace\n")
        assert len(new) == 1
        f = new[0]
        assert f.code == "RP008"
        assert "max_batch" in f.message and "`8` vs `16`" in f.message

    def test_fires_on_kind_drift(self):
        new, _ = self._run(
            "def simulate(trace, *, policy='fcfs'):\n    return trace\n",
            "def simulate_reference(trace, policy='fcfs'):\n    return trace\n")
        assert len(new) == 1
        assert "kwonly vs pos" in new[0].message

    def test_fires_on_unshared_parameter_not_in_allow_extra(self):
        new, _ = self._run(
            "def simulate(trace, detail='auto', window=4):\n    return trace\n",
            "def simulate_reference(trace):\n    return trace\n")
        assert len(new) == 1
        assert "window" in new[0].message and "detail" not in new[0].message

    def test_fires_on_missing_endpoint(self):
        new, _ = self._run(
            "def simulate(trace):\n    return trace\n",
            "def renamed(trace):\n    return trace\n")
        assert len(new) == 1
        assert "is gone" in new[0].message

    def test_shared_only_ignores_surface_differences(self):
        pair = SeamPair(left=self.PAIR.left, right=self.PAIR.right,
                        shared_only=True)
        new, _ = self._run(
            "def simulate(trace, max_batch=8, extra=1):\n    return trace\n",
            "def simulate_reference(trace, max_batch=8):\n    return trace\n",
            pair=pair)
        assert new == []

    def test_silent_when_pair_modules_absent_from_run(self):
        new, _ = lint_project(
            PairDriftChecker(pairs=(self.PAIR,)),
            {"repro.engine.unrelated": "def f():\n    return 0\n"})
        assert new == []

    def test_real_registry_is_clean_or_baselined_against_tree(self):
        # the shipped PAIRED_SEAMS registry is validated end-to-end by
        # tests/test_lint_cli.py::TestWalkerAndTree::test_merged_tree_is_clean
        checker = PairDriftChecker()
        assert {p.left.partition(":")[2] for p in checker.pairs} >= {
            "simulate_serving", "simulate_fleet"}
