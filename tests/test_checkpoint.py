"""Tests for sharded on-disk checkpoints."""

import numpy as np
import pytest

from repro.model import (
    DenseTransformer,
    ModelConfig,
    load_checkpoint,
    save_checkpoint,
)
from repro.model.checkpoint import checkpoint_layer_file

CFG = ModelConfig(name="ckpt-test", hidden=32, layers=3, heads=4, vocab=47,
                  max_seq=24)


class TestCheckpointRoundtrip:
    def test_logits_identical_after_roundtrip(self, tmp_path):
        model = DenseTransformer(CFG, seed=7)
        save_checkpoint(model, tmp_path / "ckpt")
        loaded = load_checkpoint(tmp_path / "ckpt")
        ids = np.array([[1, 2, 3, 4]])
        np.testing.assert_array_equal(loaded.forward(ids), model.forward(ids))

    def test_config_restored(self, tmp_path):
        model = DenseTransformer(CFG, seed=1)
        save_checkpoint(model, tmp_path / "c")
        loaded = load_checkpoint(tmp_path / "c")
        assert loaded.config.hidden == CFG.hidden
        assert loaded.config.layers == CFG.layers
        assert loaded.config.name == CFG.name

    def test_one_file_per_layer(self, tmp_path):
        model = DenseTransformer(CFG, seed=2)
        d = save_checkpoint(model, tmp_path / "c")
        for i in range(CFG.layers):
            assert checkpoint_layer_file(d, i).exists()
        assert (d / "embeddings.npz").exists()
        assert (d / "manifest.json").exists()

    def test_float32_dtype_preserved(self, tmp_path):
        model = DenseTransformer(CFG, seed=3, dtype=np.float32)
        save_checkpoint(model, tmp_path / "c")
        loaded = load_checkpoint(tmp_path / "c")
        assert loaded.layers[0].w_qkv.dtype == np.float32

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="manifest"):
            load_checkpoint(tmp_path)

    def test_missing_layer_shard_detected(self, tmp_path):
        model = DenseTransformer(CFG, seed=4)
        d = save_checkpoint(model, tmp_path / "c")
        checkpoint_layer_file(d, 1).unlink()
        with pytest.raises(FileNotFoundError, match="layer_0001"):
            load_checkpoint(d)

    def test_bad_format_rejected(self, tmp_path):
        model = DenseTransformer(CFG, seed=5)
        d = save_checkpoint(model, tmp_path / "c")
        manifest = d / "manifest.json"
        manifest.write_text(manifest.read_text().replace(
            "repro-sharded-v1", "mystery-v9"))
        with pytest.raises(ValueError, match="unknown checkpoint format"):
            load_checkpoint(d)

    def test_generation_identical(self, tmp_path):
        model = DenseTransformer(CFG, seed=6)
        save_checkpoint(model, tmp_path / "c")
        loaded = load_checkpoint(tmp_path / "c")
        prompt = np.array([[5, 6]])
        np.testing.assert_array_equal(
            loaded.generate(prompt, 4), model.generate(prompt, 4)
        )
