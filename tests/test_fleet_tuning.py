"""Tests for fleet-level deployment tuning (replicas x TP x batch)."""

import pytest

from repro.engine import synthesize_trace
from repro.fleet import FaultPlan, ReplicaFault, tune_fleet_deployment
from repro.hardware import dgx_a100_cluster
from repro.model import DENSE_ZOO

CFG = DENSE_ZOO["gpt-13b"]
CLUSTER = dgx_a100_cluster(1)


def _trace(n=12, rate=4.0, seed=0):
    return synthesize_trace(num_requests=n, arrival_rate=rate,
                            mean_prompt=64, mean_gen=16, seed=seed)


def test_meets_sla_within_budget():
    trace = _trace()
    best = tune_fleet_deployment(CFG, CLUSTER, trace, gpu_budget=4,
                                 ttft_sla=1.0)
    assert best.num_gpus == best.replicas * best.tp <= 4
    assert best.ttft_p99 <= 1.0
    assert best.tokens_per_second > 0
    assert best.tokens_per_second_per_gpu == pytest.approx(
        best.tokens_per_second / best.num_gpus)


def test_budget_caps_the_search():
    trace = _trace()
    small = tune_fleet_deployment(CFG, CLUSTER, trace, gpu_budget=1)
    assert small.replicas == 1 and small.tp == 1 and small.num_gpus == 1
    big = tune_fleet_deployment(CFG, CLUSTER, trace, gpu_budget=4)
    assert big.tokens_per_second >= small.tokens_per_second


def test_infeasible_sla_raises():
    trace = _trace()
    with pytest.raises(ValueError, match="no fleet deployment"):
        tune_fleet_deployment(CFG, CLUSTER, trace, gpu_budget=2,
                              ttft_sla=1e-6)
    with pytest.raises(ValueError, match="gpu_budget"):
        tune_fleet_deployment(CFG, CLUSTER, trace, gpu_budget=0)


def test_fault_plan_constrains_fleet_shapes():
    """Tuning under a crash plan only considers fleets the plan leaves a
    survivor in — and the winner still completes the whole trace."""
    trace = _trace(rate=8.0)
    plan = FaultPlan((ReplicaFault(1, trace.requests[4].arrival),))
    best = tune_fleet_deployment(CFG, CLUSTER, trace, gpu_budget=4,
                                 fault_plan=plan)
    # The crash names replica 1, so a single-replica fleet is excluded.
    assert best.replicas >= 2
    assert best.routing == "least_outstanding"
