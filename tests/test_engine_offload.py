"""Tests for activation offloading: capacity math and PCIe scheduling."""

import pytest

from repro.engine import max_batch_size, simulate_offload
from repro.hardware import dgx_a100_cluster
from repro.model import DENSE_ZOO

CLUSTER = dgx_a100_cluster(8)


class TestMaxBatch:
    def test_offload_enables_larger_batches(self):
        cfg = DENSE_ZOO["lm-175b"]
        plain = max_batch_size(cfg, CLUSTER, tp=8, pp=2, seq_len=562)
        offl = max_batch_size(cfg, CLUSTER, tp=8, pp=2, seq_len=562,
                              offload_activations=True)
        assert offl > plain >= 1

    def test_dram_eventually_binds(self):
        cfg = DENSE_ZOO["lm-175b"]
        offl = max_batch_size(cfg, CLUSTER, tp=8, pp=2, seq_len=562,
                              offload_activations=True)
        # bounded by host DRAM, not infinite
        assert offl < 100_000

    def test_zero_when_weights_dont_fit(self):
        cfg = DENSE_ZOO["lm-530b"]
        assert max_batch_size(cfg, CLUSTER, tp=1, pp=1, seq_len=128) == 0

    def test_longer_sequences_smaller_batches(self):
        cfg = DENSE_ZOO["gpt-neox-20b"]
        short = max_batch_size(cfg, CLUSTER, tp=8, pp=1, seq_len=128)
        long = max_batch_size(cfg, CLUSTER, tp=8, pp=1, seq_len=2048)
        assert short > long

    def test_validation(self):
        cfg = DENSE_ZOO["gpt-13b"]
        with pytest.raises(ValueError):
            max_batch_size(cfg, CLUSTER, tp=0, pp=1, seq_len=1)


class TestPCIeScheduling:
    """The odd/even offload schedule of Sec. IV-C3."""

    def test_odd_even_removes_contention(self):
        naive = simulate_offload(CLUSTER, num_layers=48, bytes_per_layer=50e6,
                                 layer_compute_time=1e-3, scheme="naive")
        odd = simulate_offload(CLUSTER, num_layers=48, bytes_per_layer=50e6,
                               layer_compute_time=1e-3, scheme="odd_even")
        assert odd.makespan < naive.makespan
        assert odd.stall_time < naive.stall_time

    def test_odd_even_near_zero_stall_when_compute_covers(self):
        # Per-layer transfer (2 ms) fits within compute (3 ms) when the
        # link is uncontended; odd/even keeps it uncontended.
        rep = simulate_offload(CLUSTER, num_layers=24, bytes_per_layer=50e6,
                               layer_compute_time=3e-3, scheme="odd_even")
        assert rep.stall_time < rep.compute_time * 0.05

    def test_naive_moves_twice_the_bytes(self):
        naive = simulate_offload(CLUSTER, num_layers=10, bytes_per_layer=10e6,
                                 layer_compute_time=1e-3, scheme="naive")
        odd = simulate_offload(CLUSTER, num_layers=10, bytes_per_layer=10e6,
                               layer_compute_time=1e-3, scheme="odd_even")
        # naive offloads the replicated activations from both GPUs.
        assert naive.link_busy == pytest.approx(2 * odd.link_busy, rel=0.01)

    def test_bad_scheme(self):
        with pytest.raises(ValueError):
            simulate_offload(CLUSTER, num_layers=2, bytes_per_layer=1.0,
                             layer_compute_time=1.0, scheme="sideways")

    def test_bad_workload(self):
        with pytest.raises(ValueError):
            simulate_offload(CLUSTER, num_layers=0, bytes_per_layer=1.0,
                             layer_compute_time=1.0)
