"""Tests for the serving-level simulator (arrivals, queueing, percentiles)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import (
    DenseLatencyModel,
    Request,
    ServingReport,
    WorkloadTrace,
    serving_step_times,
    simulate_serving,
    synthesize_trace,
)
from repro.hardware import dgx_a100_cluster
from repro.model import DENSE_ZOO


def unit_costs(prompt_cost=1.0, step_cost=0.1):
    return (lambda batch, plen: prompt_cost, lambda batch: step_cost)


class TestTraceSynthesis:
    def test_reproducible(self):
        a = synthesize_trace(num_requests=20, arrival_rate=2.0, seed=7)
        b = synthesize_trace(num_requests=20, arrival_rate=2.0, seed=7)
        assert a == b

    def test_rate_controls_density(self):
        slow = synthesize_trace(num_requests=200, arrival_rate=1.0, seed=1)
        fast = synthesize_trace(num_requests=200, arrival_rate=10.0, seed=1)
        assert fast.duration < slow.duration

    def test_sorted_arrivals_and_positive_lengths(self):
        t = synthesize_trace(num_requests=50, arrival_rate=5.0, seed=3)
        arrivals = [r.arrival for r in t.requests]
        assert arrivals == sorted(arrivals)
        assert all(r.prompt_len >= 1 and r.gen_tokens >= 1 for r in t.requests)

    def test_validation(self):
        with pytest.raises(ValueError):
            synthesize_trace(num_requests=0, arrival_rate=1.0)
        with pytest.raises(ValueError):
            synthesize_trace(num_requests=1, arrival_rate=0.0)
        with pytest.raises(ValueError):
            Request(0, -1.0, 4, 4)
        with pytest.raises(ValueError):
            WorkloadTrace(())
        with pytest.raises(ValueError):
            WorkloadTrace((Request(0, 5.0, 1, 1), Request(1, 1.0, 1, 1)))
        with pytest.raises(ValueError, match="unique"):
            WorkloadTrace((Request(3, 0.0, 1, 1), Request(3, 1.0, 1, 1)))

    def test_session_tags(self):
        t = synthesize_trace(num_requests=30, arrival_rate=5.0,
                             num_sessions=3, seed=2)
        assert {r.session for r in t.requests} <= {0, 1, 2}
        plain = synthesize_trace(num_requests=5, arrival_rate=5.0, seed=2)
        assert all(r.session is None for r in plain.requests)
        with pytest.raises(ValueError, match="num_sessions"):
            synthesize_trace(num_requests=5, arrival_rate=5.0,
                             num_sessions=0)


class TestServingSimulator:
    def test_single_request_latency(self):
        trace = WorkloadTrace((Request(0, 0.0, 16, 4),))
        prompt_t, step_t = unit_costs(prompt_cost=2.0, step_cost=0.5)
        rep = simulate_serving(trace, prompt_time=prompt_t, step_time=step_t,
                               max_batch=4)
        # prompt (2.0, yields token 1) + 3 decode steps (1.5)
        assert rep.latency(trace.requests[0]) == pytest.approx(3.5)
        assert rep.first_token_times[0] == pytest.approx(2.0)
        assert rep.total_tokens == 4

    def test_idle_server_waits_for_arrival(self):
        trace = WorkloadTrace((Request(0, 10.0, 8, 2),))
        prompt_t, step_t = unit_costs()
        rep = simulate_serving(trace, prompt_time=prompt_t, step_time=step_t,
                               max_batch=1)
        assert rep.finish_times[0] == pytest.approx(10.0 + 1.0 + 0.1)

    def test_queueing_delay_under_capacity_1(self):
        trace = WorkloadTrace((Request(0, 0.0, 8, 5), Request(1, 0.0, 8, 5)))
        prompt_t, step_t = unit_costs(prompt_cost=1.0, step_cost=1.0)
        rep = simulate_serving(trace, prompt_time=prompt_t, step_time=step_t,
                               max_batch=1)
        assert rep.queue_delays[0] == pytest.approx(0.0)
        assert rep.queue_delays[1] > 0.0
        assert rep.finish_times[1] > rep.finish_times[0]

    def test_batching_shares_steps(self):
        """Two concurrent requests at max_batch 2 finish much sooner than
        serialized at max_batch 1."""
        trace = WorkloadTrace((Request(0, 0.0, 8, 10), Request(1, 0.0, 8, 10)))
        prompt_t, step_t = unit_costs(prompt_cost=0.5, step_cost=1.0)
        together = simulate_serving(trace, prompt_time=prompt_t,
                                    step_time=step_t, max_batch=2)
        alone = simulate_serving(trace, prompt_time=prompt_t,
                                 step_time=step_t, max_batch=1)
        assert together.makespan < 0.7 * alone.makespan

    def test_every_request_finishes(self):
        trace = synthesize_trace(num_requests=30, arrival_rate=5.0,
                                 mean_prompt=16, mean_gen=8, seed=11)
        prompt_t, step_t = unit_costs(prompt_cost=0.05, step_cost=0.02)
        rep = simulate_serving(trace, prompt_time=prompt_t, step_time=step_t,
                               max_batch=8)
        assert set(rep.finish_times) == {r.request_id for r in trace.requests}
        assert rep.total_tokens == trace.total_gen_tokens

    def test_percentiles_ordered(self):
        trace = synthesize_trace(num_requests=50, arrival_rate=10.0,
                                 mean_prompt=16, mean_gen=8, seed=2)
        prompt_t, step_t = unit_costs(prompt_cost=0.05, step_cost=0.02)
        rep = simulate_serving(trace, prompt_time=prompt_t, step_time=step_t,
                               max_batch=4)
        p50 = rep.latency_percentile(trace, 50)
        p99 = rep.latency_percentile(trace, 99)
        assert p50 <= p99
        assert rep.ttft_percentile(trace, 50) <= p50

    def test_validation(self):
        trace = WorkloadTrace((Request(0, 0.0, 1, 1),))
        prompt_t, step_t = unit_costs()
        with pytest.raises(ValueError):
            simulate_serving(trace, prompt_time=prompt_t, step_time=step_t,
                             max_batch=0)


class TestReportEdgeCases:
    def test_single_request_percentiles_collapse(self):
        """With one request, every percentile is that request's value."""
        trace = WorkloadTrace((Request(0, 0.5, 4, 3),))
        prompt_t, step_t = unit_costs(prompt_cost=1.0, step_cost=0.1)
        rep = simulate_serving(trace, prompt_time=prompt_t,
                               step_time=step_t, max_batch=2)
        lat = rep.latency(trace.requests[0])
        for q in (0, 50, 99, 100):
            assert rep.latency_percentile(trace, q) == pytest.approx(lat)
        assert rep.ttft_percentile(trace, 99) == pytest.approx(1.0)

    def test_tokens_per_second_zero_makespan(self):
        """A degenerate report must not divide by zero."""
        rep = ServingReport(makespan=0.0, finish_times={},
                            first_token_times={}, queue_delays={},
                            total_tokens=0)
        assert rep.tokens_per_second == 0.0

    def test_ttft_when_request_finishes_during_prompt_pass(self):
        """gen_tokens=1 retires inside the prompt pass: first token and
        finish coincide at the end of that pass."""
        trace = WorkloadTrace((Request(0, 0.0, 4, 1),))
        prompt_t, step_t = unit_costs(prompt_cost=1.0, step_cost=0.1)
        rep = simulate_serving(trace, prompt_time=prompt_t,
                               step_time=step_t, max_batch=2)
        assert rep.first_token_times[0] == pytest.approx(1.0)
        assert rep.finish_times[0] == rep.first_token_times[0]
        assert rep.total_tokens == 1


class TestSchedulerReplay:
    """The analytical path replays the shared Scheduler and exposes it."""

    def test_report_carries_scheduler_and_timeline(self):
        trace = WorkloadTrace((Request(0, 0.0, 8, 3), Request(1, 0.0, 4, 2)))
        prompt_t, step_t = unit_costs()
        rep = simulate_serving(trace, prompt_time=prompt_t, step_time=step_t,
                               max_batch=2)
        assert rep.scheduler.admission_order == [0, 1]
        assert sorted(rep.scheduler.retirement_order) == [0, 1]
        events = rep.timeline.to_chrome_trace()
        names = {e["name"] for e in events}
        assert any(n.startswith("prefill") for n in names)
        assert any(n.startswith("decode") for n in names)

    def test_policy_changes_admission_order(self):
        trace = WorkloadTrace((Request(0, 0.0, 30, 2), Request(1, 0.0, 2, 2)))
        prompt_t, step_t = unit_costs()
        fcfs = simulate_serving(trace, prompt_time=prompt_t, step_time=step_t,
                                max_batch=1)
        sp = simulate_serving(trace, prompt_time=prompt_t, step_time=step_t,
                              max_batch=1, policy="shortest_prompt")
        assert fcfs.scheduler.admission_order == [0, 1]
        assert sp.scheduler.admission_order == [1, 0]


class TestModelIntegration:
    def test_serving_with_dense_latency_model(self):
        model = DenseLatencyModel(DENSE_ZOO["gpt-13b"], dgx_a100_cluster(1),
                                  tp=4)
        prompt_t, step_t = serving_step_times(model, mean_prompt=128,
                                              mean_gen=16)
        trace = synthesize_trace(num_requests=20, arrival_rate=20.0,
                                 mean_prompt=128, mean_gen=16, seed=4)
        rep = simulate_serving(trace, prompt_time=prompt_t, step_time=step_t,
                               max_batch=16)
        assert rep.tokens_per_second > 0
        # Queueing pushes P99 above P50 under this arrival pressure.
        assert rep.latency_percentile(trace, 99) >= rep.latency_percentile(
            trace, 50)

    def test_prompt_time_prices_running_batch(self):
        """Admitting into a busy server folds one decode iteration for the
        live batch into the prompt pass — cost must grow with batch."""
        model = DenseLatencyModel(DENSE_ZOO["gpt-13b"], dgx_a100_cluster(1),
                                  tp=4)
        prompt_t, step_t = serving_step_times(model, mean_prompt=128,
                                              mean_gen=16)
        idle = prompt_t(1, 128)
        busy = prompt_t(8, 128)
        assert busy > idle
        # The increment is exactly one decode iteration for the 7 riders.
        assert busy - idle == pytest.approx(
            sum(model.step_time(7, 1, 128 + 8)))


@given(
    n=st.integers(min_value=1, max_value=25),
    rate=st.floats(min_value=0.5, max_value=20.0),
    cap=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=30, deadline=None)
def test_serving_conservation_property(n, rate, cap):
    """Properties: all requests finish after they arrive; token accounting
    is exact; higher capacity never slows a *saturated* makespan.

    Capacity monotonicity is checked on a copy of the trace with every
    arrival moved to t=0. With staggered arrivals it is genuinely false:
    greedy admission exhibits Graham-style scheduling anomalies, where a
    larger batch cap admits an extra request into an idle gap and delays
    decode rounds for in-flight work (e.g. n=23, rate=18, cap=2 with the
    costs below).
    """
    trace = synthesize_trace(num_requests=n, arrival_rate=rate,
                             mean_prompt=8, mean_gen=4, seed=n)
    prompt_t, step_t = (lambda b, p: 0.01, lambda b: 0.02)
    rep = simulate_serving(trace, prompt_time=prompt_t, step_time=step_t,
                           max_batch=cap)
    for r in trace.requests:
        assert rep.finish_times[r.request_id] >= r.arrival
        assert rep.first_token_times[r.request_id] >= r.arrival
    assert rep.total_tokens == trace.total_gen_tokens
    saturated = WorkloadTrace(requests=[
        Request(request_id=r.request_id, arrival=0.0,
                prompt_len=r.prompt_len, gen_tokens=r.gen_tokens)
        for r in trace.requests
    ])
    small = simulate_serving(saturated, prompt_time=prompt_t,
                             step_time=step_t, max_batch=cap)
    bigger = simulate_serving(saturated, prompt_time=prompt_t,
                              step_time=step_t, max_batch=cap + 1)
    assert bigger.makespan <= small.makespan + 1e-9


class TestArrivalShapes:
    def test_poisson_is_the_verbatim_default(self):
        """arrival_shape='poisson' must reproduce the historic default
        bit for bit: same seed, same trace, no drift for old callers."""
        legacy = synthesize_trace(num_requests=50, arrival_rate=5.0, seed=3)
        explicit = synthesize_trace(num_requests=50, arrival_rate=5.0,
                                    seed=3, arrival_shape="poisson")
        assert legacy == explicit

    @pytest.mark.parametrize("shape", ["diurnal", "flash_crowd"])
    def test_shapes_deterministic_and_well_formed(self, shape):
        a = synthesize_trace(num_requests=200, arrival_rate=20.0, seed=5,
                             arrival_shape=shape)
        b = synthesize_trace(num_requests=200, arrival_rate=20.0, seed=5,
                             arrival_shape=shape)
        assert a == b
        arrivals = [r.arrival for r in a.requests]
        assert len(arrivals) == 200
        assert arrivals == sorted(arrivals)
        assert all(t >= 0.0 for t in arrivals)
        c = synthesize_trace(num_requests=200, arrival_rate=20.0, seed=6,
                             arrival_shape=shape)
        assert c != a  # the seed actually matters

    def test_diurnal_peak_denser_than_trough(self):
        t = synthesize_trace(num_requests=4000, arrival_rate=40.0, seed=7,
                             arrival_shape="diurnal", diurnal_amplitude=1.0)
        span = t.duration
        period = span / 2.0  # mirrors the synthesizer's nominal default
        # Phase 0..period: sin>0 in the first half (peak), <0 in the
        # second (trough). Count arrivals falling in each.
        phases = [(r.arrival % period) / period for r in t.requests]
        peak = sum(1 for p in phases if p < 0.5)
        trough = sum(1 for p in phases if p >= 0.5)
        assert peak > 2 * trough

    def test_flash_crowd_concentrates_in_bursts(self):
        n, rate = 2000, 20.0
        t = synthesize_trace(num_requests=n, arrival_rate=rate, seed=8,
                             arrival_shape="flash_crowd", burst_factor=10.0,
                             num_bursts=2)
        nominal_span = n / rate
        centers = (0.25 * nominal_span, 0.75 * nominal_span)
        half_width = 0.02 * nominal_span
        in_burst = sum(
            1 for r in t.requests
            if any(abs(r.arrival - c) <= half_width for c in centers))
        # The burst windows are 8% of the span; at 10x rate they should
        # hold several times their uniform share of arrivals.
        assert in_burst > 0.25 * n

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="arrival_shape"):
            synthesize_trace(num_requests=5, arrival_rate=1.0,
                             arrival_shape="square_wave")
        with pytest.raises(ValueError, match="diurnal_amplitude"):
            synthesize_trace(num_requests=5, arrival_rate=1.0,
                             arrival_shape="diurnal", diurnal_amplitude=1.5)
        with pytest.raises(ValueError, match="diurnal_period"):
            synthesize_trace(num_requests=5, arrival_rate=1.0,
                             arrival_shape="diurnal", diurnal_period=0.0)
        with pytest.raises(ValueError, match="burst_factor"):
            synthesize_trace(num_requests=5, arrival_rate=1.0,
                             arrival_shape="flash_crowd", burst_factor=1.0)
        with pytest.raises(ValueError, match="num_bursts"):
            synthesize_trace(num_requests=5, arrival_rate=1.0,
                             arrival_shape="flash_crowd", num_bursts=0)

    def test_lengths_and_sessions_still_drawn(self):
        t = synthesize_trace(num_requests=100, arrival_rate=10.0, seed=9,
                             arrival_shape="diurnal", num_sessions=4,
                             mean_prompt=32, mean_gen=8)
        assert all(r.prompt_len >= 1 and r.gen_tokens >= 1
                   for r in t.requests)
        assert {r.session for r in t.requests} <= {0, 1, 2, 3}


class TestWorkloadTraceEdges:
    """Degenerate traces and the scenario-zoo metadata fields."""

    def test_single_request_trace_has_zero_duration(self):
        trace = WorkloadTrace((Request(0, 2.0, 6, 3),))
        assert trace.duration == 0.0
        prompt_t, step_t = unit_costs(prompt_cost=1.0, step_cost=0.1)
        rep = simulate_serving(trace, prompt_time=prompt_t,
                               step_time=step_t, max_batch=4)
        # Serving starts at the lone arrival, not at t=0.
        assert rep.finish_times[0] == pytest.approx(2.0 + 1.0 + 2 * 0.1)
        assert rep.total_tokens == 3
        assert rep.tokens_per_second > 0

    def _tagged_trace(self):
        # The follow-up turn arrives well after its parent retires, so
        # the parked session cache is there to hit.
        return WorkloadTrace((
            Request(0, 0.0, 8, 3, session=0, tenant="gold", turn_index=0),
            Request(1, 0.1, 4, 2, tenant="free"),
            Request(2, 4.0, 12, 3, session=0, tenant="gold", turn_index=1,
                    shared_prefix_len=10),
        ))

    def test_tenant_fields_survive_analytical_fleet(self):
        from repro.fleet.sim import simulate_fleet

        trace = self._tagged_trace()
        prompt_t, step_t = unit_costs()
        rep = simulate_fleet(trace, num_replicas=2, prompt_time=prompt_t,
                             step_time=step_t, max_batch=2)
        assert rep.tenants(trace) == ["gold", "free"]
        assert [r.turn_index for r in rep.tenant_requests(trace, "gold")] \
            == [0, 1]
        gold = rep.tenant_latency_percentile(trace, "gold", 99)
        free = rep.tenant_latency_percentile(trace, "free", 99)
        assert gold > 0 and free > 0
        assert rep.prefix_hits == 1
        assert rep.prefix_hit_tokens == 10

    def test_tenant_fields_survive_functional_fleet(self):
        from repro.fleet.sim import run_fleet_functional
        from repro.model import DenseTransformer, ModelConfig

        trace = self._tagged_trace()
        cfg = ModelConfig(name="edge-rt", hidden=32, layers=2, heads=4,
                          vocab=53, max_seq=64)
        model = DenseTransformer(cfg, seed=11)
        prompt_t, step_t = unit_costs()
        res = run_fleet_functional(model, trace, num_replicas=1,
                                   prompt_time=prompt_t, step_time=step_t,
                                   max_batch=2, prefix_sharing=True)
        sess = res.sessions[0]
        for r in trace.requests:
            got = sess.result(r.request_id)
            assert got.tenant == r.tenant
            assert got.session == r.session
            assert got.shared_prefix_len == r.shared_prefix_len
        assert sess.result(2).prefix_reused > 0
        assert res.report.tenants(trace) == ["gold", "free"]
