"""Tests for the serving-level simulator (arrivals, queueing, percentiles)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import (
    DenseLatencyModel,
    Request,
    WorkloadTrace,
    serving_step_times,
    simulate_serving,
    synthesize_trace,
)
from repro.hardware import dgx_a100_cluster
from repro.model import DENSE_ZOO


def unit_costs(prompt_cost=1.0, step_cost=0.1):
    return (lambda batch, plen: prompt_cost, lambda batch: step_cost)


class TestTraceSynthesis:
    def test_reproducible(self):
        a = synthesize_trace(num_requests=20, arrival_rate=2.0, seed=7)
        b = synthesize_trace(num_requests=20, arrival_rate=2.0, seed=7)
        assert a == b

    def test_rate_controls_density(self):
        slow = synthesize_trace(num_requests=200, arrival_rate=1.0, seed=1)
        fast = synthesize_trace(num_requests=200, arrival_rate=10.0, seed=1)
        assert fast.duration < slow.duration

    def test_sorted_arrivals_and_positive_lengths(self):
        t = synthesize_trace(num_requests=50, arrival_rate=5.0, seed=3)
        arrivals = [r.arrival for r in t.requests]
        assert arrivals == sorted(arrivals)
        assert all(r.prompt_len >= 1 and r.gen_tokens >= 1 for r in t.requests)

    def test_validation(self):
        with pytest.raises(ValueError):
            synthesize_trace(num_requests=0, arrival_rate=1.0)
        with pytest.raises(ValueError):
            synthesize_trace(num_requests=1, arrival_rate=0.0)
        with pytest.raises(ValueError):
            Request(0, -1.0, 4, 4)
        with pytest.raises(ValueError):
            WorkloadTrace(())
        with pytest.raises(ValueError):
            WorkloadTrace((Request(0, 5.0, 1, 1), Request(1, 1.0, 1, 1)))


class TestServingSimulator:
    def test_single_request_latency(self):
        trace = WorkloadTrace((Request(0, 0.0, 16, 4),))
        prompt_t, step_t = unit_costs(prompt_cost=2.0, step_cost=0.5)
        rep = simulate_serving(trace, prompt_time=prompt_t, step_time=step_t,
                               max_batch=4)
        # prompt (2.0, yields token 1) + 3 decode steps (1.5)
        assert rep.latency(trace.requests[0]) == pytest.approx(3.5)
        assert rep.first_token_times[0] == pytest.approx(2.0)
        assert rep.total_tokens == 4

    def test_idle_server_waits_for_arrival(self):
        trace = WorkloadTrace((Request(0, 10.0, 8, 2),))
        prompt_t, step_t = unit_costs()
        rep = simulate_serving(trace, prompt_time=prompt_t, step_time=step_t,
                               max_batch=1)
        assert rep.finish_times[0] == pytest.approx(10.0 + 1.0 + 0.1)

    def test_queueing_delay_under_capacity_1(self):
        trace = WorkloadTrace((Request(0, 0.0, 8, 5), Request(1, 0.0, 8, 5)))
        prompt_t, step_t = unit_costs(prompt_cost=1.0, step_cost=1.0)
        rep = simulate_serving(trace, prompt_time=prompt_t, step_time=step_t,
                               max_batch=1)
        assert rep.queue_delays[0] == pytest.approx(0.0)
        assert rep.queue_delays[1] > 0.0
        assert rep.finish_times[1] > rep.finish_times[0]

    def test_batching_shares_steps(self):
        """Two concurrent requests at max_batch 2 finish much sooner than
        serialized at max_batch 1."""
        trace = WorkloadTrace((Request(0, 0.0, 8, 10), Request(1, 0.0, 8, 10)))
        prompt_t, step_t = unit_costs(prompt_cost=0.5, step_cost=1.0)
        together = simulate_serving(trace, prompt_time=prompt_t,
                                    step_time=step_t, max_batch=2)
        alone = simulate_serving(trace, prompt_time=prompt_t,
                                 step_time=step_t, max_batch=1)
        assert together.makespan < 0.7 * alone.makespan

    def test_every_request_finishes(self):
        trace = synthesize_trace(num_requests=30, arrival_rate=5.0,
                                 mean_prompt=16, mean_gen=8, seed=11)
        prompt_t, step_t = unit_costs(prompt_cost=0.05, step_cost=0.02)
        rep = simulate_serving(trace, prompt_time=prompt_t, step_time=step_t,
                               max_batch=8)
        assert set(rep.finish_times) == {r.request_id for r in trace.requests}
        assert rep.total_tokens == trace.total_gen_tokens

    def test_percentiles_ordered(self):
        trace = synthesize_trace(num_requests=50, arrival_rate=10.0,
                                 mean_prompt=16, mean_gen=8, seed=2)
        prompt_t, step_t = unit_costs(prompt_cost=0.05, step_cost=0.02)
        rep = simulate_serving(trace, prompt_time=prompt_t, step_time=step_t,
                               max_batch=4)
        p50 = rep.latency_percentile(trace, 50)
        p99 = rep.latency_percentile(trace, 99)
        assert p50 <= p99
        assert rep.ttft_percentile(trace, 50) <= p50

    def test_validation(self):
        trace = WorkloadTrace((Request(0, 0.0, 1, 1),))
        prompt_t, step_t = unit_costs()
        with pytest.raises(ValueError):
            simulate_serving(trace, prompt_time=prompt_t, step_time=step_t,
                             max_batch=0)


class TestSchedulerReplay:
    """The analytical path replays the shared Scheduler and exposes it."""

    def test_report_carries_scheduler_and_timeline(self):
        trace = WorkloadTrace((Request(0, 0.0, 8, 3), Request(1, 0.0, 4, 2)))
        prompt_t, step_t = unit_costs()
        rep = simulate_serving(trace, prompt_time=prompt_t, step_time=step_t,
                               max_batch=2)
        assert rep.scheduler.admission_order == [0, 1]
        assert sorted(rep.scheduler.retirement_order) == [0, 1]
        events = rep.timeline.to_chrome_trace()
        names = {e["name"] for e in events}
        assert any(n.startswith("prefill") for n in names)
        assert any(n.startswith("decode") for n in names)

    def test_policy_changes_admission_order(self):
        trace = WorkloadTrace((Request(0, 0.0, 30, 2), Request(1, 0.0, 2, 2)))
        prompt_t, step_t = unit_costs()
        fcfs = simulate_serving(trace, prompt_time=prompt_t, step_time=step_t,
                                max_batch=1)
        sp = simulate_serving(trace, prompt_time=prompt_t, step_time=step_t,
                              max_batch=1, policy="shortest_prompt")
        assert fcfs.scheduler.admission_order == [0, 1]
        assert sp.scheduler.admission_order == [1, 0]


class TestModelIntegration:
    def test_serving_with_dense_latency_model(self):
        model = DenseLatencyModel(DENSE_ZOO["gpt-13b"], dgx_a100_cluster(1),
                                  tp=4)
        prompt_t, step_t = serving_step_times(model, mean_prompt=128,
                                              mean_gen=16)
        trace = synthesize_trace(num_requests=20, arrival_rate=20.0,
                                 mean_prompt=128, mean_gen=16, seed=4)
        rep = simulate_serving(trace, prompt_time=prompt_t, step_time=step_t,
                               max_batch=16)
        assert rep.tokens_per_second > 0
        # Queueing pushes P99 above P50 under this arrival pressure.
        assert rep.latency_percentile(trace, 99) >= rep.latency_percentile(
            trace, 50)

    def test_prompt_time_prices_running_batch(self):
        """Admitting into a busy server folds one decode iteration for the
        live batch into the prompt pass — cost must grow with batch."""
        model = DenseLatencyModel(DENSE_ZOO["gpt-13b"], dgx_a100_cluster(1),
                                  tp=4)
        prompt_t, step_t = serving_step_times(model, mean_prompt=128,
                                              mean_gen=16)
        idle = prompt_t(1, 128)
        busy = prompt_t(8, 128)
        assert busy > idle
        # The increment is exactly one decode iteration for the 7 riders.
        assert busy - idle == pytest.approx(
            sum(model.step_time(7, 1, 128 + 8)))


@given(
    n=st.integers(min_value=1, max_value=25),
    rate=st.floats(min_value=0.5, max_value=20.0),
    cap=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=30, deadline=None)
def test_serving_conservation_property(n, rate, cap):
    """Properties: all requests finish after they arrive; token accounting
    is exact; higher capacity never slows the makespan."""
    trace = synthesize_trace(num_requests=n, arrival_rate=rate,
                             mean_prompt=8, mean_gen=4, seed=n)
    prompt_t, step_t = (lambda b, p: 0.01, lambda b: 0.02)
    rep = simulate_serving(trace, prompt_time=prompt_t, step_time=step_t,
                           max_batch=cap)
    for r in trace.requests:
        assert rep.finish_times[r.request_id] >= r.arrival
        assert rep.first_token_times[r.request_id] >= r.arrival
    assert rep.total_tokens == trace.total_gen_tokens
    bigger = simulate_serving(trace, prompt_time=prompt_t, step_time=step_t,
                              max_batch=cap + 1)
    assert bigger.makespan <= rep.makespan + 1e-9
