"""Tests for the continuous-batching generation session."""

import numpy as np
import pytest

from repro.engine import GenerationSession
from repro.model import DenseTransformer, ModelConfig

CFG = ModelConfig(name="gen-test", hidden=32, layers=3, heads=4, vocab=61,
                  max_seq=48)


@pytest.fixture(scope="module")
def model():
    return DenseTransformer(CFG, seed=13)


class TestSingleRequest:
    def test_matches_model_generate(self, model):
        session = GenerationSession(model)
        prompt = np.array([4, 9, 16])
        rid = session.submit(prompt, max_new_tokens=6)
        done = session.run()
        expected = model.generate(prompt[None, :], 6)[0]
        np.testing.assert_array_equal(done[rid].output_ids, expected)
        assert done[rid].finish_reason == "length"

    def test_eos_stops_early(self, model):
        # Find what the model actually emits first, then use it as EOS.
        prompt = np.array([4, 9, 16])
        full = model.generate(prompt[None, :], 5)[0]
        eos = int(full[3])  # the first generated token
        session = GenerationSession(model, eos_token=eos)
        rid = session.submit(prompt, max_new_tokens=10)
        done = session.run()
        req = done[rid]
        assert req.finish_reason == "eos"
        assert req.generated == [eos]

    def test_cache_freed_on_finish(self, model):
        session = GenerationSession(model)
        rid = session.submit(np.array([1, 2]), max_new_tokens=2)
        done = session.run()
        assert done[rid].cache is None

    def test_explicit_request_id(self, model):
        """Callers replaying a recorded schedule (the fleet layer) pick
        their own ids; auto-assignment continues past them."""
        session = GenerationSession(model)
        assert session.submit(np.array([1, 2]), max_new_tokens=1,
                              request_id=7) == 7
        with pytest.raises(ValueError, match="already submitted"):
            session.submit(np.array([3]), max_new_tokens=1, request_id=7)
        done = session.run()
        assert 7 in done


class TestContinuousBatching:
    def test_concurrent_requests_independent(self, model):
        session = GenerationSession(model, max_concurrency=4)
        prompts = [np.array([3, 1]), np.array([7, 7, 7]), np.array([50])]
        rids = [session.submit(p, max_new_tokens=5) for p in prompts]
        done = session.run()
        for rid, p in zip(rids, prompts):
            expected = model.generate(p[None, :], 5)[0]
            np.testing.assert_array_equal(done[rid].output_ids, expected)

    def test_queueing_beyond_concurrency(self, model):
        session = GenerationSession(model, max_concurrency=2)
        rids = [session.submit(np.array([i + 1, i + 2]), max_new_tokens=3)
                for i in range(5)]
        assert session.num_waiting >= 3
        done = session.run()
        assert len(done) == 5
        for i, rid in enumerate(rids):
            expected = model.generate(np.array([[i + 1, i + 2]]), 3)[0]
            np.testing.assert_array_equal(done[rid].output_ids, expected)

    def test_late_submission_joins_inflight(self, model):
        session = GenerationSession(model, max_concurrency=4)
        first = session.submit(np.array([2, 4]), max_new_tokens=8)
        session.step()
        session.step()
        late = session.submit(np.array([9, 9, 9]), max_new_tokens=3)
        done = session.run()
        np.testing.assert_array_equal(
            done[first].output_ids, model.generate(np.array([[2, 4]]), 8)[0]
        )
        np.testing.assert_array_equal(
            done[late].output_ids, model.generate(np.array([[9, 9, 9]]), 3)[0]
        )

    def test_varied_lengths_finish_independently(self, model):
        session = GenerationSession(model, max_concurrency=4)
        short = session.submit(np.array([5]), max_new_tokens=1)
        long = session.submit(np.array([6]), max_new_tokens=7)
        finished_order = []
        while session.num_active or session.num_waiting:
            finished_order.extend(session.step())
        assert finished_order.index(short) < finished_order.index(long)

    def test_stats_accounting(self, model):
        session = GenerationSession(model)
        session.submit(np.array([1]), max_new_tokens=4)
        session.submit(np.array([2]), max_new_tokens=2)
        session.run()
        assert session.tokens_generated == 6


class TestSamplingInSession:
    def test_seeded_sampling_reproducible(self, model):
        from repro.model import SamplingConfig

        def run(seed):
            s = GenerationSession(
                model, sampling=SamplingConfig(temperature=1.0, top_k=8),
                seed=seed,
            )
            rid = s.submit(np.array([4, 9]), max_new_tokens=6)
            return s.run()[rid].generated

        assert run(5) == run(5)

    def test_sampling_can_differ_from_greedy(self, model):
        from repro.model import SamplingConfig

        greedy = GenerationSession(model)
        rid_g = greedy.submit(np.array([4, 9]), max_new_tokens=8)
        greedy_out = greedy.run()[rid_g].generated

        diverged = False
        for seed in range(5):
            s = GenerationSession(
                model, sampling=SamplingConfig(temperature=2.0), seed=seed
            )
            rid = s.submit(np.array([4, 9]), max_new_tokens=8)
            if s.run()[rid].generated != greedy_out:
                diverged = True
                break
        assert diverged


class TestValidation:
    def test_bad_inputs(self, model):
        session = GenerationSession(model)
        with pytest.raises(ValueError):
            session.submit(np.array([]), max_new_tokens=1)
        with pytest.raises(ValueError):
            session.submit(np.array([1]), max_new_tokens=0)
        with pytest.raises(ValueError):
            GenerationSession(model, max_concurrency=0)

    def test_unknown_result(self, model):
        with pytest.raises(KeyError):
            GenerationSession(model).result(123)


class TestBatchedDecodeRuntime:
    """The refactored execution path: one forward per decode step, over
    paged KV blocks that free on retirement."""

    def test_one_forward_per_decode_step(self, model):
        session = GenerationSession(model, max_concurrency=4)
        for i in range(4):
            session.submit(np.array([i + 1, i + 2]), max_new_tokens=5)
        before = session.forward_calls
        session.step()  # admits 4 (one ragged prefill) + decodes (one fwd)
        assert session.forward_calls - before == 2
        while session.num_active or session.num_waiting:
            b = session.forward_calls
            session.step()
            assert session.forward_calls - b == 1  # no admissions left

    def test_total_forwards_independent_of_batch_size(self, model):
        session = GenerationSession(model, max_concurrency=4)
        gen = 6
        for i in range(4):
            session.submit(np.array([i + 1]), max_new_tokens=gen)
        session.run()
        # 1 ragged prefill + (gen - 1) batched decode steps, regardless
        # of the 4-wide batch; the old per-request loop needed 4 * gen.
        assert session.forward_calls == gen

    def test_paged_blocks_freed_on_retirement(self, model):
        session = GenerationSession(model, max_concurrency=2, kv_block_size=4)
        session.submit(np.array([1, 2, 3]), max_new_tokens=3)
        session.submit(np.array([4]), max_new_tokens=6)
        session.step()
        assert session.kv_blocks_in_use > 0
        session.run()
        assert session.kv_blocks_in_use == 0  # every block back in the pool

    def test_kv_capacity_gates_admission_without_reordering(self, model):
        # Pool sized for exactly one request's reservation (peak 5
        # positions -> 1 block/layer): the second must wait for the
        # first to retire, not fail or jump the queue.
        session = GenerationSession(model, max_concurrency=4,
                                    kv_pool_blocks=CFG.layers)
        a = session.submit(np.array([1, 2]), max_new_tokens=3)
        b = session.submit(np.array([3, 4]), max_new_tokens=3)
        session.step()
        assert session.num_active == 1 and session.num_waiting == 1
        done = session.run()
        assert session.scheduler.admission_order == [a, b]
        for rid, p in [(a, np.array([1, 2])), (b, np.array([3, 4]))]:
            np.testing.assert_array_equal(
                done[rid].output_ids, model.generate(p[None, :], 3)[0])

    def test_request_larger_than_pool_rejected_at_submit(self, model):
        session = GenerationSession(model, max_concurrency=2,
                                    kv_pool_blocks=1)
        with pytest.raises(ValueError, match="KV blocks"):
            session.submit(np.arange(1, 20), max_new_tokens=10)

    def test_shortest_prompt_policy_in_session(self, model):
        session = GenerationSession(model, max_concurrency=1,
                                    policy="shortest_prompt")
        long = session.submit(np.array([1, 2, 3, 4, 5]), max_new_tokens=2)
        short = session.submit(np.array([9]), max_new_tokens=2)
        session.run()
        # Both are queued before the first step; the short prompt wins
        # the single slot despite being submitted second.
        assert session.scheduler.admission_order == [short, long]


class TestIdleKVOffload:
    """Sec. IV-C2's policy inside the serving loop: park idle caches on
    the host; outputs must be unchanged and traffic accounted."""

    def test_outputs_identical_with_offload(self, model):
        plain = GenerationSession(model)
        offl = GenerationSession(model, offload_idle_kv=True)
        p = np.array([3, 1, 4])
        rid_a = plain.submit(p, max_new_tokens=6)
        rid_b = offl.submit(p, max_new_tokens=6)
        out_a = plain.run()[rid_a].output_ids
        out_b = offl.run()[rid_b].output_ids
        np.testing.assert_array_equal(out_a, out_b)

    def test_traffic_counters_move(self, model):
        s = GenerationSession(model, offload_idle_kv=True, max_concurrency=2)
        s.submit(np.array([1, 2]), max_new_tokens=4)
        s.submit(np.array([5, 6, 7]), max_new_tokens=4)
        s.step()
        assert s.kv_bytes_offloaded > 0
        s.step()
        assert s.kv_bytes_fetched > 0

    def test_interleaved_requests_still_exact(self, model):
        s = GenerationSession(model, offload_idle_kv=True, max_concurrency=4)
        prompts = [np.array([2, 4]), np.array([8]), np.array([9, 9, 9])]
        rids = [s.submit(p, max_new_tokens=5) for p in prompts]
        done = s.run()
        for rid, p in zip(rids, prompts):
            np.testing.assert_array_equal(
                done[rid].output_ids, model.generate(p[None, :], 5)[0]
            )

    def test_counters_cumulative_across_retirement(self, model):
        """Retiring a request must bank its traffic, not drop it."""
        s = GenerationSession(model, offload_idle_kv=True, max_concurrency=2)
        s.submit(np.array([1, 2]), max_new_tokens=3)
        s.submit(np.array([5, 6, 7]), max_new_tokens=4)
        s.step()
        s.step()
        mid_off, mid_fetch = s.kv_bytes_offloaded, s.kv_bytes_fetched
        assert mid_off > 0 and mid_fetch > 0
        s.run()
        assert s.num_active == 0  # everything retired...
        assert s.kv_bytes_offloaded >= mid_off  # ...but totals survived
        assert s.kv_bytes_fetched >= mid_fetch
        assert s.kv_bytes_offloaded > 0 and s.kv_bytes_fetched > 0
