"""Tests for the step-cost pricing interface (engine/costs.py).

Covers the compat guarantee — ``DenseStepCost(representative_kv=...)``
reproduces the deprecated ``serving_step_times`` closures bit-for-bit
through both the serving and fleet simulators — and the adapter
contract every model family must satisfy: finite, strictly positive
costs, monotone non-decreasing in batch size and KV length.
"""

import math
import warnings

import numpy as np
import pytest

from repro.engine import (
    BatchState,
    ClosureStepCost,
    DenseLatencyModel,
    DenseStepCost,
    MoELatencyModel,
    MoEStepCost,
    PromptShape,
    StepCostModel,
    ZeroStepCost,
    resolve_step_costs,
    serving_step_times,
    simulate_serving,
    synthesize_trace,
)
from repro.fleet import simulate_fleet
from repro.hardware import dgx2_v100, dgx_a100_cluster
from repro.model import DENSE_ZOO, MOE_PARALLELISM, MOE_ZOO, get_model
from repro.zero import ZeroInferenceEngine


@pytest.fixture(scope="module")
def dense_cost():
    model = DenseLatencyModel(DENSE_ZOO["gpt-13b"], dgx_a100_cluster(1), tp=4)
    return DenseStepCost(model)


@pytest.fixture(scope="module")
def moe_cost():
    cluster = dgx_a100_cluster(16)  # 128 GPUs
    cfg = MOE_ZOO["1.3b-moe-128"]
    model = MoELatencyModel(cfg, cluster, MOE_PARALLELISM[cfg.name],
                            optimized=True)
    return MoEStepCost(model)


@pytest.fixture(scope="module")
def zero_cost():
    engine = ZeroInferenceEngine(get_model("gpt-neox-20b"), dgx2_v100(1))
    return ZeroStepCost(engine)


class TestBatchState:
    def test_empty_state_is_legal(self):
        s = BatchState(())
        assert s.batch == 0
        assert s.total_kv == 0
        assert s.mean_kv == 0
        assert s.max_kv == 0

    def test_accounting(self):
        s = BatchState((100, 101, 205))
        assert s.batch == 3
        assert s.total_kv == 406
        assert s.mean_kv == math.ceil(406 / 3)
        assert s.max_kv == 205

    def test_uniform(self):
        assert BatchState.uniform(4, 128) == BatchState((128,) * 4)
        assert BatchState.uniform(0, 128) == BatchState(())
        with pytest.raises(ValueError):
            BatchState.uniform(-1, 128)

    def test_rejects_nonpositive_kv(self):
        with pytest.raises(ValueError):
            BatchState((4, 0))

    def test_prompt_shape_validates(self):
        with pytest.raises(ValueError):
            PromptShape(0)


class TestResolveStepCosts:
    def test_passthrough(self):
        costs = ClosureStepCost(lambda b, p: 1.0, lambda b: 0.1)
        assert resolve_step_costs(costs, None, None) is costs

    def test_wraps_closures(self):
        got = resolve_step_costs(None, lambda b, p: 2.5, lambda b: 0.5)
        assert isinstance(got, ClosureStepCost)
        # Old convention: prompt_time's batch includes the newcomer.
        assert got.prompt_cost(BatchState.uniform(3, 7), PromptShape(16)) == 2.5
        assert got.decode_cost(BatchState.uniform(3, 7)) == 0.5

    def test_closure_convention_includes_newcomer(self):
        got = resolve_step_costs(None, lambda b, p: float(b * 1000 + p),
                                 lambda b: float(b))
        assert got.prompt_cost(BatchState(()), PromptShape(9)) == 1009.0
        assert got.prompt_cost(BatchState.uniform(3, 50), PromptShape(9)) == 4009.0

    def test_rejects_both_and_neither(self):
        costs = ClosureStepCost(lambda b, p: 1.0, lambda b: 0.1)
        with pytest.raises(ValueError, match="not both"):
            resolve_step_costs(costs, lambda b, p: 1.0, lambda b: 0.1)
        with pytest.raises(ValueError, match="pricing required"):
            resolve_step_costs(None, None, None)
        with pytest.raises(ValueError, match="pricing required"):
            resolve_step_costs(None, lambda b, p: 1.0, None)


class TestCompatEquivalence:
    """The representative-KV compat mode is bit-for-bit the legacy path."""

    MEAN_PROMPT, MEAN_GEN = 128, 16

    @pytest.fixture(scope="class")
    def setup(self):
        model = DenseLatencyModel(DENSE_ZOO["gpt-13b"], dgx_a100_cluster(1),
                                  tp=4)
        with pytest.deprecated_call():
            closures = serving_step_times(model, mean_prompt=self.MEAN_PROMPT,
                                          mean_gen=self.MEAN_GEN)
        compat = DenseStepCost(
            model, representative_kv=self.MEAN_PROMPT + self.MEAN_GEN // 2)
        trace = synthesize_trace(num_requests=80, arrival_rate=12.0,
                                 mean_prompt=self.MEAN_PROMPT,
                                 mean_gen=self.MEAN_GEN, seed=11)
        return closures, compat, trace

    def test_serving_bit_for_bit(self, setup):
        (prompt_t, step_t), compat, trace = setup
        old = simulate_serving(trace, prompt_time=prompt_t, step_time=step_t,
                               max_batch=8)
        new = simulate_serving(trace, costs=compat, max_batch=8)
        assert new.finish_times == old.finish_times
        assert new.first_token_times == old.first_token_times
        assert new.makespan == old.makespan
        assert new.total_tokens == old.total_tokens

    def test_fleet_single_replica_bit_for_bit(self, setup):
        (prompt_t, step_t), compat, trace = setup
        old = simulate_fleet(trace, num_replicas=1, prompt_time=prompt_t,
                             step_time=step_t, max_batch=8)
        new = simulate_fleet(trace, num_replicas=1, costs=compat, max_batch=8)
        assert new.finish_times == old.finish_times
        assert new.first_token_times == old.first_token_times
        assert new.makespan == old.makespan

    def test_policy_and_scheduling_identical(self, setup):
        (prompt_t, step_t), compat, trace = setup
        old = simulate_serving(trace, prompt_time=prompt_t, step_time=step_t,
                               max_batch=4, policy="shortest_prompt")
        new = simulate_serving(trace, costs=compat, max_batch=4,
                               policy="shortest_prompt")
        assert new.finish_times == old.finish_times


def _adapter_cases(cost, prompt_len=64):
    """(name, value) cost samples every adapter must price sensibly."""
    return [
        ("prompt-idle", cost.prompt_cost(BatchState(()),
                                         PromptShape(prompt_len))),
        ("prompt-riders", cost.prompt_cost(BatchState.uniform(4, 96),
                                           PromptShape(prompt_len))),
        ("decode-1", cost.decode_cost(BatchState.uniform(1, 32))),
        ("decode-ragged", cost.decode_cost(BatchState((17, 128, 301)))),
    ]


class TestAdapterContract:
    """Shared contract: finite, positive, monotone in batch and KV."""

    @pytest.fixture(params=["dense", "moe", "zero"])
    def cost(self, request, dense_cost, moe_cost, zero_cost):
        return {"dense": dense_cost, "moe": moe_cost,
                "zero": zero_cost}[request.param]

    def test_finite_and_positive(self, cost):
        for name, value in _adapter_cases(cost):
            assert math.isfinite(value), name
            assert value > 0.0, name

    def test_decode_monotone_in_batch(self, cost):
        costs = [cost.decode_cost(BatchState.uniform(b, 128))
                 for b in (1, 2, 4, 8, 16)]
        assert all(b >= a for a, b in zip(costs, costs[1:]))

    def test_decode_monotone_in_kv(self, cost):
        costs = [cost.decode_cost(BatchState.uniform(4, kv))
                 for kv in (16, 64, 256, 1024)]
        assert all(b >= a for a, b in zip(costs, costs[1:]))

    def test_prompt_monotone_in_prompt_len(self, cost):
        state = BatchState.uniform(2, 128)
        costs = [cost.prompt_cost(state, PromptShape(p))
                 for p in (16, 64, 256, 1024)]
        assert all(b >= a for a, b in zip(costs, costs[1:]))

    def test_prompt_riders_cost_extra(self, cost):
        idle = cost.prompt_cost(BatchState(()), PromptShape(128))
        loaded = cost.prompt_cost(BatchState.uniform(8, 128), PromptShape(128))
        assert loaded > idle

    def test_memoization_stable(self, cost):
        state = BatchState.uniform(3, 200)
        assert cost.decode_cost(state) == cost.decode_cost(state)


class TestDenseStepCost:
    def test_true_kv_mode_tracks_context_growth(self, dense_cost):
        short = dense_cost.decode_cost(BatchState.uniform(4, 64))
        long = dense_cost.decode_cost(BatchState.uniform(4, 2048))
        assert long > short

    def test_compat_mode_ignores_state_kv(self):
        model = DenseLatencyModel(DENSE_ZOO["gpt-13b"], dgx_a100_cluster(1),
                                  tp=4)
        compat = DenseStepCost(model, representative_kv=136)
        a = compat.decode_cost(BatchState.uniform(4, 64))
        b = compat.decode_cost(BatchState.uniform(4, 2048))
        assert a == b

    def test_compat_validates(self):
        model = DenseLatencyModel(DENSE_ZOO["gpt-13b"], dgx_a100_cluster(1),
                                  tp=4)
        with pytest.raises(ValueError):
            DenseStepCost(model, representative_kv=0)


class TestServingStepTimesShim:
    def test_warns_and_matches_compat(self):
        model = DenseLatencyModel(DENSE_ZOO["gpt-13b"], dgx_a100_cluster(1),
                                  tp=4)
        with pytest.warns(DeprecationWarning, match="serving_step_times"):
            prompt_t, step_t = serving_step_times(model, mean_prompt=128,
                                                  mean_gen=16)
        compat = DenseStepCost(model, representative_kv=128 + 16 // 2)
        assert prompt_t(1, 64) == compat.prompt_cost(BatchState(()),
                                                     PromptShape(64))
        assert prompt_t(5, 64) == compat.prompt_cost(
            BatchState.uniform(4, 136), PromptShape(64))
        assert step_t(4) == compat.decode_cost(BatchState.uniform(4, 136))

    def test_warning_is_deprecation_from_caller_frame(self):
        model = DenseLatencyModel(DENSE_ZOO["gpt-13b"], dgx_a100_cluster(1),
                                  tp=4)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            serving_step_times(model, mean_prompt=64, mean_gen=8)
        (w,) = [c for c in caught if c.category is DeprecationWarning]
        # stacklevel=2 attributes the warning to this test, not the shim.
        assert w.filename == __file__
        assert "costs=" in str(w.message)

    def test_grid_bit_for_bit_equal_to_compat(self):
        """The shim's closures equal DenseStepCost compat mode on every
        (batch, prompt_len) point of a grid — not just one sample."""
        model = DenseLatencyModel(DENSE_ZOO["gpt-13b"], dgx_a100_cluster(1),
                                  tp=4)
        mean_prompt, mean_gen = 96, 24
        with pytest.deprecated_call():
            prompt_t, step_t = serving_step_times(
                model, mean_prompt=mean_prompt, mean_gen=mean_gen)
        compat = DenseStepCost(
            model, representative_kv=mean_prompt + mean_gen // 2)
        rep_kv = mean_prompt + mean_gen // 2
        for batch in (1, 2, 3, 8, 17):
            assert step_t(batch) == compat.decode_cost(
                BatchState.uniform(batch, rep_kv))
            for prompt_len in (1, 16, 128, 512):
                assert prompt_t(batch, prompt_len) == compat.prompt_cost(
                    BatchState.uniform(batch - 1, rep_kv),
                    PromptShape(prompt_len))


class TestDecodeRunCost:
    """Vectorized run pricing must equal the per-step scalar loop
    bit-for-bit — it is the foundation of the event-compressed serving
    simulator's exactness guarantee."""

    STEPS = 40

    def _reference(self, cost, state, steps):
        out = []
        for i in range(steps):
            out.append(cost.decode_cost(state.advanced(i)))
        return out

    @pytest.fixture(params=["dense", "moe", "zero"])
    def cost(self, request, dense_cost, moe_cost, zero_cost):
        return {"dense": dense_cost, "moe": moe_cost,
                "zero": zero_cost}[request.param]

    @pytest.mark.parametrize("state", [
        BatchState.uniform(1, 32),
        BatchState.uniform(4, 128),
        BatchState((17, 128, 301)),  # ragged KV
    ])
    def test_bitwise_equals_scalar_loop(self, cost, state):
        run = cost.decode_run_cost(state, self.STEPS)
        assert run.dtype == np.float64 and run.shape == (self.STEPS,)
        assert run.tolist() == self._reference(cost, state, self.STEPS)

    def test_warm_cache_still_bitwise(self, cost):
        state = BatchState.uniform(3, 64)
        first = cost.decode_run_cost(state, self.STEPS)
        again = cost.decode_run_cost(state, self.STEPS)
        assert first.tolist() == again.tolist()
        # Extending past the cached range stays exact too.
        longer = cost.decode_run_cost(state, 3 * self.STEPS)
        assert longer[:self.STEPS].tolist() == first.tolist()
        assert longer.tolist() == self._reference(cost, state, 3 * self.STEPS)

    def test_closure_adapter(self):
        cost = ClosureStepCost(lambda b, p: 1.0, lambda b: 0.25 * b)
        state = BatchState.uniform(4, 10)
        run = cost.decode_run_cost(state, 5)
        assert run.tolist() == self._reference(cost, state, 5)

    def test_compat_mode_is_flat(self):
        model = DenseLatencyModel(DENSE_ZOO["gpt-13b"], dgx_a100_cluster(1),
                                  tp=4)
        compat = DenseStepCost(model, representative_kv=136)
        state = BatchState.uniform(4, 64)
        run = compat.decode_run_cost(state, 6)
        assert run.tolist() == [compat.decode_cost(state)] * 6
        assert run.tolist() == self._reference(compat, state, 6)

    def test_base_class_fallback(self):
        """A subclass that does not override _decode_run_cost gets the
        per-step reference loop from the ABC."""
        class Plain(ClosureStepCost):
            _decode_run_cost = StepCostModel._decode_run_cost

        cost = Plain(lambda b, p: 1.0, lambda b: 0.5 * b)
        state = BatchState.uniform(2, 8)
        assert cost.decode_run_cost(state, 4).tolist() == [1.0] * 4

    def test_validation(self, dense_cost):
        state = BatchState.uniform(2, 16)
        assert dense_cost.decode_run_cost(state, 0).shape == (0,)
        with pytest.raises(ValueError):
            dense_cost.decode_run_cost(state, -1)
        with pytest.raises(ValueError):
            dense_cost.decode_run_cost(BatchState(()), 3)

    def test_advanced(self):
        s = BatchState((5, 9))
        assert s.advanced(0) is s
        assert s.advanced(3) == BatchState((8, 12))
        with pytest.raises(ValueError):
            s.advanced(-1)


class TestMoEServingEndToEnd:
    def test_moe_trace_through_serving(self, moe_cost):
        trace = synthesize_trace(num_requests=30, arrival_rate=10.0,
                                 mean_prompt=64, mean_gen=8, seed=5)
        rep = simulate_serving(trace, costs=moe_cost, max_batch=8)
        assert len(rep.finish_times) == 30
        assert rep.total_tokens == sum(r.gen_tokens for r in trace.requests)
        assert math.isfinite(rep.makespan) and rep.makespan > 0
