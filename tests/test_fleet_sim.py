"""Tests for the analytical fleet simulator: routing, faults, reports."""

import numpy as np
import pytest

from repro.engine import simulate_serving, synthesize_trace
from repro.fleet import FaultPlan, ReplicaFault, simulate_fleet

COSTS = dict(prompt_time=lambda b, p: 0.02 + 0.001 * p,
             step_time=lambda b: 0.01 + 0.001 * b)


def _trace(n=40, rate=30.0, seed=0, num_sessions=None):
    return synthesize_trace(num_requests=n, arrival_rate=rate,
                            mean_prompt=8, mean_gen=6, seed=seed,
                            num_sessions=num_sessions)


class TestSingleReplicaEquivalence:
    @pytest.mark.parametrize("seed,max_batch", [(0, 2), (1, 4), (2, 3)])
    def test_one_replica_fleet_is_simulate_serving(self, seed, max_batch):
        """A fleet of one must reproduce the single-server simulator
        bit for bit — same control plane, same pricing."""
        trace = _trace(seed=seed)
        solo = simulate_serving(trace, max_batch=max_batch, **COSTS)
        fleet = simulate_fleet(trace, num_replicas=1, max_batch=max_batch,
                               **COSTS)
        assert fleet.finish_times == solo.finish_times
        assert fleet.first_token_times == solo.first_token_times
        assert fleet.queue_delays == solo.queue_delays
        assert fleet.makespan == solo.makespan
        assert fleet.total_tokens == solo.total_tokens


class TestHealthyFleet:
    def test_all_complete_and_load_spreads(self):
        trace = _trace()
        rep = simulate_fleet(trace, num_replicas=4, max_batch=4,
                             routing="round_robin", **COSTS)
        assert rep.num_completed == len(trace.requests)
        assert rep.total_tokens == trace.total_gen_tokens
        assert rep.tokens_discarded == 0
        assert rep.retried == frozenset()
        assert sum(rep.request_counts) == len(trace.requests)
        assert all(c > 0 for c in rep.request_counts)  # everyone works
        assert rep.num_replicas == 4

    def test_more_replicas_never_slow_the_fleet(self):
        trace = _trace(n=60, rate=60.0)
        makespans = [
            simulate_fleet(trace, num_replicas=k, max_batch=4,
                           routing="least_outstanding", **COSTS).makespan
            for k in (1, 2, 4)
        ]
        assert makespans[0] > makespans[1] > makespans[2]

    def test_session_affinity_keeps_sessions_together(self):
        trace = _trace(num_sessions=6)
        rep = simulate_fleet(trace, num_replicas=3, max_batch=4,
                             routing="session_affinity", **COSTS)
        by_session = {}
        for r in trace.requests:
            by_session.setdefault(r.session, set()).add(
                rep.replica_of[r.request_id])
        assert all(len(replicas) == 1 for replicas in by_session.values())

    def test_merged_timeline_has_replica_and_router_lanes(self):
        trace = _trace(n=10)
        rep = simulate_fleet(trace, num_replicas=2, max_batch=2, **COSTS)
        lanes = rep.timeline.lanes()
        assert any(lane.startswith("replica0/") for lane in lanes)
        assert any(lane.startswith("replica1/") for lane in lanes)
        assert len(rep.timeline.instants("router")) == len(trace.requests)
        events = rep.timeline.to_chrome_trace()
        assert any(e["ph"] == "i" for e in events)  # router instants export

    def test_validation(self):
        trace = _trace(n=5)
        with pytest.raises(ValueError, match="num_replicas"):
            simulate_fleet(trace, num_replicas=0, max_batch=2, **COSTS)
        with pytest.raises(ValueError, match="max_batch"):
            simulate_fleet(trace, num_replicas=2, max_batch=0, **COSTS)


class TestCrashFailover:
    def test_crash_mid_trace_requeues_to_survivors(self):
        """The acceptance scenario: kill 1 of 3 mid-trace; every request
        still completes, load shifts to survivors, the tail degrades but
        the makespan stays finite."""
        # A near-burst trace keeps every queue deep, so the dead replica
        # is guaranteed to hold victims when the fault lands.
        trace = _trace(n=40, rate=400.0)
        t_crash = trace.requests[-1].arrival + 0.05
        plan = FaultPlan((ReplicaFault(1, t_crash),))
        healthy = simulate_fleet(trace, num_replicas=3, max_batch=4,
                                 routing="least_outstanding", **COSTS)
        faulted = simulate_fleet(trace, num_replicas=3, max_batch=4,
                                 routing="least_outstanding",
                                 fault_plan=plan, **COSTS)
        # 100% completion despite the crash.
        assert faulted.num_completed == len(trace.requests)
        assert faulted.total_tokens == trace.total_gen_tokens
        assert np.isfinite(faulted.makespan)
        # The victims were re-placed, on survivors only.
        assert faulted.retried
        assert all(faulted.replica_of[rid] != 1 for rid in faulted.retried)
        dead = faulted.replica_stats[1]
        assert not dead.alive
        # Load shifted: survivors completed more than in the healthy run.
        assert faulted.request_counts[1] < healthy.request_counts[1]
        assert (sum(faulted.request_counts[i] for i in (0, 2))
                > sum(healthy.request_counts[i] for i in (0, 2)))
        # Failover is not free: the tail degrades.
        assert (faulted.ttft_percentile(trace, 99)
                > healthy.ttft_percentile(trace, 99))

    def test_discarded_tokens_accounted(self):
        trace = _trace(n=30, rate=300.0)
        t_crash = trace.requests[-1].arrival + 0.05
        plan = FaultPlan((ReplicaFault(0, t_crash),))
        rep = simulate_fleet(trace, num_replicas=2, max_batch=4,
                             fault_plan=plan, **COSTS)
        dead = rep.replica_stats[0]
        assert rep.tokens_discarded == dead.tokens_discarded > 0
        # Useful throughput counts only kept tokens.
        assert rep.total_tokens == trace.total_gen_tokens
        # A retried request's clock runs through the crash: its finish is
        # after the fault even if it arrived long before.
        assert rep.retried
        assert all(rep.finish_times[rid] >= t_crash for rid in rep.retried)

    def test_crash_before_any_arrival_just_shrinks_the_pool(self):
        trace = _trace(n=12)
        plan = FaultPlan((ReplicaFault(2, 0.0),))
        rep = simulate_fleet(trace, num_replicas=3, max_batch=4,
                             fault_plan=plan, **COSTS)
        assert rep.num_completed == len(trace.requests)
        assert rep.retried == frozenset()
        assert rep.request_counts[2] == 0

    def test_fault_plan_validated_against_pool(self):
        trace = _trace(n=5)
        plan = FaultPlan((ReplicaFault(5, 1.0),))
        with pytest.raises(ValueError, match="only has 2"):
            simulate_fleet(trace, num_replicas=2, max_batch=2,
                           fault_plan=plan, **COSTS)


class TestSlowdown:
    def test_slowdown_shifts_load_under_load_aware_routing(self):
        trace = _trace(n=60, rate=40.0)
        plan = FaultPlan((ReplicaFault(0, 0.0, kind="slowdown", factor=8.0),))
        rep = simulate_fleet(trace, num_replicas=3, max_batch=4,
                             routing="least_outstanding",
                             fault_plan=plan, **COSTS)
        counts = rep.request_counts
        assert counts[0] < counts[1] and counts[0] < counts[2]
        assert rep.num_completed == len(trace.requests)

    def test_slowdown_does_not_change_decisions(self):
        """On a burst trace (all queues populated up front) pricing
        changes but the schedulers' decision streams do not — routing is
        clock-blind under round_robin and no arrival can land mid-round.
        (With staggered arrivals slower rounds *do* re-batch late
        arrivals, so decision-invariance only holds for bursts.)"""
        trace = _trace(n=20, rate=1e6)
        plan = FaultPlan((ReplicaFault(1, 0.0, kind="slowdown", factor=4.0),))
        fast = simulate_fleet(trace, num_replicas=2, max_batch=3,
                              routing="round_robin", **COSTS)
        slow = simulate_fleet(trace, num_replicas=2, max_batch=3,
                              routing="round_robin", fault_plan=plan, **COSTS)
        assert slow.replica_of == fast.replica_of
        for a, b in zip(fast.schedulers, slow.schedulers):
            assert a.admission_order == b.admission_order
            assert a.retirement_order == b.retirement_order
        assert slow.makespan > fast.makespan


class TestRecovery:
    def test_recovered_replica_serves_again(self):
        """Crash replica 0 early, bring it back mid-trace: it must lose
        its in-flight work (requeued to survivors), then take fresh load
        after the recovery and complete requests on its new scheduler."""
        trace = _trace(n=120, rate=50.0)
        plan = FaultPlan((ReplicaFault(0, 0.3),
                          ReplicaFault(0, 1.0, kind="recover")))
        rep = simulate_fleet(trace, num_replicas=2, max_batch=4,
                             routing="least_outstanding", fault_plan=plan,
                             **COSTS)
        assert rep.num_completed == len(trace.requests)
        served_late = [rid for rid, t in rep.finish_times.items()
                       if rep.replica_of[rid] == 0 and t > 1.0]
        assert served_late, "recovered replica took no post-recovery load"
        # Its pre-crash incarnation is preserved for replay/debugging.
        assert 0 in rep.past_schedulers
        assert len(rep.past_schedulers[0]) == 1

    def test_recovery_beats_no_recovery(self):
        """Getting the replica back must not hurt: same crash, strictly
        more capacity afterwards, so the makespan never degrades."""
        trace = _trace(n=120, rate=50.0)
        crash_only = FaultPlan((ReplicaFault(0, 0.3),))
        with_recover = FaultPlan((ReplicaFault(0, 0.3),
                                  ReplicaFault(0, 1.0, kind="recover")))
        worse = simulate_fleet(trace, num_replicas=2, max_batch=4,
                               routing="least_outstanding",
                               fault_plan=crash_only, **COSTS)
        better = simulate_fleet(trace, num_replicas=2, max_batch=4,
                                routing="least_outstanding",
                                fault_plan=with_recover, **COSTS)
        assert better.makespan <= worse.makespan
        assert better.num_completed == worse.num_completed

    def test_crash_recover_crash_discards_twice(self):
        trace = _trace(n=100, rate=80.0)
        plan = FaultPlan((ReplicaFault(0, 0.3),
                          ReplicaFault(0, 0.6, kind="recover"),
                          ReplicaFault(0, 1.2)))
        rep = simulate_fleet(trace, num_replicas=2, max_batch=4,
                             routing="least_outstanding", fault_plan=plan,
                             **COSTS)
        assert rep.num_completed == len(trace.requests)
        assert len(rep.replica_lifetimes[0]) == 2  # up, down, up, down
        assert rep.replica_stats[0].alive is False
