"""Seed/Generator plumbing: every stochastic entry point accepts either
an int seed or a live numpy Generator, with identical results for equal
seeds (the RP003 determinism contract, end-to-end)."""

from __future__ import annotations

import numpy as np

from repro import SeedLike, as_generator
from repro.engine.generation import GenerationSession
from repro.engine.serving_sim import synthesize_trace
from repro.fleet.policies import PowerOfTwoChoices, resolve_routing_policy
from repro.fleet.sim import synthesize_prompts
from repro.model.config import ModelConfig
from repro.model.dense import DenseTransformer
from repro.model.encoder import EncoderTransformer
from repro.model.moe import MoELayer
from repro.model.sampling import SamplingConfig

TINY = ModelConfig(name="tiny", hidden=16, layers=2, heads=2, vocab=50,
                   max_seq=32)
TINY_ENC = ModelConfig(name="tiny-enc", hidden=16, layers=2, heads=2,
                       vocab=50, max_seq=32, decoder=False)


class TestAsGenerator:
    def test_int_seed_builds_fresh_generator(self):
        a, b = as_generator(7), as_generator(7)
        assert a is not b
        assert a.random() == b.random()

    def test_generator_passes_through_by_reference(self):
        rng = np.random.default_rng(3)
        assert as_generator(rng) is rng

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(11)
        a = as_generator(ss)
        b = np.random.default_rng(np.random.SeedSequence(11))
        assert a.random() == b.random()

    def test_seedlike_alias_exists(self):
        assert SeedLike is not None


class TestModelSeeds:
    def test_dense_weights_match_for_equal_streams(self):
        by_int = DenseTransformer(TINY, seed=5)
        by_gen = DenseTransformer(TINY, seed=np.random.default_rng(5))
        np.testing.assert_array_equal(by_int.wte, by_gen.wte)
        np.testing.assert_array_equal(by_int.layers[1].w_qkv,
                                      by_gen.layers[1].w_qkv)

    def test_encoder_accepts_generator(self):
        by_int = EncoderTransformer(TINY_ENC, seed=9)
        by_gen = EncoderTransformer(TINY_ENC, seed=np.random.default_rng(9))
        np.testing.assert_array_equal(by_int.wte, by_gen.wte)

    def test_moe_layer_accepts_generator(self):
        by_int = MoELayer(16, 4, seed=2)
        by_gen = MoELayer(16, 4, seed=np.random.default_rng(2))
        np.testing.assert_array_equal(by_int.w_gate, by_gen.w_gate)
        np.testing.assert_array_equal(by_int.w_fc, by_gen.w_fc)

    def test_one_generator_threads_through_hops(self):
        # Drawing model A then model B from one stream differs from two
        # fresh streams — proof the generator state actually advances.
        rng = np.random.default_rng(5)
        first = DenseTransformer(TINY, seed=rng)
        second = DenseTransformer(TINY, seed=rng)
        np.testing.assert_array_equal(first.wte,
                                      DenseTransformer(TINY, seed=5).wte)
        assert not np.array_equal(first.wte, second.wte)


class TestWorkloadSeeds:
    def test_trace_equal_for_equal_seeds(self):
        a = synthesize_trace(num_requests=20, arrival_rate=4.0, seed=13)
        b = synthesize_trace(num_requests=20, arrival_rate=4.0,
                             seed=np.random.default_rng(13))
        assert a == b

    def test_prompts_equal_for_equal_seeds(self):
        trace = synthesize_trace(num_requests=6, arrival_rate=4.0, seed=1)
        by_int = synthesize_prompts(trace, vocab=100, seed=21)
        by_gen = synthesize_prompts(trace, vocab=100,
                                    seed=np.random.default_rng(21))
        for rid in by_int:
            np.testing.assert_array_equal(by_int[rid], by_gen[rid])

    def test_end_to_end_stream(self):
        rng = np.random.default_rng(77)
        trace = synthesize_trace(num_requests=8, arrival_rate=4.0, seed=rng)
        prompts = synthesize_prompts(trace, vocab=64, seed=rng)
        assert set(prompts) == {r.request_id for r in trace.requests}
        # Replayable by reconstructing the same stream from the int seed.
        rng2 = np.random.default_rng(77)
        trace2 = synthesize_trace(num_requests=8, arrival_rate=4.0, seed=rng2)
        assert trace == trace2


class TestSessionAndPolicySeeds:
    def test_generation_session_sampling_reproducible(self):
        model = DenseTransformer(TINY, seed=0)
        cfg = SamplingConfig(temperature=0.8, top_k=5)
        outs = []
        for seed in (np.random.default_rng(4), 4):
            sess = GenerationSession(model, sampling=cfg, seed=seed)
            rid = sess.submit(np.array([1, 2, 3]), max_new_tokens=4)
            while sess.num_active or sess.num_waiting:
                sess.step()
            outs.append(sess.result(rid).output_ids)
        np.testing.assert_array_equal(outs[0], outs[1])

    def test_power_of_two_accepts_generator(self):
        by_int = PowerOfTwoChoices(seed=6)
        by_gen = PowerOfTwoChoices(seed=np.random.default_rng(6))
        assert by_int._rng.random() == by_gen._rng.random()

    def test_resolve_policy_still_builds_defaults(self):
        assert resolve_routing_policy("power_of_two").name == "power_of_two"
