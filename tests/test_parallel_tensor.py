"""Tests: tensor-parallel execution reproduces the dense reference exactly."""

import numpy as np
import pytest

from repro.comm import spmd
from repro.model import DenseTransformer, KVCache, ModelConfig
from repro.parallel import shard_layer, tp_forward, tp_spmd_forward

CFG = ModelConfig(name="tp-test", hidden=48, layers=2, heads=4, vocab=61, max_seq=32)


@pytest.fixture(scope="module")
def model():
    return DenseTransformer(CFG, seed=3)


class TestSharding:
    def test_qkv_columns_cover_weight(self, model):
        lw = model.layers[0]
        shards = [shard_layer(lw, CFG.heads, r, 4) for r in range(4)]
        # q/k/v column shards, re-concatenated per q,k,v, equal the original.
        wq, wk, wv = np.split(lw.w_qkv, 3, axis=1)
        got_q = np.concatenate([np.split(s.w_qkv, 3, axis=1)[0] for s in shards], axis=1)
        np.testing.assert_array_equal(got_q, wq)

    def test_row_shards_cover_w_out(self, model):
        lw = model.layers[0]
        shards = [shard_layer(lw, CFG.heads, r, 2) for r in range(2)]
        np.testing.assert_array_equal(
            np.concatenate([s.w_out for s in shards], axis=0), lw.w_out
        )

    def test_param_count_divides(self, model):
        lw = model.layers[0]
        s = shard_layer(lw, CFG.heads, 0, 4)
        assert s.w_qkv.size == lw.w_qkv.size // 4
        assert s.w_fc.size == lw.w_fc.size // 4
        assert s.w_proj.size == lw.w_proj.size // 4

    def test_invalid_sharding(self, model):
        lw = model.layers[0]
        with pytest.raises(ValueError):
            shard_layer(lw, CFG.heads, 4, 4)
        with pytest.raises(ValueError):
            shard_layer(lw, CFG.heads, 0, 3)  # 4 heads not divisible by 3


class TestTPEquivalence:
    @pytest.mark.parametrize("tp", [1, 2, 4])
    def test_logits_match_reference(self, model, tp):
        ids = np.array([[5, 9, 2, 7]])
        ref = model.forward(ids)
        got = tp_spmd_forward(tp, model, ids)
        np.testing.assert_allclose(got, ref, atol=1e-10)

    def test_all_ranks_agree(self, model):
        ids = np.array([[1, 2, 3]])
        results = spmd(2, tp_forward, model, ids)
        np.testing.assert_array_equal(results[0], results[1])

    def test_batched_input(self, model):
        ids = np.array([[5, 9], [2, 7], [1, 1]])
        ref = model.forward(ids)
        np.testing.assert_allclose(tp_spmd_forward(2, model, ids), ref, atol=1e-10)

    def test_tp_with_kv_cache_generation(self, model):
        """Cached TP decoding step-by-step equals full reference logits."""
        ids = np.array([[3, 1, 4, 1, 5]])
        ref = model.forward(ids)

        def prog(comm):
            cache = KVCache(CFG.layers)
            outs = []
            for t in range(ids.shape[1]):
                outs.append(tp_forward(comm, model, ids[:, t : t + 1], cache))
            return np.concatenate(outs, axis=1)

        results = spmd(2, prog)
        np.testing.assert_allclose(results[0], ref, atol=1e-10)

    def test_stage_local_execution_path(self, model):
        """layer_range/hidden_in compose: TP per stage equals full TP."""
        ids = np.array([[7, 8, 9]])
        ref = model.forward(ids)

        def prog(comm):
            h = tp_forward(comm, model, ids, layer_range=(0, 1), return_hidden=True)
            return tp_forward(
                comm, model, ids, layer_range=(1, CFG.layers), hidden_in=h
            )

        results = spmd(2, prog)
        np.testing.assert_allclose(results[0], ref, atol=1e-10)
