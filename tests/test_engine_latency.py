"""Tests for the dense end-to-end latency model."""

import pytest

from repro.engine import DenseLatencyModel, InferenceEngine, Workload
from repro.hardware import dgx_a100_cluster
from repro.model import DENSE_ZOO

CLUSTER = dgx_a100_cluster(8)


class TestWorkload:
    def test_token_accounting(self):
        w = Workload(batch=4, prompt_len=128, gen_tokens=8)
        assert w.total_tokens == 4 * 136
        assert w.generated_tokens == 32

    def test_validation(self):
        with pytest.raises(ValueError):
            Workload(batch=0, prompt_len=1, gen_tokens=1)
        with pytest.raises(ValueError):
            Workload(batch=1, prompt_len=0, gen_tokens=1)
        with pytest.raises(ValueError):
            Workload(batch=1, prompt_len=1, gen_tokens=-1)


class TestSingleGPU:
    def setup_method(self):
        self.model = DenseLatencyModel(DENSE_ZOO["gpt2-1.5b"], CLUSTER,
                                       tp=1, pp=1)

    def test_report_is_consistent(self):
        r = self.model.estimate(Workload(batch=1, prompt_len=128, gen_tokens=8))
        assert r.total_latency == pytest.approx(
            r.prompt_latency + 8 * r.token_latency
        )
        assert r.tokens_per_second == pytest.approx(8 / r.total_latency)

    def test_token_latency_bounded_by_weight_read(self):
        cfg = DENSE_ZOO["gpt2-1.5b"]
        r = self.model.estimate(Workload(batch=1, prompt_len=128, gen_tokens=1))
        ideal = cfg.param_bytes() / CLUSTER.gpu.mem_bw
        assert r.token_latency >= ideal
        assert r.token_latency < 10 * ideal  # and not absurdly above

    def test_no_tp_comm_on_single_gpu(self):
        r = self.model.estimate(Workload(batch=1, prompt_len=16, gen_tokens=1))
        assert r.comm_time_per_step == 0.0

    def test_larger_batch_more_throughput(self):
        r1 = self.model.estimate(Workload(batch=1, prompt_len=128, gen_tokens=8))
        r8 = self.model.estimate(Workload(batch=8, prompt_len=128, gen_tokens=8))
        assert r8.tokens_per_second > r1.tokens_per_second
        assert r8.token_latency < 4 * r1.token_latency  # sublinear latency growth


class TestTensorParallel:
    def test_tp_cuts_latency_but_adds_comm(self):
        cfg = DENSE_ZOO["gpt-neox-20b"]
        w = Workload(batch=1, prompt_len=128, gen_tokens=8)
        t1 = DenseLatencyModel(cfg, CLUSTER, tp=1).estimate(w)
        t4 = DenseLatencyModel(cfg, CLUSTER, tp=4).estimate(w)
        assert t4.token_latency < t1.token_latency
        assert t4.comm_time_per_step > 0
        # Scaling efficiency: below ideal 4x, above 1.5x.
        speedup = t1.token_latency / t4.token_latency
        assert 1.5 < speedup < 4.0

    def test_cross_node_tp_pays_inter_node_comm(self):
        """TP=16 spans two nodes (Fig. 6's 175B config); its all-reduce must
        cost visibly more than a single-node TP=8 one."""
        cfg = DENSE_ZOO["lm-175b"]
        w = Workload(batch=1, prompt_len=16, gen_tokens=1)
        r8 = DenseLatencyModel(cfg, CLUSTER, tp=8).estimate(w)
        r16 = DenseLatencyModel(cfg, CLUSTER, tp=16).estimate(w)
        assert r16.comm_time_per_step > r8.comm_time_per_step

    def test_flat_allreduce_slower_across_nodes(self):
        cfg = DENSE_ZOO["lm-175b"]
        w = Workload(batch=24, prompt_len=128, gen_tokens=1)
        hier = DenseLatencyModel(cfg, CLUSTER, tp=16).estimate(w)
        flat = DenseLatencyModel(cfg, CLUSTER, tp=16,
                                 hierarchical_comm=False).estimate(w)
        assert flat.comm_time_per_step > hier.comm_time_per_step

    def test_oversized_deployment_rejected(self):
        with pytest.raises(ValueError, match="GPUs"):
            DenseLatencyModel(DENSE_ZOO["lm-175b"], CLUSTER, tp=8, pp=32)

    def test_diminishing_returns_at_high_tp(self):
        cfg = DENSE_ZOO["gpt-j-6b"]  # small model: comm/overhead dominate
        w = Workload(batch=1, prompt_len=16, gen_tokens=1)
        t2 = DenseLatencyModel(cfg, CLUSTER, tp=2).estimate(w).token_latency
        t8 = DenseLatencyModel(cfg, CLUSTER, tp=8).estimate(w).token_latency
        assert t8 > t2 / 4  # nowhere near ideal scaling for a 6B model


class TestPipelineParallel:
    def setup_method(self):
        self.cfg = DENSE_ZOO["lm-175b"]
        self.w = Workload(batch=16, prompt_len=128, gen_tokens=16)

    def test_dynamic_beats_lockstep_generation(self):
        ds = DenseLatencyModel(self.cfg, CLUSTER, tp=8, pp=2)
        ft = DenseLatencyModel(self.cfg, CLUSTER, tp=8, pp=2,
                               lockstep_generation=True)
        rds, rft = ds.estimate(self.w), ft.estimate(self.w)
        assert rds.total_latency < rft.total_latency

    def test_hybrid_cuts_prompt_latency(self):
        plain = DenseLatencyModel(self.cfg, CLUSTER, tp=8, pp=2)
        hybrid = DenseLatencyModel(self.cfg, CLUSTER, tp=8, pp=2,
                                   hybrid_prompt_factor=4)
        rp, rh = plain.estimate(self.w), hybrid.estimate(self.w)
        assert rh.prompt_latency < rp.prompt_latency

    def test_more_stages_than_layers_rejected(self):
        with pytest.raises(ValueError):
            DenseLatencyModel(DENSE_ZOO["gpt2-1.5b"], CLUSTER, tp=1, pp=64)

    def test_gpu_count(self):
        m = DenseLatencyModel(self.cfg, CLUSTER, tp=8, pp=2)
        assert m.num_gpus == 16


class TestInferenceEngineFacade:
    def test_auto_planning(self):
        eng = InferenceEngine("lm-175b", CLUSTER)
        assert eng.tp == 8 and eng.pp == 2
        assert eng.num_gpus == 16

    def test_explicit_config_respected(self):
        eng = InferenceEngine("gpt-13b", CLUSTER, tp=2, pp=1)
        assert (eng.tp, eng.pp) == (2, 1)

    def test_estimate_and_best_throughput(self):
        eng = InferenceEngine("gpt-13b", CLUSTER, tp=1, pp=1)
        r = eng.estimate(batch=1, prompt_len=128, gen_tokens=8)
        assert r.total_latency > 0
        pt = eng.best_throughput(prompt_len=128, gen_tokens=8)
        assert pt.batch >= 1
        assert pt.tokens_per_second >= r.tokens_per_second

    def test_functional_model_guard(self):
        eng = InferenceEngine("gpt-13b", CLUSTER, tp=1, pp=1)
        with pytest.raises(ValueError, match="NumPy"):
            eng.build_functional_model()

    def test_functional_model_for_small_config(self):
        from repro.model import ModelConfig
        import numpy as np

        tiny = ModelConfig(name="t", hidden=32, layers=2, heads=4, vocab=50,
                           max_seq=16)
        eng = InferenceEngine(tiny, CLUSTER, tp=1, pp=1)
        m = eng.build_functional_model()
        assert m.forward(np.array([[1, 2]])).shape == (1, 2, 50)
