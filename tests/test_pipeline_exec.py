"""Tests: distributed pipelined generation == single-process generation."""

import numpy as np
import pytest

from repro.model import DenseTransformer, ModelConfig
from repro.parallel.pipeline_exec import pipeline_spmd_generate

CFG = ModelConfig(name="pipe-exec", hidden=32, layers=6, heads=4, vocab=71,
                  max_seq=40)


@pytest.fixture(scope="module")
def model():
    return DenseTransformer(CFG, seed=19)


class TestPipelinedGeneration:
    @pytest.mark.parametrize("stages", [1, 2, 3, 6])
    def test_matches_reference_generation(self, model, stages):
        prompt = np.array([[3, 1, 4], [1, 5, 9], [2, 6, 5], [3, 5, 8]])
        want = model.generate(prompt, 5)
        got = pipeline_spmd_generate(stages, model, prompt, 5)
        np.testing.assert_array_equal(got, want)

    def test_microbatch_split_invariance(self, model):
        """Results do not depend on how the batch splits into micro-batches."""
        prompt = np.array([[7, 2], [9, 9], [1, 3], [4, 4]])
        want = model.generate(prompt, 4)
        for mbs in (1, 2, 4):
            got = pipeline_spmd_generate(2, model, prompt, 4,
                                         num_microbatches=mbs)
            np.testing.assert_array_equal(got, want)

    def test_single_sequence(self, model):
        prompt = np.array([[11, 22, 33]])
        want = model.generate(prompt, 3)
        got = pipeline_spmd_generate(3, model, prompt, 3)
        np.testing.assert_array_equal(got, want)

    def test_uneven_stage_layer_split(self, model):
        # 6 layers over 4 stages -> [2,2,1,1]: still exact.
        prompt = np.array([[5, 6], [7, 8]])
        want = model.generate(prompt, 3)
        got = pipeline_spmd_generate(4, model, prompt, 3)
        np.testing.assert_array_equal(got, want)

    def test_validation(self, model):
        with pytest.raises(ValueError):
            pipeline_spmd_generate(2, model, np.array([[1], [2], [3]]), 2,
                                   num_microbatches=2)  # 3 % 2 != 0
        with pytest.raises(RuntimeError):
            # gen_tokens validated inside the rank program
            pipeline_spmd_generate(2, model, np.array([[1], [2]]), 0)
