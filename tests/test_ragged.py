"""Tests: ragged batched decoding equals solo decoding exactly."""

import numpy as np
import pytest

from repro.model import DenseTransformer, ModelConfig
from repro.model.ragged import RaggedDecoder

LEARNED = ModelConfig(name="rag-l", hidden=32, layers=3, heads=4, vocab=67,
                      max_seq=40)
ROTARY = ModelConfig(name="rag-r", hidden=32, layers=3, heads=4, vocab=67,
                     max_seq=40, pos_encoding="rotary")


@pytest.fixture(scope="module", params=["learned", "rotary"])
def model(request):
    cfg = LEARNED if request.param == "learned" else ROTARY
    return DenseTransformer(cfg, seed=37)


PROMPTS = [
    np.array([3, 1, 4, 1, 5]),
    np.array([9]),
    np.array([2, 6]),
    np.array([5, 3, 5, 8]),
]


class TestRaggedEquivalence:
    def test_prefill_logits_match_solo(self, model):
        dec = RaggedDecoder(model)
        logits = dec.prefill(PROMPTS)
        for i, p in enumerate(PROMPTS):
            solo = model.forward(p[None, :])[0, -1]
            np.testing.assert_allclose(logits[i], solo, atol=1e-10)

    def test_generate_matches_solo_generate(self, model):
        dec = RaggedDecoder(model)
        outs = dec.generate(PROMPTS, 6)
        for out, p in zip(outs, PROMPTS):
            solo = model.generate(p[None, :], 6)[0]
            np.testing.assert_array_equal(out, solo)

    def test_step_by_step_matches(self, model):
        dec = RaggedDecoder(model)
        logits = dec.prefill(PROMPTS)
        toks = logits.argmax(-1)
        logits2 = dec.step(toks)
        for i, p in enumerate(PROMPTS):
            seq = np.concatenate([p, [toks[i]]])
            solo = model.forward(seq[None, :])[0, -1]
            np.testing.assert_allclose(logits2[i], solo, atol=1e-10)

    def test_equal_length_prompts_also_work(self, model):
        prompts = [np.array([1, 2, 3]), np.array([4, 5, 6])]
        outs = RaggedDecoder(model).generate(prompts, 3)
        for out, p in zip(outs, prompts):
            np.testing.assert_array_equal(out, model.generate(p[None, :], 3)[0])

    def test_single_row(self, model):
        outs = RaggedDecoder(model).generate([np.array([7, 7])], 4)
        np.testing.assert_array_equal(
            outs[0], model.generate(np.array([[7, 7]]), 4)[0]
        )


class TestRaggedValidation:
    def test_double_prefill_rejected(self, model):
        dec = RaggedDecoder(model)
        dec.prefill([np.array([1])])
        with pytest.raises(RuntimeError, match="once"):
            dec.prefill([np.array([1])])

    def test_step_before_prefill(self, model):
        with pytest.raises(RuntimeError, match="prefill"):
            RaggedDecoder(model).step(np.array([1]))

    def test_wrong_token_count(self, model):
        dec = RaggedDecoder(model)
        dec.prefill([np.array([1]), np.array([2])])
        with pytest.raises(ValueError, match="expected 2"):
            dec.step(np.array([1]))

    def test_empty_inputs(self, model):
        with pytest.raises(ValueError):
            RaggedDecoder(model).prefill([])
        with pytest.raises(ValueError):
            RaggedDecoder(model).prefill([np.array([])])
        with pytest.raises(ValueError):
            RaggedDecoder(model).generate([np.array([1])], 0)

    def test_max_seq_enforced(self, model):
        dec = RaggedDecoder(model)
        long = np.ones(model.config.max_seq, dtype=int)
        dec.prefill([long])
        with pytest.raises(ValueError, match="max_seq"):
            dec.step(np.array([1]))
