"""Tests for gating and the two MoE dispatch formulations (Sec. V-C)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.model import (
    DenseTransformer,
    MoELayer,
    ModelConfig,
    MoESpec,
    build_expert_to_token_table,
    expert_capacity,
    top1_gating,
)

RNG = np.random.default_rng(11)


class TestCapacity:
    def test_ceil_formula(self):
        assert expert_capacity(16, 4, 1.0) == 4
        assert expert_capacity(17, 4, 1.0) == 5
        assert expert_capacity(2, 8, 1.0) == 1

    def test_factor_scales(self):
        assert expert_capacity(16, 4, 2.0) == 8
        assert expert_capacity(16, 4, 0.5) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            expert_capacity(0, 4, 1.0)
        with pytest.raises(ValueError):
            expert_capacity(4, 4, 0.0)


class TestTop1Gating:
    def test_argmax_routing_without_pressure(self):
        logits = np.zeros((4, 4))
        logits[np.arange(4), [2, 0, 3, 1]] = 10.0
        g = top1_gating(logits, capacity_factor=1.0)
        np.testing.assert_array_equal(g.token_expert, [2, 0, 3, 1])
        assert not g.dropped.any()
        assert (g.token_slot == 0).all()

    def test_capacity_drops_in_token_order(self):
        # All 6 tokens want expert 0; capacity = ceil(6/3)=2 keeps first 2.
        logits = np.zeros((6, 3))
        logits[:, 0] = 5.0
        g = top1_gating(logits)
        np.testing.assert_array_equal(g.token_expert[:2], [0, 0])
        np.testing.assert_array_equal(g.token_slot[:2], [0, 1])
        assert (g.token_expert[2:] == -1).all()

    def test_gate_prob_is_softmax_of_chosen(self):
        logits = RNG.normal(size=(5, 4))
        g = top1_gating(logits)
        p = np.exp(logits) / np.exp(logits).sum(-1, keepdims=True)
        np.testing.assert_allclose(g.gate_prob, p.max(-1), atol=1e-12)

    def test_one_hot_dispatch_shape_and_mass(self):
        logits = RNG.normal(size=(8, 4))
        g = top1_gating(logits)
        oh = g.one_hot_dispatch()
        assert oh.shape == (8, 4, g.capacity)
        kept = (~g.dropped).sum()
        assert oh.sum() == kept

    def test_expert_to_token_inverse(self):
        logits = RNG.normal(size=(32, 8))
        g = top1_gating(logits)
        tables = build_expert_to_token_table(g)
        for ex, toks in enumerate(tables):
            assert (g.token_expert[toks] == ex).all()
            # slot order within each expert
            assert (np.diff(g.token_slot[toks]) > 0).all() or toks.size <= 1
        flat = np.concatenate([t for t in tables]) if tables else np.array([])
        assert len(flat) == (~g.dropped).sum()

    def test_2d_required(self):
        with pytest.raises(ValueError):
            top1_gating(np.zeros(4))


class TestMoELayerEquivalence:
    """Dense-table dispatch == sparse one-hot einsum dispatch, exactly."""

    @pytest.mark.parametrize("tokens,experts", [(16, 4), (7, 3), (64, 8), (4, 8)])
    def test_formulations_agree(self, tokens, experts):
        layer = MoELayer(hidden=16, num_experts=experts, seed=3)
        x = RNG.normal(size=(tokens, 16))
        np.testing.assert_allclose(
            layer.forward_dense_table(x),
            layer.forward_sparse_einsum(x),
            atol=1e-12,
        )

    def test_3d_input_roundtrip(self):
        layer = MoELayer(hidden=8, num_experts=4, seed=2)
        x = RNG.normal(size=(2, 5, 8))
        out = layer.forward_dense_table(x)
        assert out.shape == x.shape
        np.testing.assert_allclose(
            out, layer.forward_sparse_einsum(x), atol=1e-12
        )

    def test_dropped_tokens_output_zero(self):
        layer = MoELayer(hidden=8, num_experts=4, capacity_factor=0.25, seed=2)
        x = RNG.normal(size=(16, 8))
        g = layer.route(x)
        assert g.dropped.any()  # tight capacity must drop something
        out = layer.forward_dense_table(x)
        np.testing.assert_array_equal(out[g.dropped], 0.0)

    def test_expert_ffn_bounds(self):
        layer = MoELayer(hidden=8, num_experts=2)
        with pytest.raises(IndexError):
            layer.expert_ffn(2, np.zeros((1, 8)))

    def test_construction_validation(self):
        with pytest.raises(ValueError):
            MoELayer(hidden=0, num_experts=2)
        with pytest.raises(ValueError):
            MoELayer(hidden=8, num_experts=0)

    def test_bad_input_rank(self):
        layer = MoELayer(hidden=8, num_experts=2)
        with pytest.raises(ValueError):
            layer.forward_dense_table(np.zeros(8))


class TestMoEInsideTransformer:
    def test_moe_transformer_runs_and_is_causal(self):
        cfg = ModelConfig(name="tiny-moe", hidden=16, layers=4, heads=2,
                          vocab=31, max_seq=32, moe=MoESpec(num_experts=4))
        base = DenseTransformer(cfg, seed=0)
        moe_blocks = {
            i: MoELayer(cfg.hidden, 4, capacity_factor=2.0, seed=10 + i)
            for i in range(0, cfg.layers, cfg.moe.every)
        }
        model = DenseTransformer(cfg, seed=0, moe_layers=moe_blocks)
        ids = np.array([[1, 2, 3, 4]])
        logits = model.forward(ids)
        assert logits.shape == (1, 4, 31)
        # differs from pure-dense model
        assert not np.allclose(logits, base.forward(ids))
        # causality preserved through MoE routing
        other = model.forward(np.array([[1, 2, 3, 29]]))
        np.testing.assert_allclose(logits[0, :3], other[0, :3], atol=1e-12)


@given(
    tokens=st.integers(min_value=1, max_value=40),
    experts=st.integers(min_value=1, max_value=8),
    factor=st.sampled_from([0.5, 1.0, 2.0]),
)
@settings(max_examples=40, deadline=None)
def test_gating_invariants(tokens, experts, factor):
    """Properties: no expert over capacity; slots unique per expert;
    kept tokens have valid slots; dropped tokens have -1 everywhere."""
    logits = np.random.default_rng(tokens * 100 + experts).normal(
        size=(tokens, experts)
    )
    g = top1_gating(logits, capacity_factor=factor)
    for ex in range(experts):
        slots = g.token_slot[g.token_expert == ex]
        assert len(slots) <= g.capacity
        assert len(np.unique(slots)) == len(slots)
        assert (slots >= 0).all() and (slots < g.capacity).all()
    assert (g.token_slot[g.dropped] == -1).all()


@given(
    tokens=st.integers(min_value=1, max_value=24),
    experts=st.sampled_from([2, 4]),
)
@settings(max_examples=20, deadline=None)
def test_dispatch_equivalence_property(tokens, experts):
    """Property: both dispatch formulations agree for arbitrary shapes."""
    layer = MoELayer(hidden=8, num_experts=experts, seed=tokens)
    x = np.random.default_rng(tokens).normal(size=(tokens, 8))
    np.testing.assert_allclose(
        layer.forward_dense_table(x), layer.forward_sparse_einsum(x), atol=1e-12
    )
