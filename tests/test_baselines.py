"""Tests for the baseline implementations (every Sec. VII comparator)."""

import pytest

from repro.baselines import (
    CPUOnlyBaseline,
    FasterTransformerBaseline,
    GPUOnlyBaseline,
    PyTorchMoEBaseline,
    encoder_latency,
    et_comparison,
    kernel_ablation_configs,
    layer_latency_sweep,
)
from repro.hardware import A100_40GB, dgx_a100_cluster, lambda_a6000_workstation
from repro.model import BERT_ZOO, DENSE_ZOO, MOE_PARALLELISM, MOE_ZOO, get_model

CLUSTER = dgx_a100_cluster(8)
WS = lambda_a6000_workstation(1)


class TestFasterTransformer:
    def test_estimate_runs(self):
        ft = FasterTransformerBaseline(DENSE_ZOO["gpt-13b"], CLUSTER)
        r = ft.estimate(batch=1, prompt_len=128, gen_tokens=8)
        assert r.total_latency > 0

    def test_slower_than_deepspeed(self):
        from repro.engine import InferenceEngine

        ft = FasterTransformerBaseline(DENSE_ZOO["gpt-13b"], CLUSTER)
        ds = InferenceEngine("gpt-13b", CLUSTER, tp=1, pp=1)
        rf = ft.estimate(batch=1, prompt_len=128, gen_tokens=8)
        rd = ds.estimate(batch=1, prompt_len=128, gen_tokens=8)
        assert rf.token_latency > rd.token_latency

    def test_best_throughput_sweep(self):
        ft = FasterTransformerBaseline(DENSE_ZOO["gpt-13b"], CLUSTER)
        pt = ft.best_throughput(prompt_len=128, gen_tokens=8)
        assert pt.batch >= 1 and pt.tokens_per_second > 0


class TestPyTorchMoE:
    def test_baseline_properties(self):
        name = "1.3b-moe-128"
        b = PyTorchMoEBaseline(MOE_ZOO[name], dgx_a100_cluster(16),
                               MOE_PARALLELISM[name])
        assert b.token_latency() > 0
        brk = b.step_breakdown()
        assert brk.gating_time > 0
        assert b.effective_bandwidth_per_gpu() > 0


class TestMegatronAblation:
    def test_three_configs_ordered(self):
        configs = kernel_ablation_configs()
        assert [c.name for c in configs] == [
            "Megatron-FP16",
            "Megatron+DeepFusion",
            "Megatron+DeepFusion+SBI-GeMM",
        ]

    def test_each_step_improves_small_batch(self):
        """Fig. 10a: deep-fusion helps, custom GeMM helps further."""
        sweep = layer_latency_sweep(DENSE_ZOO["gpt2-1.5b"], A100_40GB,
                                    batches=(1, 4, 8))
        base, fused, full = sweep.values()
        for b in (1, 4, 8):
            assert fused[b] < base[b]
            assert full[b] <= fused[b]

    def test_sbi_gain_vanishes_at_large_batch(self):
        sweep = layer_latency_sweep(DENSE_ZOO["gpt2-1.5b"], A100_40GB,
                                    batches=(1, 64))
        _, fused, full = sweep.values()
        gain_small = fused[1] / full[1]
        gain_large = fused[64] / full[64]
        assert gain_small > gain_large
        assert gain_large == pytest.approx(1.0, abs=0.05)


class TestET:
    def test_fig12_shape(self):
        """DeepSpeed faster on both; bigger gain on the smaller model."""
        rows = et_comparison()
        assert rows["distilbert"]["speedup"] > rows["bert-large"]["speedup"]
        assert 1.4 < rows["distilbert"]["speedup"] < 2.3
        assert 1.2 < rows["bert-large"]["speedup"] < 1.8

    def test_decoder_rejected(self):
        with pytest.raises(ValueError, match="decoder"):
            encoder_latency(DENSE_ZOO["gpt-13b"])

    def test_latency_scales_with_layers(self):
        d = encoder_latency(BERT_ZOO["distilbert"])
        b = encoder_latency(BERT_ZOO["bert-base"])
        assert b == pytest.approx(2 * d, rel=0.05)  # 12 vs 6 equal layers


class TestCPUOnly:
    def test_capacity_limit_near_50b_class_on_workstation(self):
        """The 10x claim: CPU-only (FP32, 256 GB) caps below ~60B."""
        c = CPUOnlyBaseline(get_model("gpt-50b"), WS)
        assert c.max_model_params() < 60e9
        assert not CPUOnlyBaseline(get_model("gpt-87b"), WS).fits()

    def test_throughput_orders_of_magnitude_below_gpu(self):
        c = CPUOnlyBaseline(get_model("gpt-neox-20b"), WS)
        assert c.fits()
        t = c.tflops(batch=4, seq_len=2048)
        assert t < 3.0  # vs ~84 on the GPU (>25x, Sec. VII-D2)

    def test_oversized_model_raises(self):
        c = CPUOnlyBaseline(get_model("lm-530b"), WS)
        with pytest.raises(ValueError, match="DRAM"):
            c.forward_pass_time(batch=1, seq_len=128)


class TestGPUOnly:
    def test_20b_is_the_a6000_ceiling(self):
        """The 25x denominator: 20B fits one A6000, 50B does not."""
        assert GPUOnlyBaseline(get_model("gpt-neox-20b"), WS).fits()
        assert not GPUOnlyBaseline(get_model("gpt-50b"), WS).fits()

    def test_max_batch_tiny_for_borderline_model(self):
        g = GPUOnlyBaseline(get_model("gpt-neox-20b"), WS)
        assert 0 <= g.max_batch(2048) <= 3

    def test_forward_and_throughput(self):
        g = GPUOnlyBaseline(get_model("gpt-13b"), WS)
        t = g.forward_pass_time(batch=1, tokens_per_seq=128)
        assert t > 0
        assert g.generation_throughput(prompt_len=128, gen_tokens=8) > 0

    def test_oversized_model_raises(self):
        g = GPUOnlyBaseline(get_model("lm-530b"), WS)
        with pytest.raises(ValueError, match="does not fit"):
            g.forward_pass_time(batch=1, tokens_per_seq=1)
