"""Tests for the result-archive comparison tool."""

import json

import pytest

from repro.bench.compare import Delta, compare_results, format_deltas, load_archive


def archive(rows_a, rows_b=None):
    return {
        "t": {
            "exp_id": "t",
            "title": "T",
            "columns": ["model", "x", "y"],
            "rows": rows_a,
            "notes": [],
        }
    }


class TestCompare:
    def test_no_change(self):
        a = archive([{"model": "m", "x": 1.0, "y": 2.0}])
        assert compare_results(a, a) == []

    def test_detects_moved_cell(self):
        before = archive([{"model": "m", "x": 1.0, "y": 2.0}])
        after = archive([{"model": "m", "x": 1.0, "y": 2.5}])
        deltas = compare_results(before, after)
        assert len(deltas) == 1
        d = deltas[0]
        assert (d.column, d.before, d.after) == ("y", 2.0, 2.5)
        assert d.rel_change == pytest.approx(0.25)

    def test_threshold_filters_noise(self):
        before = archive([{"model": "m", "x": 100.0, "y": 2.0}])
        after = archive([{"model": "m", "x": 100.5, "y": 2.0}])
        assert compare_results(before, after, threshold=0.02) == []
        assert len(compare_results(before, after, threshold=0.001)) == 1

    def test_new_row_reported(self):
        before = archive([{"model": "m", "x": 1.0, "y": 1.0}])
        after = archive([
            {"model": "m", "x": 1.0, "y": 1.0},
            {"model": "n", "x": 3.0, "y": 4.0},
        ])
        deltas = compare_results(before, after)
        assert {d.column for d in deltas} == {"x", "y"}
        assert all("model=n" in d.row_key for d in deltas)

    def test_rows_matched_by_identity_not_order(self):
        before = archive([
            {"model": "a", "x": 1.0, "y": 1.0},
            {"model": "b", "x": 2.0, "y": 2.0},
        ])
        after = archive([
            {"model": "b", "x": 2.0, "y": 2.0},
            {"model": "a", "x": 1.0, "y": 1.0},
        ])
        assert compare_results(before, after) == []

    def test_booleans_ignored(self):
        before = archive([{"model": "m", "x": True, "y": 1.0}])
        after = archive([{"model": "m", "x": False, "y": 1.0}])
        assert compare_results(before, after) == []

    def test_format(self):
        d = Delta("t", "model=m", "y", 2.0, 3.0)
        out = format_deltas([d])
        assert "y" in out and "+50.0%" in out
        assert format_deltas([]) == "no significant changes"

    def test_zero_baseline(self):
        d = Delta("t", "k", "c", 0.0, 5.0)
        assert d.rel_change == float("inf")
        assert Delta("t", "k", "c", 0.0, 0.0).rel_change == 0.0

    def test_load_archive_roundtrip(self, tmp_path):
        from repro.bench import run

        results = run(["table2"])
        path = tmp_path / "a.json"
        path.write_text(json.dumps([r.to_json_dict() for r in results]))
        loaded = load_archive(path)
        assert "table2" in loaded
        assert compare_results(loaded, loaded) == []

    def test_end_to_end_detects_calibration_move(self, tmp_path):
        """Archive fig12, perturb one number, diff catches it."""
        from repro.bench import run

        results = [r.to_json_dict() for r in run(["fig12"])]
        before = {r["exp_id"]: r for r in results}
        after = json.loads(json.dumps(results))
        after[0]["rows"][0]["speedup"] *= 1.3
        deltas = compare_results(before, {r["exp_id"]: r for r in after})
        assert any(d.column == "speedup" for d in deltas)

    def test_validation(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text('{"not": "a list"}')
        with pytest.raises(ValueError):
            load_archive(p)
        with pytest.raises(ValueError):
            compare_results({}, {}, threshold=-1)
