"""Tests for the functional CUDA-graph capture/replay mechanism."""

import numpy as np
import pytest

from repro.kernels.cuda_graph import GraphMismatch, GraphRunner
from repro.kernels.functional import gelu, layer_norm


def make_runner():
    g = np.ones(8)
    b = np.zeros(8)
    w = np.random.default_rng(3).normal(size=(8, 8))
    return GraphRunner([
        ("ln", lambda x: layer_norm(x, g, b)),
        ("gemm", lambda x: x @ w),
        ("gelu", gelu),
    ]), w, g, b


class TestGraphRunner:
    def test_capture_then_replay_same_result(self):
        runner, w, g, b = make_runner()
        x = np.random.default_rng(1).normal(size=(2, 8))
        first = runner(x)
        second = runner(x)
        np.testing.assert_array_equal(first, second)
        assert runner.captures == 1
        assert runner.graph_for((2, 8)).replays == 2

    def test_matches_eager_pipeline(self):
        runner, w, g, b = make_runner()
        x = np.random.default_rng(2).normal(size=(3, 8))
        eager = gelu(layer_norm(x, g, b) @ w)
        np.testing.assert_allclose(runner(x), eager, atol=1e-12)

    def test_new_shape_captures_new_graph(self):
        runner, *_ = make_runner()
        runner(np.zeros((1, 8)))
        runner(np.zeros((4, 8)))
        runner(np.zeros((1, 8)))
        assert runner.num_graphs == 2
        assert runner.captures == 2

    def test_direct_replay_shape_check(self):
        runner, *_ = make_runner()
        runner(np.zeros((2, 8)))
        graph = runner.graph_for((2, 8))
        with pytest.raises(GraphMismatch):
            graph.replay(np.zeros((3, 8)))

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            GraphRunner([])

    def test_non_array_stage_rejected(self):
        runner = GraphRunner([("bad", lambda x: "nope")])
        with pytest.raises(TypeError, match="bad"):
            runner(np.zeros((1, 2)))

    def test_unknown_shape_lookup(self):
        runner, *_ = make_runner()
        with pytest.raises(KeyError):
            runner.graph_for((9, 9))


class TestChromeTrace:
    def test_export_structure(self):
        from repro.simcore import Timeline

        tl = Timeline()
        tl.record("gpu0", 0.0, 1e-3, "fwd")
        tl.record("pcie", 2e-3, 5e-3, "fetch")
        events = tl.to_chrome_trace()
        assert len(events) == 2
        by_name = {e["name"]: e for e in events}
        assert by_name["fwd"]["ph"] == "X"
        assert by_name["fwd"]["dur"] == pytest.approx(1000.0)
        assert by_name["fetch"]["ts"] == pytest.approx(2000.0)
        # Lanes map to distinct tids.
        assert by_name["fwd"]["tid"] != by_name["fetch"]["tid"]

    def test_bad_unit(self):
        from repro.simcore import Timeline

        with pytest.raises(ValueError):
            Timeline().to_chrome_trace(time_unit=0)
