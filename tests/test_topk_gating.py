"""Tests for top-k gating and top-k MoE dispatch (GShard-style routing)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.comm import spmd
from repro.model import MoELayer, topk_gating
from repro.parallel import ep_moe_forward

RNG = np.random.default_rng(31)


class TestTopKGating:
    def test_k1_matches_top1_choices(self):
        from repro.model import top1_gating

        logits = RNG.normal(size=(12, 6))
        g1 = top1_gating(logits)
        gk = topk_gating(logits, 1)
        np.testing.assert_array_equal(gk.token_expert[:, 0], g1.token_expert)

    def test_choices_ordered_by_probability(self):
        logits = RNG.normal(size=(10, 8))
        g = topk_gating(logits, 3, capacity_factor=10.0)  # no drops
        probs = np.exp(logits) / np.exp(logits).sum(-1, keepdims=True)
        for t in range(10):
            chosen_p = probs[t, g.token_expert[t]]
            assert (np.diff(chosen_p) <= 1e-12).all()

    def test_weights_renormalize_over_kept(self):
        logits = RNG.normal(size=(16, 4))
        g = topk_gating(logits, 2, capacity_factor=10.0)
        sums = g.gate_weight.sum(axis=-1)
        np.testing.assert_allclose(sums, 1.0, atol=1e-12)

    def test_secondary_expert_survives_when_primary_full(self):
        # All tokens prefer expert 0 but spread their second choices; the
        # overflow should land on the second choices instead of dropping.
        logits = np.zeros((8, 4))
        logits[:, 0] = 9.0
        for t in range(8):
            logits[t, 1 + t % 3] = 5.0
        g = topk_gating(logits, 2, capacity_factor=1.0)
        first_choice_kept = (g.token_expert[:, 0] == 0).sum()
        assert first_choice_kept == g.capacity  # expert 0 saturates
        overflow = np.flatnonzero(g.token_expert[:, 0] != 0)
        assert overflow.size > 0
        # Overflowing tokens still reach their (varied) secondary experts.
        assert g.kept_pairs()[overflow].any(axis=-1).all()

    def test_capacity_never_exceeded(self):
        logits = RNG.normal(size=(40, 4))
        g = topk_gating(logits, 2, capacity_factor=1.0)
        flat = g.token_expert.ravel()
        for ex in range(4):
            assert (flat == ex).sum() <= g.capacity

    def test_validation(self):
        with pytest.raises(ValueError):
            topk_gating(np.zeros((4, 3)), 0)
        with pytest.raises(ValueError):
            topk_gating(np.zeros((4, 3)), 4)
        with pytest.raises(ValueError):
            topk_gating(np.zeros(4), 1)


class TestTopKMoELayer:
    @pytest.mark.parametrize("tokens,k", [(8, 2), (17, 2), (8, 3)])
    def test_dense_table_matches_per_token_reference(self, tokens, k):
        layer = MoELayer(hidden=16, num_experts=6, capacity_factor=2.0, seed=9)
        x = RNG.normal(size=(tokens, 16))
        np.testing.assert_allclose(
            layer.forward_topk(x, k),
            layer.forward_topk_reference(x, k),
            atol=1e-12,
        )

    def test_k2_differs_from_k1(self):
        layer = MoELayer(hidden=8, num_experts=4, capacity_factor=4.0, seed=1)
        x = RNG.normal(size=(10, 8))
        assert not np.allclose(layer.forward_topk(x, 1), layer.forward_topk(x, 2))

    def test_output_is_convex_combination_scale(self):
        # With uniform experts (identical weights), any k gives the same
        # output because the combination weights sum to one.
        layer = MoELayer(hidden=8, num_experts=4, capacity_factor=8.0, seed=2)
        for e in range(1, 4):
            layer.w_fc[e] = layer.w_fc[0]
            layer.w_proj[e] = layer.w_proj[0]
        x = RNG.normal(size=(6, 8))
        np.testing.assert_allclose(
            layer.forward_topk(x, 1), layer.forward_topk(x, 3), atol=1e-12
        )


class TestTopKExpertParallel:
    @pytest.mark.parametrize("ep,k", [(2, 2), (4, 2), (2, 3)])
    def test_distributed_matches_local(self, ep, k):
        layer = MoELayer(hidden=16, num_experts=8, capacity_factor=4.0, seed=5)
        x = RNG.normal(size=(12, 16))
        ref = layer.forward_topk(x, k)

        results = spmd(ep, lambda comm: ep_moe_forward(comm, layer, x, k=k))
        for got in results:
            np.testing.assert_allclose(got, ref, atol=1e-12)


@given(
    tokens=st.integers(min_value=1, max_value=24),
    experts=st.sampled_from([4, 8]),
    k=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=25, deadline=None)
def test_topk_invariants(tokens, experts, k):
    """Properties: per-expert load <= capacity; weights in [0,1] summing to
    <= 1 (== 1 when any choice kept); slots unique per expert."""
    logits = np.random.default_rng(tokens * 7 + experts + k).normal(
        size=(tokens, experts)
    )
    g = topk_gating(logits, k)
    flat_e = g.token_expert.ravel()
    flat_s = g.token_slot.ravel()
    for ex in range(experts):
        slots = flat_s[flat_e == ex]
        assert len(slots) <= g.capacity
        assert len(np.unique(slots)) == len(slots)
    assert (g.gate_weight >= 0).all() and (g.gate_weight <= 1 + 1e-12).all()
    kept_any = g.kept_pairs().any(axis=-1)
    np.testing.assert_allclose(
        g.gate_weight.sum(-1)[kept_any], 1.0, atol=1e-9
    )
    assert (g.gate_weight.sum(-1)[~kept_any] == 0).all()


class TestVectorizedTopK:
    """The vectorized formulation equals the greedy loop exactly."""

    @pytest.mark.parametrize("tokens,experts,k,cf", [
        (16, 4, 2, 1.0), (33, 8, 3, 0.5), (7, 3, 1, 2.0), (64, 16, 2, 0.25),
    ])
    def test_matches_loop_version(self, tokens, experts, k, cf):
        from repro.model import topk_gating_vectorized

        logits = np.random.default_rng(tokens + experts).normal(
            size=(tokens, experts))
        a = topk_gating(logits, k, capacity_factor=cf)
        b = topk_gating_vectorized(logits, k, capacity_factor=cf)
        np.testing.assert_array_equal(a.token_expert, b.token_expert)
        np.testing.assert_array_equal(a.token_slot, b.token_slot)
        np.testing.assert_allclose(a.gate_weight, b.gate_weight, atol=1e-12)
        assert a.capacity == b.capacity

    @given(
        tokens=st.integers(min_value=1, max_value=40),
        experts=st.sampled_from([2, 4, 8]),
        k=st.integers(min_value=1, max_value=2),
        cf=st.sampled_from([0.25, 1.0, 4.0]),
    )
    @settings(max_examples=40, deadline=None)
    def test_equivalence_property(self, tokens, experts, k, cf):
        from repro.model import topk_gating_vectorized

        logits = np.random.default_rng(tokens * 31 + experts).normal(
            size=(tokens, experts))
        a = topk_gating(logits, k, capacity_factor=cf)
        b = topk_gating_vectorized(logits, k, capacity_factor=cf)
        np.testing.assert_array_equal(a.token_expert, b.token_expert)
        np.testing.assert_array_equal(a.token_slot, b.token_slot)

    @given(
        tokens=st.integers(min_value=1, max_value=48),
        experts=st.sampled_from([4, 8, 16]),
        k=st.integers(min_value=1, max_value=3),
        skew=st.sampled_from([0.8, 1.2, 1.8]),
        cf=st.sampled_from([0.25, 1.0, 2.0]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_equivalence_on_skewed_gates(self, tokens, experts, k, skew,
                                         cf, seed):
        """Zipf-skewed logits drive heavy capacity overflow — the regime
        where the two formulations' tie-breaking could diverge."""
        from repro.model import topk_gating_vectorized
        from repro.moe_placement import zipf_gate_logits

        logits = zipf_gate_logits(tokens, experts, skew, seed=seed)
        a = topk_gating(logits, min(k, experts), capacity_factor=cf)
        b = topk_gating_vectorized(logits, min(k, experts),
                                   capacity_factor=cf)
        np.testing.assert_array_equal(a.token_expert, b.token_expert)
        np.testing.assert_array_equal(a.token_slot, b.token_slot)
        np.testing.assert_array_equal(a.gate_weight, b.gate_weight)
        assert a.capacity == b.capacity

    @pytest.mark.parametrize("tokens,experts,k,cf", [
        (32, 4, 1, 0.25),   # hard overflow: capacity 2 of 32 demands
        (16, 8, 2, 0.125),  # capacity 1 everywhere
        (24, 4, 3, 1.0),
    ])
    def test_equivalence_all_tokens_one_expert(self, tokens, experts, k, cf):
        """Degenerate gate: every token's top choice is the same expert,
        so nearly everything overflows into drops or secondary choices."""
        from repro.model import topk_gating_vectorized

        logits = np.random.default_rng(3).normal(size=(tokens, experts))
        logits[:, 0] += 50.0  # expert 0 dominates every token
        a = topk_gating(logits, k, capacity_factor=cf)
        b = topk_gating_vectorized(logits, k, capacity_factor=cf)
        np.testing.assert_array_equal(a.token_expert, b.token_expert)
        np.testing.assert_array_equal(a.token_slot, b.token_slot)
        np.testing.assert_array_equal(a.gate_weight, b.gate_weight)
        # The degenerate regime really overflowed: expert 0 saturated.
        kept0 = (a.token_expert == 0) & a.kept_pairs()
        assert kept0.sum() == a.capacity

    def test_vectorized_is_faster_at_scale(self):
        """The point of vectorizing (guide: avoid Python loops)."""
        import time

        from repro.model import topk_gating_vectorized

        logits = np.random.default_rng(0).normal(size=(16384, 64))

        def best_of(fn, reps=3):
            times = []
            for _ in range(reps):
                t0 = time.perf_counter()
                fn(logits, 2)
                times.append(time.perf_counter() - t0)
            return min(times)

        best_of(topk_gating_vectorized, reps=1)  # warm-up
        loop_t = best_of(topk_gating)
        vec_t = best_of(topk_gating_vectorized)
        assert vec_t < loop_t
