"""Tests for the MoE latency model (Sec. V mechanisms)."""

import pytest

from repro.engine import MoEInferenceEngine, MoELatencyModel
from repro.hardware import dgx_a100_cluster
from repro.model import MOE_PARALLELISM, MOE_ZOO

CLUSTER = dgx_a100_cluster(32)  # 256 GPUs


def mk(name, optimized=True):
    return MoELatencyModel(MOE_ZOO[name], CLUSTER, MOE_PARALLELISM[name],
                           optimized=optimized)


class TestBreakdown:
    def test_components_positive_and_sum(self):
        b = mk("24b-moe-128").token_step(batch=8)
        parts = [b.dense_time, b.gating_time, b.expert_time,
                 b.alltoall_time, b.allreduce_time]
        assert all(p >= 0 for p in parts)
        assert b.total == pytest.approx(sum(parts))

    def test_gating_optimization_factor(self):
        """Sec. V-C claims ~6x lower MoE kernel latency."""
        opt = mk("24b-moe-128").token_step(batch=8)
        base = mk("24b-moe-128", optimized=False).token_step(batch=8)
        factor = base.moe_kernel_time / opt.moe_kernel_time
        assert factor > 4.0

    def test_pcc_shrinks_alltoall(self):
        opt = mk("24b-moe-128").token_step(batch=8)
        base = mk("24b-moe-128", optimized=False).token_step(batch=8)
        assert opt.alltoall_time < base.alltoall_time / 3

    def test_expert_slicing_speeds_experts(self):
        # 24b-moe uses expert-slicing 2; the baseline cannot use it.
        opt = mk("24b-moe-128").token_step(batch=8)
        base = mk("24b-moe-128", optimized=False).token_step(batch=8)
        assert opt.expert_time < base.expert_time

    def test_batch_validation(self):
        with pytest.raises(ValueError):
            mk("1.3b-moe-128").token_step(batch=0)

    def test_non_moe_model_rejected(self):
        from repro.model import DENSE_ZOO

        with pytest.raises(ValueError, match="not an MoE"):
            MoELatencyModel(DENSE_ZOO["gpt-13b"], CLUSTER,
                            MOE_PARALLELISM["1.3b-moe-128"])

    def test_cluster_too_small_rejected(self):
        small = dgx_a100_cluster(2)
        with pytest.raises(ValueError, match="GPUs"):
            MoELatencyModel(MOE_ZOO["24b-moe-128"], small,
                            MOE_PARALLELISM["24b-moe-128"])


class TestLatencyShape:
    @pytest.mark.parametrize("name", list(MOE_ZOO))
    def test_optimized_beats_baseline(self, name):
        opt = mk(name).token_latency(batch=8)
        base = mk(name, optimized=False).token_latency(batch=8)
        assert base / opt > 2.0

    def test_latency_grows_with_model_size(self):
        a = mk("1.3b-moe-128").token_latency(batch=8)
        b = mk("47b-moe-128").token_latency(batch=8)
        assert b > a

    def test_bandwidth_metric_higher_when_optimized(self):
        opt = mk("1.3b-moe-128").effective_bandwidth_per_gpu(batch=8)
        base = mk("1.3b-moe-128", optimized=False).effective_bandwidth_per_gpu(8)
        assert opt > 2 * base
        assert opt < CLUSTER.gpu.mem_bw  # never above peak

    def test_aggregate_bandwidth_scales_with_gpus(self):
        m = mk("24b-moe-128")
        assert m.aggregate_bandwidth(batch=8) == pytest.approx(
            m.effective_bandwidth_per_gpu(8) * 256
        )


class TestFacade:
    def test_engine_defaults_to_table2(self):
        eng = MoEInferenceEngine("24b-moe-128")
        assert eng.parallelism.num_gpus == 256
        assert eng.token_latency() > 0

    def test_throughput_per_gpu(self):
        eng = MoEInferenceEngine("1.3b-moe-128")
        tput = eng.throughput_per_gpu(batch=8)
        assert tput == pytest.approx(
            8 / eng.token_latency(batch=8) / 128
        )

    def test_dense_model_rejected(self):
        with pytest.raises(ValueError):
            MoEInferenceEngine("gpt-13b")
