"""Unit tests for hardware specs (Sec. VII-A4 testbeds)."""

import pytest

from repro.hardware import (
    A100_40GB,
    A6000,
    DType,
    GB,
    GPU_REGISTRY,
    INFINIBAND_HDR,
    NVLINK3,
    NVME_RAID,
    PCIE4_X16,
    V100_32GB,
    XEON_8280,
)


class TestDType:
    def test_itemsizes(self):
        assert DType.FP32.itemsize == 4
        assert DType.FP16.itemsize == 2
        assert DType.INT8.itemsize == 1

    def test_cacheline_pack_matches_paper(self):
        # Sec. III-C3: M=2 for half precision, M=4 for INT8.
        assert DType.FP16.cacheline_pack == 2
        assert DType.INT8.cacheline_pack == 4

    def test_pack_times_itemsize_is_constant(self):
        # Every dtype fills the same number of bytes per thread-read.
        packs = {d.itemsize * d.cacheline_pack for d in DType}
        assert packs == {4}


class TestGPUSpec:
    def test_registry_contains_all_testbed_gpus(self):
        assert set(GPU_REGISTRY) == {"A100-40GB", "A6000-48GB", "V100-32GB-SXM"}

    def test_a100_published_numbers(self):
        assert A100_40GB.memory_bytes == pytest.approx(40 * GB)
        assert A100_40GB.mem_bw == pytest.approx(1555 * GB)
        assert A100_40GB.fp16_flops == pytest.approx(312e12)
        assert A100_40GB.int8_ops == pytest.approx(2 * A100_40GB.fp16_flops)

    def test_a6000_peak_matches_paper_quote(self):
        # Paper: "84 TFLOPS, 54% of theoretical peak (158.4 TFLOPS)".
        assert A6000.fp16_flops == pytest.approx(158.4e12)

    def test_peak_flops_dispatch(self):
        assert V100_32GB.peak_flops(DType.FP16) == V100_32GB.fp16_flops
        assert V100_32GB.peak_flops(DType.FP32) == V100_32GB.fp32_flops
        assert A100_40GB.peak_flops(DType.INT8) == A100_40GB.int8_ops

    def test_ideal_weight_read_time(self):
        t = A100_40GB.ideal_weight_read_time(1555 * GB)
        assert t == pytest.approx(1.0)

    def test_with_overrides_returns_new_spec(self):
        fast = A100_40GB.with_overrides(mem_bw=2000 * GB)
        assert fast.mem_bw == 2000 * GB
        assert A100_40GB.mem_bw == pytest.approx(1555 * GB)
        assert fast.name == A100_40GB.name

    def test_launch_overhead_is_microseconds(self):
        assert 1e-6 <= A100_40GB.kernel_launch_overhead <= 20e-6


class TestLinks:
    def test_transfer_time_is_alpha_beta(self):
        t = PCIE4_X16.transfer_time(25 * GB)
        assert t == pytest.approx(PCIE4_X16.latency + 1.0)

    def test_zero_bytes_costs_latency_only(self):
        assert NVLINK3.transfer_time(0) == pytest.approx(NVLINK3.latency)

    def test_hierarchy_of_bandwidths(self):
        # NVLink >> PCIe >= IB share: the premise of topology-aware
        # parallelism placement (Sec. II, IV-A).
        assert NVLINK3.bandwidth > 5 * PCIE4_X16.bandwidth
        assert PCIE4_X16.bandwidth >= INFINIBAND_HDR.bandwidth * 0.5


class TestHostAndNVMe:
    def test_nvme_read_time(self):
        t = NVME_RAID.read_time(NVME_RAID.read_bw)
        assert t == pytest.approx(NVME_RAID.latency + 1.0)

    def test_host_weight_read(self):
        assert XEON_8280.weight_read_time(XEON_8280.dram_bw) == pytest.approx(1.0)

    def test_dram_slower_than_hbm(self):
        assert XEON_8280.dram_bw < V100_32GB.mem_bw
