"""Tests for the paged KV cache and its block allocator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.model import DenseTransformer, KVCache, ModelConfig
from repro.model.paged_kv import (
    BlockAllocator,
    OutOfBlocks,
    PagedKVCache,
    blocks_needed,
)

CFG = ModelConfig(name="paged-test", hidden=32, layers=3, heads=4, vocab=53,
                  max_seq=64)


class TestBlockAllocator:
    def test_alloc_free_roundtrip(self):
        a = BlockAllocator(4)
        blocks = [a.alloc() for _ in range(4)]
        assert sorted(blocks) == [0, 1, 2, 3]
        assert a.free_blocks == 0
        for b in blocks:
            a.free(b)
        assert a.free_blocks == 4

    def test_exhaustion_raises(self):
        a = BlockAllocator(1)
        a.alloc()
        with pytest.raises(OutOfBlocks):
            a.alloc()

    def test_double_free_detected(self):
        a = BlockAllocator(2)
        b = a.alloc()
        a.free(b)
        with pytest.raises(ValueError, match="double free"):
            a.free(b)

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockAllocator(0)
        with pytest.raises(ValueError):
            BlockAllocator(2).free(5)

    def test_share_refcounts(self):
        a = BlockAllocator(2)
        b = a.alloc()
        assert a.refcount(b) == 1
        a.share(b)
        assert a.refcount(b) == 2
        assert a.shared_blocks == 1
        a.free(b)  # one owner lets go; block still held
        assert a.refcount(b) == 1
        assert a.shared_blocks == 0
        assert a.used_blocks == 1
        a.free(b)
        assert a.used_blocks == 0
        with pytest.raises(ValueError, match="double free"):
            a.free(b)

    def test_share_free_block_rejected(self):
        a = BlockAllocator(1)
        with pytest.raises(ValueError, match="share free block"):
            a.share(0)

    def test_peak_used_high_water(self):
        a = BlockAllocator(4)
        b0, b1, b2 = a.alloc(), a.alloc(), a.alloc()
        a.free(b1)
        a.free(b2)
        a.alloc()
        assert a.peak_used == 3
        a.free(b0)

    def test_double_free_guard_is_constant_time(self):
        """The guard consults the free-set, not a scan of the free list
        (satellite: O(n) -> O(1))."""
        a = BlockAllocator(4)
        blocks = [a.alloc() for _ in range(4)]
        for b in blocks:
            a.free(b)
        a._free.clear()  # membership truth lives in the set
        for b in blocks:
            with pytest.raises(ValueError, match="double free"):
                a.free(b)


class TestBlocksNeeded:
    def test_counts_all_layers(self):
        assert blocks_needed(17, block_size=16, num_layers=3) == 6

    def test_shared_prefix_discounts_inherited_blocks(self):
        # 40 positions = 3 blocks/layer; a 20-token prefix covers
        # ceil(20/16) = 2 of them by aliasing.
        assert blocks_needed(40, block_size=16, num_layers=2,
                             shared_prefix_len=20) == 2
        # Prefix clamped to the sequence itself.
        assert blocks_needed(8, block_size=16, num_layers=2,
                             shared_prefix_len=100) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            blocks_needed(-1, block_size=16, num_layers=1)
        with pytest.raises(ValueError):
            blocks_needed(4, block_size=0, num_layers=1)
        with pytest.raises(ValueError):
            blocks_needed(4, block_size=16, num_layers=1,
                          shared_prefix_len=-1)


class TestCopyOnWrite:
    def _fill(self, cache, n, seed=0, layers=1):
        rng = np.random.default_rng(seed)
        chunks = rng.normal(size=(1, 1, n, 2))
        for layer in range(layers):
            cache.append(layer, chunks, -chunks)
        return chunks

    def test_fork_aliases_prefix_blocks(self):
        a = BlockAllocator(16)
        parent = PagedKVCache(1, a, block_size=4)
        self._fill(parent, 10)  # 3 blocks
        used_before = a.used_blocks
        child = parent.fork(8)  # 2 covering blocks aliased
        assert a.used_blocks == used_before  # no fresh allocation
        assert a.shared_blocks == 2
        assert child.seq_len(0) == 8
        k_child, _ = child.get(0)
        k_parent, _ = parent.get(0)
        np.testing.assert_array_equal(k_child, k_parent[:, :, :8])
        child.free()
        parent.free()
        assert a.used_blocks == 0

    def test_child_write_copies_shared_boundary_block(self):
        a = BlockAllocator(16)
        parent = PagedKVCache(1, a, block_size=4)
        self._fill(parent, 6)
        child = parent.fork(6)  # boundary block half full and shared
        before_k, _ = parent.get(0)
        before_k = before_k.copy()
        x = np.full((1, 1, 3, 2), 7.0)
        child.append(0, x, x)  # writes into the shared boundary block
        assert child.cow_copies == 1
        after_k, _ = parent.get(0)
        np.testing.assert_array_equal(after_k, before_k)  # parent intact
        k_child, _ = child.get(0)
        np.testing.assert_array_equal(k_child[:, :, 6:], x)
        parent.free()
        child.free()

    def test_parent_write_also_copies(self):
        """COW is symmetric: whichever side writes a still-shared block
        privatizes it."""
        a = BlockAllocator(16)
        parent = PagedKVCache(1, a, block_size=4)
        self._fill(parent, 6)
        child = parent.fork(6)
        k_child_before, _ = child.get(0)
        k_child_before = k_child_before.copy()
        x = np.full((1, 1, 2, 2), -3.0)
        parent.append(0, x, x)
        assert parent.cow_copies == 1
        k_child_after, _ = child.get(0)
        np.testing.assert_array_equal(k_child_after, k_child_before)
        parent.free()
        child.free()

    def test_freed_parent_lets_child_write_in_place(self):
        """The serving flow: parent freed at fork time drops refcounts to
        one, so the child appends without any copy."""
        a = BlockAllocator(16)
        parent = PagedKVCache(1, a, block_size=4)
        self._fill(parent, 8)
        child = parent.fork(8)
        parent.free()
        x = np.ones((1, 1, 4, 2))
        child.append(0, x, x)
        assert child.cow_copies == 0
        child.free()
        assert a.used_blocks == 0

    def test_fork_then_decode_matches_full_prefill(self):
        """A decoder continuing on a forked prefix produces the same
        logits as one that prefillled the whole prompt."""
        model = DenseTransformer(CFG, seed=41)
        alloc = BlockAllocator(256)
        prefix = np.array([[3, 1, 4, 1, 5]])
        suffix = np.array([[9, 2, 6]])
        parent = PagedKVCache(CFG.layers, alloc, block_size=4)
        model.forward(prefix, parent)
        child = parent.fork(prefix.shape[1])
        got = model.forward(suffix, child)
        full = PagedKVCache(CFG.layers, alloc, block_size=4)
        want = model.forward(np.concatenate([prefix, suffix], axis=1), full)
        np.testing.assert_allclose(got, want[:, prefix.shape[1]:], atol=1e-12)

    def test_fork_validation(self):
        a = BlockAllocator(8)
        c = PagedKVCache(1, a, block_size=4)
        self._fill(c, 4)
        with pytest.raises(ValueError, match="prefix_len"):
            c.fork(0)
        with pytest.raises(ValueError, match="exceeds cached length"):
            c.fork(5)


class TestPagedCacheSemantics:
    def test_append_get_roundtrip_across_blocks(self):
        a = BlockAllocator(32)
        c = PagedKVCache(1, a, block_size=4)
        rng = np.random.default_rng(3)
        chunks = [rng.normal(size=(2, 2, n, 8)) for n in (3, 4, 6, 1)]
        want_k = np.concatenate(chunks, axis=2)
        for ch in chunks:
            c.append(0, ch, ch * 2)
        got_k, got_v = c.get(0)
        np.testing.assert_allclose(got_k, want_k, atol=0)
        np.testing.assert_allclose(got_v, want_k * 2, atol=0)
        assert c.seq_len(0) == 14
        assert c.blocks_held == 4  # ceil(14/4)

    def test_decoding_exact_vs_contiguous_cache(self):
        """Any decoder runs unchanged on the paged cache."""
        model = DenseTransformer(CFG, seed=41)
        ids = np.array([[3, 1, 4, 1, 5, 9]])
        plain = KVCache(CFG.layers)
        paged = PagedKVCache(CFG.layers, BlockAllocator(256), block_size=4)
        outs_plain, outs_paged = [], []
        for t in range(ids.shape[1]):
            outs_plain.append(model.forward(ids[:, t : t + 1], plain))
            outs_paged.append(model.forward(ids[:, t : t + 1], paged))
        np.testing.assert_allclose(
            np.concatenate(outs_paged, axis=1),
            np.concatenate(outs_plain, axis=1),
            atol=1e-12,
        )

    def test_blocks_grow_with_tokens_not_worst_case(self):
        a = BlockAllocator(64)
        c = PagedKVCache(2, a, block_size=8)
        x = np.ones((1, 2, 1, 4))
        c.append(0, x, x)
        c.append(1, x, x)
        assert c.blocks_held == 2  # one block per layer, not max_seq worth

    def test_free_returns_blocks_for_reuse(self):
        a = BlockAllocator(4)
        c1 = PagedKVCache(1, a, block_size=2)
        x = np.ones((1, 1, 4, 4))
        c1.append(0, x, x)
        assert a.used_blocks == 2
        c1.free()
        assert a.used_blocks == 0
        # A new sequence can take the same blocks.
        c2 = PagedKVCache(1, a, block_size=2)
        c2.append(0, x, x)
        assert a.used_blocks == 2

    def test_pool_exhaustion_is_diagnosable(self):
        a = BlockAllocator(2)
        c = PagedKVCache(1, a, block_size=1)
        x = np.ones((1, 1, 2, 4))
        c.append(0, x, x)
        with pytest.raises(OutOfBlocks, match="in use"):
            c.append(0, x, x)

    def test_freed_cache_rejects_use(self):
        c = PagedKVCache(1, BlockAllocator(4))
        c.free()
        with pytest.raises(RuntimeError, match="freed"):
            c.seq_len(0)
        c.free()  # idempotent

    def test_shape_mismatch_rejected(self):
        c = PagedKVCache(1, BlockAllocator(8), block_size=2)
        c.append(0, np.ones((1, 2, 1, 4)), np.ones((1, 2, 1, 4)))
        with pytest.raises(ValueError, match="mismatch"):
            c.append(0, np.ones((2, 2, 1, 4)), np.ones((2, 2, 1, 4)))

    def test_validation(self):
        with pytest.raises(ValueError):
            PagedKVCache(0, BlockAllocator(1))
        with pytest.raises(ValueError):
            PagedKVCache(1, BlockAllocator(1), block_size=0)
        c = PagedKVCache(1, BlockAllocator(1))
        with pytest.raises(IndexError):
            c.get(3)


@given(
    chunk_lens=st.lists(st.integers(min_value=1, max_value=7), min_size=1,
                        max_size=8),
    block_size=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=40, deadline=None)
def test_paged_roundtrip_property(chunk_lens, block_size):
    """Property: any append pattern gathers back exactly, and block usage
    is ceil(total / block_size)."""
    total = sum(chunk_lens)
    alloc = BlockAllocator(64)
    c = PagedKVCache(1, alloc, block_size=block_size)
    rng = np.random.default_rng(total)
    chunks = [rng.normal(size=(1, 1, n, 2)) for n in chunk_lens]
    for ch in chunks:
        c.append(0, ch, -ch)
    k, v = c.get(0)
    np.testing.assert_array_equal(k, np.concatenate(chunks, axis=2))
    np.testing.assert_array_equal(v, -k)
    assert c.blocks_held == -(-total // block_size)
    c.free()
    assert alloc.used_blocks == 0
