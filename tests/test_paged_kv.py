"""Tests for the paged KV cache and its block allocator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.model import DenseTransformer, KVCache, ModelConfig
from repro.model.paged_kv import BlockAllocator, OutOfBlocks, PagedKVCache

CFG = ModelConfig(name="paged-test", hidden=32, layers=3, heads=4, vocab=53,
                  max_seq=64)


class TestBlockAllocator:
    def test_alloc_free_roundtrip(self):
        a = BlockAllocator(4)
        blocks = [a.alloc() for _ in range(4)]
        assert sorted(blocks) == [0, 1, 2, 3]
        assert a.free_blocks == 0
        for b in blocks:
            a.free(b)
        assert a.free_blocks == 4

    def test_exhaustion_raises(self):
        a = BlockAllocator(1)
        a.alloc()
        with pytest.raises(OutOfBlocks):
            a.alloc()

    def test_double_free_detected(self):
        a = BlockAllocator(2)
        b = a.alloc()
        a.free(b)
        with pytest.raises(ValueError, match="double free"):
            a.free(b)

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockAllocator(0)
        with pytest.raises(ValueError):
            BlockAllocator(2).free(5)


class TestPagedCacheSemantics:
    def test_append_get_roundtrip_across_blocks(self):
        a = BlockAllocator(32)
        c = PagedKVCache(1, a, block_size=4)
        rng = np.random.default_rng(3)
        chunks = [rng.normal(size=(2, 2, n, 8)) for n in (3, 4, 6, 1)]
        want_k = np.concatenate(chunks, axis=2)
        for ch in chunks:
            c.append(0, ch, ch * 2)
        got_k, got_v = c.get(0)
        np.testing.assert_allclose(got_k, want_k, atol=0)
        np.testing.assert_allclose(got_v, want_k * 2, atol=0)
        assert c.seq_len(0) == 14
        assert c.blocks_held == 4  # ceil(14/4)

    def test_decoding_exact_vs_contiguous_cache(self):
        """Any decoder runs unchanged on the paged cache."""
        model = DenseTransformer(CFG, seed=41)
        ids = np.array([[3, 1, 4, 1, 5, 9]])
        plain = KVCache(CFG.layers)
        paged = PagedKVCache(CFG.layers, BlockAllocator(256), block_size=4)
        outs_plain, outs_paged = [], []
        for t in range(ids.shape[1]):
            outs_plain.append(model.forward(ids[:, t : t + 1], plain))
            outs_paged.append(model.forward(ids[:, t : t + 1], paged))
        np.testing.assert_allclose(
            np.concatenate(outs_paged, axis=1),
            np.concatenate(outs_plain, axis=1),
            atol=1e-12,
        )

    def test_blocks_grow_with_tokens_not_worst_case(self):
        a = BlockAllocator(64)
        c = PagedKVCache(2, a, block_size=8)
        x = np.ones((1, 2, 1, 4))
        c.append(0, x, x)
        c.append(1, x, x)
        assert c.blocks_held == 2  # one block per layer, not max_seq worth

    def test_free_returns_blocks_for_reuse(self):
        a = BlockAllocator(4)
        c1 = PagedKVCache(1, a, block_size=2)
        x = np.ones((1, 1, 4, 4))
        c1.append(0, x, x)
        assert a.used_blocks == 2
        c1.free()
        assert a.used_blocks == 0
        # A new sequence can take the same blocks.
        c2 = PagedKVCache(1, a, block_size=2)
        c2.append(0, x, x)
        assert a.used_blocks == 2

    def test_pool_exhaustion_is_diagnosable(self):
        a = BlockAllocator(2)
        c = PagedKVCache(1, a, block_size=1)
        x = np.ones((1, 1, 2, 4))
        c.append(0, x, x)
        with pytest.raises(OutOfBlocks, match="in use"):
            c.append(0, x, x)

    def test_freed_cache_rejects_use(self):
        c = PagedKVCache(1, BlockAllocator(4))
        c.free()
        with pytest.raises(RuntimeError, match="freed"):
            c.seq_len(0)
        c.free()  # idempotent

    def test_shape_mismatch_rejected(self):
        c = PagedKVCache(1, BlockAllocator(8), block_size=2)
        c.append(0, np.ones((1, 2, 1, 4)), np.ones((1, 2, 1, 4)))
        with pytest.raises(ValueError, match="mismatch"):
            c.append(0, np.ones((2, 2, 1, 4)), np.ones((2, 2, 1, 4)))

    def test_validation(self):
        with pytest.raises(ValueError):
            PagedKVCache(0, BlockAllocator(1))
        with pytest.raises(ValueError):
            PagedKVCache(1, BlockAllocator(1), block_size=0)
        c = PagedKVCache(1, BlockAllocator(1))
        with pytest.raises(IndexError):
            c.get(3)


@given(
    chunk_lens=st.lists(st.integers(min_value=1, max_value=7), min_size=1,
                        max_size=8),
    block_size=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=40, deadline=None)
def test_paged_roundtrip_property(chunk_lens, block_size):
    """Property: any append pattern gathers back exactly, and block usage
    is ceil(total / block_size)."""
    total = sum(chunk_lens)
    alloc = BlockAllocator(64)
    c = PagedKVCache(1, alloc, block_size=block_size)
    rng = np.random.default_rng(total)
    chunks = [rng.normal(size=(1, 1, n, 2)) for n in chunk_lens]
    for ch in chunks:
        c.append(0, ch, -ch)
    k, v = c.get(0)
    np.testing.assert_array_equal(k, np.concatenate(chunks, axis=2))
    np.testing.assert_array_equal(v, -k)
    assert c.blocks_held == -(-total // block_size)
    c.free()
    assert alloc.used_blocks == 0
