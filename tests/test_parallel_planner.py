"""Tests for the parallelism planner (placement + memory arithmetic)."""

import pytest

from repro.hardware import dgx_a100_cluster, lambda_a6000_workstation
from repro.model import DENSE_ZOO
from repro.parallel import PlanError, memory_per_gpu, plan_dense


class TestMemoryPerGPU:
    def test_weights_divide_across_tp_and_pp(self):
        cfg = DENSE_ZOO["lm-175b"]
        w1, _ = memory_per_gpu(cfg, 1, 1, batch=1, seq_len=128)
        w16, _ = memory_per_gpu(cfg, 8, 2, batch=1, seq_len=128)
        assert w16 == pytest.approx(w1 / 16)

    def test_kv_scales_with_batch_and_seq(self):
        cfg = DENSE_ZOO["gpt-13b"]
        _, kv_a = memory_per_gpu(cfg, 1, 1, batch=1, seq_len=128)
        _, kv_b = memory_per_gpu(cfg, 1, 1, batch=4, seq_len=256)
        assert kv_b == pytest.approx(8 * kv_a)

    def test_validation(self):
        cfg = DENSE_ZOO["gpt-13b"]
        with pytest.raises(ValueError):
            memory_per_gpu(cfg, 0, 1, batch=1, seq_len=1)


class TestPlanDense:
    def setup_method(self):
        self.cluster = dgx_a100_cluster(8)  # 64 A100-40GB

    def test_small_model_single_gpu(self):
        plan = plan_dense(DENSE_ZOO["gpt2-1.5b"], self.cluster, seq_len=256)
        assert (plan.tp, plan.pp) == (1, 1)

    def test_13b_needs_one_gpu_barely(self):
        # 13B fp16 = 26 GB < 36 GB usable.
        plan = plan_dense(DENSE_ZOO["gpt-13b"], self.cluster, batch=1, seq_len=256)
        assert plan.pp == 1
        assert plan.tp <= 2

    def test_175b_fits_one_node_with_tp8(self):
        # 175B fp16 = 350 GB > 8x40; needs two nodes => TP8 x PP2,
        # matching Table I's Fig 8 config.
        plan = plan_dense(DENSE_ZOO["lm-175b"], self.cluster, batch=1, seq_len=256)
        assert plan.tp == 8
        assert plan.pp == 2

    def test_530b_matches_table1_fig8_config(self):
        # Table I: LM-530B runs TP=8, PP=5 (40 GPUs) for the Fig. 8
        # throughput workload (prompt 512 + gen 50 at large batch) —
        # the KV-cache pressure of that batch is what forces the 5th stage.
        plan = plan_dense(
            DENSE_ZOO["lm-530b"], self.cluster, batch=32, seq_len=562
        )
        assert plan.tp == 8
        assert plan.pp == 5

    def test_memory_accounting_within_budget(self):
        plan = plan_dense(DENSE_ZOO["lm-175b"], self.cluster, batch=8, seq_len=1024)
        assert plan.memory_per_gpu <= self.cluster.gpu.memory_bytes

    def test_kv_pressure_raises_pp(self):
        small = plan_dense(DENSE_ZOO["gpt-50b"], self.cluster, batch=1, seq_len=128)
        big = plan_dense(DENSE_ZOO["gpt-50b"], self.cluster, batch=64, seq_len=2048)
        assert big.gpus >= small.gpus

    def test_530b_does_not_fit_workstation(self):
        # The Sec. VI motivation: GPU-only solutions cap out far below
        # 530B on a workstation — ZeRO-Inference exists for this.
        with pytest.raises(PlanError, match="does not fit"):
            plan_dense(DENSE_ZOO["lm-530b"], lambda_a6000_workstation(2),
                       seq_len=256)

    def test_workstation_limit_near_20b(self):
        # Fig. 9b: largest GPU-only model on one A6000 is ~20B (fp16 40GB
        # just misses 48GB with headroom at long seq; INT8 or short seq fit).
        ws = lambda_a6000_workstation(1)
        plan = plan_dense(DENSE_ZOO["gpt-neox-20b"], ws, batch=1, seq_len=128)
        assert (plan.tp, plan.pp) == (1, 1)
        with pytest.raises(PlanError):
            plan_dense(DENSE_ZOO["gpt-50b"], ws, batch=1, seq_len=128)
