"""Tests for routing policies, the router, and fault plans."""

import pytest

from repro.engine import Request
from repro.fleet import (
    ROUTING_POLICIES,
    FaultPlan,
    LeastOutstanding,
    PowerOfTwoChoices,
    ReplicaFault,
    RoundRobin,
    Router,
    SessionAffinity,
    resolve_routing_policy,
)


def _req(rid, prompt=4, gen=3, arrival=0.0, session=None):
    return Request(request_id=rid, arrival=arrival, prompt_len=prompt,
                   gen_tokens=gen, session=session)


class TestRouterAccounting:
    def test_outstanding_tracks_token_work(self):
        router = Router(2, policy="round_robin")
        r = _req(0, prompt=5, gen=7)
        target = router.route(r, 0.0)
        assert router.outstanding(target) == r.work_tokens == 12
        router.complete(r, target)
        assert router.outstanding(target) == 0.0

    def test_mark_failed_removes_from_rotation(self):
        router = Router(3, policy="round_robin")
        router.mark_failed(1)
        targets = {router.route(_req(i), 0.0) for i in range(6)}
        assert targets == {0, 2}
        assert router.alive_replicas() == [0, 2]

    def test_all_dead_raises(self):
        router = Router(2)
        router.mark_failed(0)
        router.mark_failed(1)
        with pytest.raises(RuntimeError, match="every replica has failed"):
            router.route(_req(0), 0.0)

    def test_decision_log_and_retries(self):
        router = Router(2, policy="round_robin")
        router.route(_req(0), 0.0)
        router.route(_req(1), 0.5, retry=True)
        assert [d.retry for d in router.decisions] == [False, True]
        assert router.num_retries == 1
        assert router.assignments() == {0: 0, 1: 1}

    def test_validation(self):
        with pytest.raises(ValueError, match="num_replicas"):
            Router(0)


class TestPolicies:
    def test_round_robin_cycles(self):
        router = Router(3, policy="round_robin")
        targets = [router.route(_req(i), 0.0) for i in range(6)]
        assert targets == [0, 1, 2, 0, 1, 2]

    def test_least_outstanding_joins_shortest_queue(self):
        router = Router(3, policy="least_outstanding")
        a = router.route(_req(0, prompt=50, gen=50), 0.0)  # heavy
        b = router.route(_req(1, prompt=1, gen=1), 0.0)
        c = router.route(_req(2, prompt=1, gen=1), 0.0)
        assert a == 0 and b == 1 and c == 2  # ties break by index
        # Replica 0 is the most loaded; the next light request avoids it.
        assert router.route(_req(3, prompt=1, gen=1), 0.0) != 0

    def test_power_of_two_deterministic_and_alive_only(self):
        runs = []
        for _ in range(2):
            router = Router(4, policy=PowerOfTwoChoices(seed=3))
            runs.append([router.route(_req(i), 0.0) for i in range(12)])
        assert runs[0] == runs[1]  # seeded -> reproducible
        router = Router(2, policy=PowerOfTwoChoices(seed=0))
        router.mark_failed(0)
        assert all(router.route(_req(i), 0.0) == 1 for i in range(4))

    def test_session_affinity_pins_and_repins(self):
        router = Router(3, policy=SessionAffinity())
        first = router.route(_req(0, session=7), 0.0)
        # Later requests of the session follow the pin even when other
        # replicas are empty.
        assert router.route(_req(1, session=7), 0.1) == first
        assert router.policy.pins == {7: first}
        router.mark_failed(first)
        repinned = router.route(_req(2, session=7), 0.2)
        assert repinned != first and router.is_alive(repinned)
        assert router.policy.pins == {7: repinned}

    def test_session_affinity_fallback_for_unaffiliated(self):
        router = Router(2, policy=SessionAffinity(fallback=RoundRobin()))
        targets = [router.route(_req(i, session=None), 0.0) for i in range(4)]
        assert targets == [0, 1, 0, 1]
        assert router.policy.pins == {}

    def test_registry_and_resolution(self):
        assert set(ROUTING_POLICIES) == {
            "round_robin", "least_outstanding", "power_of_two",
            "session_affinity",
        }
        assert isinstance(resolve_routing_policy("least_outstanding"),
                          LeastOutstanding)
        inst = RoundRobin()
        assert resolve_routing_policy(inst) is inst
        with pytest.raises(ValueError, match="unknown routing policy"):
            resolve_routing_policy("nope")


class TestFaultPlan:
    def test_fault_validation(self):
        with pytest.raises(ValueError, match="factor > 1"):
            ReplicaFault(0, 1.0, kind="slowdown", factor=1.0)
        with pytest.raises(ValueError, match="kind"):
            ReplicaFault(0, 1.0, kind="explode")
        with pytest.raises(ValueError, match="finite"):
            ReplicaFault(0, float("inf"))
        with pytest.raises(ValueError, match="more than one crash"):
            FaultPlan((ReplicaFault(0, 1.0), ReplicaFault(0, 2.0)))

    def test_validate_against_pool(self):
        plan = FaultPlan((ReplicaFault(3, 1.0),))
        with pytest.raises(ValueError, match="only has 2"):
            plan.validate_against(2)
        everyone = FaultPlan((ReplicaFault(0, 1.0), ReplicaFault(1, 1.0)))
        with pytest.raises(ValueError, match="crash every replica"):
            everyone.validate_against(2)
        everyone.validate_against(3)  # one survivor suffices

    def test_accessors(self):
        plan = FaultPlan((
            ReplicaFault(0, 1.0),
            ReplicaFault(1, 2.0, kind="slowdown", factor=4.0),
        ))
        assert plan.crashes() == {0: 1.0}
        assert plan.slowdowns() == {1: (2.0, 4.0)}


class TestFaultPlanRecovery:
    def test_recover_requires_preceding_crash(self):
        with pytest.raises(ValueError, match="without a preceding crash"):
            FaultPlan((ReplicaFault(0, 1.0, kind="recover"),))
        with pytest.raises(ValueError, match="without a preceding crash"):
            # Two recoveries after one crash: the second is dangling.
            FaultPlan((ReplicaFault(0, 1.0),
                       ReplicaFault(0, 2.0, kind="recover"),
                       ReplicaFault(0, 3.0, kind="recover")))

    def test_crash_recover_crash_alternation_is_legal(self):
        plan = FaultPlan((ReplicaFault(0, 1.0),
                          ReplicaFault(0, 2.0, kind="recover"),
                          ReplicaFault(0, 3.0)))
        assert plan.crash_events() == [(1.0, 0), (3.0, 0)]
        assert plan.recover_events() == [(2.0, 0)]
        # crashes() keeps its historic first-crash shape for old callers.
        assert plan.crashes() == {0: 1.0}

    def test_double_crash_without_recover_still_rejected(self):
        with pytest.raises(ValueError, match="more than one crash"):
            FaultPlan((ReplicaFault(0, 1.0), ReplicaFault(0, 2.0)))

    def test_recovery_lifts_the_crash_every_replica_rule(self):
        # Both replicas crash, but never simultaneously: 0 is back up
        # before 1 goes down, so some replica is always alive.
        plan = FaultPlan((ReplicaFault(0, 1.0),
                          ReplicaFault(0, 2.0, kind="recover"),
                          ReplicaFault(1, 3.0)))
        plan.validate_against(2)  # must not raise
        # Without the recovery the same crashes are a total outage.
        with pytest.raises(ValueError, match="crash every replica"):
            FaultPlan((ReplicaFault(0, 1.0),
                       ReplicaFault(1, 3.0))).validate_against(2)

    def test_simultaneous_total_outage_still_rejected(self):
        # The recovery lands at the same instant as the second crash;
        # ties resolve recover-first, so this squeaks by ...
        plan = FaultPlan((ReplicaFault(0, 1.0),
                          ReplicaFault(0, 3.0, kind="recover"),
                          ReplicaFault(1, 3.0)))
        plan.validate_against(2)
        # ... but a window with genuinely no survivor does not.
        gap = FaultPlan((ReplicaFault(0, 1.0),
                         ReplicaFault(0, 4.0, kind="recover"),
                         ReplicaFault(1, 3.0)))
        with pytest.raises(ValueError, match="all 2 are down"):
            gap.validate_against(2)
