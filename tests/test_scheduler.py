"""Tests for the shared request scheduler: policies, backfill, and the
functional-vs-analytical decision-equivalence guarantee."""

import numpy as np
import pytest

from repro.engine import (
    GenerationSession,
    Request,
    SchedRequest,
    Scheduler,
    WorkloadTrace,
    simulate_serving,
)
from repro.engine.scheduler import (
    ADMISSION_POLICIES,
    TenantFairShare,
    TenantPriority,
)
from repro.model import DenseTransformer, ModelConfig


def _req(rid, prompt_len=4, max_new=3, arrival=0.0, tenant=None):
    return SchedRequest(request_id=rid, prompt_len=prompt_len,
                        max_new_tokens=max_new, arrival=arrival,
                        tenant=tenant)


class TestAdmissionPolicies:
    def test_fcfs_admits_in_enqueue_order(self):
        s = Scheduler(2, policy="fcfs")
        for rid, plen in [(0, 9), (1, 1), (2, 5)]:
            s.enqueue(_req(rid, prompt_len=plen))
        admitted = s.admit()
        assert [r.request_id for r in admitted] == [0, 1]
        assert s.num_waiting == 1

    def test_shortest_prompt_reorders(self):
        s = Scheduler(2, policy="shortest_prompt")
        for rid, plen in [(0, 9), (1, 1), (2, 5)]:
            s.enqueue(_req(rid, prompt_len=plen))
        admitted = s.admit()
        assert [r.request_id for r in admitted] == [1, 2]

    def test_shortest_prompt_ties_break_by_enqueue_order(self):
        s = Scheduler(3, policy="shortest_prompt")
        for rid in (7, 3, 5):
            s.enqueue(_req(rid, prompt_len=4))
        assert [r.request_id for r in s.admit()] == [7, 3, 5]

    def test_custom_policy_callable(self):
        longest = lambda q: max(q, key=lambda r: r.prompt_len)  # noqa: E731
        s = Scheduler(1, policy=longest)
        for rid, plen in [(0, 2), (1, 8)]:
            s.enqueue(_req(rid, prompt_len=plen))
        assert [r.request_id for r in s.admit()] == [1]

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            Scheduler(1, policy="lifo")

    def test_registry_exposes_tenant_fair(self):
        assert "tenant_fair" in ADMISSION_POLICIES
        assert getattr(ADMISSION_POLICIES["tenant_fair"], "tenant_aware",
                       False)


class TestTenantPolicies:
    def test_fair_share_balances_held_slots(self):
        """With tenant A already holding both slots, the next admission
        goes to B even though A's request queued first."""
        s = Scheduler(3, policy=TenantFairShare())
        s.enqueue(_req(0, tenant="a"))
        s.enqueue(_req(1, tenant="a"))
        s.enqueue(_req(2, tenant="a"))
        s.enqueue(_req(3, tenant="b"))
        admitted = s.admit()
        # Round-robin by load: a (0 held), b (0 vs 1), then a again.
        assert [(r.request_id, r.tenant) for r in admitted] == [
            (0, "a"), (3, "b"), (1, "a")]

    def test_fair_share_weights_bias_shares(self):
        """weight 2 tenants absorb two slots per one of weight 1."""
        pick = TenantFairShare(weights={"big": 2.0, "small": 1.0})
        s = Scheduler(3, policy=pick)
        for rid, t in [(0, "small"), (1, "big"), (2, "big"), (3, "small")]:
            s.enqueue(_req(rid, tenant=t))
        admitted = s.admit()
        # loads: small 0/1 vs big 0/2 -> tie by queue order (0 first);
        # then big 0/2 beats small 1/1 twice.
        assert [r.request_id for r in admitted] == [0, 1, 2]

    def test_fair_share_slot_caps_stop_admission(self):
        pick = TenantFairShare(slot_caps={"a": 1})
        s = Scheduler(4, policy=pick)
        for rid in range(3):
            s.enqueue(_req(rid, tenant="a"))
        admitted = s.admit()
        assert [r.request_id for r in admitted] == [0]
        assert s.num_waiting == 2  # capped, not dropped
        # A retirement frees the capped tenant's slot.
        s.record_token(0, token=None)
        s.record_token(0)
        s.record_token(0)
        assert s.num_active == 0
        assert [r.request_id for r in s.admit()] == [1]

    def test_fair_share_untagged_requests_pool_under_default(self):
        s = Scheduler(2, policy=TenantFairShare())
        s.enqueue(_req(0))
        s.enqueue(_req(1, tenant="a"))
        assert [r.request_id for r in s.admit()] == [0, 1]

    def test_priority_policy_prefers_high_priority_tenants(self):
        pick = TenantPriority(priorities={"gold": 2.0, "free": 0.0})
        s = Scheduler(2, policy=pick)
        for rid, t in [(0, "free"), (1, "free"), (2, "gold")]:
            s.enqueue(_req(rid, tenant=t))
        admitted = s.admit()
        assert [r.request_id for r in admitted] == [2, 0]

    def test_tenant_policies_validate(self):
        with pytest.raises(ValueError):
            TenantFairShare(weights={"a": 0.0})
        with pytest.raises(ValueError):
            TenantFairShare(default_weight=-1.0)
        with pytest.raises(ValueError):
            TenantFairShare(slot_caps={"a": 0})


class TestLifecycle:
    def test_length_retirement_frees_slot(self):
        s = Scheduler(1)
        s.enqueue(_req(0, max_new=2))
        s.enqueue(_req(1, max_new=1))
        s.admit()
        assert s.record_token(0) is None
        assert s.record_token(0) == "length"
        assert s.num_active == 0
        # The freed slot is immediately fillable (same-step backfill).
        assert [r.request_id for r in s.admit()] == [1]

    def test_eos_retirement(self):
        s = Scheduler(1, eos_token=42)
        s.enqueue(_req(0, max_new=10))
        s.admit()
        assert s.record_token(0, token=7) is None
        assert s.record_token(0, token=42) == "eos"
        assert s.retirement_order == [0]

    def test_record_token_requires_active(self):
        s = Scheduler(1)
        s.enqueue(_req(0))
        with pytest.raises(KeyError):
            s.record_token(0)

    def test_duplicate_enqueue_rejected(self):
        s = Scheduler(1)
        s.enqueue(_req(0))
        with pytest.raises(ValueError, match="already"):
            s.enqueue(_req(0))

    def test_can_admit_veto_stops_without_skipping(self):
        s = Scheduler(4)
        for rid, plen in [(0, 8), (1, 1)]:
            s.enqueue(_req(rid, prompt_len=plen))
        # Veto the head of the queue: admission must stop, not admit #1
        # over #0 (capacity pressure may not reorder FCFS).
        admitted = s.admit(can_admit=lambda r: r.prompt_len < 4)
        assert admitted == []
        assert s.num_waiting == 2

    def test_event_log_and_orderings(self):
        s = Scheduler(2)
        s.enqueue(_req(0, max_new=1))
        s.enqueue(_req(1, max_new=2))
        s.admit()
        s.record_token(0)
        s.record_token(1)
        s.advance()
        s.record_token(1)
        kinds = [(e.kind, e.request_id) for e in s.events]
        assert kinds == [("enqueue", 0), ("enqueue", 1), ("admit", 0),
                         ("admit", 1), ("retire", 0), ("retire", 1)]
        assert s.admission_order == [0, 1]
        assert s.retirement_order == [0, 1]
        retire_steps = [e.step for e in s.events if e.kind == "retire"]
        assert retire_steps == [0, 1]

    def test_waiting_and_enqueue_steps_accessors(self):
        """The fleet layer reads both: ``waiting`` to requeue a dead
        replica's queue, ``enqueue_steps`` to replay enqueues into a
        functional session at the recorded step."""
        s = Scheduler(1)
        s.enqueue(_req(0))
        s.enqueue(_req(1))
        assert s.waiting == [0, 1]
        s.admit()
        assert s.waiting == [1]
        s.record_token(0)
        s.advance()
        s.enqueue(_req(2))
        assert s.enqueue_steps == {0: 0, 1: 0, 2: 1}
        # The mapping is a copy: mutating it cannot corrupt the scheduler.
        s.enqueue_steps.clear()
        assert s.enqueue_steps == {0: 0, 1: 0, 2: 1}

    def test_validation(self):
        with pytest.raises(ValueError):
            Scheduler(0)
        with pytest.raises(ValueError):
            SchedRequest(0, prompt_len=0, max_new_tokens=1)
        with pytest.raises(ValueError):
            SchedRequest(0, prompt_len=1, max_new_tokens=0)


class TestBulkStepping:
    """decode_horizon()/record_tokens(n) — the event-compressed serving
    loop's bulk interface — must replay record_token/advance exactly."""

    def _mirror(self, seed):
        """Two identically-loaded schedulers."""
        rng = np.random.default_rng(seed)
        specs = [(rid, int(rng.integers(1, 9)), int(rng.integers(1, 7)))
                 for rid in range(9)]
        pair = []
        for _ in range(2):
            s = Scheduler(3)
            for rid, plen, gen in specs:
                s.enqueue(_req(rid, prompt_len=plen, max_new=gen))
            pair.append(s)
        return pair

    def test_horizon_counts_steps_to_next_length_retirement(self):
        s = Scheduler(3)
        for rid, gen in [(0, 5), (1, 2), (2, 9)]:
            s.enqueue(_req(rid, max_new=gen))
        assert s.decode_horizon() == 0  # nothing admitted yet
        s.admit()
        assert s.decode_horizon() == 2
        assert s.record_tokens(2) == [1]
        assert s.decode_horizon() == 3  # request 0 has 3 of 5 left

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bulk_equals_per_step_replay(self, seed):
        """Interleave admissions with full-horizon bulk advances on one
        scheduler and per-step record_token/advance on its mirror: state
        and the complete event log must coincide."""
        bulk, single = self._mirror(seed)
        while True:
            bulk.admit()
            single.admit()
            if not bulk.num_active:
                break
            n = bulk.decode_horizon()
            retired_bulk = bulk.record_tokens(n)
            retired_single = []
            for _ in range(n):
                for rid in single.active:
                    if single.record_token(rid) is not None:
                        retired_single.append(rid)
                single.advance()
            assert retired_bulk == retired_single
            assert bulk.step == single.step
        assert bulk.events == single.events
        assert bulk.admission_order == single.admission_order
        assert bulk.retirement_order == single.retirement_order
        assert bulk.to_timeline().to_rows() == single.to_timeline().to_rows()

    def test_partial_run_retires_nobody(self):
        s = Scheduler(2)
        s.enqueue(_req(0, max_new=5))
        s.admit()
        assert s.record_tokens(4) == []
        assert s.generated(0) == 4
        assert s.step == 4

    def test_validation(self):
        s = Scheduler(1)
        with pytest.raises(ValueError, match="no active"):
            s.record_tokens(1)
        s.enqueue(_req(0, max_new=3))
        s.admit()
        with pytest.raises(ValueError):
            s.record_tokens(0)
        with pytest.raises(ValueError, match="horizon"):
            s.record_tokens(4)  # would skip the step-2 retirement
        assert s.record_tokens(3) == [0]


class TestTimelineExport:
    def test_queued_and_active_spans(self):
        s = Scheduler(1)
        s.enqueue(_req(0, max_new=1))
        s.enqueue(_req(1, max_new=1))
        s.admit()
        s.record_token(0)
        s.advance()
        s.admit()
        s.record_token(1)
        tl = s.to_timeline()
        spans1 = tl.spans("request-1")
        labels = [sp.label for sp in spans1]
        assert labels == ["queued", "active"]
        assert spans1[0].start == 0 and spans1[0].end == 1
        events = tl.to_chrome_trace()
        assert any(e["ph"] == "i" and e["name"].startswith("retire")
                   for e in events)
        assert any(e["ph"] == "X" for e in events)


# -- functional vs analytical equivalence (the tentpole guarantee) ----------

EQ_CFG = ModelConfig(name="sched-eq", hidden=32, layers=2, heads=4, vocab=59,
                     max_seq=32)


@pytest.fixture(scope="module")
def eq_model():
    return DenseTransformer(EQ_CFG, seed=11)


def _shared_trace(seed, n=10):
    """A burst trace (all arrived at t=0) with varied prompt/gen lengths."""
    rng = np.random.default_rng(seed)
    return WorkloadTrace(tuple(
        Request(i, 0.0, int(rng.integers(1, 8)), int(rng.integers(1, 6)))
        for i in range(n)
    ))


def _functional_scheduler(trace, model, policy, max_batch):
    session = GenerationSession(model, max_concurrency=max_batch,
                                policy=policy)
    rng = np.random.default_rng(0)
    rids = {}
    for r in trace.requests:
        prompt = rng.integers(0, model.config.vocab, size=r.prompt_len)
        rids[session.submit(prompt, max_new_tokens=r.gen_tokens)] = r
    session.run()
    return session.scheduler


@pytest.mark.parametrize("policy", ["fcfs", "shortest_prompt"])
@pytest.mark.parametrize("seed,max_batch", [(0, 3), (1, 2), (2, 4)])
def test_functional_and_analytical_orderings_identical(
        eq_model, policy, seed, max_batch):
    """Both backends consume the same Scheduler, so on a shared trace the
    admission and retirement orderings are identical."""
    trace = _shared_trace(seed)
    functional = _functional_scheduler(trace, eq_model, policy, max_batch)
    rep = simulate_serving(trace, prompt_time=lambda b, p: 0.3 + 0.01 * p,
                           step_time=lambda b: 0.1, max_batch=max_batch,
                           policy=policy)
    analytical = rep.scheduler
    assert functional.admission_order == analytical.admission_order
    assert functional.retirement_order == analytical.retirement_order
    # Retirement reasons agree too (all length-driven here).
    f_reasons = {e.request_id: e.reason for e in functional.events
                 if e.kind == "retire"}
    a_reasons = {e.request_id: e.reason for e in analytical.events
                 if e.kind == "retire"}
    assert f_reasons == a_reasons


def test_event_streams_identical_when_no_prefill_retirement(eq_model):
    """With every request needing >= 2 tokens, even the full event
    streams (kind, request id) coincide step for step."""
    rng = np.random.default_rng(5)
    trace = WorkloadTrace(tuple(
        Request(i, 0.0, int(rng.integers(1, 6)), int(rng.integers(2, 6)))
        for i in range(8)
    ))
    functional = _functional_scheduler(trace, eq_model, "fcfs", 3)
    rep = simulate_serving(trace, prompt_time=lambda b, p: 1.0,
                           step_time=lambda b: 0.1, max_batch=3)
    f_events = [(e.step, e.kind, e.request_id) for e in functional.events]
    a_events = [(e.step, e.kind, e.request_id) for e in rep.scheduler.events]
    assert f_events == a_events


class TestQueueIntrospection:
    """The autoscaler's signal feed: queue depth, waiting work, age."""

    def test_queue_depth_tracks_enqueue_and_admit(self):
        s = Scheduler(2)
        assert s.queue_depth == 0
        for rid in range(4):
            s.enqueue(_req(rid))
        assert s.queue_depth == 4
        s.admit()
        assert s.queue_depth == 2  # two took slots, two still wait
        assert s.queue_depth == s.num_waiting

    def test_waiting_tokens_sums_prompt_and_budget(self):
        s = Scheduler(1)
        s.enqueue(_req(0, prompt_len=10, max_new=5))
        s.enqueue(_req(1, prompt_len=3, max_new=2))
        assert s.waiting_tokens == (10 + 5) + (3 + 2)
        s.admit()  # request 0 leaves the queue
        assert s.waiting_tokens == 5

    def test_oldest_waiting_arrival(self):
        s = Scheduler(1)
        assert s.oldest_waiting_arrival() is None
        s.enqueue(_req(0, arrival=2.0))
        s.enqueue(_req(1, arrival=5.0))
        assert s.oldest_waiting_arrival() == 2.0
        s.admit()
        assert s.oldest_waiting_arrival() == 5.0
