"""Tests for the model zoo (Tables I and II)."""

import pytest

from repro.hardware import DType
from repro.model import (
    BERT_ZOO,
    DENSE_ZOO,
    MOE_PARALLELISM,
    MOE_ZOO,
    ModelConfig,
    MoESpec,
    get_model,
)


class TestTable1DenseZoo:
    """Table I: every architecture column and the parameter accounting."""

    def test_zoo_contains_all_table1_models(self):
        assert set(DENSE_ZOO) == {
            "gpt2-1.5b", "gpt-neo-2.7b", "gpt-j-6b", "gpt-13b",
            "gpt-neox-20b", "gpt-50b", "gpt-87b", "lm-175b", "lm-530b",
        }

    @pytest.mark.parametrize(
        "name,hidden,layers,heads",
        [
            ("gpt2-1.5b", 1600, 48, 25),
            ("gpt-neo-2.7b", 2560, 32, 20),
            ("gpt-j-6b", 4096, 28, 32),
            ("gpt-13b", 5120, 40, 40),
            ("gpt-neox-20b", 6144, 44, 64),
            ("gpt-50b", 8192, 62, 64),
            ("gpt-87b", 12288, 48, 96),
            ("lm-175b", 12288, 96, 96),
            ("lm-530b", 20480, 105, 128),
        ],
    )
    def test_architectures_match_table1(self, name, hidden, layers, heads):
        cfg = DENSE_ZOO[name]
        assert (cfg.hidden, cfg.layers, cfg.heads) == (hidden, layers, heads)

    @pytest.mark.parametrize("name", list(DENSE_ZOO))
    def test_param_estimate_within_15pct_of_listed(self, name):
        cfg = DENSE_ZOO[name]
        assert cfg.listed_params is not None
        assert cfg.total_params == pytest.approx(cfg.listed_params, rel=0.15)

    def test_530b_needs_a_terabyte(self):
        # Sec. I: "inferencing MT-NLG 530B requires about 1TB of GPU memory".
        cfg = DENSE_ZOO["lm-530b"]
        assert 0.9e12 < cfg.param_bytes(DType.FP16) < 1.2e12

    def test_kv_bytes_per_token(self):
        cfg = DENSE_ZOO["lm-175b"]
        assert cfg.kv_bytes_per_token() == 2 * 96 * 12288 * 2

    def test_flops_per_token_roughly_2N(self):
        # Standard rule of thumb: ~2 * params flops per generated token.
        cfg = DENSE_ZOO["lm-175b"]
        assert cfg.flops_per_token() == pytest.approx(2 * cfg.total_params, rel=0.1)

    def test_layer_weight_bytes_530b(self):
        # One 530B layer in fp16 ~ 9.6 GB (ZeRO-Inference streaming unit).
        cfg = DENSE_ZOO["lm-530b"]
        assert cfg.layer_weight_bytes() == pytest.approx(
            12 * 20480**2 * 2, rel=0.01
        )


class TestTable2MoEZoo:
    def test_zoo_matches_table2(self):
        assert set(MOE_ZOO) == {
            "1.3b-moe-128", "2.4b-moe-128", "8b-moe-128",
            "24b-moe-128", "47b-moe-128",
        }

    @pytest.mark.parametrize(
        "name,layers,hidden",
        [
            ("1.3b-moe-128", 24, 2048),
            ("2.4b-moe-128", 16, 3584),
            ("8b-moe-128", 30, 4096),
            ("24b-moe-128", 40, 8192),
            ("47b-moe-128", 58, 8192),
        ],
    )
    def test_architecture_columns(self, name, layers, hidden):
        cfg = MOE_ZOO[name]
        assert (cfg.layers, cfg.hidden) == (layers, hidden)
        assert cfg.moe.num_experts == 128

    @pytest.mark.parametrize("name", list(MOE_ZOO))
    def test_total_params_same_order_as_listed(self, name):
        cfg = MOE_ZOO[name]
        ratio = cfg.total_params / cfg.listed_params
        assert 0.5 < ratio < 2.0  # Table II doesn't decompose exactly; see DESIGN.md

    def test_smallest_moe_is_52b_class(self):
        cfg = MOE_ZOO["1.3b-moe-128"]
        assert cfg.total_params == pytest.approx(52e9, rel=0.15)

    def test_expert_params_dominate(self):
        for cfg in MOE_ZOO.values():
            assert cfg.expert_params > 5 * cfg.base_params

    def test_parallelism_table(self):
        p = MOE_PARALLELISM["24b-moe-128"]
        assert (p.mp_degree, p.ep_degree, p.expert_slicing, p.num_gpus) == (
            8, 128, 2, 256,
        )
        assert MOE_PARALLELISM["1.3b-moe-128"].num_gpus == 128

    def test_trillion_scale_model_present(self):
        # Fig. 7 headline: a >1T model served under 25 ms.
        assert MOE_ZOO["24b-moe-128"].listed_params > 1e12
        assert MOE_ZOO["47b-moe-128"].listed_params > 2e12


class TestValidationAndLookup:
    def test_get_model_across_zoos(self):
        assert get_model("lm-175b").hidden == 12288
        assert get_model("1.3b-moe-128").moe is not None
        assert get_model("bert-base").decoder is False

    def test_unknown_model(self):
        with pytest.raises(KeyError, match="unknown model"):
            get_model("gpt-9000b")

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            ModelConfig(name="bad", hidden=100, layers=2, heads=3)
        with pytest.raises(ValueError):
            ModelConfig(name="bad", hidden=0, layers=2, heads=1)

    def test_bad_moe_spec(self):
        with pytest.raises(ValueError):
            MoESpec(num_experts=0)
        with pytest.raises(ValueError):
            MoESpec(num_experts=4, top_k=5)
        with pytest.raises(ValueError):
            MoESpec(num_experts=4, capacity_factor=0)

    def test_moe_layer_count(self):
        cfg = MOE_ZOO["1.3b-moe-128"]
        assert cfg.num_moe_layers == 12  # every other of 24
        assert DENSE_ZOO["gpt2-1.5b"].num_moe_layers == 0

    def test_bert_zoo(self):
        assert BERT_ZOO["distilbert"].layers == 6
        assert BERT_ZOO["bert-base"].layers == 12
