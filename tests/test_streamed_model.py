"""Tests: the runnable ZeRO-Inference streamed transformer."""

import numpy as np
import pytest

from repro.hardware import lambda_a6000_workstation
from repro.model import DenseTransformer, ModelConfig
from repro.zero import StreamedTransformer, Tier

CFG = ModelConfig(name="stream-test", hidden=32, layers=5, heads=4, vocab=53,
                  max_seq=32)
WS = lambda_a6000_workstation(1)


@pytest.fixture(scope="module")
def model():
    return DenseTransformer(CFG, seed=29)


class TestStreamedForward:
    def test_logits_match_resident_model(self, model):
        streamed = StreamedTransformer(model, WS, window=2)
        ids = np.array([[4, 8, 15, 16]])
        np.testing.assert_allclose(
            streamed.forward(ids), model.forward(ids), atol=1e-12
        )

    @pytest.mark.parametrize("window", [1, 2, 5])
    def test_any_window_size(self, model, window):
        streamed = StreamedTransformer(model, WS, window=window)
        ids = np.array([[1, 2, 3]])
        np.testing.assert_allclose(
            streamed.forward(ids), model.forward(ids), atol=1e-12
        )
        assert len(streamed.resident_layers) <= window

    def test_generation_matches(self, model):
        streamed = StreamedTransformer(model, WS)
        prompt = np.array([[7, 3]])
        np.testing.assert_array_equal(
            streamed.generate(prompt, 5), model.generate(prompt, 5)
        )

    def test_nvme_tier_also_works(self, model):
        streamed = StreamedTransformer(model, WS, tier=Tier.NVME)
        ids = np.array([[9, 9]])
        np.testing.assert_allclose(
            streamed.forward(ids), model.forward(ids), atol=1e-12
        )
        # NVMe fetches are slower than DRAM fetches would be.
        assert streamed.modeled_fetch_time > 0


class TestFetchAccounting:
    def test_every_streamed_layer_fetched_per_pass(self, model):
        streamed = StreamedTransformer(model, WS, window=2)
        streamed.forward(np.array([[1]]))
        assert streamed.fetches == CFG.layers
        streamed.forward(np.array([[2]]))
        assert streamed.fetches == 2 * CFG.layers

    def test_window_covering_all_layers_caches_them(self, model):
        streamed = StreamedTransformer(model, WS, window=CFG.layers)
        streamed.forward(np.array([[1]]))
        streamed.forward(np.array([[2]]))
        # Second pass found everything resident: no new fetches.
        assert streamed.fetches == CFG.layers

    def test_pinned_layers_never_fetched(self, model):
        streamed = StreamedTransformer(model, WS, window=2, pinned_layers=2)
        streamed.forward(np.array([[1]]))
        assert streamed.fetches == CFG.layers - 2
        assert streamed.fetches_per_forward() == CFG.layers - 2
        # Pinned layers occupy the GPU tier of the store.
        assert streamed.store.tier_of(0) is Tier.GPU
        assert streamed.store.tier_of(2) is Tier.DRAM

    def test_pinning_tradeoff_gpu_memory(self, model):
        """Sec. VI-A's rejected design: pinning spends GPU bytes that the
        streamed design would hand to the batch."""
        none = StreamedTransformer(model, WS, pinned_layers=0)
        some = StreamedTransformer(model, WS, pinned_layers=3)
        assert some.store.usage(Tier.GPU) > none.store.usage(Tier.GPU)
        assert some.fetches_per_forward() < none.fetches_per_forward()


class TestValidation:
    def test_bad_window(self, model):
        with pytest.raises(ValueError):
            StreamedTransformer(model, WS, window=0)

    def test_bad_pinned_count(self, model):
        with pytest.raises(ValueError):
            StreamedTransformer(model, WS, pinned_layers=99)
