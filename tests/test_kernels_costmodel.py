"""Tests for GeMM efficiency curves and the roofline kernel cost model."""

import pytest
from hypothesis import given, strategies as st

from repro.hardware import A100_40GB, DType
from repro.kernels import (
    DEEPSPEED_FP16,
    DEEPSPEED_INT8,
    FASTER_TRANSFORMER_FP16,
    KernelCostModel,
    LayerShape,
    PYTORCH_FP16,
    cublas_bw_efficiency,
    cublas_compute_efficiency,
    sbi_bw_efficiency,
    sbi_tile_plan,
)


def shape(tokens=1, hidden=4096, kv=128, tp=1):
    return LayerShape(hidden=hidden, heads=32, batch=tokens, tokens_per_seq=1,
                      kv_len=kv, tp_degree=tp)


class TestGemmCurves:
    def test_cublas_bw_poor_at_batch_1(self):
        # cuBLAS leaves a meaningful fraction of bandwidth unused on
        # batch-1 skinny GeMMs — the gap SBI-GeMM closes.
        assert cublas_bw_efficiency(1) < 0.75
        assert cublas_bw_efficiency(1) < sbi_bw_efficiency(
            A100_40GB, 1, 12288, DType.FP16
        )

    def test_sbi_beats_cublas_at_small_batch(self):
        # The entire point of SBI-GeMM (Sec. III-C).
        for tokens in (1, 2, 4, 8):
            sbi = sbi_bw_efficiency(A100_40GB, tokens, 12288, DType.FP16)
            assert sbi > cublas_bw_efficiency(tokens)

    def test_curves_monotone_and_bounded(self):
        prev = 0.0
        for t in (1, 2, 4, 8, 16, 32, 64, 128, 512):
            e = cublas_bw_efficiency(t)
            assert prev < e <= 0.85
            prev = e
        prev = 0.0
        for t in (1, 16, 128, 1024, 8192):
            e = cublas_compute_efficiency(t)
            assert prev < e < 0.85
            prev = e

    def test_invalid_tokens(self):
        with pytest.raises(ValueError):
            cublas_bw_efficiency(0)
        with pytest.raises(ValueError):
            sbi_bw_efficiency(A100_40GB, 0, 1024, DType.FP16)

    def test_tile_plan_small_model_splits_input_dim(self):
        small = sbi_tile_plan(A100_40GB, 1024, DType.FP16)
        big = sbi_tile_plan(A100_40GB, 12288, DType.FP16)
        assert small.split_input_dim and small.kernels == 2
        assert not big.split_input_dim and big.kernels == 1
        assert "2-kernel" in small.description

    def test_tile_plan_int8_packs_4_per_thread(self):
        plan = sbi_tile_plan(A100_40GB, 8192, DType.INT8)
        assert plan.elements_per_thread == 4

    def test_small_output_dim_penalized(self):
        e_small = sbi_bw_efficiency(A100_40GB, 1, 512, DType.FP16)
        e_big = sbi_bw_efficiency(A100_40GB, 1, 16384, DType.FP16)
        assert e_small < e_big


class TestCostModel:
    def test_small_batch_is_memory_bound(self):
        cm = KernelCostModel(A100_40GB, DEEPSPEED_FP16)
        cost = cm.layer_cost(shape(tokens=1))
        gemm_regions = [r for r in cost.regions if "gemm" in r.name]
        assert gemm_regions
        assert all(r.bound == "memory" for r in gemm_regions)

    def test_large_batch_gemms_go_compute_bound(self):
        cm = KernelCostModel(A100_40GB, DEEPSPEED_FP16)
        s = LayerShape(hidden=4096, heads=32, batch=64, tokens_per_seq=512,
                       kv_len=512)
        cost = cm.layer_cost(s)
        gemm_regions = [r for r in cost.regions if "gemm" in r.name]
        assert any(r.bound == "compute" for r in gemm_regions)

    def test_latency_lower_bounded_by_weight_read(self):
        cm = KernelCostModel(A100_40GB, DEEPSPEED_FP16)
        s = shape(tokens=1)
        cost = cm.layer_cost(s)
        ideal = A100_40GB.ideal_weight_read_time(12 * s.hidden**2 * 2)
        assert cost.total_time >= ideal

    def test_deepspeed_faster_than_pytorch_at_batch_1(self):
        ds = KernelCostModel(A100_40GB, DEEPSPEED_FP16).layer_cost(shape(1))
        pt = KernelCostModel(A100_40GB, PYTORCH_FP16).layer_cost(shape(1))
        assert ds.total_time < pt.total_time
        assert ds.kernel_count < pt.kernel_count

    def test_deepspeed_faster_than_ft_across_batches(self):
        for tokens in (1, 4, 16, 64):
            ds = KernelCostModel(A100_40GB, DEEPSPEED_FP16).layer_cost(shape(tokens))
            ft = KernelCostModel(A100_40GB, FASTER_TRANSFORMER_FP16).layer_cost(
                shape(tokens))
            assert ds.total_time < ft.total_time, f"tokens={tokens}"

    def test_int8_halves_gemm_weight_traffic(self):
        fp16 = KernelCostModel(A100_40GB, DEEPSPEED_FP16).layer_cost(shape(1))
        int8 = KernelCostModel(A100_40GB, DEEPSPEED_INT8).layer_cost(shape(1))
        # Total traffic includes activations/ln params, so ratio is >0.5.
        assert 0.5 < int8.hbm_bytes / fp16.hbm_bytes < 0.62
        assert int8.total_time < fp16.total_time

    def test_cuda_graph_removes_launch_overhead(self):
        no_graph = DEEPSPEED_FP16.with_(name="ds-nograph", cuda_graph=False)
        with_graph = KernelCostModel(A100_40GB, DEEPSPEED_FP16).layer_cost(shape(1))
        without = KernelCostModel(A100_40GB, no_graph).layer_cost(shape(1))
        assert with_graph.launch_time < without.launch_time
        assert without.launch_time == pytest.approx(
            without.kernel_count
            * A100_40GB.kernel_launch_overhead,
        )

    def test_effective_bandwidth_below_peak(self):
        cm = KernelCostModel(A100_40GB, DEEPSPEED_FP16)
        cost = cm.layer_cost(shape(1))
        assert 0 < cost.effective_bandwidth < A100_40GB.mem_bw

    def test_tp_reduces_layer_time(self):
        cm = KernelCostModel(A100_40GB, DEEPSPEED_FP16)
        t1 = cm.layer_cost(shape(tokens=1, tp=1)).total_time
        t8 = cm.layer_cost(shape(tokens=1, tp=8)).total_time
        assert t8 < t1 / 4  # compute/weights shrink 8x; overheads remain

    def test_invalid_tokens_rejected(self):
        cm = KernelCostModel(A100_40GB, DEEPSPEED_FP16)
        from repro.kernels import FusedRegion, Op, OpKind, TOKEN

        op = Op("x", OpKind.ELEMENTWISE, 1, 0, 1, 1, frozenset({TOKEN}))
        with pytest.raises(ValueError):
            cm.region_time(FusedRegion((op,)), tokens=0)


@given(tokens=st.integers(min_value=1, max_value=512))
def test_layer_throughput_monotone_in_tokens(tokens):
    """More tokens never lowers throughput (tokens/s), and latency can only
    dip transiently where rising GeMM efficiency outpaces byte growth."""
    cm = KernelCostModel(A100_40GB, DEEPSPEED_FP16)
    t_a = cm.layer_cost(shape(tokens=tokens)).total_time
    t_b = cm.layer_cost(shape(tokens=tokens + 32)).total_time
    assert (tokens + 32) / t_b >= tokens / t_a * 0.98
    assert t_b >= t_a * 0.75


@given(tokens=st.sampled_from([1, 2, 4, 8, 16, 64, 256]))
def test_flops_conserved_across_profiles(tokens):
    """The same math runs regardless of implementation profile."""
    s = shape(tokens=tokens)
    costs = [
        KernelCostModel(A100_40GB, p).layer_cost(s).flops
        for p in (PYTORCH_FP16, FASTER_TRANSFORMER_FP16, DEEPSPEED_FP16)
    ]
    assert max(costs) == pytest.approx(min(costs))
