"""Bit-for-bit equivalence of the event-compressed serving fast path.

``simulate_serving`` prices whole decode stretches with one vectorized
``decode_run_cost`` call; ``simulate_serving_reference`` retains the
per-step loop it replaced. The refactor's contract is *exactness*, not
approximation: with ``detail="full"`` the compressed simulator must
reproduce the reference — report, scheduler event log, and timeline —
bit for bit, across every cost adapter and admission policy. The fleet
layer inherits the same machinery, so its compressed replicas are
checked against per-step stepping (``_max_run_steps=1``) under crashes,
slowdowns and every routing policy, and a one-replica fleet against the
single-server simulator.
"""

import pytest

import repro.engine.serving_sim as serving_sim_mod
from repro.engine import (
    ClosureStepCost,
    DenseLatencyModel,
    DenseStepCost,
    MoELatencyModel,
    MoEStepCost,
    ZeroStepCost,
    simulate_serving,
    simulate_serving_reference,
    synthesize_trace,
)
from repro.fleet import FaultPlan, ReplicaFault, simulate_fleet
from repro.hardware import dgx2_v100, dgx_a100_cluster
from repro.model import DENSE_ZOO, MOE_PARALLELISM, MOE_ZOO, get_model
from repro.zero import ZeroInferenceEngine

MAX_BATCH = 4


@pytest.fixture(scope="module")
def dense_cost():
    model = DenseLatencyModel(DENSE_ZOO["gpt-13b"], dgx_a100_cluster(1), tp=4)
    return DenseStepCost(model)


@pytest.fixture(scope="module")
def moe_cost():
    cluster = dgx_a100_cluster(16)
    cfg = MOE_ZOO["1.3b-moe-128"]
    model = MoELatencyModel(cfg, cluster, MOE_PARALLELISM[cfg.name],
                            optimized=True)
    return MoEStepCost(model)


@pytest.fixture(scope="module")
def zero_cost():
    engine = ZeroInferenceEngine(get_model("gpt-neox-20b"), dgx2_v100(1))
    return ZeroStepCost(engine)


@pytest.fixture
def cost(request, dense_cost, moe_cost, zero_cost):
    """Every pricing mode the simulators accept, by name."""
    if request.param == "dense":
        return dense_cost
    if request.param == "moe":
        return moe_cost
    if request.param == "zero":
        return zero_cost
    if request.param == "dense-compat":
        model = DenseLatencyModel(DENSE_ZOO["gpt-13b"], dgx_a100_cluster(1),
                                  tp=4)
        return DenseStepCost(model, representative_kv=136)
    assert request.param == "closure"
    return ClosureStepCost(lambda b, p: 0.3 + 0.01 * p,
                           lambda b: 0.05 + 0.01 * b)


def _trace(n=80, seed=7, rate=40.0):
    """Arrivals dense enough to exercise queueing, sparse enough that
    stretches get split by arrivals mid-run."""
    return synthesize_trace(num_requests=n, arrival_rate=rate,
                            mean_prompt=32, mean_gen=12, seed=seed)


def _events(sched):
    return [(e.step, e.kind, e.request_id, e.reason) for e in sched.events]


class TestServingBitForBit:
    """The acceptance matrix: adapters x policies, full fidelity."""

    @pytest.mark.parametrize(
        "cost", ["dense", "dense-compat", "moe", "zero", "closure"],
        indirect=True)
    @pytest.mark.parametrize("policy", ["fcfs", "shortest_prompt"])
    def test_report_events_and_timeline_identical(self, cost, policy):
        trace = _trace()
        fast = simulate_serving(trace, costs=cost, max_batch=MAX_BATCH,
                                policy=policy, detail="full")
        ref = simulate_serving_reference(trace, costs=cost,
                                         max_batch=MAX_BATCH, policy=policy)
        # ServingReport equality covers makespan, finish/first-token/
        # queue-delay dicts and total_tokens (dataclass ==).
        assert fast == ref
        assert _events(fast.scheduler) == _events(ref.scheduler)
        assert fast.timeline.to_rows() == ref.timeline.to_rows()

    def test_burst_trace_saturates_then_drains(self, dense_cost):
        """All-at-t=0 arrivals: after admission the queue drains with no
        arrival breaks, so stretches reach the retirement horizon."""
        trace = _trace(n=40, rate=1e9)
        fast = simulate_serving(trace, costs=dense_cost, max_batch=MAX_BATCH,
                                detail="full")
        ref = simulate_serving_reference(trace, costs=dense_cost,
                                         max_batch=MAX_BATCH)
        assert fast == ref
        assert fast.timeline.to_rows() == ref.timeline.to_rows()


class TestDetailLevels:
    def test_summary_report_equals_full(self, dense_cost):
        trace = _trace()
        full = simulate_serving(trace, costs=dense_cost, max_batch=MAX_BATCH,
                                detail="full")
        summary = simulate_serving(trace, costs=dense_cost,
                                   max_batch=MAX_BATCH, detail="summary")
        assert summary == full  # numbers never degrade, only the timeline
        assert _events(summary.scheduler) == _events(full.scheduler)

    def test_summary_drops_per_request_lanes(self, dense_cost):
        trace = _trace(n=30)
        full = simulate_serving(trace, costs=dense_cost, max_batch=MAX_BATCH,
                                detail="full")
        summary = simulate_serving(trace, costs=dense_cost,
                                   max_batch=MAX_BATCH, detail="summary")
        assert any(lane.startswith("req-") for lane in full.timeline.lanes())
        assert not any(lane.startswith("req-")
                       for lane in summary.timeline.lanes())
        assert "server" in summary.timeline.lanes()
        # Aggregation also shrinks the server lane itself.
        assert len(summary.timeline.spans("server")) < \
            len(full.timeline.spans("server"))

    def test_auto_switches_at_threshold(self, dense_cost, monkeypatch):
        monkeypatch.setattr(serving_sim_mod, "SUMMARY_DETAIL_THRESHOLD", 20)
        small = simulate_serving(_trace(n=10), costs=dense_cost,
                                 max_batch=MAX_BATCH)
        big = simulate_serving(_trace(n=25), costs=dense_cost,
                               max_batch=MAX_BATCH)
        assert any(lane.startswith("req-") for lane in small.timeline.lanes())
        assert not any(lane.startswith("req-")
                       for lane in big.timeline.lanes())

    def test_unknown_detail_rejected(self, dense_cost):
        with pytest.raises(ValueError, match="detail"):
            simulate_serving(_trace(n=5), costs=dense_cost,
                             max_batch=MAX_BATCH, detail="chatty")


FAULT_PLANS = {
    "none": None,
    "crash": FaultPlan((ReplicaFault(1, 0.9, "crash"),)),
    "slowdown": FaultPlan((ReplicaFault(0, 0.5, "slowdown", factor=2.5),)),
    "crash+slowdown": FaultPlan((
        ReplicaFault(1, 0.9, "crash"),
        ReplicaFault(2, 0.4, "slowdown", factor=1.8),
    )),
}


class TestFleetBitForBit:
    """Compressed replicas vs forced per-step stepping: faults, slowdown
    onsets and arrivals must split stretches exactly where per-step
    execution would act."""

    @pytest.mark.parametrize("routing", ["round_robin", "least_outstanding",
                                         "power_of_two", "session_affinity"])
    @pytest.mark.parametrize("faults", list(FAULT_PLANS))
    def test_compressed_equals_per_step(self, dense_cost, routing, faults):
        trace = _trace(n=60)
        kwargs = dict(num_replicas=3, costs=dense_cost, max_batch=MAX_BATCH,
                      routing=routing, fault_plan=FAULT_PLANS[faults],
                      detail="full")
        fast = simulate_fleet(trace, **kwargs)
        ref = simulate_fleet(trace, _max_run_steps=1, **kwargs)
        # FleetReport equality covers makespan, the per-request dicts,
        # replica assignment, retries, token accounting, per-replica
        # stats (incl. busy_time) and the routing log.
        assert fast == ref
        for fast_s, ref_s in zip(fast.schedulers, ref.schedulers):
            assert _events(fast_s) == _events(ref_s)
        assert fast.timeline.to_rows() == ref.timeline.to_rows()

    def test_one_replica_fleet_matches_serving(self, dense_cost):
        trace = _trace()
        fleet = simulate_fleet(trace, num_replicas=1, costs=dense_cost,
                               max_batch=MAX_BATCH)
        serving = simulate_serving(trace, costs=dense_cost,
                                   max_batch=MAX_BATCH)
        assert fleet.makespan == serving.makespan
        assert fleet.finish_times == serving.finish_times
        assert fleet.first_token_times == serving.first_token_times
        assert fleet.queue_delays == serving.queue_delays
        assert fleet.total_tokens == serving.total_tokens

    def test_summary_detail_keeps_fleet_numbers(self, dense_cost):
        trace = _trace(n=60)
        kwargs = dict(num_replicas=3, costs=dense_cost, max_batch=MAX_BATCH,
                      fault_plan=FAULT_PLANS["crash+slowdown"])
        full = simulate_fleet(trace, detail="full", **kwargs)
        summary = simulate_fleet(trace, detail="summary", **kwargs)
        assert summary == full
        assert not any(lane.startswith("req-")
                       for lane in summary.timeline.lanes())
