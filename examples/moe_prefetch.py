"""MoE expert placement walkthrough: uniform -> replicated -> +prefetch.

The paper's trillion-parameter MoE serving results assume tokens spread
evenly over experts. Under a realistic Zipf-skewed gate distribution,
the expert-parallel rank that owns the hottest expert becomes the
dispatch straggler. This example walks the same skewed serving trace
through three expert placements at equal GPU count:

1. **uniform** — the paper's baseline, one contiguous expert range per
   rank, priced with the skew's straggler ratio;
2. **replicated** — the hottest experts replicated across ranks
   (load-balanced bin packing over predicted loads), funded by demoting
   the coldest experts to a streamed tier fetched on demand;
3. **replicated + prefetch** — a gate-history predictor prefetches the
   likely-hot streamed experts, so most fetches overlap with compute.

Run:  PYTHONPATH=src python examples/moe_prefetch.py
"""

from repro.engine.costs import MoEStepCost
from repro.engine.moe import MoELatencyModel
from repro.engine.serving_sim import simulate_serving, synthesize_trace
from repro.hardware import dgx_a100_cluster
from repro.model import MOE_PARALLELISM, MOE_ZOO
from repro.moe_placement import (
    GateHistoryPredictor,
    SkewedDispatchSpec,
    calibrated_dispatch,
    plan_placement,
    simulate_expert_stream,
    synthesize_gate_stream,
    uniform_placement,
    zipf_expert_probs,
)

MODEL = "24b-moe-128"
EXPERT_SKEW = 1.2
SEED = 41


def main() -> None:
    config = MOE_ZOO[MODEL]
    par = MOE_PARALLELISM[MODEL]
    cluster = dgx_a100_cluster(par.num_gpus // 8)
    model = MoELatencyModel(config, cluster, par)
    num_experts = config.moe.num_experts

    print(f"=== {MODEL}: {par.num_gpus} GPUs, MP {par.mp_degree} x "
          f"EP {par.ep_degree}, Zipf skew {EXPERT_SKEW} ===")

    # -- the skew, and what the predictor makes of it -----------------------
    probs = zipf_expert_probs(num_experts, EXPERT_SKEW, seed=SEED)
    stream = synthesize_gate_stream(64, 32 * config.moe.top_k, probs,
                                    seed=SEED)
    predictor = GateHistoryPredictor(num_experts)
    for row in stream[:16]:
        predictor.update(row)
    hot = predictor.hot_experts(4)
    print(f"  top-4 gate mass {probs[hot].sum():.0%} "
          f"(uniform would be {4 / num_experts:.0%}); "
          f"predictor's hot set after 16 steps: {hot.tolist()}")

    # -- three placements ---------------------------------------------------
    uniform = SkewedDispatchSpec(
        probs=probs,
        placement=uniform_placement(num_experts, par.ep_degree),
        top_k=config.moe.top_k,
    )
    plan = plan_placement(probs, par.ep_degree, replication=4, num_hot=8)
    replicated = SkewedDispatchSpec(
        probs=probs, placement=plan.placement, top_k=config.moe.top_k,
        streamed=plan.streamed, prefetch_hit_rate=0.0,
        expert_fetch_time=model.expert_fetch_time(),
    )
    prefetched = calibrated_dispatch(
        probs, plan, stream, top_k=config.moe.top_k,
        expert_fetch_time=model.expert_fetch_time(),
    )
    report = simulate_expert_stream(stream, plan.streamed)
    print(f"  replication 4 on the {plan.num_hot} hottest experts demotes "
          f"{len(plan.streamed)} cold experts to the streamed tier")
    print(f"  straggler ratio at batch 32: uniform "
          f"{uniform.load_ratio(32):.1f}x vs replicated "
          f"{replicated.load_ratio(32):.1f}x; prefetch hit rate "
          f"{report.hit_rate:.0%}")

    # -- end to end through the serving simulator ---------------------------
    trace = synthesize_trace(num_requests=2000, arrival_rate=4.2,
                             mean_prompt=128, mean_gen=256,
                             expert_skew=EXPERT_SKEW, seed=SEED)
    print(f"\n  serving {len(trace.requests)} requests at 4.2 req/s:")
    for name, spec in (("uniform", uniform), ("replicated", replicated),
                       ("replicated+prefetch", prefetched)):
        rep = simulate_serving(trace, costs=MoEStepCost(model, skew=spec),
                               max_batch=32)
        print(f"  {name:20s} P99 TTFT {rep.ttft_percentile(trace, 99):8.2f} s"
              f"   {rep.tokens_per_second:7.1f} tok/s")


if __name__ == "__main__":
    main()
