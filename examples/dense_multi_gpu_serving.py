"""Serving GPT-3 175B and MT-NLG 530B across many GPUs (Secs. IV, VII-B/C).

Demonstrates:

* parallelism planning (tensor slicing inside nodes, pipeline across),
* the three pipeline schedules — token-lockstep baseline, DeepSpeed's
  dynamic token queue, and hybrid prompt scheduling — on the same
  deployment, with their simulated timelines summarized,
* best-batch throughput vs the FasterTransformer baseline (Fig. 8), and
* functional verification: tensor-parallel + pipeline-staged execution of
  a scaled-down model reproduces single-device logits exactly.

Run:  python examples/dense_multi_gpu_serving.py
"""

import numpy as np

from repro.baselines import FasterTransformerBaseline
from repro.comm import spmd
from repro.engine import DenseLatencyModel, Workload, best_throughput
from repro.hardware import dgx_a100_cluster
from repro.model import DENSE_ZOO, DenseTransformer, ModelConfig
from repro.parallel import partition_layers, plan_dense, staged_forward, tp_forward


def plan_and_schedule() -> None:
    cluster = dgx_a100_cluster(8)
    cfg = DENSE_ZOO["lm-175b"]
    plan = plan_dense(cfg, cluster, batch=16, seq_len=640)
    print(f"=== {cfg.name}: planner chose TP={plan.tp} x PP={plan.pp} "
          f"({plan.gpus} GPUs, {plan.memory_per_gpu / 1e9:.1f} GB/GPU) ===")

    w = Workload(batch=16, prompt_len=512, gen_tokens=50)
    variants = {
        "token-lockstep (FT-style)": dict(lockstep_generation=True),
        "dynamic token queue": dict(),
        "dynamic + hybrid prompt": dict(hybrid_prompt_factor=4),
    }
    for label, kw in variants.items():
        model = DenseLatencyModel(cfg, cluster, tp=plan.tp, pp=plan.pp, **kw)
        r = model.estimate(w)
        print(f"  {label:28s} prompt {r.prompt_latency:6.2f} s   "
              f"total {r.total_latency:6.2f} s   "
              f"{r.tokens_per_second:6.1f} tok/s")


def fig8_style_comparison() -> None:
    print("\n=== best-batch throughput vs FasterTransformer (Fig. 8) ===")
    cluster = dgx_a100_cluster(8)
    cfg = DENSE_ZOO["lm-175b"]
    ds = DenseLatencyModel(cfg, cluster, tp=8, pp=2, hybrid_prompt_factor=2)
    ds_pt = best_throughput(ds, prompt_len=512, gen_tokens=50,
                            offload_activations=True)
    ft = FasterTransformerBaseline(cfg, cluster, tp=8, pp=2)
    ft_pt = ft.best_throughput(prompt_len=512, gen_tokens=50)
    print(f"  FasterTransformer: {ft_pt.tokens_per_second:7.1f} tok/s "
          f"(batch {ft_pt.batch})")
    print(f"  DeepSpeed:         {ds_pt.tokens_per_second:7.1f} tok/s "
          f"(batch {ds_pt.batch})   "
          f"speedup {ds_pt.tokens_per_second / ft_pt.tokens_per_second:.2f}x")


def functional_verification() -> None:
    """TP x PP execution of a small model matches the dense reference."""
    print("\n=== functional check: TP=2 + 3 pipeline stages == reference ===")
    cfg = ModelConfig(name="mini", hidden=48, layers=6, heads=4, vocab=91,
                      max_seq=32)
    model = DenseTransformer(cfg, seed=7)
    ids = np.array([[5, 17, 42, 3]])
    reference = model.forward(ids)

    stages = partition_layers(cfg.layers, 3)

    def tp_then_stage(comm):
        # Each pipeline stage runs tensor-parallel internally.
        hidden = None
        for plan in stages:
            hidden = tp_forward(
                comm, model, ids,
                layer_range=(plan.start, plan.end),
                hidden_in=hidden,
                return_hidden=plan.end != cfg.layers,
            )
        return hidden

    logits = spmd(2, tp_then_stage)[0]
    np.testing.assert_allclose(logits, reference, atol=1e-10)
    staged = staged_forward(model, stages, ids)
    np.testing.assert_allclose(staged, reference, atol=1e-12)
    print("  distributed logits match the single-device reference.")


if __name__ == "__main__":
    plan_and_schedule()
    fig8_style_comparison()
    functional_verification()
