"""Fleet serving: a 4-replica fleet surviving a mid-trace crash.

The layer above one server (``repro.fleet``): a router spreads a trace
over N replicas — each the same scheduler-backed continuous-batching
server as in ``serving_and_tuning.py`` — and a scripted
:class:`~repro.fleet.FaultPlan` kills one of them halfway through. The
dead replica's queued and in-flight requests requeue to the survivors
and restart from scratch, so the fleet still completes 100% of the
trace; the cost shows up as discarded tokens and a fatter tail.

Demonstrated here:

* :func:`~repro.fleet.simulate_fleet` — healthy vs faulted run, load
  shift, multi-lane chrome-trace export;
* :func:`~repro.fleet.run_fleet_functional` — the same placements on
  real model replicas, with every completed output (retries included)
  identical to solo ``model.generate``;
* :func:`~repro.fleet.tune_fleet_deployment` — splitting a GPU budget
  between tensor-parallel scale-up and replica scale-out under a P99
  TTFT SLA.

Run:  python examples/fleet_serving.py
"""

import json
import tempfile

import numpy as np

from repro.engine import DenseLatencyModel, DenseStepCost, synthesize_trace
from repro.fleet import (
    FaultPlan,
    ReplicaFault,
    run_fleet_functional,
    simulate_fleet,
    synthesize_prompts,
    tune_fleet_deployment,
)
from repro.hardware import dgx_a100_cluster
from repro.model import DENSE_ZOO, DenseTransformer, ModelConfig

NUM_REPLICAS = 4


def crash_demo() -> None:
    print("=== 4-replica fleet, one crash mid-trace (analytical) ===")
    cluster = dgx_a100_cluster(1)
    lat = DenseLatencyModel(DENSE_ZOO["gpt-13b"], cluster, tp=2)
    costs = DenseStepCost(lat)  # true-KV pricing (repro.engine.costs)
    trace = synthesize_trace(num_requests=120, arrival_rate=80.0,
                             mean_prompt=128, mean_gen=16, seed=9)
    t_crash = trace.duration / 2
    plan = FaultPlan((ReplicaFault(replica=2, time=t_crash),))

    healthy = simulate_fleet(trace, num_replicas=NUM_REPLICAS, costs=costs,
                             max_batch=8, routing="least_outstanding")
    faulted = simulate_fleet(trace, num_replicas=NUM_REPLICAS, costs=costs,
                             max_batch=8, routing="least_outstanding",
                             fault_plan=plan)

    for name, rep in (("healthy", healthy), ("crashed", faulted)):
        print(f"  {name:8s}: {rep.num_completed}/{len(trace.requests)} done, "
              f"per-replica counts {rep.request_counts}, "
              f"{rep.tokens_per_second:6.0f} tok/s, "
              f"TTFT p99 {rep.ttft_percentile(trace, 99) * 1e3:6.1f} ms")
    print(f"  replica 2 died at t={t_crash:.2f}s: {len(faulted.retried)} "
          f"requests requeued to survivors, "
          f"{faulted.tokens_discarded} generated tokens discarded")
    assert faulted.num_completed == len(trace.requests)  # nothing lost

    with tempfile.NamedTemporaryFile("w", suffix=".json",
                                     delete=False) as f:
        json.dump({"traceEvents": faulted.timeline.to_chrome_trace()}, f)
        print(f"  fleet timeline (replica lanes + router) -> {f.name}")


def functional_demo() -> None:
    print("\n=== same control plane on real model replicas ===")
    cfg = ModelConfig(name="fleet-demo", hidden=48, layers=3, heads=6,
                      vocab=101, max_seq=64)
    model = DenseTransformer(cfg, seed=3)
    trace = synthesize_trace(num_requests=24, arrival_rate=300.0,
                             mean_prompt=5, mean_gen=5, seed=4)
    plan = FaultPlan((ReplicaFault(replica=0,
                                   time=trace.duration + 0.01),))
    prompts = synthesize_prompts(trace, vocab=cfg.vocab, seed=1)
    res = run_fleet_functional(
        model, trace, num_replicas=3,
        prompt_time=lambda b, p: 0.02 + 0.001 * p,
        step_time=lambda b: 0.01 + 0.001 * b,
        max_batch=4, routing="least_outstanding", fault_plan=plan,
        prompts=prompts)
    for r in trace.requests:  # retries included: no dead token leaks
        solo = model.generate(prompts[r.request_id][None, :],
                              r.gen_tokens)[0]
        assert np.array_equal(res.outputs[r.request_id], solo)
    print(f"  {res.report.num_completed} requests served on real replicas "
          f"({len(res.report.retried)} retried after the crash); every "
          "output identical to solo model.generate.")


def tuning_demo() -> None:
    print("\n=== fleet tuning: GPT-13B, 8-GPU budget, 0.5 s TTFT SLA ===")
    cluster = dgx_a100_cluster(1)
    trace = synthesize_trace(num_requests=60, arrival_rate=20.0,
                             mean_prompt=128, mean_gen=16, seed=7)
    best = tune_fleet_deployment(DENSE_ZOO["gpt-13b"], cluster, trace,
                                 gpu_budget=8, ttft_sla=0.5)
    print(f"  best: {best.replicas} replica(s) x tp={best.tp} "
          f"(= {best.num_gpus} GPUs), max_batch={best.max_batch} -> "
          f"{best.tokens_per_second:.0f} tok/s, "
          f"TTFT p99 {best.ttft_p99 * 1e3:.0f} ms")
    print("  scale-up vs scale-out decided by replay, not rules of thumb.")


if __name__ == "__main__":
    crash_demo()
    functional_demo()
    tuning_demo()
