"""Chat serving with copy-on-write prefix sharing.

A multi-turn chat workload re-sends the whole conversation every turn,
so most prompt tokens are ones the server already processed. This
example builds a chat trace with the scenario zoo, serves it with and
without prefix sharing at equal simulated hardware (gpt-13b on one
DGX-A100, TP=4), and shows what the shared-prefix KV reuse buys:

1. **analytical**: `simulate_serving` prices prefix-hit prompts as
   suffix-only prefill and runs the block ledger — vs the
   `strip_prefix_sharing` ablation (same trace, same session-cache
   parking, prefixes zeroed);
2. **functional**: a real `GenerationSession` forks parked paged-KV
   caches copy-on-write and must report the *same* reuse counters.

Run:  python examples/chat_serving.py
"""

import numpy as np

from repro.engine import (
    DenseLatencyModel,
    DenseStepCost,
    GenerationSession,
    simulate_serving,
)
from repro.hardware import dgx_a100_cluster
from repro.model import DENSE_ZOO, DenseTransformer, ModelConfig
from repro.scenarios import chat_scenario, strip_prefix_sharing


def analytical_demo() -> None:
    print("=== chat trace: 64 sessions, ~4 turns each, gpt-13b TP=4 ===")
    trace = chat_scenario(num_sessions=64, session_rate=8.0,
                          mean_prompt=128, mean_gen=32,
                          num_requests=2000, seed=33)
    turns = sum(1 for r in trace.requests if r.turn_index > 0)
    print(f"  {len(trace.requests)} requests, {turns} follow-up turns "
          f"({turns / len(trace.requests):.0%} carry a reusable prefix)")

    costs = DenseStepCost(
        DenseLatencyModel(DENSE_ZOO["gpt-13b"], dgx_a100_cluster(1), tp=4))
    on = simulate_serving(trace, costs=costs, max_batch=8)
    off = simulate_serving(strip_prefix_sharing(trace), costs=costs,
                           max_batch=8)

    print("\n  metric                     sharing on    stripped ablation")
    rows = [
        ("P99 TTFT (s)", f"{on.ttft_percentile(trace, 99):.3f}",
         f"{off.ttft_percentile(trace, 99):.3f}"),
        ("makespan (s)", f"{on.makespan:.1f}", f"{off.makespan:.1f}"),
        ("prefix hits", on.prefix_hits, off.prefix_hits),
        ("prefix hit tokens", on.prefix_hit_tokens, off.prefix_hit_tokens),
        ("KV blocks allocated", on.kv_blocks_allocated,
         off.kv_blocks_allocated),
        ("peak KV blocks", on.peak_kv_blocks, off.peak_kv_blocks),
        ("KV dedup ratio", f"{on.kv_dedup_ratio:.1%}",
         f"{off.kv_dedup_ratio:.1%}"),
    ]
    for name, a, b in rows:
        print(f"  {name:24s} {a!s:>12}    {b!s:>12}")


def functional_demo() -> None:
    """The same mechanism with real forwards: parked caches are forked
    copy-on-write and every output still equals solo generation."""
    print("\n=== functional: real session, COW forks, exact outputs ===")
    cfg = ModelConfig(name="chat-demo", hidden=32, layers=2, heads=4,
                      vocab=101, max_seq=128)
    model = DenseTransformer(cfg, seed=7)
    trace = chat_scenario(num_sessions=3, session_rate=1.0,
                          mean_prompt=12, mean_gen=4,
                          num_requests=10, seed=11)

    session = GenerationSession(model, seed=0, max_concurrency=4,
                                kv_block_size=4, prefix_sharing=True)
    rng = np.random.default_rng(0)
    step = 0
    pending = sorted(trace.requests, key=lambda r: r.arrival)
    while pending or session.num_waiting or session.num_active:
        while pending and pending[0].arrival <= step * 0.05:
            r = pending.pop(0)
            session.submit(rng.integers(0, cfg.vocab, size=r.prompt_len),
                           max_new_tokens=r.gen_tokens,
                           request_id=r.request_id, session=r.session,
                           tenant=r.tenant,
                           shared_prefix_len=r.shared_prefix_len)
        session.step()
        step += 1
    done = {r.request_id: session.result(r.request_id)
            for r in trace.requests}

    reused = sum(1 for g in done.values() if g.prefix_reused > 0)
    exact = all(
        np.array_equal(
            g.output_ids,
            model.generate(np.asarray(g.prompt)[None, :],
                           len(g.output_ids) - len(g.prompt))[0])
        for g in done.values())
    print(f"  {len(done)} requests served, {reused} adopted a parked prefix")
    print(f"  prefix hits {session.prefix_hits}, "
          f"hit tokens {session.prefix_hit_tokens}, "
          f"blocks saved {session.kv_blocks_saved}")
    print(f"  every output equals solo model.generate: {exact}")


if __name__ == "__main__":
    analytical_demo()
    functional_demo()
