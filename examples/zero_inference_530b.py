"""ZeRO-Inference: 530B on a single workstation GPU (Sec. VI, Fig. 9).

Demonstrates:

* the placement rule (DRAM if it fits, else NVMe) and the 25x model-scale
  headroom over a GPU-only deployment,
* throughput at max batch for models from 20B to 530B, with the
  fetch/compute overlap pipeline and prefetching,
* multi-GPU PCIe-sharded fetching on a DGX-2 (near-linear scaling),
* the functional tiered weight store streaming a real (tiny) model's
  layers from "DRAM" while producing exact logits.

Run:  python examples/zero_inference_530b.py
"""

import numpy as np

from repro.baselines import CPUOnlyBaseline, GPUOnlyBaseline
from repro.hardware import dgx2_v100, lambda_a6000_workstation
from repro.model import DenseTransformer, ModelConfig, get_model
from repro.zero import Tier, TieredWeightStore, ZeroInferenceEngine


def model_scale_tour() -> None:
    ws = lambda_a6000_workstation(1)
    print("=== one A6000-48GB workstation: who can run what? ===")
    print(f"  {'model':14s} {'gpu-only':9s} {'cpu-only':9s} "
          f"{'zero tier':9s} {'batch':>5s} {'TFLOPS':>7s} {'% peak':>6s}")
    for name in ("gpt-neox-20b", "gpt-50b", "gpt-87b", "lm-175b", "lm-530b"):
        cfg = get_model(name)
        gpu_ok = GPUOnlyBaseline(cfg, ws).fits()
        cpu_ok = CPUOnlyBaseline(cfg, ws).fits()
        eng = ZeroInferenceEngine(cfg, ws)
        rep = eng.max_batch_pass(seq_len=2048)
        pct = 100 * rep.tflops_per_gpu * 1e12 / ws.gpu.fp16_flops
        print(f"  {name:14s} {str(gpu_ok):9s} {str(cpu_ok):9s} "
              f"{eng.placement.value:9s} {rep.batch:5d} "
              f"{rep.tflops_per_gpu:7.1f} {pct:5.1f}%")
    print("  -> 530B runs on one GPU: ~25x beyond the GPU-only ceiling (20B).")


def prefetch_and_scaling() -> None:
    print("\n=== prefetching and multi-GPU scaling (DGX-2, GPT-50B) ===")
    dgx2 = dgx2_v100(16)
    cfg = get_model("gpt-50b")
    for n in (1, 4, 16):
        eng = ZeroInferenceEngine(cfg, dgx2, num_gpus=n)
        rep = eng.max_batch_pass(seq_len=2048)
        print(f"  {n:2d} V100s: batch {rep.batch:4d}  "
              f"{rep.tflops_per_gpu:5.1f} TFLOPS/GPU  "
              f"total {rep.tflops_per_gpu * n:7.1f} TFLOPS")
    eng0 = ZeroInferenceEngine(cfg, dgx2, num_gpus=1, prefetch_depth=0)
    eng1 = ZeroInferenceEngine(cfg, dgx2, num_gpus=1, prefetch_depth=1)
    r0 = eng0.forward_pass(batch=1, tokens_per_seq=2048)
    r1 = eng1.forward_pass(batch=1, tokens_per_seq=2048)
    print(f"  prefetch off/on at batch 1: {r0.time:5.2f} s -> {r1.time:5.2f} s "
          f"({r0.time / r1.time:.2f}x)")


def functional_streaming() -> None:
    print("\n=== functional check: layer streaming preserves the logits ===")
    ws = lambda_a6000_workstation(1)
    cfg = ModelConfig(name="stream-demo", hidden=32, layers=4, heads=4,
                      vocab=61, max_seq=16)
    model = DenseTransformer(cfg, seed=11)
    ids = np.array([[3, 14, 15, 9]])
    reference = model.forward(ids)

    # Park every layer's weights in the DRAM tier, then run the forward
    # pass fetching them layer by layer — what ZeRO-Inference does.
    store = TieredWeightStore(ws)
    for i, lw in enumerate(model.layers):
        blob = np.concatenate([getattr(lw, f).ravel()
                               for f in lw.__dataclass_fields__])
        store.put(i, blob, Tier.DRAM)

    x = model.wte[ids] + model.wpe[: ids.shape[1]]
    for i, lw in enumerate(model.layers):
        fetched = store.fetch(i)  # the layer's bytes cross "PCIe" here
        assert fetched.size == lw.num_params
        x = model.attention_block(x, lw, i, None)
        x = model.mlp_block(x, lw, i)
    from repro.kernels.functional import layer_norm

    logits = layer_norm(x, model.lnf_g, model.lnf_b) @ model.wte.T
    np.testing.assert_allclose(logits, reference, atol=1e-12)
    print(f"  streamed {len(store.fetch_log)} layers "
          f"({sum(e.nbytes for e in store.fetch_log) / 1e6:.2f} MB), "
          f"modeled fetch time {store.total_fetch_time * 1e6:.1f} us; "
          "logits exact.")


if __name__ == "__main__":
    model_scale_tour()
    prefetch_and_scaling()
    functional_streaming()
