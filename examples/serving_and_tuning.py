"""Serving sessions and deployment tuning — the production framing.

Sec. I frames inference as meeting a latency SLA while maximizing
throughput, over requests that arrive and finish independently. This
example demonstrates the two extension features built on that framing:

* :class:`~repro.engine.GenerationSession` — continuous batching over a
  real (tiny) model: one shared :class:`~repro.engine.Scheduler` admits
  requests into bounded slots (pluggable policy), every decode step is
  ONE batched forward over paged KV blocks, and every output is
  identical to running that prompt alone;
* :func:`~repro.engine.simulate_serving` — the analytical backend
  replaying the *same* scheduler priced by the latency model, with a
  chrome-trace exportable timeline;
* :func:`~repro.engine.tune_dense_deployment` /
  :func:`~repro.engine.tune_serving_deployment` — search deployments for
  the best SLA-compliant throughput, steady-state or trace-level.

Run:  python examples/serving_and_tuning.py
"""

import json
import tempfile

import numpy as np

from repro.engine import (
    DenseLatencyModel,
    DenseStepCost,
    GenerationSession,
    simulate_serving,
    synthesize_trace,
    tune_dense_deployment,
    tune_serving_deployment,
)
from repro.hardware import dgx_a100_cluster
from repro.model import DENSE_ZOO, DenseTransformer, ModelConfig


def serving_demo() -> None:
    print("=== continuous-batching serving session (functional) ===")
    cfg = ModelConfig(name="serve-demo", hidden=48, layers=3, heads=6,
                      vocab=101, max_seq=64)
    model = DenseTransformer(cfg, seed=3)
    session = GenerationSession(model, max_concurrency=3)

    rng = np.random.default_rng(0)
    rids = []
    for want in (3, 6, 2, 5, 4):
        prompt = rng.integers(0, cfg.vocab, size=4)
        rids.append(session.submit(prompt, max_new_tokens=want))

    # Step manually so the continuous-batching dynamics are visible.
    while session.num_active or session.num_waiting:
        finished = session.step()
        state = (f"step {session.steps_run:2d}: active={session.num_active} "
                 f"waiting={session.num_waiting}")
        if finished:
            state += f"  finished={finished}"
        print("  " + state)

    for rid in rids:
        req = session.result(rid)
        assert np.array_equal(  # isolation: same as running alone
            req.output_ids,
            model.generate(req.prompt[None, :], len(req.generated))[0],
        )
    print(f"  {len(rids)} requests, {session.tokens_generated} tokens in "
          f"{session.forward_calls} forwards (vs {session.tokens_generated} "
          "for a per-request loop), all outputs identical to solo runs.")
    print(f"  admission order: {session.scheduler.admission_order}, "
          f"kv blocks now in use: {session.kv_blocks_in_use}")

    # Same workload under the shortest-prompt policy: the scheduler, not
    # the execution engine, decides who runs.
    sp = GenerationSession(model, max_concurrency=1,
                           policy="shortest_prompt")
    rng = np.random.default_rng(0)
    for want, plen in ((2, 6), (2, 1), (2, 3)):
        sp.submit(rng.integers(0, cfg.vocab, size=plen), max_new_tokens=want)
    sp.run()
    print(f"  shortest-prompt admission order: "
          f"{sp.scheduler.admission_order} (submitted 0, 1, 2)")


def analytical_serving_demo() -> None:
    print("\n=== analytical replay: the same scheduler, priced ===")
    cluster = dgx_a100_cluster(1)
    lat = DenseLatencyModel(DENSE_ZOO["gpt-13b"], cluster, tp=4)
    # True-KV pricing: each decode step costs what the live batch's
    # actual context lengths imply (see repro.engine.costs).
    trace = synthesize_trace(num_requests=80, arrival_rate=25.0,
                             mean_prompt=128, mean_gen=16, seed=5)
    rep = simulate_serving(trace, costs=DenseStepCost(lat), max_batch=16)
    print(f"  {len(trace.requests)} requests -> "
          f"{rep.tokens_per_second:7.0f} tok/s, "
          f"TTFT p50 {rep.ttft_percentile(trace, 50) * 1e3:6.1f} ms, "
          f"p99 {rep.ttft_percentile(trace, 99) * 1e3:6.1f} ms")
    with tempfile.NamedTemporaryFile("w", suffix=".json",
                                     delete=False) as f:
        json.dump({"traceEvents": rep.timeline.to_chrome_trace()}, f)
        print(f"  scheduler timeline -> {f.name} "
              "(load in ui.perfetto.dev)")

    best = tune_serving_deployment(DENSE_ZOO["gpt-13b"], cluster, trace,
                                   ttft_sla=1.0, max_gpus=8)
    print(f"  best under 1 s P99-TTFT SLA: tp={best.tp} "
          f"max_batch={best.max_batch} -> {best.tokens_per_second:.0f} tok/s "
          f"(p99 TTFT {best.ttft_p99 * 1e3:.0f} ms)")


def tuning_demo() -> None:
    print("\n=== deployment tuning: GPT-13B on 2 DGX-A100 nodes ===")
    cluster = dgx_a100_cluster(2)
    cfg = DENSE_ZOO["gpt-13b"]
    print(f"  {'SLA':>8s} {'TP':>3s} {'PP':>3s} {'batch':>6s} "
          f"{'token ms':>9s} {'tok/s':>8s}")
    for sla_ms in (12, 20, 40, None):
        r = tune_dense_deployment(
            cfg, cluster, prompt_len=128, gen_tokens=8,
            latency_sla=None if sla_ms is None else sla_ms * 1e-3,
            max_gpus=8, hybrid_factors=(1,),
        )
        label = "none" if sla_ms is None else f"{sla_ms} ms"
        print(f"  {label:>8s} {r.tp:3d} {r.pp:3d} {r.batch:6d} "
              f"{r.token_latency * 1e3:9.2f} {r.tokens_per_second:8.0f}")
    print("  tighter SLAs force smaller batches; throughput is the price.")


if __name__ == "__main__":
    serving_demo()
    analytical_serving_demo()
    tuning_demo()
