"""Serving sessions and deployment tuning — the production framing.

Sec. I frames inference as meeting a latency SLA while maximizing
throughput, over requests that arrive and finish independently. This
example demonstrates the two extension features built on that framing:

* :class:`~repro.engine.GenerationSession` — continuous batching over a
  real (tiny) model: requests join mid-flight, finish on EOS or length,
  and every output is identical to running that prompt alone;
* :func:`~repro.engine.tune_dense_deployment` — search TP x PP x batch x
  schedule for the best SLA-compliant throughput on a cluster.

Run:  python examples/serving_and_tuning.py
"""

import numpy as np

from repro.engine import GenerationSession, tune_dense_deployment
from repro.hardware import dgx_a100_cluster
from repro.model import DENSE_ZOO, DenseTransformer, ModelConfig


def serving_demo() -> None:
    print("=== continuous-batching serving session (functional) ===")
    cfg = ModelConfig(name="serve-demo", hidden=48, layers=3, heads=6,
                      vocab=101, max_seq=64)
    model = DenseTransformer(cfg, seed=3)
    session = GenerationSession(model, max_concurrency=3)

    rng = np.random.default_rng(0)
    rids = []
    for want in (3, 6, 2, 5, 4):
        prompt = rng.integers(0, cfg.vocab, size=4)
        rids.append(session.submit(prompt, max_new_tokens=want))

    # Step manually so the continuous-batching dynamics are visible.
    while session.num_active or session.num_waiting:
        finished = session.step()
        state = (f"step {session.steps_run:2d}: active={session.num_active} "
                 f"waiting={session.num_waiting}")
        if finished:
            state += f"  finished={finished}"
        print("  " + state)

    for rid in rids:
        req = session.result(rid)
        assert np.array_equal(  # isolation: same as running alone
            req.output_ids,
            model.generate(req.prompt[None, :], len(req.generated))[0],
        )
    print(f"  {len(rids)} requests, {session.tokens_generated} tokens, all "
          "outputs identical to solo runs.")


def tuning_demo() -> None:
    print("\n=== deployment tuning: GPT-13B on 2 DGX-A100 nodes ===")
    cluster = dgx_a100_cluster(2)
    cfg = DENSE_ZOO["gpt-13b"]
    print(f"  {'SLA':>8s} {'TP':>3s} {'PP':>3s} {'batch':>6s} "
          f"{'token ms':>9s} {'tok/s':>8s}")
    for sla_ms in (12, 20, 40, None):
        r = tune_dense_deployment(
            cfg, cluster, prompt_len=128, gen_tokens=8,
            latency_sla=None if sla_ms is None else sla_ms * 1e-3,
            max_gpus=8, hybrid_factors=(1,),
        )
        label = "none" if sla_ms is None else f"{sla_ms} ms"
        print(f"  {label:>8s} {r.tp:3d} {r.pp:3d} {r.batch:6d} "
              f"{r.token_latency * 1e3:9.2f} {r.tokens_per_second:8.0f}")
    print("  tighter SLAs force smaller batches; throughput is the price.")


if __name__ == "__main__":
    serving_demo()
    tuning_demo()
