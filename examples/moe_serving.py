"""MoE (and ZeRO) trace serving through the step-cost interface.

The serving stack — shared scheduler, fleet router, tuners — makes
lifecycle decisions; a :class:`~repro.engine.costs.StepCostModel` turns
them into seconds. This example plugs the paper's other two pillars
into the same stack that ``serving_and_tuning.py`` drives with a dense
model:

* :class:`~repro.engine.MoEStepCost` wraps a Table II MoE deployment
  (MP x EP, Sec. V) — one replica serves a trace, then a 3-replica
  fleet survives a mid-trace crash, then the serving tuner searches
  MP x EP x max_batch;
* :class:`~repro.engine.ZeroStepCost` wraps the ZeRO-Inference streamed
  engine (Sec. VI) — same trace, GPU-budget hardware, throughput over
  latency.

Run:  python examples/moe_serving.py
"""

from repro.engine import (
    MoELatencyModel,
    MoEStepCost,
    ZeroStepCost,
    simulate_serving,
    synthesize_trace,
    tune_serving_deployment,
)
from repro.fleet import FaultPlan, ReplicaFault, simulate_fleet
from repro.hardware import dgx2_v100, dgx_a100_cluster
from repro.model import MOE_PARALLELISM, MOE_ZOO, get_model
from repro.zero import ZeroInferenceEngine

CONFIG = MOE_ZOO["1.3b-moe-128"]
CLUSTER = dgx_a100_cluster(16)  # 128 GPUs: one EP-128 deployment


def moe_serving_demo() -> None:
    print("=== MoE replica serving a trace (Table II deployment) ===")
    par = MOE_PARALLELISM[CONFIG.name]
    costs = MoEStepCost(MoELatencyModel(CONFIG, CLUSTER, par, optimized=True))
    trace = synthesize_trace(num_requests=100, arrival_rate=40.0,
                             mean_prompt=96, mean_gen=12, seed=17)
    rep = simulate_serving(trace, costs=costs, max_batch=16)
    print(f"  {CONFIG.name} on mp={par.mp_degree} x ep={par.ep_degree} "
          f"({par.num_gpus} GPUs): {rep.tokens_per_second:7.0f} tok/s, "
          f"TTFT p99 {rep.ttft_percentile(trace, 99) * 1e3:6.1f} ms")


def moe_fleet_demo() -> None:
    print("\n=== 3 MoE replicas, one crash mid-trace ===")
    par = MOE_PARALLELISM[CONFIG.name]
    costs = MoEStepCost(MoELatencyModel(CONFIG, CLUSTER, par, optimized=True))
    trace = synthesize_trace(num_requests=120, arrival_rate=60.0,
                             mean_prompt=96, mean_gen=12, seed=18)
    plan = FaultPlan((ReplicaFault(replica=1, time=trace.duration / 2),))
    rep = simulate_fleet(trace, num_replicas=3, costs=costs, max_batch=16,
                         routing="least_outstanding", fault_plan=plan)
    assert rep.num_completed == len(trace.requests)
    print(f"  {rep.num_completed}/{len(trace.requests)} done after the "
          f"crash, per-replica counts {rep.request_counts}, "
          f"{len(rep.retried)} requeued, "
          f"{rep.tokens_discarded} tokens discarded")


def moe_tuning_demo() -> None:
    print("\n=== serving tuner over MP x EP deployments ===")
    trace = synthesize_trace(num_requests=40, arrival_rate=25.0,
                             mean_prompt=96, mean_gen=12, seed=19)
    best = tune_serving_deployment(CONFIG, CLUSTER, trace)
    print(f"  best: mp={best.tp} ({best.num_gpus} GPUs), "
          f"max_batch={best.max_batch} -> "
          f"{best.tokens_per_second:.0f} tok/s "
          f"(TTFT p99 {best.ttft_p99 * 1e3:.0f} ms)")


def zero_serving_demo() -> None:
    print("\n=== ZeRO-Inference serving the same trace shape ===")
    engine = ZeroInferenceEngine(get_model("gpt-neox-20b"), dgx2_v100(1))
    costs = ZeroStepCost(engine)
    trace = synthesize_trace(num_requests=12, arrival_rate=0.02,
                             mean_prompt=96, mean_gen=4, seed=20)
    rep = simulate_serving(trace, costs=costs, max_batch=8)
    print(f"  gpt-neox-20b streamed from {engine.placement}: "
          f"{rep.tokens_per_second:5.2f} tok/s — every step re-fetches "
          "the weights, so batch (not latency) is the lever (Sec. VI).")


if __name__ == "__main__":
    moe_serving_demo()
    moe_fleet_demo()
    moe_tuning_demo()
    zero_serving_demo()
