"""Reproduce the paper's full evaluation and archive the results.

Runs every table/figure driver plus the mechanism ablations, prints the
regenerated tables, checks the headline claims inline, and writes
JSON/CSV artifacts next to this script (under ``results/``).

Run:  python examples/reproduce_paper.py
"""

import json
from pathlib import Path

from repro.bench import ALL_ABLATIONS, ALL_EXPERIMENTS


HEADLINES = {
    "fig6": ("dense latency vs FT",
             lambda r: max(row["fp16_speedup"] for row in r.rows) > 1.3),
    "fig7": ("1T MoE under 25 ms/token",
             lambda r: min(row["deepspeed_ms"] for row in r.rows
                           if row["params(B)"] > 1000) < 25),
    "fig8": ("~1.5x massive-model throughput",
             lambda r: all(1.2 < row["speedup"] for row in r.rows)),
    "fig9": ("~half of A6000 peak for streamed models",
             lambda r: any(45 < row.get("pct_peak", 0) < 60 for row in r.rows)),
    "fig12": ("faster than E.T. on both encoders",
              lambda r: all(row["speedup"] > 1.2 for row in r.rows)),
    "fig13": ("3x MP-only prompt speedup",
              lambda r: max(row["speedup"] for row in r.rows) > 2.5),
}


def main() -> None:
    out_dir = Path(__file__).parent / "results"
    out_dir.mkdir(exist_ok=True)
    archive = []
    checks = []

    for registry in (ALL_EXPERIMENTS, ALL_ABLATIONS):
        for exp_id, driver in registry.items():
            result = driver()
            print(result.render())
            print()
            archive.append(result.to_json_dict())
            (out_dir / f"{exp_id}.csv").write_text(result.to_csv())
            if exp_id in HEADLINES:
                label, check = HEADLINES[exp_id]
                ok = check(result)
                checks.append((exp_id, label, ok))

    (out_dir / "all_results.json").write_text(json.dumps(archive, indent=2))

    print("=== headline checks ===")
    for exp_id, label, ok in checks:
        print(f"  [{'ok' if ok else 'MISS'}] {exp_id}: {label}")
    print(f"\nartifacts: {out_dir}/all_results.json and per-experiment CSVs")
    assert all(ok for _, _, ok in checks), "a headline claim failed to reproduce"


if __name__ == "__main__":
    main()
