"""A tour of the inference kernels (Sec. III): op graphs, Deep-Fusion,
SBI-GeMM scheduling and INT8 quantization.

Demonstrates:

* the operator chain of a transformer layer and how each fusion strategy
  partitions it into kernels (NONE / elementwise / E.T.-style / DEEP),
* the HBM traffic and launch counts each strategy implies, and the
  resulting modeled latency on an A100,
* the SBI-GeMM tile plan choices across model widths and dtypes,
* functional INT8: quantize a weight matrix, run the integer GeMM with
  the dequant epilogue, and measure the error.

Run:  python examples/kernel_fusion_tour.py
"""

import numpy as np

from repro.hardware import A100_40GB, DType
from repro.kernels import (
    DEEPSPEED_FP16,
    FusionStrategy,
    KernelCostModel,
    LayerShape,
    PYTORCH_FP16,
    int8_linear,
    partition,
    quantize_symmetric,
    sbi_tile_plan,
    transformer_layer_ops,
)


def fusion_strategies() -> None:
    shape = LayerShape(hidden=4096, heads=32, batch=1, tokens_per_seq=1,
                       kv_len=128)
    ops = transformer_layer_ops(shape)
    print(f"=== one transformer layer = {len(ops)} logical operators ===")
    print("  " + " -> ".join(o.name for o in ops[:6]) + " -> ...")

    print("\n=== fusion strategy -> kernels per layer, HBM traffic ===")
    for strategy in FusionStrategy:
        regions = partition(ops, strategy, small_batch=True)
        hbm = sum(r.hbm_bytes for r in regions)
        saved = sum(r.saved_bytes() for r in regions)
        print(f"  {strategy.value:12s} {len(regions):2d} kernels   "
              f"{hbm / 1e6:7.1f} MB to HBM   ({saved / 1e6:5.1f} MB saved)")

    print("\n=== the Deep-Fusion regions (Fig. 1c) ===")
    for r in partition(ops, FusionStrategy.DEEP, small_batch=True):
        names = " + ".join(o.name for o in r.ops)
        print(f"  [{names}]")

    print("\n=== modeled layer latency, batch 1 on A100 ===")
    for profile in (PYTORCH_FP16, DEEPSPEED_FP16):
        cost = KernelCostModel(A100_40GB, profile).layer_cost(shape)
        print(f"  {profile.name:16s} {cost.total_time * 1e6:7.1f} us "
              f"({cost.kernel_count} kernels, "
              f"{cost.effective_bandwidth / 1e9:6.0f} GB/s effective)")


def sbi_plans() -> None:
    print("\n=== SBI-GeMM tile plans (Sec. III-C) ===")
    for out_features in (1024, 4096, 16384):
        for dtype in (DType.FP16, DType.INT8):
            plan = sbi_tile_plan(A100_40GB, out_features, dtype)
            print(f"  out={out_features:6d} {dtype.value}: {plan.description}")


def int8_demo() -> None:
    print("\n=== functional INT8 linear layer ===")
    rng = np.random.default_rng(5)
    x = rng.normal(size=(4, 512))
    w = rng.normal(size=(512, 2048))
    qt = quantize_symmetric(w)
    y_fp = x @ w
    y_q = int8_linear(x, qt)
    rel = np.abs(y_q - y_fp).max() / np.abs(y_fp).max()
    print(f"  weight storage: {w.astype(np.float16).nbytes / 1e6:.2f} MB fp16 "
          f"-> {qt.nbytes / 1e6:.2f} MB int8")
    print(f"  max relative GeMM error: {rel:.4%} "
          "(per-output-channel symmetric quantization)")


if __name__ == "__main__":
    fusion_strategies()
    sbi_plans()
    int8_demo()
