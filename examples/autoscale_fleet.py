"""Autoscaling: a closed control loop racing every equal-cost fixed fleet.

A fixed fleet sized for the diurnal peak idles all night; one sized for
the mean melts down every day at noon. The ``repro.autoscale`` loop
rides the cycle instead: every control epoch it reads live fleet
signals (queue depth, rolling P99 TTFT, outstanding-work EMA, replica
health) and scales out, scales in, replaces broken replicas, or shifts
routing weights — under a hard GPU budget.

Demonstrated here:

* :func:`~repro.fleet.simulate_fleet` with ``autoscaler=`` — the
  autoscaled run vs every fixed fleet its average GPU spend could have
  bought, on a full-amplitude diurnal trace;
* SLO remediation — a mid-trace crash absorbed by drain-and-replace,
  narrated by the report's ``autoscale_log``;
* :func:`~repro.autoscale.tune_autoscaler` — the offline knob sweep.

Run:  python examples/autoscale_fleet.py
"""

import math
from collections import Counter

from repro.autoscale import AutoscaleConfig, tune_autoscaler
from repro.engine import synthesize_trace
from repro.engine.costs import resolve_step_costs
from repro.fleet import FaultPlan, ReplicaFault, simulate_fleet

COSTS = resolve_step_costs(None,
                           prompt_time=lambda b, p: 0.02 + 0.001 * p,
                           step_time=lambda b: 0.01 + 0.001 * b)

AUTOSCALE = AutoscaleConfig(
    min_replicas=1, max_replicas=6,   # the GPU budget
    ttft_slo_s=0.3,                   # what "overloaded" means
    epoch_s=1.0, sustain_epochs=2,
    scale_out_cooldown_s=2.0,
    mean_prompt=32,                   # sizes the cold-start price
)


def diurnal_demo() -> None:
    print("=== diurnal load: closed loop vs equal-cost fixed fleets ===")
    # Mean 30 req/s, peak 60, trough ~0 — one replica sustains ~13 req/s
    # of this workload, so no single fixed size fits the whole day.
    trace = synthesize_trace(num_requests=4000, arrival_rate=30.0,
                             mean_prompt=32, mean_gen=16,
                             arrival_shape="diurnal",
                             diurnal_amplitude=1.0, seed=13)

    auto = simulate_fleet(trace, num_replicas=1, costs=COSTS, max_batch=4,
                          routing="least_outstanding", autoscaler=AUTOSCALE)
    assert auto.num_completed == len(trace.requests)
    p99_auto = auto.ttft_percentile(trace, 99)
    kinds = Counter(e.kind for e in auto.autoscale_log)
    print(f"  autoscaled: avg {auto.avg_replicas:.2f} replicas "
          f"({auto.num_replicas} distinct over the run), "
          f"TTFT p99 {p99_auto * 1e3:7.1f} ms, "
          f"actions {dict(kinds)}")

    # Every fixed fleet the same average GPU spend could have bought.
    budget = math.floor(auto.avg_replicas)
    for k in range(1, budget + 1):
        fixed = simulate_fleet(trace, num_replicas=k, costs=COSTS,
                               max_batch=4, routing="least_outstanding")
        p99 = fixed.ttft_percentile(trace, 99)
        verdict = "beaten" if p99_auto < p99 else "NOT beaten"
        print(f"  fixed x{k}  : avg {k:.2f} replicas,              "
              f"TTFT p99 {p99 * 1e3:7.1f} ms  ({verdict})")

    # The scaling story, straight off the report.
    first_out = next(e for e in auto.autoscale_log if e.kind == "scale_out")
    print(f"  first scale-out at t={first_out.time_s:.1f}s "
          f"({first_out.detail}); BENCH_autoscale.json pins this race "
          f"at 100k requests in CI.")


def remediation_demo() -> None:
    print("\n=== SLO remediation: crash absorbed by drain-and-replace ===")
    trace = synthesize_trace(num_requests=1200, arrival_rate=35.0,
                             mean_prompt=32, mean_gen=16, seed=5)
    t_crash = trace.duration / 2
    plan = FaultPlan((ReplicaFault(replica=1, time=t_crash),))
    kwargs = dict(costs=COSTS, max_batch=4, routing="least_outstanding",
                  fault_plan=plan)

    bare = simulate_fleet(trace, num_replicas=3, **kwargs)
    # Pin the budget: min == max means the loop may only *remediate* —
    # replace the dead replica — never grow past the paid-for size.
    healed = simulate_fleet(
        trace, num_replicas=3, **kwargs,
        autoscaler=AutoscaleConfig(min_replicas=3, max_replicas=3,
                                   ttft_slo_s=0.3, epoch_s=0.5,
                                   mean_prompt=32))
    for name, rep in (("no loop", bare), ("healed", healed)):
        print(f"  {name:8s}: TTFT p99 "
              f"{rep.ttft_percentile(trace, 99) * 1e3:7.1f} ms, "
              f"{rep.num_completed}/{len(trace.requests)} done")
    replaces = [e for e in healed.autoscale_log if e.kind == "replace"]
    joins = [e for e in healed.autoscale_log if e.kind == "join"]
    print(f"  replica 1 died at t={t_crash:.1f}s; the loop replaced it at "
          f"t={replaces[0].time_s:.1f}s and the replacement came up at "
          f"t={joins[0].time_s:.1f}s (after its cold start).")


def tuning_demo() -> None:
    print("\n=== tune_autoscaler: cheapest knobs that meet the SLO ===")
    trace = synthesize_trace(num_requests=800, arrival_rate=20.0,
                             mean_prompt=32, mean_gen=16,
                             arrival_shape="diurnal",
                             diurnal_amplitude=1.0, seed=21)
    base = AutoscaleConfig(min_replicas=1, max_replicas=5, ttft_slo_s=1.0,
                           epoch_s=1.0, mean_prompt=32)
    # Seed the fleet at 3 replicas: the tuner sizes the *steady* loop,
    # not the cold start against the first diurnal peak.
    result = tune_autoscaler(trace, base, costs=COSTS, max_batch=4,
                             num_replicas=3,
                             epoch_grid=(0.5, 1.0, 2.0),
                             queue_high_grid=(2.0, 4.0),
                             sustain_grid=(1, 2))
    best = result.best
    print(f"  swept {len(result.candidates)} configs; best: "
          f"epoch={best.config.epoch_s}s, "
          f"queue_high={best.config.queue_high_depth}, "
          f"sustain={best.config.sustain_epochs} -> "
          f"avg {best.avg_replicas:.2f} replicas, "
          f"TTFT p99 {best.ttft_p99_s * 1e3:.1f} ms "
          f"(meets SLO: {best.meets_slo})")
    print("  preference order: meet the SLO, then fewest GPU-seconds, "
          "then tail latency.")


if __name__ == "__main__":
    diurnal_demo()
    remediation_demo()
    tuning_demo()
