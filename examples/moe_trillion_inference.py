"""Trillion-parameter MoE inference on 256 GPUs (Sec. V, Fig. 7).

Demonstrates:

* per-token latency of the Table II sparse models under DeepSpeed-MoE vs
  the distributed PyTorch baseline, with the component breakdown that
  explains the gap (gating kernels, PCC all-to-all, expert slicing),
* the PCC communication arithmetic: O(p) -> O(p/L) + O(L),
* functional verification that expert-parallel dispatch over all-to-all
  and the dense-table gating reproduce the reference MoE layer exactly.

Run:  python examples/moe_trillion_inference.py
"""

import numpy as np

from repro.comm import baseline_alltoall, pcc_alltoall, spmd
from repro.engine import MoEInferenceEngine
from repro.hardware import dgx_a100_cluster
from repro.model import MOE_ZOO, MoELayer
from repro.parallel import ep_moe_forward


def latency_tour() -> None:
    print("=== Table II sparse models: per-token latency (batch 8) ===")
    for name in MOE_ZOO:
        ds = MoEInferenceEngine(name, optimized=True)
        base = MoEInferenceEngine(name, optimized=False)
        l_ds, l_base = ds.token_latency(), base.token_latency()
        size_b = MOE_ZOO[name].listed_params / 1e9
        print(f"  {name:14s} ({size_b:6.0f}B, {ds.parallelism.num_gpus:3d} GPUs)  "
              f"baseline {l_base * 1e3:7.2f} ms   deepspeed {l_ds * 1e3:6.2f} ms   "
              f"{l_base / l_ds:4.1f}x")

    print("\n=== the >1T model's step breakdown (DeepSpeed) ===")
    eng = MoEInferenceEngine("24b-moe-128")
    b = eng.step_breakdown()
    for field in ("dense_time", "gating_time", "expert_time",
                  "alltoall_time", "allreduce_time"):
        print(f"  {field:15s} {getattr(b, field) * 1e3:7.2f} ms")
    print(f"  {'total':15s} {b.total * 1e3:7.2f} ms  "
          f"(paper target: < 25 ms/token)")


def pcc_arithmetic() -> None:
    print("\n=== PCC: all-to-all latency, 128 GPUs, payload 1 MB ===")
    cluster = dgx_a100_cluster(16)
    base = baseline_alltoall(cluster, 1e6, 128)
    for tp in (1, 2, 4, 8):
        opt = pcc_alltoall(cluster, 1e6, 128, tp_degree=tp)
        print(f"  tensor-slicing L={tp}:  "
              f"baseline {base.total * 1e6:7.1f} us  ->  "
              f"PCC {opt.total * 1e6:7.1f} us")


def functional_verification() -> None:
    print("\n=== functional check: 4-way expert parallelism == reference ===")
    layer = MoELayer(hidden=32, num_experts=8, capacity_factor=2.0, seed=3)
    rng = np.random.default_rng(0)
    tokens = rng.normal(size=(24, 32))

    reference = layer.forward_dense_table(tokens)
    sparse_ref = layer.forward_sparse_einsum(tokens)
    np.testing.assert_allclose(reference, sparse_ref, atol=1e-12)

    results = spmd(4, lambda comm: ep_moe_forward(comm, layer, tokens))
    np.testing.assert_allclose(results[0], reference, atol=1e-12)
    print("  dense-table gating == sparse-einsum gating == "
          "distributed all-to-all dispatch.")


if __name__ == "__main__":
    latency_tour()
    pcc_arithmetic()
    functional_verification()
