"""Quickstart: estimate inference performance and run a real (tiny) model.

This walks the two layers of the library:

1. the **performance model** — ask how fast GPT-style models run on the
   paper's hardware under DeepSpeed vs FasterTransformer kernels;
2. the **functional engine** — actually generate tokens with a small
   NumPy transformer, with and without KV caching, and check they agree.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.engine import InferenceEngine
from repro.hardware import dgx_a100_cluster
from repro.kernels import DEEPSPEED_FP16, DEEPSPEED_INT8, FASTER_TRANSFORMER_FP16
from repro.model import DenseTransformer, ModelConfig


def performance_model_demo() -> None:
    """Latency of GPT-2 1.5B on one A100 under three implementations."""
    print("=== performance model: gpt2-1.5b on one A100, prompt 128 / gen 8 ===")
    cluster = dgx_a100_cluster(1)
    for profile in (FASTER_TRANSFORMER_FP16, DEEPSPEED_FP16, DEEPSPEED_INT8):
        engine = InferenceEngine("gpt2-1.5b", cluster, tp=1, pp=1, profile=profile)
        report = engine.estimate(batch=1, prompt_len=128, gen_tokens=8)
        print(
            f"  {profile.name:24s} token latency {report.token_latency * 1e3:7.3f} ms"
            f"   end-to-end {report.total_latency * 1e3:8.2f} ms"
            f"   {report.tokens_per_second:7.1f} tok/s"
        )

    print("\n=== auto-planned 175B deployment ===")
    engine = InferenceEngine("lm-175b", dgx_a100_cluster(4))
    print(f"  planner chose TP={engine.tp} x PP={engine.pp} "
          f"({engine.num_gpus} GPUs)")
    report = engine.estimate(batch=1, prompt_len=128, gen_tokens=8)
    print(f"  token latency {report.token_latency * 1e3:.1f} ms, "
          f"comm share {report.comm_time_per_step / report.token_latency:.0%}")


def functional_engine_demo() -> None:
    """Generate text ids with a runnable NumPy GPT and verify KV caching."""
    print("\n=== functional engine: a tiny runnable GPT ===")
    config = ModelConfig(name="tiny-gpt", hidden=64, layers=4, heads=8,
                         vocab=257, max_seq=64)
    model = DenseTransformer(config, seed=42)
    prompt = np.array([[7, 21, 101, 33]])

    cached = model.generate(prompt, num_tokens=12, use_cache=True)
    uncached = model.generate(prompt, num_tokens=12, use_cache=False)
    assert np.array_equal(cached, uncached), "KV caching must be exact"

    print(f"  prompt ids:    {prompt[0].tolist()}")
    print(f"  generated ids: {cached[0, 4:].tolist()}")
    print("  cached and uncached decoding agree token-for-token.")


if __name__ == "__main__":
    performance_model_demo()
    functional_engine_demo()
