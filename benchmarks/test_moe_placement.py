"""MoE placement benchmark: uniform vs replicated+prefetch on a skewed
trillion-parameter trace.

The paper's Table II prices the trillion-parameter MoE deployments as if
tokens spread evenly over experts. This benchmark replays the same
serving trace under a Zipf(1.2) gate distribution three ways — uniform
placement, hot-expert replication without prefetch, and replication with
calibrated predictive prefetch — at *equal GPU count*, and records P99
TTFT plus sustained tokens/s for each in ``BENCH_moe_placement.json``.
The headline acceptance bar: replicated+prefetch beats uniform P99 TTFT.

It also guards the PR 6 speed win: skew-aware pricing must flow through
the vectorized ``decode_run_cost`` fast path, so the event-compressed
simulator's wall-clock throughput with skew pricing enabled stays within
10% of plain MoE pricing on the same trace.

Opt-in via ``BENCH_SPEED=1`` like the serving-speed benchmark; trace
size via ``BENCH_MOE_REQUESTS`` (default 20000).
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.engine.costs import MoEStepCost
from repro.engine.moe import MoELatencyModel
from repro.engine.serving_sim import simulate_serving, synthesize_trace
from repro.hardware import dgx_a100_cluster
from repro.model import MOE_PARALLELISM, MOE_ZOO
from repro.moe_placement import (
    SkewedDispatchSpec,
    calibrated_dispatch,
    plan_placement,
    synthesize_gate_stream,
    uniform_placement,
    zipf_expert_probs,
)

pytestmark = pytest.mark.skipif(
    os.environ.get("BENCH_SPEED") != "1",
    reason="heavy speed benchmark; set BENCH_SPEED=1 to run",
)

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_moe_placement.json"

NUM_REQUESTS = int(os.environ.get("BENCH_MOE_REQUESTS", "20000"))

# The trillion-parameter deployment of Table II: 24b-moe-128 hidden-8192
# over 256 GPUs (MP 8 x EP 128, expert slicing 2).
MODEL = "24b-moe-128"
EXPERT_SKEW = 1.2
MEAN_PROMPT, MEAN_GEN = 128, 256
MAX_BATCH = 32
# Between the uniform placement's sustainable rate (~3.9 req/s at these
# lengths) and replicated+prefetch's (~4.6 req/s): the uniform server
# falls behind and its P99 TTFT grows with the backlog, the replicated
# one keeps up — the provisioning gap the placement buys.
ARRIVAL_RATE = 4.2
SEED = 41
REPLICATION, NUM_HOT, PREFETCH_SLOTS = 4, 8, 8

# CI gates, both ratio-based so machine speed cancels out.
TTFT_WIN_FLOOR = 0.80      # keep >= 80% of the committed TTFT win
WALL_SPEED_FLOOR = 0.90    # skew pricing costs <= 10% fast-path speed


def _deployment():
    config = MOE_ZOO[MODEL]
    par = MOE_PARALLELISM[MODEL]
    cluster = dgx_a100_cluster(par.num_gpus // 8)
    return config, par, MoELatencyModel(config, cluster, par)


def _specs(config, par, model):
    """The three placements under one skewed gate distribution."""
    num_experts = config.moe.num_experts
    top_k = config.moe.top_k
    probs = zipf_expert_probs(num_experts, EXPERT_SKEW, seed=SEED)
    stream = synthesize_gate_stream(64, MAX_BATCH * top_k, probs, seed=SEED)
    uniform = SkewedDispatchSpec(
        probs=probs,
        placement=uniform_placement(num_experts, par.ep_degree),
        top_k=top_k,
    )
    plan = plan_placement(probs, par.ep_degree,
                          replication=REPLICATION, num_hot=NUM_HOT)
    replicated = SkewedDispatchSpec(
        probs=probs, placement=plan.placement, top_k=top_k,
        streamed=plan.streamed, prefetch_hit_rate=0.0,
        expert_fetch_time=model.expert_fetch_time(),
    )
    prefetched = calibrated_dispatch(
        probs, plan, stream, top_k=top_k,
        expert_fetch_time=model.expert_fetch_time(),
        prefetch_slots=PREFETCH_SLOTS,
    )
    return uniform, replicated, prefetched


def _trace():
    return synthesize_trace(
        num_requests=NUM_REQUESTS, arrival_rate=ARRIVAL_RATE,
        mean_prompt=MEAN_PROMPT, mean_gen=MEAN_GEN,
        expert_skew=EXPERT_SKEW, seed=SEED)


def _serve(trace, costs):
    t0 = time.perf_counter()
    report = simulate_serving(trace, costs=costs, max_batch=MAX_BATCH)
    elapsed = time.perf_counter() - t0
    assert len(report.finish_times) == NUM_REQUESTS
    return {
        "ttft_p99_s": report.ttft_percentile(trace, 99),
        "latency_p99_s": report.latency_percentile(trace, 99),
        "tokens_per_s": report.tokens_per_second,
        "wall_requests_per_s": round(NUM_REQUESTS / elapsed, 1),
    }


def test_moe_placement_writes_benchmark_record():
    """Serve one skewed trace under the three placements, write
    BENCH_moe_placement.json, gate the TTFT win and the wall speed."""
    baseline = (json.loads(RESULT_PATH.read_text())
                if RESULT_PATH.exists() else None)
    config, par, model = _deployment()
    uniform, replicated, prefetched = _specs(config, par, model)
    trace = _trace()

    plain = _serve(trace, MoEStepCost(model))  # pre-skew pricing
    uni = _serve(trace, MoEStepCost(model, skew=uniform))
    rep = _serve(trace, MoEStepCost(model, skew=replicated))
    pre = _serve(trace, MoEStepCost(model, skew=prefetched))

    # Acceptance: replicated+prefetch beats uniform P99 TTFT at equal
    # GPU count, and prefetch beats blind streaming.
    assert pre["ttft_p99_s"] < uni["ttft_p99_s"]
    assert pre["tokens_per_s"] > uni["tokens_per_s"]
    assert pre["ttft_p99_s"] <= rep["ttft_p99_s"]

    # Acceptance: skew pricing rides the vectorized decode_run_cost fast
    # path — the event-compressed simulator keeps >= 90% of its plain
    # MoE-pricing wall-clock throughput.
    wall_ratio = pre["wall_requests_per_s"] / plain["wall_requests_per_s"]
    assert wall_ratio >= WALL_SPEED_FLOOR, (
        f"skew pricing costs {(1 - wall_ratio) * 100:.1f}% fast-path "
        f"speed; budget is {(1 - WALL_SPEED_FLOOR) * 100:.0f}%")

    ttft_win = uni["ttft_p99_s"] / pre["ttft_p99_s"]
    record = {
        "benchmark": "moe_placement",
        "config": {
            "model": MODEL, "num_gpus": par.num_gpus,
            "mp": par.mp_degree, "ep": par.ep_degree,
            "expert_skew": EXPERT_SKEW,
            "replication": REPLICATION, "num_hot": NUM_HOT,
            "prefetch_slots": PREFETCH_SLOTS,
            "num_requests": NUM_REQUESTS,
            "mean_prompt": MEAN_PROMPT, "mean_gen": MEAN_GEN,
            "max_batch": MAX_BATCH, "arrival_rate": ARRIVAL_RATE,
            "seed": SEED,
        },
        "prefetch_hit_rate": round(prefetched.prefetch_hit_rate, 4),
        "streamed_experts": len(prefetched.streamed),
        "uniform": uni,
        "replicated": rep,
        "replicated_prefetch": pre,
        "plain_pricing": plain,
        "ttft_p99_win_x": round(ttft_win, 2),
        "wall_speed_ratio": round(wall_ratio, 3),
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    if baseline is not None and baseline["config"] == record["config"]:
        floor = TTFT_WIN_FLOOR * baseline["ttft_p99_win_x"]
        assert ttft_win >= floor, (
            f"placement win regressed: uniform/replicated+prefetch P99 "
            f"TTFT ratio {ttft_win:.2f}x vs a floor of {floor:.2f}x "
            f"(baseline {baseline['ttft_p99_win_x']:.2f}x)")
