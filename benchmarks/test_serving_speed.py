"""Serving-speed benchmark: simulated requests per wall-second.

ROADMAP's "price a million-request day in seconds" item, made
measurable: one large dense trace through the event-compressed
:func:`~repro.engine.serving_sim.simulate_serving` and (a slice of the
same workload through) the retained per-step oracle
:func:`~repro.engine.serving_sim.simulate_serving_reference`, reporting
*simulated requests per wall-second* for both and writing
``BENCH_serving_speed.json`` at the repo root — the perf-trajectory
artifact CI's ``bench-speed`` job regenerates, uploads, and gates
against the committed baseline (>30% regression fails).

Opt-in: the whole module is skipped unless ``BENCH_SPEED=1`` (it runs
~100k simulated requests, far heavier than the figure-shape smoke
benchmarks). Knobs, all environment variables:

* ``BENCH_SPEED_REQUESTS`` — fast-path trace size (default 100000);
* ``BENCH_SPEED_REF_REQUESTS`` — per-step reference slice size
  (default 2000; the reference is ~30x slower per request, a full-size
  leg would dominate CI);
* ``BENCH_SPEED_FULL_REF=1`` — baseline-regeneration mode: also run
  the reference over the *full* trace and assert the >= 25x speedup
  acceptance bar. This is how the committed baseline was produced.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.engine import (
    DenseLatencyModel,
    DenseStepCost,
    simulate_serving,
    simulate_serving_reference,
    synthesize_trace,
)
from repro.hardware import dgx_a100_cluster
from repro.model import DENSE_ZOO

pytestmark = pytest.mark.skipif(
    os.environ.get("BENCH_SPEED") != "1",
    reason="heavy speed benchmark; set BENCH_SPEED=1 to run",
)

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving_speed.json"

NUM_REQUESTS = int(os.environ.get("BENCH_SPEED_REQUESTS", "100000"))
REF_REQUESTS = int(os.environ.get("BENCH_SPEED_REF_REQUESTS", "2000"))
FULL_REF = os.environ.get("BENCH_SPEED_FULL_REF") == "1"

# A long-generation latency-SLA deployment: small batch, true-KV dense
# pricing, arrivals dense enough that the server stays saturated.
MODEL, TP = "gpt-13b", 4
MEAN_PROMPT, MEAN_GEN = 128, 1024
MAX_BATCH = 4
ARRIVAL_RATE = 1000.0
SEED = 33

# CI gate: fail when fast-path throughput falls below this fraction of
# the committed baseline after normalizing out machine speed.
REGRESSION_FLOOR = 0.70
SPEEDUP_BAR = 25.0


def _costs():
    return DenseStepCost(
        DenseLatencyModel(DENSE_ZOO[MODEL], dgx_a100_cluster(1), tp=TP))


def _trace(n):
    return synthesize_trace(num_requests=n, arrival_rate=ARRIVAL_RATE,
                            mean_prompt=MEAN_PROMPT, mean_gen=MEAN_GEN,
                            seed=SEED)


def _requests_per_s(simulate, n, repeats=3):
    """Best-of-``repeats`` wall-clock (fresh cost model each run, so
    cache warm-up is included). Best-of damps scheduler-noise / CPU
    frequency dips that would otherwise make the regression gate flaky;
    a real slowdown degrades every run alike."""
    trace = _trace(n)
    best, report = 0.0, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        report = simulate(trace, costs=_costs(), max_batch=MAX_BATCH)
        elapsed = time.perf_counter() - t0
        best = max(best, n / elapsed)
        assert len(report.finish_times) == n  # every request finished
    return best, report


def test_serving_speed_writes_benchmark_record():
    """Measure both paths, write BENCH_serving_speed.json, gate vs the
    committed baseline (and, in full-ref mode, the 25x acceptance bar)."""
    baseline = (json.loads(RESULT_PATH.read_text())
                if RESULT_PATH.exists() else None)

    # Equivalence spot-check first: a speed number for a wrong simulator
    # is worthless. (The exhaustive bit-for-bit matrix lives in
    # tests/test_serving_fastpath.py.)
    small = _trace(300)
    assert (simulate_serving(small, costs=_costs(), max_batch=MAX_BATCH,
                             detail="full")
            == simulate_serving_reference(small, costs=_costs(),
                                          max_batch=MAX_BATCH))

    fast_requests_per_s, fast_report = _requests_per_s(
        simulate_serving, NUM_REQUESTS)
    ref_requests_per_s, _ = _requests_per_s(
        simulate_serving_reference, REF_REQUESTS)

    record = {
        "benchmark": "serving_speed",
        "config": {
            "model": MODEL, "tp": TP,
            "num_requests": NUM_REQUESTS,
            "ref_requests": REF_REQUESTS,
            "mean_prompt": MEAN_PROMPT, "mean_gen": MEAN_GEN,
            "max_batch": MAX_BATCH, "arrival_rate": ARRIVAL_RATE,
            "seed": SEED,
        },
        "fast_requests_per_s": round(fast_requests_per_s, 1),
        "ref_requests_per_s": round(ref_requests_per_s, 1),
        "speedup_estimate_x": round(
            fast_requests_per_s / ref_requests_per_s, 1),
        "simulated": {
            "makespan_s": fast_report.makespan,
            "total_tokens": fast_report.total_tokens,
        },
        "full_ref": None,
    }

    if FULL_REF:
        # One run: the per-step reference over 100k requests takes
        # minutes, and its Python-loop timing is far less noisy.
        full_ref_requests_per_s, _ = _requests_per_s(
            simulate_serving_reference, NUM_REQUESTS, repeats=1)
        speedup = fast_requests_per_s / full_ref_requests_per_s
        record["full_ref"] = {
            "ref_requests_per_s": round(full_ref_requests_per_s, 1),
            "speedup_x": round(speedup, 1),
        }
        assert speedup >= SPEEDUP_BAR, (
            f"event compression delivers {speedup:.1f}x over the per-step "
            f"reference on {NUM_REQUESTS} requests; the bar is "
            f"{SPEEDUP_BAR}x")

    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    if baseline is not None and baseline["config"] == record["config"]:
        # Normalize machine speed through the reference leg: both paths
        # slow down together on a slower runner, so the gate tracks the
        # *ratio*, not absolute wall-clock.
        machine = ref_requests_per_s / baseline["ref_requests_per_s"]
        floor = REGRESSION_FLOOR * baseline["fast_requests_per_s"] * machine
        assert fast_requests_per_s >= floor, (
            f"serving speed regressed: {fast_requests_per_s:.0f} "
            f"requests/s vs a machine-normalized floor of {floor:.0f} "
            f"(baseline {baseline['fast_requests_per_s']:.0f}, "
            f"machine factor {machine:.2f})")
