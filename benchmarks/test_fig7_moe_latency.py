"""Fig. 7: MoE inference latency/throughput vs the PyTorch baseline."""

from repro.bench.figures import fig7_moe_latency


def test_fig7_moe_latency(run_experiment):
    res = run_experiment(fig7_moe_latency)
    assert len(res.rows) == 5
    by_name = {r["model"]: r for r in res.rows}

    # DeepSpeed-MoE wins on every model, with multi-x factors at scale.
    for r in res.rows:
        assert r["speedup"] > 2.0, r
    # Paper: up to 7.3x. Our calibration peaks in the 5-7.5x band.
    assert 5.0 < max(r["speedup"] for r in res.rows) < 7.5

    # Headline: the >1T model (24b-moe-128) serves under 25 ms/token.
    assert by_name["24b-moe-128"]["params(B)"] > 1000
    assert by_name["24b-moe-128"]["deepspeed_ms"] < 25.0
    # ... and even the 2T model stays interactive (paper Fig. 7 shows it
    # in the tens of milliseconds).
    assert by_name["47b-moe-128"]["deepspeed_ms"] < 40.0
    # The baseline cannot serve the trillion-scale models interactively.
    assert by_name["24b-moe-128"]["baseline_ms"] > 50.0
