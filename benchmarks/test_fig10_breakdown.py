"""Fig. 10: performance-breakdown panels (kernels, pipeline, prefetch)."""

from repro.bench.figures import (
    fig10a_kernel_breakdown,
    fig10b_pipeline_ablation,
    fig10c_prefetch,
)


def test_fig10a_kernel_breakdown(run_experiment):
    res = run_experiment(fig10a_kernel_breakdown)
    series = {}
    for r in res.rows:
        series.setdefault(r["config"], {})[r["batch"]] = r["latency_ms"]
    base = series["Megatron-FP16"]
    fused = series["Megatron+DeepFusion"]
    full = series["Megatron+DeepFusion+SBI-GeMM"]
    for b in base:
        assert fused[b] < base[b]  # deep-fusion always helps
        assert full[b] <= fused[b] * 1.02  # SBI never hurts...
    # ... and helps specifically at small batch.
    assert full[1] < fused[1]
    # Deep-fusion is the dominant effect (paper Fig. 10a).
    assert base[1] / fused[1] > 2.0


def test_fig10b_pipeline_ablation(run_experiment):
    res = run_experiment(fig10b_pipeline_ablation)
    tputs = [r["tokens_per_s"] for r in res.rows]
    # Cumulative optimizations never regress.
    for prev, cur in zip(tputs, tputs[1:]):
        assert cur >= prev * 0.999
    # Scheduling optimizations alone buy >1.4x (paper's bars grow
    # monotonically to ~1.5x+ overall).
    assert tputs[2] / tputs[0] > 1.4


def test_fig10c_prefetch(run_experiment):
    res = run_experiment(fig10c_prefetch)
    rows = sorted(res.rows, key=lambda r: r["batch"])
    gains = [r["improvement"] for r in rows]
    # Prefetch helps at small batch...
    assert max(gains[:3]) > 1.3
    # ...and the benefit diminishes at larger batches (paper Fig. 10c).
    assert gains[-1] < 1.15
    assert gains[-1] < max(gains[:3])
    # Never a slowdown.
    assert all(g >= 1.0 for g in gains)
