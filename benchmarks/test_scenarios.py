"""Scenario-zoo benchmark: chat prefix sharing vs the stripped ablation.

The acceptance bar for ``repro.scenarios`` + copy-on-write prefix
sharing: on a chat workload priced with the real ``DenseStepCost``
model (gpt-13b on one DGX-A100, TP=4), the sharing-on run must beat the
ablation on **both** P99 time-to-first-token and peak KV blocks at
equal simulated hardware. The ablation leg is
``strip_prefix_sharing(trace)`` — the same trace with the declared
prefixes zeroed, run under the same session-cache parking policy — so
the comparison isolates the *reuse*: every follow-up turn pays full
prefill and allocates fresh blocks while the parked parent context is
still held. (The ``prefix_sharing=False`` free-at-retire baseline is
*not* the leg: it retains nothing between turns, so its peak is lower
by construction and it answers a different question.)

The run writes ``BENCH_scenarios.json`` at the repo root — the artifact
CI's ``bench-speed`` job regenerates, uploads, and gates: the two wins
must hold, and (the whole pipeline being deterministic) the recorded
P99 must not drift above the committed baseline's by more than 5%.

The heavy leg is opt-in: skipped unless ``BENCH_SPEED=1``. The smoke
test below it always runs (CI's ``benchmarks-smoke`` job picks it up
via ``-k "... or scenarios"``). ``BENCH_SCENARIOS_REQUESTS`` overrides
the trace size.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.engine import DenseLatencyModel, DenseStepCost, simulate_serving
from repro.hardware import dgx_a100_cluster
from repro.model import DENSE_ZOO
from repro.scenarios import chat_scenario, strip_prefix_sharing

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_scenarios.json"

NUM_REQUESTS = int(os.environ.get("BENCH_SCENARIOS_REQUESTS", "2000"))

# Workload: long prompts relative to generation, so follow-up turns
# carry substantial reusable context — the regime chat serving lives in.
NUM_SESSIONS = 64
SESSION_RATE = 8.0
MEAN_PROMPT, MEAN_GEN = 128, 32
MAX_BATCH = 8
SEED = 33

# Regression gate: determinism makes the simulated P99 a constant for a
# fixed config; the small headroom only absorbs numeric-library drift.
P99_DRIFT_CEILING = 1.05


def _dense_costs() -> DenseStepCost:
    return DenseStepCost(
        DenseLatencyModel(DENSE_ZOO["gpt-13b"], dgx_a100_cluster(1), tp=4))


@pytest.mark.skipif(
    os.environ.get("BENCH_SPEED") != "1",
    reason="heavy scenarios benchmark; set BENCH_SPEED=1 to run",
)
def test_chat_prefix_sharing_beats_stripped_ablation():
    baseline = (json.loads(RESULT_PATH.read_text())
                if RESULT_PATH.exists() else None)

    trace = chat_scenario(
        num_sessions=NUM_SESSIONS, session_rate=SESSION_RATE,
        mean_prompt=MEAN_PROMPT, mean_gen=MEAN_GEN,
        num_requests=NUM_REQUESTS, seed=SEED)

    t0 = time.perf_counter()
    on = simulate_serving(trace, costs=_dense_costs(), max_batch=MAX_BATCH)
    wall_on = time.perf_counter() - t0
    off = simulate_serving(strip_prefix_sharing(trace),
                           costs=_dense_costs(), max_batch=MAX_BATCH)
    assert len(on.finish_times) == NUM_REQUESTS == len(off.finish_times)

    p99_on = on.ttft_percentile(trace, 99)
    p99_off = off.ttft_percentile(trace, 99)

    record = {
        "benchmark": "scenarios_chat_prefix_sharing",
        "config": {
            "num_requests": NUM_REQUESTS,
            "num_sessions": NUM_SESSIONS,
            "session_rate": SESSION_RATE,
            "mean_prompt": MEAN_PROMPT, "mean_gen": MEAN_GEN,
            "max_batch": MAX_BATCH, "seed": SEED,
            "model": "gpt-13b", "hardware": "dgx_a100_cluster(1)",
            "tp": 4,
        },
        "sharing_on": {
            "ttft_p99_s": round(p99_on, 4),
            "peak_kv_blocks": on.peak_kv_blocks,
            "kv_blocks_allocated": on.kv_blocks_allocated,
            "prefix_hits": on.prefix_hits,
            "prefix_hit_tokens": on.prefix_hit_tokens,
            "kv_dedup_ratio": round(on.kv_dedup_ratio, 4),
            "makespan_s": round(on.makespan, 1),
        },
        "sharing_stripped": {
            "ttft_p99_s": round(p99_off, 4),
            "peak_kv_blocks": off.peak_kv_blocks,
            "kv_blocks_allocated": off.kv_blocks_allocated,
            "makespan_s": round(off.makespan, 1),
        },
        "wall_seconds_sharing_on": round(wall_on, 1),
        "sim_requests_per_wall_s": round(NUM_REQUESTS / wall_on, 1),
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    # The acceptance sweep itself: both wins at equal hardware.
    assert on.prefix_hits > 0, "no turn ever hit a parked prefix"
    assert p99_on < p99_off, (
        f"prefix sharing lost on P99 TTFT: {p99_on:.4f}s vs "
        f"{p99_off:.4f}s stripped")
    assert on.peak_kv_blocks < off.peak_kv_blocks, (
        f"prefix sharing lost on peak KV blocks: {on.peak_kv_blocks} vs "
        f"{off.peak_kv_blocks} stripped")

    if baseline is not None and baseline["config"] == record["config"]:
        ceiling = P99_DRIFT_CEILING * baseline["sharing_on"]["ttft_p99_s"]
        assert p99_on <= ceiling, (
            f"sharing-on P99 TTFT regressed: {p99_on:.4f}s vs committed "
            f"{baseline['sharing_on']['ttft_p99_s']:.4f}s (+5% ceiling "
            f"{ceiling:.4f}s)")


def test_scenarios_smoke():
    """Always-on slice of the same pipeline: a small chat trace shows
    hits and dedup with sharing on, and none with the prefixes
    stripped."""
    trace = chat_scenario(num_sessions=8, session_rate=4.0,
                          mean_prompt=64, mean_gen=16,
                          num_requests=64, seed=5)
    costs = dict(prompt_time=lambda b, p: 0.02 + 0.001 * p,
                 step_time=lambda b: 0.01 + 0.001 * b)
    on = simulate_serving(trace, max_batch=4, **costs)
    off = simulate_serving(strip_prefix_sharing(trace), max_batch=4, **costs)
    assert len(on.finish_times) == 64 == len(off.finish_times)
    assert on.prefix_hits > 0 and off.prefix_hits == 0
    assert on.kv_dedup_ratio > 0 == off.kv_dedup_ratio
    assert on.peak_kv_blocks < off.peak_kv_blocks
