"""Benchmark-suite configuration.

Each benchmark regenerates one of the paper's tables/figures through the
drivers in :mod:`repro.bench.figures`, timing the full driver and then
asserting the paper's qualitative shape (who wins, by roughly what
factor) on the regenerated rows.
"""

import pytest


@pytest.fixture
def run_experiment(benchmark):
    """Benchmark an experiment driver and hand back its result rows."""

    def _run(driver, **kwargs):
        return benchmark.pedantic(
            lambda: driver(**kwargs), rounds=3, iterations=1, warmup_rounds=1
        )

    return _run
