"""Fig. 12: comparison with E.T. encoder kernels."""

from repro.bench.figures import fig12_et_comparison


def test_fig12_et_comparison(run_experiment):
    res = run_experiment(fig12_et_comparison)
    by_model = {r["model"]: r for r in res.rows}

    # DeepSpeed faster on both models (paper: 1.7x and 1.4x).
    assert 1.5 < by_model["distilbert"]["speedup"] < 2.3
    assert 1.2 < by_model["bert-large"]["speedup"] < 1.8
    # Bigger gain on the smaller, launch-overhead-dominated model.
    assert by_model["distilbert"]["speedup"] > by_model["bert-large"]["speedup"]
    # Absolute latencies stay sub-millisecond for DistilBERT at batch 1.
    assert by_model["distilbert"]["deepspeed_ms"] < 1.0
