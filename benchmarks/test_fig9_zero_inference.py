"""Fig. 9: ZeRO-Inference model scale, throughput and scalability."""

from repro.bench.figures import fig9_zero_inference


def test_fig9_zero_inference(run_experiment):
    res = run_experiment(fig9_zero_inference)
    a = [r for r in res.rows if r["panel"] == "a"]
    b = [r for r in res.rows if r["panel"] == "b"]
    c = [r for r in res.rows if r["panel"] == "c"]

    # (a) generation throughput rises monotonically with batch.
    tputs = [r["tokens_per_s"] for r in sorted(a, key=lambda r: r["batch"])]
    assert tputs == sorted(tputs)
    assert tputs[-1] > 10 * tputs[0]

    # (b) model scale: only the 20B-class model runs GPU-only on an A6000;
    # ZeRO-Inference runs everything up to 530B => the paper's 25x.
    by_model = {r["model"]: r for r in b}
    assert by_model["gpt-neox-20b"]["gpu_only_runs"]
    for name in ("gpt-50b", "gpt-87b", "lm-175b", "lm-530b"):
        assert not by_model[name]["gpu_only_runs"], name
    # CPU-only caps around the 50B class (the 10x comparison).
    assert by_model["gpt-50b"]["cpu_only_runs"]
    assert not by_model["gpt-87b"]["cpu_only_runs"]
    # DRAM-resident models achieve ~half of A6000 peak (paper: 84 TFLOPS,
    # 54%); NVMe-resident giants degrade but still run.
    for name in ("gpt-neox-20b", "gpt-50b", "gpt-87b"):
        assert 45 < by_model[name]["pct_peak"] < 60, name
    assert by_model["lm-530b"]["zero_tier"] == "nvme"
    assert by_model["lm-530b"]["tflops"] > 0

    # (c) near-linear scaling to 16 V100s at ~53% of peak per GPU.
    assert all(r["scaling_eff"] > 0.9 for r in c)
    sixteen = next(r for r in c if r["gpus"] == 16)
    assert 55 < sixteen["tflops"] < 75  # paper: 67 TFLOPS/GPU
