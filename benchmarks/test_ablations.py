"""Ablation benches for the design choices DESIGN.md calls out."""

from repro.bench.ablations import (
    ablation_cuda_graph,
    ablation_expert_slicing,
    ablation_fusion_strategy,
    ablation_hybrid_factor,
    ablation_pcc_degree,
    ablation_pinned_weights,
    ablation_prefetch_depth,
    ablation_sla_frontier,
)


def test_ablation_cuda_graph(run_experiment):
    res = run_experiment(ablation_cuda_graph)
    by_model = {r["model"]: r for r in res.rows}
    # Launch elimination always helps, and helps the smallest model most.
    assert all(r["speedup"] >= 1.0 for r in res.rows)
    assert by_model["gpt2-1.5b"]["speedup"] > by_model["gpt-13b"]["speedup"]


def test_ablation_fusion_strategy(run_experiment):
    res = run_experiment(ablation_fusion_strategy)
    at_b1 = {r["fusion"]: r for r in res.rows if r["batch"] == 1}
    # Kernel count strictly decreases with fusion aggressiveness.
    assert (at_b1["none"]["kernels_per_layer"]
            > at_b1["elementwise"]["kernels_per_layer"]
            > at_b1["attention"]["kernels_per_layer"]
            > at_b1["deep"]["kernels_per_layer"])
    # So does modeled latency and HBM traffic.
    assert at_b1["deep"]["layer_us"] < at_b1["none"]["layer_us"]
    assert at_b1["deep"]["hbm_mb"] <= at_b1["none"]["hbm_mb"]


def test_ablation_pcc_degree(run_experiment):
    res = run_experiment(ablation_pcc_degree)
    for gpus in (128, 256):
        series = sorted(
            (r["tp_degree"], r["reduction"]) for r in res.rows
            if r["gpus"] == gpus
        )
        reductions = [v for _, v in series]
        # Reduction tracks the slicing degree: ~L at tp_degree L.
        assert reductions == sorted(reductions)
        assert 7.0 < reductions[-1] < 9.5  # tp=8 => ~8x


def test_ablation_expert_slicing(run_experiment):
    res = run_experiment(ablation_expert_slicing)
    by_es = {r["expert_slicing"]: r for r in res.rows}
    # Slicing an expert 2 ways halves its weight-streaming time.
    assert by_es[2]["expert_ms"] < 0.6 * by_es[1]["expert_ms"]
    assert by_es[2]["total_ms"] < by_es[1]["total_ms"]


def test_ablation_hybrid_factor(run_experiment):
    res = run_experiment(ablation_hybrid_factor)
    prompts = [r["prompt_ms"] for r in sorted(res.rows,
                                              key=lambda r: r["prompt_factor"])]
    # More prompt micro-batches keep shrinking the prompt phase here
    # (prompt compute saturates, only the bubble shrinks).
    assert prompts == sorted(prompts, reverse=True)
    assert prompts[-1] < 0.8 * prompts[0]


def test_ablation_prefetch_depth(run_experiment):
    res = run_experiment(ablation_prefetch_depth)
    rows = sorted(res.rows, key=lambda r: r["prefetch_depth"])
    # Depth 1 captures nearly all of the overlap win...
    assert rows[1]["pass_s"] < 0.7 * rows[0]["pass_s"]
    # ...and deeper prefetch only spends buffer memory.
    assert rows[3]["pass_s"] > 0.98 * rows[1]["pass_s"]
    assert rows[3]["buffers_gb"] > 2 * rows[1]["buffers_gb"]


def test_ablation_pinned_weights(run_experiment):
    res = run_experiment(ablation_pinned_weights)
    rows = sorted(res.rows, key=lambda r: r["pinned_frac"])
    # More pinning always shrinks the feasible batch...
    batches = [r["batch"] for r in rows]
    assert batches == sorted(batches, reverse=True)
    # ...and never improves throughput over the fully-streamed design
    # (Sec. VI-A's argument for not pinning).
    assert rows[0]["tflops"] == max(r["tflops"] for r in rows)


def test_ablation_serving_load(run_experiment):
    from repro.bench.ablations import ablation_serving_load

    res = run_experiment(ablation_serving_load)
    rows = sorted(res.rows, key=lambda r: r["req_per_s"])
    # Rising load: throughput grows, and queueing raises latency.
    tputs = [r["tokens_per_s"] for r in rows]
    assert tputs == sorted(tputs)
    assert rows[-1]["p50_s"] > rows[0]["p50_s"]
    # P99 always dominates P50.
    for r in rows:
        assert r["p99_s"] >= r["p50_s"]


def test_ablation_sla_frontier(run_experiment):
    res = run_experiment(ablation_sla_frontier)
    # Looser SLAs admit larger batches and monotonically more throughput.
    numeric = [r for r in res.rows if r["sla_ms"] != "none"]
    tputs = [r["tokens_per_s"] for r in numeric]
    assert tputs == sorted(tputs)
    for r in numeric:
        assert r["token_ms"] <= r["sla_ms"]
