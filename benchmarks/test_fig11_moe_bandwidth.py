"""Fig. 11: aggregate memory-bandwidth scalability of the 52B MoE model."""

from repro.bench.figures import fig11_moe_bandwidth


def test_fig11_moe_bandwidth(run_experiment):
    res = run_experiment(fig11_moe_bandwidth)
    rows = sorted(res.rows, key=lambda r: r["gpus"])
    assert [r["gpus"] for r in rows] == [8, 16, 32, 64, 128]

    for r in rows:
        # DeepSpeed sustains much higher bandwidth than the baseline at
        # every scale (combined MoE kernels + all-to-all optimizations).
        assert r["ds_agg_tb_s"] > 2 * r["baseline_agg_tb_s"], r
        # Per-GPU bandwidth never exceeds the A100's peak.
        assert r["ds_per_gpu_gb_s"] < 1555

    # Aggregate bandwidth keeps growing all the way to 128 GPUs.
    ds_agg = [r["ds_agg_tb_s"] for r in rows]
    assert ds_agg == sorted(ds_agg)
    assert ds_agg[-1] > 1.5 * ds_agg[0]
