"""Autoscale benchmark: closed loop vs every equal-cost fixed fleet.

The acceptance bar for ``repro.autoscale``: on a ≥100k-request diurnal
trace (full-amplitude day/night cycle, mean rate equal to the fixed
fleets' sizing basis), the autoscaled fleet must beat **every**
fixed-size fleet of no greater average GPU cost on P99 time-to-first
token. The run writes ``BENCH_autoscale.json`` at the repo root — the
artifact CI's ``bench-speed`` job regenerates, uploads, and gates: the
equal-cost sweep must hold, and (the whole pipeline being
deterministic) the recorded P99 must not drift above the committed
baseline's by more than 5%.

Opt-in: skipped unless ``BENCH_SPEED=1`` (the sweep simulates ~500k
requests across the autoscaled run plus the fixed-fleet ladder).
``BENCH_AUTOSCALE_REQUESTS`` overrides the trace size.
"""

import json
import math
import os
import time
from pathlib import Path

import pytest

from repro.autoscale import AutoscaleConfig
from repro.engine import synthesize_trace
from repro.fleet import simulate_fleet

pytestmark = pytest.mark.skipif(
    os.environ.get("BENCH_SPEED") != "1",
    reason="heavy autoscale benchmark; set BENCH_SPEED=1 to run",
)

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_autoscale.json"

NUM_REQUESTS = int(os.environ.get("BENCH_AUTOSCALE_REQUESTS", "100000"))

# Deployment sizing: one replica sustains ~12-14 requests/s of this
# workload at max_batch=4, so the mean rate needs ~2.5 replicas and the
# diurnal peak (2x the mean at amplitude 1.0) ~5 — inside the budget,
# out of reach of any equal-cost fixed fleet.
ARRIVAL_RATE = 30.0
MEAN_PROMPT, MEAN_GEN = 32, 16
MAX_BATCH = 4
SEED = 33

COSTS = dict(prompt_time=lambda b, p: 0.02 + 0.001 * p,
             step_time=lambda b: 0.01 + 0.001 * b)

AUTOSCALE = AutoscaleConfig(
    min_replicas=1, max_replicas=6, ttft_slo_s=0.3,
    epoch_s=2.0, sustain_epochs=3, slow_replica_ratio=0.25,
    scale_out_cooldown_s=4.0, mean_prompt=MEAN_PROMPT,
)

# Regression gate: determinism makes the simulated P99 a constant for a
# fixed config; the small headroom only absorbs numeric-library drift.
P99_DRIFT_CEILING = 1.05


def test_autoscaler_beats_equal_cost_fixed_fleets():
    baseline = (json.loads(RESULT_PATH.read_text())
                if RESULT_PATH.exists() else None)

    trace = synthesize_trace(
        num_requests=NUM_REQUESTS, arrival_rate=ARRIVAL_RATE,
        mean_prompt=MEAN_PROMPT, mean_gen=MEAN_GEN,
        arrival_shape="diurnal", diurnal_amplitude=1.0, seed=SEED)

    t0 = time.perf_counter()
    auto = simulate_fleet(
        trace, num_replicas=1, max_batch=MAX_BATCH, **COSTS,
        routing="least_outstanding", autoscaler=AUTOSCALE)
    wall_auto = time.perf_counter() - t0
    assert auto.num_completed == NUM_REQUESTS
    p99_auto = auto.ttft_percentile(trace, 99)

    # Every fixed fleet the autoscaled run's average GPU spend could
    # have bought instead (k=ceil would cost strictly more).
    budget = math.floor(auto.avg_replicas)
    assert budget >= 2, "the loop never grew; the comparison is vacuous"
    ladder = []
    for k in range(1, budget + 1):
        fixed = simulate_fleet(trace, num_replicas=k, max_batch=MAX_BATCH,
                               **COSTS, routing="least_outstanding")
        ladder.append({
            "replicas": k,
            "ttft_p99_s": round(fixed.ttft_percentile(trace, 99), 4),
        })

    record = {
        "benchmark": "autoscale",
        "config": {
            "num_requests": NUM_REQUESTS,
            "arrival_rate": ARRIVAL_RATE,
            "arrival_shape": "diurnal",
            "diurnal_amplitude": 1.0,
            "mean_prompt": MEAN_PROMPT, "mean_gen": MEAN_GEN,
            "max_batch": MAX_BATCH, "seed": SEED,
            "autoscale": {
                "min_replicas": AUTOSCALE.min_replicas,
                "max_replicas": AUTOSCALE.max_replicas,
                "ttft_slo_s": AUTOSCALE.ttft_slo_s,
                "epoch_s": AUTOSCALE.epoch_s,
                "sustain_epochs": AUTOSCALE.sustain_epochs,
                "slow_replica_ratio": AUTOSCALE.slow_replica_ratio,
                "scale_out_cooldown_s": AUTOSCALE.scale_out_cooldown_s,
            },
        },
        "autoscaled": {
            "ttft_p99_s": round(p99_auto, 4),
            "avg_replicas": round(auto.avg_replicas, 3),
            "pool_size": auto.num_replicas,
            "num_actions": len(auto.autoscale_log),
            "makespan_s": round(auto.makespan, 1),
        },
        "fixed_fleets": ladder,
        "wall_seconds_autoscaled": round(wall_auto, 1),
        "sim_requests_per_wall_s": round(NUM_REQUESTS / wall_auto, 1),
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    # The acceptance sweep itself: strictly better than every rung.
    for rung in ladder:
        assert p99_auto < rung["ttft_p99_s"], (
            f"fixed fleet of {rung['replicas']} "
            f"(cost <= avg {auto.avg_replicas:.2f}) beat the autoscaler: "
            f"{rung['ttft_p99_s']:.3f}s <= {p99_auto:.3f}s P99 TTFT")

    if baseline is not None and baseline["config"] == record["config"]:
        ceiling = P99_DRIFT_CEILING * baseline["autoscaled"]["ttft_p99_s"]
        assert p99_auto <= ceiling, (
            f"autoscaled P99 TTFT regressed: {p99_auto:.3f}s vs committed "
            f"{baseline['autoscaled']['ttft_p99_s']:.3f}s (+5% ceiling "
            f"{ceiling:.3f}s)")
