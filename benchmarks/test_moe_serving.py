"""MoE trace-serving benchmark: a Table II deployment behind the
serving and fleet stack via the step-cost interface.

Before the pricing refactor only dense models could be served; these
benchmarks time an MoE deployment end to end — the shared scheduler,
the fleet router with a mid-trace crash, and the serving tuner — all
priced by :class:`~repro.engine.costs.MoEStepCost` at the live batch's
true KV lengths.
"""

import math

import numpy as np

from repro.engine import (
    MoELatencyModel,
    MoEStepCost,
    simulate_serving,
    synthesize_trace,
    tune_serving_deployment,
)
from repro.fleet import FaultPlan, ReplicaFault, simulate_fleet
from repro.hardware import dgx_a100_cluster
from repro.model import MOE_PARALLELISM, MOE_ZOO

CLUSTER = dgx_a100_cluster(16)  # 128 GPUs: one full EP-128 deployment
CONFIG = MOE_ZOO["1.3b-moe-128"]
TRACE = synthesize_trace(num_requests=150, arrival_rate=60.0,
                         mean_prompt=96, mean_gen=12, seed=21)


def _costs():
    model = MoELatencyModel(CONFIG, CLUSTER, MOE_PARALLELISM[CONFIG.name],
                            optimized=True)
    return MoEStepCost(model)


def test_moe_serving_trace(benchmark):
    """One MoE replica serves the full trace through the shared
    scheduler; throughput beats the sequential (batch-1) floor."""
    costs = _costs()

    def serve():
        return simulate_serving(TRACE, costs=costs, max_batch=16)

    rep = benchmark.pedantic(serve, rounds=3, iterations=1, warmup_rounds=1)
    assert len(rep.finish_times) == len(TRACE.requests)
    assert rep.total_tokens == sum(r.gen_tokens for r in TRACE.requests)
    assert math.isfinite(rep.makespan) and rep.makespan > 0
    sequential = simulate_serving(TRACE, costs=costs, max_batch=1)
    assert rep.tokens_per_second > sequential.tokens_per_second
    benchmark.extra_info["tok_s"] = round(rep.tokens_per_second, 1)
    benchmark.extra_info["batching_speedup"] = round(
        rep.tokens_per_second / sequential.tokens_per_second, 2)


def test_moe_fleet_failover(benchmark):
    """Three MoE replicas behind least-outstanding routing survive a
    mid-trace crash with 100% completion."""
    costs = _costs()
    plan = FaultPlan((ReplicaFault(replica=1, time=TRACE.duration / 2),))

    def serve():
        return simulate_fleet(TRACE, num_replicas=3, costs=costs,
                              max_batch=16, routing="least_outstanding",
                              fault_plan=plan)

    faulted = benchmark.pedantic(serve, rounds=3, iterations=1,
                                 warmup_rounds=1)
    healthy = simulate_fleet(TRACE, num_replicas=3, costs=costs,
                             max_batch=16, routing="least_outstanding")
    assert faulted.num_completed == len(TRACE.requests)
    assert np.isfinite(faulted.makespan)
    assert faulted.request_counts[1] < healthy.request_counts[1]
    benchmark.extra_info["requeued"] = len(faulted.retried)
    benchmark.extra_info["ttft_p99_degradation"] = round(
        faulted.ttft_percentile(TRACE, 99)
        / healthy.ttft_percentile(TRACE, 99), 2)


def test_moe_serving_tuner(benchmark):
    """The serving tuner searches Table II-shaped MP x EP deployments
    for an MoE model and returns a feasible winner."""
    trace = synthesize_trace(num_requests=40, arrival_rate=25.0,
                             mean_prompt=96, mean_gen=12, seed=22)

    def tune():
        return tune_serving_deployment(CONFIG, CLUSTER, trace)

    best = benchmark.pedantic(tune, rounds=3, iterations=1, warmup_rounds=1)
    assert best.num_gpus <= CLUSTER.num_gpus
    assert CONFIG.heads % best.tp == 0
    assert best.tokens_per_second > 0
    # The winner's numbers must reproduce outside the search loop.
    model = MoELatencyModel(
        CONFIG, CLUSTER,
        next(p for n, p in MOE_PARALLELISM.items() if n == CONFIG.name),
        optimized=True)
    rep = simulate_serving(trace, costs=MoEStepCost(model),
                           max_batch=best.max_batch)
    assert math.isfinite(rep.tokens_per_second)
    benchmark.extra_info["winner_mp"] = best.tp
    benchmark.extra_info["winner_gpus"] = best.num_gpus
    benchmark.extra_info["winner_max_batch"] = best.max_batch
    benchmark.extra_info["winner_tok_s"] = round(best.tokens_per_second, 1)
