"""Fig. 6: dense latency/throughput vs FasterTransformer."""

from repro.bench.figures import fig6_dense_latency


def test_fig6_dense_latency(run_experiment):
    res = run_experiment(fig6_dense_latency)
    assert res.rows
    # DeepSpeed wins everywhere; INT8 wins over FP16.
    for r in res.rows:
        assert r["fp16_speedup"] > 1.0, r
        assert r["int8_speedup"] > r["fp16_speedup"], r

    # Paper band: FP16 up to ~1.55x, INT8 up to ~1.95x (we allow 0.25 slack).
    max_fp16 = max(r["fp16_speedup"] for r in res.rows)
    max_int8 = max(r["int8_speedup"] for r in res.rows)
    assert 1.3 < max_fp16 < 1.8
    assert 1.7 < max_int8 < 2.4

    # Largest FP16 gains on the smallest model at batch 1.
    batch1 = {r["model"]: r["fp16_speedup"] for r in res.rows if r["batch"] == 1}
    assert batch1["gpt2-1.5b"] == max(batch1.values())

    # Throughput grows with batch for every model.
    for model in {r["model"] for r in res.rows}:
        series = sorted(
            (r["batch"], r["ds_tokens_per_s"]) for r in res.rows
            if r["model"] == model
        )
        tputs = [t for _, t in series]
        assert tputs == sorted(tputs), model
