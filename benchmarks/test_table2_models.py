"""Table II: sparse model configuration regeneration."""

from repro.bench.figures import table2


def test_table2_moe_zoo(run_experiment):
    res = run_experiment(table2)
    assert len(res.rows) == 5
    by_name = {r["model"]: r for r in res.rows}
    # Table II columns.
    assert by_name["24b-moe-128"]["MP"] == 8
    assert by_name["24b-moe-128"]["EP"] == 128
    assert by_name["24b-moe-128"]["expert_slicing"] == 2
    assert by_name["24b-moe-128"]["gpus"] == 256
    assert by_name["1.3b-moe-128"]["gpus"] == 128
    # Two of the models exceed a trillion parameters.
    trillion = [r for r in res.rows if r["listed(B)"] > 1000]
    assert len(trillion) == 2
