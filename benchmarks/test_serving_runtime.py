"""Serving-runtime benchmark: one trace through both scheduler backends.

The functional path (``GenerationSession`` + ``RaggedDecoder``) serves
the trace with real forwards and must beat the old per-request decode
loop on forward count; the analytical path (``simulate_serving``)
replays the same scheduler decisions under the latency model and
reports the numbers an operator quotes: sustained tokens/sec and
P50/P99 time-to-first-token.
"""

import numpy as np

from repro.engine import (
    DenseLatencyModel,
    DenseStepCost,
    GenerationSession,
    simulate_serving,
    synthesize_trace,
)
from repro.hardware import dgx_a100_cluster
from repro.model import DENSE_ZOO, DenseTransformer, ModelConfig

CFG = ModelConfig(name="bench-serving", hidden=32, layers=2, heads=4,
                  vocab=53, max_seq=64)

TRACE = synthesize_trace(num_requests=12, arrival_rate=100.0,
                         mean_prompt=5, mean_gen=6, seed=21)


def _prompts(model):
    rng = np.random.default_rng(17)
    return [rng.integers(0, model.config.vocab, size=r.prompt_len)
            for r in TRACE.requests]


def test_batched_decode_beats_per_request_loop(benchmark):
    """The whole live batch decodes in one forward: total forwards must
    come in well under the per-request loop's one-forward-per-token."""
    model = DenseTransformer(CFG, seed=7)
    prompts = _prompts(model)

    def serve():
        session = GenerationSession(model, max_concurrency=8)
        for r, p in zip(TRACE.requests, prompts):
            session.submit(p, max_new_tokens=r.gen_tokens)
        session.run()
        return session

    session = benchmark.pedantic(serve, rounds=3, iterations=1,
                                 warmup_rounds=1)
    # The old loop issued one forward per generated token per request.
    per_request_forwards = sum(r.gen_tokens for r in TRACE.requests)
    assert session.forward_calls < per_request_forwards
    assert session.tokens_generated == TRACE.total_gen_tokens
    benchmark.extra_info["forward_calls"] = session.forward_calls
    benchmark.extra_info["per_request_forwards"] = per_request_forwards
    benchmark.extra_info["speedup_forwards"] = round(
        per_request_forwards / session.forward_calls, 2)

    # Batched outputs stay exact vs each prompt run alone.
    done = {rid: req for rid, req in session._finished.items()}
    for (rid, req), p, r in zip(sorted(done.items()), prompts,
                                TRACE.requests):
        np.testing.assert_array_equal(
            req.output_ids, model.generate(p[None, :], r.gen_tokens)[0])


def test_analytical_replay_reports_sla_numbers(benchmark):
    """Replay a production-sized trace under the dense latency model and
    report throughput plus TTFT percentiles."""
    trace = synthesize_trace(num_requests=64, arrival_rate=20.0,
                             mean_prompt=128, mean_gen=16, seed=3)
    model = DenseLatencyModel(DENSE_ZOO["gpt-13b"], dgx_a100_cluster(1), tp=4)
    costs = DenseStepCost(model, representative_kv=128 + 16 // 2)

    rep = benchmark.pedantic(
        lambda: simulate_serving(trace, costs=costs, max_batch=16),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    p50 = rep.ttft_percentile(trace, 50)
    p99 = rep.ttft_percentile(trace, 99)
    assert rep.tokens_per_second > 0
    assert 0 < p50 <= p99
    assert rep.total_tokens == trace.total_gen_tokens
    benchmark.extra_info["tokens_per_second"] = round(rep.tokens_per_second, 1)
    benchmark.extra_info["ttft_p50_ms"] = round(p50 * 1e3, 2)
    benchmark.extra_info["ttft_p99_ms"] = round(p99 * 1e3, 2)
