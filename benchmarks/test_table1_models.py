"""Table I: dense model configuration regeneration."""

from repro.bench.figures import table1


def test_table1_dense_zoo(run_experiment):
    res = run_experiment(table1)
    assert res.exp_id == "table1"
    assert len(res.rows) == 9
    by_name = {r["model"]: r for r in res.rows}
    # Spot-check the table's extremes.
    assert by_name["gpt2-1.5b"]["hidden"] == 1600
    assert by_name["lm-530b"]["layers"] == 105
    # Every architectural estimate within 15% of the listed size.
    for r in res.rows:
        assert abs(r["params(B)"] - r["listed(B)"]) / r["listed(B)"] < 0.15
    # Sec. I: 530B needs ~1 TB of fp16 weights.
    assert 950 < by_name["lm-530b"]["fp16_gb"] < 1150
