"""Fleet-serving benchmark: one trace across a replica fleet, with and
without a mid-trace crash.

Times the analytical fleet simulator at production trace sizes and
asserts the qualitative failover shape: the crashed run still completes
everything, survivors absorb the dead replica's load, and the tail
degrades without the makespan diverging.
"""

import numpy as np

from repro.engine import DenseLatencyModel, DenseStepCost, synthesize_trace
from repro.fleet import FaultPlan, ReplicaFault, simulate_fleet
from repro.hardware import dgx_a100_cluster
from repro.model import DENSE_ZOO

TRACE = synthesize_trace(num_requests=200, arrival_rate=80.0,
                         mean_prompt=128, mean_gen=16, seed=13)


def _costs():
    model = DenseLatencyModel(DENSE_ZOO["gpt-13b"], dgx_a100_cluster(1), tp=2)
    return DenseStepCost(model, representative_kv=128 + 16 // 2)


def test_fleet_scales_out_a_serving_trace(benchmark):
    """4 replicas behind least-outstanding routing: near-linear scale-out
    on an arrival-bound trace."""
    costs = _costs()

    def serve():
        return (
            simulate_fleet(TRACE, num_replicas=1, costs=costs, max_batch=8,
                           routing="least_outstanding"),
            simulate_fleet(TRACE, num_replicas=4, costs=costs, max_batch=8,
                           routing="least_outstanding"),
        )

    solo, fleet = benchmark.pedantic(serve, rounds=3, iterations=1,
                                     warmup_rounds=1)
    assert fleet.num_completed == len(TRACE.requests)
    assert fleet.makespan < solo.makespan
    speedup = solo.makespan / fleet.makespan
    assert speedup > 1.5  # scale-out must actually buy wall-clock
    benchmark.extra_info["makespan_speedup_4x"] = round(speedup, 2)
    benchmark.extra_info["fleet_tok_s"] = round(fleet.tokens_per_second, 1)


def test_fleet_survives_replica_crash(benchmark):
    """Kill 1 of 4 replicas mid-trace: 100% completion via requeue, load
    shifts to the survivors, the P99 tail pays for it."""
    costs = _costs()
    t_crash = TRACE.duration / 2
    plan = FaultPlan((ReplicaFault(replica=1, time=t_crash),))

    def serve():
        return simulate_fleet(TRACE, num_replicas=4, costs=costs, max_batch=8,
                              routing="least_outstanding", fault_plan=plan)

    faulted = benchmark.pedantic(serve, rounds=3, iterations=1,
                                 warmup_rounds=1)
    healthy = simulate_fleet(TRACE, num_replicas=4, costs=costs, max_batch=8,
                             routing="least_outstanding")
    assert faulted.num_completed == len(TRACE.requests)
    assert np.isfinite(faulted.makespan)
    assert faulted.retried
    assert faulted.request_counts[1] < healthy.request_counts[1]
    h99 = healthy.ttft_percentile(TRACE, 99)
    f99 = faulted.ttft_percentile(TRACE, 99)
    assert f99 > h99
    benchmark.extra_info["requeued"] = len(faulted.retried)
    benchmark.extra_info["tokens_discarded"] = faulted.tokens_discarded
    benchmark.extra_info["ttft_p99_degradation"] = round(f99 / h99, 2)
