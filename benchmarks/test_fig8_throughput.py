"""Fig. 8: massive-model generation throughput vs FasterTransformer."""

from repro.bench.figures import fig8_throughput


def test_fig8_throughput(run_experiment):
    res = run_experiment(fig8_throughput)
    by_name = {r["model"]: r for r in res.rows}

    # Paper: 1.51x on 175B (16 GPUs) and 1.53x on 530B (40 GPUs, vs FT
    # TP-only). Accept the 1.2-2.2x band for the shape.
    assert 1.2 < by_name["lm-175b"]["speedup"] < 2.2
    assert 1.2 < by_name["lm-530b"]["speedup"] < 2.2

    # DeepSpeed's schedule + memory work lets it run at least as large a
    # batch as FT on the 530B deployment.
    assert by_name["lm-530b"]["ds_batch"] >= by_name["lm-530b"]["ft_batch"]
    assert by_name["lm-175b"]["gpus"] == 16
    assert by_name["lm-530b"]["gpus"] == 40
