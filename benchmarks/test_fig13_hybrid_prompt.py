"""Fig. 13: hybrid-scheduling prompt-processing latency vs FT."""

from repro.bench.figures import fig13_hybrid_prompt


def test_fig13_hybrid_prompt(run_experiment):
    res = run_experiment(fig13_hybrid_prompt)
    by_config = {r["config"]: r for r in res.rows}
    ppmp = by_config["PP+MP (tp8 x pp2)"]
    mponly = by_config["MP-only (tp16)"]

    # Paper: 1.18x (PP+MP) and 3.06x (MP-only) at batch 24.
    assert 1.05 < ppmp["speedup"] < 1.6
    assert 2.2 < mponly["speedup"] < 3.8
    assert mponly["speedup"] > ppmp["speedup"]

    # Prompt processing is compute-dense: DS sustains a large fraction of
    # peak per GPU during the prompt phase.
    assert ppmp["ds_tflops_per_gpu"] > 80
