"""Discrete-event simulation core used by schedule and overlap models."""

from .engine import Process, SimulationError, Simulator, run_all
from .events import Acquire, Event, Release, Timeout, Wait
from .resources import BandwidthLink, SlotResource, transfer
from .trace import Span, Timeline

__all__ = [
    "Acquire",
    "BandwidthLink",
    "Event",
    "Process",
    "Release",
    "SimulationError",
    "Simulator",
    "SlotResource",
    "Span",
    "Timeline",
    "Timeout",
    "Wait",
    "run_all",
    "transfer",
]
