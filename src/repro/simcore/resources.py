"""Contention-aware resources for the simulator.

Two kinds cover everything the paper's schedules need:

* :class:`SlotResource` — a FIFO, capacity-``k`` semaphore. A GPU's compute
  stream is a capacity-1 slot (one kernel region at a time); a bounded
  micro-batch queue is a capacity-``k`` slot.
* :class:`BandwidthLink` — a serially-shared transport (PCIe lane,
  inter-stage P2P channel). Transfers queue FIFO and occupy the link for
  ``latency + bytes/bandwidth``. PCIe sharing between GPU pairs
  (Sec. IV-C3) is modeled by handing the *same* link object to both GPUs,
  so contention — and the paper's odd/even remedy — plays out in the
  simulation.
"""

from __future__ import annotations

from collections import deque
from typing import Generator

from .engine import Process, SimulationError, Simulator
from .events import Acquire, Release, Timeout

__all__ = ["SlotResource", "BandwidthLink", "transfer"]


class SlotResource:
    """FIFO semaphore with ``capacity`` slots."""

    def __init__(self, capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.name = name or "slot"
        self._in_use = 0
        self._queue: deque[Process] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently held slots."""
        return self._in_use

    # engine-facing hooks -----------------------------------------------

    def _acquire(self, sim: Simulator, proc: Process) -> None:
        if self._in_use < self.capacity:
            self._in_use += 1
            sim._resume(proc)
        else:
            self._queue.append(proc)

    def _release(self, sim: Simulator) -> None:
        if self._in_use == 0:
            raise SimulationError(f"release of idle resource {self.name}")
        if self._queue:
            nxt = self._queue.popleft()
            sim._resume(nxt)  # slot transfers directly to next waiter
        else:
            self._in_use -= 1


class BandwidthLink(SlotResource):
    """A serially-shared transport with alpha-beta transfer cost."""

    def __init__(self, bandwidth: float, latency: float = 0.0, name: str = "") -> None:
        super().__init__(capacity=1, name=name or "link")
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.bandwidth = bandwidth
        self.latency = latency
        self.busy_time = 0.0  # accumulated occupancy, for utilization reports

    def occupancy(self, nbytes: float) -> float:
        """Time the link is held for one transfer of ``nbytes``."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        return self.latency + nbytes / self.bandwidth


def transfer(link: BandwidthLink, nbytes: float) -> Generator:
    """Process fragment: move ``nbytes`` across ``link`` (FIFO, exclusive).

    Usage inside a process::

        yield from transfer(pcie, layer_bytes)
    """
    hold = link.occupancy(nbytes)
    yield Acquire(link)
    try:
        yield Timeout(hold)
        link.busy_time += hold
    finally:
        yield Release(link)
