"""Event primitives for the discrete-event simulator.

The simulator is a classic calendar-queue design: a heap of
``(time, sequence, Event)`` entries. Processes are Python generators that
yield *commands* (:class:`Timeout`, :class:`Wait`, :class:`Acquire`,
:class:`Release`); the engine interprets each command, schedules the
corresponding wake-up, and resumes the generator with the command's
result. Sequence numbers break time ties deterministically so simulations
are exactly reproducible.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any

__all__ = ["Event", "Timeout", "Wait", "Acquire", "Release", "Command"]


class Event:
    """A one-shot event processes can wait on and that carries a value.

    Unlike threading events, simulator events remember the trigger value
    so that producer processes can hand results to consumers (used to move
    micro-batch activations between pipeline stages).
    """

    _ids = itertools.count()

    def __init__(self, name: str = "") -> None:
        self.name = name or f"event-{next(self._ids)}"
        self.triggered = False
        self.value: Any = None
        self.waiters: list[Any] = []  # processes parked on this event

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "set" if self.triggered else "unset"
        return f"<Event {self.name} {state}>"


@dataclass(frozen=True)
class Timeout:
    """Suspend the yielding process for ``delay`` simulated seconds."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError("cannot time-travel: delay must be >= 0")


@dataclass(frozen=True)
class Wait:
    """Suspend until ``event`` triggers; resumes with the event's value."""

    event: Event


@dataclass(frozen=True)
class Acquire:
    """Acquire one slot of a resource (FIFO); resumes when granted."""

    resource: Any


@dataclass(frozen=True)
class Release:
    """Release one previously acquired slot of a resource."""

    resource: Any


Command = Timeout | Wait | Acquire | Release
