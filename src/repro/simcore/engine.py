"""Generator-based discrete-event simulation engine.

The pipeline-parallel schedules of Sec. IV-C and the offload/prefetch
overlap analyses of Sec. IV-C3 and Sec. VI-B are fundamentally questions
about *when* concurrent activities (kernel execution, PCIe transfers,
inter-stage sends) contend and overlap. Rather than hand-deriving closed
forms for each schedule, we simulate them: a schedule is a set of
processes, links are capacity-1 resources, and bubbles emerge.

Example
-------
>>> sim = Simulator()
>>> def worker(sim, results):
...     yield Timeout(1.5)
...     results.append(sim.now)
>>> out = []
>>> sim.spawn(worker(sim, out))
>>> sim.run()
>>> out
[1.5]
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Generator, Iterable

from .events import Acquire, Event, Release, Timeout, Wait

__all__ = ["Process", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for structural errors: deadlock, runaway simulations, misuse."""


class Process:
    """Wrapper binding a generator to the engine with a completion event."""

    _ids = itertools.count()

    def __init__(self, gen: Generator, name: str = "") -> None:
        self.gen = gen
        self.name = name or f"proc-{next(self._ids)}"
        self.done = Event(f"{self.name}.done")
        self.result: Any = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Process {self.name}>"


class Simulator:
    """The event loop: schedules process resumptions in simulated time."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, Process, Any]] = []
        self._seq = itertools.count()
        self._live = 0

    # -- public API --------------------------------------------------------

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Register a generator as a process starting at the current time."""
        proc = Process(gen, name)
        self._live += 1
        self._schedule(proc, self.now, None)
        return proc

    def trigger(self, event: Event, value: Any = None) -> None:
        """Trigger ``event`` now, waking every waiter."""
        if event.triggered:
            raise SimulationError(f"event {event.name} triggered twice")
        event.triggered = True
        event.value = value
        waiters, event.waiters = event.waiters, []
        for proc in waiters:
            self._schedule(proc, self.now, value)

    def run(self, until: float | None = None, max_events: int = 50_000_000) -> float:
        """Drain the event heap; return the final simulated time.

        ``until`` caps simulated time; ``max_events`` guards against
        runaway simulations (a structural bug, so it raises).
        """
        steps = 0
        while self._heap:
            t, _, proc, value = heapq.heappop(self._heap)
            if until is not None and t > until:
                self.now = until
                return self.now
            if t < self.now - 1e-18:
                raise SimulationError("event scheduled in the past")
            self.now = max(self.now, t)
            self._step(proc, value)
            steps += 1
            if steps > max_events:
                raise SimulationError(f"exceeded {max_events} events; livelock?")
        if self._live:
            raise SimulationError(
                f"{self._live} process(es) still blocked at t={self.now}: deadlock"
            )
        return self.now

    # -- engine internals ---------------------------------------------------

    def _schedule(self, proc: Process, when: float, value: Any) -> None:
        heapq.heappush(self._heap, (when, next(self._seq), proc, value))

    def _step(self, proc: Process, send_value: Any) -> None:
        try:
            cmd = proc.gen.send(send_value)
        except StopIteration as stop:
            proc.result = stop.value
            self._live -= 1
            self.trigger(proc.done, stop.value)
            return
        self._dispatch(proc, cmd)

    def _dispatch(self, proc: Process, cmd: Any) -> None:
        if isinstance(cmd, Timeout):
            self._schedule(proc, self.now + cmd.delay, None)
        elif isinstance(cmd, Wait):
            if cmd.event.triggered:
                self._schedule(proc, self.now, cmd.event.value)
            else:
                cmd.event.waiters.append(proc)
        elif isinstance(cmd, Acquire):
            cmd.resource._acquire(self, proc)
        elif isinstance(cmd, Release):
            cmd.resource._release(self)
            self._schedule(proc, self.now, None)
        elif isinstance(cmd, Process):
            # Yielding a process object joins it.
            if cmd.done.triggered:
                self._schedule(proc, self.now, cmd.done.value)
            else:
                cmd.done.waiters.append(proc)
        else:
            raise SimulationError(f"process {proc.name} yielded {cmd!r}")

    # Used by resources to resume a waiting process.
    def _resume(self, proc: Process, value: Any = None) -> None:
        self._schedule(proc, self.now, value)


def run_all(gens: Iterable[Generator], until: float | None = None) -> float:
    """Convenience: spawn every generator and run to completion."""
    sim = Simulator()
    for g in gens:
        sim.spawn(g)
    return sim.run(until=until)
