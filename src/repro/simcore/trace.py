"""Timeline tracing: record spans per lane, compute utilization and bubbles.

The pipeline figures of the paper (Fig. 2, Fig. 3) are timeline diagrams;
this module is their machine-readable counterpart. Each pipeline stage /
link / GPU gets a *lane*, processes record ``(start, end, label)`` spans,
and the analysis helpers answer the questions the paper asks of the
schedules: how big are the bubbles, what fraction of the makespan is each
stage busy, do two spans on one lane ever overlap (which would indicate a
broken schedule).
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass

__all__ = ["Span", "Timeline"]


@dataclass(frozen=True, order=True)
class Span:
    """A half-open interval ``[start, end)`` of activity on one lane."""

    start: float
    end: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("span ends before it starts")

    @property
    def duration(self) -> float:
        """Length of the span."""
        return self.end - self.start


class Timeline:
    """Spans grouped by lane, kept sorted by start time."""

    def __init__(self) -> None:
        self._lanes: dict[str, list[Span]] = {}
        self._instants: dict[str, list[tuple[float, str]]] = {}

    def record(self, lane: str, start: float, end: float, label: str = "") -> Span:
        """Add a span to ``lane`` and return it."""
        span = Span(start, end, label)
        spans = self._lanes.setdefault(lane, [])
        # Simulators append in time order; skip insort's O(log n)
        # dataclass comparisons (equivalent to insort at the end).
        if not spans or not span < spans[-1]:
            spans.append(span)
        else:
            insort(spans, span)
        return span

    def record_instant(self, lane: str, t: float, label: str = "") -> None:
        """Mark a point event on ``lane`` (a scheduler decision, an
        arrival) — exported as a Chrome *instant* event, not a span, so
        it never affects busy time or overlap checks."""
        item = (t, label)
        instants = self._instants.setdefault(lane, [])
        if not instants or not item < instants[-1]:
            instants.append(item)
        else:
            insort(instants, item)

    def instants(self, lane: str) -> list[tuple[float, str]]:
        """Point events of one lane, ordered by time."""
        return list(self._instants.get(lane, []))

    def merge(self, other: "Timeline", *, prefix: str = "") -> "Timeline":
        """Copy every span and instant of ``other`` into this timeline,
        prefixing its lane names with ``prefix``.

        Builds multi-server views: the fleet layer merges one timeline
        per replica under ``replica{i}/`` prefixes into a single
        chrome-trace export. Returns ``self`` for chaining.
        """
        for lane, spans in other._lanes.items():
            for s in spans:
                self.record(prefix + lane, s.start, s.end, s.label)
        for lane, instants in other._instants.items():
            for t, label in instants:
                self.record_instant(prefix + lane, t, label)
        return self

    def lanes(self) -> list[str]:
        """Lane names in insertion-independent (sorted) order."""
        return sorted(self._lanes)

    def spans(self, lane: str) -> list[Span]:
        """Spans of one lane, ordered by start."""
        return list(self._lanes.get(lane, []))

    def makespan(self) -> float:
        """End of the last span across all lanes (0.0 when empty)."""
        ends = [s.end for spans in self._lanes.values() for s in spans]
        return max(ends, default=0.0)

    def busy_time(self, lane: str) -> float:
        """Total busy time of a lane, merging any overlapping spans."""
        spans = self._lanes.get(lane, [])
        total = 0.0
        cur_start = cur_end = None
        for s in spans:
            if cur_end is None or s.start > cur_end:
                if cur_end is not None:
                    total += cur_end - cur_start
                cur_start, cur_end = s.start, s.end
            else:
                cur_end = max(cur_end, s.end)
        if cur_end is not None:
            total += cur_end - cur_start
        return total

    def utilization(self, lane: str, horizon: float | None = None) -> float:
        """Busy fraction of ``lane`` over ``horizon`` (default: makespan)."""
        horizon = self.makespan() if horizon is None else horizon
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time(lane) / horizon)

    def bubble_time(self, lane: str, horizon: float | None = None) -> float:
        """Idle time of ``lane`` within the horizon — the pipeline bubble."""
        horizon = self.makespan() if horizon is None else horizon
        return max(0.0, horizon - self.busy_time(lane))

    def has_overlap(self, lane: str) -> bool:
        """True if two spans on ``lane`` overlap (schedule validity check)."""
        spans = self._lanes.get(lane, [])
        for a, b in zip(spans, spans[1:]):
            if b.start < a.end - 1e-15:
                return True
        return False

    def to_rows(self) -> list[tuple[str, float, float, str]]:
        """Flatten to (lane, start, end, label) rows for reporting."""
        return [
            (lane, s.start, s.end, s.label)
            for lane in self.lanes()
            for s in self._lanes[lane]
        ]

    def to_chrome_trace(self, *, time_unit: float = 1e-6) -> list[dict]:
        """Export as Chrome ``chrome://tracing`` / Perfetto JSON events.

        ``time_unit`` converts simulated seconds to trace microseconds
        (default: seconds -> us). Load the JSON list under a
        ``{"traceEvents": [...]}`` wrapper.
        """
        if time_unit <= 0:
            raise ValueError("time_unit must be positive")
        events = []
        lane_order = sorted(set(self._lanes) | set(self._instants))
        for pid, lane in enumerate(lane_order):
            for s in self._lanes.get(lane, []):
                events.append(
                    {
                        "name": s.label or lane,
                        "cat": "sim",
                        "ph": "X",  # complete event
                        "ts": s.start / time_unit,
                        "dur": s.duration / time_unit,
                        "pid": 0,
                        "tid": pid,
                        "args": {"lane": lane},
                    }
                )
            for t, label in self._instants.get(lane, []):
                events.append(
                    {
                        "name": label or lane,
                        "cat": "sim",
                        "ph": "i",  # instant event
                        "ts": t / time_unit,
                        "s": "t",  # thread-scoped marker
                        "pid": 0,
                        "tid": pid,
                        "args": {"lane": lane},
                    }
                )
        return events
