"""Workload scenario zoo: arrival shapes and trace generators.

:mod:`repro.scenarios.arrivals` holds the arrival-process machinery
(Poisson / diurnal / flash-crowd, moved here from
``engine/serving_sim.py``); :mod:`repro.scenarios.generators` builds
full :class:`~repro.engine.serving_sim.WorkloadTrace` workloads on top —
multi-turn chat with shared-prefix KV reuse, agentic loops, heavy-tailed
lengths, and multi-tenant mixes with per-tenant SLOs.
"""

from .arrivals import ARRIVAL_SHAPES, draw_arrivals, thinned_arrivals
from .generators import (
    SCENARIOS,
    TenantSpec,
    agentic_scenario,
    chat_scenario,
    heavy_tailed_scenario,
    make_scenario,
    multi_tenant_scenario,
    strip_prefix_sharing,
    tenant_policy,
    tenant_slo_summary,
)

__all__ = [
    "ARRIVAL_SHAPES",
    "draw_arrivals",
    "thinned_arrivals",
    "SCENARIOS",
    "TenantSpec",
    "agentic_scenario",
    "chat_scenario",
    "heavy_tailed_scenario",
    "make_scenario",
    "multi_tenant_scenario",
    "strip_prefix_sharing",
    "tenant_policy",
    "tenant_slo_summary",
]
