"""Workload scenario zoo: traces that exercise real serving mechanisms.

:func:`~repro.engine.serving_sim.synthesize_trace` produces one shape —
independent requests, Poisson-ish lengths — which prices every prompt at
full prefill and holds every KV cache for exactly one request. The
generators here produce the workloads the paper's serving discussion
(Sec. I's online scenarios, Sec. IV-B's KV-capacity limit) actually
implies:

* :func:`chat_scenario` — multi-turn conversations. A turn's prompt
  *contains* the previous turn's full context, so ``shared_prefix_len``
  marks what a parked KV cache can serve; turn arrivals are *causal*
  (a user replies only after the previous turn finishes, estimated from
  supplied per-token service rates, plus exponential think time).
* :func:`agentic_scenario` — agent loops: a long context re-submitted
  many times with short generations and tool-call gaps; the extreme
  prefix-sharing (and KV-pinning) workload.
* :func:`heavy_tailed_scenario` — independent requests with lognormal
  prompts and Zipf generation lengths: a few giants dominate the work,
  stressing admission fairness far harder than Poisson lengths.
* :func:`multi_tenant_scenario` — a mix of per-tenant sub-workloads
  (rates, shapes, fair-share weights, slot caps, per-tenant SLOs), the
  input to the scheduler's tenant-aware admission policies.

All generators return plain :class:`~repro.engine.serving_sim
.WorkloadTrace` objects — every downstream consumer (serving simulator,
fleet, functional engine, tuners) takes them unchanged — and are pure
functions of their seed.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..engine.scheduler import TenantFairShare
from ..engine.serving_sim import Request, WorkloadTrace
from ..rng import SeedLike, as_generator
from .arrivals import draw_arrivals

__all__ = [
    "TenantSpec",
    "chat_scenario",
    "agentic_scenario",
    "heavy_tailed_scenario",
    "multi_tenant_scenario",
    "strip_prefix_sharing",
    "tenant_policy",
    "tenant_slo_summary",
    "SCENARIOS",
    "make_scenario",
]


def _causal_sessions(
    rng: np.random.Generator,
    *,
    session_rate: float,
    num_sessions: int,
    min_requests: int | None,
    mean_turns: float,
    first_prompt_mean: int,
    extension_mean: int,
    gen_mean: int,
    est_prefill_s: float,
    est_step_s: float,
    mean_think_time: float,
    session_base: int,
) -> list[tuple[float, int, int, int, int, int]]:
    """Raw causal session turns: ``(arrival, session, turn, prompt,
    gen, shared_prefix_len)`` tuples, unsorted.

    Sessions open at Poisson(``session_rate``) arrivals; each runs
    ``max(1, Poisson(mean_turns))`` turns. Turn ``t+1``'s prompt is turn
    ``t``'s full context (prompt + generation) plus a fresh extension,
    its ``shared_prefix_len`` is that context, and it arrives only after
    turn ``t``'s *estimated* completion (``est_prefill_s + gen *
    est_step_s`` — an a-priori service estimate, deliberately not tied
    to any cost model) plus exponential think time. Generation lengths
    are floored at 2 so every turn enters the decode phase: a turn
    retiring inside its own admission round would make intra-round
    admission ordering observable, needlessly complicating cross-backend
    equivalence.

    When ``min_requests`` is set, extra sessions are drawn past
    ``num_sessions`` (arrivals continuing the same Poisson process)
    until the turn count reaches it.
    """
    raw: list[tuple[float, int, int, int, int, int]] = []
    opens = 0.0
    s = 0
    while s < num_sessions or (min_requests is not None
                               and len(raw) < min_requests):
        opens += float(rng.exponential(1.0 / session_rate))
        turns = max(1, int(rng.poisson(mean_turns)))
        arrival = opens
        prompt = max(1, int(rng.poisson(first_prompt_mean)))
        shared = 0
        for t in range(turns):
            gen = max(2, int(rng.poisson(gen_mean)))
            raw.append((arrival, session_base + s, t, prompt, gen, shared))
            if t + 1 < turns:
                est_done = arrival + est_prefill_s + gen * est_step_s
                arrival = est_done + float(rng.exponential(mean_think_time))
                shared = prompt + gen
                prompt = shared + max(1, int(rng.poisson(extension_mean)))
        s += 1
    return raw


def _assemble(
    raw: list[tuple[float, int | None, int, int, int, int]],
    tenants: list[str | None],
    *,
    num_requests: int | None,
    expert_skew: float | None,
) -> WorkloadTrace:
    """Sort raw turns by arrival, renumber ids, truncate, build the
    trace. ``tenants`` is parallel to ``raw``."""
    order = sorted(range(len(raw)), key=lambda i: (raw[i][0], i))
    if num_requests is not None:
        order = order[:num_requests]
    return WorkloadTrace(
        tuple(
            Request(
                request_id=rid,
                arrival=raw[i][0],
                prompt_len=raw[i][3],
                gen_tokens=raw[i][4],
                session=raw[i][1],
                tenant=tenants[i],
                turn_index=raw[i][2],
                shared_prefix_len=raw[i][5],
            )
            for rid, i in enumerate(order)
        ),
        expert_skew=expert_skew,
    )


def chat_scenario(
    *,
    num_sessions: int,
    session_rate: float,
    mean_turns: float = 4.0,
    mean_prompt: int = 128,
    mean_utterance: int | None = None,
    mean_gen: int = 32,
    mean_think_time: float = 2.0,
    est_prefill_s: float = 0.5,
    est_step_s: float = 0.05,
    num_requests: int | None = None,
    tenant: str | None = None,
    expert_skew: float | None = None,
    seed: SeedLike = 0,
) -> WorkloadTrace:
    """Multi-turn chat: sessions of causally ordered turns with shared
    conversation prefixes.

    ``num_sessions`` conversations open at Poisson(``session_rate``);
    each runs ``max(1, Poisson(mean_turns))`` turns. The opening prompt
    averages ``mean_prompt`` tokens; each follow-up prompt is the full
    previous context plus a ``mean_utterance``-token user message
    (default ``max(1, mean_prompt // 4)``) and declares that context as
    its ``shared_prefix_len``. A follow-up arrives after the previous
    turn's estimated completion (``est_prefill_s + gen * est_step_s``,
    an a-priori estimate independent of any cost model) plus
    Exponential(``mean_think_time``) think time — so load is *closed
    loop*: turns cannot pile up faster than the service estimate lets
    sessions advance.

    ``num_requests`` (optional) is a hard target: extra sessions are
    drawn until that many turns exist, then the trace is truncated to
    exactly that many earliest-arriving turns. Generations are floored
    at 2 tokens (see :func:`_causal_sessions`).
    """
    if num_sessions < 1 or session_rate <= 0:
        raise ValueError("num_sessions >= 1 and session_rate > 0 required")
    if mean_turns <= 0 or mean_prompt < 1 or mean_gen < 1:
        raise ValueError("mean_turns > 0 and mean lengths >= 1 required")
    if est_prefill_s < 0 or est_step_s < 0 or mean_think_time < 0:
        raise ValueError("time estimates must be >= 0")
    if num_requests is not None and num_requests < 1:
        raise ValueError("num_requests must be >= 1 when given")
    if mean_utterance is None:
        mean_utterance = max(1, mean_prompt // 4)
    rng = as_generator(seed)
    raw = _causal_sessions(
        rng,
        session_rate=session_rate,
        num_sessions=num_sessions,
        min_requests=num_requests,
        mean_turns=mean_turns,
        first_prompt_mean=mean_prompt,
        extension_mean=mean_utterance,
        gen_mean=mean_gen,
        est_prefill_s=est_prefill_s,
        est_step_s=est_step_s,
        mean_think_time=mean_think_time,
        session_base=0,
    )
    return _assemble(raw, [tenant] * len(raw),
                     num_requests=num_requests, expert_skew=expert_skew)


def agentic_scenario(
    *,
    num_agents: int,
    agent_rate: float,
    mean_iterations: float = 12.0,
    context_len: int = 512,
    mean_observation: int = 24,
    mean_gen: int = 16,
    tool_time: float = 0.2,
    est_prefill_s: float = 0.5,
    est_step_s: float = 0.05,
    num_requests: int | None = None,
    tenant: str | None = None,
    seed: SeedLike = 0,
) -> WorkloadTrace:
    """Agentic loops: a long context re-submitted many times with short
    generations.

    Each of ``num_agents`` agents opens with a ``context_len``-token
    prompt (instructions + tools + task) and iterates ``max(1,
    Poisson(mean_iterations))`` times: generate a short action
    (``mean_gen`` tokens), run the tool (Exponential(``tool_time``)),
    and re-submit the whole transcript plus a ``mean_observation``-token
    tool result. Every iteration past the first shares its entire
    previous transcript as prefix — the dedup-heaviest workload the zoo
    has, and the one where *without* sharing the KV pool refills the
    same context dozens of times.
    """
    if num_agents < 1 or agent_rate <= 0:
        raise ValueError("num_agents >= 1 and agent_rate > 0 required")
    if mean_iterations <= 0 or context_len < 1:
        raise ValueError("mean_iterations > 0 and context_len >= 1 required")
    if mean_observation < 1 or mean_gen < 1:
        raise ValueError("mean lengths must be >= 1")
    if tool_time < 0 or est_prefill_s < 0 or est_step_s < 0:
        raise ValueError("time estimates must be >= 0")
    if num_requests is not None and num_requests < 1:
        raise ValueError("num_requests must be >= 1 when given")
    rng = as_generator(seed)
    raw = _causal_sessions(
        rng,
        session_rate=agent_rate,
        num_sessions=num_agents,
        min_requests=num_requests,
        mean_turns=mean_iterations,
        first_prompt_mean=context_len,
        extension_mean=mean_observation,
        gen_mean=mean_gen,
        est_prefill_s=est_prefill_s,
        est_step_s=est_step_s,
        mean_think_time=tool_time,
        session_base=0,
    )
    return _assemble(raw, [tenant] * len(raw),
                     num_requests=num_requests, expert_skew=None)


def heavy_tailed_scenario(
    *,
    num_requests: int,
    arrival_rate: float,
    median_prompt: int = 128,
    prompt_sigma: float = 1.0,
    gen_zipf_a: float = 2.5,
    max_gen: int = 2048,
    arrival_shape: str = "poisson",
    tenant: str | None = None,
    seed: SeedLike = 0,
) -> WorkloadTrace:
    """Independent requests with heavy-tailed lengths.

    Prompts are lognormal — ``median_prompt`` sets the median,
    ``prompt_sigma`` the log-space spread (1.0 gives a ~7x P99/median
    ratio) — and generation lengths are Zipf(``gen_zipf_a``) clipped to
    ``max_gen``: most requests are tiny, a few are enormous, so mean-
    based capacity planning and naive FCFS admission both misbehave.
    ``arrival_shape`` passes through to
    :func:`~repro.scenarios.arrivals.draw_arrivals`.
    """
    if num_requests < 1 or arrival_rate <= 0:
        raise ValueError("num_requests >= 1 and arrival_rate > 0 required")
    if median_prompt < 1 or prompt_sigma <= 0:
        raise ValueError("median_prompt >= 1 and prompt_sigma > 0 required")
    if gen_zipf_a <= 1.0:
        raise ValueError("gen_zipf_a must be > 1")
    if max_gen < 1:
        raise ValueError("max_gen must be >= 1")
    rng = as_generator(seed)
    arrivals = draw_arrivals(rng, num_requests, arrival_rate,
                             arrival_shape=arrival_shape)
    prompts = np.maximum(1, np.rint(rng.lognormal(
        np.log(median_prompt), prompt_sigma, size=num_requests)).astype(int))
    gens = np.minimum(max_gen, rng.zipf(gen_zipf_a, size=num_requests))
    return WorkloadTrace(tuple(
        Request(i, float(arrivals[i]), int(prompts[i]), int(gens[i]),
                tenant=tenant)
        for i in range(num_requests)
    ))


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's slice of a multi-tenant mix.

    ``workload`` picks the sub-generator: ``"independent"`` (Poisson
    arrivals/lengths, no sessions) or ``"chat"``
    (:func:`chat_scenario` sessions; ``arrival_rate`` then counts
    *sessions* per second). ``weight``/``slot_cap`` feed
    :func:`tenant_policy`'s fair-share admission;
    ``p99_ttft_slo_s`` is the tenant's service objective, read by
    :func:`tenant_slo_summary` (``None`` = no SLO).
    """

    name: str
    arrival_rate: float
    num_requests: int
    workload: str = "independent"
    mean_prompt: int = 128
    mean_gen: int = 32
    mean_turns: float = 4.0
    weight: float = 1.0
    slot_cap: int | None = None
    p99_ttft_slo_s: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.arrival_rate <= 0 or self.num_requests < 1:
            raise ValueError("arrival_rate > 0 and num_requests >= 1 required")
        if self.workload not in ("independent", "chat"):
            raise ValueError(
                f"unknown workload {self.workload!r}; "
                "choose 'independent' or 'chat'")
        if self.mean_prompt < 1 or self.mean_gen < 1 or self.mean_turns <= 0:
            raise ValueError("mean lengths >= 1 and mean_turns > 0 required")
        if self.weight <= 0:
            raise ValueError("weight must be > 0")
        if self.slot_cap is not None and self.slot_cap < 1:
            raise ValueError("slot_cap must be >= 1 when given")
        if self.p99_ttft_slo_s is not None and self.p99_ttft_slo_s <= 0:
            raise ValueError("p99_ttft_slo_s must be > 0 when given")


# Session-id namespacing: tenant ``i``'s sessions live in
# ``[i * _SESSION_STRIDE, (i+1) * _SESSION_STRIDE)`` so mixes never
# collide session ids across tenants.
_SESSION_STRIDE = 1 << 24


def multi_tenant_scenario(
    tenants: Sequence[TenantSpec],
    *,
    expert_skew: float | None = None,
    seed: SeedLike = 0,
) -> WorkloadTrace:
    """Merge per-tenant sub-workloads into one tagged trace.

    Each spec's sub-trace is drawn in declaration order from one rng
    stream (the mix is a pure function of the seed), tagged with the
    tenant's name, session-namespaced, merged by arrival, and renumbered
    0..N-1. Duplicate tenant names are rejected — per-tenant report
    views and admission weights key on the name.
    """
    if not tenants:
        raise ValueError("need at least one TenantSpec")
    names = [t.name for t in tenants]
    if len(set(names)) != len(names):
        raise ValueError("tenant names must be unique")
    rng = as_generator(seed)
    raw: list[tuple[float, int | None, int, int, int, int]] = []
    tags: list[str | None] = []
    for ti, spec in enumerate(tenants):
        if spec.workload == "independent":
            arrivals = draw_arrivals(rng, spec.num_requests,
                                     spec.arrival_rate)
            prompts = np.maximum(1, rng.poisson(spec.mean_prompt,
                                                size=spec.num_requests))
            gens = np.maximum(1, rng.poisson(spec.mean_gen,
                                             size=spec.num_requests))
            part = [(float(arrivals[i]), None, 0,
                     int(prompts[i]), int(gens[i]), 0)
                    for i in range(spec.num_requests)]
        else:  # chat
            sessions = max(1, round(spec.num_requests / spec.mean_turns))
            part = _causal_sessions(
                rng,
                session_rate=spec.arrival_rate,
                num_sessions=sessions,
                min_requests=spec.num_requests,
                mean_turns=spec.mean_turns,
                first_prompt_mean=spec.mean_prompt,
                extension_mean=max(1, spec.mean_prompt // 4),
                gen_mean=spec.mean_gen,
                est_prefill_s=0.5,
                est_step_s=0.05,
                mean_think_time=2.0,
                session_base=ti * _SESSION_STRIDE,
            )
            # Per-tenant truncation: keep the earliest num_requests turns.
            part.sort(key=lambda rec: rec[0])
            part = part[:spec.num_requests]
        raw.extend(part)
        tags.extend([spec.name] * len(part))
    return _assemble(raw, tags, num_requests=None, expert_skew=expert_skew)


def tenant_policy(tenants: Sequence[TenantSpec]) -> TenantFairShare:
    """The weighted fair-share admission policy a tenant mix implies
    (weights and slot caps lifted straight off the specs); pass it as
    ``policy=`` to any scheduler-backed entry point."""
    return TenantFairShare(
        weights={t.name: t.weight for t in tenants},
        slot_caps={t.name: t.slot_cap for t in tenants
                   if t.slot_cap is not None},
    )


def tenant_slo_summary(report, trace, tenants: Sequence[TenantSpec]) -> dict:
    """Per-tenant SLO scorecard over a finished replay.

    Returns ``{name: {"p99_ttft_s": ..., "slo_s": ..., "met": ...}}``;
    ``slo_s``/``met`` are ``None`` for tenants without an SLO.
    """
    out: dict[str, dict] = {}
    for spec in tenants:
        p99 = report.tenant_ttft_percentile(trace, spec.name, 99)
        slo = spec.p99_ttft_slo_s
        out[spec.name] = {
            "p99_ttft_s": p99,
            "slo_s": slo,
            "met": None if slo is None else bool(p99 <= slo),
        }
    return out


def strip_prefix_sharing(trace: WorkloadTrace) -> WorkloadTrace:
    """The same trace with every ``shared_prefix_len`` zeroed — the
    sharing-off ablation leg: identical arrivals, prompts, sessions and
    tenants, but every prompt pays full prefill and full KV residency."""
    return WorkloadTrace(
        tuple(dataclasses.replace(r, shared_prefix_len=0)
              for r in trace.requests),
        expert_skew=trace.expert_skew,
    )


#: Scenario registry: name -> generator, for config-driven callers.
SCENARIOS = {
    "chat": chat_scenario,
    "agentic": agentic_scenario,
    "heavy_tailed": heavy_tailed_scenario,
    "multi_tenant": multi_tenant_scenario,
}


def make_scenario(name: str, /, **kwargs) -> WorkloadTrace:
    """Build a registered scenario by name (see :data:`SCENARIOS`)."""
    if name not in SCENARIOS:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}")
    return SCENARIOS[name](**kwargs)
