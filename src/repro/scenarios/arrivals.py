"""Arrival-process synthesis: the shapes requests arrive in.

Extracted from ``engine/serving_sim.py`` so the scenario zoo can build
arbitrary workloads on the same primitives; ``synthesize_trace`` now
delegates here. Every shape draws through a fixed-chunk thinning scheme
(or, for plain Poisson, the historical direct cumsum), so a trace is a
pure function of its seed — moving the code did not move a single draw.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["ARRIVAL_SHAPES", "draw_arrivals", "thinned_arrivals"]

#: Supported ``arrival_shape`` values, in documentation order.
ARRIVAL_SHAPES = ("poisson", "diurnal", "flash_crowd")

# Candidate arrivals per thinning round. Fixed (never adaptive) so the
# accept/reject stream — and therefore the trace — is a pure function of
# the seed, independent of how many rounds the target count takes.
_THINNING_CHUNK = 4096


def thinned_arrivals(
    rng: np.random.Generator,
    num_requests: int,
    rate_of: Callable[[np.ndarray], np.ndarray],
    rate_max: float,
) -> np.ndarray:
    """First ``num_requests`` arrivals of the inhomogeneous Poisson
    process with intensity ``rate_of(t) <= rate_max``, by chunked
    vectorized thinning (Lewis-Shedler): candidates arrive at the
    homogeneous ``rate_max`` and survive with probability
    ``rate_of(t) / rate_max``."""
    kept: list[np.ndarray] = []
    total = 0
    t = 0.0
    while total < num_requests:
        gaps = rng.exponential(1.0 / rate_max, size=_THINNING_CHUNK)
        cand = t + np.cumsum(gaps)
        t = float(cand[-1])
        u = rng.random(size=_THINNING_CHUNK)
        keep = cand[u * rate_max < rate_of(cand)]
        kept.append(keep)
        total += len(keep)
    return np.concatenate(kept)[:num_requests]


def draw_arrivals(
    rng: np.random.Generator,
    num_requests: int,
    arrival_rate: float,
    *,
    arrival_shape: str = "poisson",
    diurnal_amplitude: float = 0.8,
    diurnal_period: float | None = None,
    burst_factor: float = 8.0,
    num_bursts: int = 2,
) -> np.ndarray:
    """Draw ``num_requests`` sorted arrival times under a named shape.

    * ``"poisson"`` — homogeneous Poisson at ``arrival_rate``; the
      historical behavior, bit-for-bit (same rng state, same draws).
    * ``"diurnal"`` — inhomogeneous Poisson with a sinusoidal intensity
      ``arrival_rate * (1 + diurnal_amplitude * sin(2*pi*t / period))``:
      a day/night load cycle. The *mean* rate stays ``arrival_rate``
      (the sine averages out). ``diurnal_period`` defaults to half the
      nominal trace span (two full cycles per trace).
    * ``"flash_crowd"`` — ``arrival_rate`` baseline with ``num_bursts``
      evenly spaced windows at ``burst_factor`` times the base rate
      (each 4% of the nominal span wide): a link-from-the-frontpage
      spike.
    """
    if num_requests < 1 or arrival_rate <= 0:
        raise ValueError("num_requests >= 1 and arrival_rate > 0 required")
    if arrival_shape not in ARRIVAL_SHAPES:
        raise ValueError(
            f"unknown arrival_shape {arrival_shape!r}; "
            f"choose from {ARRIVAL_SHAPES}")
    nominal_span = num_requests / arrival_rate
    if arrival_shape == "poisson":
        # Historical draw order, preserved verbatim: existing seeds must
        # keep producing the same traces.
        gaps = rng.exponential(1.0 / arrival_rate, size=num_requests)
        return np.cumsum(gaps)
    if arrival_shape == "diurnal":
        if not 0.0 <= diurnal_amplitude <= 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1]")
        period = (nominal_span / 2.0 if diurnal_period is None
                  else diurnal_period)
        if period <= 0:
            raise ValueError("diurnal_period must be > 0 when given")
        omega = 2.0 * np.pi / period

        def rate_of(t: np.ndarray) -> np.ndarray:
            return arrival_rate * (1.0 + diurnal_amplitude * np.sin(omega * t))

        return thinned_arrivals(
            rng, num_requests, rate_of,
            arrival_rate * (1.0 + diurnal_amplitude))
    # flash_crowd
    if burst_factor <= 1.0:
        raise ValueError("burst_factor must be > 1")
    if num_bursts < 1:
        raise ValueError("num_bursts must be >= 1")
    centers = np.array([(j + 0.5) / num_bursts * nominal_span
                        for j in range(num_bursts)])
    half_width = 0.02 * nominal_span

    def rate_of(t: np.ndarray) -> np.ndarray:
        in_burst = (np.abs(t[:, None] - centers[None, :])
                    <= half_width).any(axis=1)
        return arrival_rate * np.where(in_burst, burst_factor, 1.0)

    return thinned_arrivals(
        rng, num_requests, rate_of, arrival_rate * burst_factor)
