"""MoE gating: token-to-expert assignment, both formulations of Sec. V-C.

The paper contrasts two implementations of the same gating math:

* the **sparse one-hot** formulation (the PyTorch baseline): build one-hot
  expert masks, cumulative-sum to find per-expert slot positions, and
  dispatch/combine via sparse einsums over mostly-zero tensors — cost
  ``S x E x M x c_e``;
* the **dense mapping-table** formulation (DeepSpeed): keep a
  token-to-expert table, invert it to an expert-to-token table by a scan,
  and move tokens with data-layout copies — cost ``S x M x c_e``.

Both are implemented here (the tables) and in :mod:`repro.model.moe` (the
dispatch), and tested for exact agreement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kernels.functional import softmax

__all__ = [
    "GatingResult",
    "TopKGatingResult",
    "top1_gating",
    "topk_gating",
    "topk_gating_vectorized",
    "expert_capacity",
    "build_expert_to_token_table",
]


def expert_capacity(num_tokens: int, num_experts: int, capacity_factor: float) -> int:
    """Slots per expert: ``ceil(factor * S / E)``, at least 1."""
    if num_tokens < 1 or num_experts < 1:
        raise ValueError("num_tokens and num_experts must be >= 1")
    if capacity_factor <= 0:
        raise ValueError("capacity_factor must be positive")
    return max(1, int(np.ceil(capacity_factor * num_tokens / num_experts)))


@dataclass(frozen=True)
class GatingResult:
    """Top-1 assignment of ``S`` tokens to ``E`` experts with capacity.

    ``token_expert[s]`` is the selected expert, or -1 when the token was
    dropped for capacity (it then bypasses the FFN through the residual
    connection, Switch-Transformer semantics). ``token_slot[s]`` is the
    token's position within its expert's capacity buffer. ``gate_prob``
    is the softmax probability of the selected expert, used to scale the
    expert output.
    """

    token_expert: np.ndarray  # (S,) int, -1 = dropped
    token_slot: np.ndarray  # (S,) int, -1 = dropped
    gate_prob: np.ndarray  # (S,) float
    capacity: int
    num_experts: int

    @property
    def num_tokens(self) -> int:
        """Tokens routed (incl. dropped)."""
        return self.token_expert.shape[0]

    @property
    def dropped(self) -> np.ndarray:
        """Boolean mask of capacity-dropped tokens."""
        return self.token_expert < 0

    def one_hot_dispatch(self) -> np.ndarray:
        """The sparse formulation's ``(S, E, C)`` one-hot dispatch mask —
        the object whose zeros the paper's dense tables eliminate."""
        s, e, c = self.num_tokens, self.num_experts, self.capacity
        mask = np.zeros((s, e, c))
        kept = ~self.dropped
        mask[np.flatnonzero(kept), self.token_expert[kept], self.token_slot[kept]] = 1.0
        return mask


def top1_gating(
    gate_logits: np.ndarray, *, capacity_factor: float = 1.0
) -> GatingResult:
    """Route each token to its argmax expert, dropping beyond capacity.

    Slots are assigned in token order (the deterministic policy both of
    the paper's implementations share), via the cumulative-sum the paper
    describes: the c-th token routed to expert e takes slot c.
    """
    if gate_logits.ndim != 2:
        raise ValueError("gate_logits must be (tokens, experts)")
    s, e = gate_logits.shape
    probs = softmax(gate_logits, axis=-1)
    chosen = probs.argmax(axis=-1)
    gate_prob = probs[np.arange(s), chosen]
    cap = expert_capacity(s, e, capacity_factor)

    # Position of each token within its expert's queue = exclusive cumsum
    # of the one-hot choice along the token axis (Sec. V-C step 2).
    one_hot = np.zeros((s, e), dtype=np.int64)
    one_hot[np.arange(s), chosen] = 1
    position_in_expert = np.cumsum(one_hot, axis=0) - 1
    slot = position_in_expert[np.arange(s), chosen]

    token_expert = np.where(slot < cap, chosen, -1)
    token_slot = np.where(slot < cap, slot, -1)
    return GatingResult(
        token_expert=token_expert,
        token_slot=token_slot,
        gate_prob=gate_prob,
        capacity=cap,
        num_experts=e,
    )


@dataclass(frozen=True)
class TopKGatingResult:
    """Top-k assignment (GShard-style): each token routes to up to ``k``
    experts, with softmax weights renormalized over the selected experts.

    Arrays have shape ``(S, k)``; a slot of -1 marks a dropped (expert,
    token) pair — capacity applies per expert across all k choices.
    """

    token_expert: np.ndarray  # (S, k) int, -1 = dropped
    token_slot: np.ndarray  # (S, k) int, -1 = dropped
    gate_weight: np.ndarray  # (S, k) float, renormalized over kept slots
    capacity: int
    num_experts: int
    k: int

    @property
    def num_tokens(self) -> int:
        """Tokens routed."""
        return self.token_expert.shape[0]

    def kept_pairs(self) -> np.ndarray:
        """Boolean mask over (token, choice) pairs that survived capacity."""
        return self.token_expert >= 0


def topk_gating(
    gate_logits: np.ndarray, k: int, *, capacity_factor: float = 1.0
) -> TopKGatingResult:
    """Route each token to its top-``k`` experts with per-expert capacity.

    Slots are assigned in (token, choice-rank) order; a token whose
    preferred expert is full may still reach its secondary expert. Gate
    weights renormalize over the choices that were kept, so the combined
    expert output is a convex combination (Switch/GShard semantics).
    """
    if gate_logits.ndim != 2:
        raise ValueError("gate_logits must be (tokens, experts)")
    s, e = gate_logits.shape
    if not 1 <= k <= e:
        raise ValueError(f"k must be in [1, {e}]")
    probs = softmax(gate_logits, axis=-1)
    # Top-k experts per token, best first.
    order = np.argsort(-probs, axis=-1, kind="stable")[:, :k]
    chosen_p = np.take_along_axis(probs, order, axis=-1)

    cap = expert_capacity(s, e, capacity_factor * k)
    counts = np.zeros(e, dtype=np.int64)
    token_expert = np.full((s, k), -1, dtype=np.int64)
    token_slot = np.full((s, k), -1, dtype=np.int64)
    for t in range(s):
        for c in range(k):
            ex = order[t, c]
            if counts[ex] < cap:
                token_expert[t, c] = ex
                token_slot[t, c] = counts[ex]
                counts[ex] += 1

    kept = token_expert >= 0
    weight = np.where(kept, chosen_p, 0.0)
    norm = weight.sum(axis=-1, keepdims=True)
    weight = np.divide(weight, norm, out=np.zeros_like(weight), where=norm > 0)
    return TopKGatingResult(
        token_expert=token_expert,
        token_slot=token_slot,
        gate_weight=weight,
        capacity=cap,
        num_experts=e,
        k=k,
    )


def topk_gating_vectorized(
    gate_logits: np.ndarray, k: int, *, capacity_factor: float = 1.0
) -> TopKGatingResult:
    """Vectorized :func:`topk_gating` — identical results, no Python loop.

    The slot a (token, choice) pair receives equals the number of
    *earlier-priority* pairs targeting the same expert, where priority
    orders by (token index, choice rank) — exactly the loop's visit
    order. A stable sort by expert groups the pairs while preserving
    priority order, so each pair's slot is its rank within its group —
    an O(n log n), expert-count-independent scan (the inverse-mapping
    construction Sec. V-C's table-based gating performs on device).
    """
    if gate_logits.ndim != 2:
        raise ValueError("gate_logits must be (tokens, experts)")
    s, e = gate_logits.shape
    if not 1 <= k <= e:
        raise ValueError(f"k must be in [1, {e}]")
    probs = softmax(gate_logits, axis=-1)
    order = np.argsort(-probs, axis=-1, kind="stable")[:, :k]
    chosen_p = np.take_along_axis(probs, order, axis=-1)
    cap = expert_capacity(s, e, capacity_factor * k)

    flat_experts = order.reshape(-1)  # priority order: token-major, then rank
    n = s * k
    by_expert = np.argsort(flat_experts, kind="stable")
    sorted_experts = flat_experts[by_expert]
    new_group = np.empty(n, dtype=bool)
    new_group[0] = True
    np.not_equal(sorted_experts[1:], sorted_experts[:-1], out=new_group[1:])
    group_start = np.maximum.accumulate(
        np.where(new_group, np.arange(n), 0)
    )
    slots_sorted = np.arange(n) - group_start
    flat_slots = np.empty(n, dtype=np.int64)
    flat_slots[by_expert] = slots_sorted
    flat_slots = flat_slots.reshape(s, k)

    kept = flat_slots < cap
    token_expert = np.where(kept, order, -1)
    token_slot = np.where(kept, flat_slots, -1)
    weight = np.where(kept, chosen_p, 0.0)
    norm = weight.sum(axis=-1, keepdims=True)
    weight = np.divide(weight, norm, out=np.zeros_like(weight), where=norm > 0)
    return TopKGatingResult(
        token_expert=token_expert,
        token_slot=token_slot,
        gate_weight=weight,
        capacity=cap,
        num_experts=e,
        k=k,
    )


def build_expert_to_token_table(result: GatingResult) -> list[np.ndarray]:
    """Invert the token-to-expert table (Sec. V-C step 2, optimized path):
    for each expert, the token ids it processes in slot order."""
    tables: list[np.ndarray] = []
    for ex in range(result.num_experts):
        tokens = np.flatnonzero(result.token_expert == ex)
        order = np.argsort(result.token_slot[tokens], kind="stable")
        tables.append(tokens[order])
    return tables
