"""Model zoo (Tables I & II) and functional GPT / MoE implementations."""

from .config import (
    BERT_ZOO,
    DENSE_ZOO,
    MOE_PARALLELISM,
    MOE_ZOO,
    ModelConfig,
    MoESpec,
    get_model,
    scaled_config,
)
from .config import MoEParallelism
from .checkpoint import load_checkpoint, save_checkpoint
from .dense import DenseTransformer, LayerWeights, init_layer_weights
from .encoder import EncoderTransformer
from .gating import (
    GatingResult,
    TopKGatingResult,
    build_expert_to_token_table,
    expert_capacity,
    top1_gating,
    topk_gating,
    topk_gating_vectorized,
)
from .kvcache import HostOffloadKVCache, KVCache
from .moe import MoELayer
from .paged_kv import BlockAllocator, OutOfBlocks, PagedKVCache, blocks_needed
from .ragged import RaggedDecoder
from .sampling import SamplingConfig, sample_next_token

__all__ = [
    "BERT_ZOO",
    "DENSE_ZOO",
    "DenseTransformer",
    "EncoderTransformer",
    "HostOffloadKVCache",
    "GatingResult",
    "KVCache",
    "LayerWeights",
    "MOE_PARALLELISM",
    "MOE_ZOO",
    "MoELayer",
    "BlockAllocator",
    "OutOfBlocks",
    "PagedKVCache",
    "blocks_needed",
    "RaggedDecoder",
    "SamplingConfig",
    "sample_next_token",
    "MoEParallelism",
    "MoESpec",
    "ModelConfig",
    "TopKGatingResult",
    "build_expert_to_token_table",
    "expert_capacity",
    "get_model",
    "scaled_config",
    "init_layer_weights",
    "load_checkpoint",
    "save_checkpoint",
    "top1_gating",
    "topk_gating",
    "topk_gating_vectorized",
]
