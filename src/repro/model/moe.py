"""Mixture-of-Experts layer with both dispatch formulations of Sec. V-C.

``MoELayer.forward_sparse_einsum`` is the baseline: GShard-style one-hot
dispatch/combine einsums whose complexity is ``S x E x M x c_e`` (every
token multiplies against every expert's mask, mostly zeros).

``MoELayer.forward_dense_table`` is the paper's optimization: build the
expert-to-token table and move tokens with gather/scatter copies —
``S x M x c_e`` work and no zero arithmetic.

Both produce identical outputs (tested), which is the correctness claim
behind the paper's reported 6x MoE-kernel latency reduction.
"""

from __future__ import annotations

import numpy as np

from ..kernels.functional import gelu
from ..rng import SeedLike, as_generator
from .gating import (
    GatingResult,
    TopKGatingResult,
    build_expert_to_token_table,
    top1_gating,
    topk_gating,
)

__all__ = ["MoELayer"]


class MoELayer:
    """Top-1 gated position-wise MoE FFN block."""

    def __init__(
        self,
        hidden: int,
        num_experts: int,
        *,
        ffn_mult: int = 4,
        capacity_factor: float = 1.0,
        seed: SeedLike = 0,
        dtype=np.float64,
    ) -> None:
        if hidden < 1 or num_experts < 1:
            raise ValueError("hidden and num_experts must be >= 1")
        rng = as_generator(seed)
        s = 0.02
        m = ffn_mult * hidden
        self.hidden = hidden
        self.num_experts = num_experts
        self.capacity_factor = capacity_factor
        self.w_gate = (rng.standard_normal((hidden, num_experts)) * s).astype(dtype)
        self.w_fc = (rng.standard_normal((num_experts, hidden, m)) * s).astype(dtype)
        self.b_fc = np.zeros((num_experts, m), dtype=dtype)
        self.w_proj = (rng.standard_normal((num_experts, m, hidden)) * s).astype(dtype)
        self.b_proj = np.zeros((num_experts, hidden), dtype=dtype)

    # -- expert math --------------------------------------------------------

    def expert_ffn(self, expert: int, tokens: np.ndarray) -> np.ndarray:
        """Apply expert ``expert``'s FFN to ``(n, hidden)`` tokens."""
        if not 0 <= expert < self.num_experts:
            raise IndexError(f"expert {expert} out of range")
        h = gelu(tokens @ self.w_fc[expert] + self.b_fc[expert])
        return h @ self.w_proj[expert] + self.b_proj[expert]

    def route(self, x2d: np.ndarray) -> GatingResult:
        """Gate ``(S, hidden)`` tokens."""
        return top1_gating(x2d @ self.w_gate, capacity_factor=self.capacity_factor)

    # -- the two dispatch formulations ---------------------------------------

    def forward_dense_table(self, x: np.ndarray) -> np.ndarray:
        """Optimized path: mapping tables + gather/scatter data movement."""
        x2d, unflatten = _flatten(x)
        gating = self.route(x2d)
        out = np.zeros_like(x2d)  # dropped tokens contribute zero (residual
        # connection outside this block carries them through unchanged)
        for expert, token_ids in enumerate(build_expert_to_token_table(gating)):
            if token_ids.size == 0:
                continue
            y = self.expert_ffn(expert, x2d[token_ids])  # gather
            out[token_ids] = y * gating.gate_prob[token_ids, None]  # scatter
        return unflatten(out)

    def forward_sparse_einsum(self, x: np.ndarray) -> np.ndarray:
        """Baseline path: one-hot masks and sparse einsums (GShard-style)."""
        x2d, unflatten = _flatten(x)
        gating = self.route(x2d)
        dispatch = gating.one_hot_dispatch()  # (S, E, C)
        combine = dispatch * gating.gate_prob[:, None, None]
        # S x E x M x C multiply-adds, mostly with zeros — the waste the
        # paper's Sec. V-C quantifies.
        expert_inputs = np.einsum("sec,sm->ecm", dispatch, x2d)
        expert_outputs = np.stack(
            [self.expert_ffn(e, expert_inputs[e]) for e in range(self.num_experts)]
        )
        out = np.einsum("sec,ecm->sm", combine, expert_outputs)
        return unflatten(out)

    # -- top-k routing (GShard-style) ----------------------------------------

    def route_topk(self, x2d: np.ndarray, k: int) -> TopKGatingResult:
        """Top-``k`` gate ``(S, hidden)`` tokens."""
        return topk_gating(
            x2d @ self.w_gate, k, capacity_factor=self.capacity_factor
        )

    def forward_topk(self, x: np.ndarray, k: int = 2) -> np.ndarray:
        """Top-k MoE with dense-table dispatch: each token's output is the
        gate-weighted combination of its surviving experts."""
        x2d, unflatten = _flatten(x)
        gating = self.route_topk(x2d, k)
        out = np.zeros_like(x2d)
        for choice in range(k):
            experts = gating.token_expert[:, choice]
            weights = gating.gate_weight[:, choice]
            for ex in np.unique(experts[experts >= 0]):
                sel = np.flatnonzero(experts == ex)
                y = self.expert_ffn(int(ex), x2d[sel])
                out[sel] += y * weights[sel, None]
        return unflatten(out)

    def forward_topk_reference(self, x: np.ndarray, k: int = 2) -> np.ndarray:
        """Per-token loop reference for top-k routing (O(S*k) expert calls;
        slow but unambiguous)."""
        x2d, unflatten = _flatten(x)
        gating = self.route_topk(x2d, k)
        out = np.zeros_like(x2d)
        for t in range(x2d.shape[0]):
            for c in range(k):
                ex = gating.token_expert[t, c]
                if ex < 0:
                    continue
                y = self.expert_ffn(int(ex), x2d[t : t + 1])
                out[t] += gating.gate_weight[t, c] * y[0]
        return unflatten(out)

    # Default callable form (used when installed into DenseTransformer).
    __call__ = forward_dense_table


def _flatten(x: np.ndarray):
    """View ``(..., hidden)`` as ``(S, hidden)`` plus an inverse."""
    if x.ndim < 2:
        raise ValueError("input must have a hidden axis")
    shape = x.shape
    x2d = x.reshape(-1, shape[-1])

    def unflatten(y: np.ndarray) -> np.ndarray:
        return y.reshape(shape)

    return x2d, unflatten
