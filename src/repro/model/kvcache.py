"""KV cache: the per-layer key/value store of autoregressive decoding.

Sec. IV-B: generation caches each layer's keys and values so every new
token only computes attention against stored activations instead of
re-running the whole prefix. The cache footprint scales with concurrent
sequences and becomes the capacity limiter for large models — which is
what the activation-offloading of Sec. IV-C2 relieves.

This is the functional store; the offload *scheduling* (what moves over
PCIe when) lives in :mod:`repro.engine.offload`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["KVCache", "HostOffloadKVCache"]


class KVCache:
    """Per-layer growing K/V tensors of shape (batch, heads, seq, head_dim)."""

    def __init__(self, num_layers: int) -> None:
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        self.num_layers = num_layers
        self._k: list[np.ndarray | None] = [None] * num_layers
        self._v: list[np.ndarray | None] = [None] * num_layers

    def append(self, layer: int, k: np.ndarray, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Append new K/V for ``layer`` and return the full cached tensors."""
        self._check_layer(layer)
        if k.shape != v.shape:
            raise ValueError("k and v must have identical shapes")
        if k.ndim != 4:
            raise ValueError("expected (batch, heads, seq, head_dim) tensors")
        if self._k[layer] is None:
            self._k[layer] = k.copy()
            self._v[layer] = v.copy()
        else:
            prev_k = self._k[layer]
            if prev_k.shape[0] != k.shape[0] or prev_k.shape[1] != k.shape[1]:
                raise ValueError("batch/heads mismatch with cached tensors")
            self._k[layer] = np.concatenate([prev_k, k], axis=2)
            self._v[layer] = np.concatenate([self._v[layer], v], axis=2)
        return self._k[layer], self._v[layer]

    def get(self, layer: int) -> tuple[np.ndarray | None, np.ndarray | None]:
        """Current cached K/V for ``layer`` (None before first append)."""
        self._check_layer(layer)
        return self._k[layer], self._v[layer]

    def seq_len(self, layer: int = 0) -> int:
        """Cached sequence length (0 when empty)."""
        self._check_layer(layer)
        k = self._k[layer]
        return 0 if k is None else k.shape[2]

    @property
    def nbytes(self) -> int:
        """Total cache footprint — the quantity Sec. IV-C2 offloads."""
        total = 0
        for k, v in zip(self._k, self._v):
            if k is not None:
                total += k.nbytes + v.nbytes
        return total

    def trim(self, max_len: int) -> None:
        """Drop entries beyond ``max_len`` positions (sliding-window use)."""
        if max_len < 0:
            raise ValueError("max_len must be >= 0")
        for i in range(self.num_layers):
            if self._k[i] is not None and self._k[i].shape[2] > max_len:
                self._k[i] = self._k[i][:, :, :max_len].copy()
                self._v[i] = self._v[i][:, :, :max_len].copy()

    def free(self) -> None:
        """Drop every cached tensor — the uniform retirement hook shared
        with :class:`~repro.model.paged_kv.PagedKVCache` so engines can
        release any cache flavor the same way."""
        self._k = [None] * self.num_layers
        self._v = [None] * self.num_layers

    def _check_layer(self, layer: int) -> None:
        if not 0 <= layer < self.num_layers:
            raise IndexError(f"layer {layer} out of range [0, {self.num_layers})")


class HostOffloadKVCache(KVCache):
    """A KV cache whose per-layer tensors can park in host memory.

    Sec. IV-C2: cached activations have a predictable reuse pattern — a
    layer's K/V is idle until that layer runs for the next token — so
    they can live in DRAM between uses. This class makes the mechanism
    functional: :meth:`offload` moves a layer's tensors to the "host"
    side, any access transparently pages them back, and the byte
    counters expose the PCIe traffic the performance model prices
    (:func:`repro.engine.offload.kv_offload_stall_per_step`).
    """

    def __init__(self, num_layers: int) -> None:
        super().__init__(num_layers)
        self._host: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self.bytes_offloaded = 0
        self.bytes_fetched = 0

    def offload(self, layer: int) -> None:
        """Move ``layer``'s K/V to host memory (no-op when empty/already)."""
        self._check_layer(layer)
        if layer in self._host or self._k[layer] is None:
            return
        k, v = self._k[layer], self._v[layer]
        self._host[layer] = (k, v)
        self.bytes_offloaded += k.nbytes + v.nbytes
        self._k[layer] = None
        self._v[layer] = None

    def is_offloaded(self, layer: int) -> bool:
        """True when ``layer``'s tensors currently rest on the host."""
        self._check_layer(layer)
        return layer in self._host

    def _page_in(self, layer: int) -> None:
        if layer in self._host:
            k, v = self._host.pop(layer)
            self.bytes_fetched += k.nbytes + v.nbytes
            self._k[layer] = k
            self._v[layer] = v

    def append(self, layer: int, k: np.ndarray, v: np.ndarray):
        """Page in if needed, then append (device-resident semantics)."""
        self._page_in(layer)
        return super().append(layer, k, v)

    def get(self, layer: int):
        """Page in if needed, then return the tensors."""
        self._page_in(layer)
        return super().get(layer)

    def seq_len(self, layer: int = 0) -> int:
        """Cached length — answerable without paging in."""
        self._check_layer(layer)
        if layer in self._host:
            return self._host[layer][0].shape[2]
        return super().seq_len(layer)

    def free(self) -> None:
        """Drop device *and* host copies (traffic counters survive so a
        retiring engine can still account the request's PCIe bytes)."""
        super().free()
        self._host.clear()

    @property
    def device_nbytes(self) -> int:
        """Bytes currently resident on the device."""
        return super().nbytes

    @property
    def nbytes(self) -> int:
        """Total cache footprint across device and host."""
        host = sum(k.nbytes + v.nbytes for k, v in self._host.values())
        return super().nbytes + host
