"""Functional encoder transformer (BERT-class models, Fig. 12).

The paper's kernels "support encoder, decoder, and sparsely gated MoE
models" (Sec. VII-E6); the E.T. comparison runs on DistilBERT/BERT.
An encoder block is the same op chain as a decoder block with
bidirectional (non-causal) attention and no KV cache — which is exactly
how this class composes the shared functional kernels.
"""

from __future__ import annotations

import numpy as np

from ..kernels.functional import (
    bias_residual,
    gelu,
    layer_norm,
    linear,
    merge_heads,
    scaled_dot_product_attention,
    split_heads,
)
from ..rng import SeedLike, as_generator
from .config import ModelConfig
from .dense import LayerWeights, init_layer_weights

__all__ = ["EncoderTransformer"]


class EncoderTransformer:
    """A runnable BERT-style bidirectional encoder."""

    def __init__(self, config: ModelConfig, *, seed: SeedLike = 0,
                 dtype=np.float64) -> None:
        if config.decoder:
            raise ValueError(
                f"{config.name} is a decoder config; EncoderTransformer "
                "expects decoder=False"
            )
        self.config = config
        rng = as_generator(seed)
        h = config.hidden
        self.wte = (rng.standard_normal((config.vocab, h)) * 0.02).astype(dtype)
        self.wpe = (rng.standard_normal((config.max_seq, h)) * 0.01).astype(dtype)
        self.layers: list[LayerWeights] = [
            init_layer_weights(h, config.ffn_mult, rng, dtype)
            for _ in range(config.layers)
        ]
        self.lnf_g = np.ones(h, dtype=dtype)
        self.lnf_b = np.zeros(h, dtype=dtype)

    def encoder_block(
        self, x: np.ndarray, lw: LayerWeights, key_mask: np.ndarray | None
    ) -> np.ndarray:
        """One block: bidirectional attention + FFN, pre-LN residuals."""
        heads = self.config.heads
        qkv = linear(layer_norm(x, lw.ln1_g, lw.ln1_b), lw.w_qkv, lw.b_qkv)
        q, k, v = (split_heads(t, heads) for t in np.split(qkv, 3, axis=-1))
        ctx = scaled_dot_product_attention(q, k, v, causal=False,
                                           key_mask=key_mask)
        x = bias_residual(linear(merge_heads(ctx), lw.w_out), lw.b_out, x)
        normed = layer_norm(x, lw.ln2_g, lw.ln2_b)
        ffn = linear(gelu(linear(normed, lw.w_fc, lw.b_fc)), lw.w_proj)
        return x + ffn + lw.b_proj

    def encode(
        self, token_ids: np.ndarray, attention_mask: np.ndarray | None = None
    ) -> np.ndarray:
        """Contextual embeddings ``(batch, seq, hidden)``.

        ``attention_mask`` is an optional ``(batch, seq)`` boolean array
        marking real (non-padding) tokens; padded positions neither give
        nor (in pooling) receive contribution.
        """
        token_ids = np.atleast_2d(token_ids)
        if token_ids.max(initial=0) >= self.config.vocab or token_ids.min(initial=0) < 0:
            raise ValueError("token id out of vocabulary range")
        if token_ids.shape[1] > self.config.max_seq:
            raise ValueError("sequence exceeds max_seq")
        if attention_mask is not None and attention_mask.shape != token_ids.shape:
            raise ValueError("attention_mask must match token_ids shape")
        x = self.wte[token_ids] + self.wpe[: token_ids.shape[1]]
        for lw in self.layers:
            x = self.encoder_block(x, lw, attention_mask)
        return layer_norm(x, self.lnf_g, self.lnf_b)

    def pooled(
        self, token_ids: np.ndarray, attention_mask: np.ndarray | None = None
    ) -> np.ndarray:
        """Mean-pooled sequence embedding ``(batch, hidden)`` (mask-aware)."""
        out = self.encode(token_ids, attention_mask)
        if attention_mask is None:
            return out.mean(axis=1)
        w = attention_mask.astype(out.dtype)
        denom = np.maximum(w.sum(axis=1, keepdims=True), 1.0)
        return (out * w[:, :, None]).sum(axis=1) / denom
