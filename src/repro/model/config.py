"""Model configurations: the dense zoo of Table I and the sparse (MoE)
zoo of Table II.

The dense parameter count follows the standard GPT accounting
``12 * layers * hidden^2`` for transformer blocks plus embeddings; the
paper's Table I model sizes all match it to within rounding. For the MoE
zoo the architecture columns (layers, hidden, experts) do not decompose
exactly to the listed totals (the original models add gating/shared
parameters we cannot see), so each entry also records the paper's listed
total, and tests assert our architectural estimate is consistent with it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.specs import DType

__all__ = [
    "MoESpec",
    "ModelConfig",
    "MoEParallelism",
    "DENSE_ZOO",
    "MOE_ZOO",
    "MOE_PARALLELISM",
    "BERT_ZOO",
    "get_model",
    "scaled_config",
]


@dataclass(frozen=True)
class MoESpec:
    """Mixture-of-Experts structure (Sec. II-b).

    ``every`` = one MoE layer per ``every`` transformer layers (DeepSpeed
    MoE models replace every other FFN). ``top_k`` experts process each
    token; ``capacity_factor`` bounds tokens per expert.
    """

    num_experts: int
    every: int = 2
    top_k: int = 1
    capacity_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.num_experts < 1 or self.every < 1 or self.top_k < 1:
            raise ValueError("num_experts, every and top_k must be >= 1")
        if self.top_k > self.num_experts:
            raise ValueError("top_k cannot exceed num_experts")
        if self.capacity_factor <= 0:
            raise ValueError("capacity_factor must be positive")


@dataclass(frozen=True)
class ModelConfig:
    """Architecture of one GPT-style transformer (decoder unless noted)."""

    name: str
    hidden: int
    layers: int
    heads: int
    vocab: int = 51200
    max_seq: int = 2048
    ffn_mult: int = 4
    moe: MoESpec | None = None
    decoder: bool = True
    listed_params: float | None = None  # paper-reported size, when given
    pos_encoding: str = "learned"  # "learned" (GPT-2/3) or "rotary" (J/NeoX)

    def __post_init__(self) -> None:
        if self.hidden % self.heads:
            raise ValueError(f"{self.name}: hidden must divide into heads")
        if min(self.hidden, self.layers, self.heads, self.vocab) < 1:
            raise ValueError(f"{self.name}: dimensions must be positive")
        if self.pos_encoding not in ("learned", "rotary"):
            raise ValueError(f"{self.name}: unknown pos_encoding "
                             f"{self.pos_encoding!r}")
        if self.pos_encoding == "rotary" and (self.hidden // self.heads) % 2:
            raise ValueError(f"{self.name}: rotary needs an even head_dim")

    # -- parameter accounting ------------------------------------------------

    @property
    def head_dim(self) -> int:
        """Per-head feature width."""
        return self.hidden // self.heads

    @property
    def num_moe_layers(self) -> int:
        """How many layers carry an expert block."""
        return self.layers // self.moe.every if self.moe else 0

    @property
    def params_per_dense_layer(self) -> float:
        """Transformer-block parameters: attention 4h^2 + FFN 8h^2/4*mult."""
        attn = 4 * self.hidden**2
        ffn = 2 * self.ffn_mult * self.hidden**2
        return attn + ffn

    @property
    def params_per_expert(self) -> float:
        """One expert's FFN parameters."""
        return 2 * self.ffn_mult * self.hidden**2

    @property
    def embedding_params(self) -> float:
        """Token + position embeddings (LM head ties the token table)."""
        return (self.vocab + self.max_seq) * self.hidden

    @property
    def base_params(self) -> float:
        """Non-expert parameters (what data parallelism replicates,
        Sec. V-A)."""
        return self.layers * self.params_per_dense_layer + self.embedding_params

    @property
    def expert_params(self) -> float:
        """All expert parameters across all MoE layers."""
        if not self.moe:
            return 0.0
        return self.num_moe_layers * self.moe.num_experts * self.params_per_expert

    @property
    def total_params(self) -> float:
        """Architectural parameter estimate."""
        return self.base_params + self.expert_params

    def param_bytes(self, dtype: DType = DType.FP16) -> float:
        """Model footprint at rest in ``dtype``."""
        return self.total_params * dtype.itemsize

    def layer_weight_bytes(self, dtype: DType = DType.FP16) -> float:
        """Weights of one dense transformer layer (ZeRO-Inference streams
        the model at this granularity, Sec. VI-A)."""
        return self.params_per_dense_layer * dtype.itemsize

    def kv_bytes_per_token(self, dtype: DType = DType.FP16) -> float:
        """KV-cache bytes one token adds across all layers (Sec. IV-B)."""
        return 2 * self.layers * self.hidden * dtype.itemsize

    def flops_per_token(self, kv_len: int = 1) -> float:
        """Forward flops for one token (dense path + attention over
        ``kv_len`` cached positions)."""
        gemm = 2 * self.layers * self.params_per_dense_layer
        attn = 4 * self.layers * kv_len * self.hidden
        return gemm + attn


def _d(name, hidden, layers, heads, **kw) -> ModelConfig:
    return ModelConfig(name=name, hidden=hidden, layers=layers, heads=heads, **kw)


# --------------------------------------------------------------------------
# Table I: dense models.
# --------------------------------------------------------------------------

DENSE_ZOO = {
    cfg.name: cfg
    for cfg in (
        _d("gpt2-1.5b", 1600, 48, 25, listed_params=1.5e9),
        _d("gpt-neo-2.7b", 2560, 32, 20, listed_params=2.7e9),
        _d("gpt-j-6b", 4096, 28, 32, listed_params=6e9,
           pos_encoding="rotary"),
        _d("gpt-13b", 5120, 40, 40, listed_params=13e9),
        _d("gpt-neox-20b", 6144, 44, 64, listed_params=20e9,
           pos_encoding="rotary"),
        _d("gpt-50b", 8192, 62, 64, listed_params=50e9),
        _d("gpt-87b", 12288, 48, 96, listed_params=87e9),
        _d("lm-175b", 12288, 96, 96, listed_params=175e9),
        _d("lm-530b", 20480, 105, 128, listed_params=530e9),
    )
}

# --------------------------------------------------------------------------
# Table II: sparse (MoE) models, with their evaluation parallelism.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class MoEParallelism:
    """Table II deployment: MP (tensor), EP (expert), expert-slicing."""

    mp_degree: int
    ep_degree: int
    expert_slicing: int
    num_gpus: int


MOE_ZOO = {
    cfg.name: cfg
    for cfg in (
        _d("1.3b-moe-128", 2048, 24, 16, moe=MoESpec(128), listed_params=52e9),
        _d("2.4b-moe-128", 3584, 16, 28, moe=MoESpec(128), listed_params=107.7e9),
        _d("8b-moe-128", 4096, 30, 32, moe=MoESpec(128), listed_params=349.0e9),
        _d("24b-moe-128", 8192, 40, 64, moe=MoESpec(128), listed_params=1064.9e9),
        _d("47b-moe-128", 8192, 58, 64, moe=MoESpec(128), listed_params=2024.0e9),
    )
}

MOE_PARALLELISM = {
    "1.3b-moe-128": MoEParallelism(1, 128, 1, 128),
    "2.4b-moe-128": MoEParallelism(1, 128, 1, 128),
    "8b-moe-128": MoEParallelism(4, 128, 1, 128),
    "24b-moe-128": MoEParallelism(8, 128, 2, 256),
    "47b-moe-128": MoEParallelism(8, 128, 2, 256),
}

# --------------------------------------------------------------------------
# Encoder models for the E.T. comparison (Fig. 12).
# --------------------------------------------------------------------------

BERT_ZOO = {
    cfg.name: cfg
    for cfg in (
        _d("distilbert", 768, 6, 12, vocab=30522, max_seq=512, decoder=False,
           listed_params=66e6),
        _d("bert-base", 768, 12, 12, vocab=30522, max_seq=512, decoder=False,
           listed_params=110e6),
        _d("bert-large", 1024, 24, 16, vocab=30522, max_seq=512, decoder=False,
           listed_params=340e6),
    )
}


def scaled_config(
    target_params: float,
    *,
    name: str | None = None,
    aspect: float = 128.0,
    head_dim: int = 128,
    vocab: int = 51200,
    moe: MoESpec | None = None,
) -> ModelConfig:
    """Synthesize a GPT-family architecture for a parameter budget.

    Follows the empirical shape of Table I: depth and width grow together
    with ``hidden ~ aspect * layers`` (GPT-3 style aspect ratios), hidden
    rounded to a multiple of ``head_dim``. Useful for exploring "what
    would an X-billion model cost on this cluster" beyond the zoo.
    """
    if target_params <= 0:
        raise ValueError("target_params must be positive")
    if aspect <= 0 or head_dim < 1:
        raise ValueError("aspect and head_dim must be positive")
    # params ~ 12 * L * h^2 with h = aspect * L  =>  L = (P / (12 a^2))^(1/3)
    layers = max(1, round((target_params / (12.0 * aspect**2)) ** (1.0 / 3.0)))
    # Round the head count to a multiple of 4 so tensor parallelism has
    # room (Table I's models all satisfy this except GPT-2's 25 heads).
    heads = max(4, int(round(aspect * layers / head_dim / 4.0)) * 4)
    hidden = heads * head_dim
    cfg = ModelConfig(
        name=name or f"gpt-{target_params / 1e9:.3g}b-synth",
        hidden=hidden,
        layers=layers,
        heads=heads,
        vocab=vocab,
        moe=moe,
        listed_params=target_params,
    )
    return cfg


def get_model(name: str) -> ModelConfig:
    """Look up a model in any zoo by name."""
    for zoo in (DENSE_ZOO, MOE_ZOO, BERT_ZOO):
        if name in zoo:
            return zoo[name]
    known = sorted(list(DENSE_ZOO) + list(MOE_ZOO) + list(BERT_ZOO))
    raise KeyError(f"unknown model {name!r}; known: {', '.join(known)}")
