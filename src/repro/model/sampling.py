"""Token sampling strategies for generation.

Greedy decoding is what the equivalence tests pin down (deterministic);
production engines also sample. These are the standard strategies —
temperature, top-k, nucleus (top-p) — implemented deterministically
against a caller-supplied generator so distributed and local runs can be
compared seed-for-seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kernels.functional import softmax

__all__ = ["SamplingConfig", "sample_next_token"]


@dataclass(frozen=True)
class SamplingConfig:
    """Decode-time sampling policy.

    ``temperature=0`` (or ``greedy=True``) selects argmax; ``top_k`` and
    ``top_p`` restrict the candidate set before renormalizing.
    """

    temperature: float = 1.0
    top_k: int | None = None
    top_p: float | None = None
    greedy: bool = False

    def __post_init__(self) -> None:
        if self.temperature < 0:
            raise ValueError("temperature must be >= 0")
        if self.top_k is not None and self.top_k < 1:
            raise ValueError("top_k must be >= 1")
        if self.top_p is not None and not 0 < self.top_p <= 1:
            raise ValueError("top_p must lie in (0, 1]")


def _restrict_top_k(probs: np.ndarray, k: int) -> np.ndarray:
    if k >= probs.shape[-1]:
        return probs
    kept = np.argsort(-probs, axis=-1)[:, :k]
    out = np.zeros_like(probs)
    rows = np.arange(probs.shape[0])[:, None]
    out[rows, kept] = probs[rows, kept]
    return out


def _restrict_top_p(probs: np.ndarray, p: float) -> np.ndarray:
    order = np.argsort(-probs, axis=-1)
    sorted_p = np.take_along_axis(probs, order, axis=-1)
    cum = np.cumsum(sorted_p, axis=-1)
    # Keep the smallest prefix whose mass reaches p (always >= 1 token).
    keep_sorted = cum - sorted_p < p
    keep_sorted[:, 0] = True
    out = np.zeros_like(probs)
    rows = np.arange(probs.shape[0])[:, None]
    out[rows, order] = np.where(keep_sorted, sorted_p, 0.0)
    return out


def sample_next_token(
    logits: np.ndarray,
    config: SamplingConfig,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Sample one token id per row of ``(batch, vocab)`` logits."""
    logits = np.atleast_2d(logits)
    if logits.ndim != 2:
        raise ValueError("logits must be (batch, vocab)")
    if config.greedy or config.temperature == 0:
        return logits.argmax(axis=-1)
    if rng is None:
        raise ValueError("stochastic sampling needs an rng")
    probs = softmax(logits / config.temperature, axis=-1)
    if config.top_k is not None:
        probs = _restrict_top_k(probs, config.top_k)
    if config.top_p is not None:
        probs = _restrict_top_p(probs, config.top_p)
    norm = probs.sum(axis=-1, keepdims=True)
    probs = probs / norm
    # Inverse-CDF sampling, one uniform draw per row (deterministic order).
    u = rng.random(size=(logits.shape[0], 1))
    cdf = np.cumsum(probs, axis=-1)
    return (cdf < u).sum(axis=-1)
