"""Sharded on-disk checkpoints: the layer-granular weight store on real
storage.

ZeRO-Inference keeps weights on DRAM/NVMe and streams layers in
(Sec. VI-A); the natural at-rest format is one file per layer so a
streaming executor (or a pinned-weights one) can read exactly what it
needs. This module saves/loads :class:`DenseTransformer` weights as a
directory of ``.npz`` shards plus embeddings, with integrity checks —
giving the repo a real serve-from-disk path, not just an in-memory
simulation of one.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .config import ModelConfig, MoESpec
from .dense import DenseTransformer, LayerWeights

__all__ = ["save_checkpoint", "load_checkpoint", "checkpoint_layer_file"]

_MANIFEST = "manifest.json"
_LAYER_FIELDS = list(LayerWeights.__dataclass_fields__)


def checkpoint_layer_file(directory: Path | str, layer: int) -> Path:
    """Path of one layer's shard inside a checkpoint directory."""
    return Path(directory) / f"layer_{layer:04d}.npz"


def save_checkpoint(model: DenseTransformer, directory: Path | str) -> Path:
    """Write ``model`` as a sharded checkpoint; returns the directory."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    cfg = model.config
    manifest = {
        "format": "repro-sharded-v1",
        "config": {
            "name": cfg.name,
            "hidden": cfg.hidden,
            "layers": cfg.layers,
            "heads": cfg.heads,
            "vocab": cfg.vocab,
            "max_seq": cfg.max_seq,
            "ffn_mult": cfg.ffn_mult,
            "moe_experts": cfg.moe.num_experts if cfg.moe else None,
            "pos_encoding": cfg.pos_encoding,
        },
        "dtype": str(np.dtype(model.dtype)),
        "layer_fields": _LAYER_FIELDS,
    }
    (directory / _MANIFEST).write_text(json.dumps(manifest, indent=2))
    np.savez(
        directory / "embeddings.npz",
        wte=model.wte,
        wpe=model.wpe,
        lnf_g=model.lnf_g,
        lnf_b=model.lnf_b,
    )
    for i, lw in enumerate(model.layers):
        np.savez(
            checkpoint_layer_file(directory, i),
            **{f: getattr(lw, f) for f in _LAYER_FIELDS},
        )
    return directory


def load_checkpoint(directory: Path | str) -> DenseTransformer:
    """Reconstruct a :class:`DenseTransformer` from a sharded checkpoint."""
    directory = Path(directory)
    manifest_path = directory / _MANIFEST
    if not manifest_path.exists():
        raise FileNotFoundError(f"no checkpoint manifest in {directory}")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format") != "repro-sharded-v1":
        raise ValueError(f"unknown checkpoint format {manifest.get('format')!r}")
    c = manifest["config"]
    cfg = ModelConfig(
        name=c["name"],
        hidden=c["hidden"],
        layers=c["layers"],
        heads=c["heads"],
        vocab=c["vocab"],
        max_seq=c["max_seq"],
        ffn_mult=c["ffn_mult"],
        moe=MoESpec(c["moe_experts"]) if c.get("moe_experts") else None,
        pos_encoding=c.get("pos_encoding", "learned"),
    )
    dtype = np.dtype(manifest["dtype"]).type
    model = DenseTransformer(cfg, seed=0, dtype=dtype)

    emb = np.load(directory / "embeddings.npz")
    model.wte = emb["wte"]
    model.wpe = emb["wpe"]
    model.lnf_g = emb["lnf_g"]
    model.lnf_b = emb["lnf_b"]

    for i in range(cfg.layers):
        path = checkpoint_layer_file(directory, i)
        if not path.exists():
            raise FileNotFoundError(f"missing layer shard {path.name}")
        shard = np.load(path)
        fields = {}
        for f in manifest["layer_fields"]:
            if f not in shard:
                raise ValueError(f"layer shard {path.name} missing field {f!r}")
            fields[f] = shard[f]
        model.layers[i] = LayerWeights(**fields)
    return model
