"""Ragged batched decoding: mixed-length prompts in one forward pass.

A serving engine rarely sees equal-length prompts. The standard trick is
to right-pad the batch, carry a validity mask over the padded KV slots,
and give each row its own position timeline — then decode all rows one
token per step, regardless of how their prompt lengths differ.

:class:`RaggedDecoder` implements this over the functional model and is
tested for *exact* agreement with running each prompt alone: padding,
masking and per-row positions must be invisible in the outputs. It works
for both learned and rotary position encodings (learned embeddings index
per-row positions; RoPE rotates at per-row positions).
"""

from __future__ import annotations

import numpy as np

from ..kernels.functional import (
    apply_rotary,
    bias_residual,
    layer_norm,
    linear,
    merge_heads,
    scaled_dot_product_attention,
    split_heads,
)
from .dense import DenseTransformer
from .kvcache import KVCache

__all__ = ["RaggedDecoder"]


class RaggedDecoder:
    """Stateful batched decoder over right-padded, masked sequences."""

    def __init__(self, model: DenseTransformer) -> None:
        self.model = model
        self._cache: KVCache | None = None
        self._key_valid: np.ndarray | None = None  # (b, T) over cached slots
        self._key_pos: np.ndarray | None = None  # (b, T) per-row positions
        self._row_len: np.ndarray | None = None  # (b,) real tokens so far

    @property
    def batch(self) -> int:
        """Rows being decoded (0 before prefill)."""
        return 0 if self._row_len is None else self._row_len.shape[0]

    # -- internals -----------------------------------------------------------

    def _attention(self, x, lw, layer_idx, positions):
        cfg = self.model.config
        qkv = linear(layer_norm(x, lw.ln1_g, lw.ln1_b), lw.w_qkv, lw.b_qkv)
        q, k, v = (split_heads(t, cfg.heads) for t in np.split(qkv, 3, axis=-1))
        if cfg.pos_encoding == "rotary":
            q = apply_rotary(q, positions=positions)
            k = apply_rotary(k, positions=positions)
        k, v = self._cache.append(layer_idx, k, v)
        ctx = scaled_dot_product_attention(
            q, k, v,
            causal=True,
            key_mask=self._key_valid,
            query_positions=positions,
            key_positions=self._key_pos,
        )
        proj = linear(merge_heads(ctx), lw.w_out)
        return bias_residual(proj, lw.b_out, x)

    def _forward(self, ids: np.ndarray, positions: np.ndarray) -> np.ndarray:
        model = self.model
        x = model.wte[ids]
        if model.config.pos_encoding == "learned":
            x = x + model.wpe[positions]
        for i, lw in enumerate(model.layers):
            x = self._attention(x, lw, i, positions)
            x = model.mlp_block(x, lw, i)
        x = layer_norm(x, model.lnf_g, model.lnf_b)
        return x @ model.wte.T

    # -- public API ----------------------------------------------------------

    def prefill(self, prompts: list[np.ndarray]) -> np.ndarray:
        """Process mixed-length prompts; returns each row's next-token
        logits, shape ``(batch, vocab)``."""
        if self._cache is not None:
            raise RuntimeError("prefill may only be called once")
        if not prompts:
            raise ValueError("need at least one prompt")
        lengths = np.array([np.asarray(p).size for p in prompts])
        if (lengths < 1).any():
            raise ValueError("every prompt needs at least one token")
        b, max_len = len(prompts), int(lengths.max())
        ids = np.zeros((b, max_len), dtype=int)
        for i, p in enumerate(prompts):
            ids[i, : lengths[i]] = np.asarray(p).ravel()
        idx = np.arange(max_len)
        valid = idx[None, :] < lengths[:, None]
        # Right padding keeps real tokens at their solo positions 0..len-1;
        # pads carry in-range position ids but are masked out of attention.
        positions = np.broadcast_to(idx, (b, max_len)).copy()

        self._cache = KVCache(self.model.config.layers)
        self._key_valid = valid
        self._key_pos = positions
        self._row_len = lengths.copy()
        logits = self._forward(ids, positions)
        return logits[np.arange(b), lengths - 1]

    def step(self, tokens: np.ndarray) -> np.ndarray:
        """Append one token per row; returns next-token logits ``(b, vocab)``."""
        if self._cache is None:
            raise RuntimeError("call prefill first")
        tokens = np.asarray(tokens, dtype=int).reshape(-1, 1)
        if tokens.shape[0] != self.batch:
            raise ValueError(f"expected {self.batch} tokens")
        positions = self._row_len.reshape(-1, 1).copy()
        if int(positions.max()) >= self.model.config.max_seq:
            raise ValueError("sequence exceeds max_seq")
        self._key_valid = np.concatenate(
            [self._key_valid, np.ones((self.batch, 1), dtype=bool)], axis=1
        )
        self._key_pos = np.concatenate([self._key_pos, positions], axis=1)
        logits = self._forward(tokens, positions)
        self._row_len = self._row_len + 1
        return logits[:, -1]

    def generate(self, prompts: list[np.ndarray], num_tokens: int) -> list[np.ndarray]:
        """Greedy-decode ``num_tokens`` per row; returns full sequences.

        Exactly equivalent to ``model.generate`` on each prompt alone.
        """
        if num_tokens < 1:
            raise ValueError("num_tokens must be >= 1")
        logits = self.prefill(prompts)
        outs = [list(np.asarray(p).ravel()) for p in prompts]
        next_tok = logits.argmax(axis=-1)
        for i in range(self.batch):
            outs[i].append(int(next_tok[i]))
        for _ in range(num_tokens - 1):
            logits = self.step(next_tok)
            next_tok = logits.argmax(axis=-1)
            for i in range(self.batch):
                outs[i].append(int(next_tok[i]))
        return [np.array(o) for o in outs]
