"""Ragged batched decoding: mixed-length sequences in one forward pass,
with rows joining and leaving mid-flight.

A serving engine rarely sees equal-length prompts, and under continuous
batching (Sec. IV-C1's dynamic queue) the batch *membership* changes
every few steps: finished sequences leave, queued ones join. The decoder
therefore keeps one KV cache **per row** — built by a pluggable
``cache_factory``, so rows can live in contiguous buffers
(:class:`~repro.model.kvcache.KVCache`), block-granular paged storage
(:class:`~repro.model.paged_kv.PagedKVCache` over a shared pool), or
host-offloadable caches — and assembles each step's attention by
gathering every row's cache, right-padding to the longest, and masking.

:meth:`add_rows` prefills new sequences into the running batch (one
forward for all joiners), :meth:`step` decodes one token for every row
in **one** forward regardless of batch composition, and
:meth:`drop_rows` retires rows, freeing their cache storage. The legacy
fixed-batch API (:meth:`prefill` once + :meth:`step`) is preserved.

Tested for *exact* agreement with running each prompt alone: padding,
masking, per-row positions and cache layout must be invisible in the
outputs, for both learned and rotary position encodings.
"""

from __future__ import annotations

import itertools

import numpy as np

from ..kernels.functional import (
    apply_rotary,
    bias_residual,
    layer_norm,
    linear,
    merge_heads,
    scaled_dot_product_attention,
    split_heads,
)
from .dense import DenseTransformer
from .kvcache import KVCache

__all__ = ["RaggedDecoder"]


class _Row:
    """One live sequence: its cache and the real tokens stored so far."""

    __slots__ = ("row_id", "cache", "length")

    def __init__(self, row_id: int, cache, length: int) -> None:
        self.row_id = row_id
        self.cache = cache
        self.length = length


class RaggedDecoder:
    """Stateful batched decoder over dynamically composed, masked rows."""

    def __init__(self, model: DenseTransformer, *, cache_factory=None) -> None:
        """``cache_factory()`` builds one row's KV cache (default: a
        contiguous :class:`KVCache`); pass a factory closing over a
        shared :class:`~repro.model.paged_kv.BlockAllocator` for paged
        rows."""
        self.model = model
        self._cache_factory = cache_factory or (
            lambda: KVCache(model.config.layers)
        )
        # Layer weights come through ``model.layer_weights(i)`` when the
        # model manages residency (e.g. a layer-streamed executor), else
        # straight from ``model.layers``.
        self._layer = getattr(model, "layer_weights", None) or (
            lambda i: model.layers[i]
        )
        self._rows: list[_Row] = []
        self._row_ids = itertools.count()
        self._prefilled = False
        self.forward_calls = 0

    @property
    def batch(self) -> int:
        """Rows currently being decoded."""
        return len(self._rows)

    @property
    def row_ids(self) -> list[int]:
        """Stable ids of the live rows, in batch order."""
        return [r.row_id for r in self._rows]

    def _find(self, row_id: int) -> _Row:
        for row in self._rows:
            if row.row_id == row_id:
                return row
        raise KeyError(f"row {row_id} is not live")

    def row_cache(self, row_id: int):
        """The KV cache backing one live row."""
        return self._find(row_id).cache

    def row_len(self, row_id: int) -> int:
        """Real tokens cached for one live row."""
        return self._find(row_id).length

    # -- internals -----------------------------------------------------------

    def _attention(self, x, lw, layer_idx, rows, positions, new_lens):
        """One attention block over ``rows``; appends each row's valid
        slice of new K/V to that row's cache, then attends against the
        gathered, right-padded union."""
        cfg = self.model.config
        qkv = linear(layer_norm(x, lw.ln1_g, lw.ln1_b), lw.w_qkv, lw.b_qkv)
        q, k, v = (split_heads(t, cfg.heads) for t in np.split(qkv, 3, axis=-1))
        if cfg.pos_encoding == "rotary":
            q = apply_rotary(q, positions=positions)
            k = apply_rotary(k, positions=positions)
        ks, vs = [], []
        for i, row in enumerate(rows):
            kf, vf = row.cache.append(
                layer_idx, k[i : i + 1, :, : new_lens[i]],
                v[i : i + 1, :, : new_lens[i]],
            )
            ks.append(kf)
            vs.append(vf)
        lens = np.array([t.shape[2] for t in ks])
        b, max_len = len(rows), int(lens.max())
        heads, hd = ks[0].shape[1], ks[0].shape[3]
        kb = np.zeros((b, heads, max_len, hd), dtype=ks[0].dtype)
        vb = np.zeros_like(kb)
        for i in range(b):
            kb[i, :, : lens[i]] = ks[i][0]
            vb[i, :, : lens[i]] = vs[i][0]
        idx = np.arange(max_len)
        key_valid = idx[None, :] < lens[:, None]
        # Per-row caches hold only real tokens, so key positions are
        # simply 0..len-1; padded slots carry in-range ids but are masked.
        key_pos = np.broadcast_to(idx, (b, max_len))
        ctx = scaled_dot_product_attention(
            q, kb, vb,
            causal=True,
            key_mask=key_valid,
            query_positions=positions,
            key_positions=key_pos,
        )
        proj = linear(merge_heads(ctx), lw.w_out)
        return bias_residual(proj, lw.b_out, x)

    def _forward(self, ids, positions, rows, new_lens) -> np.ndarray:
        self.forward_calls += 1
        model = self.model
        x = model.wte[ids]
        if model.config.pos_encoding == "learned":
            x = x + model.wpe[positions]
        for i in range(model.config.layers):
            lw = self._layer(i)
            x = self._attention(x, lw, i, rows, positions, new_lens)
            x = model.mlp_block(x, lw, i)
        x = layer_norm(x, model.lnf_g, model.lnf_b)
        return x @ model.wte.T

    # -- public API ----------------------------------------------------------

    def add_rows(
        self,
        prompts: list[np.ndarray],
        *,
        prefixes: list | None = None,
    ) -> tuple[list[int], np.ndarray]:
        """Prefill new sequences into the batch (one forward for all).

        ``prefixes`` (optional, one entry per prompt) attaches a row to
        an existing KV cache — typically a
        :meth:`~repro.model.paged_kv.PagedKVCache.fork` holding a shared
        conversation prefix. An entry of ``None`` builds a fresh cache
        via the factory; a cache with ``seq_len() == n`` means the row's
        first ``n`` prompt tokens are *already cached* (they must equal
        the tokens the cache was built from), so only the remaining
        suffix runs through the forward, at positions ``n..len-1``.

        Returns ``(row_ids, logits)``: stable ids for the new rows and
        each new row's next-token logits, shape ``(len(prompts), vocab)``.
        """
        if not prompts:
            raise ValueError("need at least one prompt")
        lengths = np.array([np.asarray(p).size for p in prompts])
        if (lengths < 1).any():
            raise ValueError("every prompt needs at least one token")
        if prefixes is None:
            prefixes = [None] * len(prompts)
        if len(prefixes) != len(prompts):
            raise ValueError("prefixes must match prompts one-to-one")
        offsets = np.zeros(len(prompts), dtype=int)
        for i, cache in enumerate(prefixes):
            if cache is None:
                continue
            offsets[i] = cache.seq_len()
            if not 0 < offsets[i] < lengths[i]:
                raise ValueError(
                    f"prefix cache of row {i} holds {offsets[i]} positions; "
                    f"need 1 <= cached < prompt length {lengths[i]}")
        new_lens = lengths - offsets
        b, max_new = len(prompts), int(new_lens.max())
        ids = np.zeros((b, max_new), dtype=int)
        for i, p in enumerate(prompts):
            ids[i, : new_lens[i]] = np.asarray(p).ravel()[offsets[i]:]
        idx = np.arange(max_new)
        # Right padding keeps real tokens at their solo positions
        # offset..len-1 (offset 0 for fresh rows); pads carry in-range
        # position ids but are masked out of attention.
        positions = offsets[:, None] + np.broadcast_to(idx, (b, max_new))
        rows = [
            _Row(next(self._row_ids),
                 prefixes[i] if prefixes[i] is not None
                 else self._cache_factory(),
                 int(n))
            for i, n in enumerate(lengths)
        ]
        try:
            logits = self._forward(ids, positions, rows, new_lens)
        except Exception:
            for row in rows:  # return any partially allocated blocks
                free = getattr(row.cache, "free", None)
                if free is not None:
                    free()
            raise
        self._rows.extend(rows)
        return [r.row_id for r in rows], logits[np.arange(b), new_lens - 1]

    def prefill(self, prompts: list[np.ndarray]) -> np.ndarray:
        """Fixed-batch entry point: process mixed-length prompts; returns
        each row's next-token logits, shape ``(batch, vocab)``. May only
        be called once — use :meth:`add_rows` for dynamic batches."""
        if self._prefilled or self._rows:
            raise RuntimeError("prefill may only be called once; use "
                               "add_rows to grow a live batch")
        _, logits = self.add_rows(prompts)
        self._prefilled = True
        return logits

    def step(self, tokens: np.ndarray) -> np.ndarray:
        """Append one token per row — **one forward** for the whole batch;
        returns next-token logits ``(batch, vocab)`` in row order."""
        if not self._rows:
            raise RuntimeError("call prefill (or add_rows) first")
        tokens = np.asarray(tokens, dtype=int).reshape(-1, 1)
        if tokens.shape[0] != self.batch:
            raise ValueError(f"expected {self.batch} tokens")
        positions = np.array([[row.length] for row in self._rows])
        if int(positions.max()) >= self.model.config.max_seq:
            raise ValueError("sequence exceeds max_seq")
        logits = self._forward(
            tokens, positions, self._rows, np.ones(self.batch, dtype=int)
        )
        for row in self._rows:
            row.length += 1
        return logits[:, -1]

    def drop_rows(self, row_ids: list[int]) -> None:
        """Retire rows and free their cache storage (paged rows return
        their blocks to the shared pool immediately)."""
        for rid in row_ids:
            row = self._find(rid)
            free = getattr(row.cache, "free", None)
            if free is not None:
                free()
            self._rows.remove(row)

    def detach_row(self, row_id: int):
        """Retire a row but keep its cache alive; returns the cache.

        The prefix-sharing engine parks a finished conversation turn's
        cache this way so the next turn can :meth:`~repro.model.paged_kv
        .PagedKVCache.fork` it instead of re-prefilling; the caller owns
        the returned cache and must eventually ``free()`` it."""
        row = self._find(row_id)
        self._rows.remove(row)
        return row.cache

    def generate(self, prompts: list[np.ndarray], num_tokens: int) -> list[np.ndarray]:
        """Greedy-decode ``num_tokens`` per row; returns full sequences.

        Exactly equivalent to ``model.generate`` on each prompt alone.
        """
        if num_tokens < 1:
            raise ValueError("num_tokens must be >= 1")
        logits = self.prefill(prompts)
        outs = [list(np.asarray(p).ravel()) for p in prompts]
        next_tok = logits.argmax(axis=-1)
        for i in range(self.batch):
            outs[i].append(int(next_tok[i]))
        for _ in range(num_tokens - 1):
            logits = self.step(next_tok)
            next_tok = logits.argmax(axis=-1)
            for i in range(self.batch):
                outs[i].append(int(next_tok[i]))
        return [np.array(o) for o in outs]
