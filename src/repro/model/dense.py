"""Functional dense GPT model: the reference the parallel engines must match.

A straightforward pre-LayerNorm GPT-2-style decoder in NumPy. It is the
semantic ground truth for the whole repo: tensor-parallel, pipeline-
parallel, quantized and fusion-reordered executions are all tested for
(near-)exact agreement with this model's logits, and KV-cached decoding
is tested against full recomputation.

Weights are float64 by default so equivalence tests are tight; pass
``np.float32`` to halve memory for bigger test models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kernels.functional import (
    apply_rotary,
    bias_residual,
    gelu,
    layer_norm,
    linear,
    merge_heads,
    scaled_dot_product_attention,
    split_heads,
)
from ..rng import SeedLike, as_generator
from .config import ModelConfig
from .kvcache import KVCache

__all__ = ["LayerWeights", "DenseTransformer", "init_layer_weights"]


@dataclass
class LayerWeights:
    """Parameters of one transformer block (shapes as in Fig. 1c)."""

    ln1_g: np.ndarray
    ln1_b: np.ndarray
    w_qkv: np.ndarray  # (h, 3h)
    b_qkv: np.ndarray
    w_out: np.ndarray  # (h, h)
    b_out: np.ndarray
    ln2_g: np.ndarray
    ln2_b: np.ndarray
    w_fc: np.ndarray  # (h, mult*h)
    b_fc: np.ndarray
    w_proj: np.ndarray  # (mult*h, h)
    b_proj: np.ndarray

    @property
    def num_params(self) -> int:
        """Element count across all tensors."""
        return sum(
            getattr(self, f).size for f in self.__dataclass_fields__
        )


def init_layer_weights(
    hidden: int, ffn_mult: int, rng: np.random.Generator, dtype=np.float64
) -> LayerWeights:
    """Small-variance random initialization (inference only; scale just
    needs to keep activations sane through many layers)."""
    s = 0.02

    def w(*shape):
        return (rng.standard_normal(shape) * s).astype(dtype)

    h = hidden
    return LayerWeights(
        ln1_g=np.ones(h, dtype=dtype),
        ln1_b=np.zeros(h, dtype=dtype),
        w_qkv=w(h, 3 * h),
        b_qkv=np.zeros(3 * h, dtype=dtype),
        w_out=w(h, h),
        b_out=np.zeros(h, dtype=dtype),
        ln2_g=np.ones(h, dtype=dtype),
        ln2_b=np.zeros(h, dtype=dtype),
        w_fc=w(h, ffn_mult * h),
        b_fc=np.zeros(ffn_mult * h, dtype=dtype),
        w_proj=w(ffn_mult * h, h),
        b_proj=np.zeros(h, dtype=dtype),
    )


class DenseTransformer:
    """A runnable GPT-style decoder built from a :class:`ModelConfig`."""

    def __init__(
        self,
        config: ModelConfig,
        *,
        seed: SeedLike = 0,
        dtype=np.float64,
        moe_layers: dict | None = None,
    ) -> None:
        self.config = config
        self.dtype = dtype
        rng = as_generator(seed)
        h = config.hidden
        self.wte = (rng.standard_normal((config.vocab, h)) * 0.02).astype(dtype)
        self.wpe = (rng.standard_normal((config.max_seq, h)) * 0.01).astype(dtype)
        self.layers = [
            init_layer_weights(h, config.ffn_mult, rng, dtype)
            for _ in range(config.layers)
        ]
        self.lnf_g = np.ones(h, dtype=dtype)
        self.lnf_b = np.zeros(h, dtype=dtype)
        # Optional per-layer-index MoE blocks installed by repro.model.moe.
        self.moe_layers = moe_layers or {}

    # -- building blocks ---------------------------------------------------

    def attention_block(
        self,
        x: np.ndarray,
        lw: LayerWeights,
        layer_idx: int,
        cache: KVCache | None,
    ) -> np.ndarray:
        """LN -> QKV -> (cached) attention -> output projection + residual."""
        heads = self.config.heads
        qkv = linear(layer_norm(x, lw.ln1_g, lw.ln1_b), lw.w_qkv, lw.b_qkv)
        q, k, v = np.split(qkv, 3, axis=-1)
        q, k, v = (split_heads(t, heads) for t in (q, k, v))
        offset = 0
        if cache is not None:
            offset = cache.seq_len(layer_idx)
        if self.config.pos_encoding == "rotary":
            # Rotate at absolute positions; cached keys were rotated at
            # their own positions already (RoPE + KV-cache compatibility).
            q = apply_rotary(q, position_offset=offset)
            k = apply_rotary(k, position_offset=offset)
        if cache is not None:
            k, v = cache.append(layer_idx, k, v)
        ctx = scaled_dot_product_attention(q, k, v, causal=True, query_offset=offset)
        proj = linear(merge_heads(ctx), lw.w_out)
        return bias_residual(proj, lw.b_out, x)

    def mlp_block(self, x: np.ndarray, lw: LayerWeights, layer_idx: int) -> np.ndarray:
        """LN -> FFN (or the layer's MoE block) + residual."""
        normed = layer_norm(x, lw.ln2_g, lw.ln2_b)
        if layer_idx in self.moe_layers:
            out = self.moe_layers[layer_idx](normed)
        else:
            out = linear(gelu(linear(normed, lw.w_fc, lw.b_fc)), lw.w_proj)
            out = out + lw.b_proj
        return x + out

    # -- forward / generate ------------------------------------------------

    def forward(
        self, token_ids: np.ndarray, cache: KVCache | None = None
    ) -> np.ndarray:
        """Logits for ``(batch, seq)`` token ids; appends to ``cache``."""
        token_ids = np.atleast_2d(token_ids)
        if token_ids.ndim != 2:
            raise ValueError("token_ids must be (batch, seq)")
        if token_ids.max(initial=0) >= self.config.vocab or token_ids.min(initial=0) < 0:
            raise ValueError("token id out of vocabulary range")
        pos0 = cache.seq_len(0) if cache is not None else 0
        seq = token_ids.shape[1]
        if pos0 + seq > self.config.max_seq:
            raise ValueError("sequence exceeds max_seq")
        x = self.wte[token_ids]
        if self.config.pos_encoding == "learned":
            x = x + self.wpe[pos0 : pos0 + seq]
        for i, lw in enumerate(self.layers):
            x = self.attention_block(x, lw, i, cache)
            x = self.mlp_block(x, lw, i)
        x = layer_norm(x, self.lnf_g, self.lnf_b)
        return x @ self.wte.T

    def generate(
        self, prompt_ids: np.ndarray, num_tokens: int, *, use_cache: bool = True
    ) -> np.ndarray:
        """Greedy decoding of ``num_tokens`` continuations per sequence."""
        if num_tokens < 1:
            raise ValueError("num_tokens must be >= 1")
        prompt_ids = np.atleast_2d(prompt_ids)
        out = prompt_ids.copy()
        cache = KVCache(self.config.layers) if use_cache else None
        step_input = prompt_ids
        for _ in range(num_tokens):
            if use_cache:
                logits = self.forward(step_input, cache)
            else:
                logits = self.forward(out)
            nxt = logits[:, -1].argmax(axis=-1)[:, None]
            out = np.concatenate([out, nxt], axis=1)
            step_input = nxt
        return out
