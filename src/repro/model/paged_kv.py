"""Paged KV cache: block-granular cache memory with a free-list allocator
and block-level copy-on-write prefix sharing.

Sec. IV-B identifies KV-cache capacity as the limiter for concurrent
sequences; contiguous per-sequence buffers waste memory on growth slack
and fragmentation. The paged design (popularized after the paper by
vLLM) carves cache memory into fixed-size blocks, grows each sequence's
cache one block at a time through an indirection table, and returns
blocks to a free list the moment a sequence finishes — so the feasible
batch tracks *actual* tokens, not worst-case lengths.

Block indirection buys a second capacity lever: two sequences that share
a token prefix (a chat turn continuing its conversation, an agent loop
re-submitting its context) can share the *physical* blocks holding that
prefix. :meth:`PagedKVCache.fork` clones a cache up to a prefix length
by aliasing its blocks (the allocator refcounts them); the first write
into a block that is still shared triggers a private copy, so neither
side can see the other's tokens (copy-on-write).

:class:`PagedKVCache` exposes the same interface as
:class:`~repro.model.kvcache.KVCache` (``append``/``get``/``seq_len``/
``nbytes``), so any decoder runs on it unchanged; tests pin exact
equality of decoding results plus the allocator's accounting invariants.
"""

from __future__ import annotations

import numpy as np

__all__ = ["OutOfBlocks", "BlockAllocator", "PagedKVCache", "blocks_needed"]


def blocks_needed(
    seq_len: int,
    *,
    block_size: int,
    num_layers: int,
    shared_prefix_len: int = 0,
) -> int:
    """Pool blocks a ``seq_len``-position sequence occupies across all
    layers — the quantity an admission controller reserves against the
    shared pool (Sec. IV-B capacity gating).

    ``shared_prefix_len`` is the prefix the sequence inherits from a
    :meth:`PagedKVCache.fork` instead of allocating: the blocks covering
    those positions (``ceil(prefix / block_size)`` per layer) arrive by
    aliasing, so only the remainder needs fresh allocations. The prefix
    is clamped to ``seq_len``.
    """
    if seq_len < 0:
        raise ValueError("seq_len must be >= 0")
    if block_size < 1 or num_layers < 1:
        raise ValueError("block_size and num_layers must be >= 1")
    if shared_prefix_len < 0:
        raise ValueError("shared_prefix_len must be >= 0")
    prefix = min(shared_prefix_len, seq_len)
    total = -(-seq_len // block_size)
    inherited = -(-prefix // block_size)
    return num_layers * (total - inherited)


class OutOfBlocks(RuntimeError):
    """Raised when the block pool cannot satisfy an allocation."""


class BlockAllocator:
    """Fixed pool of cache blocks with O(1) alloc/free and per-block
    reference counts.

    A block is *owned* once per :meth:`alloc` and once more per
    :meth:`share` (a :meth:`PagedKVCache.fork` aliasing it);
    :meth:`free` drops one reference and only returns the block to the
    pool when the last owner lets go. ``refcount`` lets a cache decide
    whether a write may go in place or needs a private copy first.
    """

    def __init__(self, num_blocks: int) -> None:
        if num_blocks < 1:
            raise ValueError("num_blocks must be >= 1")
        self.num_blocks = num_blocks
        self._free = list(range(num_blocks - 1, -1, -1))
        # Mirror of ``_free`` membership: the double-free guard used to
        # scan the free list (O(n) per free); the set makes it O(1).
        self._free_set = set(self._free)
        self._refs = [0] * num_blocks
        self._shared = 0  # blocks with refcount > 1, maintained inline
        self.peak_used = 0

    @property
    def free_blocks(self) -> int:
        """Blocks currently available."""
        return len(self._free)

    @property
    def used_blocks(self) -> int:
        """Blocks currently held by caches (shared blocks count once)."""
        return self.num_blocks - len(self._free)

    @property
    def shared_blocks(self) -> int:
        """Blocks currently referenced by more than one cache."""
        return self._shared

    def refcount(self, block: int) -> int:
        """Live references to ``block`` (0 for a free block)."""
        self._check(block)
        return self._refs[block]

    def _check(self, block: int) -> None:
        if not 0 <= block < self.num_blocks:
            raise ValueError(f"block {block} out of range")

    def alloc(self) -> int:
        """Take one block id; raise :class:`OutOfBlocks` when exhausted."""
        if not self._free:
            raise OutOfBlocks(
                f"all {self.num_blocks} KV blocks are in use"
            )
        block = self._free.pop()
        self._free_set.discard(block)
        self._refs[block] = 1
        used = self.num_blocks - len(self._free)
        if used > self.peak_used:
            self.peak_used = used
        return block

    def share(self, block: int) -> int:
        """Add one reference to an allocated block (a fork aliasing it);
        returns the block id for chaining."""
        self._check(block)
        if self._refs[block] < 1:
            raise ValueError(f"cannot share free block {block}")
        self._refs[block] += 1
        if self._refs[block] == 2:
            self._shared += 1
        return block

    def free(self, block: int) -> None:
        """Drop one reference; the block returns to the pool when the
        last reference is gone."""
        self._check(block)
        if block in self._free_set:
            raise ValueError(f"double free of block {block}")
        self._refs[block] -= 1
        if self._refs[block] == 1:
            self._shared -= 1
        elif self._refs[block] == 0:
            self._free.append(block)
            self._free_set.add(block)


class PagedKVCache:
    """KV cache storing ``(batch, heads, seq, hd)`` growth in blocks.

    One logical cache serves one batch (like :class:`KVCache`); each
    (layer, kind) stream owns a list of block ids into a shared pool.
    Blocks hold ``block_size`` sequence positions for the whole batch.

    :meth:`fork` produces a child cache aliasing this cache's prefix
    blocks; writes into a still-shared block copy it first
    (:attr:`cow_copies` counts those), so forked caches never observe
    each other's appends.
    """

    def __init__(
        self,
        num_layers: int,
        allocator: BlockAllocator,
        *,
        block_size: int = 16,
    ) -> None:
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self.num_layers = num_layers
        self.block_size = block_size
        self.allocator = allocator
        # per layer: list of block ids, one shared length counter
        self._blocks: list[list[int]] = [[] for _ in range(num_layers)]
        self._len = [0] * num_layers
        # block storage created lazily once shapes are known
        self._store_k: dict[int, np.ndarray] = {}
        self._store_v: dict[int, np.ndarray] = {}
        self._shape: tuple | None = None  # (batch, heads, head_dim)
        self._freed = False
        self.cow_copies = 0

    # -- internals -----------------------------------------------------------

    def _check_layer(self, layer: int) -> None:
        if not 0 <= layer < self.num_layers:
            raise IndexError(f"layer {layer} out of range")
        if self._freed:
            raise RuntimeError("cache was freed")

    def _ensure_shape(self, k: np.ndarray) -> None:
        shape = (k.shape[0], k.shape[1], k.shape[3])
        if self._shape is None:
            self._shape = shape
        elif shape != self._shape:
            raise ValueError("batch/heads/head_dim mismatch with cache")

    def _grow(self, layer: int, new_len: int, dtype) -> None:
        b, h, d = self._shape
        needed = -(-new_len // self.block_size)  # ceil
        while len(self._blocks[layer]) < needed:
            blk = self.allocator.alloc()
            self._blocks[layer].append(blk)
            self._store_k[blk] = np.zeros((b, h, self.block_size, d), dtype)
            self._store_v[blk] = np.zeros((b, h, self.block_size, d), dtype)

    def _unshare(self, layer: int, start: int, end: int) -> None:
        """Copy-on-write: privatize every still-shared block the write
        ``[start, end)`` touches. The copy drops this cache's reference
        on the shared original and re-points the layer's table at a
        private duplicate, so the other owners keep their bytes."""
        first = start // self.block_size
        last = (end - 1) // self.block_size
        table = self._blocks[layer]
        for bi in range(first, min(last + 1, len(table))):
            blk = table[bi]
            if self.allocator.refcount(blk) < 2:
                continue
            copy = self.allocator.alloc()
            self._store_k[copy] = self._store_k[blk].copy()
            self._store_v[copy] = self._store_v[blk].copy()
            table[bi] = copy
            self._store_k.pop(blk)
            self._store_v.pop(blk)
            self.allocator.free(blk)  # drop our reference only
            self.cow_copies += 1

    def _write(self, store, layer: int, start: int, data: np.ndarray) -> None:
        pos = start
        remaining = data
        while remaining.shape[2]:
            blk = self._blocks[layer][pos // self.block_size]
            off = pos % self.block_size
            take = min(self.block_size - off, remaining.shape[2])
            store[blk][:, :, off : off + take] = remaining[:, :, :take]
            remaining = remaining[:, :, take:]
            pos += take

    def _gather(self, store, layer: int) -> np.ndarray:
        n = self._len[layer]
        parts = [store[blk] for blk in self._blocks[layer]]
        if not parts:
            return None
        return np.concatenate(parts, axis=2)[:, :, :n]

    # -- KVCache interface ----------------------------------------------------

    def append(self, layer: int, k: np.ndarray, v: np.ndarray):
        """Append new K/V; returns the full (gathered) cached tensors."""
        self._check_layer(layer)
        if k.shape != v.shape or k.ndim != 4:
            raise ValueError("expected matching (batch, heads, seq, hd)")
        self._ensure_shape(k)
        start = self._len[layer]
        new_len = start + k.shape[2]
        self._grow(layer, new_len, k.dtype)
        self._unshare(layer, start, new_len)
        self._write(self._store_k, layer, start, k)
        self._write(self._store_v, layer, start, v)
        self._len[layer] = new_len
        return self.get(layer)

    def get(self, layer: int):
        """Current cached K/V (contiguous views gathered from blocks)."""
        self._check_layer(layer)
        return (
            self._gather(self._store_k, layer),
            self._gather(self._store_v, layer),
        )

    def seq_len(self, layer: int = 0) -> int:
        """Cached positions for ``layer``."""
        self._check_layer(layer)
        return self._len[layer]

    def fork(self, prefix_len: int) -> "PagedKVCache":
        """A child cache sharing this cache's first ``prefix_len``
        positions by aliasing the covering blocks (no copies).

        The child starts with ``seq_len() == prefix_len`` on every
        layer and appends from there; positions a shared boundary block
        holds beyond the prefix are invisible to the child (its length
        truncates the gather) and are overwritten — after a
        copy-on-write privatization if the block is still shared — as
        the child grows. Both parent and child remain fully writable;
        :meth:`free` drops each side's references independently.
        """
        self._check_layer(0)
        if prefix_len < 1:
            raise ValueError("prefix_len must be >= 1")
        if any(n < prefix_len for n in self._len):
            raise ValueError(
                f"prefix_len {prefix_len} exceeds cached length "
                f"{min(self._len)}")
        child = PagedKVCache(self.num_layers, self.allocator,
                             block_size=self.block_size)
        child._shape = self._shape
        span = -(-prefix_len // self.block_size)  # ceil
        for layer in range(self.num_layers):
            for blk in self._blocks[layer][:span]:
                self.allocator.share(blk)
                child._blocks[layer].append(blk)
                child._store_k[blk] = self._store_k[blk]
                child._store_v[blk] = self._store_v[blk]
            child._len[layer] = prefix_len
        return child

    @property
    def nbytes(self) -> int:
        """Bytes held in referenced blocks (both K and V; blocks shared
        with a fork are counted in every cache referencing them)."""
        return sum(a.nbytes for a in self._store_k.values()) + sum(
            a.nbytes for a in self._store_v.values()
        )

    @property
    def blocks_held(self) -> int:
        """Blocks this cache currently references (shared ones included)."""
        return sum(len(bs) for bs in self._blocks)

    def free(self) -> None:
        """Drop every block reference (sequence finished); blocks shared
        with a live fork survive until the fork frees them too."""
        if self._freed:
            return
        for layer_blocks in self._blocks:
            for blk in layer_blocks:
                self.allocator.free(blk)
                self._store_k.pop(blk, None)
                self._store_v.pop(blk, None)
            layer_blocks.clear()
        self._len = [0] * self.num_layers
        self._freed = True
