"""Paged KV cache: block-granular cache memory with a free-list allocator.

Sec. IV-B identifies KV-cache capacity as the limiter for concurrent
sequences; contiguous per-sequence buffers waste memory on growth slack
and fragmentation. The paged design (popularized after the paper by
vLLM) carves cache memory into fixed-size blocks, grows each sequence's
cache one block at a time through an indirection table, and returns
blocks to a free list the moment a sequence finishes — so the feasible
batch tracks *actual* tokens, not worst-case lengths.

:class:`PagedKVCache` exposes the same interface as
:class:`~repro.model.kvcache.KVCache` (``append``/``get``/``seq_len``/
``nbytes``), so any decoder runs on it unchanged; tests pin exact
equality of decoding results plus the allocator's accounting invariants.
"""

from __future__ import annotations

import numpy as np

__all__ = ["OutOfBlocks", "BlockAllocator", "PagedKVCache", "blocks_needed"]


def blocks_needed(seq_len: int, *, block_size: int, num_layers: int) -> int:
    """Pool blocks a ``seq_len``-position sequence occupies across all
    layers — the quantity an admission controller reserves against the
    shared pool (Sec. IV-B capacity gating)."""
    if seq_len < 0:
        raise ValueError("seq_len must be >= 0")
    if block_size < 1 or num_layers < 1:
        raise ValueError("block_size and num_layers must be >= 1")
    return num_layers * -(-seq_len // block_size)


class OutOfBlocks(RuntimeError):
    """Raised when the block pool cannot satisfy an allocation."""


class BlockAllocator:
    """Fixed pool of cache blocks with O(1) alloc/free."""

    def __init__(self, num_blocks: int) -> None:
        if num_blocks < 1:
            raise ValueError("num_blocks must be >= 1")
        self.num_blocks = num_blocks
        self._free = list(range(num_blocks - 1, -1, -1))

    @property
    def free_blocks(self) -> int:
        """Blocks currently available."""
        return len(self._free)

    @property
    def used_blocks(self) -> int:
        """Blocks currently held by caches."""
        return self.num_blocks - len(self._free)

    def alloc(self) -> int:
        """Take one block id; raise :class:`OutOfBlocks` when exhausted."""
        if not self._free:
            raise OutOfBlocks(
                f"all {self.num_blocks} KV blocks are in use"
            )
        return self._free.pop()

    def free(self, block: int) -> None:
        """Return a block to the pool."""
        if not 0 <= block < self.num_blocks:
            raise ValueError(f"block {block} out of range")
        if block in self._free:
            raise ValueError(f"double free of block {block}")
        self._free.append(block)


class PagedKVCache:
    """KV cache storing ``(batch, heads, seq, hd)`` growth in blocks.

    One logical cache serves one batch (like :class:`KVCache`); each
    (layer, kind) stream owns a list of block ids into a shared pool.
    Blocks hold ``block_size`` sequence positions for the whole batch.
    """

    def __init__(
        self,
        num_layers: int,
        allocator: BlockAllocator,
        *,
        block_size: int = 16,
    ) -> None:
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self.num_layers = num_layers
        self.block_size = block_size
        self.allocator = allocator
        # per layer: list of block ids, one shared length counter
        self._blocks: list[list[int]] = [[] for _ in range(num_layers)]
        self._len = [0] * num_layers
        # block storage created lazily once shapes are known
        self._store_k: dict[int, np.ndarray] = {}
        self._store_v: dict[int, np.ndarray] = {}
        self._shape: tuple | None = None  # (batch, heads, head_dim)
        self._freed = False

    # -- internals -----------------------------------------------------------

    def _check_layer(self, layer: int) -> None:
        if not 0 <= layer < self.num_layers:
            raise IndexError(f"layer {layer} out of range")
        if self._freed:
            raise RuntimeError("cache was freed")

    def _ensure_shape(self, k: np.ndarray) -> None:
        shape = (k.shape[0], k.shape[1], k.shape[3])
        if self._shape is None:
            self._shape = shape
        elif shape != self._shape:
            raise ValueError("batch/heads/head_dim mismatch with cache")

    def _grow(self, layer: int, new_len: int, dtype) -> None:
        b, h, d = self._shape
        needed = -(-new_len // self.block_size)  # ceil
        while len(self._blocks[layer]) < needed:
            blk = self.allocator.alloc()
            self._blocks[layer].append(blk)
            self._store_k[blk] = np.zeros((b, h, self.block_size, d), dtype)
            self._store_v[blk] = np.zeros((b, h, self.block_size, d), dtype)

    def _write(self, store, layer: int, start: int, data: np.ndarray) -> None:
        pos = start
        remaining = data
        while remaining.shape[2]:
            blk = self._blocks[layer][pos // self.block_size]
            off = pos % self.block_size
            take = min(self.block_size - off, remaining.shape[2])
            store[blk][:, :, off : off + take] = remaining[:, :, :take]
            remaining = remaining[:, :, take:]
            pos += take

    def _gather(self, store, layer: int) -> np.ndarray:
        n = self._len[layer]
        parts = [store[blk] for blk in self._blocks[layer]]
        if not parts:
            return None
        return np.concatenate(parts, axis=2)[:, :, :n]

    # -- KVCache interface ----------------------------------------------------

    def append(self, layer: int, k: np.ndarray, v: np.ndarray):
        """Append new K/V; returns the full (gathered) cached tensors."""
        self._check_layer(layer)
        if k.shape != v.shape or k.ndim != 4:
            raise ValueError("expected matching (batch, heads, seq, hd)")
        self._ensure_shape(k)
        start = self._len[layer]
        new_len = start + k.shape[2]
        self._grow(layer, new_len, k.dtype)
        self._write(self._store_k, layer, start, k)
        self._write(self._store_v, layer, start, v)
        self._len[layer] = new_len
        return self.get(layer)

    def get(self, layer: int):
        """Current cached K/V (contiguous views gathered from blocks)."""
        self._check_layer(layer)
        return (
            self._gather(self._store_k, layer),
            self._gather(self._store_v, layer),
        )

    def seq_len(self, layer: int = 0) -> int:
        """Cached positions for ``layer``."""
        self._check_layer(layer)
        return self._len[layer]

    @property
    def nbytes(self) -> int:
        """Bytes held in allocated blocks (both K and V)."""
        return sum(a.nbytes for a in self._store_k.values()) + sum(
            a.nbytes for a in self._store_v.values()
        )

    @property
    def blocks_held(self) -> int:
        """Blocks this cache currently owns."""
        return sum(len(bs) for bs in self._blocks)

    def free(self) -> None:
        """Return every block to the allocator (sequence finished)."""
        if self._freed:
            return
        for layer_blocks in self._blocks:
            for blk in layer_blocks:
                self.allocator.free(blk)
                self._store_k.pop(blk, None)
                self._store_v.pop(blk, None)
            layer_blocks.clear()
        self._len = [0] * self.num_layers
        self._freed = True
