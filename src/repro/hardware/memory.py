"""Device-memory accounting.

Inference at scale is frequently *capacity* limited rather than compute
limited: KV caches grow with concurrent sequences (Sec. IV-B), pipeline
stages must hold their weight shards, and ZeRO-Inference deliberately
restricts the GPU-resident weight footprint to a couple of layers so the
freed capacity can buy batch size (Sec. VI-A).

:class:`MemoryPool` is a simple reservation ledger used by the planners
and engines to decide the largest feasible batch size and to raise early,
readable errors when a configuration cannot fit — the functional analogue
of a CUDA OOM.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["OutOfDeviceMemory", "Reservation", "MemoryPool"]


class OutOfDeviceMemory(RuntimeError):
    """Raised when a reservation exceeds remaining device capacity."""


@dataclass(frozen=True)
class Reservation:
    """One named allocation inside a :class:`MemoryPool`."""

    tag: str
    nbytes: float


@dataclass
class MemoryPool:
    """Tracks reservations against a fixed capacity.

    The pool is deliberately not an allocator (no addresses, no
    fragmentation model): the quantities that drive the paper's design
    decisions are aggregate footprints, so a ledger suffices.
    """

    capacity: float
    reserve_fraction: float = 0.08  # framework/cuda context head-room
    _items: list[Reservation] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= self.reserve_fraction < 1:
            raise ValueError("reserve_fraction must lie in [0, 1)")

    @property
    def usable(self) -> float:
        """Capacity left after the framework head-room."""
        return self.capacity * (1.0 - self.reserve_fraction)

    @property
    def used(self) -> float:
        """Sum of live reservations."""
        return sum(r.nbytes for r in self._items)

    @property
    def free(self) -> float:
        """Bytes still available for new reservations."""
        return self.usable - self.used

    def reserve(self, tag: str, nbytes: float) -> Reservation:
        """Reserve ``nbytes`` under ``tag``; raise if it does not fit."""
        if nbytes < 0:
            raise ValueError("cannot reserve a negative size")
        if nbytes > self.free:
            raise OutOfDeviceMemory(
                f"cannot reserve {nbytes / 1e9:.2f} GB for {tag!r}: "
                f"{self.free / 1e9:.2f} GB free of {self.usable / 1e9:.2f} GB usable"
            )
        r = Reservation(tag, nbytes)
        self._items.append(r)
        return r

    def release(self, reservation: Reservation) -> None:
        """Release a previously made reservation."""
        try:
            self._items.remove(reservation)
        except ValueError:
            raise KeyError(f"reservation {reservation.tag!r} is not live") from None

    def would_fit(self, nbytes: float) -> bool:
        """True if ``nbytes`` could be reserved right now."""
        return 0 <= nbytes <= self.free

    def breakdown(self) -> dict[str, float]:
        """Aggregate live reservations by tag."""
        out: dict[str, float] = {}
        for r in self._items:
            out[r.tag] = out.get(r.tag, 0.0) + r.nbytes
        return out
