"""Hardware specifications for the devices used in the paper's evaluation.

The paper (Sec. VII-A4) evaluates on three testbeds:

* a cluster of up to 256 NVIDIA A100-40GB GPUs (32 DGX boxes, 8 GPUs each),
* a Lambda workstation with 2x A6000-48GB, 256 GB DRAM and 2 TB NVMe,
* a DGX-2 with 16x V100-32GB-SXM, 1.5 TB DRAM and 30 TB NVMe.

This module records the published hardware numbers those systems expose to
the performance model: memory capacity and bandwidth, peak math throughput
per datatype, interconnect bandwidths and latencies, and the kernel-launch
overhead that Sec. III identifies as a first-order latency term at small
batch sizes.

All bandwidths are *unidirectional effective* bandwidths in bytes/second,
all times in seconds, all capacities in bytes, so arithmetic downstream
never needs unit conversions.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass

__all__ = [
    "DType",
    "GPUSpec",
    "LinkSpec",
    "CPUSpec",
    "NVMeSpec",
    "A100_40GB",
    "A6000",
    "V100_32GB",
    "NVLINK3",
    "NVLINK2",
    "PCIE3_X16",
    "PCIE4_X16",
    "INFINIBAND_HDR",
    "XEON_8280",
    "NVME_RAID",
    "NVME_SINGLE",
    "GPU_REGISTRY",
    "GB",
    "GiB",
    "US",
    "MS",
]

GB = 1e9
GiB = 2**30
US = 1e-6
MS = 1e-3


class DType(enum.Enum):
    """Numeric datatypes supported by the inference kernels (Sec. III-D)."""

    FP32 = "fp32"
    FP16 = "fp16"
    INT8 = "int8"

    @property
    def itemsize(self) -> int:
        """Size of one element in bytes."""
        return {DType.FP32: 4, DType.FP16: 2, DType.INT8: 1}[self]

    @property
    def cacheline_pack(self) -> int:
        """Elements per thread read to fill a 128-byte L1 cache line.

        Sec. III-C3: the SBI-GeMM weight layout transposes M rows per
        column so each thread reads M contiguous elements; the paper sets
        M=2 for FP16 and M=4 for INT8 against a 128-byte line.
        """
        return {DType.FP32: 1, DType.FP16: 2, DType.INT8: 4}[self]


@dataclass(frozen=True)
class GPUSpec:
    """Performance-relevant description of one GPU.

    Attributes
    ----------
    name:
        Marketing name, used in reports.
    memory_bytes:
        HBM/GDDR capacity available to the inference engine.
    mem_bw:
        Peak DRAM bandwidth in bytes/s.
    fp16_flops / fp32_flops / int8_ops:
        Peak dense math throughput (tensor cores where applicable), in
        operations per second.
    sm_count:
        Number of streaming multiprocessors; bounds the number of parallel
        tiles the SBI-GeMM scheduler can spread work over.
    kernel_launch_overhead:
        CPU-side cost of launching one kernel, in seconds. Sec. III-D
        eliminates this via CUDA graphs.
    cacheline_bytes:
        L1 cache-line size (Sec. III-C3 leverages the full 128-byte line).
    shared_mem_per_sm:
        Shared-memory capacity per SM; bounds fusable tile footprints.
    """

    name: str
    memory_bytes: float
    mem_bw: float
    fp16_flops: float
    fp32_flops: float
    int8_ops: float
    sm_count: int
    kernel_launch_overhead: float = 3.5 * US
    cacheline_bytes: int = 128
    shared_mem_per_sm: int = 164 * 1024

    def peak_flops(self, dtype: DType) -> float:
        """Peak math throughput for ``dtype`` in ops/s."""
        return {
            DType.FP32: self.fp32_flops,
            DType.FP16: self.fp16_flops,
            DType.INT8: self.int8_ops,
        }[dtype]

    def ideal_weight_read_time(self, nbytes: float) -> float:
        """Lower bound on reading ``nbytes`` of weights from device memory.

        Small-batch inference latency is bounded below by this quantity
        (Sec. I, "Latency Challenges").
        """
        return nbytes / self.mem_bw

    def with_overrides(self, **kw) -> "GPUSpec":
        """Return a copy with selected fields replaced."""
        return dataclasses.replace(self, **kw)


@dataclass(frozen=True)
class LinkSpec:
    """A point-to-point or shared interconnect link.

    ``bandwidth`` is the effective unidirectional bandwidth in bytes/s and
    ``latency`` the per-message latency in seconds (the alpha term of the
    alpha-beta model used by :mod:`repro.comm.primitives`).
    """

    name: str
    bandwidth: float
    latency: float
    duplex: bool = True

    def transfer_time(self, nbytes: float) -> float:
        """alpha-beta time to move ``nbytes`` across this link."""
        return self.latency + nbytes / self.bandwidth


@dataclass(frozen=True)
class CPUSpec:
    """Host CPU + DRAM subsystem used by offloading paths."""

    name: str
    dram_bytes: float
    dram_bw: float
    # Effective GEMM throughput of the host for the CPU-only baseline
    # (Sec. VII-D compares against a CPU-only solution).
    fp32_flops: float

    def weight_read_time(self, nbytes: float) -> float:
        """Time to stream ``nbytes`` of weights out of DRAM."""
        return nbytes / self.dram_bw


@dataclass(frozen=True)
class NVMeSpec:
    """NVMe storage tier (ZeRO-Inference weight store, Sec. VI)."""

    name: str
    capacity_bytes: float
    read_bw: float
    write_bw: float
    latency: float = 80 * US

    def read_time(self, nbytes: float) -> float:
        """Time for a bulk, pipelined read of ``nbytes``."""
        return self.latency + nbytes / self.read_bw


# --------------------------------------------------------------------------
# Published device numbers.
# --------------------------------------------------------------------------

A100_40GB = GPUSpec(
    name="A100-40GB",
    memory_bytes=40 * GB,
    mem_bw=1555 * GB,
    fp16_flops=312e12,
    fp32_flops=19.5e12,
    int8_ops=624e12,
    sm_count=108,
)

A6000 = GPUSpec(
    name="A6000-48GB",
    memory_bytes=48 * GB,
    mem_bw=768 * GB,
    fp16_flops=158.4e12,  # paper quotes 158.4 TFLOPS theoretical peak
    fp32_flops=38.7e12,
    int8_ops=316.8e12,
    sm_count=84,
)

V100_32GB = GPUSpec(
    name="V100-32GB-SXM",
    memory_bytes=32 * GB,
    mem_bw=900 * GB,
    fp16_flops=125e12,
    fp32_flops=15.7e12,
    int8_ops=125e12,  # V100 has no INT8 tensor cores; DP4A roughly matches FP16
    sm_count=80,
)

GPU_REGISTRY = {g.name: g for g in (A100_40GB, A6000, V100_32GB)}

# NVLink generation 3 (A100, NVSwitch-connected DGX A100): 600 GB/s total
# bidirectional per GPU => ~300 GB/s unidirectional, of which NCCL
# typically realises ~80%.
NVLINK3 = LinkSpec(name="NVLink3", bandwidth=240 * GB, latency=1.5 * US)

# NVLink generation 2 (V100 DGX-2 with NVSwitch): 300 GB/s bidirectional.
NVLINK2 = LinkSpec(name="NVLink2", bandwidth=120 * GB, latency=1.8 * US)

PCIE3_X16 = LinkSpec(name="PCIe3x16", bandwidth=12.5 * GB, latency=4 * US)
PCIE4_X16 = LinkSpec(name="PCIe4x16", bandwidth=25 * GB, latency=3 * US)

# HDR InfiniBand, 8 NICs per DGX A100 node aggregated by NCCL; we model the
# per-GPU share of inter-node bandwidth.
INFINIBAND_HDR = LinkSpec(name="IB-HDR", bandwidth=22 * GB, latency=5 * US)

XEON_8280 = CPUSpec(
    name="Xeon-8280-host",
    dram_bytes=1500 * GB,
    dram_bw=140 * GB,
    fp32_flops=3.0e12,
)

NVME_RAID = NVMeSpec(
    name="NVMe-RAID (DGX-2)",
    capacity_bytes=30e12,
    read_bw=25 * GB,
    write_bw=12 * GB,
)

NVME_SINGLE = NVMeSpec(
    name="NVMe (workstation)",
    capacity_bytes=2e12,
    read_bw=6.5 * GB,
    write_bw=3.0 * GB,
)
