"""Hardware substrate: device specs, cluster topologies, memory accounting.

These are the published numbers of the paper's testbeds (Sec. VII-A4); the
performance model consumes them, and substituting different specs lets a
user explore other deployments.
"""

from .memory import MemoryPool, OutOfDeviceMemory, Reservation
from .specs import (
    A100_40GB,
    A6000,
    CPUSpec,
    DType,
    GB,
    GPU_REGISTRY,
    GPUSpec,
    GiB,
    INFINIBAND_HDR,
    LinkSpec,
    MS,
    NVLINK2,
    NVLINK3,
    NVME_RAID,
    NVME_SINGLE,
    NVMeSpec,
    PCIE3_X16,
    PCIE4_X16,
    US,
    V100_32GB,
    XEON_8280,
)
from .topology import (
    ClusterSpec,
    DeviceId,
    NodeSpec,
    dgx2_v100,
    dgx_a100_cluster,
    lambda_a6000_workstation,
)

__all__ = [
    "A100_40GB",
    "A6000",
    "CPUSpec",
    "ClusterSpec",
    "DType",
    "DeviceId",
    "GB",
    "GPU_REGISTRY",
    "GPUSpec",
    "GiB",
    "INFINIBAND_HDR",
    "LinkSpec",
    "MS",
    "MemoryPool",
    "NVLINK2",
    "NVLINK3",
    "NVME_RAID",
    "NVME_SINGLE",
    "NVMeSpec",
    "NodeSpec",
    "OutOfDeviceMemory",
    "PCIE3_X16",
    "PCIE4_X16",
    "Reservation",
    "US",
    "V100_32GB",
    "XEON_8280",
    "dgx2_v100",
    "dgx_a100_cluster",
    "lambda_a6000_workstation",
]
