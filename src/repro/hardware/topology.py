"""Cluster topology: nodes, GPUs, and the links between them.

The parallelism planner (Sec. IV, V) needs to distinguish three classes of
paths, because the paper's strategies are explicitly topology-aware:

* **intra-node GPU-GPU** over NVLink/NVSwitch — where tensor parallelism is
  confined (Sec. IV-A),
* **inter-node GPU-GPU** over InfiniBand — where pipeline and expert
  parallelism operate (Sec. IV-B, V-A),
* **GPU-host** over PCIe — where activation offload (Sec. IV-C2/3) and
  ZeRO-Inference weight streaming (Sec. VI) run; PCIe links are shared
  between pairs of GPUs on DGX-class systems, which motivates the
  odd/even offload schedule of Sec. IV-C3.
"""

from __future__ import annotations

from dataclasses import dataclass

from .specs import (
    A100_40GB,
    A6000,
    GPUSpec,
    INFINIBAND_HDR,
    LinkSpec,
    NVLINK2,
    NVLINK3,
    NVME_RAID,
    NVME_SINGLE,
    NVMeSpec,
    CPUSpec,
    PCIE3_X16,
    PCIE4_X16,
    V100_32GB,
    XEON_8280,
    GB,
)

__all__ = [
    "DeviceId",
    "NodeSpec",
    "ClusterSpec",
    "dgx_a100_cluster",
    "lambda_a6000_workstation",
    "dgx2_v100",
]


@dataclass(frozen=True, order=True)
class DeviceId:
    """Global identity of one GPU: (node index, local GPU index)."""

    node: int
    local: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"gpu[{self.node}.{self.local}]"


@dataclass(frozen=True)
class NodeSpec:
    """One server: a set of identical GPUs plus host memory and storage.

    ``pcie_group_size`` captures how many GPUs share one PCIe link to the
    host (2 on DGX systems), which the activation-offload scheduler must
    respect to avoid contention (Sec. IV-C3).
    """

    gpu: GPUSpec
    gpus_per_node: int
    intra_link: LinkSpec
    pcie: LinkSpec
    host: CPUSpec
    nvme: NVMeSpec | None = None
    pcie_group_size: int = 2

    @property
    def aggregate_gpu_memory(self) -> float:
        """Total GPU memory on this node, bytes."""
        return self.gpu.memory_bytes * self.gpus_per_node

    def pcie_group(self, local_rank: int) -> int:
        """Index of the PCIe link shared by GPU ``local_rank``."""
        return local_rank // self.pcie_group_size


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of ``num_nodes`` identical nodes."""

    name: str
    node: NodeSpec
    num_nodes: int
    inter_link: LinkSpec = INFINIBAND_HDR

    @property
    def num_gpus(self) -> int:
        """Total GPUs in the cluster."""
        return self.num_nodes * self.node.gpus_per_node

    @property
    def gpu(self) -> GPUSpec:
        """Shortcut to the (homogeneous) GPU spec."""
        return self.node.gpu

    @property
    def aggregate_gpu_memory(self) -> float:
        """Total GPU memory across the cluster, bytes."""
        return self.num_nodes * self.node.aggregate_gpu_memory

    @property
    def aggregate_mem_bw(self) -> float:
        """Sum of per-GPU memory bandwidth — the resource multi-GPU
        inference taps to cut latency (Sec. IV)."""
        return self.num_gpus * self.gpu.mem_bw

    def devices(self) -> list[DeviceId]:
        """Enumerate all GPUs in (node, local) order."""
        return [
            DeviceId(n, l)
            for n in range(self.num_nodes)
            for l in range(self.node.gpus_per_node)
        ]

    def device(self, global_rank: int) -> DeviceId:
        """Map a flat rank to a device, node-major."""
        if not 0 <= global_rank < self.num_gpus:
            raise IndexError(
                f"rank {global_rank} out of range for {self.num_gpus} GPUs"
            )
        g = self.node.gpus_per_node
        return DeviceId(global_rank // g, global_rank % g)

    def same_node(self, a: DeviceId, b: DeviceId) -> bool:
        """True when both devices share NVLink/NVSwitch."""
        return a.node == b.node

    def link_between(self, a: DeviceId, b: DeviceId) -> LinkSpec:
        """The link class used for traffic between two GPUs."""
        if a == b:
            raise ValueError("no link from a device to itself")
        return self.node.intra_link if self.same_node(a, b) else self.inter_link

    def gpu_host_link(self) -> LinkSpec:
        """PCIe link from one GPU to its host (possibly shared)."""
        return self.node.pcie


def dgx_a100_cluster(num_nodes: int = 32) -> ClusterSpec:
    """The paper's main cluster: up to 32 DGX A100 boxes (256 GPUs)."""
    node = NodeSpec(
        gpu=A100_40GB,
        gpus_per_node=8,
        intra_link=NVLINK3,
        pcie=PCIE4_X16,
        host=XEON_8280,
        nvme=None,
    )
    return ClusterSpec(name=f"DGX-A100 x{num_nodes}", node=node, num_nodes=num_nodes)


def lambda_a6000_workstation(num_gpus: int = 1) -> ClusterSpec:
    """Lambda workstation: 2x A6000, 256 GB DRAM, 2 TB NVMe (Sec. VII-A4)."""
    if not 1 <= num_gpus <= 2:
        raise ValueError("the Lambda workstation has at most 2 A6000 GPUs")
    host = CPUSpec(name="workstation-host", dram_bytes=256 * GB, dram_bw=80 * GB, fp32_flops=2.0e12)
    node = NodeSpec(
        gpu=A6000,
        gpus_per_node=num_gpus,
        intra_link=PCIE4_X16,  # no NVLink between A6000s in this box
        pcie=PCIE4_X16,
        host=host,
        nvme=NVME_SINGLE,
        pcie_group_size=1,
    )
    return ClusterSpec(name=f"Lambda-A6000 x{num_gpus}", node=node, num_nodes=1)


def dgx2_v100(num_gpus: int = 16) -> ClusterSpec:
    """DGX-2: 16x V100-32GB over NVSwitch, 1.5 TB DRAM, 30 TB NVMe."""
    if not 1 <= num_gpus <= 16:
        raise ValueError("a DGX-2 has at most 16 V100 GPUs")
    node = NodeSpec(
        gpu=V100_32GB,
        gpus_per_node=num_gpus,
        intra_link=NVLINK2,
        pcie=PCIE3_X16,
        host=XEON_8280,
        nvme=NVME_RAID,
    )
    return ClusterSpec(name=f"DGX-2 V100 x{num_gpus}", node=node, num_nodes=1)
