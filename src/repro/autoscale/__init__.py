"""Closed-loop fleet autoscaling and SLO remediation.

A control plane over :mod:`repro.fleet`: a detect → propose → verify →
schedule pipeline that watches live fleet signals (queue depth, rolling
P99 TTFT, outstanding-work EMA, replica health) and acts mid-trace —
scaling replicas out and in under a GPU budget, draining and replacing
crashed or throttled replicas, and shifting routing weights toward
healthy capacity.

Entry point: pass an :class:`AutoscaleConfig` (or a pre-built
:class:`Autoscaler`) as ``simulate_fleet(..., autoscaler=...)``; read
the outcome off the fleet report's ``autoscale_log`` and ``telemetry``.
:func:`tune_autoscaler` sweeps the knobs offline.
"""

from .actions import ACTION_KINDS, AutoscaleEvent, ScaleAction
from .controller import AutoscaleConfig, Autoscaler, resolve_autoscaler
from .policy import ScalePolicy
from .signals import FleetSignals, ReplicaSnapshot, SignalCollector
from .tuning import AutoscaleCandidate, AutoscaleTuningResult, tune_autoscaler

__all__ = [
    "ACTION_KINDS",
    "AutoscaleEvent",
    "ScaleAction",
    "AutoscaleConfig",
    "Autoscaler",
    "resolve_autoscaler",
    "ScalePolicy",
    "FleetSignals",
    "ReplicaSnapshot",
    "SignalCollector",
    "AutoscaleCandidate",
    "AutoscaleTuningResult",
    "tune_autoscaler",
]
