"""Propose stage: turn fleet signals into ranked scale actions.

The policy is deliberately mechanical — every number it emits is a
function of the signals and the config, with two pieces of internal
state (the sustain counters) that implement "don't react to one bad
epoch". Ranking follows the fix-scheduler shape: each action carries a
score in *expected P99 improvement per GPU-second spent*, so remediation
(replacing a dead replica: restores capacity for only the cold-start
cost) naturally outranks growth (scale-out: same cold start, smaller
marginal gain), which outranks shrink (scale-in: saves money, improves
nothing). The verifier adds an aging bonus on top for actions repeatedly
blocked by cooldowns.
"""

from __future__ import annotations

from .actions import ScaleAction
from .signals import FleetSignals, ReplicaSnapshot

__all__ = ["ScalePolicy"]


class ScalePolicy:
    """Emits ranked :class:`ScaleAction` proposals each control epoch.

    Holds the hysteresis *detection* state (how many consecutive epochs
    the fleet has looked overloaded/underloaded, which routing weights
    were last proposed); the *admission* state (cooldowns, budget,
    aging) lives in the verifier.
    """

    def __init__(self, config) -> None:
        self.cfg = config
        self._high_epochs = 0
        self._low_epochs = 0
        self._slow_epochs: dict[int, int] = {}
        self._weights_set: dict[int, float] = {}

    # -- load classification -------------------------------------------------

    def _overloaded(self, signals: FleetSignals) -> bool:
        cfg = self.cfg
        slo_breach = (signals.ttft_p99_s is not None
                      and signals.ttft_p99_s > cfg.ttft_slo_s)
        return slo_breach or signals.mean_queue_depth > cfg.queue_high_depth

    def _underloaded(self, signals: FleetSignals) -> bool:
        cfg = self.cfg
        slo_headroom = (signals.ttft_p99_s is None
                        or signals.ttft_p99_s < 0.5 * cfg.ttft_slo_s)
        return slo_headroom and signals.mean_queue_depth <= cfg.queue_low_depth

    # -- proposal ------------------------------------------------------------

    def propose(
        self,
        signals: FleetSignals,
        snapshots: list[ReplicaSnapshot],
        *,
        capacity_replicas: int,
        dead_unreplaced: list[int],
        cold_start_s: float,
    ) -> list[ScaleAction]:
        """Ranked actions for this epoch (highest score first).

        ``capacity_replicas`` counts routable replicas plus pending
        joins; ``dead_unreplaced`` lists crashed replicas for which no
        replacement has been admitted yet.
        """
        cfg = self.cfg
        actions: list[ScaleAction] = []

        if self._overloaded(signals):
            self._high_epochs += 1
            self._low_epochs = 0
        elif self._underloaded(signals):
            self._low_epochs += 1
            self._high_epochs = 0
        else:
            self._high_epochs = 0
            self._low_epochs = 0

        # Marginal P99 gain of one more replica, per GPU-second spent
        # bringing it up: queueing delay scales roughly with 1/capacity,
        # so adding a replica to n of them claws back ~p99/(n+1); the
        # spend is the cold start plus the epoch of lead time.
        pressure_s = (signals.ttft_p99_s
                      if signals.ttft_p99_s is not None else cfg.ttft_slo_s)
        gain_per_gpu_second = (
            pressure_s / (capacity_replicas + 1)
        ) / (cfg.epoch_s + cold_start_s)

        # Remediation: a dead replica costs capacity we already budgeted
        # for; replacing it is the highest-value action regardless of
        # sustain counters (an outage is not noise to be smoothed).
        for index in dead_unreplaced:
            actions.append(ScaleAction(
                kind="replace", replica=index,
                score=2.0 * gain_per_gpu_second + 1.0,
                reason=f"replica {index} is down"))

        # Slow-replica remediation: a replica producing well under its
        # *peers'* service rate drags the tail even while technically
        # alive. Detection is deliberately conservative — the replica
        # must be busy (an idle replica is not slow), must have been up
        # for a full measurement window (a just-booted replica's
        # partial-interval rate reads as near-zero, and replacing it
        # would churn the fleet forever), and must stay under the ratio
        # for ``sustain_epochs`` consecutive epochs — so a healthy
        # fleet's natural rate spread never triggers it. Once
        # confirmed, the weight shift shields the tail immediately
        # while the drain-and-replace boots fresh capacity.
        grace_s = cfg.resolved_window_s
        routable = [s for s in snapshots if s.routable]
        busy = [s for s in routable
                if s.active_depth > 0
                and signals.time_s - s.up_since_s >= grace_s
                and signals.service_rate.get(s.index, 0.0) > 0.0]
        for snap in routable:
            rate = signals.service_rate.get(snap.index, 0.0)
            peers = [signals.service_rate[s.index] for s in busy
                     if s.index != snap.index]
            if (snap.active_depth == 0 or rate <= 0.0 or not peers
                    or signals.time_s - snap.up_since_s < grace_s):
                self._slow_epochs.pop(snap.index, None)
                self._propose_weight(actions, snap.index, 1.0)
                continue
            rel = rate / (sum(peers) / len(peers))
            if rel < cfg.slow_replica_ratio:
                seen = self._slow_epochs.get(snap.index, 0) + 1
                self._slow_epochs[snap.index] = seen
                if seen >= cfg.sustain_epochs:
                    self._propose_weight(
                        actions, snap.index, max(0.25, rel))
                    actions.append(ScaleAction(
                        kind="replace", replica=snap.index,
                        score=gain_per_gpu_second * (1.0 - rel) + 0.5,
                        reason=(f"replica {snap.index} serves at "
                                f"{rel:.2f}x the peer rate")))
            else:
                self._slow_epochs.pop(snap.index, None)
                self._propose_weight(actions, snap.index, 1.0)

        # Growth: sustained overload.
        if self._high_epochs >= cfg.sustain_epochs:
            p99 = signals.ttft_p99_s
            actions.append(ScaleAction(
                kind="scale_out", score=gain_per_gpu_second,
                reason=(f"p99={'none' if p99 is None else f'{p99:.3f}s'}, "
                        f"queue={signals.queue_depth} "
                        f"over {self._high_epochs} epochs")))

        # Shrink: sustained headroom. Target the routable replica with
        # the least smoothed outstanding work (cheapest drain).
        if self._low_epochs >= cfg.sustain_epochs and routable:
            victim = min(
                routable,
                key=lambda s: (signals.outstanding_ema.get(s.index, 0.0),
                               s.index))
            actions.append(ScaleAction(
                kind="scale_in", replica=victim.index, score=0.1,
                reason=(f"queue={signals.queue_depth} under floor "
                        f"over {self._low_epochs} epochs")))

        actions.sort(key=lambda a: (-a.score, a.kind, a.replica or -1))
        return actions

    def notify_admitted(self, action: ScaleAction) -> None:
        """Reset the relevant sustain counter once an action is actually
        scheduled, so the next proposal re-observes from scratch instead
        of compounding on stale pressure."""
        if action.kind in ("scale_out", "replace"):
            self._high_epochs = 0
        elif action.kind == "scale_in":
            self._low_epochs = 0

    def _propose_weight(self, actions: list[ScaleAction], index: int,
                        weight: float) -> None:
        """Emit a reweight only when it moves the needle (>0.1 change)."""
        current = self._weights_set.get(index, 1.0)
        if abs(weight - current) > 0.1:
            self._weights_set[index] = weight
            actions.append(ScaleAction(
                kind="reweight", replica=index, weight=weight, score=0.2,
                reason=f"weight {current:.2f} -> {weight:.2f}"))
