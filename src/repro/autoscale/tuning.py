"""Sweep autoscaler knobs against one trace: ``tune_autoscaler``.

The offline companion to the online loop: given a workload trace and a
deployment cost model, grid-search the control knobs that actually move
the needle (control interval, overload watermark, sustain patience) and
pick the cheapest configuration that meets the TTFT SLO — ties broken
by tail latency. The sweep is exhaustive and deterministic; every
candidate's outcome comes back in the result table so a caller can plot
the trade-off rather than trust the argmin.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from .controller import AutoscaleConfig

__all__ = ["AutoscaleCandidate", "AutoscaleTuningResult", "tune_autoscaler"]


@dataclass(frozen=True)
class AutoscaleCandidate:
    """One swept configuration and its simulated outcome."""

    config: AutoscaleConfig
    ttft_p99_s: float
    avg_replicas: float
    makespan: float
    meets_slo: bool
    num_actions: int


@dataclass(frozen=True)
class AutoscaleTuningResult:
    """Outcome of :func:`tune_autoscaler`."""

    best: AutoscaleCandidate
    candidates: tuple[AutoscaleCandidate, ...]

    @property
    def table(self) -> list[dict]:
        """Row-per-candidate summary (JSON-friendly)."""
        return [
            {
                "epoch_s": c.config.epoch_s,
                "queue_high_depth": c.config.queue_high_depth,
                "sustain_epochs": c.config.sustain_epochs,
                "ttft_p99_s": c.ttft_p99_s,
                "avg_replicas": c.avg_replicas,
                "meets_slo": c.meets_slo,
                "num_actions": c.num_actions,
            }
            for c in self.candidates
        ]


def tune_autoscaler(
    trace,
    base: AutoscaleConfig,
    *,
    costs,
    max_batch: int,
    num_replicas: int | None = None,
    epoch_grid: Sequence[float] | None = None,
    queue_high_grid: Sequence[float] | None = None,
    sustain_grid: Sequence[int] = (1, 2, 3),
    policy: str = "fcfs",
    routing: str = "least_outstanding",
) -> AutoscaleTuningResult:
    """Grid-search autoscaler knobs for ``trace`` under ``base``.

    Sweeps ``epoch_s`` x ``queue_high_depth`` x ``sustain_epochs``
    around the base config (grids default to scaled variants of the
    base values), simulating the fleet once per candidate. Preference
    order: meet the SLO, then fewest average replicas (GPU cost), then
    lowest P99 TTFT. ``num_replicas`` seeds the fleet (defaults to the
    budget floor).
    """
    # Local import: repro.fleet imports repro.autoscale at module level,
    # so the reverse edge must stay function-scoped.
    from ..fleet.sim import simulate_fleet

    if epoch_grid is None:
        epoch_grid = (0.5 * base.epoch_s, base.epoch_s, 2.0 * base.epoch_s)
    if queue_high_grid is None:
        queue_high_grid = (0.5 * base.queue_high_depth,
                           base.queue_high_depth,
                           2.0 * base.queue_high_depth)
    start_replicas = (base.min_replicas if num_replicas is None
                      else num_replicas)

    candidates: list[AutoscaleCandidate] = []
    for epoch_s in epoch_grid:
        for high_depth in queue_high_grid:
            for sustain in sustain_grid:
                cfg = replace(
                    base,
                    epoch_s=epoch_s,
                    queue_high_depth=high_depth,
                    queue_low_depth=min(base.queue_low_depth, high_depth),
                    sustain_epochs=sustain,
                )
                report = simulate_fleet(
                    trace,
                    num_replicas=start_replicas,
                    costs=costs,
                    max_batch=max_batch,
                    policy=policy,
                    routing=routing,
                    autoscaler=cfg,
                    detail="summary",
                )
                p99 = report.ttft_percentile(trace, 99.0)
                candidates.append(AutoscaleCandidate(
                    config=cfg,
                    ttft_p99_s=p99,
                    avg_replicas=report.avg_replicas,
                    makespan=report.makespan,
                    meets_slo=p99 <= base.ttft_slo_s,
                    num_actions=len(report.autoscale_log),
                ))

    best = min(
        candidates,
        key=lambda c: (not c.meets_slo, c.avg_replicas, c.ttft_p99_s))
    return AutoscaleTuningResult(best=best, candidates=tuple(candidates))
