"""Signal collection: what the autoscaler sees each control epoch.

The detect stage of the detect → propose → verify → schedule pipeline.
The fleet simulator snapshots every replica's scheduler-visible state
(:class:`ReplicaSnapshot`) once per control epoch and hands the batch to
a :class:`SignalCollector`, which maintains the *derived* signals the
policy actually ranks on:

* rolling-window P99 time-to-first-token (the SLO metric);
* per-replica outstanding-work EMA (routing pressure, smoothed);
* per-replica service rate in tokens/s (a throttled or dying replica
  shows up here long before its queue visibly backs up);
* fleet-wide queue depth and slot utilization.

This module deliberately imports nothing from :mod:`repro.fleet`: the
fleet layer constructs the snapshots and calls the collector, so the
dependency arrow points fleet → autoscale only.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

__all__ = ["ReplicaSnapshot", "FleetSignals", "SignalCollector"]


@dataclass(frozen=True)
class ReplicaSnapshot:
    """One replica's scheduler-visible state at a control epoch.

    ``queue_depth`` counts requests waiting for a slot (including those
    routed but not yet enqueued); ``active_depth`` counts requests
    holding slots; ``outstanding_tokens`` is the router's
    token-denominated view of work assigned and unfinished;
    ``done_tokens`` is the monotone count of tokens the replica has
    produced across all its incarnations (service-rate numerator).
    ``up_since_s`` is when the *current* incarnation came up (its join,
    or its latest recovery) — rate comparisons must ignore replicas
    younger than the measurement window, whose partial-interval rates
    read as arbitrarily slow.
    """

    index: int
    alive: bool
    draining: bool
    retired: bool
    queue_depth: int
    active_depth: int
    outstanding_tokens: int
    done_tokens: int
    up_since_s: float = 0.0

    @property
    def routable(self) -> bool:
        """Whether the router may send this replica new work."""
        return self.alive and not self.draining and not self.retired


@dataclass(frozen=True)
class FleetSignals:
    """Derived fleet-health signals for one control epoch.

    ``ttft_p99_s`` is ``None`` until the rolling window holds at least
    one first-token sample. ``service_rate`` maps replica index to
    tokens/s produced since the previous epoch (0.0 for idle or dead
    replicas); ``outstanding_ema`` maps replica index to the smoothed
    outstanding-token load.
    """

    time_s: float
    live_replicas: int
    routable_replicas: int
    queue_depth: int
    mean_queue_depth: float
    ttft_p99_s: float | None
    slot_util: float
    outstanding_ema: dict[int, float]
    service_rate: dict[int, float]
    window_samples: int


class SignalCollector:
    """Maintains rolling/derived signals across control epochs.

    ``window_s`` bounds the TTFT percentile window; ``ema_alpha`` is the
    smoothing weight for per-replica outstanding work (1.0 = no
    smoothing). State is purely a function of the ``observe`` call
    sequence — no clocks, no RNG — so fleet replays stay bit-for-bit.
    """

    def __init__(self, *, window_s: float, ema_alpha: float = 0.3) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be > 0")
        if not 0.0 < ema_alpha <= 1.0:
            raise ValueError("ema_alpha must be in (0, 1]")
        self.window_s = window_s
        self.ema_alpha = ema_alpha
        self._ttft_window: deque[tuple[float, float]] = deque()
        self._outstanding_ema: dict[int, float] = {}
        self._done_tokens: dict[int, int] = {}
        self._last_time_s: float | None = None

    def observe(
        self,
        now: float,
        snapshots: list[ReplicaSnapshot],
        *,
        max_batch: int,
        ttft_samples: list[tuple[float, float]] = (),
    ) -> FleetSignals:
        """Fold one epoch's snapshots into the rolling state.

        ``ttft_samples`` are ``(first_token_time, ttft)`` pairs recorded
        since the previous epoch; they enter the rolling window and ones
        older than ``window_s`` fall out.
        """
        for sample in ttft_samples:
            self._ttft_window.append(sample)
        cutoff = now - self.window_s
        while self._ttft_window and self._ttft_window[0][0] < cutoff:
            self._ttft_window.popleft()

        dt = (0.0 if self._last_time_s is None
              else now - self._last_time_s)
        service_rate: dict[int, float] = {}
        outstanding_ema: dict[int, float] = {}
        alpha = self.ema_alpha
        for snap in snapshots:
            prev_done = self._done_tokens.get(snap.index, 0)
            made = snap.done_tokens - prev_done
            self._done_tokens[snap.index] = snap.done_tokens
            service_rate[snap.index] = (made / dt if dt > 0 else 0.0)
            prev_ema = self._outstanding_ema.get(
                snap.index, float(snap.outstanding_tokens))
            ema = alpha * snap.outstanding_tokens + (1.0 - alpha) * prev_ema
            self._outstanding_ema[snap.index] = ema
            outstanding_ema[snap.index] = ema
        self._last_time_s = now

        live = [s for s in snapshots if s.alive and not s.retired]
        routable = [s for s in snapshots if s.routable]
        total_queue_depth = sum(s.queue_depth for s in live)
        active = sum(s.active_depth for s in live)
        capacity_slots = len(live) * max_batch
        p99 = (float(np.percentile([t for _, t in self._ttft_window], 99))
               if self._ttft_window else None)
        return FleetSignals(
            time_s=now,
            live_replicas=len(live),
            routable_replicas=len(routable),
            queue_depth=total_queue_depth,
            mean_queue_depth=(total_queue_depth / len(routable)
                              if routable else float(total_queue_depth)),
            ttft_p99_s=p99,
            slot_util=(active / capacity_slots if capacity_slots else 0.0),
            outstanding_ema=outstanding_ema,
            service_rate=service_rate,
            window_samples=len(self._ttft_window),
        )
