"""Verify + schedule stages: the :class:`Autoscaler` control loop.

One :class:`Autoscaler` instance is the closed loop the fleet simulator
drives: every ``epoch_s`` of simulated time it receives replica
snapshots and fresh TTFT samples, folds them through its
:class:`~repro.autoscale.signals.SignalCollector`, asks its
:class:`~repro.autoscale.policy.ScalePolicy` for ranked proposals, and
admits a subset against the GPU budget (``min_replicas`` ..
``max_replicas``) and the hysteresis cooldowns. Actions blocked by a
cooldown accrue an aging bonus so persistent pressure eventually wins
over a recent scaling decision.

The cold-start price of a new replica is derived from the deployment's
own :class:`~repro.engine.costs.StepCostModel`: ``warmup_prompts``
prompt passes at the workload's mean prompt length — the same pricing
the simulator charges before the new replica serves traffic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..engine.costs import BatchState, PromptShape, StepCostModel
from .actions import ScaleAction
from .policy import ScalePolicy
from .signals import FleetSignals, ReplicaSnapshot, SignalCollector

__all__ = ["AutoscaleConfig", "Autoscaler", "resolve_autoscaler"]


@dataclass(frozen=True)
class AutoscaleConfig:
    """Knobs of the control loop.

    ``epoch_s`` is the control interval (how often signals are read and
    actions admitted); ``window_s`` the rolling TTFT window (defaults to
    eight epochs). ``ttft_slo_s`` + ``queue_high_depth`` define
    overload, ``queue_low_depth`` (with P99 at half the SLO) defines
    headroom; both must hold ``sustain_epochs`` consecutive epochs
    before the policy reacts. The cooldowns are the hysteresis band —
    ``scale_in_cooldown_s`` applies after *any* scale action, so the
    loop never sheds a replica it just paid to boot. ``cold_start_s``
    overrides the derived boot price (``warmup_prompts`` prompt passes
    at ``mean_prompt`` tokens via the fleet's cost model).
    """

    min_replicas: int
    max_replicas: int
    ttft_slo_s: float
    epoch_s: float = 1.0
    window_s: float | None = None
    queue_high_depth: float = 4.0
    queue_low_depth: float = 0.5
    scale_out_cooldown_s: float | None = None
    scale_in_cooldown_s: float | None = None
    sustain_epochs: int = 2
    cold_start_s: float | None = None
    warmup_prompts: int = 8
    mean_prompt: int = 128
    slow_replica_ratio: float = 0.4
    aging_bonus: float = 0.25
    ema_alpha: float = 0.3

    def __post_init__(self) -> None:
        if self.min_replicas < 1:
            raise ValueError("min_replicas must be >= 1")
        if self.max_replicas < self.min_replicas:
            raise ValueError("max_replicas must be >= min_replicas")
        if self.ttft_slo_s <= 0:
            raise ValueError("ttft_slo_s must be > 0")
        if self.epoch_s <= 0:
            raise ValueError("epoch_s must be > 0")
        if self.window_s is not None and self.window_s <= 0:
            raise ValueError("window_s must be > 0 when given")
        if self.queue_low_depth > self.queue_high_depth:
            raise ValueError(
                "queue_low_depth must not exceed queue_high_depth "
                "(the hysteresis band would invert)")
        if self.sustain_epochs < 1:
            raise ValueError("sustain_epochs must be >= 1")
        if self.cold_start_s is not None and self.cold_start_s < 0:
            raise ValueError("cold_start_s must be >= 0 when given")
        if self.warmup_prompts < 1 or self.mean_prompt < 1:
            raise ValueError("warmup_prompts and mean_prompt must be >= 1")
        if not 0.0 < self.slow_replica_ratio < 1.0:
            raise ValueError("slow_replica_ratio must be in (0, 1)")

    @property
    def resolved_window_s(self) -> float:
        """Rolling TTFT window: explicit, or eight control epochs."""
        return self.window_s if self.window_s is not None \
            else 8.0 * self.epoch_s

    @property
    def resolved_out_cooldown_s(self) -> float:
        """Scale-out cooldown: explicit, or four control epochs."""
        return self.scale_out_cooldown_s \
            if self.scale_out_cooldown_s is not None else 4.0 * self.epoch_s

    @property
    def resolved_in_cooldown_s(self) -> float:
        """Scale-in cooldown: explicit, or twelve control epochs (shrink
        must be much lazier than growth)."""
        return self.scale_in_cooldown_s \
            if self.scale_in_cooldown_s is not None else 12.0 * self.epoch_s


class Autoscaler:
    """The verify + schedule stages, bound to one fleet run.

    Construct from an :class:`AutoscaleConfig`, then the simulator calls
    :meth:`bind` once (deriving the cold-start price from the fleet's
    cost model) and :meth:`epoch` every control interval. An instance
    carries run state (cooldown clocks, aging, sustain counters) and
    must not be shared across runs — :meth:`bind` enforces this.
    """

    def __init__(self, config: AutoscaleConfig) -> None:
        self.config = config
        self.policy = ScalePolicy(config)
        self.collector = SignalCollector(
            window_s=config.resolved_window_s, ema_alpha=config.ema_alpha)
        self.cold_start_s: float | None = config.cold_start_s
        self._bound = False
        self._last_out_s = -math.inf
        self._last_in_s = -math.inf
        self._aging: dict[str, int] = {}
        self._replaced: set[int] = set()

    def bind(self, *, costs: StepCostModel, initial_replicas: int) -> None:
        """Attach to one fleet run; derives ``cold_start_s`` when the
        config left it ``None``."""
        if self._bound:
            raise RuntimeError(
                "an Autoscaler instance carries per-run state and may "
                "not be reused; construct a fresh one (or pass the "
                "AutoscaleConfig and let simulate_fleet construct it)")
        self._bound = True
        cfg = self.config
        if not cfg.min_replicas <= initial_replicas <= cfg.max_replicas:
            raise ValueError(
                f"num_replicas={initial_replicas} outside the autoscale "
                f"budget [{cfg.min_replicas}, {cfg.max_replicas}]")
        if self.cold_start_s is None:
            warm = costs.prompt_cost(
                BatchState(()), PromptShape(cfg.mean_prompt))
            self.cold_start_s = cfg.warmup_prompts * warm

    # -- the control epoch ---------------------------------------------------

    def epoch(
        self,
        now: float,
        snapshots: list[ReplicaSnapshot],
        *,
        pending_joins: int,
        max_batch: int,
        ttft_samples: list[tuple[float, float]] = (),
    ) -> tuple[FleetSignals, list[ScaleAction]]:
        """Run one detect → propose → verify pass.

        Returns the epoch's signals (for telemetry) and the *admitted*
        actions in application order; the simulator schedules them.
        """
        if not self._bound:
            raise RuntimeError("call bind() before epoch()")
        signals = self.collector.observe(
            now, snapshots, max_batch=max_batch, ttft_samples=ttft_samples)
        dead_unreplaced = [
            s.index for s in snapshots
            if not s.alive and not s.retired and s.index not in self._replaced
        ]
        capacity_replicas = signals.routable_replicas + pending_joins
        proposals = self.policy.propose(
            signals, snapshots,
            capacity_replicas=capacity_replicas,
            dead_unreplaced=dead_unreplaced,
            cold_start_s=self.cold_start_s,
        )
        admitted = self._verify(now, proposals, capacity_replicas)
        for action in admitted:
            self.policy.notify_admitted(action)
        return signals, admitted

    # -- verify --------------------------------------------------------------

    def _aging_key(self, action: ScaleAction) -> str:
        return f"{action.kind}:{action.replica}"

    def _verify(
        self,
        now: float,
        proposals: list[ScaleAction],
        capacity_replicas: int,
    ) -> list[ScaleAction]:
        """Admit proposals against budget, cooldowns and aging.

        Proposals are considered in aged-score order; each admission
        updates the working capacity so one epoch cannot blow through
        the budget with a burst of actions.
        """
        cfg = self.config
        bonus = cfg.aging_bonus

        def aged_score(action: ScaleAction) -> float:
            return action.score + bonus * self._aging.get(
                self._aging_key(action), 0)

        admitted: list[ScaleAction] = []
        proposed_keys: set[str] = set()
        for action in sorted(
                proposals,
                key=lambda a: (-aged_score(a), a.kind, a.replica or -1)):
            key = self._aging_key(action)
            proposed_keys.add(key)
            if action.kind == "reweight":
                admitted.append(action)  # budget-neutral, never blocked
                continue
            if action.kind == "scale_out":
                if capacity_replicas >= cfg.max_replicas:
                    continue  # hard budget: no aging, pressure is moot
                if now - self._last_out_s < cfg.resolved_out_cooldown_s:
                    self._aging[key] = self._aging.get(key, 0) + 1
                    continue
                self._last_out_s = now
                capacity_replicas += 1
            elif action.kind == "replace":
                if action.replica in self._replaced:
                    continue  # replacement already in flight
                if capacity_replicas >= cfg.max_replicas + 1:
                    continue  # the drain/boot overlap has a ceiling too
                self._replaced.add(action.replica)
                self._last_out_s = now  # a boot is a boot: arms hysteresis
            elif action.kind == "scale_in":
                if capacity_replicas <= cfg.min_replicas:
                    continue
                # Shrink sits behind BOTH cooldowns: never shed capacity
                # the loop just paid to boot (hysteresis), nor twice in
                # quick succession.
                if (now - self._last_out_s < cfg.resolved_in_cooldown_s
                        or now - self._last_in_s
                        < cfg.resolved_in_cooldown_s):
                    self._aging[key] = self._aging.get(key, 0) + 1
                    continue
                self._last_in_s = now
                capacity_replicas -= 1
            self._aging.pop(key, None)
            admitted.append(action)
        # Ambient pressure only ages while it is still being proposed.
        for key in [k for k in self._aging if k not in proposed_keys]:
            del self._aging[key]
        return admitted


def resolve_autoscaler(
    autoscaler: Autoscaler | AutoscaleConfig | None,
) -> Autoscaler | None:
    """Accept an :class:`Autoscaler`, a bare :class:`AutoscaleConfig`
    (wrapped in a fresh controller), or ``None``."""
    if autoscaler is None or isinstance(autoscaler, Autoscaler):
        return autoscaler
    if isinstance(autoscaler, AutoscaleConfig):
        return Autoscaler(autoscaler)
    raise TypeError(
        f"autoscaler must be an Autoscaler, AutoscaleConfig or None, "
        f"got {type(autoscaler).__name__}")
