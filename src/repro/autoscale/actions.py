"""Scale actions and the autoscale event log.

The currency of the propose → verify → schedule stages: the policy
emits ranked :class:`ScaleAction` proposals, the verifier admits a
subset, and the simulator applies them — recording every application
(and every informative rejection) as an :class:`AutoscaleEvent` on the
fleet report.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ScaleAction", "AutoscaleEvent", "ACTION_KINDS"]

#: scale_out adds one replica (live after the cold start); scale_in
#: drains one replica and retires it once idle; replace drains a slow
#: replica (no-op for a dead one) *and* adds a fresh replacement;
#: reweight adjusts one replica's routing weight without changing the
#: pool.
ACTION_KINDS = ("scale_out", "scale_in", "replace", "reweight")


@dataclass(frozen=True)
class ScaleAction:
    """One proposed (or admitted) control action.

    ``replica`` names the target for ``scale_in``/``replace``/
    ``reweight`` and is ``None`` for ``scale_out`` (the simulator
    assigns the new index). ``score`` is the policy's ranking value —
    expected P99 improvement per GPU-second, before the verifier's
    aging bonus. ``weight`` is only meaningful for ``reweight``.
    """

    kind: str
    replica: int | None = None
    weight: float = 1.0
    score: float = 0.0
    reason: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ACTION_KINDS:
            raise ValueError(
                f"kind must be one of {ACTION_KINDS}, got {self.kind!r}")
        if self.kind in ("scale_in", "replace", "reweight") \
                and self.replica is None:
            raise ValueError(f"a {self.kind} action must name a replica")
        if self.weight <= 0:
            raise ValueError("weight must be > 0")


@dataclass(frozen=True)
class AutoscaleEvent:
    """One entry of the fleet report's autoscale action log."""

    time_s: float
    kind: str
    replica: int | None = None
    detail: str = ""
