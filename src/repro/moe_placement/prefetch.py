"""Predictive prefetch of streamed experts and the skewed dispatch spec.

Experts demoted to the streamed tier (:func:`~repro.moe_placement.plan_placement`)
live off-GPU and must be fetched over PCIe before they can run. The
predictor names next step's likely-hot streamed experts; those are
prefetched into spare weight buffers while the dense layers compute —
the exact fetch/compute overlap pipeline of :mod:`repro.zero.streaming`.
A prefetch *hit* hides (most of) the fetch; a *miss* stalls dispatch for
one expert fetch.

:func:`simulate_expert_stream` replays a gate stream against a
predictor to measure the achievable hit rate (and the overlap residue,
via :func:`~repro.zero.streaming.simulate_layer_stream`);
:class:`SkewedDispatchSpec` packages the resulting pricing hooks —
``load_ratio`` and ``stall_time`` — that
:class:`~repro.engine.costs.MoEStepCost` consumes without importing
this package.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..zero.streaming import simulate_layer_stream
from .placement import ExpertPlacement, PlacementPlan
from .predictor import GateHistoryPredictor

__all__ = ["PrefetchReport", "SkewedDispatchSpec", "calibrated_dispatch",
           "simulate_expert_stream"]

# A predicted load ratio this close to 1.0 is summation noise, not skew —
# snap it so uniform placements price bit-for-bit like the mean-load model.
_RATIO_SNAP = 1e-9


@dataclass(frozen=True)
class PrefetchReport:
    """Outcome of replaying a gate stream through the prefetcher."""

    steps: int
    prefetch_hits: int
    prefetch_misses: int
    stall_s: float  # dispatch time lost to synchronous miss fetches
    overlap_residue_s: float  # hit-fetch time the pipeline failed to hide

    @property
    def hit_rate(self) -> float:
        """Fraction of streamed-expert demands covered by prefetch."""
        demand = self.prefetch_hits + self.prefetch_misses
        return self.prefetch_hits / demand if demand else 1.0


def simulate_expert_stream(
    stream: np.ndarray,
    streamed: tuple[int, ...],
    *,
    predictor: GateHistoryPredictor | None = None,
    prefetch_slots: int = 8,
    fetch_time_per_expert: float = 0.0,
    compute_time_per_step: float = 0.0,
    prefetch_depth: int = 1,
) -> PrefetchReport:
    """Replay a ``(steps, num_experts)`` gate stream through the prefetcher.

    Each step, the predictor's EMA (built from *previous* steps only)
    ranks the streamed experts; the ``prefetch_slots`` hottest are
    prefetched. Streamed experts the step actually routes tokens to are
    *hits* if prefetched, *misses* otherwise. Misses stall for one
    synchronous fetch each; hit fetches overlap with step compute via
    :func:`~repro.zero.streaming.simulate_layer_stream`, contributing
    only the overlap residue. Pass zero times to measure hit rate alone.
    """
    counts = np.asarray(stream, dtype=np.float64)
    if counts.ndim != 2 or counts.shape[0] < 1:
        raise ValueError("stream must be (steps, num_experts) with >= 1 step")
    if prefetch_slots < 0:
        raise ValueError("prefetch_slots must be >= 0")
    if fetch_time_per_expert < 0 or compute_time_per_step < 0:
        raise ValueError("times must be >= 0")
    num_experts = counts.shape[1]
    streamed_ids = np.asarray(sorted(set(int(e) for e in streamed)),
                              dtype=np.int64)
    if streamed_ids.size and not (
        0 <= streamed_ids.min() and streamed_ids.max() < num_experts
    ):
        raise ValueError("streamed expert id out of range")
    if predictor is None:
        predictor = GateHistoryPredictor(num_experts)
    elif predictor.num_experts != num_experts:
        raise ValueError("predictor/stream num_experts mismatch")

    hits = misses = 0
    stall_s = 0.0
    overlap_residue_s = 0.0
    residue_memo: dict[int, float] = {}
    for row in counts:
        predicted = predictor.predicted_loads()[streamed_ids]
        order = np.argsort(-predicted, kind="stable")
        prefetched = set(streamed_ids[order[:prefetch_slots]].tolist())
        needed = set(streamed_ids[row[streamed_ids] > 0].tolist())
        n_hit = len(needed & prefetched)
        n_miss = len(needed) - n_hit
        hits += n_hit
        misses += n_miss
        stall_s += n_miss * fetch_time_per_expert
        if n_hit and fetch_time_per_expert > 0 and compute_time_per_step > 0:
            if n_hit not in residue_memo:
                report = simulate_layer_stream(
                    num_layers=n_hit,
                    fetch_time_per_layer=fetch_time_per_expert,
                    compute_time_per_layer=compute_time_per_step / n_hit,
                    prefetch_depth=prefetch_depth,
                )
                residue_memo[n_hit] = report.makespan - report.compute_time
            overlap_residue_s += residue_memo[n_hit]
        predictor.update(row)
    return PrefetchReport(
        steps=counts.shape[0],
        prefetch_hits=hits,
        prefetch_misses=misses,
        stall_s=stall_s,
        overlap_residue_s=overlap_residue_s,
    )


@dataclass(frozen=True)
class SkewedDispatchSpec:
    """Everything the pricing layer needs to know about skewed dispatch.

    Duck-typed contract with :class:`~repro.engine.costs.MoEStepCost`
    (which never imports this package): ``load_ratio(tokens)`` scales
    the expert-FFN capacity and all-to-all volume by the straggler
    rank's share, ``stall_time(tokens)`` is the expected per-MoE-layer
    prefetch-miss stall.
    """

    probs: np.ndarray
    placement: ExpertPlacement
    top_k: int = 1
    streamed: tuple[int, ...] = ()
    prefetch_hit_rate: float = 0.0
    expert_fetch_time: float = 0.0

    def __post_init__(self) -> None:
        probs = np.asarray(self.probs, dtype=np.float64)
        if probs.shape != (self.placement.num_experts,):
            raise ValueError("probs must have one entry per expert")
        if (probs < 0).any() or probs.sum() <= 0:
            raise ValueError("probs must be non-negative and sum > 0")
        object.__setattr__(self, "probs", probs / probs.sum())
        if self.top_k < 1:
            raise ValueError("top_k must be >= 1")
        if not 0.0 <= self.prefetch_hit_rate <= 1.0:
            raise ValueError("prefetch_hit_rate must be in [0, 1]")
        if self.expert_fetch_time < 0:
            raise ValueError("expert_fetch_time must be >= 0")
        for ex in self.streamed:
            if not 0 <= ex < self.placement.num_experts:
                raise ValueError(f"streamed expert {ex} out of range")

    def expert_loads(self, tokens: int) -> np.ndarray:
        """Expected per-expert routed-token counts for one step."""
        return self.probs * (tokens * self.top_k)

    def load_ratio(self, tokens: int) -> float:
        """Straggler factor: max per-rank load over the mean (>= 1.0).

        Uniform gates on a balanced placement give exactly 1.0 — the
        compat guarantee that keeps unskewed pricing bit-for-bit
        identical to the mean-load model.
        """
        if tokens < 1:
            return 1.0
        ratio = self.placement.load_imbalance(self.expert_loads(tokens))
        return 1.0 if ratio < 1.0 + _RATIO_SNAP else ratio

    def expected_misses(self, tokens: int) -> float:
        """Expected prefetch misses per MoE layer per rank.

        A streamed expert is demanded when at least one of the step's
        ``tokens * top_k`` routed slots lands on it; ranks fetch their
        own streamed experts concurrently over independent PCIe links,
        so the per-layer stall scales with the mean per-rank miss count.
        """
        if not self.streamed or tokens < 1:
            return 0.0
        p = self.probs[list(self.streamed)]
        demand = 1.0 - np.power(1.0 - p, tokens * self.top_k)
        per_rank = demand.sum() / self.placement.ep_degree
        return float((1.0 - self.prefetch_hit_rate) * per_rank)

    def stall_time(self, tokens: int) -> float:
        """Expected per-MoE-layer dispatch stall from prefetch misses."""
        return self.expected_misses(tokens) * self.expert_fetch_time


def calibrated_dispatch(
    probs: np.ndarray,
    plan: PlacementPlan,
    stream: np.ndarray,
    *,
    top_k: int = 1,
    expert_fetch_time: float = 0.0,
    predictor: GateHistoryPredictor | None = None,
    prefetch_slots: int = 8,
) -> SkewedDispatchSpec:
    """Build a dispatch spec whose hit rate is *measured*, not assumed.

    Replays ``stream`` through the predictor against the plan's streamed
    set and bakes the achieved hit rate into the returned spec — the
    honest number the pricing layer then applies to every step.
    """
    report = simulate_expert_stream(
        stream,
        plan.streamed,
        predictor=predictor,
        prefetch_slots=prefetch_slots,
    )
    return SkewedDispatchSpec(
        probs=probs,
        placement=plan.placement,
        top_k=top_k,
        streamed=plan.streamed,
        prefetch_hit_rate=report.hit_rate,
        expert_fetch_time=expert_fetch_time,
    )
