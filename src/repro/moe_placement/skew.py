"""Skewed gate distributions and reproducible gate streams.

The paper's MoE serving results (Table II, Fig. 15) price dispatch as if
tokens spread evenly over experts; measured gate statistics are heavily
Zipf-skewed ("Fast MoE Inference via Predictive Prefetching and Expert
Replication"). This module synthesizes that skew reproducibly: a
Zipf(s) probability vector over experts (with a seeded permutation
deciding *which* experts are hot), per-step token-count streams drawn
from it, and skewed gate logits for exercising the gating kernels —
all seeded through :mod:`repro.rng` so benchmarks and tests replay
bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from ..rng import SeedLike, as_generator

__all__ = [
    "zipf_expert_probs",
    "synthesize_gate_stream",
    "zipf_gate_logits",
]


def zipf_expert_probs(
    num_experts: int, skew: float, *, seed: SeedLike = 0
) -> np.ndarray:
    """Stationary per-expert gate probabilities under Zipf(``skew``).

    Expert popularity follows ``rank**-skew`` (normalized); ``skew=0``
    is the uniform distribution every expert-parallel cost model assumed
    before this module. The seeded permutation assigns popularity ranks
    to expert ids, so two call sites sharing a seed agree on which
    experts are hot.
    """
    if num_experts < 1:
        raise ValueError("num_experts must be >= 1")
    if skew < 0:
        raise ValueError("skew must be >= 0 (0 = uniform)")
    rng = as_generator(seed)
    weights = np.arange(1, num_experts + 1, dtype=np.float64) ** -skew
    probs = weights / weights.sum()
    perm = rng.permutation(num_experts)
    out = np.empty(num_experts)
    out[perm] = probs  # expert perm[rank] gets popularity rank `rank`
    return out


def synthesize_gate_stream(
    num_steps: int,
    tokens_per_step: int,
    probs: np.ndarray,
    *,
    seed: SeedLike = 0,
) -> np.ndarray:
    """Per-step expert token counts: ``(num_steps, num_experts)`` ints.

    Each row is one decode/prompt iteration's gate outcome — a
    multinomial draw of ``tokens_per_step`` tokens over ``probs``. This
    is the stream :class:`~repro.moe_placement.GateHistoryPredictor`
    consumes and :func:`~repro.moe_placement.simulate_expert_stream`
    replays.
    """
    if num_steps < 1 or tokens_per_step < 1:
        raise ValueError("num_steps and tokens_per_step must be >= 1")
    probs = np.asarray(probs, dtype=np.float64)
    if probs.ndim != 1 or probs.size < 1 or (probs < 0).any():
        raise ValueError("probs must be a non-negative 1-D vector")
    rng = as_generator(seed)
    return rng.multinomial(tokens_per_step, probs / probs.sum(),
                           size=num_steps)


def zipf_gate_logits(
    num_tokens: int,
    num_experts: int,
    skew: float,
    *,
    seed: SeedLike = 0,
    sharpness: float = 6.0,
) -> np.ndarray:
    """Gate logits whose argmax distribution is Zipf(``skew``)-skewed.

    Each token draws a preferred expert from
    :func:`zipf_expert_probs` and receives a logit bump of
    ``sharpness`` there over unit Gaussian noise — skewed enough to
    stress capacity overflow in the gating kernels while keeping
    realistic near-ties for the tie-breaking paths.
    """
    if num_tokens < 1:
        raise ValueError("num_tokens must be >= 1")
    rng = as_generator(seed)
    probs = zipf_expert_probs(num_experts, skew, seed=rng)
    preferred = rng.choice(num_experts, size=num_tokens, p=probs)
    logits = rng.standard_normal((num_tokens, num_experts))
    logits[np.arange(num_tokens), preferred] += sharpness
    return logits
