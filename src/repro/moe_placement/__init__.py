"""Skew-aware expert placement, replication, and predictive prefetch.

The paper's MoE pricing (Sec. V) assumes tokens spread evenly over
experts; measured gate distributions are Zipf-skewed, making the rank
that owns the hottest expert the dispatch straggler. This package holds
the counter-measures from "Fast MoE Inference via Predictive Prefetching
and Expert Replication": synthesize the skew (:mod:`.skew`), predict it
(:mod:`.predictor`), place and replicate experts against it
(:mod:`.placement`), and hide the streamed-expert fetches behind compute
(:mod:`.prefetch`). The resulting :class:`SkewedDispatchSpec` plugs into
:class:`~repro.engine.costs.MoEStepCost` to price skewed dispatch
end-to-end through the serving simulator.
"""

from .placement import (
    ExpertPlacement,
    PlacementPlan,
    plan_placement,
    uniform_placement,
)
from .predictor import GateHistoryPredictor, gating_counts
from .prefetch import (
    PrefetchReport,
    SkewedDispatchSpec,
    calibrated_dispatch,
    simulate_expert_stream,
)
from .skew import synthesize_gate_stream, zipf_expert_probs, zipf_gate_logits

__all__ = [
    "ExpertPlacement",
    "GateHistoryPredictor",
    "PlacementPlan",
    "PrefetchReport",
    "SkewedDispatchSpec",
    "calibrated_dispatch",
    "gating_counts",
    "plan_placement",
    "simulate_expert_stream",
    "synthesize_gate_stream",
    "uniform_placement",
    "zipf_expert_probs",
    "zipf_gate_logits",
]
