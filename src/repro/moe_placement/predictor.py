"""Gate-history prediction: who is hot next step, from who was hot so far.

Gate distributions drift slowly relative to the decode cadence, so an
exponential moving average over per-expert token counts is a strong
next-step predictor ("Fast MoE Inference via Predictive Prefetching and
Expert Replication" uses exactly this family). The predictor consumes
either raw per-expert count vectors (one per iteration, e.g. rows of
:func:`~repro.moe_placement.synthesize_gate_stream`) or live
:class:`~repro.model.gating.TopKGatingResult` objects from the
functional gating path, and answers the two questions the placement and
prefetch layers ask: *expected per-expert load next step* and *the n
hottest / coldest experts*.
"""

from __future__ import annotations

import numpy as np

from ..model.gating import TopKGatingResult

__all__ = ["GateHistoryPredictor", "gating_counts"]


def gating_counts(result: TopKGatingResult) -> np.ndarray:
    """Per-expert routed-token counts of one gating outcome.

    Counts every kept ``(token, choice)`` pair — the token volume each
    expert's FFN actually processes, which is what placement balances.
    """
    kept = result.token_expert[result.kept_pairs()]
    return np.bincount(kept, minlength=result.num_experts).astype(np.float64)


class GateHistoryPredictor:
    """EMA over per-expert token counts; predicts next-step expert load.

    ``alpha`` is the EMA weight of the newest observation: high values
    chase bursts, low values smooth them. The first update seeds the EMA
    directly (no zero-bias warm-up), so a single observed step already
    yields a usable prediction.
    """

    def __init__(self, num_experts: int, *, alpha: float = 0.25) -> None:
        if num_experts < 1:
            raise ValueError("num_experts must be >= 1")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.num_experts = num_experts
        self.alpha = alpha
        self.steps_observed = 0
        self._ema_tokens = np.zeros(num_experts)

    def update(self, observation: TopKGatingResult | np.ndarray) -> None:
        """Fold one iteration's gate outcome into the history."""
        if isinstance(observation, TopKGatingResult):
            counts = gating_counts(observation)
        else:
            counts = np.asarray(observation, dtype=np.float64)
        if counts.shape != (self.num_experts,):
            raise ValueError(
                f"expected {self.num_experts} per-expert counts, got shape "
                f"{counts.shape}")
        if (counts < 0).any():
            raise ValueError("token counts must be non-negative")
        if self.steps_observed == 0:
            self._ema_tokens = counts.copy()
        else:
            self._ema_tokens = (
                self.alpha * counts + (1.0 - self.alpha) * self._ema_tokens)
        self.steps_observed += 1

    def predicted_loads(self) -> np.ndarray:
        """Expected per-expert token counts next step (EMA state)."""
        return self._ema_tokens.copy()

    def predicted_probs(self) -> np.ndarray:
        """Predicted gate distribution (uniform before any update)."""
        total = self._ema_tokens.sum()
        if total <= 0:
            return np.full(self.num_experts, 1.0 / self.num_experts)
        return self._ema_tokens / total

    def hot_experts(self, n: int | None = None) -> np.ndarray:
        """Expert ids sorted hottest-first (ties broken by lower id),
        truncated to the ``n`` hottest when given."""
        order = np.argsort(-self._ema_tokens, kind="stable")
        return order if n is None else order[: max(0, n)]

    def cold_experts(self, n: int | None = None) -> np.ndarray:
        """Expert ids sorted coldest-first, truncated to ``n``."""
        order = self.hot_experts()[::-1]
        return order if n is None else order[: max(0, n)]
