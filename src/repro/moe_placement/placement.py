"""Expert-to-rank placement with replication: balance the straggler away.

Expert parallelism (Sec. V-A) assigns each expert to exactly one rank;
under a skewed gate distribution the rank owning the hottest expert
becomes the dispatch straggler — every all-to-all and every expert-FFN
wave waits for it. The fix from "Fast MoE Inference via Predictive
Prefetching and Expert Replication": *replicate* the hottest experts
across several ranks (each replica serves an equal share of its
tokens), paying for the extra resident copies by demoting the coldest
experts to a *streamed* tier that is fetched on demand (and hidden by
predictive prefetch, :mod:`repro.moe_placement.prefetch`).

:func:`plan_placement` performs the load-balanced bin packing over
predicted per-expert token loads; :class:`ExpertPlacement` answers the
load questions the pricing layer asks (per-rank token loads, the
max/mean imbalance ratio).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..parallel.expert_parallel import expert_partition

__all__ = ["ExpertPlacement", "PlacementPlan", "plan_placement",
           "uniform_placement"]


@dataclass(frozen=True)
class ExpertPlacement:
    """Which experts each expert-parallel rank serves.

    ``ranks[r]`` is the tuple of expert ids rank ``r`` hosts; an expert
    appearing on several ranks is *replicated* and each replica serves
    an equal share of its tokens. Streamed (non-resident) experts still
    appear on exactly one rank — the rank that fetches and runs them on
    demand; residency is tracked by the dispatch spec, not here.
    """

    ranks: tuple[tuple[int, ...], ...]
    num_experts: int

    def __post_init__(self) -> None:
        if self.num_experts < 1 or not self.ranks:
            raise ValueError("need >= 1 expert and >= 1 rank")
        seen = np.zeros(self.num_experts, dtype=np.int64)
        for hosted in self.ranks:
            if len(set(hosted)) != len(hosted):
                raise ValueError("an expert may appear once per rank")
            for ex in hosted:
                if not 0 <= ex < self.num_experts:
                    raise ValueError(f"expert {ex} out of range")
                seen[ex] += 1
        if (seen < 1).any():
            missing = np.flatnonzero(seen < 1).tolist()
            raise ValueError(f"experts {missing} are assigned to no rank")

    @property
    def ep_degree(self) -> int:
        """Number of expert-parallel ranks."""
        return len(self.ranks)

    @property
    def replicas(self) -> np.ndarray:
        """Per-expert replica count across all ranks."""
        counts = np.zeros(self.num_experts, dtype=np.int64)
        for hosted in self.ranks:
            for ex in hosted:
                counts[ex] += 1
        return counts

    def replication_of(self, expert: int) -> int:
        """How many ranks host ``expert``."""
        if not 0 <= expert < self.num_experts:
            raise IndexError(f"expert {expert} out of range")
        return int(self.replicas[expert])

    def rank_loads(self, expert_loads: np.ndarray) -> np.ndarray:
        """Per-rank token loads given per-expert token loads.

        A replicated expert's load splits evenly across its replicas —
        the dispatch layer shards its tokens round-robin over the
        hosting ranks.
        """
        loads = np.asarray(expert_loads, dtype=np.float64)
        if loads.shape != (self.num_experts,):
            raise ValueError(
                f"expected {self.num_experts} expert loads, got shape "
                f"{loads.shape}")
        share = loads / self.replicas
        return np.array([share[list(hosted)].sum() if hosted else 0.0
                         for hosted in self.ranks])

    def load_imbalance(self, expert_loads: np.ndarray) -> float:
        """Max/mean per-rank load ratio — the straggler factor skew-aware
        pricing applies to the expert-FFN and all-to-all terms. Exactly
        ``1.0`` for a balanced assignment; never below 1."""
        rank = self.rank_loads(expert_loads)
        total = rank.sum()
        if total <= 0:
            return 1.0
        return max(1.0, float(rank.max() * self.ep_degree / total))


@dataclass(frozen=True)
class PlacementPlan:
    """Outcome of :func:`plan_placement`: the assignment plus the
    residency decisions that funded it."""

    placement: ExpertPlacement
    streamed: tuple[int, ...]  # demoted experts, fetched on demand
    replication: int
    num_hot: int
    slots_per_rank: int


def uniform_placement(num_experts: int, ep_degree: int) -> ExpertPlacement:
    """The paper's baseline assignment: contiguous ranges, one replica
    each (uneven remainders spread one-per-rank, matching
    :func:`~repro.parallel.expert_parallel.expert_partition`)."""
    parts = expert_partition(num_experts, ep_degree)
    return ExpertPlacement(
        ranks=tuple(tuple(p) for p in parts), num_experts=num_experts)


def plan_placement(
    expert_loads: np.ndarray,
    ep_degree: int,
    *,
    replication: int = 1,
    num_hot: int | None = None,
    slots_per_rank: int | None = None,
) -> PlacementPlan:
    """Assign experts to ranks balancing predicted load, replicating the
    hot head of the distribution.

    The ``num_hot`` hottest experts get ``replication`` replicas each.
    Every rank holds at most ``slots_per_rank`` *resident* experts
    (default ``ceil(E / ep)`` — the same GPU memory a uniform placement
    uses, so replication is memory-neutral); replica copies that exceed
    the free slots are funded by demoting the coldest experts to the
    streamed tier, which consumes no resident slot. Resident instances
    are packed LPT-style (heaviest instance onto the least-loaded rank
    with a free slot); streamed experts then land on the least-loaded
    ranks.
    """
    loads = np.asarray(expert_loads, dtype=np.float64)
    if loads.ndim != 1 or loads.size < 1:
        raise ValueError("expert_loads must be a 1-D vector")
    if (loads < 0).any():
        raise ValueError("expert loads must be non-negative")
    num_experts = loads.size
    if ep_degree < 1 or ep_degree > num_experts:
        raise ValueError("need 1 <= ep_degree <= num_experts")
    if replication < 1 or replication > ep_degree:
        raise ValueError("need 1 <= replication <= ep_degree")
    if slots_per_rank is None:
        slots_per_rank = math.ceil(num_experts / ep_degree)
    if slots_per_rank < 1:
        raise ValueError("slots_per_rank must be >= 1")
    hottest_first = np.argsort(-loads, kind="stable")
    if num_hot is None:
        num_hot = max(1, num_experts // 16) if replication > 1 else 0
    if not 0 <= num_hot <= num_experts:
        raise ValueError("need 0 <= num_hot <= num_experts")
    if replication == 1:
        num_hot = 0

    spare_slots = ep_degree * slots_per_rank - num_experts
    extra_copies = num_hot * (replication - 1)
    demoted = max(0, extra_copies - spare_slots)
    if demoted > num_experts - num_hot:
        raise ValueError(
            f"replicating {num_hot} experts x{replication} needs demoting "
            f"{demoted} of {num_experts - num_hot} cold experts — lower "
            f"num_hot, replication, or raise slots_per_rank")
    hot = set(int(e) for e in hottest_first[:num_hot])
    streamed = tuple(
        int(e) for e in hottest_first[::-1]
        if int(e) not in hot
    )[:demoted]
    streamed_set = set(streamed)

    # Resident instances, heaviest per-instance load first (LPT).
    instances: list[tuple[float, int]] = []
    for ex in range(num_experts):
        if ex in streamed_set:
            continue
        copies = replication if ex in hot else 1
        instances.extend([(loads[ex] / copies, ex)] * copies)
    instances.sort(key=lambda it: (-it[0], it[1]))

    rank_load = np.zeros(ep_degree)
    rank_free = np.full(ep_degree, slots_per_rank, dtype=np.int64)
    hosted: list[list[int]] = [[] for _ in range(ep_degree)]
    for inst_load, ex in instances:
        order = np.argsort(rank_load, kind="stable")
        dest = next(
            (int(r) for r in order if rank_free[r] > 0 and ex not in hosted[r]),
            None)
        if dest is None:  # replication exceeds distinct free ranks
            raise ValueError(
                f"no rank can host another replica of expert {ex}")
        hosted[dest].append(ex)
        rank_free[dest] -= 1
        rank_load[dest] += inst_load

    # Streamed experts ride on the least-loaded ranks (no slot needed).
    for ex in sorted(streamed_set, key=lambda e: (-loads[e], e)):
        dest = int(np.argsort(rank_load, kind="stable")[0])
        hosted[dest].append(ex)
        rank_load[dest] += loads[ex]

    placement = ExpertPlacement(
        ranks=tuple(tuple(h) for h in hosted), num_experts=num_experts)
    return PlacementPlan(
        placement=placement,
        streamed=tuple(sorted(streamed_set)),
        replication=replication,
        num_hot=num_hot,
        slots_per_rank=slots_per_rank,
    )
