"""Expert parallelism: distributed MoE dispatch over all-to-all (Sec. V-A).

Experts partition across ranks; every rank routes its own tokens (gating
is data-parallel and local), sends each token to the rank owning its
expert with an all-to-all, receives foreign tokens for its local experts,
applies the expert FFNs, and returns results with a second all-to-all.

Distribution must not change the math: the test suite checks each rank's
output equals running the full (single-process) MoE layer on that rank's
tokens.
"""

from __future__ import annotations

import numpy as np

from ..comm.functional import Communicator
from ..model.moe import MoELayer

__all__ = ["expert_partition", "ep_moe_forward", "expert_sliced_ffn"]


def expert_partition(num_experts: int, ep_degree: int) -> list[range]:
    """Contiguous expert ranges owned by each of ``ep_degree`` ranks.

    Uneven splits are allowed: the first ``num_experts % ep_degree``
    ranks own one extra expert, so rank sizes differ by at most one.
    """
    if ep_degree < 1:
        raise ValueError("ep_degree must be >= 1")
    if ep_degree > num_experts:
        raise ValueError(
            f"cannot spread {num_experts} experts over {ep_degree} ranks"
        )
    base, rem = divmod(num_experts, ep_degree)
    parts: list[range] = []
    start = 0
    for r in range(ep_degree):
        size = base + (1 if r < rem else 0)
        parts.append(range(start, start + size))
        start += size
    return parts


def expert_sliced_ffn(
    comm: Communicator, layer: MoELayer, expert: int, tokens: np.ndarray
) -> np.ndarray:
    """One expert's FFN tensor-sliced across ``comm`` — Table II's
    "expert-slicing" (Sec. V-A: expert parameters split like tensor
    slicing when a single expert exceeds one GPU's bandwidth budget).

    Column-shards the up-projection (GeLU stays local to the shard),
    row-shards the down-projection, and all-reduces the partial outputs —
    the same two-shard structure as a Megatron FFN, applied to one
    expert. Matches :meth:`MoELayer.expert_ffn` exactly.
    """
    from ..kernels.functional import gelu  # local import avoids cycles

    if not 0 <= expert < layer.num_experts:
        raise IndexError(f"expert {expert} out of range")
    m = layer.w_fc.shape[2]
    if m % comm.size:
        raise ValueError(
            f"FFN width {m} not divisible by slicing degree {comm.size}"
        )
    cols = m // comm.size
    lo, hi = comm.rank * cols, (comm.rank + 1) * cols
    h = gelu(tokens @ layer.w_fc[expert][:, lo:hi] + layer.b_fc[expert][lo:hi])
    partial = h @ layer.w_proj[expert][lo:hi, :]
    return comm.allreduce(partial) + layer.b_proj[expert]


def _ep_dispatch(
    comm: Communicator,
    layer: MoELayer,
    x2d: np.ndarray,
    token_expert: np.ndarray,
    weights: np.ndarray,
    out2d: np.ndarray,
) -> None:
    """One dispatch/compute/combine round for a flat token->expert map.

    ``token_expert[t] == -1`` marks dropped tokens. Results accumulate
    into ``out2d`` scaled by ``weights`` (supports top-k accumulation).
    """
    parts = expert_partition(layer.num_experts, comm.size)
    starts = np.array([p.start for p in parts], dtype=np.int64)
    owner = np.where(
        token_expert >= 0,
        np.searchsorted(starts, token_expert, side="right") - 1,
        -1,
    )

    # Step 1+2 of Fig. 5: local split by destination rank, then all-to-all.
    send_tokens, send_experts, local_idx = [], [], []
    for dst in range(comm.size):
        idx = np.flatnonzero(owner == dst)
        local_idx.append(idx)
        send_tokens.append(x2d[idx])
        send_experts.append(
            (token_expert[idx] - starts[dst]).astype(np.int64)
        )
    recv_tokens = comm.alltoall(send_tokens)
    recv_experts = comm.alltoall(send_experts)

    # Local expert computation, preserving each source block's row order.
    replies = []
    for src in range(comm.size):
        toks = recv_tokens[src]
        exps = recv_experts[src]
        out = np.zeros_like(toks)
        for local_e in np.unique(exps) if len(exps) else []:
            sel = exps == local_e
            out[sel] = layer.expert_ffn(
                int(local_e) + int(starts[comm.rank]), toks[sel]
            )
        replies.append(out)

    # Return trip: the combine all-to-all.
    returned = comm.alltoall(replies)
    for dst in range(comm.size):
        idx = local_idx[dst]
        if idx.size:
            out2d[idx] += returned[dst] * weights[idx, None]


def ep_moe_forward(
    comm: Communicator, layer: MoELayer, x_local: np.ndarray, *, k: int = 1
) -> np.ndarray:
    """Run ``layer`` with experts sharded across ``comm``'s ranks.

    ``x_local`` is this rank's ``(tokens, hidden)`` (or ``(..., hidden)``)
    slice of the batch — the data parallelism of Sec. V-A that scales the
    non-expert computation "at no communication overhead". ``k > 1``
    routes each token to its top-k experts (one dispatch round per
    choice rank, weighted combine).
    """
    if comm.size > layer.num_experts:
        raise ValueError(
            f"cannot spread {layer.num_experts} experts over {comm.size} ranks"
        )
    shape = x_local.shape
    x2d = x_local.reshape(-1, shape[-1])
    out2d = np.zeros_like(x2d)

    if k == 1:
        gating = layer.route(x2d)
        weights = np.where(gating.dropped, 0.0, gating.gate_prob)
        _ep_dispatch(comm, layer, x2d, gating.token_expert, weights, out2d)
    else:
        gating = layer.route_topk(x2d, k)
        for choice in range(k):
            _ep_dispatch(
                comm,
                layer,
                x2d,
                gating.token_expert[:, choice],
                gating.gate_weight[:, choice],
                out2d,
            )
    return out2d.reshape(shape)
