"""Parallel execution: tensor slicing, pipeline stages and schedules,
expert parallelism, and the placement planner (Secs. IV and V)."""

from .expert_parallel import ep_moe_forward, expert_partition, expert_sliced_ffn
from .hybrid import HybridGroups, hybrid_moe_block, make_hybrid_groups
from .pipeline import StagePlan, partition_layers, staged_forward
from .pipeline_exec import pipeline_generate_rank, pipeline_spmd_generate
from .planner import ParallelPlan, PlanError, memory_per_gpu, plan_dense
from .schedules import (
    ScheduleKind,
    ScheduleResult,
    dynamic_queue_span,
    fill_drain_span,
    simulate_pipeline,
)
from .quantized import (
    QuantizedColumnParallelLinear,
    QuantizedRowParallelLinear,
    shard_quantize_column,
    shard_quantize_row,
)
from .tensor_parallel import ShardedLayerWeights, shard_layer, tp_forward, tp_spmd_forward

__all__ = [
    "ParallelPlan",
    "QuantizedColumnParallelLinear",
    "QuantizedRowParallelLinear",
    "shard_quantize_column",
    "shard_quantize_row",
    "PlanError",
    "ScheduleKind",
    "ScheduleResult",
    "ShardedLayerWeights",
    "StagePlan",
    "dynamic_queue_span",
    "HybridGroups",
    "ep_moe_forward",
    "hybrid_moe_block",
    "make_hybrid_groups",
    "expert_partition",
    "expert_sliced_ffn",
    "fill_drain_span",
    "memory_per_gpu",
    "partition_layers",
    "pipeline_generate_rank",
    "pipeline_spmd_generate",
    "plan_dense",
    "shard_layer",
    "simulate_pipeline",
    "staged_forward",
    "tp_forward",
    "tp_spmd_forward",
]
