"""Combined tensor + expert (+ data) parallel MoE execution — Fig. 4,
functionally.

DeepSpeed-MoE orchestrates three process groups over the same ranks
(Sec. V-A):

* **tensor-parallel groups** of size ``mp`` slice the attention (and any
  dense FFN) weights;
* **expert parallelism** spreads experts over all ranks, with each
  tensor-parallel group's *first* axis carrying distinct experts and the
  data replicated across the tensor ranks (which is precisely the
  replication PCC exploits, Sec. V-B);
* **data parallelism** replicates the non-expert parameters across the
  expert-parallel dimension at no communication cost.

:func:`hybrid_moe_block` runs one MoE transformer block under this
orchestration on the in-process communicator: attention is
tensor-parallel within the ``mp`` subgroup, then each tensor rank
dispatches tokens over the expert-parallel subgroup it belongs to (the
ranks sharing its tensor-slicing rank — PCC's subgroup). The test suite
verifies the result equals the single-process reference for every
(mp, ep) factorization of the world.
"""

from __future__ import annotations

import numpy as np

from ..comm.functional import Communicator
from ..kernels.functional import layer_norm
from ..model.dense import DenseTransformer
from ..model.moe import MoELayer
from .expert_parallel import ep_moe_forward
from .tensor_parallel import _tp_attention, shard_layer

__all__ = ["HybridGroups", "make_hybrid_groups", "hybrid_moe_block"]


class HybridGroups:
    """The two sub-communicators of one rank under MP x EP orchestration."""

    def __init__(self, comm: Communicator, mp: int) -> None:
        if comm.size % mp:
            raise ValueError(
                f"mp={mp} must divide world size {comm.size}"
            )
        self.world = comm
        self.mp = mp
        self.ep = comm.size // mp
        # Ranks [k*mp, (k+1)*mp) form tensor-parallel group k.
        self.tp_comm = comm.split(color=("tp", comm.rank // mp))
        # Ranks sharing a tensor-slicing rank form one expert-parallel
        # group — exactly PCC's all-to-all subgroup (Sec. V-B).
        self.ep_comm = comm.split(color=("ep", comm.rank % mp))

    @property
    def tp_rank(self) -> int:
        """This rank's position within its tensor-parallel group."""
        return self.tp_comm.rank

    @property
    def ep_rank(self) -> int:
        """This rank's position within its expert-parallel group."""
        return self.ep_comm.rank


def make_hybrid_groups(comm: Communicator, mp: int) -> HybridGroups:
    """Build the MP/EP sub-communicators for this rank."""
    return HybridGroups(comm, mp)


def hybrid_moe_block(
    groups: HybridGroups,
    model: DenseTransformer,
    moe: MoELayer,
    layer_idx: int,
    x: np.ndarray,
    cache=None,
) -> np.ndarray:
    """One transformer block: TP attention + EP mixture-of-experts FFN.

    ``x`` is the (replicated) activation every rank holds — data
    parallelism replicates the batch across expert-parallel groups, and
    the tensor-parallel all-reduce keeps it replicated within each group.
    """
    cfg = model.config
    sw = shard_layer(model.layers[layer_idx], cfg.heads, groups.tp_rank,
                     groups.mp)
    x = _tp_attention(x, sw, groups.tp_comm, layer_idx, cache,
                      rotary=cfg.pos_encoding == "rotary")

    # MoE FFN: the activation is replicated across tensor ranks after the
    # attention all-reduce, so each tensor rank dispatches over only its
    # own expert-parallel subgroup (PCC's insight) and all arrive at the
    # same answer with no further synchronization.
    lw = model.layers[layer_idx]
    normed = layer_norm(x, lw.ln2_g, lw.ln2_b)
    expert_out = ep_moe_forward(groups.ep_comm, moe, normed)
    return x + expert_out
