"""Inference pipeline schedules (Sec. IV-C1, Figs. 2 and 3), simulated.

Three schedules are modeled, all over the same discrete-event machinery
so their differences are purely the scheduling policy:

* **token-lockstep (baseline)** — Fig. 2a: generation proceeds at batch
  granularity; every micro-batch must finish token ``t`` before any
  starts token ``t+1``, re-incurring a fill/drain bubble of ``P - 1``
  stage-times per generated token.
* **dynamic queue (DeepSpeed)** — Fig. 2b: a micro-batch's next token is
  queued the moment its previous token leaves the last stage, amortizing
  a single fill/drain bubble over the entire generation.
* **hybrid** — Fig. 3: prompt processing (compute-bound, bubble-dominated)
  uses many micro-batches; token generation (bandwidth-bound, where each
  extra micro-batch re-reads all weights) uses few. Prompt micro-batches
  regroup into generation micro-batches at the phase boundary.

The stage-time inputs come from the kernel cost model (see
:mod:`repro.engine.latency`); this module is policy only.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simcore import (
    Acquire,
    Event,
    Release,
    Simulator,
    SlotResource,
    Timeline,
    Timeout,
    Wait,
)

__all__ = [
    "ScheduleKind",
    "ScheduleResult",
    "simulate_pipeline",
    "fill_drain_span",
    "dynamic_queue_span",
]


class ScheduleKind:
    """Names of the three schedules."""

    LOCKSTEP = "token-lockstep"
    DYNAMIC = "dynamic-queue"
    HYBRID = "hybrid"


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of one pipeline-schedule simulation."""

    kind: str
    timeline: Timeline
    makespan: float
    prompt_done: float
    num_stages: int

    @property
    def generation_time(self) -> float:
        """Time spent after the last prompt micro-batch drained."""
        return self.makespan - self.prompt_done

    def stage_utilization(self, stage: int) -> float:
        """Busy fraction of one stage over the makespan."""
        return self.timeline.utilization(f"stage{stage}")

    @property
    def mean_utilization(self) -> float:
        """Average stage utilization — 1 minus the bubble fraction."""
        return sum(
            self.stage_utilization(s) for s in range(self.num_stages)
        ) / self.num_stages


def fill_drain_span(num_stages: int, microbatches: int, stage_time: float) -> float:
    """Closed form for one fill/drain pass of M micro-batches over P stages."""
    return (num_stages + microbatches - 1) * stage_time


def dynamic_queue_span(
    num_stages: int, microbatches: int, tokens: int, stage_time: float
) -> float:
    """Closed form for dynamic-queue generation: one fill, then every stage
    processes M micro-batches per token back to back (when M >= P)."""
    rounds = tokens * max(microbatches, 1)
    return (rounds + num_stages - 1) * stage_time


def _per_stage(value, num_stages: int, name: str) -> list[float]:
    """Normalize a scalar or per-stage sequence of stage times."""
    if np_isscalar(value):
        times = [float(value)] * num_stages
    else:
        times = [float(v) for v in value]
        if len(times) != num_stages:
            raise ValueError(f"{name} must have one entry per stage")
    if min(times) <= 0:
        raise ValueError(f"{name} entries must be positive")
    return times


def np_isscalar(value) -> bool:
    """True for plain numbers (sequence-vs-scalar dispatch)."""
    return isinstance(value, (int, float))


def simulate_pipeline(
    *,
    num_stages: int,
    prompt_microbatches: int,
    gen_microbatches: int,
    gen_tokens: int,
    prompt_stage_time,
    gen_stage_time,
    p2p_time: float = 0.0,
    lockstep_generation: bool = False,
) -> ScheduleResult:
    """Simulate prompt processing followed by token generation.

    ``prompt_microbatches`` and ``gen_microbatches`` may differ (hybrid
    scheduling); the former must be a multiple of the latter so prompt
    micro-batches regroup cleanly. ``lockstep_generation`` selects the
    baseline Fig. 2a policy. Stage times may be scalars (uniform stages)
    or per-stage sequences (uneven layer splits make stage times
    heterogeneous, and the slowest stage paces the pipeline).
    """
    if num_stages < 1:
        raise ValueError("num_stages must be >= 1")
    if prompt_microbatches < 1 or gen_microbatches < 1:
        raise ValueError("micro-batch counts must be >= 1")
    if prompt_microbatches % gen_microbatches:
        raise ValueError(
            "prompt_microbatches must be a multiple of gen_microbatches"
        )
    if gen_tokens < 0:
        raise ValueError("gen_tokens must be >= 0")
    prompt_times = _per_stage(prompt_stage_time, num_stages, "prompt_stage_time")
    gen_times = _per_stage(gen_stage_time, num_stages, "gen_stage_time")

    sim = Simulator()
    timeline = Timeline()
    stages = [SlotResource(1, name=f"stage{s}") for s in range(num_stages)]

    prompt_done = [Event(f"prompt-{p}") for p in range(prompt_microbatches)]
    group = prompt_microbatches // gen_microbatches

    # Token-lockstep barrier machinery.
    round_done = [Event(f"round-{t}") for t in range(gen_tokens + 1)]
    finished_count = [0] * (gen_tokens + 1)
    prompt_finish_time = [0.0]

    def traverse(label: str, stage_times: list[float]):
        """Process fragment: move one micro-batch through all stages."""
        for s in range(num_stages):
            yield Acquire(stages[s])
            start = sim.now
            yield Timeout(stage_times[s])
            timeline.record(f"stage{s}", start, sim.now, label)
            yield Release(stages[s])
            if s < num_stages - 1 and p2p_time > 0:
                yield Timeout(p2p_time)

    def prompt_proc(p: int):
        yield from traverse(f"P{p}", prompt_times)
        prompt_finish_time[0] = max(prompt_finish_time[0], sim.now)
        sim.trigger(prompt_done[p])

    def gen_proc(g: int):
        # Wait for this generation micro-batch's prompt constituents.
        for p in range(g * group, (g + 1) * group):
            yield Wait(prompt_done[p])
        for t in range(gen_tokens):
            if lockstep_generation and t > 0:
                yield Wait(round_done[t - 1])
            yield from traverse(f"G{g}.t{t}", gen_times)
            finished_count[t] += 1
            if finished_count[t] == gen_microbatches:
                sim.trigger(round_done[t])

    for p in range(prompt_microbatches):
        sim.spawn(prompt_proc(p), name=f"prompt-{p}")
    for g in range(gen_microbatches):
        sim.spawn(gen_proc(g), name=f"gen-{g}")

    makespan = sim.run()
    kind = (
        ScheduleKind.LOCKSTEP
        if lockstep_generation
        else (
            ScheduleKind.HYBRID
            if prompt_microbatches != gen_microbatches
            else ScheduleKind.DYNAMIC
        )
    )
    return ScheduleResult(
        kind=kind,
        timeline=timeline,
        makespan=makespan,
        prompt_done=prompt_finish_time[0],
        num_stages=num_stages,
    )
