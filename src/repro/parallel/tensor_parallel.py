"""Tensor (model) parallelism: Megatron-style sharded execution (Sec. IV-A).

Each transformer block splits across ``tp`` ranks:

* QKV projection — *column parallel*, sharded by attention heads so each
  rank computes attention for its own heads with no communication;
* attention output projection — *row parallel*: each rank holds the rows
  matching its heads and produces a partial sum; one all-reduce combines;
* FFN up-projection — column parallel (+ its bias and GeLU stay local);
* FFN down-projection — row parallel, second all-reduce.

Two all-reduces per layer, exactly as the paper (and Megatron-LM) state.
The functions here both *shard weights* and *execute* the sharded model
over the in-process communicator, and are tested to reproduce the dense
reference logits exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..comm.functional import Communicator, spmd
from ..kernels.functional import (
    apply_rotary,
    gelu,
    layer_norm,
    linear,
    merge_heads,
    scaled_dot_product_attention,
    split_heads,
)
from ..model.dense import DenseTransformer, LayerWeights
from ..model.kvcache import KVCache

__all__ = ["ShardedLayerWeights", "shard_layer", "tp_forward", "tp_spmd_forward"]


@dataclass
class ShardedLayerWeights:
    """One rank's slice of a transformer block under ``tp``-way slicing."""

    rank: int
    tp: int
    local_heads: int
    ln1_g: np.ndarray
    ln1_b: np.ndarray
    w_qkv: np.ndarray  # (h, 3h/tp) — this rank's heads for q, k and v
    b_qkv: np.ndarray
    w_out: np.ndarray  # (h/tp, h) — rows matching this rank's heads
    b_out: np.ndarray  # applied once (by convention after the all-reduce)
    ln2_g: np.ndarray
    ln2_b: np.ndarray
    w_fc: np.ndarray  # (h, mult*h/tp)
    b_fc: np.ndarray
    w_proj: np.ndarray  # (mult*h/tp, h)
    b_proj: np.ndarray


def _head_columns(w: np.ndarray, heads: int, rank: int, tp: int) -> np.ndarray:
    """Columns of ``w`` belonging to ``rank``'s contiguous head block."""
    h_out = w.shape[1]
    head_dim = h_out // heads
    per_rank = heads // tp
    lo = rank * per_rank * head_dim
    hi = (rank + 1) * per_rank * head_dim
    return w[:, lo:hi]


def shard_layer(
    lw: LayerWeights, heads: int, rank: int, tp: int
) -> ShardedLayerWeights:
    """Slice one layer's weights for ``rank`` of ``tp``."""
    if tp < 1 or not 0 <= rank < tp:
        raise ValueError("need 0 <= rank < tp")
    if heads % tp:
        raise ValueError("heads must divide evenly across tensor-parallel ranks")
    h = lw.w_qkv.shape[0]
    wq, wk, wv = np.split(lw.w_qkv, 3, axis=1)
    bq, bk, bv = np.split(lw.b_qkv, 3)
    take_w = lambda w: _head_columns(w, heads, rank, tp)  # noqa: E731
    take_b = lambda b: _head_columns(b[None, :], heads, rank, tp)[0]  # noqa: E731
    rows = h // tp
    mult_h = lw.w_fc.shape[1]
    cols = mult_h // tp
    return ShardedLayerWeights(
        rank=rank,
        tp=tp,
        local_heads=heads // tp,
        ln1_g=lw.ln1_g,
        ln1_b=lw.ln1_b,
        w_qkv=np.concatenate([take_w(wq), take_w(wk), take_w(wv)], axis=1),
        b_qkv=np.concatenate([take_b(bq), take_b(bk), take_b(bv)]),
        w_out=lw.w_out[rank * rows : (rank + 1) * rows, :],
        b_out=lw.b_out,
        ln2_g=lw.ln2_g,
        ln2_b=lw.ln2_b,
        w_fc=lw.w_fc[:, rank * cols : (rank + 1) * cols],
        b_fc=lw.b_fc[rank * cols : (rank + 1) * cols],
        w_proj=lw.w_proj[rank * cols : (rank + 1) * cols, :],
        b_proj=lw.b_proj,
    )


def _tp_attention(
    x: np.ndarray,
    sw: ShardedLayerWeights,
    comm: Communicator,
    layer_idx: int,
    cache: KVCache | None,
    *,
    rotary: bool = False,
) -> np.ndarray:
    normed = layer_norm(x, sw.ln1_g, sw.ln1_b)
    qkv = linear(normed, sw.w_qkv, sw.b_qkv)
    q, k, v = np.split(qkv, 3, axis=-1)
    q, k, v = (split_heads(t, sw.local_heads) for t in (q, k, v))
    offset = 0
    if cache is not None:
        offset = cache.seq_len(layer_idx)
    if rotary:  # head-local rotation: sharding by heads commutes with RoPE
        q = apply_rotary(q, position_offset=offset)
        k = apply_rotary(k, position_offset=offset)
    if cache is not None:
        k, v = cache.append(layer_idx, k, v)
    ctx = scaled_dot_product_attention(q, k, v, causal=True, query_offset=offset)
    partial = merge_heads(ctx) @ sw.w_out  # row-parallel partial sum
    full = comm.allreduce(partial)  # the layer's first all-reduce
    return x + full + sw.b_out


def _tp_mlp(x: np.ndarray, sw: ShardedLayerWeights, comm: Communicator) -> np.ndarray:
    normed = layer_norm(x, sw.ln2_g, sw.ln2_b)
    inter = gelu(linear(normed, sw.w_fc, sw.b_fc))
    partial = inter @ sw.w_proj
    full = comm.allreduce(partial)  # the layer's second all-reduce
    return x + full + sw.b_proj


def tp_forward(
    comm: Communicator,
    model: DenseTransformer,
    token_ids: np.ndarray,
    cache: KVCache | None = None,
    *,
    layer_range: tuple[int, int] | None = None,
    hidden_in: np.ndarray | None = None,
    return_hidden: bool = False,
) -> np.ndarray:
    """Run ``model`` tensor-parallel on this rank.

    Every rank holds the full model object but uses only its shard of each
    layer (sharding is done on the fly; a real system would materialize
    only the shard — :func:`shard_layer` is also exposed for that).

    ``layer_range``/``hidden_in``/``return_hidden`` let pipeline stages
    reuse this as their stage-local executor.
    """
    cfg = model.config
    lo, hi = layer_range if layer_range is not None else (0, cfg.layers)
    if hidden_in is None:
        token_ids = np.atleast_2d(token_ids)
        pos0 = cache.seq_len(lo) if cache is not None else 0
        x = model.wte[token_ids]
        if cfg.pos_encoding == "learned":
            x = x + model.wpe[pos0 : pos0 + token_ids.shape[1]]
    else:
        x = hidden_in
    rotary = cfg.pos_encoding == "rotary"
    for i in range(lo, hi):
        sw = shard_layer(model.layers[i], cfg.heads, comm.rank, comm.size)
        x = _tp_attention(x, sw, comm, i, cache, rotary=rotary)
        x = _tp_mlp(x, sw, comm)
    if return_hidden:
        return x
    x = layer_norm(x, model.lnf_g, model.lnf_b)
    return x @ model.wte.T


def tp_spmd_forward(
    tp: int, model: DenseTransformer, token_ids: np.ndarray
) -> np.ndarray:
    """Convenience: run :func:`tp_forward` across ``tp`` in-process ranks
    and return rank 0's logits (all ranks agree by construction)."""
    results = spmd(tp, tp_forward, model, token_ids)
    return results[0]
