"""Distributed pipeline-parallel generation over the functional
communicator — the Fig. 2b dynamic-queue schedule, actually executed.

Each rank owns one contiguous stage of layers. Micro-batches flow through
the stages over point-to-point sends; the *last* stage computes logits,
picks the next token greedily, and sends it back to the *first* stage,
which immediately re-enqueues that micro-batch for its next token — no
global barrier between tokens, exactly the data-dependency hiding of
Sec. IV-C1. KV caches are per-stage, so each rank only caches its own
layers (the memory-partitioning property of pipeline parallelism).

The test suite verifies the generated tokens are identical to
single-process `model.generate` for any stage count and micro-batch
split.
"""

from __future__ import annotations

import numpy as np

from ..comm.functional import Communicator
from ..kernels.functional import layer_norm
from ..model.dense import DenseTransformer
from ..model.kvcache import KVCache
from .pipeline import StagePlan, partition_layers

__all__ = ["pipeline_generate_rank", "pipeline_spmd_generate"]

_ACT_TAG_BASE = 100  # activation messages: tag = base + micro-batch id
_TOK_TAG_BASE = 900  # next-token feedback:  tag = base + micro-batch id


def _run_stage_layers(
    model: DenseTransformer,
    plan: StagePlan,
    x: np.ndarray,
    cache: KVCache,
) -> np.ndarray:
    for i in range(plan.start, plan.end):
        lw = model.layers[i]
        x = model.attention_block(x, lw, i, cache)
        x = model.mlp_block(x, lw, i)
    return x


def pipeline_generate_rank(
    comm: Communicator,
    model: DenseTransformer,
    prompts: list[np.ndarray],
    gen_tokens: int,
) -> np.ndarray | None:
    """One rank's part of pipelined generation.

    ``prompts`` is a list of micro-batches, each ``(mb, seq)`` of equal
    sequence length. Returns the completed ``(batch, seq + gen_tokens)``
    ids on the first stage, ``None`` elsewhere.
    """
    if gen_tokens < 1:
        raise ValueError("gen_tokens must be >= 1")
    if not prompts:
        raise ValueError("need at least one micro-batch")
    stages = partition_layers(model.config.layers, comm.size)
    plan = stages[comm.rank]
    first, last = comm.rank == 0, comm.rank == comm.size - 1
    num_mb = len(prompts)
    caches = [KVCache(model.config.layers) for _ in range(num_mb)]
    positions = [p.shape[1] for p in prompts]  # next position per mb

    outputs: list[list[np.ndarray]] = [[] for _ in range(num_mb)]

    def emit_token(x: np.ndarray, m: int) -> None:
        """Last stage: logits -> greedy token -> feed back to stage 0."""
        logits = layer_norm(x, model.lnf_g, model.lnf_b) @ model.wte.T
        nxt = logits[:, -1].argmax(axis=-1)[:, None]
        if comm.size > 1:
            comm.send(nxt, dest=0, tag=_TOK_TAG_BASE + m)
        else:
            outputs[m].append(nxt)

    # The schedule: every micro-batch makes ``gen_tokens`` full passes.
    # Pass 0 consumes the prompt and yields token 1; pass t consumes
    # token t and yields token t+1. Passes interleave across micro-
    # batches with no token barrier (the dynamic queue of Fig. 2b):
    # stage s processes (mb, pass) units in arrival order.
    for step in range(gen_tokens):
        for m in range(num_mb):
            cache = caches[m]
            if first:
                if step == 0:
                    ids = prompts[m]
                elif comm.size == 1:
                    ids = outputs[m][-1]  # emitted locally last pass
                else:
                    tok = comm.recv(source=comm.size - 1,
                                    tag=_TOK_TAG_BASE + m)
                    outputs[m].append(tok)
                    ids = tok
                pos0 = cache.seq_len(plan.start)
                x = model.wte[ids] + model.wpe[pos0 : pos0 + ids.shape[1]]
                x = _run_stage_layers(model, plan, x, cache)
                if comm.size > 1:
                    comm.send(x, dest=comm.rank + 1, tag=_ACT_TAG_BASE + m)
                else:
                    emit_token(x, m)
            else:
                x = comm.recv(source=comm.rank - 1, tag=_ACT_TAG_BASE + m)
                x = _run_stage_layers(model, plan, x, cache)
                if not last:
                    comm.send(x, dest=comm.rank + 1, tag=_ACT_TAG_BASE + m)
                else:
                    emit_token(x, m)

    if not first:
        return None
    # Collect the final token of every micro-batch.
    if comm.size > 1:
        for m in range(num_mb):
            outputs[m].append(
                comm.recv(source=comm.size - 1, tag=_TOK_TAG_BASE + m)
            )
    completed = [
        np.concatenate([prompts[m], *outputs[m]], axis=1)
        for m in range(num_mb)
    ]
    return np.concatenate(completed, axis=0)


def pipeline_spmd_generate(
    num_stages: int,
    model: DenseTransformer,
    prompt_ids: np.ndarray,
    gen_tokens: int,
    *,
    num_microbatches: int | None = None,
) -> np.ndarray:
    """Run pipelined generation across ``num_stages`` in-process ranks.

    ``prompt_ids`` is ``(batch, seq)``; the batch splits into
    ``num_microbatches`` (default: the stage count, Sec. IV-C1's
    recommendation) micro-batches of equal size.
    """
    from ..comm.functional import spmd

    prompt_ids = np.atleast_2d(prompt_ids)
    batch = prompt_ids.shape[0]
    if num_microbatches is None:
        # Default: as close to the stage count as the batch divides into.
        num_microbatches = max(
            m for m in range(1, min(num_stages, batch) + 1) if batch % m == 0
        )
    num_microbatches = min(num_microbatches, batch)
    if batch % num_microbatches:
        raise ValueError(
            f"batch {batch} does not split into {num_microbatches} micro-batches"
        )
    mb = batch // num_microbatches
    prompts = [prompt_ids[i * mb : (i + 1) * mb] for i in range(num_microbatches)]
    results = spmd(num_stages, pipeline_generate_rank, model, prompts, gen_tokens)
    return results[0]
