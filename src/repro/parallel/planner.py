"""Parallelism planning: fit a model onto a cluster (Sec. IV intro).

The paper's placement rules are explicit: tensor parallelism stays inside
the NVLink island of a node (Sec. IV-A); pipeline parallelism spans nodes
(Sec. IV-B); MoE models add expert parallelism per Table II. The planner
encodes those rules and the memory arithmetic that drives them, raising
a diagnosable error when a model cannot fit.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.specs import DType
from ..hardware.topology import ClusterSpec
from ..model.config import ModelConfig

__all__ = ["ParallelPlan", "PlanError", "plan_dense", "memory_per_gpu"]


class PlanError(RuntimeError):
    """Raised when no feasible placement exists on the given cluster."""


@dataclass(frozen=True)
class ParallelPlan:
    """A dense-model placement: TP within nodes, PP across them."""

    tp: int
    pp: int
    gpus: int
    weight_bytes_per_gpu: float
    kv_bytes_per_gpu: float

    @property
    def memory_per_gpu(self) -> float:
        """Modeled steady-state footprint per GPU."""
        return self.weight_bytes_per_gpu + self.kv_bytes_per_gpu


def memory_per_gpu(
    config: ModelConfig,
    tp: int,
    pp: int,
    *,
    batch: int,
    seq_len: int,
    dtype: DType = DType.FP16,
) -> tuple[float, float]:
    """(weight bytes, KV bytes) per GPU for a TP x PP placement.

    Weights divide across both axes; the KV cache divides by TP (heads are
    sharded) and by PP (each stage caches only its layers).
    """
    if min(tp, pp, batch, seq_len) < 1:
        raise ValueError("tp, pp, batch and seq_len must be >= 1")
    weights = config.total_params * dtype.itemsize / (tp * pp)
    # First stage also holds embeddings; amortize rather than special-case.
    kv = batch * seq_len * config.kv_bytes_per_token(dtype) / (tp * pp)
    return weights, kv


def plan_dense(
    config: ModelConfig,
    cluster: ClusterSpec,
    *,
    batch: int = 1,
    seq_len: int = 2048,
    dtype: DType = DType.FP16,
    activation_headroom: float = 0.90,
) -> ParallelPlan:
    """Choose the smallest TP x PP placement that fits.

    Strategy, mirroring the paper: grow TP in powers of two up to the
    node size (aggregate bandwidth cuts latency, Sec. IV-A); if a full
    node still cannot hold the model, add pipeline stages node by node
    (Sec. IV-B).
    """
    per_gpu_budget = cluster.gpu.memory_bytes * activation_headroom
    node_gpus = cluster.node.gpus_per_node

    # Attention heads shard across tensor ranks, so tp must divide them.
    tp_options = [t for t in (1, 2, 4, 8, 16, 32)
                  if t <= node_gpus and config.heads % t == 0]

    for tp in tp_options:
        w, kv = memory_per_gpu(config, tp, 1, batch=batch, seq_len=seq_len, dtype=dtype)
        if w + kv <= per_gpu_budget:
            return ParallelPlan(tp=tp, pp=1, gpus=tp,
                                weight_bytes_per_gpu=w, kv_bytes_per_gpu=kv)

    # A pipeline stage is one tensor-parallel group; small TP degrees allow
    # several stages per node (the paper's placements happen to be
    # node-aligned, but nothing requires it).
    tp = tp_options[-1]
    for pp in range(2, min(cluster.num_gpus // tp, config.layers) + 1):
        w, kv = memory_per_gpu(config, tp, pp, batch=batch, seq_len=seq_len, dtype=dtype)
        if w + kv <= per_gpu_budget:
            return ParallelPlan(tp=tp, pp=pp, gpus=tp * pp,
                                weight_bytes_per_gpu=w, kv_bytes_per_gpu=kv)

    need = config.param_bytes(dtype) / 1e9
    have = cluster.aggregate_gpu_memory / 1e9
    raise PlanError(
        f"{config.name} ({need:.0f} GB of weights) does not fit on "
        f"{cluster.name} ({have:.0f} GB aggregate GPU memory) at batch "
        f"{batch}, seq {seq_len}"
    )
