"""Pipeline parallelism: stage partitioning and functional staged execution.

Sec. IV-B: when a model exceeds a node's aggregate memory, its layers
split *vertically* into stages placed on different nodes; only adjacent
stages communicate (one activation tensor per micro-batch), which is why
PP scales across the slow inter-node fabric where tensor slicing cannot.

This module owns the *partitioning* (which layers live where, and their
memory footprints) and a functional staged executor used to verify that
stage-by-stage execution reproduces the dense reference. *When* each
stage runs — the schedules of Fig. 2/3 — lives in
:mod:`repro.parallel.schedules`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hardware.specs import DType
from ..kernels.functional import layer_norm
from ..model.config import ModelConfig
from ..model.dense import DenseTransformer
from ..model.kvcache import KVCache

__all__ = ["StagePlan", "partition_layers", "staged_forward"]


@dataclass(frozen=True)
class StagePlan:
    """Layer assignment of one pipeline stage: layers [start, end)."""

    stage: int
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("a stage must own at least one layer")

    @property
    def num_layers(self) -> int:
        """Layers resident on this stage."""
        return self.end - self.start

    def weight_bytes(self, config: ModelConfig, dtype: DType = DType.FP16) -> float:
        """Parameter footprint of this stage (first stage adds embeddings)."""
        w = self.num_layers * config.params_per_dense_layer * dtype.itemsize
        if self.stage == 0:
            w += config.embedding_params * dtype.itemsize
        return w


def partition_layers(num_layers: int, num_stages: int) -> list[StagePlan]:
    """Split ``num_layers`` into ``num_stages`` contiguous, balanced stages.

    Remainder layers go to the *earliest* stages so the last stage (which
    also computes logits) is never the largest.
    """
    if num_stages < 1:
        raise ValueError("num_stages must be >= 1")
    if num_layers < num_stages:
        raise ValueError(
            f"cannot split {num_layers} layers into {num_stages} stages"
        )
    base, extra = divmod(num_layers, num_stages)
    plans = []
    start = 0
    for s in range(num_stages):
        n = base + (1 if s < extra else 0)
        plans.append(StagePlan(stage=s, start=start, end=start + n))
        start += n
    assert start == num_layers
    return plans


def staged_forward(
    model: DenseTransformer,
    stages: list[StagePlan],
    token_ids: np.ndarray,
    caches: list[KVCache] | None = None,
) -> np.ndarray:
    """Execute the model stage by stage, passing the activation tensor at
    each boundary — the data movement a pipeline engine performs, run
    sequentially here to pin down the semantics."""
    if stages[0].start != 0 or stages[-1].end != model.config.layers:
        raise ValueError("stages must cover all layers")
    token_ids = np.atleast_2d(token_ids)
    if caches is not None and len(caches) != len(stages):
        raise ValueError("one cache per stage required")
    pos0 = caches[0].seq_len(stages[0].start) if caches is not None else 0
    x = model.wte[token_ids] + model.wpe[pos0 : pos0 + token_ids.shape[1]]
    for plan in stages:
        cache = caches[plan.stage] if caches is not None else None
        for i in range(plan.start, plan.end):
            lw = model.layers[i]
            x = model.attention_block(x, lw, i, cache)
            x = model.mlp_block(x, lw, i)
    x = layer_norm(x, model.lnf_g, model.lnf_b)
    return x @ model.wte.T
