"""Quantized (INT8) tensor-parallel linear layers — DeepSpeed-INT8's
datapath, functionally.

Sec. III-D stores weights in INT8 and dequantizes in the GeMM epilogue.
Under tensor parallelism that composes cleanly with Megatron sharding:

* **column-parallel** layers shard the *output* dimension. Per-output-
  column scales are local to each shard, so quantizing the shards is
  *bit-identical* to quantizing the full matrix and then sharding —
  tested exactly.
* **row-parallel** layers shard the *input* dimension. Each shard
  quantizes its rows against its own per-column absmax, the integer
  partial products dequantize locally (the epilogue), and the float
  partial sums all-reduce. The result differs from full-matrix
  quantization only through each shard's (tighter!) scales, and stays
  within the standard half-LSB error bound of the float reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..comm.functional import Communicator
from ..kernels.quant import QuantizedTensor, int8_linear, quantize_symmetric

__all__ = [
    "QuantizedColumnParallelLinear",
    "QuantizedRowParallelLinear",
    "shard_quantize_column",
    "shard_quantize_row",
]


@dataclass(frozen=True)
class QuantizedColumnParallelLinear:
    """One rank's INT8 shard of an output-sharded linear layer."""

    qweight: QuantizedTensor  # (in, out/tp)
    bias: np.ndarray | None  # (out/tp,)

    def forward(self, comm: Communicator, x: np.ndarray) -> np.ndarray:
        """Full ``(..., out)`` output via local INT8 GeMM + all-gather."""
        local = int8_linear(x, self.qweight, self.bias)
        return comm.allgather(local, axis=-1)

    def forward_local(self, x: np.ndarray) -> np.ndarray:
        """This rank's output slice only (no communication) — used when
        the consumer is head-local attention work."""
        return int8_linear(x, self.qweight, self.bias)


@dataclass(frozen=True)
class QuantizedRowParallelLinear:
    """One rank's INT8 shard of an input-sharded linear layer."""

    qweight: QuantizedTensor  # (in/tp, out)
    bias: np.ndarray | None  # (out,), added once after the reduction

    def forward(self, comm: Communicator, x_local: np.ndarray) -> np.ndarray:
        """All-reduced ``(..., out)`` output from this rank's input slice."""
        partial = int8_linear(x_local, self.qweight)  # dequantized floats
        full = comm.allreduce(partial)
        if self.bias is not None:
            full = full + self.bias
        return full


def shard_quantize_column(
    weight: np.ndarray, bias: np.ndarray | None, rank: int, tp: int
) -> QuantizedColumnParallelLinear:
    """Shard ``(in, out)`` by output columns, then quantize the shard."""
    _check(weight, rank, tp, axis=1)
    cols = weight.shape[1] // tp
    w = weight[:, rank * cols : (rank + 1) * cols]
    b = None if bias is None else bias[rank * cols : (rank + 1) * cols]
    return QuantizedColumnParallelLinear(quantize_symmetric(w), b)


def shard_quantize_row(
    weight: np.ndarray, bias: np.ndarray | None, rank: int, tp: int
) -> QuantizedRowParallelLinear:
    """Shard ``(in, out)`` by input rows, then quantize the shard."""
    _check(weight, rank, tp, axis=0)
    rows = weight.shape[0] // tp
    w = weight[rank * rows : (rank + 1) * rows, :]
    return QuantizedRowParallelLinear(quantize_symmetric(w), bias)


def _check(weight: np.ndarray, rank: int, tp: int, *, axis: int) -> None:
    if weight.ndim != 2:
        raise ValueError("expected a 2-D weight")
    if tp < 1 or not 0 <= rank < tp:
        raise ValueError("need 0 <= rank < tp")
    if weight.shape[axis] % tp:
        raise ValueError(
            f"dimension {weight.shape[axis]} not divisible by tp={tp}"
        )
