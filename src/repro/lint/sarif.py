"""SARIF 2.1.0 serialization for lint results.

SARIF (Static Analysis Results Interchange Format) is the interchange
schema code-scanning UIs ingest — GitHub's security tab renders it as
inline annotations on PRs. The mapping is deliberately small: one run,
one driver (``repro-lint``), one rule per checker code, one result per
*new* finding. Baselined findings are emitted with
``baselineState: "unchanged"`` so viewers can fold them away without
us maintaining two report paths; suppressed findings don't appear at
all (they are already invisible to the exit code).

Only plain-JSON data goes in, so the output is stable under
``json.dumps(..., sort_keys=True)`` — handy for golden tests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .core import Checker, Finding, LintResult

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

__all__ = ["SARIF_SCHEMA", "SARIF_VERSION", "to_sarif"]


def _rule(checker: "Checker") -> dict:
    return {
        "id": checker.code,
        "name": checker.name,
        "shortDescription": {"text": checker.name},
        "fullDescription": {"text": checker.description},
        "defaultConfiguration": {"level": "warning"},
    }


def _result(finding: "Finding", *, baseline_state: str | None) -> dict:
    out = {
        "ruleId": finding.code,
        "level": "warning",
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": finding.path.replace("\\", "/"),
                    "uriBaseId": "SRCROOT",
                },
                "region": {
                    "startLine": max(finding.line, 1),
                    "startColumn": finding.col + 1,
                },
            },
        }],
        # the occurrence-aware fingerprint lets scanners track a finding
        # across commits even when its line number moves
        "partialFingerprints": {"reproLint/v1": finding.fingerprint()},
    }
    if baseline_state is not None:
        out["baselineState"] = baseline_state
    return out


def to_sarif(result: "LintResult", checkers: Iterable["Checker"]) -> dict:
    """Render ``result`` as a SARIF ``log`` dict (caller serializes)."""
    results = [_result(f, baseline_state="new") for f in result.findings]
    results += [_result(f, baseline_state="unchanged")
                for f in result.baselined]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri":
                        "https://example.invalid/repro-lint",
                    "rules": [_rule(c) for c in checkers],
                },
            },
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
            "results": results,
        }],
    }
