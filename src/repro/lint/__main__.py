"""Command-line entry point: ``python -m repro.lint [paths...]``.

Exit codes: **0** clean (every finding baselined or suppressed),
**1** new findings, **2** usage or parse errors.

The baseline (default ``lint-baseline.json``, when it exists in the
working directory) is the committed ledger of accepted findings; run
with ``--write-baseline`` to grandfather the current findings, then
edit the file to replace each placeholder justification with a real
one.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .checkers import select_checkers
from .core import Baseline, LintError, run_lint

DEFAULT_BASELINE = "lint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Domain-aware static analysis for the repro codebase "
                    "(collective symmetry, unit consistency, simulation "
                    "determinism, API hygiene).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)")
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text); sarif emits a SARIF 2.1.0 "
             "log for code-scanning UIs")
    parser.add_argument(
        "--output", metavar="FILE",
        help="write the report to FILE instead of stdout "
             "(a one-line summary still goes to stdout)")
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated checker codes to run, e.g. RP001,RP003")
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help=f"baseline file of accepted findings (default: "
             f"{DEFAULT_BASELINE} if present)")
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file")
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write every current finding to the baseline file and exit 0")
    parser.add_argument(
        "--no-project", action="store_true",
        help="skip the whole-program pass (project-graph checkers "
             "RP005-RP008); per-module rules still run")
    parser.add_argument(
        "--list-checkers", action="store_true",
        help="list registered checkers and exit")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    try:
        checkers = select_checkers(args.select)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.list_checkers:
        for c in checkers:
            print(f"{c.code}  {c.name:22s} {c.description}")
        return 0

    baseline_path = Path(args.baseline) if args.baseline else Path(DEFAULT_BASELINE)
    baseline = None
    if not args.no_baseline and not args.write_baseline:
        if args.baseline or baseline_path.exists():
            try:
                baseline = Baseline.load(baseline_path)
            except LintError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2

    try:
        result = run_lint(args.paths, checkers, baseline=baseline,
                          project=not args.no_project)
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        Baseline.from_findings(result.findings).save(baseline_path)
        print(f"wrote {len(result.findings)} finding(s) to {baseline_path}; "
              f"fill in the justifications before committing")
        return 0

    if args.format == "json":
        report = json.dumps(result.to_dict(), indent=2) + "\n"
    elif args.format == "sarif":
        from .sarif import to_sarif
        report = json.dumps(to_sarif(result, checkers), indent=2,
                            sort_keys=True) + "\n"
    else:
        lines = [f.format() for f in result.findings]
        if result.baselined:
            lines.append(f"({len(result.baselined)} baselined finding(s) "
                         f"not shown; see {baseline_path})")
        report = "\n".join(lines) + ("\n" if lines else "")

    if args.output:
        Path(args.output).write_text(report, encoding="utf-8")
    else:
        sys.stdout.write(report)

    summary = (f"repro-lint: {result.files_checked} file(s), "
               f"{len(result.findings)} finding(s), "
               f"{len(result.baselined)} baselined, "
               f"{len(result.suppressed)} suppressed")
    print(summary if not args.output else f"{summary} -> {args.output}")
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
