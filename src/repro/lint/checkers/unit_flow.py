"""RP007: unit consistency across call boundaries.

RP002 infers units from the suffix convention (``_bytes``, ``_s``,
``_flops``, ...) but sees one module at a time, so a ``*_bytes`` value
flowing into a ``*_s`` *parameter* of a function defined two modules
away sails straight through. This rule extends the same inference
interprocedurally using the project pass:

* every resolved call site maps its arguments onto the callee's
  parameters (positionally and by keyword) and flags a known-unit
  argument bound to a parameter whose name carries a *different* unit;
* a call whose callee has a known **return unit** (from the function's
  own name suffix, or a unanimous vote of its ``return`` expressions —
  see :class:`~repro.lint.project.FunctionSummary`) participates as a
  unitful expression: assigning it to an incompatibly-suffixed name, or
  passing it as an incompatibly-suffixed parameter, is flagged.

Only confidently resolved calls participate (local functions, imported
functions, ``self.method``); everything else stays silent, like RP002's
treatment of ``*``/``/`` — false alarms would train people to suppress.
The inline ``# repro-lint: unit(name)=...`` notes bind names on the
*caller* side exactly as they do for RP002.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Finding, ModuleInfo, ProjectChecker
from ..project import FunctionSummary, ProjectInfo, dotted_name
from .unit_consistency import _compatible, unit_of_name

__all__ = ["UnitFlowChecker"]


class UnitFlowChecker(ProjectChecker):
    code = "RP007"
    name = "unit-flow"
    description = (
        "units inferred from the suffix convention must survive call "
        "boundaries: no *_bytes argument into a *_s parameter, no "
        "*_s return assigned to a *_bytes name"
    )
    packages = (
        "repro.engine",
        "repro.kernels",
        "repro.zero",
        "repro.hardware",
        "repro.comm",
        "repro.moe_placement",
        "repro.autoscale",
        "repro.scenarios",
    )

    def check_project(self, project: ProjectInfo) -> Iterator[Finding]:
        for module, symbols in project.symbols.items():
            mod = symbols.mod
            if not self.applies_to(mod):
                continue
            registry = {k.lower(): v for k, v in mod.unit_notes.items()}
            for cls_name, summary in self._scopes(symbols):
                yield from self._check_scope(
                    project, mod, module, cls_name, summary, registry)

    @staticmethod
    def _scopes(symbols):
        for summary in symbols.functions.values():
            yield None, summary
        for cls in symbols.classes.values():
            for summary in cls.methods.values():
                yield cls.name, summary

    def _check_scope(self, project: ProjectInfo, mod: ModuleInfo,
                     module: str, cls_name: str | None,
                     summary: FunctionSummary,
                     registry: dict[str, str]) -> Iterator[Finding]:
        def resolve(call: ast.Call) -> FunctionSummary | None:
            raw = dotted_name(call.func)
            if raw is None:
                return None
            return project.resolve_call_name(module, raw, cls=cls_name)

        def unit_of(node: ast.AST) -> str | None:
            if isinstance(node, ast.Name):
                return unit_of_name(node.id, registry)
            if isinstance(node, ast.Attribute):
                return unit_of_name(node.attr, registry)
            if isinstance(node, ast.Call):
                callee = resolve(node)
                return callee.return_unit if callee is not None else None
            return None

        def show(node: ast.AST) -> str:
            text = ast.unparse(node)
            return text if len(text) <= 50 else text[:47] + "..."

        for node in ast.walk(summary.node):
            if isinstance(node, ast.Call):
                callee = resolve(node)
                if callee is not None:
                    yield from self._check_call(
                        mod, node, callee, unit_of, show)
            elif isinstance(node, ast.Assign):
                # call-result flowing into a suffixed name: RP002 skips
                # Call values, this rule knows their return units
                if (len(node.targets) == 1
                        and isinstance(node.targets[0], (ast.Name, ast.Attribute))
                        and isinstance(node.value, ast.Call)):
                    callee = resolve(node.value)
                    if callee is None or callee.return_unit is None:
                        continue
                    target = unit_of(node.targets[0])
                    if target and not _compatible(target, callee.return_unit):
                        yield self.finding(mod, node, (
                            f"assigns `{callee.ref}` (returns "
                            f"`{callee.return_unit}`) to a `{target}` "
                            f"name: `{show(node)}` — convert explicitly "
                            f"or rename one side"
                        ))

    def _check_call(self, mod: ModuleInfo, call: ast.Call,
                    callee: FunctionSummary, unit_of, show) -> Iterator[Finding]:
        if any(isinstance(a, ast.Starred) for a in call.args) or any(
                kw.arg is None for kw in call.keywords):
            return  # *args/**kwargs forwarding: mapping is unknowable
        positional = callee.positional()
        # self/cls slots don't line up with call arguments; a method
        # call's receiver is the attribute's value, not an argument.
        if positional and positional[0].name in ("self", "cls") \
                and isinstance(call.func, ast.Attribute):
            positional = positional[1:]
        pairs = list(zip(call.args, positional))
        for kw in call.keywords:
            param = callee.param_named(kw.arg)
            if param is not None:
                pairs.append((kw.value, param))
        for arg, param in pairs:
            got = unit_of(arg)
            want = unit_of_name(param.name)
            if got and want and not _compatible(got, want):
                yield self.finding(mod, arg, (
                    f"passes `{got}` value `{show(arg)}` as parameter "
                    f"`{param.name}` (`{want}`) of `{callee.ref}` — a "
                    f"unit conversion is missing at the call boundary"
                ))
