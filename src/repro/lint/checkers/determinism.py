"""RP003: simulations must replay bit-for-bit.

The discrete-event core (:mod:`repro.simcore`), the serving replay
(:mod:`repro.engine`), the fleet layer (:mod:`repro.fleet`) and the
autoscale control loop (:mod:`repro.autoscale`) promise
that the same trace and seed reproduce the same report — the
functional-vs-analytical equivalence tests, the fleet failover
accounting and every figure regeneration depend on it. Three classes of
construct silently break that promise:

* **global RNG** — ``np.random.rand()`` / ``np.random.seed()`` (and the
  stdlib ``random`` module) draw from mutable process-global state;
  any import-order change reshuffles every draw. Entry points must take
  an explicit ``seed``/``Generator`` and thread it through
  (``np.random.default_rng(seed)`` is the constructor, so it is allowed);
* **wall clock** — ``time.time()`` / ``datetime.now()`` smuggle real
  time into simulated time;
* **unordered-set iteration** — ``for r in {…}`` or ``for r in set(a) |
  set(b)`` feeding an event queue makes tie-breaking depend on hash
  seeds. Iterate ``sorted(...)`` instead (the established idiom, cf.
  ``simcore.trace`` and ``engine.generation``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Checker, Finding, ModuleInfo

__all__ = ["SimDeterminismChecker"]

#: np.random attributes that construct explicitly-seeded generators.
_SEEDED_CONSTRUCTORS = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})

_WALL_CLOCK_TIME = frozenset({"time", "time_ns"})
_WALL_CLOCK_DATETIME = frozenset({"now", "utcnow", "today"})


def _is_np_random(node: ast.AST) -> bool:
    return (isinstance(node, ast.Attribute) and node.attr == "random"
            and isinstance(node.value, ast.Name)
            and node.value.id in ("np", "numpy"))


def _is_setish(node: ast.AST, set_names: set[str]) -> bool:
    """Whether an expression evaluates to an unordered set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")):
        return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return (_is_setish(node.left, set_names)
                or _is_setish(node.right, set_names))
    return False


def _scope_nodes(scope: ast.AST) -> list[ast.AST]:
    """All nodes of one scope, stopping at nested function boundaries."""
    out: list[ast.AST] = []

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue
            out.append(child)
            visit(child)

    visit(scope)
    return out


class SimDeterminismChecker(Checker):
    code = "RP003"
    name = "sim-determinism"
    description = (
        "no global RNG, wall-clock reads, or unordered-set iteration in "
        "simulation code (replays must be bit-for-bit)"
    )
    packages = ("repro.simcore", "repro.engine", "repro.fleet",
                "repro.autoscale", "repro.scenarios")

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        yield from self._check_calls(mod)
        yield from self._check_set_iteration(mod)

    # -- RNG and wall clock ------------------------------------------------

    def _check_calls(self, mod: ModuleInfo) -> Iterator[Finding]:
        imports_random = any(
            isinstance(n, ast.Import)
            and any(a.name == "random" for a in n.names)
            for n in ast.walk(mod.tree)
        )
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            recv = func.value
            # np.random.<draw>() — process-global RNG state.
            if _is_np_random(recv) and func.attr not in _SEEDED_CONSTRUCTORS:
                yield self.finding(mod, node, (
                    f"`np.random.{func.attr}` uses the process-global "
                    f"RNG: draws depend on import order and everything "
                    f"drawn before — take an explicit seed and use "
                    f"`np.random.default_rng(seed)`"
                ))
            # stdlib random.<draw>() — same problem.
            elif (imports_random and isinstance(recv, ast.Name)
                    and recv.id == "random" and func.attr != "Random"):
                yield self.finding(mod, node, (
                    f"stdlib `random.{func.attr}` uses the process-global "
                    f"RNG — use a seeded `np.random.default_rng(seed)` "
                    f"(or `random.Random(seed)`) instead"
                ))
            # time.time() / time.time_ns().
            elif (isinstance(recv, ast.Name) and recv.id == "time"
                    and func.attr in _WALL_CLOCK_TIME):
                yield self.finding(mod, node, (
                    f"`time.{func.attr}()` reads the wall clock: simulated "
                    f"time must come from the event loop, never the host"
                ))
            # datetime.now() / datetime.datetime.now() / date.today().
            elif func.attr in _WALL_CLOCK_DATETIME and (
                    (isinstance(recv, ast.Name)
                     and recv.id in ("datetime", "date"))
                    or (isinstance(recv, ast.Attribute)
                        and recv.attr in ("datetime", "date"))):
                yield self.finding(mod, node, (
                    f"`datetime .{func.attr}()` reads the wall clock — "
                    f"replays would never be bit-for-bit; timestamp "
                    f"*outside* the simulation if needed"
                ))

    # -- unordered iteration -----------------------------------------------

    def _check_set_iteration(self, mod: ModuleInfo) -> Iterator[Finding]:
        # Each function body is its own scope for set-name tracking; the
        # module (with class bodies) is one more. Nested defs are not
        # descended into from the enclosing scope, so no node is visited
        # twice and local bindings stay local.
        scopes: list[ast.AST] = [mod.tree] + [
            n for n in ast.walk(mod.tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for scope in scopes:
            nodes = _scope_nodes(scope)
            set_names: set[str] = set()
            for node in nodes:
                if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                        and isinstance(node.targets[0], ast.Name) \
                        and _is_setish(node.value, set_names):
                    set_names.add(node.targets[0].id)
            for node in nodes:
                iters: list[ast.AST] = []
                if isinstance(node, ast.For):
                    iters.append(node.iter)
                elif isinstance(node, (ast.ListComp, ast.SetComp,
                                       ast.DictComp, ast.GeneratorExp)):
                    iters.extend(g.iter for g in node.generators)
                for it in iters:
                    if _is_setish(it, set_names):
                        yield self.finding(mod, it, (
                            "iterates an unordered set "
                            f"(`{ast.unparse(it)[:50]}`): order depends "
                            "on hash seeding, so anything it feeds — "
                            "event queues, schedulers, reports — stops "
                            "replaying bit-for-bit; wrap in `sorted(...)`"
                        ))
