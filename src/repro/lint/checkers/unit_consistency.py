"""RP002: dimensional consistency across the performance model.

The performance layer reproduces Figures 6–13 only because seconds,
bytes, FLOPs and tokens flow through ``kernels.costmodel``,
``engine.latency``, ``engine.costs``, ``comm.primitives``, ``zero`` and
``hardware`` without mix-ups. The codebase encodes units in names —
``act_bytes``, ``hbm_gb``, ``peak_flops``, ``gen_tokens``, ``stall_s``,
``compute_time``, ``tokens_per_s`` — so a checker can infer the unit of
most operands and flag the additions, subtractions, comparisons and
bare assignments that combine two *different* units without an explicit
conversion.

Inference sources, in priority order:

1. inline annotations — ``# repro-lint: unit(budget)=seconds`` anywhere
   in the file binds a name that escapes the suffix convention;
2. :data:`DEFAULT_UNIT_REGISTRY` — repo-wide names with known units;
3. the suffix convention (``_bytes``/``_gb``/``_flops``/``_tokens``/
   ``_s``/``*_time``/``*_per_s`` ...).

Multiplication and division deliberately yield *unknown*: they are how
conversions are written (``bytes / bandwidth``, ``gb * 1e9``), so they
never trip the checker. Unitless constants combine with anything.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Checker, Finding, ModuleInfo

__all__ = ["UnitConsistencyChecker", "DEFAULT_UNIT_REGISTRY", "unit_of_name"]

#: names that carry a unit but not a suffix — the explicit registry.
#: Extend here (or with an inline ``# repro-lint: unit(x)=u`` note) when
#: a new unitful name escapes the suffix convention.
DEFAULT_UNIT_REGISTRY: dict[str, str] = {
    "makespan": "seconds",
    "arrival": "seconds",
    "ttft": "seconds",
    "latency": "seconds",
    "deadline": "seconds",
    "elapsed": "seconds",
    "duration": "seconds",
    "timeout": "seconds",
    "hit_rate": "ratio",
}

# suffix -> unit; longest-match-first so ``_per_s`` beats ``_s`` and the
# cache-accounting suffixes (``_misses``) beat the ``_ms`` time suffix.
_SUFFIX_UNITS: tuple[tuple[str, str], ...] = (
    ("_dedup_ratio", "ratio"),
    ("_replicas", "count"),
    ("_hit_rate", "ratio"),
    ("_seconds", "seconds"),
    ("_gbytes", "gigabytes"),
    ("_misses", "count"),
    ("_tokens", "tokens"),
    ("_blocks", "count"),
    ("_depth", "count"),
    ("_turns", "count"),
    ("_steps", "steps"),
    ("_flops", "flops"),
    ("_bytes", "bytes"),
    ("_hits", "count"),
    ("_time", "seconds"),
    ("_util", "ratio"),
    ("_sec", "seconds"),
    ("_gib", "gigabytes"),
    ("_gb", "gigabytes"),
    ("_ms", "milliseconds"),
    ("_s", "seconds"),
)

_RATE_NUMERATORS = (("requests", "requests"), ("tokens", "tokens"),
                    ("bytes", "bytes"), ("flops", "flops"),
                    ("steps", "steps"))

_FLAGGED_BINOPS = (ast.Add, ast.Sub)


def _own_returns(func: ast.AST) -> list[ast.Return]:
    """``return`` statements belonging to ``func`` itself (nested defs
    and lambdas return on their own behalf and are not descended into)."""
    out: list[ast.Return] = []

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue
            if isinstance(child, ast.Return):
                out.append(child)
            visit(child)

    visit(func)
    return out


def unit_of_name(name: str, registry: dict[str, str] | None = None) -> str | None:
    """Infer the unit a bare identifier carries, or ``None``."""
    lowered = name.lower().lstrip("_")
    if registry and lowered in registry:
        return registry[lowered]
    if lowered in DEFAULT_UNIT_REGISTRY:
        return DEFAULT_UNIT_REGISTRY[lowered]
    if lowered.endswith("_per_s"):
        base = lowered[: -len("_per_s")]
        for needle, unit in _RATE_NUMERATORS:
            if base.endswith(needle):
                return f"{unit}/s"
        return "1/s"
    for suffix, unit in _SUFFIX_UNITS:
        if lowered.endswith(suffix):
            return unit
    return None


def _compatible(a: str, b: str) -> bool:
    if a == b:
        return True
    # The generic rate is compatible with any specific rate.
    if a.endswith("/s") and b.endswith("/s") and "1/s" in (a, b):
        return True
    return False


class UnitConsistencyChecker(Checker):
    code = "RP002"
    name = "unit-consistency"
    description = (
        "additions/comparisons/assignments must not mix units inferred "
        "from the _bytes/_gb/_flops/_tokens/_s/_time suffix convention"
    )
    packages = (
        "repro.kernels",
        "repro.engine",
        "repro.comm",
        "repro.zero",
        "repro.hardware",
        "repro.moe_placement",
        "repro.autoscale",
        "repro.scenarios",
    )

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        registry = {k.lower(): v for k, v in mod.unit_notes.items()}
        findings: list[Finding] = []
        seen: set[tuple[int, int, str]] = set()

        def emit(node: ast.AST, message: str) -> None:
            key = (getattr(node, "lineno", 1), getattr(node, "col_offset", 0),
                   message)
            if key not in seen:
                seen.add(key)
                findings.append(self.finding(mod, node, message))

        def show(node: ast.AST) -> str:
            text = ast.unparse(node)
            return text if len(text) <= 50 else text[:47] + "..."

        def unit_of(node: ast.AST) -> str | None:
            """Infer an expression's unit, emitting findings for any
            mismatched combination found along the way."""
            if isinstance(node, ast.Name):
                return unit_of_name(node.id, registry)
            if isinstance(node, ast.Attribute):
                return unit_of_name(node.attr, registry)
            if isinstance(node, ast.UnaryOp):
                return unit_of(node.operand)
            if isinstance(node, ast.IfExp):
                return _unify(node, node.body, node.orelse, "mixes")
            if isinstance(node, ast.BinOp):
                left, right = unit_of(node.left), unit_of(node.right)
                if isinstance(node.op, _FLAGGED_BINOPS):
                    verb = "adds" if isinstance(node.op, ast.Add) else "subtracts"
                    if left and right and not _compatible(left, right):
                        emit(node, (
                            f"{verb} `{right}` to `{left}`: "
                            f"`{show(node)}` — insert an explicit "
                            f"conversion, or annotate the odd name with "
                            f"`# repro-lint: unit(name)=...`"
                        ))
                    return left or right
                return None  # * and / are how conversions are written
            if isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Name) and func.id in ("min", "max")
                        and len(node.args) > 1
                        and not any(isinstance(a, ast.Starred)
                                    for a in node.args)):
                    units = [unit_of(a) for a in node.args]
                    known = [u for u in units if u]
                    for u in known[1:]:
                        if not _compatible(known[0], u):
                            emit(node, (
                                f"{func.id}() compares `{known[0]}` with "
                                f"`{u}`: `{show(node)}`"
                            ))
                            break
                    return known[0] if known else None
                return None
            return None

        def _unify(node, a, b, verb):
            ua, ub = unit_of(a), unit_of(b)
            if ua and ub and not _compatible(ua, ub):
                emit(node, f"{verb} `{ua}` and `{ub}`: `{show(node)}`")
            return ua or ub

        for node in ast.walk(mod.tree):
            if isinstance(node, ast.BinOp):
                unit_of(node)
            elif isinstance(node, ast.Compare):
                units = [unit_of(node.left)] + [unit_of(c) for c in node.comparators]
                known = [(u, n) for u, n in zip(units, [node.left] + node.comparators) if u]
                for (u, _), (v, _) in zip(known, known[1:]):
                    if not _compatible(u, v):
                        emit(node, (
                            f"compares `{u}` against `{v}`: "
                            f"`{show(node)}` — a unit conversion is missing"
                        ))
            elif isinstance(node, ast.AugAssign) and isinstance(node.op, _FLAGGED_BINOPS):
                target = unit_of(node.target)
                value = unit_of(node.value)
                if target and value and not _compatible(target, value):
                    emit(node, (
                        f"accumulates `{value}` into a `{target}` "
                        f"variable: `{show(node.target)} += "
                        f"{show(node.value)}`"
                    ))
            elif isinstance(node, ast.Assign):
                # Only bare name-to-name copies: `x_bytes = y_flops` is a
                # missing conversion; anything computed may convert.
                if (len(node.targets) == 1
                        and isinstance(node.targets[0], (ast.Name, ast.Attribute))
                        and isinstance(node.value, (ast.Name, ast.Attribute))):
                    target = unit_of(node.targets[0])
                    value = unit_of(node.value)
                    if target and value and not _compatible(target, value):
                        emit(node, (
                            f"assigns a `{value}` value to a `{target}` "
                            f"name: `{show(node)}` — rename one side or "
                            f"convert explicitly"
                        ))
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                declared = unit_of_name(node.name, registry)
                if declared is None:
                    continue
                for sub in _own_returns(node):
                    if sub.value is None:
                        continue
                    got = unit_of(sub.value)
                    if got and not _compatible(declared, got):
                        emit(sub, (
                            f"function `{node.name}` is named as "
                            f"`{declared}` but returns `{got}`: "
                            f"`return {show(sub.value)}`"
                        ))
        yield from findings
