"""RP005: an instance-lifetime memo key must cover every input.

PR 9's prefix-sharing work had exactly this bug: ``DenseStepCost``
memoized prompt pricing under ``("prompt", plen, riders, kv)`` and the
new ``shared_prefix_len`` input was *read* by the cached computation but
*absent* from the key — two requests with the same prompt length and
different shared prefixes silently priced identically. The memo had to
grow ``spl``. This rule mechanizes that review.

A **cache-write site** is ``self._memo[key] = ...`` (chained
``got = self._memo[key] = ...`` included) where the attribute is bound
to a fresh ``{}``/``dict()`` in ``__init__`` and its name says cache
(``memo``/``cache``). For each site the checker compares two source
sets, both expressed as *atomic inputs* — parameters, ``param.attr``
reads (``getattr(p, "lit")`` counts), and mutable ``self`` attributes:

* what the **key** covers: the sources of every key component, with
  locals resolved through their defining assignments (``riders =
  state.batch`` makes ``state.batch`` covered by a key containing
  ``riders``);
* what the **miss computation** reads: every expression in the
  innermost ``if`` body holding the store (the ``if got is None:``
  idiom) or, failing that, the stored value itself. Calls to sibling
  methods pull in that method's own ``self`` attribute reads — one
  level of the call graph, enough for memoized-helper towers like
  ``_fwd_pass``.

A miss-read input that the key does not cover is flagged at the store.
``self`` attributes assigned only in ``__init__`` are exempt — they are
per-instance constants, and the memo is per-instance too; attributes
the class mutates elsewhere are not.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..core import Finding, ProjectChecker
from ..project import ClassSummary, ModuleSymbols, ProjectInfo

__all__ = ["MemoKeyChecker"]

#: attribute names that read as instance-lifetime caches
_CACHE_NAME_RE = re.compile(r"(?:^|_)(?:memo|cache)s?(?:_|$)|(?:memo|cache)$")

# an atomic input: ("param", p) | ("pattr", p, a) | ("self", a)
Source = tuple


def _is_cache_attr(name: str) -> bool:
    return bool(_CACHE_NAME_RE.search(name)) and "memory" not in name


class _Taint:
    """Maps local names to the atomic inputs they were computed from."""

    def __init__(self, cls: ClassSummary, symbols: ModuleSymbols,
                 params: set[str]) -> None:
        self.cls = cls
        self.symbols = symbols
        self.params = params
        self.locals: dict[str, set[Source]] = {}

    def assign(self, target: ast.expr, value: ast.expr) -> None:
        sources = self.sources(value)
        if isinstance(target, ast.Name):
            self.locals[target.id] = sources
        elif isinstance(target, ast.Tuple):
            for elt in target.elts:  # coarse: every element gets the union
                if isinstance(elt, ast.Name):
                    self.locals[elt.id] = set(sources)

    def sources(self, node: ast.expr | None) -> set[Source]:
        out: set[Source] = set()
        if node is None:
            return out
        self._collect(node, out)
        return out

    def _collect(self, node: ast.AST, out: set[Source]) -> None:
        if isinstance(node, ast.Name):
            if node.id in self.locals:
                out |= self.locals[node.id]
            elif node.id in self.params:
                out.add(("param", node.id))
            return
        if isinstance(node, ast.Attribute):
            base = node.value
            if isinstance(base, ast.Name):
                if base.id == "self":
                    out.add(("self", node.attr))
                    return
                if base.id in self.params:
                    out.add(("pattr", base.id, node.attr))
                    return
            self._collect(base, out)  # attr of a local/expression: coarse
            return
        if isinstance(node, ast.Call):
            self._call_sources(node, out)
            return
        for child in ast.iter_child_nodes(node):
            self._collect(child, out)

    def _call_sources(self, node: ast.Call, out: set[Source]) -> None:
        # getattr(p, "lit"[, default]) is an attribute read in disguise
        if (isinstance(node.func, ast.Name) and node.func.id == "getattr"
                and len(node.args) >= 2
                and isinstance(node.args[0], ast.Name)
                and isinstance(node.args[1], ast.Constant)
                and isinstance(node.args[1].value, str)):
            base = node.args[0].id
            if base in self.params:
                out.add(("pattr", base, node.args[1].value))
            else:
                self._collect(node.args[0], out)
            for extra in node.args[2:]:
                self._collect(extra, out)
            return
        # self.method(...): one level of summary — the method's own
        # self-attribute reads join the sources alongside the arguments
        if (isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
                and node.func.attr in self.cls.methods):
            for attr in self.cls.methods[node.func.attr].self_attr_reads:
                out.add(("self", attr))
        else:
            self._collect(node.func, out)
        for arg in node.args:
            self._collect(arg, out)
        for kw in node.keywords:
            self._collect(kw.value, out)


class MemoKeyChecker(ProjectChecker):
    code = "RP005"
    name = "memo-key-completeness"
    description = (
        "a self._memo[key]-style cache key must cover every parameter, "
        "param attribute and mutable self attribute the cached "
        "computation reads"
    )

    def check_project(self, project: ProjectInfo) -> Iterator[Finding]:
        for symbols in project.symbols.values():
            for cls in symbols.classes.values():
                for method in cls.methods.values():
                    yield from self._check_method(symbols, cls, method)

    def _check_method(self, symbols: ModuleSymbols, cls: ClassSummary,
                      method) -> Iterator[Finding]:
        node = method.node
        params = {p.name for p in method.params} - {"self", "cls"}
        stores = _cache_stores(node, cls)
        if not stores:
            return
        taint = _Taint(cls, symbols, params)
        mod = symbols.mod
        # Replay assignments in source order, checking each store as it
        # is reached so the taint state matches the program point.
        for stmt, store, cache_attr, key_expr, miss_scope in _walk_schedule(
                node, stores):
            if store is None:
                if isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        taint.assign(target, stmt.value)
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    taint.assign(stmt.target, stmt.value)
                elif isinstance(stmt, ast.AugAssign):
                    if isinstance(stmt.target, ast.Name):
                        taint.locals.setdefault(stmt.target.id, set()).update(
                            taint.sources(stmt.value))
                continue
            key_sources = taint.sources(key_expr)
            miss_sources: set[Source] = set()
            for expr in miss_scope:
                miss_sources |= taint.sources(expr)
            missing = sorted(
                _describe(s) for s in miss_sources
                if not _covered(s, key_sources, cls))
            if missing:
                yield self.finding(mod, store, (
                    f"cache `self.{cache_attr}` key omits "
                    f"{', '.join(f'`{m}`' for m in missing)} — the "
                    f"memoized computation reads "
                    f"{'it' if len(missing) == 1 else 'them'}, so two "
                    f"calls differing only there would collide on one "
                    f"cached value (add to the key tuple, or hoist the "
                    f"read out of the miss path)"
                ))


def _cache_stores(func: ast.AST, cls: ClassSummary) -> dict[ast.Assign, tuple]:
    """Map each cache-write Assign to (cache_attr, key_expr)."""
    out: dict[ast.Assign, tuple] = {}
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if not (isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Attribute)
                    and isinstance(target.value.value, ast.Name)
                    and target.value.value.id == "self"):
                continue
            attr = target.value.attr
            if attr in cls.dict_attrs and _is_cache_attr(attr):
                out[node] = (attr, target.slice)
    return out


def _walk_schedule(func: ast.AST, stores: dict[ast.Assign, tuple]):
    """Yield ``(stmt, store, cache_attr, key_expr, miss_scope)`` in
    source order: plain statements carry ``store=None``; a cache-write
    statement carries its store info and the expressions of its miss
    scope (the innermost enclosing ``if`` body, else the stored value).
    """

    def miss_exprs(if_body: list[ast.stmt] | None,
                   store: ast.Assign) -> list[ast.expr]:
        if if_body is None:
            return [store.value]
        out: list[ast.expr] = []
        for stmt in if_body:
            for sub in ast.walk(stmt):
                if isinstance(sub, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                    if sub.value is not None:
                        out.append(sub.value)
                elif isinstance(sub, (ast.Expr, ast.Return)):
                    if sub.value is not None:
                        out.append(sub.value)
        return out

    def visit(stmts: list[ast.stmt], enclosing_if: list[ast.stmt] | None):
        for stmt in stmts:
            if stmt in stores:
                attr, key = stores[stmt]
                yield stmt, stmt, attr, key, miss_exprs(enclosing_if, stmt)
                continue
            yield stmt, None, None, None, None
            if isinstance(stmt, ast.If):
                yield from visit(stmt.body, stmt.body)
                yield from visit(stmt.orelse, enclosing_if)
            elif isinstance(stmt, (ast.For, ast.While)):
                yield from visit(stmt.body, None)
                yield from visit(stmt.orelse, None)
            elif isinstance(stmt, ast.With):
                yield from visit(stmt.body, enclosing_if)
            elif isinstance(stmt, ast.Try):
                yield from visit(stmt.body, None)
                for handler in stmt.handlers:
                    yield from visit(handler.body, None)
                yield from visit(stmt.finalbody, None)

    yield from visit(getattr(func, "body", []), None)


def _covered(source: Source, key_sources: set[Source],
             cls: ClassSummary) -> bool:
    if source in key_sources:
        return True
    kind = source[0]
    if kind == "pattr":
        # whole object in the key covers all its attributes
        return ("param", source[1]) in key_sources
    if kind == "self":
        attr = source[1]
        if _is_cache_attr(attr):
            return True  # reading a sibling memo is not an input
        if attr in cls.init_attrs or attr not in cls.mutated_attrs:
            return True  # per-instance constant (or unknown/inherited)
        return False
    return False


def _describe(source: Source) -> str:
    if source[0] == "param":
        return source[1]
    if source[0] == "pattr":
        return f"{source[1]}.{source[2]}"
    return f"self.{source[1]}"
