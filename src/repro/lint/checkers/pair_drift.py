"""RP008: registered backend pairs must not drift apart.

The equivalence machinery only means something while the paired seams
really are comparable: :func:`repro.engine.serving_sim.simulate_serving`
is held bit-for-bit against its retained per-step oracle
``simulate_serving_reference``, and the fleet stack prices replicas with
the same knobs the single-server simulator exposes. Those pairs rot
silently — someone adds a kwarg to one side, or nudges a default — and
the equivalence tests keep passing because they pin every argument
explicitly. A drifted *default* is the worst kind: every caller who
relied on "same call, same answer" now compares different systems.

The checker keeps a registry of :class:`SeamPair` entries and, using the
project symbol table, verifies for each that

* both endpoints still exist (a renamed seam is itself a finding);
* every parameter present on both sides has the same kind
  (positional vs keyword-only) and the same default expression;
* parameters present on only one side are declared in the pair's
  ``allow_extra`` set — unless the pair is ``shared_only`` (endpoints
  with intentionally different surfaces, compared on the overlap).

Extend :data:`PAIRED_SEAMS` when a new analytical/functional or
compressed/oracle seam lands; fixtures can instantiate the checker with
their own pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from ..core import Finding, ProjectChecker
from ..project import FunctionSummary, ProjectInfo

__all__ = ["PairDriftChecker", "SeamPair", "PAIRED_SEAMS"]


@dataclass(frozen=True)
class SeamPair:
    """Two functions that must keep their shared surface identical."""

    left: str                              # "module.path:func"
    right: str
    #: params allowed to exist on one side only (ignored if shared_only)
    allow_extra: frozenset[str] = frozenset()
    #: compare only the parameters the two sides share
    shared_only: bool = False
    why: str = ""


#: the seams this repo's equivalence tests lean on
PAIRED_SEAMS: tuple[SeamPair, ...] = (
    SeamPair(
        left="repro.engine.serving_sim:simulate_serving",
        right="repro.engine.serving_sim:simulate_serving_reference",
        allow_extra=frozenset({"detail"}),
        why="event-compressed fast path vs retained per-step oracle: "
            "bit-for-bit equivalence is tested across the shared surface",
    ),
    SeamPair(
        left="repro.engine.serving_sim:simulate_serving",
        right="repro.fleet.sim:simulate_fleet",
        shared_only=True,
        why="a one-replica fleet must reproduce simulate_serving: the "
            "knobs both expose must mean (and default to) the same thing",
    ),
    SeamPair(
        left="repro.fleet.sim:simulate_fleet",
        right="repro.fleet.sim:run_fleet_functional",
        shared_only=True,
        why="analytical control plane vs functional replay: shared "
            "kwargs configure the same scheduler decisions on both sides",
    ),
)


class PairDriftChecker(ProjectChecker):
    code = "RP008"
    name = "backend-pair-drift"
    description = (
        "registered analytical/functional and compressed/oracle seam "
        "pairs must keep identical shared signatures and defaults"
    )

    def __init__(self, pairs: Sequence[SeamPair] = PAIRED_SEAMS) -> None:
        self.pairs = tuple(pairs)

    def check_project(self, project: ProjectInfo) -> Iterator[Finding]:
        for pair in self.pairs:
            yield from self._check_pair(project, pair)

    def _check_pair(self, project: ProjectInfo,
                    pair: SeamPair) -> Iterator[Finding]:
        left = project.resolve_ref(pair.left)
        right = project.resolve_ref(pair.right)
        left_mod = pair.left.partition(":")[0]
        right_mod = pair.right.partition(":")[0]
        # Partial trees (fixtures, single-file runs): a pair whose
        # modules are not in this run is not this run's business.
        if left_mod not in project.modules or right_mod not in project.modules:
            return
        for summary, ref, other in ((left, pair.left, pair.right),
                                    (right, pair.right, pair.left)):
            if summary is None:
                mod = project.modules[ref.partition(":")[0]]
                yield Finding(
                    path=mod.display_path, line=1, col=0, code=self.code,
                    message=(
                        f"paired seam endpoint `{ref}` is gone but "
                        f"`{other}` still exists — update the pair "
                        f"registry in repro.lint.checkers.pair_drift or "
                        f"restore the function"
                    ),
                )
        if left is None or right is None:
            return
        left_params = {p.name: p for p in left.params}
        right_params = {p.name: p for p in right.params}
        for name in sorted(left_params.keys() & right_params.keys()):
            lp, rp = left_params[name], right_params[name]
            if lp.default != rp.default:
                yield self._drift(project, right, (
                    f"paired seams `{left.ref}` and `{right.ref}` "
                    f"disagree on the default of `{name}`: "
                    f"{_show_default(lp.default)} vs "
                    f"{_show_default(rp.default)} — drifted defaults are "
                    f"how equivalence tests rot"
                ))
            elif lp.kind != rp.kind:
                yield self._drift(project, right, (
                    f"paired seams `{left.ref}` and `{right.ref}` pass "
                    f"`{name}` differently ({lp.kind} vs {rp.kind})"
                ))
        if pair.shared_only:
            return
        for name in sorted((left_params.keys() ^ right_params.keys())
                           - pair.allow_extra):
            present, absent = (
                (left, right) if name in left_params else (right, left))
            yield self._drift(project, absent, (
                f"paired seam `{present.ref}` has a parameter `{name}` "
                f"that `{absent.ref}` lacks — add it to both sides or "
                f"declare it in the pair's allow_extra set"
            ))

    def _drift(self, project: ProjectInfo, where: FunctionSummary,
               message: str) -> Finding:
        mod = project.modules[where.module]
        return Finding(
            path=mod.display_path, line=where.lineno, col=0,
            code=self.code, message=message,
        )


def _show_default(default: str | None) -> str:
    return "<required>" if default is None else f"`{default}`"
