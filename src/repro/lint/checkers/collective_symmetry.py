"""RP001: collectives must be issued symmetrically by every rank.

The functional layer is SPMD: every rank runs the same program against
its own shard and synchronizes through the rendezvous collectives of
:class:`repro.comm.functional.Communicator` (``allreduce``,
``allgather``, ``alltoall``, ``broadcast``, ``reduce_scatter``,
``barrier``, ``gather_objects``, ``split``). A collective reached by
only *some* ranks — because it sits under an ``if comm.rank == 0:``
branch, or inside a loop whose trip count depends on the rank — leaves
the others parked at the barrier forever: the classic SPMD deadlock
(DeepSpeed-Inference Secs. V–VI assume fully symmetric schedules).

Point-to-point ``send``/``recv`` are intentionally *not* collectives;
rank-conditional p2p is how pipeline stages talk
(:mod:`repro.parallel.pipeline_exec`) and stays legal.

A rank-dependent ``if`` is tolerated when *both* sides issue the same
collective (the ``broadcast(x if root else None)`` idiom written as a
statement): only the collectives present on one side and missing from
the other are flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Checker, Finding, ModuleInfo

__all__ = ["CollectiveSymmetryChecker", "COLLECTIVES"]

#: rendezvous methods of repro.comm.functional.Communicator — every rank
#: of the world must call each of these the same number of times, in the
#: same order.
COLLECTIVES = frozenset({
    "allreduce",
    "allgather",
    "alltoall",
    "broadcast",
    "reduce_scatter",
    "barrier",
    "gather_objects",
    "split",
})

#: receivers that are definitely not communicators (numpy has
#: ``np.broadcast``; keep it out of the blast radius).
_NON_COMM_RECEIVERS = frozenset({"np", "numpy", "math", "scipy"})


def _collective_name(node: ast.AST) -> str | None:
    """The collective method name if ``node`` is ``<recv>.<coll>(...)``."""
    if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
        return None
    if node.func.attr not in COLLECTIVES:
        return None
    recv = node.func.value
    if isinstance(recv, ast.Name) and recv.id in _NON_COMM_RECEIVERS:
        return None
    return node.func.attr


def _mentions_rank(node: ast.AST) -> bool:
    """Whether an expression depends on the calling rank: any ``.rank``
    attribute (``comm.rank``, ``self.rank``) or name containing ``rank``
    (``rank``, ``tp_rank``, ``stage_rank``)."""
    for n in ast.walk(node):
        if isinstance(n, ast.Attribute) and "rank" in n.attr:
            return True
        if isinstance(n, ast.Name) and "rank" in n.id:
            return True
    return False


def _collectives_in(nodes) -> list[tuple[ast.Call, str]]:
    out = []
    for node in nodes:
        for n in ast.walk(node):
            name = _collective_name(n)
            if name is not None:
                out.append((n, name))
    return out


class CollectiveSymmetryChecker(Checker):
    code = "RP001"
    name = "collective-symmetry"
    description = (
        "Communicator collectives must not sit under rank-dependent "
        "branches or rank-dependent loop bounds (SPMD deadlock)"
    )
    packages = ("repro.parallel", "repro.model")

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        seen: set[tuple[int, int, str]] = set()

        def emit(call: ast.Call, message: str) -> Iterator[Finding]:
            key = (call.lineno, call.col_offset, message)
            if key not in seen:
                seen.add(key)
                yield self.finding(mod, call, message)

        def describe(test: ast.AST) -> str:
            text = ast.unparse(test)
            return text if len(text) <= 60 else text[:57] + "..."

        for node in ast.walk(mod.tree):
            if isinstance(node, ast.If) and _mentions_rank(node.test):
                yield from self._check_branch(
                    node.body, node.orelse, describe(node.test), emit)
            elif isinstance(node, ast.IfExp) and _mentions_rank(node.test):
                yield from self._check_branch(
                    [node.body], [node.orelse], describe(node.test), emit)
            elif isinstance(node, ast.For) and _mentions_rank(node.iter):
                for call, name in _collectives_in(node.body + node.orelse):
                    yield from emit(call, (
                        f"collective `{name}` inside a loop whose trip count "
                        f"depends on the rank (`for ... in "
                        f"{describe(node.iter)}`): ranks would issue "
                        f"different numbers of collectives and deadlock"
                    ))
            elif isinstance(node, ast.While) and _mentions_rank(node.test):
                for call, name in _collectives_in(node.body + node.orelse):
                    yield from emit(call, (
                        f"collective `{name}` inside a `while "
                        f"{describe(node.test)}` loop: the trip count is "
                        f"rank-dependent, so ranks would issue different "
                        f"numbers of collectives and deadlock"
                    ))

    def _check_branch(self, body, orelse, test_text, emit):
        """Flag collectives present on one side of a rank-dependent
        branch but absent from the other (symmetric pairs are legal)."""
        body_calls = _collectives_in(body)
        orelse_calls = _collectives_in(orelse)
        body_names = {name for _, name in body_calls}
        orelse_names = {name for _, name in orelse_calls}
        for calls, here, there, where in (
            (body_calls, body_names, orelse_names, "then"),
            (orelse_calls, orelse_names, body_names, "else"),
        ):
            for call, name in calls:
                if name not in there:
                    yield from emit(call, (
                        f"collective `{name}` is only reached on the "
                        f"{where}-side of the rank-dependent branch `if "
                        f"{test_text}`: ranks taking the other path skip "
                        f"it and every rank blocks at the rendezvous "
                        f"(SPMD deadlock)"
                    ))
