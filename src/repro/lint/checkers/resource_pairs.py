"""RP006: acquire/release discipline for refcounted KV resources.

:class:`repro.model.paged_kv.BlockAllocator` hands out block references
through ``alloc()``/``share()`` and takes them back one ``free()`` at a
time; :meth:`PagedKVCache.fork` mints a whole child cache whose blocks
stay alive until *its* ``free()``. The dedup accounting the prefix-
sharing stack reports (``kv_blocks_saved``, ``shared_blocks``, peak
pool occupancy) is only as good as this pairing: a code path that drops
a reference without freeing it strands blocks in the pool forever, and
a double release corrupts a *different* owner's refcount.

The rule tracks, per function, every local bound to an acquire call —
``x = <recv>.alloc()``, ``x = <recv>.fork(...)``, ``x = <recv>.share(b)``
— and symbolically walks the function's branches. Each path must end
with the obligation either

* **released** — ``x.free()``, ``<recv>.free(x)``, or ``x`` passed to a
  helper whose project summary says it frees that parameter (one level
  of the call graph, the "follow one level of helpers" contract); or
* **escaped** — returned, yielded, stored into an attribute, container
  or collection, or handed to a call that keeps it: ownership moved,
  some other scope now carries the obligation.

A path that reaches function end (or a ``return`` not mentioning ``x``)
with the obligation still live is a **leak**, reported at the acquire
site; a release on a path where a release may already have happened is
a **double release**, reported at the second ``free``. A bare
``<recv>.alloc()``/``.fork()`` statement whose result is discarded is a
leak outright. Exception exits (``raise``) end a path without a verdict
— exceptional cleanup is the allocator's double-free guard's business.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Finding, ProjectChecker
from ..project import FunctionSummary, ModuleSymbols, ProjectInfo

__all__ = ["ResourcePairChecker"]

#: methods that mint a tracked reference when their result is bound
_ACQUIRES = frozenset({"alloc", "fork", "share"})
#: acquire methods whose *discarded* result is a leak outright (a bare
#: ``.share(b)`` statement is the add-a-reference idiom and stays legal)
_DISCARD_LEAKS = frozenset({"alloc", "fork"})

_LIVE, _RELEASED, _ESCAPED = "live", "released", "escaped"


def _acquire_attr(value: ast.expr) -> str | None:
    if (isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr in _ACQUIRES):
        return value.func.attr
    return None


class _FuncState:
    """Mutable path state: obligation name -> set of possible states."""

    def __init__(self) -> None:
        self.states: dict[str, set[str]] = {}
        self.dead = False

    def copy(self) -> "_FuncState":
        out = _FuncState()
        out.states = {k: set(v) for k, v in self.states.items()}
        out.dead = self.dead
        return out

    def merge(self, other: "_FuncState") -> None:
        if other.dead:
            return
        if self.dead:
            self.states = other.states
            self.dead = False
            return
        for name, states in other.states.items():
            self.states.setdefault(name, set()).update(states)


class ResourcePairChecker(ProjectChecker):
    code = "RP006"
    name = "resource-pair-discipline"
    description = (
        "every BlockAllocator alloc/share and PagedKVCache fork must be "
        "freed or ownership-transferred on every code path; no path may "
        "release twice"
    )
    packages = ("repro.model", "repro.engine", "repro.fleet")

    def check_project(self, project: ProjectInfo) -> Iterator[Finding]:
        for symbols in project.symbols.values():
            if not self.applies_to(symbols.mod):
                continue
            for cls_name, summary in _scopes(symbols):
                yield from self._check_function(
                    project, symbols, cls_name, summary)

    def _check_function(self, project: ProjectInfo, symbols: ModuleSymbols,
                        cls_name: str | None,
                        summary: FunctionSummary) -> Iterator[Finding]:
        mod = symbols.mod
        findings: list[Finding] = []
        flagged: set[str] = set()          # one verdict per obligation
        acquires: dict[str, ast.AST] = {}  # obligation -> acquire node
        captured = _captured_names(summary.node)

        def frees_via_helper(call: ast.Call) -> set[str]:
            """Tracked names this call releases through a helper summary."""
            raw = _dotted(call.func)
            if raw is None:
                return set()
            callee = project.resolve_call_name(symbols.module, raw,
                                               cls=cls_name)
            if callee is None or not callee.frees_params:
                return set()
            out: set[str] = set()
            positional = callee.positional()
            if positional and positional[0].name in ("self", "cls") \
                    and isinstance(call.func, ast.Attribute):
                positional = positional[1:]
            for arg, param in zip(call.args, positional):
                if isinstance(arg, ast.Name) and param.name in callee.frees_params:
                    out.add(arg.id)
            for kw in call.keywords:
                if isinstance(kw.value, ast.Name) \
                        and kw.arg in callee.frees_params:
                    out.add(kw.value.id)
            return out

        def leak(name: str, why: str) -> None:
            if name in flagged:
                return
            flagged.add(name)
            attr = _acquire_attr_of(acquires[name])
            findings.append(self.finding(mod, acquires[name], (
                f"`{name}` (from `.{attr}(...)`) may leak: {why} without "
                f"`free()` or an ownership transfer — refcounted blocks "
                f"stranded in the pool corrupt dedup accounting"
            )))

        def double(name: str, node: ast.AST) -> None:
            if name in flagged:
                return
            flagged.add(name)
            findings.append(self.finding(mod, node, (
                f"`{name}` may already be released on a prior path when "
                f"this `free` runs: a double release decrements another "
                f"owner's refcount"
            )))

        def releases_in(stmt: ast.stmt, state: _FuncState) -> set[str]:
            """Names this statement releases (direct free or helper)."""
            out: set[str] = set()
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                if isinstance(node.func, ast.Attribute) \
                        and node.func.attr == "free":
                    recv = node.func.value
                    if isinstance(recv, ast.Name) and recv.id in state.states \
                            and not node.args:
                        out.add(recv.id)
                    for arg in node.args:
                        if isinstance(arg, ast.Name) and arg.id in state.states:
                            out.add(arg.id)
                else:
                    out |= {n for n in frees_via_helper(node)
                            if n in state.states}
            return out

        def escapes_in(stmt: ast.stmt, state: _FuncState,
                       released: set[str]) -> set[str]:
            """Tracked names this statement passes ownership of."""
            out: set[str] = set()
            skip_tests = []
            if isinstance(stmt, (ast.If, ast.While)):
                skip_tests = list(ast.walk(stmt.test))
            for node in ast.walk(stmt):
                if node in skip_tests:
                    continue
                if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load) \
                        and node.id in state.states and node.id not in released:
                    out.add(node.id)
            return out

        def exec_stmt(stmt: ast.stmt, state: _FuncState) -> None:
            if state.dead:
                return
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                return  # nested defs handled via captured-names escape
            if isinstance(stmt, ast.If):
                then_state = state.copy()
                else_state = state.copy()
                _apply_uses(stmt, then_state, header_only=True)
                _apply_uses(stmt, else_state, header_only=True)
                for s in stmt.body:
                    exec_stmt(s, then_state)
                for s in stmt.orelse:
                    exec_stmt(s, else_state)
                state.states = {}
                state.dead = True
                state.merge(then_state)
                state.merge(else_state)
                return
            if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                body_state = state.copy()
                for s in stmt.body:
                    exec_stmt(s, body_state)
                for s in stmt.orelse:
                    exec_stmt(s, body_state)
                state.merge(body_state)  # 0-or-more iterations
                return
            if isinstance(stmt, ast.Try):
                for s in stmt.body:
                    exec_stmt(s, state)
                pre = state.copy()
                for handler in stmt.handlers:
                    h_state = pre.copy()
                    for s in handler.body:
                        exec_stmt(s, h_state)
                    state.merge(h_state)
                for s in stmt.finalbody:
                    exec_stmt(s, state)
                return
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                _apply_uses(stmt, state, header_only=True)
                for s in stmt.body:
                    exec_stmt(s, state)
                return
            if isinstance(stmt, (ast.Raise, ast.Break, ast.Continue)):
                state.dead = True
                return
            if isinstance(stmt, ast.Return):
                _apply_uses(stmt, state)
                for name, states in state.states.items():
                    if _LIVE in states and name not in flagged:
                        leak(name, f"the path returning at line "
                                   f"{stmt.lineno} drops it")
                state.dead = True
                return
            # simple statement: releases, then acquires, then escapes
            _apply_uses(stmt, state)

        def _apply_uses(stmt: ast.stmt, state: _FuncState,
                        header_only: bool = False) -> None:
            scan: ast.stmt | ast.expr = stmt
            if header_only:
                if isinstance(stmt, (ast.If, ast.While)):
                    return  # branch tests neither release nor escape
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    return
            released = releases_in(scan, state)
            for name in released:
                if _RELEASED in state.states[name]:
                    double(name, stmt)
                state.states[name] = {_RELEASED}
            # new obligations minted by this statement
            bound: set[str] = set()
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                value = stmt.value
                targets = stmt.targets if isinstance(stmt, ast.Assign) \
                    else [stmt.target]
                attr = _acquire_attr(value) if value is not None else None
                if attr is not None and len(targets) == 1 \
                        and isinstance(targets[0], ast.Name):
                    name = targets[0].id
                    if name not in captured:
                        acquires[name] = value
                        state.states[name] = {_LIVE}
                        bound.add(name)
            elif isinstance(stmt, ast.Expr):
                attr = _acquire_attr(stmt.value)
                if attr in _DISCARD_LEAKS:
                    acquires[f"<discarded:{stmt.lineno}>"] = stmt.value
                    leak(f"<discarded:{stmt.lineno}>",
                         "its result is discarded")
            for name in escapes_in(scan, state, released | bound):
                state.states[name] = {_ESCAPED}

        body = getattr(summary.node, "body", [])
        state = _FuncState()
        for stmt in body:
            exec_stmt(stmt, state)
        if not state.dead:
            for name, states in state.states.items():
                if _LIVE in states:
                    leak(name, "a path reaches the end of "
                               f"`{summary.qualname}`")
        yield from findings


def _acquire_attr_of(node: ast.AST) -> str:
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        return node.func.attr
    return "alloc"


def _captured_names(func: ast.AST) -> set[str]:
    """Names referenced inside nested defs/lambdas — closures keep them
    alive, so tracking their ownership locally would be wrong."""
    out: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)) and node is not func:
            for sub in ast.walk(node):
                if isinstance(sub, ast.Name):
                    out.add(sub.id)
    return out


def _scopes(symbols: ModuleSymbols):
    for summary in symbols.functions.values():
        yield None, summary
    for cls in symbols.classes.values():
        for summary in cls.methods.values():
            yield cls.name, summary


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
