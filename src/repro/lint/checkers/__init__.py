"""The battery of domain-aware checkers shipped with repro-lint.

Codes are stable and grep-able:

* **RP001** ``collective-symmetry`` — SPMD collectives under
  rank-dependent control flow (deadlock).
* **RP002** ``unit-consistency`` — seconds/bytes/FLOPs/tokens mixed
  without conversion, inferred from the suffix convention.
* **RP003** ``sim-determinism`` — global RNG, wall-clock reads, and
  unordered-set iteration inside simulation code.
* **RP004** ``api-hygiene`` — mutable default arguments and ``__all__``
  drift in package ``__init__`` files.

The second four need the whole-program pass
(:class:`repro.lint.project.ProjectInfo`) and subclass
:class:`repro.lint.core.ProjectChecker`:

* **RP005** ``memo-key-completeness`` — an instance-lifetime cache key
  omits an input the memoized computation reads.
* **RP006** ``resource-pair-discipline`` — a BlockAllocator
  alloc/share or cache fork leaks (or double-frees) along some path.
* **RP007** ``unit-flow`` — RP002's suffix units enforced across call
  boundaries: arguments onto parameters, return units onto targets.
* **RP008** ``backend-pair-drift`` — registered analytical/functional
  and compressed/oracle seam pairs drifted in signature or defaults.

Adding a checker: subclass :class:`repro.lint.core.Checker` (or
``ProjectChecker`` if it needs cross-module facts), give it a fresh
``RPnnn`` code, and append it to :func:`all_checkers`.
"""

from __future__ import annotations

from ..core import Checker
from .api_hygiene import ApiHygieneChecker
from .collective_symmetry import CollectiveSymmetryChecker
from .determinism import SimDeterminismChecker
from .unit_consistency import UnitConsistencyChecker

# project-pass checkers import ..project, which itself leans on
# unit_consistency — keep these imports after the per-module battery
from .memo_keys import MemoKeyChecker
from .pair_drift import PairDriftChecker
from .resource_pairs import ResourcePairChecker
from .unit_flow import UnitFlowChecker

__all__ = [
    "ApiHygieneChecker",
    "Checker",
    "CollectiveSymmetryChecker",
    "MemoKeyChecker",
    "PairDriftChecker",
    "ResourcePairChecker",
    "SimDeterminismChecker",
    "UnitConsistencyChecker",
    "UnitFlowChecker",
    "all_checkers",
    "select_checkers",
]


def all_checkers() -> list[Checker]:
    """One fresh instance of every registered checker, code order."""
    return [
        CollectiveSymmetryChecker(),
        UnitConsistencyChecker(),
        SimDeterminismChecker(),
        ApiHygieneChecker(),
        MemoKeyChecker(),
        ResourcePairChecker(),
        UnitFlowChecker(),
        PairDriftChecker(),
    ]


def select_checkers(codes: str | None) -> list[Checker]:
    """Subset by comma-separated codes (``"RP001,RP003"``); None = all."""
    checkers = all_checkers()
    if codes is None:
        return checkers
    wanted = {c.strip().upper() for c in codes.split(",") if c.strip()}
    unknown = wanted - {c.code for c in checkers}
    if unknown:
        raise ValueError(f"unknown checker codes: {sorted(unknown)}")
    return [c for c in checkers if c.code in wanted]
