"""The battery of domain-aware checkers shipped with repro-lint.

Codes are stable and grep-able:

* **RP001** ``collective-symmetry`` — SPMD collectives under
  rank-dependent control flow (deadlock).
* **RP002** ``unit-consistency`` — seconds/bytes/FLOPs/tokens mixed
  without conversion, inferred from the suffix convention.
* **RP003** ``sim-determinism`` — global RNG, wall-clock reads, and
  unordered-set iteration inside simulation code.
* **RP004** ``api-hygiene`` — mutable default arguments and ``__all__``
  drift in package ``__init__`` files.

Adding a checker: subclass :class:`repro.lint.core.Checker`, give it a
fresh ``RPnnn`` code, and append it to :func:`all_checkers`.
"""

from __future__ import annotations

from ..core import Checker
from .api_hygiene import ApiHygieneChecker
from .collective_symmetry import CollectiveSymmetryChecker
from .determinism import SimDeterminismChecker
from .unit_consistency import UnitConsistencyChecker

__all__ = [
    "ApiHygieneChecker",
    "Checker",
    "CollectiveSymmetryChecker",
    "SimDeterminismChecker",
    "UnitConsistencyChecker",
    "all_checkers",
    "select_checkers",
]


def all_checkers() -> list[Checker]:
    """One fresh instance of every registered checker, code order."""
    return [
        CollectiveSymmetryChecker(),
        UnitConsistencyChecker(),
        SimDeterminismChecker(),
        ApiHygieneChecker(),
    ]


def select_checkers(codes: str | None) -> list[Checker]:
    """Subset by comma-separated codes (``"RP001,RP003"``); None = all."""
    checkers = all_checkers()
    if codes is None:
        return checkers
    wanted = {c.strip().upper() for c in codes.split(",") if c.strip()}
    unknown = wanted - {c.code for c in checkers}
    if unknown:
        raise ValueError(f"unknown checker codes: {sorted(unknown)}")
    return [c for c in checkers if c.code in wanted]
