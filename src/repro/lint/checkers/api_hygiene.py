"""RP004: API hygiene — mutable defaults and ``__all__`` drift.

Two low-level-but-recurring defect classes across the whole tree:

* **mutable default arguments** — ``def f(x, acc=[])`` shares one list
  across every call; state leaks between requests/replicas silently.
* **``__all__`` drift** — every package ``__init__.py`` in this repo
  re-exports its public surface through an explicit ``__all__``. A name
  listed but no longer bound breaks ``from repro.x import *`` and the
  doc build; a public re-export missing from ``__all__`` ships an
  undocumented API. Both directions are flagged, for ``__init__.py``
  files only (modules may legitimately keep helpers public-but-local).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Checker, Finding, ModuleInfo

__all__ = ["ApiHygieneChecker"]

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp,
                     ast.DictComp, ast.SetComp)
_MUTABLE_FACTORIES = frozenset({
    "list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter",
    "OrderedDict",
})


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in _MUTABLE_FACTORIES:
            return True
        if isinstance(func, ast.Attribute) and func.attr in _MUTABLE_FACTORIES:
            return True
    return False


class ApiHygieneChecker(Checker):
    code = "RP004"
    name = "api-hygiene"
    description = (
        "no mutable default arguments; package __init__ __all__ lists "
        "must match the names actually bound"
    )
    packages = ()  # every module under the linted tree

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        yield from self._check_mutable_defaults(mod)
        if mod.is_package_init:
            yield from self._check_all_drift(mod)

    # -- mutable defaults --------------------------------------------------

    def _check_mutable_defaults(self, mod: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(mod.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            args = node.args
            positional = args.posonlyargs + args.args
            pairs = list(zip(positional[len(positional) - len(args.defaults):],
                             args.defaults))
            pairs += [(a, d) for a, d in zip(args.kwonlyargs, args.kw_defaults)
                      if d is not None]
            where = (f"function `{node.name}`"
                     if not isinstance(node, ast.Lambda) else "lambda")
            for arg, default in pairs:
                if _is_mutable_default(default):
                    yield self.finding(mod, default, (
                        f"mutable default `{arg.arg}="
                        f"{ast.unparse(default)[:40]}` in {where}: the "
                        f"object is shared across every call — default "
                        f"to None and construct inside"
                    ))

    # -- __all__ drift -----------------------------------------------------

    def _check_all_drift(self, mod: ModuleInfo) -> Iterator[Finding]:
        declared: list[str] | None = None
        decl_node: ast.AST | None = None
        exact = True          # False once __all__ is mutated dynamically
        bound: dict[str, ast.AST] = {}

        for node in mod.tree.body:
            if isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        exact = False
                        continue
                    bound[alias.asname or alias.name] = node
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    bound[alias.asname or alias.name.split(".")[0]] = node
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                bound[node.name] = node
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if target.id == "__all__":
                        try:
                            values = ast.literal_eval(node.value)
                            declared = [str(v) for v in values]
                            decl_node = node
                        except (ValueError, TypeError):
                            exact = False
                    else:
                        bound[target.id] = node
            elif isinstance(node, ast.AnnAssign) and isinstance(
                    node.target, ast.Name) and node.target.id != "__all__":
                bound[node.target.id] = node
            elif isinstance(node, ast.AugAssign) and isinstance(
                    node.target, ast.Name) and node.target.id == "__all__":
                exact = False

        if declared is None or not exact:
            return  # nothing to check, or __all__ built dynamically

        dupes = {n for n in declared if declared.count(n) > 1}
        for name in sorted(dupes):
            yield self.finding(mod, decl_node, (
                f"`__all__` lists `{name}` more than once"
            ))
        for name in declared:
            if name not in bound:
                yield self.finding(mod, decl_node, (
                    f"`__all__` exports `{name}` but the module never "
                    f"binds it: `from {mod.module} import *` would fail"
                ))
        listed = set(declared)
        for name, node in sorted(bound.items()):
            if name.startswith("_") or name in listed:
                continue
            yield self.finding(mod, node, (
                f"public name `{name}` is bound in this package "
                f"__init__ but missing from `__all__` (undocumented "
                f"re-export — list it or underscore it)"
            ))
