"""Whole-program layer for repro-lint: the :class:`ProjectInfo` pass.

The per-module checkers (RP001–RP004) see one :class:`ModuleInfo` at a
time, so the bug classes that actually bit this repo — a memo cache
whose key forgot a new input, a KV block acquired in one helper and
freed (or not) in another, a ``*_bytes`` return flowing into a ``*_s``
parameter two modules away, a paired analytical/functional seam whose
kwarg defaults drifted apart — were invisible to them. This module
walks the *whole* linted tree once and builds the shared
infrastructure those rules need:

* a **project symbol table** — every top-level function and class (with
  its methods), addressable as ``module:qualname``;
* an **import graph** — which linted module imports which, with the
  local-name → dotted-target bindings needed to resolve calls;
* a **call graph** — one edge per resolved call site, including
  ``self.method`` dispatch within a class;
* **per-function summaries** — parameters (with unparsed defaults),
  ``self`` attributes read and written, parameters the body calls
  ``.free()`` on, and the unit the function returns (inferred from its
  name suffix or a unanimous vote of its ``return`` expressions).

Checkers subclass :class:`repro.lint.core.ProjectChecker` and receive
the built :class:`ProjectInfo` in ``check_project``. The build is one
extra AST walk per module — linear in the tree, no fixpoints — so the
whole-program pass stays well inside the lint wall-clock budget.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable

from .core import ModuleInfo
from .checkers.unit_consistency import unit_of_name

__all__ = [
    "ClassSummary",
    "FunctionSummary",
    "ModuleSymbols",
    "ParamInfo",
    "ProjectInfo",
]


@dataclass(frozen=True)
class ParamInfo:
    """One parameter of a summarized function."""

    name: str
    kind: str             # "pos", "kwonly", "vararg" or "kwarg"
    default: str | None   # unparsed default expression; None = required


@dataclass
class FunctionSummary:
    """What the project pass knows about one function or method."""

    module: str
    qualname: str                     # "f" or "Class.method"
    lineno: int
    node: ast.AST = field(repr=False)
    params: tuple[ParamInfo, ...] = ()
    #: parameter names the body calls ``.free()`` on (``p.free()``,
    #: ``p.x.free()`` or ``anything.free(p)``) — the resource-pair
    #: checker treats passing an obligation here as a release.
    frees_params: frozenset[str] = frozenset()
    self_attr_reads: frozenset[str] = frozenset()
    self_attr_writes: frozenset[str] = frozenset()
    #: unit the function returns, per the suffix convention: the
    #: function's own name wins, else a unanimous vote of its returns.
    return_unit: str | None = None
    #: raw dotted call targets as written (``self._fwd_pass``, ``np.full``)
    calls: tuple[str, ...] = ()

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]

    @property
    def ref(self) -> str:
        return f"{self.module}:{self.qualname}"

    def param_named(self, name: str) -> ParamInfo | None:
        for p in self.params:
            if p.name == name:
                return p
        return None

    def positional(self) -> list[ParamInfo]:
        return [p for p in self.params if p.kind == "pos"]


@dataclass
class ClassSummary:
    """One class: its methods plus attribute-mutation discipline."""

    module: str
    name: str
    lineno: int
    methods: dict[str, FunctionSummary] = field(default_factory=dict)
    #: ``self`` attributes assigned in ``__init__`` only — per-instance
    #: constants as far as any instance-lifetime cache is concerned
    init_attrs: set[str] = field(default_factory=set)
    #: ``self`` attributes assigned outside ``__init__`` — mutable state
    mutated_attrs: set[str] = field(default_factory=set)
    #: attributes bound to a fresh ``{}``/``dict()`` in ``__init__`` —
    #: the candidates for instance-lifetime memo caches
    dict_attrs: set[str] = field(default_factory=set)


@dataclass
class ModuleSymbols:
    """Symbol table of one linted module."""

    module: str
    mod: ModuleInfo
    functions: dict[str, FunctionSummary] = field(default_factory=dict)
    classes: dict[str, ClassSummary] = field(default_factory=dict)
    #: local name -> dotted target, e.g. ``{"np": "numpy",
    #: "simulate_serving": "repro.engine.serving_sim.simulate_serving"}``
    imports: dict[str, str] = field(default_factory=dict)


def _params_of(node: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[ParamInfo, ...]:
    a = node.args
    out: list[ParamInfo] = []
    positional = list(a.posonlyargs) + list(a.args)
    defaults: list[ast.expr | None] = [None] * (
        len(positional) - len(a.defaults)) + list(a.defaults)
    for arg, default in zip(positional, defaults):
        out.append(ParamInfo(arg.arg, "pos",
                             None if default is None else ast.unparse(default)))
    if a.vararg is not None:
        out.append(ParamInfo(a.vararg.arg, "vararg", None))
    for arg, default in zip(a.kwonlyargs, a.kw_defaults):
        out.append(ParamInfo(arg.arg, "kwonly",
                             None if default is None else ast.unparse(default)))
    if a.kwarg is not None:
        out.append(ParamInfo(a.kwarg.arg, "kwarg", None))
    return tuple(out)


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` as text for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _own_nodes(func: ast.AST):
    """Walk ``func``'s body without descending into nested defs/lambdas
    (their reads and returns are their own)."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _frees_params(func: ast.AST, param_names: set[str]) -> frozenset[str]:
    freed: set[str] = set()
    for node in _own_nodes(func):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "free"):
            continue
        # p.free() / p.anything.free(): the receiver chain's base
        base = node.func.value
        while isinstance(base, ast.Attribute):
            base = base.value
        if isinstance(base, ast.Name) and base.id in param_names:
            freed.add(base.id)
        # anything.free(p)
        for arg in node.args:
            if isinstance(arg, ast.Name) and arg.id in param_names:
                freed.add(arg.id)
    return frozenset(freed)


def _return_unit(node: ast.FunctionDef | ast.AsyncFunctionDef,
                 registry: dict[str, str]) -> str | None:
    declared = unit_of_name(node.name, registry)
    if declared is not None:
        return declared
    units: set[str] = set()
    saw_return = False
    for sub in _own_nodes(node):
        if not isinstance(sub, ast.Return) or sub.value is None:
            continue
        saw_return = True
        value = sub.value
        got = None
        if isinstance(value, ast.Name):
            got = unit_of_name(value.id, registry)
        elif isinstance(value, ast.Attribute):
            got = unit_of_name(value.attr, registry)
        if got is None:
            return None  # any un-inferable return spoils unanimity
        units.add(got)
    return units.pop() if saw_return and len(units) == 1 else None


def _summarize_function(
    module: str,
    qualname: str,
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    registry: dict[str, str],
) -> FunctionSummary:
    param_names = {a.arg for a in [*node.args.posonlyargs, *node.args.args,
                                   *node.args.kwonlyargs]}
    reads: set[str] = set()
    writes: set[str] = set()
    calls: list[str] = []
    for sub in _own_nodes(node):
        if isinstance(sub, ast.Attribute) and isinstance(sub.value, ast.Name) \
                and sub.value.id == "self":
            if isinstance(sub.ctx, ast.Store):
                writes.add(sub.attr)
            else:
                reads.add(sub.attr)
        elif isinstance(sub, ast.Call):
            name = dotted_name(sub.func)
            if name is not None:
                calls.append(name)
    return FunctionSummary(
        module=module,
        qualname=qualname,
        lineno=node.lineno,
        node=node,
        params=_params_of(node),
        frees_params=_frees_params(node, param_names),
        self_attr_reads=frozenset(reads),
        self_attr_writes=frozenset(writes),
        return_unit=_return_unit(node, registry),
        calls=tuple(calls),
    )


def _is_fresh_dict(value: ast.expr) -> bool:
    return (isinstance(value, ast.Dict) and not value.keys) or (
        isinstance(value, ast.Call) and isinstance(value.func, ast.Name)
        and value.func.id == "dict" and not value.args and not value.keywords)


def _summarize_class(module: str, node: ast.ClassDef,
                     registry: dict[str, str]) -> ClassSummary:
    cls = ClassSummary(module=module, name=node.name, lineno=node.lineno)
    for stmt in node.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        summary = _summarize_function(
            module, f"{node.name}.{stmt.name}", stmt, registry)
        cls.methods[stmt.name] = summary
        if stmt.name == "__init__":
            cls.init_attrs |= summary.self_attr_writes
            for sub in _own_nodes(stmt):
                targets: list[ast.expr] = []
                value: ast.expr | None = None
                if isinstance(sub, ast.Assign):
                    targets, value = sub.targets, sub.value
                elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                    targets, value = [sub.target], sub.value
                if value is None or not _is_fresh_dict(value):
                    continue
                for t in targets:
                    if isinstance(t, ast.Attribute) \
                            and isinstance(t.value, ast.Name) \
                            and t.value.id == "self":
                        cls.dict_attrs.add(t.attr)
        else:
            cls.mutated_attrs |= summary.self_attr_writes
    cls.init_attrs -= cls.mutated_attrs
    return cls


def _resolve_imports(mod: ModuleInfo) -> dict[str, str]:
    """Local name -> dotted target for every top-level import."""
    out: dict[str, str] = {}
    package = mod.module if mod.is_package_init else \
        mod.module.rsplit(".", 1)[0] if "." in mod.module else ""
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                out[local] = target
                if alias.asname is None and "." in alias.name:
                    # `import a.b` also makes `a.b.f` resolvable
                    out[alias.name] = alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                parts = package.split(".") if package else []
                if node.level > 1:
                    parts = parts[: len(parts) - (node.level - 1)]
                base = ".".join(parts)
            else:
                base = ""
            target_mod = node.module or ""
            if node.level:
                target_mod = f"{base}.{target_mod}" if target_mod else base
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                out[local] = f"{target_mod}.{alias.name}" if target_mod \
                    else alias.name
    return out


@dataclass
class ProjectInfo:
    """The whole-program view handed to :class:`ProjectChecker` rules."""

    modules: dict[str, ModuleInfo] = field(default_factory=dict)
    symbols: dict[str, ModuleSymbols] = field(default_factory=dict)
    #: linted module -> linted modules it imports from
    import_graph: dict[str, set[str]] = field(default_factory=dict)
    #: ``module:qualname`` -> resolved callee refs (same format)
    call_graph: dict[str, set[str]] = field(default_factory=dict)

    @classmethod
    def build(cls, mods: Iterable[ModuleInfo]) -> "ProjectInfo":
        info = cls()
        for mod in mods:
            registry = {k.lower(): v for k, v in mod.unit_notes.items()}
            symbols = ModuleSymbols(module=mod.module, mod=mod,
                                    imports=_resolve_imports(mod))
            for node in mod.tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    symbols.functions[node.name] = _summarize_function(
                        mod.module, node.name, node, registry)
                elif isinstance(node, ast.ClassDef):
                    symbols.classes[node.name] = _summarize_class(
                        mod.module, node, registry)
            # Last writer wins on duplicate module names (fixtures named
            # identically); real trees have unique dotted names.
            info.modules[mod.module] = mod
            info.symbols[mod.module] = symbols
        info._link()
        return info

    def _link(self) -> None:
        for module, symbols in self.symbols.items():
            targets = set()
            for dotted in symbols.imports.values():
                owner = self._owning_module(dotted)
                if owner is not None and owner != module:
                    targets.add(owner)
            self.import_graph[module] = targets
            for summary in self._all_summaries(symbols):
                edges = set()
                cls_name = summary.qualname.split(".")[0] \
                    if "." in summary.qualname else None
                for raw in summary.calls:
                    callee = self.resolve_call_name(module, raw,
                                                    cls=cls_name)
                    if callee is not None:
                        edges.add(callee.ref)
                self.call_graph[summary.ref] = edges

    @staticmethod
    def _all_summaries(symbols: ModuleSymbols):
        yield from symbols.functions.values()
        for cls in symbols.classes.values():
            yield from cls.methods.values()

    def _owning_module(self, dotted: str) -> str | None:
        """The linted module a dotted target lives in (longest prefix)."""
        parts = dotted.split(".")
        for i in range(len(parts), 0, -1):
            candidate = ".".join(parts[:i])
            if candidate in self.symbols:
                return candidate
        return None

    def resolve_ref(self, ref: str) -> FunctionSummary | None:
        """Look up ``"module:func"`` or ``"module:Class.method"``."""
        module, _, qualname = ref.partition(":")
        symbols = self.symbols.get(module)
        if symbols is None:
            return None
        if "." in qualname:
            cls_name, _, meth = qualname.partition(".")
            cls = symbols.classes.get(cls_name)
            return cls.methods.get(meth) if cls else None
        return symbols.functions.get(qualname)

    def class_of(self, module: str, name: str) -> ClassSummary | None:
        symbols = self.symbols.get(module)
        return symbols.classes.get(name) if symbols else None

    def resolve_call_name(
        self, module: str, raw: str, *, cls: str | None = None,
    ) -> FunctionSummary | None:
        """Resolve a raw dotted call target written inside ``module``.

        Handles ``self.method`` (within ``cls``), bare local or imported
        functions, and ``alias.func`` through module imports. Anything
        else — attribute calls on arbitrary objects, builtins, dynamic
        dispatch — resolves to None; the checkers stay conservative.
        """
        symbols = self.symbols.get(module)
        if symbols is None:
            return None
        head, _, rest = raw.partition(".")
        if head == "self" and cls is not None and rest and "." not in rest:
            owner = symbols.classes.get(cls)
            if owner and rest in owner.methods:
                return owner.methods[rest]
            return None
        if not rest:
            if raw in symbols.functions:
                return symbols.functions[raw]
            dotted = symbols.imports.get(raw)
            if dotted is not None:
                return self._function_at(dotted)
            return None
        # alias.func / package.module.func
        dotted = symbols.imports.get(head)
        if dotted is not None:
            return self._function_at(f"{dotted}.{rest}")
        return self._function_at(raw)

    def _function_at(self, dotted: str) -> FunctionSummary | None:
        owner = self._owning_module(dotted)
        if owner is None:
            return None
        tail = dotted[len(owner):].lstrip(".")
        if not tail or "." in tail:
            return None  # a module itself, or attr-of-attr: not a function
        return self.symbols[owner].functions.get(tail)
