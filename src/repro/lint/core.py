"""repro-lint core: findings, checkers, the file walker, and baselines.

Generic linters (ruff runs in CI already) catch syntax-level smells;
they cannot know that every rank of an SPMD program must issue the same
collectives in the same order, or that a ``*_bytes`` value must never be
added to a ``*_flops`` value. ``repro.lint`` is the domain-aware pass:
a small AST framework (this module) plus a battery of checkers under
:mod:`repro.lint.checkers` that encode *this* codebase's invariants.

Vocabulary:

* :class:`Finding` — one diagnostic: code, message, location.
* :class:`Checker` — a rule. Subclasses implement :meth:`Checker.check`
  over a parsed :class:`ModuleInfo` and yield findings.
* :class:`Baseline` — a committed JSON file of *accepted* findings
  (each carrying a justification); matching findings are reported
  separately and do not fail the run. New debt therefore fails CI while
  grandfathered debt stays visible.
* suppression comments — ``# repro-lint: disable=RP001`` (or a
  comma-separated list, or no ``=`` part to disable every rule) on the
  flagged line silences it in place.

The CLI lives in :mod:`repro.lint.__main__`; run it as
``python -m repro.lint src/repro``.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Baseline",
    "Checker",
    "Finding",
    "LintError",
    "LintResult",
    "ModuleInfo",
    "iter_python_files",
    "load_file",
    "load_source",
    "run_lint",
]

# ``# repro-lint: disable=RP001,RP002`` or ``# repro-lint: disable`` (all).
_DISABLE_RE = re.compile(r"#\s*repro-lint:\s*disable(?:=([A-Z0-9,\s]+))?")
# ``# repro-lint: unit(name)=seconds`` — explicit unit annotation, read by
# the RP002 checker through :attr:`ModuleInfo.unit_notes`.
_UNIT_NOTE_RE = re.compile(r"#\s*repro-lint:\s*unit\((\w+)\)\s*=\s*([\w/]+)")


class LintError(Exception):
    """A file could not be linted (unreadable, unparseable)."""


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic produced by a checker."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def fingerprint(self) -> str:
        """Line-insensitive identity used for baseline matching (lines
        drift on every edit; code+path+message rarely do)."""
        return f"{self.code}|{self.path}|{self.message}"

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


@dataclass
class ModuleInfo:
    """One parsed source file plus the lint metadata checkers consume."""

    path: Path
    display_path: str            # path as reported in findings (posix)
    module: str                  # dotted module name, e.g. repro.comm.pcc
    source: str
    lines: list[str]
    tree: ast.Module
    unit_notes: dict[str, str] = field(default_factory=dict)
    # line number -> codes disabled there (empty set = all codes)
    suppressions: dict[int, set[str]] = field(default_factory=dict)

    @property
    def is_package_init(self) -> bool:
        return self.path.name == "__init__.py"

    def in_packages(self, packages: Sequence[str]) -> bool:
        """Whether this module lives under any of the dotted ``packages``."""
        return any(
            self.module == p or self.module.startswith(p + ".")
            for p in packages
        )

    def suppressed(self, finding: Finding) -> bool:
        codes = self.suppressions.get(finding.line)
        if codes is None:
            return False
        return not codes or finding.code in codes


class Checker:
    """Base class for one lint rule.

    Subclasses set :attr:`code` / :attr:`name` / :attr:`description`,
    optionally narrow :attr:`packages` (dotted prefixes; empty tuple =
    every module), and implement :meth:`check`.
    """

    code: str = "RP000"
    name: str = "abstract"
    description: str = ""
    #: dotted package prefixes this rule applies to ((,) = all modules)
    packages: tuple[str, ...] = ()

    def applies_to(self, mod: ModuleInfo) -> bool:
        return not self.packages or mod.in_packages(self.packages)

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, mod: ModuleInfo, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=mod.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
        )


# -- loading ---------------------------------------------------------------


def _module_name_of(path: Path) -> str:
    """Dotted module name, anchored at the last ``repro`` path component
    so fixtures and installed trees resolve identically."""
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "repro" in parts:
        parts = parts[len(parts) - 1 - parts[::-1].index("repro"):]
    return ".".join(parts[-4:]) if parts else path.stem


def _scan_comments(lines: list[str]) -> tuple[dict[int, set[str]], dict[str, str]]:
    suppressions: dict[int, set[str]] = {}
    unit_notes: dict[str, str] = {}
    for lineno, text in enumerate(lines, start=1):
        if "repro-lint" not in text:
            continue
        m = _DISABLE_RE.search(text)
        if m:
            codes = m.group(1)
            suppressions[lineno] = (
                set() if codes is None
                else {c.strip() for c in codes.split(",") if c.strip()}
            )
        for name, unit in _UNIT_NOTE_RE.findall(text):
            unit_notes[name] = unit
    return suppressions, unit_notes


def load_source(
    source: str, *, module: str = "fixture", path: str = "<fixture>"
) -> ModuleInfo:
    """Parse ``source`` into a :class:`ModuleInfo` (test/fixture entry
    point: ``module`` controls package scoping)."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        raise LintError(f"{path}: syntax error: {exc.msg} (line {exc.lineno})") from exc
    lines = source.splitlines()
    suppressions, unit_notes = _scan_comments(lines)
    return ModuleInfo(
        path=Path(path),
        display_path=path,
        module=module,
        source=source,
        lines=lines,
        tree=tree,
        unit_notes=unit_notes,
        suppressions=suppressions,
    )


def load_file(path: Path | str, *, root: Path | str | None = None) -> ModuleInfo:
    """Read and parse one file; ``root`` anchors the reported path."""
    path = Path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise LintError(f"{path}: {exc}") from exc
    base = Path(root) if root is not None else Path.cwd()
    try:
        display = path.resolve().relative_to(base.resolve()).as_posix()
    except ValueError:
        display = path.as_posix()
    info = load_source(source, module=_module_name_of(path), path=display)
    info.path = path
    return info


def iter_python_files(paths: Iterable[Path | str]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: list[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            out.extend(sorted(q for q in p.rglob("*.py")
                              if not any(part.startswith(".") for part in q.parts)))
        elif p.suffix == ".py" and p.exists():
            out.append(p)
        else:
            raise LintError(f"{p}: not a python file or directory")
    return out


# -- baseline --------------------------------------------------------------


@dataclass
class Baseline:
    """Accepted findings, persisted as ``lint-baseline.json``.

    Every entry must carry a ``justification`` — the baseline is a
    ledger of *argued* exceptions, not a mute button.
    """

    entries: list[dict] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path | str) -> "Baseline":
        path = Path(path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise LintError(f"{path}: cannot read baseline: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise LintError(f"{path}: invalid baseline JSON: {exc}") from exc
        if not isinstance(data, dict) or "entries" not in data:
            raise LintError(f"{path}: baseline must be an object with 'entries'")
        entries = data["entries"]
        for e in entries:
            missing = {"code", "path", "message", "justification"} - set(e)
            if missing:
                raise LintError(
                    f"{path}: baseline entry {e!r} missing {sorted(missing)}"
                )
        return cls(entries=list(entries))

    def save(self, path: Path | str) -> None:
        payload = {"version": 1, "entries": self.entries}
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    def fingerprints(self) -> set[str]:
        return {f"{e['code']}|{e['path']}|{e['message']}" for e in self.entries}

    @classmethod
    def from_findings(
        cls, findings: Iterable[Finding],
        justification: str = "TODO: justify this exception",
    ) -> "Baseline":
        return cls(entries=[
            {**f.to_dict(), "justification": justification}
            for f in sorted(findings)
        ])


# -- driver ----------------------------------------------------------------


@dataclass
class LintResult:
    """Outcome of one lint run over a set of files."""

    findings: list[Finding] = field(default_factory=list)    # fail the run
    baselined: list[Finding] = field(default_factory=list)   # accepted debt
    suppressed: list[Finding] = field(default_factory=list)  # inline disables
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "files_checked": self.files_checked,
            "counts": {
                "findings": len(self.findings),
                "baselined": len(self.baselined),
                "suppressed": len(self.suppressed),
            },
            "findings": [f.to_dict() for f in self.findings],
            "baselined": [f.to_dict() for f in self.baselined],
        }


def run_lint(
    paths: Iterable[Path | str],
    checkers: Sequence[Checker],
    *,
    baseline: Baseline | None = None,
    root: Path | str | None = None,
) -> LintResult:
    """Run ``checkers`` over every python file under ``paths``."""
    result = LintResult()
    known = baseline.fingerprints() if baseline is not None else set()
    for path in iter_python_files(paths):
        mod = load_file(path, root=root)
        result.files_checked += 1
        for checker in checkers:
            if not checker.applies_to(mod):
                continue
            for finding in checker.check(mod):
                if mod.suppressed(finding):
                    result.suppressed.append(finding)
                elif finding.fingerprint() in known:
                    result.baselined.append(finding)
                else:
                    result.findings.append(finding)
    result.findings.sort()
    result.baselined.sort()
    result.suppressed.sort()
    return result
