"""repro-lint core: findings, checkers, the file walker, and baselines.

Generic linters (ruff runs in CI already) catch syntax-level smells;
they cannot know that every rank of an SPMD program must issue the same
collectives in the same order, or that a ``*_bytes`` value must never be
added to a ``*_flops`` value. ``repro.lint`` is the domain-aware pass:
a small AST framework (this module) plus a battery of checkers under
:mod:`repro.lint.checkers` that encode *this* codebase's invariants.

Vocabulary:

* :class:`Finding` — one diagnostic: code, message, location, and an
  ``occurrence`` index distinguishing identical findings in one file.
* :class:`Checker` — a rule. Subclasses implement :meth:`Checker.check`
  over a parsed :class:`ModuleInfo` and yield findings.
* :class:`ProjectChecker` — a whole-program rule. Subclasses implement
  :meth:`ProjectChecker.check_project` over a
  :class:`repro.lint.project.ProjectInfo` (symbol table, import graph,
  call graph, per-function summaries) built from *every* linted module
  at once — the layer the interprocedural rules (RP005–RP008) run on.
* :class:`Baseline` — a committed JSON file of *accepted* findings
  (each carrying a justification); matching findings are reported
  separately and do not fail the run. New debt therefore fails CI while
  grandfathered debt stays visible.
* suppression comments — ``# repro-lint: disable=RP001`` (or a
  comma-separated list, or no ``=`` part to disable every rule) on the
  flagged line silences it in place. For a multi-line statement the
  comment may sit on the statement's first or last physical line
  (decorator lines included), so wrapped and decorated statements can
  be silenced too.

The CLI lives in :mod:`repro.lint.__main__`; run it as
``python -m repro.lint src/repro``.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Baseline",
    "Checker",
    "Finding",
    "LintError",
    "LintResult",
    "ModuleInfo",
    "ProjectChecker",
    "iter_python_files",
    "load_file",
    "load_source",
    "run_lint",
]

# ``# repro-lint: disable=RP001,RP002`` or ``# repro-lint: disable`` (all).
_DISABLE_RE = re.compile(r"#\s*repro-lint:\s*disable(?:=([A-Z0-9,\s]+))?")
# ``# repro-lint: unit(name)=seconds`` — explicit unit annotation, read by
# the RP002 checker through :attr:`ModuleInfo.unit_notes`.
_UNIT_NOTE_RE = re.compile(r"#\s*repro-lint:\s*unit\((\w+)\)\s*=\s*([\w/]+)")


class LintError(Exception):
    """A file could not be linted (unreadable, unparseable)."""


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic produced by a checker.

    ``occurrence`` is the 0-based index among findings sharing the same
    ``(code, path, message)`` in one run, in (line, col) order. It keeps
    the fingerprints of *identical* findings in one file distinct, so
    baselining one of them does not silently baseline them all.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    occurrence: int = 0

    def fingerprint(self) -> str:
        """Line-insensitive identity used for baseline matching (lines
        drift on every edit; code+path+message rarely do). Repeated
        identical findings are disambiguated by their occurrence index
        (``...|#2`` for the second, and so on)."""
        base = f"{self.code}|{self.path}|{self.message}"
        return base if self.occurrence == 0 else f"{base}|#{self.occurrence + 1}"

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "occurrence": self.occurrence,
        }


@dataclass
class ModuleInfo:
    """One parsed source file plus the lint metadata checkers consume."""

    path: Path
    display_path: str            # path as reported in findings (posix)
    module: str                  # dotted module name, e.g. repro.comm.pcc
    source: str
    lines: list[str]
    tree: ast.Module
    unit_notes: dict[str, str] = field(default_factory=dict)
    # line number -> codes disabled there (empty set = all codes)
    suppressions: dict[int, set[str]] = field(default_factory=dict)
    # physical (first, last) line spans of statements, innermost last;
    # lets a suppression on a wrapped statement's first or last line
    # silence a finding reported anywhere inside the span
    stmt_spans: list[tuple[int, int]] = field(default_factory=list)

    @property
    def is_package_init(self) -> bool:
        return self.path.name == "__init__.py"

    def in_packages(self, packages: Sequence[str]) -> bool:
        """Whether this module lives under any of the dotted ``packages``."""
        return any(
            self.module == p or self.module.startswith(p + ".")
            for p in packages
        )

    def _disabled_at(self, line: int, code: str) -> bool:
        codes = self.suppressions.get(line)
        if codes is None:
            return False
        return not codes or code in codes

    def suppressed(self, finding: Finding) -> bool:
        if not self.suppressions:
            return False
        if self._disabled_at(finding.line, finding.code):
            return True
        # Multi-line statements: honor a suppression on the statement's
        # first or last physical line (a finding on a decorated def or a
        # wrapped expression is otherwise unsilenceable inline).
        for first, last in self.stmt_spans:
            if first <= finding.line <= last and (
                self._disabled_at(first, finding.code)
                or self._disabled_at(last, finding.code)
            ):
                return True
        return False


class Checker:
    """Base class for one lint rule.

    Subclasses set :attr:`code` / :attr:`name` / :attr:`description`,
    optionally narrow :attr:`packages` (dotted prefixes; empty tuple =
    every module), and implement :meth:`check`.
    """

    code: str = "RP000"
    name: str = "abstract"
    description: str = ""
    #: dotted package prefixes this rule applies to ((,) = all modules)
    packages: tuple[str, ...] = ()

    def applies_to(self, mod: ModuleInfo) -> bool:
        return not self.packages or mod.in_packages(self.packages)

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, mod: ModuleInfo, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=mod.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
        )


class ProjectChecker(Checker):
    """Base class for a whole-program rule.

    Unlike a per-module :class:`Checker`, a project checker sees the
    entire linted tree at once through a
    :class:`repro.lint.project.ProjectInfo` (project symbol table,
    import graph, call graph, per-function summaries) and can therefore
    reason across call boundaries. :attr:`Checker.packages` still
    scopes which modules the rule *reports on*; the project graph
    always covers every linted file.
    """

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        return iter(())  # the per-module pass is a no-op

    def check_project(self, project: "ProjectInfo") -> Iterator[Finding]:  # noqa: F821
        raise NotImplementedError


# -- loading ---------------------------------------------------------------


def _module_name_of(path: Path) -> str:
    """Dotted module name, anchored at the last ``repro`` path component
    so fixtures and installed trees resolve identically."""
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "repro" in parts:
        parts = parts[len(parts) - 1 - parts[::-1].index("repro"):]
    return ".".join(parts[-4:]) if parts else path.stem


def _scan_comments(lines: list[str]) -> tuple[dict[int, set[str]], dict[str, str]]:
    suppressions: dict[int, set[str]] = {}
    unit_notes: dict[str, str] = {}
    for lineno, text in enumerate(lines, start=1):
        if "repro-lint" not in text:
            continue
        m = _DISABLE_RE.search(text)
        if m:
            codes = m.group(1)
            suppressions[lineno] = (
                set() if codes is None
                else {c.strip() for c in codes.split(",") if c.strip()}
            )
        for name, unit in _UNIT_NOTE_RE.findall(text):
            unit_notes[name] = unit
    return suppressions, unit_notes


def _statement_spans(tree: ast.Module) -> list[tuple[int, int]]:
    """Multi-line ``(first, last)`` physical spans of statements, for
    suppression matching.

    Simple statements span their full extent (a wrapped call, a
    parenthesized assignment). Compound statements span only their
    *header* — decorators through the ``def``/``class`` line, or the
    ``if``/``while``/``for``/``with`` line through the end of its test —
    so a trailing suppression never swallows a whole body.
    """
    spans: list[tuple[int, int]] = []

    def header_end(node: ast.stmt) -> int:
        if isinstance(node, (ast.If, ast.While)):
            return node.test.end_lineno or node.lineno
        if isinstance(node, (ast.For, ast.AsyncFor)):
            return node.iter.end_lineno or node.lineno
        if isinstance(node, (ast.With, ast.AsyncWith)):
            return max((i.context_expr.end_lineno or node.lineno)
                       for i in node.items)
        return node.lineno  # def/class/try: the header line itself

    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            first = min([node.lineno]
                        + [d.lineno for d in node.decorator_list])
            last = node.lineno
        elif isinstance(node, (ast.If, ast.While, ast.For, ast.AsyncFor,
                               ast.With, ast.AsyncWith, ast.Try)):
            first, last = node.lineno, header_end(node)
        else:
            first, last = node.lineno, node.end_lineno or node.lineno
        if first != last:
            spans.append((first, last))
    return spans


def load_source(
    source: str, *, module: str = "fixture", path: str = "<fixture>"
) -> ModuleInfo:
    """Parse ``source`` into a :class:`ModuleInfo` (test/fixture entry
    point: ``module`` controls package scoping)."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        raise LintError(f"{path}: syntax error: {exc.msg} (line {exc.lineno})") from exc
    lines = source.splitlines()
    suppressions, unit_notes = _scan_comments(lines)
    return ModuleInfo(
        path=Path(path),
        display_path=path,
        module=module,
        source=source,
        lines=lines,
        tree=tree,
        unit_notes=unit_notes,
        suppressions=suppressions,
        stmt_spans=_statement_spans(tree),
    )


def load_file(path: Path | str, *, root: Path | str | None = None) -> ModuleInfo:
    """Read and parse one file; ``root`` anchors the reported path."""
    path = Path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise LintError(f"{path}: {exc}") from exc
    base = Path(root) if root is not None else Path.cwd()
    try:
        display = path.resolve().relative_to(base.resolve()).as_posix()
    except ValueError:
        display = path.as_posix()
    info = load_source(source, module=_module_name_of(path), path=display)
    info.path = path
    return info


def iter_python_files(paths: Iterable[Path | str]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: list[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            out.extend(sorted(q for q in p.rglob("*.py")
                              if not any(part.startswith(".") for part in q.parts)))
        elif p.suffix == ".py" and p.exists():
            out.append(p)
        else:
            raise LintError(f"{p}: not a python file or directory")
    return out


# -- baseline --------------------------------------------------------------


@dataclass
class Baseline:
    """Accepted findings, persisted as ``lint-baseline.json``.

    Every entry must carry a ``justification`` — the baseline is a
    ledger of *argued* exceptions, not a mute button.
    """

    entries: list[dict] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path | str) -> "Baseline":
        path = Path(path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise LintError(f"{path}: cannot read baseline: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise LintError(f"{path}: invalid baseline JSON: {exc}") from exc
        if not isinstance(data, dict) or "entries" not in data:
            raise LintError(f"{path}: baseline must be an object with 'entries'")
        entries = data["entries"]
        for e in entries:
            missing = {"code", "path", "message", "justification"} - set(e)
            if missing:
                raise LintError(
                    f"{path}: baseline entry {e!r} missing {sorted(missing)}"
                )
        return cls(entries=list(entries))

    def save(self, path: Path | str) -> None:
        payload = {"version": 1, "entries": self.entries}
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    def fingerprints(self) -> set[str]:
        """Fingerprints of every entry, occurrence-indexed.

        An entry may pin its index explicitly (``"occurrence": 1`` for
        the second identical finding); entries without one are numbered
        by their position among same-``(code, path, message)`` entries,
        so legacy baselines keep matching and duplicated entries cover
        the second, third, ... occurrences rather than collapsing."""
        out: set[str] = set()
        counters: dict[str, int] = {}
        for e in self.entries:
            base = f"{e['code']}|{e['path']}|{e['message']}"
            occurrence = e.get("occurrence")
            if occurrence is None:
                occurrence = counters.get(base, 0)
            counters[base] = max(counters.get(base, 0), occurrence) + 1
            out.add(base if occurrence == 0 else f"{base}|#{occurrence + 1}")
        return out

    @classmethod
    def from_findings(
        cls, findings: Iterable[Finding],
        justification: str = "TODO: justify this exception",
    ) -> "Baseline":
        return cls(entries=[
            {**f.to_dict(), "justification": justification}
            for f in sorted(findings)
        ])


# -- driver ----------------------------------------------------------------


@dataclass
class LintResult:
    """Outcome of one lint run over a set of files."""

    findings: list[Finding] = field(default_factory=list)    # fail the run
    baselined: list[Finding] = field(default_factory=list)   # accepted debt
    suppressed: list[Finding] = field(default_factory=list)  # inline disables
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "files_checked": self.files_checked,
            "counts": {
                "findings": len(self.findings),
                "baselined": len(self.baselined),
                "suppressed": len(self.suppressed),
            },
            "findings": [f.to_dict() for f in self.findings],
            "baselined": [f.to_dict() for f in self.baselined],
        }


def _assign_occurrences(findings: list[Finding]) -> list[Finding]:
    """Number findings sharing a ``(path, code, message)`` in (line,
    col) order so their fingerprints stay distinct."""
    groups: dict[tuple[str, str, str], list[Finding]] = {}
    for f in findings:
        groups.setdefault((f.path, f.code, f.message), []).append(f)
    out: list[Finding] = []
    for group in groups.values():
        group.sort(key=lambda f: (f.line, f.col))
        out.extend(replace(f, occurrence=i) for i, f in enumerate(group))
    return out


def run_lint(
    paths: Iterable[Path | str],
    checkers: Sequence[Checker],
    *,
    baseline: Baseline | None = None,
    root: Path | str | None = None,
    project: bool = True,
) -> LintResult:
    """Run ``checkers`` over every python file under ``paths``.

    Per-module checkers see one file at a time; :class:`ProjectChecker`
    subclasses run afterwards against a
    :class:`~repro.lint.project.ProjectInfo` built over *all* loaded
    modules (disable with ``project=False``).
    """
    result = LintResult()
    known = baseline.fingerprints() if baseline is not None else set()
    module_checkers = [c for c in checkers if not isinstance(c, ProjectChecker)]
    project_checkers = ([c for c in checkers if isinstance(c, ProjectChecker)]
                        if project else [])
    mods: list[ModuleInfo] = []
    raw: list[Finding] = []
    for path in iter_python_files(paths):
        mod = load_file(path, root=root)
        mods.append(mod)
        result.files_checked += 1
        for checker in module_checkers:
            if checker.applies_to(mod):
                raw.extend(checker.check(mod))
    if project_checkers:
        from .project import ProjectInfo  # late: project.py imports core
        info = ProjectInfo.build(mods)
        for checker in project_checkers:
            raw.extend(checker.check_project(info))
    by_path = {mod.display_path: mod for mod in mods}
    for finding in _assign_occurrences(raw):
        mod = by_path.get(finding.path)
        if mod is not None and mod.suppressed(finding):
            result.suppressed.append(finding)
        elif finding.fingerprint() in known:
            result.baselined.append(finding)
        else:
            result.findings.append(finding)
    result.findings.sort()
    result.baselined.sort()
    result.suppressed.sort()
    return result
