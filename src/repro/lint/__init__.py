"""repro-lint: domain-aware static analysis for this repository.

Run over the tree::

    python -m repro.lint src/repro

or programmatically::

    from repro.lint import all_checkers, run_lint
    result = run_lint(["src/repro"], all_checkers())
    assert result.ok, [f.format() for f in result.findings]

See :mod:`repro.lint.core` for the framework (findings, baselines,
suppression comments), :mod:`repro.lint.checkers` for the rules
(RP001 collective-symmetry, RP002 unit-consistency, RP003
sim-determinism, RP004 api-hygiene, RP005 memo-key-completeness,
RP006 resource-pair-discipline, RP007 unit-flow, RP008
backend-pair-drift), and :mod:`repro.lint.project` for the
whole-program pass the RP005-RP008 rules consume.
"""

from .checkers import all_checkers, select_checkers
from .core import (
    Baseline,
    Checker,
    Finding,
    LintError,
    LintResult,
    ModuleInfo,
    ProjectChecker,
    iter_python_files,
    load_file,
    load_source,
    run_lint,
)
from .project import ProjectInfo

__all__ = [
    "Baseline",
    "Checker",
    "Finding",
    "LintError",
    "LintResult",
    "ModuleInfo",
    "ProjectChecker",
    "ProjectInfo",
    "all_checkers",
    "iter_python_files",
    "load_file",
    "load_source",
    "run_lint",
    "select_checkers",
]
