"""Result containers and plain-text table rendering for the bench harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["ExperimentResult", "format_table"]


@dataclass
class ExperimentResult:
    """Rows regenerated for one of the paper's tables or figures."""

    exp_id: str  # e.g. "fig6", "table1"
    title: str
    columns: list[str]
    rows: list[dict[str, Any]]
    notes: list[str] = field(default_factory=list)

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise KeyError(f"no column {name!r} in {self.exp_id}")
        return [r.get(name) for r in self.rows]

    def render(self) -> str:
        """Human-readable report block."""
        lines = [f"== {self.exp_id}: {self.title} =="]
        lines.append(format_table(self.columns, self.rows))
        for n in self.notes:
            lines.append(f"  note: {n}")
        return "\n".join(lines)

    def to_json_dict(self) -> dict:
        """JSON-serializable form (plotting / archival)."""
        return {
            "exp_id": self.exp_id,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [dict(r) for r in self.rows],
            "notes": list(self.notes),
        }

    def to_csv(self) -> str:
        """CSV text with the declared column order."""
        import csv
        import io

        buf = io.StringIO()
        writer = csv.DictWriter(buf, fieldnames=self.columns,
                                extrasaction="ignore")
        writer.writeheader()
        for row in self.rows:
            writer.writerow(row)
        return buf.getvalue()


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(columns: list[str], rows: list[dict[str, Any]]) -> str:
    """Fixed-width text table of ``rows`` projected onto ``columns``."""
    cells = [[_fmt(r.get(c, "")) for c in columns] for r in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in cells)) if cells else len(c)
        for i, c in enumerate(columns)
    ]
    header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    sep = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(cell.ljust(w) for cell, w in zip(row, widths)) for row in cells
    ]
    return "\n".join([header, sep, *body])
