"""Ablation drivers for the design choices DESIGN.md calls out.

Beyond the paper's own figures, these isolate one mechanism each:
CUDA-graph launch elimination, fusion-strategy granularity, PCC slicing
degree, expert-slicing, hybrid-schedule factor, prefetch depth, and the
latency-SLA frontier of the deployment tuner.
"""

from __future__ import annotations

from ..comm import baseline_alltoall, pcc_alltoall
from ..engine import DenseLatencyModel, MoELatencyModel, Workload
from ..engine.tuner import tune_dense_deployment
from ..hardware import A100_40GB, dgx2_v100, dgx_a100_cluster
from ..kernels import (
    DEEPSPEED_FP16,
    FusionStrategy,
    KernelCostModel,
    LayerShape,
    PYTORCH_FP16,
)
from ..model import DENSE_ZOO, MOE_ZOO, MoEParallelism, get_model
from ..zero import ZeroInferenceEngine
from .tables import ExperimentResult

__all__ = [
    "ablation_cuda_graph",
    "ablation_fusion_strategy",
    "ablation_pcc_degree",
    "ablation_expert_slicing",
    "ablation_hybrid_factor",
    "ablation_prefetch_depth",
    "ablation_sla_frontier",
    "ablation_pinned_weights",
    "ablation_serving_load",
    "ALL_ABLATIONS",
]


def ablation_cuda_graph() -> ExperimentResult:
    """CUDA-graph launch elimination across model sizes, batch 1."""
    rows = []
    for name in ("gpt2-1.5b", "gpt-j-6b", "gpt-13b"):
        cfg = DENSE_ZOO[name]
        shape = LayerShape(hidden=cfg.hidden, heads=cfg.heads, batch=1,
                           tokens_per_seq=1, kv_len=128, ffn_mult=cfg.ffn_mult)
        with_graph = KernelCostModel(A100_40GB, DEEPSPEED_FP16).layer_cost(shape)
        without = KernelCostModel(
            A100_40GB, DEEPSPEED_FP16.with_(name="ds-nograph", cuda_graph=False)
        ).layer_cost(shape)
        rows.append(
            {
                "model": name,
                "with_graph_us": with_graph.total_time * cfg.layers * 1e6,
                "without_us": without.total_time * cfg.layers * 1e6,
                "speedup": without.total_time / with_graph.total_time,
            }
        )
    return ExperimentResult(
        exp_id="abl-cudagraph",
        title="Ablation: CUDA-graph launch elimination (Sec. III-D)",
        columns=["model", "with_graph_us", "without_us", "speedup"],
        rows=rows,
        notes=["launch overhead matters most for the smallest model"],
    )


def ablation_fusion_strategy() -> ExperimentResult:
    """All four fusion strategies on one layer shape, batch 1 and 32."""
    cfg = DENSE_ZOO["gpt-13b"]
    rows = []
    for strategy in FusionStrategy:
        profile = PYTORCH_FP16.with_(
            name=f"pytorch+{strategy.value}", fusion=strategy
        )
        for batch in (1, 32):
            shape = LayerShape(hidden=cfg.hidden, heads=cfg.heads, batch=batch,
                               tokens_per_seq=1, kv_len=128)
            cost = KernelCostModel(A100_40GB, profile).layer_cost(shape)
            rows.append(
                {
                    "fusion": strategy.value,
                    "batch": batch,
                    "kernels_per_layer": cost.kernel_count,
                    "layer_us": cost.total_time * 1e6,
                    "hbm_mb": cost.hbm_bytes / 1e6,
                }
            )
    return ExperimentResult(
        exp_id="abl-fusion",
        title="Ablation: fusion strategy granularity (Sec. III-B)",
        columns=["fusion", "batch", "kernels_per_layer", "layer_us", "hbm_mb"],
        rows=rows,
    )


def ablation_pcc_degree() -> ExperimentResult:
    """PCC all-to-all latency vs tensor-slicing degree at 128/256 GPUs."""
    rows = []
    for gpus in (128, 256):
        cluster = dgx_a100_cluster(gpus // 8)
        base = baseline_alltoall(cluster, 1e6, gpus).total
        for tp in (1, 2, 4, 8):
            opt = pcc_alltoall(cluster, 1e6, gpus, tp_degree=tp).total
            rows.append(
                {
                    "gpus": gpus,
                    "tp_degree": tp,
                    "baseline_us": base * 1e6,
                    "pcc_us": opt * 1e6,
                    "reduction": base / opt,
                }
            )
    return ExperimentResult(
        exp_id="abl-pcc",
        title="Ablation: PCC vs tensor-slicing degree (Sec. V-B)",
        columns=["gpus", "tp_degree", "baseline_us", "pcc_us", "reduction"],
        rows=rows,
        notes=["latency constant drops from p*C1 toward (p/L)*C1"],
    )


def ablation_expert_slicing() -> ExperimentResult:
    """Expert-slicing degree on the 2T model's per-token latency."""
    cfg = MOE_ZOO["47b-moe-128"]
    cluster = dgx_a100_cluster(32)
    rows = []
    for es in (1, 2, 4):
        par = MoEParallelism(mp_degree=8, ep_degree=128, expert_slicing=es,
                             num_gpus=128 * es if es > 1 else 128)
        if par.num_gpus > cluster.num_gpus:
            continue
        model = MoELatencyModel(cfg, cluster, par, optimized=True)
        step = model.token_step(batch=8)
        rows.append(
            {
                "expert_slicing": es,
                "gpus": par.num_gpus,
                "expert_ms": step.expert_time * 1e3,
                "total_ms": step.total * 1e3,
            }
        )
    return ExperimentResult(
        exp_id="abl-expert-slicing",
        title="Ablation: expert slicing on the 2T model (Sec. V-A)",
        columns=["expert_slicing", "gpus", "expert_ms", "total_ms"],
        rows=rows,
    )


def ablation_hybrid_factor() -> ExperimentResult:
    """Hybrid-schedule prompt micro-batch factor on 175B (TP8 x PP2)."""
    cluster = dgx_a100_cluster(2)
    cfg = DENSE_ZOO["lm-175b"]
    w = Workload(batch=24, prompt_len=512, gen_tokens=8)
    rows = []
    for factor in (1, 2, 4, 8):
        model = DenseLatencyModel(cfg, cluster, tp=8, pp=2,
                                  hybrid_prompt_factor=factor)
        r = model.estimate(w)
        rows.append(
            {
                "prompt_factor": factor,
                "prompt_ms": r.prompt_latency * 1e3,
                "total_ms": r.total_latency * 1e3,
            }
        )
    return ExperimentResult(
        exp_id="abl-hybrid",
        title="Ablation: hybrid prompt micro-batch factor (Sec. IV-C1)",
        columns=["prompt_factor", "prompt_ms", "total_ms"],
        rows=rows,
        notes=["prompt latency falls with more prompt micro-batches until "
               "per-micro-batch efficiency losses catch up"],
    )


def ablation_prefetch_depth() -> ExperimentResult:
    """ZeRO-Inference prefetch depth 0..4 at a fetch/compute-balanced point."""
    cluster = dgx2_v100(1)
    cfg = get_model("gpt-neox-20b")
    rows = []
    for depth in (0, 1, 2, 4):
        eng = ZeroInferenceEngine(cfg, cluster, prefetch_depth=depth)
        rep = eng.forward_pass(batch=2, tokens_per_seq=2048)
        rows.append(
            {
                "prefetch_depth": depth,
                "pass_s": rep.time,
                "buffers_gb": (depth + 1) * eng.layer_bytes / 1e9,
                "overlap_eff": rep.stream.overlap_efficiency,
            }
        )
    return ExperimentResult(
        exp_id="abl-prefetch",
        title="Ablation: prefetch depth vs buffer memory (Sec. VI-B)",
        columns=["prefetch_depth", "pass_s", "buffers_gb", "overlap_eff"],
        rows=rows,
        notes=["depth 1 captures nearly all the overlap; deeper buffers "
               "only spend memory"],
    )


def ablation_sla_frontier() -> ExperimentResult:
    """Throughput-vs-SLA frontier for GPT-13B on two DGX nodes."""
    cluster = dgx_a100_cluster(2)
    cfg = DENSE_ZOO["gpt-13b"]
    rows = []
    for sla_ms in (12, 15, 20, 30, 50, None):
        try:
            r = tune_dense_deployment(
                cfg, cluster, prompt_len=128, gen_tokens=8,
                latency_sla=None if sla_ms is None else sla_ms * 1e-3,
                max_gpus=8, hybrid_factors=(1,),
            )
        except ValueError:
            continue
        rows.append(
            {
                "sla_ms": "none" if sla_ms is None else sla_ms,
                "tp": r.tp,
                "pp": r.pp,
                "batch": r.batch,
                "token_ms": r.token_latency * 1e3,
                "tokens_per_s": r.tokens_per_second,
            }
        )
    return ExperimentResult(
        exp_id="abl-sla",
        title="Ablation: throughput under latency SLA (Sec. I framing)",
        columns=["sla_ms", "tp", "pp", "batch", "token_ms", "tokens_per_s"],
        rows=rows,
    )


def ablation_pinned_weights() -> ExperimentResult:
    """The pin-weights-in-GPU design alternative Sec. VI-A rejects.

    Pinning a fraction of GPT-NeoX-20B's layers in GPU memory saves their
    fetches but shrinks the batch budget; the streamed design (0 pinned)
    wins on throughput exactly as the paper argues.
    """
    from ..hardware import lambda_a6000_workstation

    ws = lambda_a6000_workstation(1)
    cfg = get_model("gpt-neox-20b")
    rows = []
    gpu_budget = ws.gpu.memory_bytes * 0.90
    for pinned_frac in (0.0, 0.25, 0.5, 0.75):
        eng = ZeroInferenceEngine(cfg, ws, prefetch_depth=1)
        pinned_layers = int(cfg.layers * pinned_frac)
        pinned_bytes = pinned_layers * eng.layer_bytes
        free = gpu_budget - pinned_bytes - eng._buffer_bytes()
        batch = max(0, int(free / eng.per_sample_bytes(2048)))
        if batch < 1:
            rows.append({"pinned_frac": pinned_frac, "batch": 0,
                         "tflops": 0.0, "note": "no batch fits"})
            continue
        # Pinned layers skip the fetch; streamed layers still pay it.
        streamed = cfg.layers - pinned_layers
        from ..zero.streaming import simulate_layer_stream

        stream = simulate_layer_stream(
            num_layers=cfg.layers,
            fetch_time_per_layer=eng.fetch_time_per_layer()
            * streamed / cfg.layers,  # amortized over all layers
            compute_time_per_layer=eng.compute_time_per_layer(batch, 2048, 2048),
            prefetch_depth=1,
        )
        flops = batch * 2048 * cfg.flops_per_token(kv_len=2048)
        rows.append(
            {
                "pinned_frac": pinned_frac,
                "batch": batch,
                "tflops": flops / stream.makespan / 1e12,
                "note": "",
            }
        )
    return ExperimentResult(
        exp_id="abl-pinned",
        title="Ablation: pin-weights-in-GPU alternative (Sec. VI-A)",
        columns=["pinned_frac", "batch", "tflops", "note"],
        rows=rows,
        notes=["pinning trades fetch savings for batch; the streamed design "
               "(pinned_frac 0) maximizes throughput"],
    )


def ablation_serving_load() -> ExperimentResult:
    """Latency percentiles vs arrival rate for GPT-13B serving (TP=4).

    The production framing of Sec. I, end to end: as offered load rises
    toward the server's capacity, queueing pushes P99 (and eventually
    P50) end-to-end latency up while sustained throughput saturates.
    """
    from ..engine.costs import DenseStepCost
    from ..engine.serving_sim import simulate_serving, synthesize_trace

    model = DenseLatencyModel(DENSE_ZOO["gpt-13b"], dgx_a100_cluster(1), tp=4)
    costs = DenseStepCost(model, representative_kv=128 + 16 // 2)
    rows = []
    for rate in (2.0, 5.0, 10.0, 20.0, 40.0):
        trace = synthesize_trace(num_requests=120, arrival_rate=rate,
                                 mean_prompt=128, mean_gen=16, seed=7)
        rep = simulate_serving(trace, costs=costs, max_batch=16)
        rows.append(
            {
                "req_per_s": rate,
                "p50_s": rep.latency_percentile(trace, 50),
                "p99_s": rep.latency_percentile(trace, 99),
                "ttft_p50_s": rep.ttft_percentile(trace, 50),
                "tokens_per_s": rep.tokens_per_second,
            }
        )
    return ExperimentResult(
        exp_id="abl-serving",
        title="Ablation: serving latency percentiles vs offered load",
        columns=["req_per_s", "p50_s", "p99_s", "ttft_p50_s", "tokens_per_s"],
        rows=rows,
        notes=["queueing dominates P99 as load approaches capacity"],
    )


ALL_ABLATIONS = {
    "abl-cudagraph": ablation_cuda_graph,
    "abl-fusion": ablation_fusion_strategy,
    "abl-pcc": ablation_pcc_degree,
    "abl-expert-slicing": ablation_expert_slicing,
    "abl-hybrid": ablation_hybrid_factor,
    "abl-prefetch": ablation_prefetch_depth,
    "abl-sla": ablation_sla_frontier,
    "abl-pinned": ablation_pinned_weights,
    "abl-serving": ablation_serving_load,
}
